(* The costar command-line driver.

     costar parse  --lang json file.json         parse with a built-in language
     costar parse  --grammar g.ebnf --tokens "a b c"   parse terminal names
     costar parse  --lang json --cache json.dfa file.json   warm-start parse
     costar batch  --lang json -j 4 corpus/      parse a corpus in parallel
     costar check  --grammar g.ebnf              static grammar report
     costar lint   --grammar g.ebnf --lexer g.lexer   coded diagnostics
     costar analyze --grammar g.ebnf             static prediction analysis
     costar tables --lang json -o json.tables    flat FIRST/FOLLOW/decision image
     costar atn    --lang dot --annotate         decision ATN as GraphViz DOT
     costar lex    --lang minipy file.py         print the token stream
     costar gen    --lang xml --size 100         emit a synthetic corpus file
     costar sample --grammar g.ebnf -n 5         sample sentences
     costar cover  --lang json --close           decision-coverage report
     costar cover  --grammar g.ebnf corpus/      coverage residue of a corpus

   Grammars are given in the textual EBNF format of Costar_ebnf.Parse. *)

open Cmdliner
open Costar_grammar
module P = Costar_core.Parser
module Cache = Costar_core.Cache
module Analyze = Costar_predict_analysis.Analyze
module R = Costar_recover.Recover
module D = Costar_lint.Diagnostic

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- Grammar / language sources ---------------------------------------- *)

let load_grammar ?start path =
  match Costar_ebnf.Parse.grammar_of_string ?start (read_file path) with
  | Ok g -> Ok g
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)

let find_lang name =
  match Costar_langs.Registry.find name with
  | Some l -> Ok l
  | None ->
    Error
      (Printf.sprintf "unknown language %s (available: %s)" name
         (String.concat ", " Costar_langs.Registry.names))

let lang_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "lang" ] ~docv:"LANG"
        ~doc:"Built-in benchmark language (json, xml, dot, minipy).")

let grammar_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "grammar"; "g" ] ~docv:"FILE"
        ~doc:"Grammar file in the textual EBNF format.")

let lexer_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "lexer" ] ~docv:"FILE"
        ~doc:"Lexer specification file (token rules as regex patterns).")

let start_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "start" ] ~docv:"NT"
        ~doc:"Start symbol (defaults to the first rule).")

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("costar: " ^ msg);
    exit 1

(* Tokenize [input] for the selected source: a built-in language uses its
   lexer, a --lexer spec builds one, and a bare grammar interprets the
   input as whitespace-separated terminal names. *)
let tokens_of_input ?lexer g lang input =
  match lang, lexer with
  | Some l, _ -> (
    match Costar_langs.Lang.tokenize l input with
    | Ok toks -> Ok toks
    | Error msg -> Error msg)
  | None, Some path -> (
    match Costar_lex.Spec.scanner_of_string (read_file path) with
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
    | Ok sc -> (
      match Costar_lex.Scanner.tokenize sc g input with
      | Ok toks -> Ok toks
      | Error e -> Error (Fmt.str "%a" Costar_lex.Scanner.pp_error e)))
  | None, None -> (
    let names =
      List.filter (fun s -> s <> "") (String.split_on_char ' '
        (String.concat " " (String.split_on_char '\n' input)))
    in
    match
      List.partition_map
        (fun name ->
          match Grammar.terminal_of_name g name with
          | Some a -> Left (Token.make a name)
          | None -> Right name)
        names
    with
    | toks, [] -> Ok toks
    | _, bad ->
      Error
        (Printf.sprintf "not terminals of the grammar: %s"
           (String.concat ", " bad)))

(* The zero-copy pipeline, when the source has a real lexer: a built-in
   language, or a --lexer spec whose rule names all resolve against the
   grammar.  [None] means fall back to the list path ([tokens_of_input]):
   either the input is bare terminal names, or the spec has rules the
   grammar lacks — which the legacy path reports lazily, only if such a
   token actually appears. *)
let buf_of_input ?lexer g lang input =
  match lang, lexer with
  | Some l, _ -> Some (Costar_langs.Lang.tokenize_buf l input)
  | None, Some path -> (
    match Costar_lex.Spec.scanner_of_string (read_file path) with
    | Error msg -> Some (Error (Printf.sprintf "%s: %s" path msg))
    | Ok sc -> (
      match Costar_lex.Scanner.compile sc g with
      | Error _ -> None
      | Ok c -> (
        match Costar_lex.Scanner.scan_buf c input with
        | Ok buf -> Some (Ok buf)
        | Error e -> Some (Error (Fmt.str "%a" Costar_lex.Scanner.pp_error e)))))
  | None, None -> None

let resolve_source lang grammar start =
  match lang, grammar with
  | Some name, None ->
    let l = or_die (find_lang name) in
    (Costar_langs.Lang.grammar l, Some l)
  | None, Some path -> (or_die (load_grammar ?start path), None)
  | _ ->
    prerr_endline "costar: give exactly one of --lang or --grammar";
    exit 1

(* --- shared diagnostic plumbing ----------------------------------------- *)

module Lint = Costar_lint.Lint
module Render = Costar_lint.Render

(* Exit-policy arguments shared by parse, lint, analyze, and cover: one
   policy, every command that emits coded diagnostics. *)
let max_warnings_arg =
  Arg.(
    value
    & opt int 0
    & info [ "max-warnings" ] ~docv:"N"
        ~doc:"Tolerate up to N warnings before exiting nonzero (default 0).")

let max_severity_arg ~default =
  Arg.(
    value
    & opt
        (enum
           [
             ("none", Lint.Gate_none);
             ("info", Lint.Gate_info);
             ("warning", Lint.Gate_warning);
             ("error", Lint.Gate_error);
           ])
        default
    & info [ "max-severity" ] ~docv:"SEV"
        ~doc:
          "Most severe diagnostic level tolerated with exit 0: none, info, \
           warning, or error (error = report-only, never fail).")

let diag_format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text, json, or sarif.")

let tool_version = "1.0.0"

let recover_arg =
  Arg.(
    value & flag
    & info [ "recover" ]
        ~doc:
          "Recover from syntax errors instead of stopping at the first one: \
           repair (insert/delete a token), resynchronize on the dataflow \
           sync sets, and continue, reporting every failure as a coded \
           diagnostic and emitting a partial parse tree with explicit \
           ERROR nodes.")

(* Render parse-time diagnostics (P-codes) in the selected format and
   return the shared-policy exit code: every failure kind — lexical or
   parse-time — flows through this one renderer. *)
let render_diags format ~max_severity ~max_warnings diags =
  (match format with
  | `Text -> print_string (Render.text diags)
  | `Json -> print_string (Render.json diags)
  | `Sarif -> print_string (Lint.sarif ~tool_version diags));
  Lint.exit_code ~max_severity ~max_warnings diags

(* Without --recover the engine bails at the first failure (max_errors =
   0), whose event then carries a give-up repair note; strip those
   "recovery:" notes — the user never asked for recovery. *)
let strip_recovery_notes (d : D.t) =
  {
    d with
    D.notes =
      List.filter
        (fun n -> not (String.length n >= 9 && String.sub n 0 9 = "recovery:"))
        d.D.notes;
  }

(* --- parse -------------------------------------------------------------- *)

let parse_cmd =
  let input_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"INPUT" ~doc:"Input file (defaults to stdin).")
  in
  let tokens_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tokens" ] ~docv:"NAMES"
          ~doc:"Parse this whitespace-separated terminal-name sequence.")
  in
  let dot_arg =
    Arg.(value & flag & info [ "dot" ] ~doc:"Print the tree as GraphViz DOT.")
  in
  let trace_arg =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the machine trace.")
  in
  let cache_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "cache" ] ~docv:"FILE"
          ~doc:
            "Start from a precompiled prediction-DFA cache: a v2 cache \
             (written by $(b,costar analyze --emit-cache)) or a v3 flat \
             image (written by $(b,costar analyze --emit-image), loaded \
             zero-copy via mmap); the format is detected from the file, \
             and its grammar fingerprint must match.")
  in
  let stats_arg =
    Arg.(
      value
      & flag
      & info [ "stats" ]
          ~doc:
            "Print prediction and DFA-cache statistics (lookahead consumed, \
             state interns, transition and closure-memo hit rates) to stderr \
             after parsing.")
  in
  let run lang grammar lexer start input tokens dot trace cache_file stats
      recover format max_severity max_warnings =
    let g, l = resolve_source lang grammar start in
    let text =
      match tokens, input with
      | Some t, _ -> t
      | None, Some path -> read_file path
      | None, None -> In_channel.input_all stdin
    in
    let file = match tokens, input with None, Some path -> Some path | _ -> None in
    let p = P.make g in
    if stats then begin
      Costar_core.Instr.reset ();
      Costar_core.Instr.enabled := true
    end;
    if trace then
      ignore (Costar_core.Trace.print p (or_die (tokens_of_input ?lexer g l text)))
    else begin
      let lex_t0 = Unix.gettimeofday () in
      let lex_minor0 = Gc.minor_words () in
      let word =
        match buf_of_input ?lexer g l text with
        | Some (Ok buf) -> Ok (Word.of_buf buf)
        | Some (Error msg) -> Error msg
        | None -> Result.map Word.of_tokens (tokens_of_input ?lexer g l text)
      in
      let word =
        match word with
        | Ok w -> w
        | Error msg ->
          (* A lexical failure renders exactly like a parse failure: one
             P004 diagnostic through the shared renderer and exit policy. *)
          exit
            (render_diags format ~max_severity ~max_warnings
               [ R.lex_diag ?file msg ])
      in
      let lex_t = Unix.gettimeofday () -. lex_t0 in
      let lex_minor = Gc.minor_words () -. lex_minor0 in
      let eng = R.make p in
      let max_errors = if recover then 100 else 0 in
      let outcome =
        match cache_file with
        | None -> R.run_word ?file ~max_errors eng word
        | Some cf ->
          let cache =
            or_die
              (Cache.load_any ~anl:(P.analysis p)
                 ~fingerprint:(Grammar.fingerprint g) cf)
          in
          fst (R.run_with_cache_word ?file ~max_errors eng cache word)
      in
      if stats then begin
        let n = Word.length word in
        let toks_s t = if t > 0. then float_of_int n /. t else 0. in
        Printf.eprintf
          "lexing: %d tokens from %d bytes in %.4fs (%.2f Mtokens/s, %.1f \
           MB/s); %.3f minor words/token\n"
          n (String.length text) lex_t
          (toks_s lex_t /. 1e6)
          (float_of_int (String.length text) /. lex_t /. 1e6)
          (lex_minor /. float_of_int (max 1 n));
        (* Warm steady-state: rerun the buffer pipeline now that the
           compiled scanner (and any lazy tables) exist. *)
        (match buf_of_input ?lexer g l text with
        | Some (Ok _) ->
          let t0 = Unix.gettimeofday () in
          let m0 = Gc.minor_words () in
          (match buf_of_input ?lexer g l text with
          | Some (Ok buf) ->
            let t = Unix.gettimeofday () -. t0 in
            let m = Gc.minor_words () -. m0 in
            Printf.eprintf
              "lexing (warm): %.2f Mtokens/s, %.1f MB/s; %.3f minor \
               words/token\n"
              (toks_s t /. 1e6)
              (float_of_int (String.length text) /. t /. 1e6)
              (m /. float_of_int (max 1 (Costar_grammar.Token_buf.length buf)))
          | _ -> ())
        | _ -> ())
      end;
      if stats then begin
        let module I = Costar_core.Instr in
        let sll_calls, sll_toks, ll_calls, ll_toks = I.totals () in
        let c = I.cache_totals () in
        let pct num den =
          if den = 0 then 0. else 100. *. float_of_int num /. float_of_int den
        in
        Printf.eprintf
          "prediction: %d SLL calls (%d lookahead tokens), %d LL calls (%d \
           lookahead tokens)\n"
          sll_calls sll_toks ll_calls ll_toks;
        Printf.eprintf
          "dfa cache: %d state interns; transitions %d hits / %d misses \
           (%.1f%% hit); closure memo %d hits / %d misses (%.1f%% hit)\n"
          c.I.state_interns c.I.trans_hits c.I.trans_misses
          (pct c.I.trans_hits (c.I.trans_hits + c.I.trans_misses))
          c.I.closure_hits c.I.closure_misses
          (pct c.I.closure_hits (c.I.closure_hits + c.I.closure_misses));
        I.enabled := false
      end;
      match outcome.R.verdict with
      | R.Fatal e ->
        prerr_endline ("error: " ^ Costar_core.Types.error_to_string g e);
        exit 2
      | R.Recovered v | R.Recovered_ambig v ->
        (match outcome.R.verdict with
        | R.Recovered_ambig _ -> prerr_endline "warning: input is ambiguous"
        | _ -> ());
        let diags = R.diagnostics outcome in
        if diags = [] then
          if dot then print_string (Tree.to_dot g v)
          else Fmt.pr "%a@." (Tree.pp g) v
        else begin
          let diags =
            if recover then diags else List.map strip_recovery_notes diags
          in
          (* With --recover the partial tree (explicit ERROR nodes) follows
             the diagnostics in text mode; structured formats carry the
             diagnostics alone. *)
          let code = render_diags format ~max_severity ~max_warnings diags in
          if recover && format = `Text then
            if dot then print_string (Tree.to_dot g v)
            else Fmt.pr "%a@." (Tree.pp g) v;
          exit code
        end
    end
  in
  let term =
    Term.(
      const run $ lang_arg $ grammar_arg $ lexer_arg $ start_arg $ input_arg
      $ tokens_arg $ dot_arg $ trace_arg $ cache_arg $ stats_arg $ recover_arg
      $ diag_format_arg
      $ max_severity_arg ~default:Lint.Gate_warning
      $ max_warnings_arg)
  in
  Cmd.v
    (Cmd.info "parse"
       ~doc:
         "Parse input and print the parse tree.  Failures of every kind \
          (lexical, mismatch, no-viable-alternative, trailing input) are \
          coded span-carrying diagnostics (P001-P004) rendered as text, \
          JSON, or SARIF; $(b,--recover) repairs and resynchronizes \
          instead of stopping, emitting a partial tree with explicit ERROR \
          nodes.  Exit: 0 clean, 2 on error diagnostics (the shared \
          --max-severity policy).")
    term

(* --- lint / check ------------------------------------------------------- *)

(* Build the lint input for the selected sources.  Syntax errors in either
   file are fatal (exit 2): there is nothing to lint yet. *)
let lint_input lang grammar start lexer =
  let input = Lint.empty_input in
  let input =
    match lang, grammar with
    | Some _, Some _ ->
      prerr_endline "costar: give at most one of --lang or --grammar";
      exit 2
    | Some name, None ->
      let l = or_die (find_lang name) in
      { input with Lint.prebuilt = Some (Costar_langs.Lang.grammar l) }
    | None, Some path -> (
      match Costar_ebnf.Parse.rules_of_string (read_file path) with
      | Error msg ->
        prerr_endline (Printf.sprintf "costar: %s: %s" path msg);
        exit 2
      | Ok rules ->
        { input with Lint.rules = Some rules; grammar_file = Some path; start })
    | None, None -> input
  in
  let input =
    match lexer with
    | None -> input
    | Some path -> (
      match Costar_lex.Spec.srules_of_string (read_file path) with
      | Error msg ->
        prerr_endline (Printf.sprintf "costar: %s: %s" path msg);
        exit 2
      | Ok rules ->
        { input with Lint.lexer = Some rules; lexer_file = Some path })
  in
  if input.Lint.rules = None && input.Lint.prebuilt = None
     && input.Lint.lexer = None
  then begin
    prerr_endline "costar: give at least one of --lang, --grammar, or --lexer";
    exit 2
  end;
  input

let lint_cmd =
  let run lang grammar lexer start format max_severity max_warnings =
    let input = lint_input lang grammar start lexer in
    let diags = Lint.run input in
    (match format with
    | `Text -> print_string (Render.text diags)
    | `Json -> print_string (Render.json diags)
    | `Sarif -> print_string (Lint.sarif ~tool_version diags));
    exit (Lint.exit_code ~max_severity ~max_warnings diags)
  in
  let term =
    Term.(
      const run $ lang_arg $ grammar_arg $ lexer_arg $ start_arg
      $ diag_format_arg
      $ max_severity_arg ~default:Lint.Gate_warning
      $ max_warnings_arg)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static analysis with coded, span-carrying diagnostics (grammar \
          and lexer spec).  Exit code: 0 clean, 1 warnings, 2 errors \
          (tune with --max-severity/--max-warnings).")
    term

(* The check report is the lint engine plus grammar sizes: same codes, text
   rendering, but always exit 0 (it is a report, not a gate). *)
let check_cmd =
  let run lang grammar start =
    let g, _ = resolve_source lang grammar start in
    Printf.printf "terminals:    %d\nnonterminals: %d\nproductions:  %d\n"
      (Grammar.num_terminals g)
      (Grammar.num_nonterminals g)
      (Grammar.num_productions g);
    let input = lint_input lang grammar start None in
    print_string (Render.text (Lint.run input))
  in
  let term = Term.(const run $ lang_arg $ grammar_arg $ start_arg) in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Static grammar report: sizes plus the full lint diagnostics \
          (left recursion, reachability, LL(1) conflicts, ...).")
    term

(* --- analyze ------------------------------------------------------------ *)

module Analyze_render = Costar_lint.Analyze_render

let analyze_cmd =
  let k_arg =
    Arg.(
      value
      & opt int Analyze.default_k
      & info [ "k" ] ~docv:"K"
          ~doc:
            "Lookahead bound: report minimal k for decisions that are \
             SLL(k) with k <= K, and `beyond' otherwise.")
  in
  let emit_cache_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit-cache" ] ~docv:"FILE"
          ~doc:
            "Write the prediction-DFA cache built during analysis to FILE, \
             for $(b,costar parse --cache) to warm-start from.")
  in
  let emit_image_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit-image" ] ~docv:"FILE"
          ~doc:
            "Write the prediction-DFA cache as a v3 flat image: one \
             contiguous int32-LE file that $(b,costar parse --cache) and \
             $(b,costar batch --image) map read-only via mmap, so any \
             number of processes share a single copy with zero \
             deserialization.")
  in
  let run lang grammar start format k emit_cache emit_image max_severity
      max_warnings =
    let g, _ = resolve_source lang grammar start in
    let r = Analyze.analyze ~k g in
    (* The same A-code diagnostics `costar lint` emits, for the SARIF
       rendering and the shared exit policy. *)
    let diags =
      lazy
        (List.stable_sort Costar_lint.Diagnostic.compare
           (Costar_lint.Rules_predict.of_result
              (Costar_lint.Rules_grammar.make_ctx g)
              r))
    in
    (match format with
    | `Text -> print_string (Analyze_render.text r)
    | `Json -> print_string (Analyze_render.json r)
    | `Sarif -> print_string (Lint.sarif ~tool_version (Lazy.force diags)));
    (match emit_cache with
    | None -> ()
    | Some file ->
      Cache.save_precompiled ~fingerprint:(Grammar.fingerprint g)
        r.Analyze.cache file;
      Printf.eprintf "costar: wrote %s (%d DFA states, %d transitions)\n" file
        (Cache.num_states r.Analyze.cache)
        (Cache.num_transitions r.Analyze.cache));
    (match emit_image with
    | None -> ()
    | Some file ->
      Cache.save_image ~fingerprint:(Grammar.fingerprint g) r.Analyze.cache
        file;
      Printf.eprintf "costar: wrote %s (v3 image, %d DFA states)\n" file
        (Cache.num_states r.Analyze.cache));
    exit (Lint.exit_code ~max_severity ~max_warnings (Lazy.force diags))
  in
  let term =
    Term.(
      const run $ lang_arg $ grammar_arg $ start_arg $ diag_format_arg $ k_arg
      $ emit_cache_arg $ emit_image_arg
      $ max_severity_arg ~default:Lint.Gate_error
      $ max_warnings_arg)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Static prediction analysis: minimal SLL(k) lookahead per decision, \
          colliding alternatives with distinguishing-prefix witnesses, \
          Earley-confirmed ambiguities, and reachability of the LL \
          fallback.  Optionally emits the precompiled prediction-DFA cache.  \
          Exits by the shared --max-severity policy over the A-code \
          diagnostics (default: error, i.e. report-only).")
    term

(* --- tables ------------------------------------------------------------- *)

module Flow = Costar_flow.Flow
module Tables = Costar_predict_analysis.Tables

let tables_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the flat tables image to FILE instead of dumping it.")
  in
  let verify_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "verify" ] ~docv:"FILE"
          ~doc:
            "Differential gate: load FILE, check it round-trips byte-equal, \
             matches a fresh export bit for bit, and reconstructs decisions \
             identical to the live analyzer.  Exit 0 iff all hold.")
  in
  let k_arg =
    Arg.(
      value
      & opt int Analyze.default_k
      & info [ "k" ] ~docv:"K"
          ~doc:"Lookahead bound for the decision analysis (as in analyze).")
  in
  let run lang grammar start out verify k =
    let g, _ = resolve_source lang grammar start in
    let flow = Flow.make g in
    let r = Analyze.analyze ~k g in
    let live = Tables.build g flow r in
    match verify with
    | Some file -> (
      match Tables.load ~expect_fingerprint:(Grammar.fingerprint g) file with
      | Error e ->
        Printf.eprintf "costar tables: %s: %s\n" file
          (Tables.error_to_string e);
        exit 2
      | Ok img ->
        let failures = ref [] in
        let check what ok = if not ok then failures := what :: !failures in
        check "image differs from a fresh export"
          (Tables.encode img = Tables.encode live);
        check "image does not round-trip byte-equal"
          (Tables.encode img = read_file file);
        check "reconstructed decisions differ from the live analyzer"
          (Tables.same_decisions (Tables.decisions img) r.Analyze.decisions);
        (match List.rev !failures with
        | [] ->
          let n_terms, n_nts, n_prods, n_decisions = Tables.sizes img in
          Printf.printf
            "ok: %s matches the live analysis (%d terminals, %d \
             nonterminals, %d productions, %d decisions)\n"
            file n_terms n_nts n_prods n_decisions
        | fs ->
          List.iter (Printf.eprintf "costar tables: %s: %s\n" file) fs;
          exit 1))
    | None -> (
      match out with
      | Some file ->
        Tables.save live file;
        let n_terms, n_nts, n_prods, n_decisions = Tables.sizes live in
        Printf.eprintf
          "costar: wrote %s (%d terminals, %d nonterminals, %d productions, \
           %d decisions)\n"
          file n_terms n_nts n_prods n_decisions
      | None -> print_string (Tables.dump g live))
  in
  let term =
    Term.(
      const run $ lang_arg $ grammar_arg $ start_arg $ out_arg $ verify_arg
      $ k_arg)
  in
  Cmd.v
    (Cmd.info "tables"
       ~doc:
         "Export the grammar dataflow facts (NULLABLE / FIRST / FOLLOW / \
          sync sets) and the per-decision SLL verdicts as a fingerprinted \
          flat int-array image; dump it, or verify an existing image \
          against the live analyses.")
    term

(* --- atn ---------------------------------------------------------------- *)

let atn_cmd =
  let annotate_arg =
    Arg.(
      value & flag
      & info [ "annotate" ]
          ~doc:
            "Run the prediction analyzer and label each decision entry \
             state with its lookahead verdict.")
  in
  let run lang grammar start annotate =
    let g, _ = resolve_source lang grammar start in
    let atn = Atn.of_grammar g in
    if not annotate then print_string (Atn.to_dot atn)
    else begin
      let r = Analyze.analyze g in
      let decision_label x =
        match Analyze.decision_for r x with
        | Some d when d.Analyze.error = None ->
          let s = Analyze.lookahead_to_string d.Analyze.lookahead in
          Some
            (if Analyze.ll_fallback_possible d then s ^ "; LL fallback"
             else s)
        | _ -> None
      in
      print_string (Atn.to_dot ~decision_label atn)
    end
  in
  let term =
    Term.(const run $ lang_arg $ grammar_arg $ start_arg $ annotate_arg)
  in
  Cmd.v
    (Cmd.info "atn"
       ~doc:
         "Print the grammar's augmented transition network as GraphViz DOT \
          (one box per decision entry; $(b,--annotate) adds analyzer \
          verdicts).")
    term

(* --- lex ---------------------------------------------------------------- *)

let lex_cmd =
  let input_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"INPUT" ~doc:"Input file (defaults to stdin).")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text or json.")
  in
  let stats_arg =
    Arg.(
      value
      & flag
      & info [ "stats" ]
          ~doc:
            "Print scan throughput (tokens/s, MB/s) and GC minor words per \
             token to stderr; the warm line rescans with all lazy tables \
             built.")
  in
  let run lang input format stats =
    let name =
      match lang with
      | Some n -> n
      | None ->
        prerr_endline "costar lex: --lang is required";
        exit 1
    in
    let l = or_die (find_lang name) in
    let g = Costar_langs.Lang.grammar l in
    let text =
      match input with
      | Some path -> read_file path
      | None -> In_channel.input_all stdin
    in
    let t0 = Unix.gettimeofday () in
    let m0 = Gc.minor_words () in
    match Costar_langs.Lang.tokenize_buf l text with
    | Error msg ->
      prerr_endline ("lexical error: " ^ msg);
      exit 1
    | Ok buf ->
      let lex_t = Unix.gettimeofday () -. t0 in
      let lex_minor = Gc.minor_words () -. m0 in
      let n = Token_buf.length buf in
      (* The dump below is where lexemes and positions are materialized —
         the scan recorded only kind and offsets. *)
      (match format with
      | `Text ->
        for i = 0 to n - 1 do
          let line, col = Token_buf.pos buf i in
          Printf.printf "%4d:%-3d %6d-%-6d %-16s %s\n" line col
            (Token_buf.start_ofs buf i)
            (Token_buf.end_ofs buf i)
            (Grammar.terminal_name g (Token_buf.kind buf i))
            (String.escaped (Token_buf.lexeme buf i))
        done
      | `Json ->
        print_string "[";
        for i = 0 to n - 1 do
          let line, col = Token_buf.pos buf i in
          Printf.printf "%s\n  {\"kind\": %S, \"start\": %d, \"end\": %d, \
                         \"line\": %d, \"col\": %d, \"lexeme\": %S}"
            (if i = 0 then "" else ",")
            (Grammar.terminal_name g (Token_buf.kind buf i))
            (Token_buf.start_ofs buf i)
            (Token_buf.end_ofs buf i)
            line col
            (Token_buf.lexeme buf i)
        done;
        print_string "\n]\n");
      if stats then begin
        let report label t minor n =
          Printf.eprintf
            "%s: %d tokens from %d bytes in %.4fs (%.2f Mtokens/s, %.1f \
             MB/s); %.3f minor words/token\n"
            label n (String.length text) t
            (float_of_int n /. t /. 1e6)
            (float_of_int (String.length text) /. t /. 1e6)
            (minor /. float_of_int (max 1 n))
        in
        report "scan (cold)" lex_t lex_minor n;
        let t0 = Unix.gettimeofday () in
        let m0 = Gc.minor_words () in
        match Costar_langs.Lang.tokenize_buf l text with
        | Ok buf2 ->
          report "scan (warm)"
            (Unix.gettimeofday () -. t0)
            (Gc.minor_words () -. m0)
            (Token_buf.length buf2)
        | Error _ -> ()
      end
  in
  let term = Term.(const run $ lang_arg $ input_arg $ format_arg $ stats_arg) in
  Cmd.v
    (Cmd.info "lex"
       ~doc:
         "Tokenize input with a built-in lexer (zero-copy buffer pipeline) \
          and dump the token buffer.")
    term

(* --- batch -------------------------------------------------------------- *)

let batch_cmd =
  let paths_arg =
    Arg.(
      value
      & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:
            "Input files and/or directories (every regular file directly \
             inside a directory is taken).")
  in
  let list_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "files" ] ~docv:"LIST"
          ~doc:"Read additional input paths from LIST, one per line.")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains (default: the runtime's recommended domain \
             count).")
  in
  let round_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "round-size" ] ~docv:"K"
          ~doc:
            "Files handed out per round; worker DFA overlays are merged \
             into the shared cache between rounds (default: one round over \
             the whole corpus).")
  in
  let image_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "image" ] ~docv:"FILE"
          ~doc:
            "mmap a v3 flat cache image (written by $(b,costar analyze \
             --emit-image)) read-only as the shared prediction-DFA base. \
             With $(b,--prefork), every worker process shares the same \
             physical pages.")
  in
  let prefork_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "prefork" ] ~docv:"N"
          ~doc:
            "Use N forked worker $(i,processes) instead of domains. Each \
             worker has a private heap and GC (no stop-the-world coupling); \
             combine with $(b,--image) to share one mmapped DFA cache \
             across all workers.")
  in
  let quiet_arg =
    Arg.(
      value
      & flag
      & info [ "quiet"; "q" ]
          ~doc:"Suppress per-file verdict lines; only report failures.")
  in
  let stats_arg =
    Arg.(
      value
      & flag
      & info [ "stats" ]
          ~doc:
            "Print aggregate throughput (files/s, MB/s) and per-domain \
             DFA-cache hit rates to stderr.")
  in
  let collect_inputs paths list_file =
    let from_list =
      match list_file with
      | None -> []
      | Some file ->
        List.filter
          (fun l -> String.trim l <> "")
          (String.split_on_char '\n' (read_file file))
    in
    let expand path =
      if Sys.is_directory path then
        Sys.readdir path |> Array.to_list |> List.sort compare
        |> List.map (Filename.concat path)
        |> List.filter (fun f -> not (Sys.is_directory f))
      else [ path ]
    in
    List.concat_map expand (paths @ List.map String.trim from_list)
  in
  let run lang paths list_file domains round_size image prefork quiet stats
      recover =
    let name =
      match lang with
      | Some n -> n
      | None ->
        prerr_endline "costar batch: --lang is required";
        exit 1
    in
    let l = or_die (find_lang name) in
    let g = Costar_langs.Lang.grammar l in
    let files =
      match collect_inputs paths list_file with
      | [] ->
        prerr_endline "costar batch: no input files";
        exit 1
      | files -> Array.of_list files
    in
    let contents = Array.map read_file files in
    let tokenize s =
      Result.map Word.of_buf (Costar_langs.Lang.tokenize_buf l s)
    in
    let p = P.make g in
    (match image with
    | None -> ()
    | Some file -> (
      match
        Cache.load_image ~anl:(P.analysis p)
          ~fingerprint:(Grammar.fingerprint g) file
      with
      | Ok c -> P.set_base_cache p c
      | Error e ->
        Printf.eprintf "costar batch: %s: %s\n" file
          (Cache.image_error_to_string e);
        exit 1));
    if stats then begin
      Costar_core.Instr.reset ();
      Costar_core.Instr.enabled := true
    end;
    let t0 = Unix.gettimeofday () in
    let results, st =
      match prefork with
      | Some workers ->
        Costar_parallel.Batch.run_prefork ~workers p ~tokenize contents
      | None ->
        Costar_parallel.Batch.run_batch ?domains ?round_size p ~tokenize
          contents
    in
    let wall = Unix.gettimeofday () -. t0 in
    Costar_core.Instr.enabled := false;
    (* With --recover, every failing file gets a sequential second pass
       through the recovery engine: full coded diagnostics per file instead
       of one first-error line.  The parallel verdicts are untouched —
       recovery never changes accept/reject, only what is reported. *)
    let eng = lazy (R.make p) in
    let print_diags ds =
      match Render.text ~with_summary:false ds with
      | "" -> ()
      | s ->
        print_string s;
        print_newline ()
    in
    let recover_report i =
      match Costar_langs.Lang.tokenize l contents.(i) with
      | Error msg -> print_diags [ R.lex_diag ~file:files.(i) msg ]
      | Ok toks ->
        let o = R.run ~file:files.(i) (Lazy.force eng) toks in
        print_diags (R.diagnostics o)
    in
    let failures = ref 0 in
    Array.iteri
      (fun i r ->
        let file = files.(i) in
        match r with
        | Ok (P.Unique _) -> if not quiet then Printf.printf "%s: ok\n" file
        | Ok (P.Ambig _) ->
          if not quiet then Printf.printf "%s: ok (ambiguous)\n" file
        | Ok (P.Reject msg) ->
          incr failures;
          if recover then recover_report i
          else Printf.printf "%s: syntax error: %s\n" file msg
        | Ok (P.Error e) ->
          incr failures;
          Printf.printf "%s: error: %s\n" file
            (Costar_core.Types.error_to_string g e)
        | Error msg ->
          incr failures;
          if recover then recover_report i
          else Printf.printf "%s: lexical error: %s\n" file msg)
      results;
    if stats then begin
      let module B = Costar_parallel.Batch in
      let module I = Costar_core.Instr in
      Printf.eprintf
        "batch: %d files (%.2f MB) in %.4fs over %d %s, %d round(s): %.1f \
         files/s, %.2f MB/s\n"
        st.B.st_files
        (float_of_int st.B.st_bytes /. 1e6)
        wall st.B.st_domains
        (if prefork <> None then "worker processes" else "domains")
        st.B.st_rounds
        (float_of_int st.B.st_files /. wall)
        (float_of_int st.B.st_bytes /. wall /. 1e6);
      Printf.eprintf "dfa cache: %d states before, %d after absorption\n"
        st.B.st_states_before st.B.st_states_after;
      Array.iteri
        (fun d ds ->
          let c = ds.B.ds_cache in
          let hits = c.I.trans_hits and misses = c.I.trans_misses in
          let pct =
            if hits + misses = 0 then "-"
            else
              Printf.sprintf "%.1f%% hit"
                (100. *. float_of_int hits /. float_of_int (hits + misses))
          in
          Printf.eprintf
            "domain %d: %d files, %.2f MB, %d new states; dfa transitions \
             %d hits / %d misses (%s)\n"
            d ds.B.ds_files
            (float_of_int ds.B.ds_bytes /. 1e6)
            ds.B.ds_new_states hits misses pct)
        st.B.st_per_domain
    end;
    if !failures > 0 then exit 1
  in
  let term =
    Term.(
      const run $ lang_arg $ paths_arg $ list_arg $ domains_arg $ round_arg
      $ image_arg $ prefork_arg $ quiet_arg $ stats_arg $ recover_arg)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Parse a corpus of files in parallel across OCaml domains, sharing \
          a frozen prediction-DFA snapshot (per-file verdicts; exit 1 if \
          any file fails).  With $(b,--recover), failing files get a \
          sequential second pass through the error-recovery engine and \
          report full coded diagnostics instead of the first error only.")
    term

(* --- gen ---------------------------------------------------------------- *)

let gen_cmd =
  let size_arg =
    Arg.(value & opt int 100 & info [ "size" ] ~docv:"N" ~doc:"Target size.")
  in
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S" ~doc:"Random seed.")
  in
  let run lang size seed =
    let name =
      match lang with
      | Some n -> n
      | None ->
        prerr_endline "costar gen: --lang is required";
        exit 1
    in
    let l = or_die (find_lang name) in
    print_string (Costar_langs.Lang.generate l ~seed ~size)
  in
  let term = Term.(const run $ lang_arg $ size_arg $ seed_arg) in
  Cmd.v
    (Cmd.info "gen" ~doc:"Emit a synthetic corpus file for a language.")
    term

(* --- sample ------------------------------------------------------------- *)

let sample_cmd =
  let count_arg =
    Arg.(value & opt int 5 & info [ "n" ] ~docv:"N" ~doc:"Number of sentences.")
  in
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S" ~doc:"Random seed.")
  in
  let run lang grammar start count seed =
    let g, _ = resolve_source lang grammar start in
    let rand = Rng.of_seed seed in
    let anl = Analysis.make g in
    (* Sampling is total on productive grammars (shortest-derivation
       fallback), so [count] requests always yield [count] sentences —
       or a hard error when the start symbol derives no word at all. *)
    for _ = 1 to count do
      match Sample.sentence ~analysis:anl g rand with
      | Some w -> print_endline (String.concat " " w)
      | None ->
        prerr_endline
          "costar sample: the start symbol derives no terminal word";
        exit 1
    done
  in
  let term =
    Term.(const run $ lang_arg $ grammar_arg $ start_arg $ count_arg $ seed_arg)
  in
  Cmd.v
    (Cmd.info "sample" ~doc:"Sample random sentences from a grammar.")
    term

(* --- cover -------------------------------------------------------------- *)

module Cover = Costar_cover.Cover
module Witness = Costar_cover.Witness
module Diff = Costar_cover.Diff
module Mutate = Costar_cover.Mutate

let cover_cmd =
  let mutate_arg =
    Arg.(
      value
      & opt int 0
      & info [ "mutate" ] ~docv:"N"
          ~doc:
            "With $(b,--diff): derive N deterministic mutants of the corpus \
             inputs (byte flips/inserts/deletes, token \
             deletes/dups/swaps, truncations; seeded, reproducible) and \
             gate the error-recovery engine on each — no exception, \
             strict termination-measure decrease (no hang), at least one \
             coded diagnostic per rejected mutant, and accept/reject \
             agreement with the plain parser.  Any violation exits 3.")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"S" ~doc:"Mutation seed (default 0).")
  in
  let corpus_arg =
    Arg.(
      value
      & pos_all string []
      & info [] ~docv:"CORPUS"
          ~doc:
            "Input files or directories to run through the instrumented \
             pipeline before reporting (the report then shows corpus \
             residue).")
  in
  let close_arg =
    Arg.(
      value & flag
      & info [ "close" ]
          ~doc:
            "Generate a witness sentence per uncovered-but-reachable \
             target and run it, closing the universe.")
  in
  let diff_arg =
    Arg.(
      value & flag
      & info [ "diff" ]
          ~doc:
            "Differentially check every token sentence (corpus and \
             generated) across the core, Turbo, and Earley engines, with \
             the §4 termination-measure and diagnostic-position \
             obligations.  Any disagreement exits 3.")
  in
  (* One coverage line per target kind, fixed field positions so CI can
     gate with awk: `coverage <kind> <covered>/<coverable> <pct> <dead>`. *)
  let kind_slug = function
    | Cover.K_prod -> "productions"
    | Cover.K_decision -> "decisions"
    | Cover.K_edge -> "decision-edges"
    | Cover.K_lex -> "lexer-transitions"
  in
  let pct (s : Cover.summary) =
    if s.Cover.coverable = 0 then 100.0
    else 100.0 *. float_of_int s.Cover.covered /. float_of_int s.Cover.coverable
  in
  let corpus_files paths =
    List.concat_map
      (fun path ->
        if Sys.is_directory path then
          Sys.readdir path |> Array.to_list |> List.sort compare
          |> List.filter_map (fun f ->
                 let p = Filename.concat path f in
                 if Sys.is_directory p then None else Some p)
        else [ path ])
      paths
  in
  let run lang grammar lexer start corpus close diff mutate seed format
      max_severity max_warnings =
    let g, l = resolve_source lang grammar start in
    let scanner =
      match l, lexer with
      | Some l, _ -> Costar_langs.Lang.scanner l
      | None, Some path ->
        Some (or_die (Costar_lex.Spec.scanner_of_string (read_file path)))
      | None, None -> None
    in
    let t = Cover.make ?scanner g in
    (* Corpus pass: every input through the instrumented parser (and, at
       byte level, the lexer replay). *)
    let corpus_toks =
      List.map
        (fun path ->
          let text = read_file path in
          let toks = or_die (tokens_of_input ?lexer g l text) in
          ignore (Cover.mark_tokens t toks);
          if scanner <> None then ignore (Cover.mark_bytes t text);
          (path, toks))
        (corpus_files corpus)
    in
    (* Close pass: a generated sentence per remaining uncovered target. *)
    let generated = if close then Witness.close t else [] in
    (* Differential pass over everything token-level we ran — including the
       error-recovery lane (conservative on clean input, productive and
       measure-verified on rejects). *)
    let diff_failures = ref 0 in
    let diff_results = ref [] in
    let eng = lazy (R.make (P.make g)) in
    if diff then begin
      let turbo = Costar_turbo.Turbo.create g in
      let check label toks =
        match Diff.run ~turbo ~recover:(Lazy.force eng) g toks with
        | Ok () -> ()
        | Error msg ->
          incr diff_failures;
          diff_results := (label, msg) :: !diff_results
      in
      List.iter (fun (path, toks) -> check path toks) corpus_toks;
      List.iter
        (fun (w : Witness.generated) ->
          match w.Witness.tokens with
          | Some terms ->
            check w.Witness.label (Costar_predict_analysis.Analyze.tokens_of_terms g terms)
          | None -> ())
        generated
    end;
    (* Mutation fuzz gate: deterministic mutants of the corpus, each driven
       through the plain parser and the recovery engine. *)
    let mutants_total = ref 0 in
    let mutants_rejected = ref 0 in
    let mutant_results = ref [] in
    if diff && mutate > 0 then begin
      let seeds =
        List.map (fun (path, toks) -> (path, read_file path, toks)) corpus_toks
        @ List.filter_map
            (fun (w : Witness.generated) ->
              match w.Witness.tokens with
              | Some terms ->
                Some
                  ( w.Witness.label, "",
                    Costar_predict_analysis.Analyze.tokens_of_terms g terms )
              | None -> None)
            generated
      in
      match seeds with
      | [] ->
        prerr_endline
          "costar cover: --mutate needs corpus inputs (or --close witnesses)";
        exit 2
      | _ ->
        let seed_arr = Array.of_list seeds in
        let n_seeds = Array.length seed_arr in
        let p = R.parser_of (Lazy.force eng) in
        let fail label msg =
          incr diff_failures;
          mutant_results := (label, msg) :: !mutant_results
        in
        let gate label toks' =
          match R.run ~verify_measure:true (Lazy.force eng) toks' with
          | exception e ->
            fail label ("recovery engine raised: " ^ Printexc.to_string e)
          | o -> (
            match (P.run p toks', o.R.verdict, o.R.events) with
            | (P.Unique _ | P.Ambig _), (R.Recovered _ | R.Recovered_ambig _), []
              ->
              ()
            | ( P.Reject _,
                (R.Recovered t | R.Recovered_ambig t),
                (_ :: _ as evs) ) ->
              incr mutants_rejected;
              if not (Tree.has_errors t) then
                fail label "rejected mutant: partial tree has no error nodes"
              else if
                List.exists
                  (fun (e : R.event) -> e.R.diag.D.message = "")
                  evs
              then fail label "rejected mutant: empty diagnostic message"
            | P.Error _, R.Fatal _, _ -> ()
            | plain, v, evs ->
              let plain_kind =
                match plain with
                | P.Unique _ -> "Unique"
                | P.Ambig _ -> "Ambig"
                | P.Reject _ -> "Reject"
                | P.Error _ -> "Error"
              in
              let v_kind =
                match v with
                | R.Recovered _ -> "Recovered"
                | R.Recovered_ambig _ -> "Recovered_ambig"
                | R.Fatal _ -> "Fatal"
              in
              fail label
                (Printf.sprintf
                   "accept/reject disagreement: plain %s, recovery %s with \
                    %d events"
                   plain_kind v_kind (List.length evs)))
        in
        for k = 0 to mutate - 1 do
          let base, source, toks = seed_arr.(k mod n_seeds) in
          let rng = Rng.split seed k in
          incr mutants_total;
          match Mutate.derive rng ~source ~tokens:toks with
          | Mutate.Source (s, edit) -> (
            let label =
              Printf.sprintf "%s#%d (%s)" base k (Mutate.edit_to_string edit)
            in
            match tokens_of_input ?lexer g l s with
            | Error msg ->
              (* Lexical rejection: the P004 path must still produce a
                 well-formed diagnostic. *)
              incr mutants_rejected;
              if (R.lex_diag msg).D.message = "" then
                fail label "lexically rejected mutant: empty diagnostic"
            | Ok toks' -> gate label toks')
          | Mutate.Tokens (toks', edit) ->
            gate
              (Printf.sprintf "%s#%d (%s)" base k (Mutate.edit_to_string edit))
              toks'
        done
    end;
    let file =
      match grammar with Some p -> Some p | None -> Option.map (fun _ -> "<builtin>") lang
    in
    let diags =
      List.stable_sort Costar_lint.Diagnostic.compare
        (Cover.dead_diags ?file t @ Witness.residual_diags ?file t)
    in
    let summary = Cover.summary t in
    (match format with
    | `Text ->
      List.iter
        (fun (k, s) ->
          Printf.printf "coverage %s %d/%d %.1f %d\n" (kind_slug k)
            s.Cover.covered s.Cover.coverable (pct s) s.Cover.dead)
        summary;
      List.iter
        (fun (w : Witness.generated) ->
          Printf.printf "close: %s\n" w.Witness.label;
          (match w.Witness.tokens with
          | Some terms ->
            Printf.printf "  tokens: %s\n"
              (String.concat " "
                 (List.map (Names.terminal g) terms))
          | None -> ());
          match w.Witness.bytes with
          | Some b -> Printf.printf "  bytes: %S\n" b
          | None -> ())
        generated;
      if diff then begin
        if !diff_results = [] then
          Printf.printf "diff ok %d\n"
            (List.length corpus_toks
            + List.length
                (List.filter (fun w -> w.Witness.tokens <> None) generated))
        else
          List.iter
            (fun (label, msg) -> Printf.printf "diff FAIL %s: %s\n" label msg)
            (List.rev !diff_results);
        (* Fixed fields for CI gating:
           `mutants ok <total> <rejected>` or one FAIL line per violation. *)
        if mutate > 0 then
          if !mutant_results = [] then
            Printf.printf "mutants ok %d %d\n" !mutants_total !mutants_rejected
          else
            List.iter
              (fun (label, msg) ->
                Printf.printf "mutant FAIL %s: %s\n" label msg)
              (List.rev !mutant_results)
      end;
      if diags <> [] then print_newline ();
      print_string (Render.text diags)
    | `Json ->
      let open Costar_lint.Json_out in
      print_string
        (to_string
           (Obj
              [
                ("version", Int 1);
                ( "coverage",
                  List
                    (List.map
                       (fun (k, s) ->
                         Obj
                           [
                             ("kind", String (kind_slug k));
                             ("covered", Int s.Cover.covered);
                             ("coverable", Int s.Cover.coverable);
                             ("dead", Int s.Cover.dead);
                           ])
                       summary) );
                ( "generated",
                  List
                    (List.map
                       (fun (w : Witness.generated) ->
                         Obj
                           ([ ("target", String w.Witness.label) ]
                           @ (match w.Witness.tokens with
                             | Some terms ->
                               [
                                 ( "tokens",
                                   List
                                     (List.map
                                        (fun a -> String (Names.terminal g a))
                                        terms) );
                               ]
                             | None -> [])
                           @
                           match w.Witness.bytes with
                           | Some b -> [ ("bytes", String b) ]
                           | None -> []))
                       generated) );
                ( "diff_failures",
                  List
                    (List.map
                       (fun (label, msg) ->
                         Obj
                           [ ("input", String label); ("error", String msg) ])
                       (List.rev !diff_results)) );
                ( "mutants",
                  Obj
                    [
                      ("total", Int !mutants_total);
                      ("rejected", Int !mutants_rejected);
                      ( "failures",
                        List
                          (List.map
                             (fun (label, msg) ->
                               Obj
                                 [
                                   ("input", String label);
                                   ("error", String msg);
                                 ])
                             (List.rev !mutant_results)) );
                    ] );
                ( "diagnostics",
                  List (List.map Costar_lint.Render.json_of_diag diags) );
              ])
        ^ "\n")
    | `Sarif -> print_string (Lint.sarif ~tool_version diags));
    if !diff_failures > 0 then exit 3;
    exit (Lint.exit_code ~max_severity ~max_warnings diags)
  in
  let term =
    Term.(
      const run $ lang_arg $ grammar_arg $ lexer_arg $ start_arg $ corpus_arg
      $ close_arg $ diff_arg $ mutate_arg $ seed_arg $ diag_format_arg
      $ max_severity_arg ~default:Lint.Gate_error
      $ max_warnings_arg)
  in
  Cmd.v
    (Cmd.info "cover"
       ~doc:
         "Decision-coverage analysis: the universe of productions, SLL \
          decisions, cached-DFA edges, and lexer-class transitions, with \
          statically dead targets flagged (C001-C004), corpus residue \
          measured, and --close generating a witness sentence per \
          uncovered-but-reachable target.  --diff differentially checks \
          every sentence across the core, Turbo, and Earley engines.")
    term

let () =
  let info =
    Cmd.info "costar" ~version:"1.0.0"
      ~doc:"A verified-style ALL(*) parser toolkit (CoStar reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            parse_cmd; batch_cmd; check_cmd; lint_cmd; analyze_cmd;
            tables_cmd; atn_cmd; lex_cmd; gen_cmd; sample_cmd; cover_cmd;
          ]))
