(* Parse generated JSON with the benchmark grammar, then compute document
   statistics with the semantic-action layer — no intermediate AST type,
   the actions fold directly over the parse as it is evaluated.

   Run with:  dune exec examples/json_demo.exe *)

open Costar_grammar
open Costar_langs

type stats = {
  objects : int;
  arrays : int;
  strings : int;
  numbers : int;
  literals : int;
  max_depth : int;
}

let zero =
  { objects = 0; arrays = 0; strings = 0; numbers = 0; literals = 0; max_depth = 0 }

let merge a b =
  {
    objects = a.objects + b.objects;
    arrays = a.arrays + b.arrays;
    strings = a.strings + b.strings;
    numbers = a.numbers + b.numbers;
    literals = a.literals + b.literals;
    max_depth = max a.max_depth b.max_depth;
  }

let () =
  let lang = Json.lang in
  let g = Lang.grammar lang in
  let p = Costar_core.Parser.make g in
  let src = Lang.generate lang ~seed:2024 ~size:400 in
  Printf.printf "generated %d bytes of JSON; first 120: %s...\n\n"
    (String.length src)
    (String.sub src 0 (min 120 (String.length src)));
  let actions =
    {
      Costar_core.Semantics.on_token =
        (fun tok ->
          match Grammar.terminal_name g tok.Token.term with
          | "STRING" -> { zero with strings = 1 }
          | "NUMBER" -> { zero with numbers = 1 }
          | "true" | "false" | "null" -> { zero with literals = 1 }
          | _ -> zero);
      on_production =
        (fun prod kids ->
          let acc = List.fold_left merge zero kids in
          match Grammar.nonterminal_name g prod.Grammar.lhs with
          | "obj" ->
            { acc with objects = acc.objects + 1; max_depth = acc.max_depth + 1 }
          | "arr" ->
            { acc with arrays = acc.arrays + 1; max_depth = acc.max_depth + 1 }
          | _ -> acc);
    }
  in
  let tokens = Lang.tokenize_exn lang src in
  match Costar_core.Semantics.run p actions tokens with
  | Costar_core.Semantics.Value s ->
    Printf.printf "tokens:   %d\n" (List.length tokens);
    Printf.printf "objects:  %d\narrays:   %d\nstrings:  %d\n" s.objects
      s.arrays s.strings;
    Printf.printf "numbers:  %d\nliterals: %d\nmax depth: %d\n" s.numbers
      s.literals s.max_depth
  | Costar_core.Semantics.Ambiguous_value _ ->
    print_endline "unexpected ambiguity in the JSON grammar!"
  | Costar_core.Semantics.Rejected msg -> print_endline ("rejected: " ^ msg)
  | Costar_core.Semantics.Failed e ->
    print_endline ("error: " ^ Costar_core.Types.error_to_string g e)
