(* A calculator: expression grammar + lexer + semantic actions that
   evaluate during the fold.  Demonstrates the paper's §8 "semantic
   actions" extension on top of the verified parser.

   Run with:  dune exec examples/calc.exe -- "1 + 2 * (3 - 4) / 2" *)

open Costar_grammar
open Costar_lex

let grammar =
  match
    Costar_ebnf.Parse.grammar_of_string
      {|
        expr   : term (('+' | '-') term)* ;
        term   : factor (('*' | '/') factor)* ;
        factor : NUM | '-' factor | '(' expr ')' ;
      |}
  with
  | Ok g -> g
  | Error msg -> failwith msg

let scanner =
  Scanner.make
    [
      Scanner.rule "NUM"
        Regex.(seq [ plus digit; opt (seq [ chr '.'; plus digit ]) ]);
      Scanner.rule "+" (Regex.chr '+');
      Scanner.rule "-" (Regex.chr '-');
      Scanner.rule "*" (Regex.chr '*');
      Scanner.rule "/" (Regex.chr '/');
      Scanner.rule "(" (Regex.chr '(');
      Scanner.rule ")" (Regex.chr ')');
      Scanner.rule "WS" ~skip:true (Regex.plus (Regex.set " \t"));
    ]

(* Values flowing through the fold: either a number, or an operator token
   waiting to be applied by the enclosing sequence node. *)
type v =
  | Num of float
  | Op of string
  | Paren  (* parenthesis tokens, ignored *)

let actions =
  {
    Costar_core.Semantics.on_token =
      (fun tok ->
        match Grammar.terminal_name grammar tok.Token.term with
        | "NUM" -> Num (float_of_string tok.Token.lexeme)
        | "(" | ")" -> Paren
        | op -> Op op);
    on_production =
      (fun _prod kids ->
        (* Evaluate a flat [v] sequence left to right: operators are binary
           except a leading unary minus. *)
        let rec apply acc = function
          | [] -> acc
          | Op op :: rest -> (
            match rest with
            | rhs :: rest' ->
              let r = match rhs with Num n -> n | _ -> 0.0 in
              let acc' =
                match acc, op with
                | Some l, "+" -> Some (l +. r)
                | Some l, "-" -> Some (l -. r)
                | Some l, "*" -> Some (l *. r)
                | Some l, "/" -> Some (l /. r)
                | None, "-" -> Some (-.r)  (* unary minus *)
                | _, _ -> acc
              in
              apply acc' rest'
            | [] -> acc)
          | Num n :: rest -> apply (Some n) rest
          | Paren :: rest -> apply acc rest
        in
        match apply None kids with Some n -> Num n | None -> Num 0.0);
  }

let () =
  let input =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "1 + 2 * (3 - 4) / 2"
  in
  match Scanner.tokenize scanner grammar input with
  | Error e -> Fmt.epr "%a@." Scanner.pp_error e
  | Ok tokens -> (
    let p = Costar_core.Parser.make grammar in
    match Costar_core.Semantics.run p actions tokens with
    | Costar_core.Semantics.Value (Num n) -> Printf.printf "%s = %g\n" input n
    | Costar_core.Semantics.Value _ | Costar_core.Semantics.Ambiguous_value _
      ->
      print_endline "unexpected evaluation result"
    | Costar_core.Semantics.Rejected msg ->
      Printf.printf "syntax error: %s\n" msg
    | Costar_core.Semantics.Failed e ->
      Printf.printf "error: %s\n" (Costar_core.Types.error_to_string grammar e))
