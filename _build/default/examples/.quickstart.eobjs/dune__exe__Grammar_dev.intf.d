examples/grammar_dev.mli:
