examples/quickstart.mli:
