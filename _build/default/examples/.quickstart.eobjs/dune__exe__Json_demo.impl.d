examples/json_demo.ml: Costar_core Costar_grammar Costar_langs Grammar Json Lang List Printf String Token
