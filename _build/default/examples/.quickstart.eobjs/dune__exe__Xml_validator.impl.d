examples/xml_validator.ml: Costar_core Costar_grammar Costar_langs Grammar Lang List Printf Token Tree Xml
