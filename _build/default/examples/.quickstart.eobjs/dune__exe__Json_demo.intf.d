examples/json_demo.mli:
