examples/ambiguity.ml: Costar_core Costar_earley Costar_grammar Fmt Grammar List Tree
