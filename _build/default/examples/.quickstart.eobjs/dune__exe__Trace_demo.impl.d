examples/trace_demo.ml: Costar_core Costar_grammar Fmt Grammar
