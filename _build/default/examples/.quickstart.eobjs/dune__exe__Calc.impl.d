examples/calc.ml: Array Costar_core Costar_ebnf Costar_grammar Costar_lex Fmt Grammar Printf Regex Scanner Sys Token
