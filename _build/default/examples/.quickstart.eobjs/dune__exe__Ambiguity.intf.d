examples/ambiguity.mli:
