examples/grammar_dev.ml: Costar_core Costar_earley Costar_ebnf Costar_grammar Costar_ll1 Fmt Grammar Left_recursion List Printf Random Sample String Transform Tree
