examples/xml_validator.mli:
