examples/calc.mli:
