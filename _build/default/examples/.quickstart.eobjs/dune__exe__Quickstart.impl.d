examples/quickstart.ml: Costar_core Costar_ebnf Costar_grammar Costar_lex Fmt List Printf Regex Scanner String Tree
