(* Quickstart: define a grammar, build a lexer, parse, and inspect the tree.

   Run with:  dune exec examples/quickstart.exe *)

open Costar_grammar
open Costar_lex

let () =
  (* 1. A grammar, written in the textual EBNF format and desugared to BNF.
        Lowercase = nonterminal, uppercase = token kind, quotes = literal. *)
  let grammar =
    match
      Costar_ebnf.Parse.grammar_of_string
        {|
          greeting : salutation NAME ('!' | '.') ;
          salutation : 'hello' | 'goodbye' ('cruel')? ;
        |}
    with
    | Ok g -> g
    | Error msg -> failwith msg
  in

  (* 2. A lexer built from regex combinators.  Rule names must match the
        grammar's terminals. *)
  let scanner =
    Scanner.make
      [
        Scanner.rule "hello" (Regex.str "hello");
        Scanner.rule "goodbye" (Regex.str "goodbye");
        Scanner.rule "cruel" (Regex.str "cruel");
        Scanner.rule "NAME" (Regex.plus Regex.letter);
        Scanner.rule "!" (Regex.chr '!');
        Scanner.rule "." (Regex.chr '.');
        Scanner.rule "WS" ~skip:true (Regex.plus (Regex.chr ' '));
      ]
  in

  (* 3. Build the parser once, run it on many inputs. *)
  let parser = Costar_core.Parser.make grammar in
  List.iter
    (fun input ->
      Printf.printf "%-24s => " (String.escaped input);
      match Scanner.tokenize scanner grammar input with
      | Error e -> Fmt.pr "%a@." Scanner.pp_error e
      | Ok tokens -> (
        match Costar_core.Parser.run parser tokens with
        | Costar_core.Parser.Unique tree ->
          Fmt.pr "unique parse %a@." (Tree.pp grammar) tree
        | Costar_core.Parser.Ambig tree ->
          Fmt.pr "AMBIGUOUS, e.g. %a@." (Tree.pp grammar) tree
        | Costar_core.Parser.Reject reason -> Fmt.pr "rejected: %s@." reason
        | Costar_core.Parser.Error e ->
          Fmt.pr "error: %s@." (Costar_core.Types.error_to_string grammar e)))
    [
      "hello world!";
      "goodbye cruel world.";
      "goodbye world!";
      "hello!";
      "hello hello world!";
    ]
