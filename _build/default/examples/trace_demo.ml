(* The paper's Fig. 2, replayed: a step-by-step trace of the stack machine
   on the grammar  S -> A c | A d ;  A -> a A | b  and the input "abd".

   Each line shows the suffix stack (top frame first, open nonterminals as
   labels), the partial trees of the top prefix frame, the remaining input,
   and the visited set used for dynamic left-recursion detection.

   Run with:  dune exec examples/trace_demo.exe *)

open Costar_grammar

let () =
  let g =
    Grammar.define ~start:"S"
      [
        ("S", [ [ Grammar.n "A"; Grammar.t "c" ]; [ Grammar.n "A"; Grammar.t "d" ] ]);
        ("A", [ [ Grammar.t "a"; Grammar.n "A" ]; [ Grammar.t "b" ] ]);
      ]
  in
  let p = Costar_core.Parser.make g in
  print_endline "Grammar (Fig. 2):";
  Fmt.pr "  %a@.@." Grammar.pp g;
  print_endline "Trace on input \"a b d\":";
  ignore (Costar_core.Trace.print p (Grammar.tokens g [ "a"; "b"; "d" ]));
  print_newline ();
  print_endline "Trace on the rejected input \"a b\":";
  ignore (Costar_core.Trace.print p (Grammar.tokens g [ "a"; "b" ]))
