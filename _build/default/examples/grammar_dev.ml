(* The grammar-development workflow the paper motivates (§3.5): CoStar's
   ambiguity tolerance "assists users with the process of testing
   unfinished grammars, detecting ambiguities, and removing them", and its
   left-recursion handling turns an infinite loop into a diagnosis.

   This example walks a classic buggy expression grammar through the
   toolkit: static left-recursion detection, mechanical left-recursion
   elimination, LL(1) conflict inspection, ambiguity detection on sampled
   sentences, and the fixed grammar.

   Run with:  dune exec examples/grammar_dev.exe *)

open Costar_grammar

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  section "1. A naive expression grammar (left-recursive AND ambiguous)";
  let naive =
    match
      Costar_ebnf.Parse.grammar_of_string
        {|
          expr : expr '+' expr | expr '*' expr | NUM ;
        |}
    with
    | Ok g -> g
    | Error msg -> failwith msg
  in
  Fmt.pr "%a@." Grammar.pp naive;
  (match Left_recursion.check naive with
  | Ok () -> print_endline "no left recursion"
  | Error xs ->
    Printf.printf "left-recursive nonterminals: %s\n"
      (String.concat ", " (List.map (Grammar.nonterminal_name naive) xs)));
  (* The parser diagnoses it dynamically too, instead of diverging: *)
  (match Costar_core.Parser.parse naive (Grammar.tokens naive [ "NUM" ]) with
  | Costar_core.Parser.Error e ->
    Printf.printf "parse attempt: error (%s)\n"
      (Costar_core.Types.error_to_string naive e)
  | r -> Fmt.pr "parse attempt: %a@." (Costar_core.Parser.pp_result naive) r);

  section "2. Mechanical left-recursion elimination";
  let no_lr = Transform.eliminate_left_recursion naive in
  Fmt.pr "%a@." Grammar.pp no_lr;
  (match Left_recursion.check no_lr with
  | Ok () -> print_endline "left recursion eliminated"
  | Error _ -> print_endline "still left-recursive?!");

  section "3. ...but the grammar is still ambiguous";
  let w = Grammar.tokens no_lr [ "NUM"; "+"; "NUM"; "*"; "NUM" ] in
  (match Costar_core.Parser.parse no_lr w with
  | Costar_core.Parser.Ambig v ->
    Fmt.pr "NUM + NUM * NUM is ambiguous; CoStar committed to:@.  %a@."
      (Tree.pp no_lr) v
  | r -> Fmt.pr "%a@." (Costar_core.Parser.pp_result no_lr) r);
  Printf.printf "oracle derivation count: %d\n"
    (Costar_earley.Count.count_trees ~cap:5 no_lr w);

  section "4. The conventional fix: stratified precedence";
  let fixed =
    match
      Costar_ebnf.Parse.grammar_of_string
        {|
          expr   : term ('+' term)* ;
          term   : factor ('*' factor)* ;
          factor : NUM ;
        |}
    with
    | Ok g -> g
    | Error msg -> failwith msg
  in
  Fmt.pr "%a@." Grammar.pp fixed;
  (match Costar_ll1.Ll1.conflicts fixed with
  | [] -> print_endline "grammar is LL(1): no conflicts"
  | cs -> Printf.printf "%d LL(1) conflicts remain\n" (List.length cs));
  let w = Grammar.tokens fixed [ "NUM"; "+"; "NUM"; "*"; "NUM" ] in
  (match Costar_core.Parser.parse fixed w with
  | Costar_core.Parser.Unique v ->
    Fmt.pr "NUM + NUM * NUM now parses uniquely:@.  %a@." (Tree.pp fixed) v
  | r -> Fmt.pr "%a@." (Costar_core.Parser.pp_result fixed) r);

  section "5. Fuzzing the fixed grammar with sampled sentences";
  let rand = Random.State.make [| 7 |] in
  let ambiguous = ref 0 and total = ref 0 in
  for _ = 1 to 200 do
    match Sample.tokens fixed rand with
    | None -> ()
    | Some w -> (
      incr total;
      match Costar_core.Parser.parse fixed w with
      | Costar_core.Parser.Unique _ -> ()
      | Costar_core.Parser.Ambig _ -> incr ambiguous
      | _ -> ())
  done;
  Printf.printf "%d sampled sentences parsed, %d ambiguous\n" !total !ambiguous
