(* The paper's Fig. 6: ambiguity detection on  S -> X | Y ; X -> a ; Y -> a.

   The word "a" has two parse trees; adaptivePredict's LL mode notices that
   two right-hand sides survive to end of input, the machine clears its
   uniqueness flag, and the final tree is labelled Ambig.  The Earley-based
   oracle cross-checks the derivation count, and the enumerator prints both
   trees.

   Run with:  dune exec examples/ambiguity.exe *)

open Costar_grammar

let () =
  let g =
    Grammar.define ~start:"S"
      [
        ("S", [ [ Grammar.n "X" ]; [ Grammar.n "Y" ] ]);
        ("X", [ [ Grammar.t "a" ] ]);
        ("Y", [ [ Grammar.t "a" ] ]);
      ]
  in
  let w = Grammar.tokens g [ "a" ] in
  Fmt.pr "Grammar (Fig. 6):@.  %a@.@." Grammar.pp g;
  (match Costar_core.Parser.parse g w with
  | Costar_core.Parser.Ambig v ->
    Fmt.pr "CoStar: input \"a\" is AMBIGUOUS; returned tree: %a@."
      (Tree.pp g) v
  | r -> Fmt.pr "unexpected: %a@." (Costar_core.Parser.pp_result g) r);
  let count = Costar_earley.Count.count_trees ~cap:10 g w in
  Fmt.pr "Oracle: %d distinct derivations@." count;
  List.iteri
    (fun i v -> Fmt.pr "  tree %d: %a@." (i + 1) (Tree.pp g) v)
    (Costar_earley.Count.enumerate ~limit:10 g w);
  (* An unambiguous word through the same grammar stays Unique. *)
  let g2 =
    Grammar.define ~start:"S"
      [
        ("S", [ [ Grammar.n "X" ]; [ Grammar.n "Y" ] ]);
        ("X", [ [ Grammar.t "a" ] ]);
        ("Y", [ [ Grammar.t "b" ] ]);
      ]
  in
  match Costar_core.Parser.parse g2 (Grammar.tokens g2 [ "b" ]) with
  | Costar_core.Parser.Unique v ->
    Fmt.pr "@.Disambiguated grammar: \"b\" parses uniquely as %a@."
      (Tree.pp g2) v
  | r -> Fmt.pr "unexpected: %a@." (Costar_core.Parser.pp_result g2) r
