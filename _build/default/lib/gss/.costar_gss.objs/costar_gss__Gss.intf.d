lib/gss/gss.mli: Costar_core Costar_grammar Grammar Token
