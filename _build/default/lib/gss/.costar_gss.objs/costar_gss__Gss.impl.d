lib/gss/gss.ml: Analysis Array Costar_core Costar_grammar Grammar Hashtbl Int Int_set List Option Token
