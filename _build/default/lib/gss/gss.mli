(** SLL prediction over a graph-structured stack (GSS).

    Original ALL(star) represents subparsers that share stack structure with
    a GSS (Scott & Johnstone 2010); the paper's CoStar deliberately does
    not, noting only that the tool "may be less space-efficient than ANTLR
    in practice" (§3.5).  This module supplies the missing representation as
    an alternative prediction engine and quantifies the difference
    (experiment E11 in the benchmark harness):

    - simulated stacks are hash-consed DAG nodes, so configurations that
      diverge and re-converge share structure physically;
    - stable configurations with the same prediction and current frame are
      {e merged} (their parent sets union), so a decision that scans a long
      common region carries one configuration per alternative instead of
      one per calling context.

    Verdicts are identical to {!Costar_core.Sll} — differentially tested on
    random grammars and on the benchmark corpora.  The engine is
    self-contained and does not change the verified-style core. *)

open Costar_grammar
open Costar_grammar.Symbols

(** A prediction instance for one grammar: owns the hash-consing tables and
    the DFA cache (mutable, reusable across inputs). *)
type t

val create : Grammar.t -> t

(** Same contract as [Costar_core.Sll.predict]: SLL verdict for decision
    nonterminal [x] against the remaining tokens. *)
val predict : t -> nonterminal -> Token.t list -> Costar_core.Types.prediction

(** Statistics for the ablation: (interned stack nodes, interned DFA
    states, peak configurations in any one DFA state). *)
val stats : t -> int * int * int

val reset : t -> unit
