open Costar_grammar
open Costar_grammar.Symbols
module Types = Costar_core.Types

(* --- Hash-consed stack nodes --------------------------------------------- *)

type stack =
  | Bottom_nt of nonterminal
  | Bottom_accept
  | Node of node

and node = {
  id : int;
  suf : symbol list;
  parents : stack list;  (* canonical: sorted by stack_key, distinct *)
}

(* Total key over stacks: bottoms get negative codes, nodes their id. *)
let stack_key = function
  | Bottom_accept -> -1
  | Bottom_nt x -> -2 - x
  | Node n -> n.id

module Node_key = struct
  type t = symbol list * int list  (* suf, parent keys *)

  let equal (s1, p1) (s2, p2) =
    compare_symbols s1 s2 = 0 && List.equal Int.equal p1 p2

  let hash (s, p) = Hashtbl.hash_param 100 1000 (s, p)
end

module Node_tbl = Hashtbl.Make (Node_key)

(* --- Configurations ------------------------------------------------------- *)

(* The GSS twist: one configuration per (prediction, current frame), its
   calling contexts merged into the node's parent set. *)
type config = {
  pred : int;
  stack : stack;
}

type info = {
  configs : config list;
  verdict : int;  (* -2 empty | >=0 all same pred | -1 pending *)
  accepting : int list;
}

type engine = {
  eg : Grammar.t;
  eanl : Analysis.t;
  en_terms : int;
  enodes : node Node_tbl.t;
  mutable enext_node : int;
  estates : (((int * int) list, int) Hashtbl.t);
  mutable einfos : info array;
  mutable en_states : int;
  etrans : (int, int) Hashtbl.t;
  einits : int array;
  mutable epeak : int;
}

let mk_node e suf parents =
  let parents =
    List.sort_uniq (fun a b -> Int.compare (stack_key a) (stack_key b)) parents
  in
  let key = (suf, List.map stack_key parents) in
  match Node_tbl.find_opt e.enodes key with
  | Some n -> Node n
  | None ->
    let n = { id = e.enext_node; suf; parents } in
    e.enext_node <- e.enext_node + 1;
    Node_tbl.add e.enodes key n;
    Node n

(* --- Closure --------------------------------------------------------------- *)

exception Left_rec

(* Stable configurations of the closure of [configs].  The visited-set
   discipline mirrors the core engine: a snapshot per spine level, restored
   on pop, so completed nullable subderivations do not poison later
   expansions (see Sll.closure). *)
let closure e configs =
  let seen = Hashtbl.create 64 in
  let stable = ref [] in
  let rec go cfg vises =
    let key = (cfg.pred, stack_key cfg.stack) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      match cfg.stack with
      | Bottom_accept -> stable := cfg :: !stable
      | Bottom_nt x ->
        List.iter
          (fun (y, beta) ->
            go
              { cfg with stack = mk_node e beta [ Bottom_nt y ] }
              [ Int_set.empty ])
          (Analysis.callers e.eanl x);
        if Analysis.endable e.eanl x then
          go { cfg with stack = Bottom_accept } []
      | Node n -> (
        match n.suf with
        | [] ->
          (* Pop: resume at every parent. *)
          let tail = match vises with [] | [ _ ] -> [ Int_set.empty ] | _ :: vs -> vs in
          List.iter (fun p -> go { cfg with stack = p } tail) n.parents
        | T _ :: _ -> stable := cfg :: !stable
        | NT y :: rest ->
          let vis = match vises with v :: _ -> v | [] -> Int_set.empty in
          if Int_set.mem y vis then raise Left_rec
          else begin
            (* Skip empty residue frames (see Sll.closure), dropping the
               matching visited-set snapshot so snapshots stay parallel to
               stack levels. *)
            let tail = match vises with _ :: vs -> vs | [] -> [] in
            let parents, vises_below =
              if rest = [] then (n.parents, tail)
              else ([ mk_node e rest n.parents ], vises)
            in
            let vises' = Int_set.add y vis :: vises_below in
            List.iter
              (fun rhs -> go { cfg with stack = mk_node e rhs parents } vises')
              (Grammar.rhss_of e.eg y)
          end)
    end
  in
  match List.iter (fun c -> go c [ Int_set.empty ]) configs with
  | () -> Ok !stable
  | exception Left_rec -> Error ()

(* Merge stable configurations with equal (pred, frame): union their parent
   sets — the step that makes this a *graph*-structured stack. *)
let merge_stable e configs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun cfg ->
      match cfg.stack with
      | Bottom_accept -> Hashtbl.replace tbl (cfg.pred, []) []
      | Bottom_nt _ -> assert false (* closure never leaves bottoms stable *)
      | Node n ->
        let key = (cfg.pred, n.suf) in
        let existing = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
        Hashtbl.replace tbl key (n.parents @ existing))
    configs;
  let merged =
    Hashtbl.fold
      (fun (pred, suf) parents acc ->
        let stack =
          if suf = [] && parents = [] then Bottom_accept
          else mk_node e suf parents
        in
        { pred; stack } :: acc)
      tbl []
  in
  List.sort
    (fun c1 c2 ->
      let c = Int.compare c1.pred c2.pred in
      if c <> 0 then c else Int.compare (stack_key c1.stack) (stack_key c2.stack))
    merged

let move configs a =
  List.filter_map
    (fun cfg ->
      match cfg.stack with
      | Node { suf = T a' :: _; _ } when a' = a -> Some cfg
      | _ -> None)
    configs

(* Advancing past the matched terminal needs the engine for interning. *)
let advance e configs =
  List.map
    (fun cfg ->
      match cfg.stack with
      | Node { suf = _ :: rest; parents; _ } ->
        { cfg with stack = mk_node e rest parents }
      | _ -> assert false)
    configs

(* --- The DFA over merged configuration sets ------------------------------- *)

let state_key configs =
  List.map (fun c -> (c.pred, stack_key c.stack)) configs

let compute_info configs =
  let preds = List.sort_uniq Int.compare (List.map (fun c -> c.pred) configs) in
  let verdict =
    match preds with [] -> -2 | [ p ] -> p | _ -> -1
  in
  let accepting =
    List.sort_uniq Int.compare
      (List.filter_map
         (fun c -> match c.stack with Bottom_accept -> Some c.pred | _ -> None)
         configs)
  in
  { configs; verdict; accepting }

let intern e configs =
  let key = state_key configs in
  match Hashtbl.find_opt e.estates key with
  | Some sid -> sid
  | None ->
    let sid = e.en_states in
    if sid = Array.length e.einfos then begin
      let bigger = Array.make (2 * (sid + 1)) { configs = []; verdict = -2; accepting = [] } in
      Array.blit e.einfos 0 bigger 0 sid;
      e.einfos <- bigger
    end;
    e.einfos.(sid) <- compute_info configs;
    e.epeak <- max e.epeak (List.length configs);
    e.en_states <- sid + 1;
    Hashtbl.add e.estates key sid;
    sid

type t = engine

let create g : engine =
  let anl = Analysis.make g in
  {
    eg = g;
    eanl = anl;
    en_terms = Grammar.num_terminals g;
    enodes = Node_tbl.create 256;
    enext_node = 0;
    estates = Hashtbl.create 64;
    einfos = Array.make 16 { configs = []; verdict = -2; accepting = [] };
    en_states = 0;
    etrans = Hashtbl.create 256;
    einits = Array.make (max 1 (Grammar.num_nonterminals g)) (-1);
    epeak = 0;
  }

let reset e =
  Node_tbl.reset e.enodes;
  e.enext_node <- 0;
  Hashtbl.reset e.estates;
  e.en_states <- 0;
  Hashtbl.reset e.etrans;
  Array.fill e.einits 0 (Array.length e.einits) (-1);
  e.epeak <- 0

let stats e = (e.enext_node, e.en_states, e.epeak)

let left_rec_error _e x =
  (* Attribute the error to the decision nonterminal, as the core engine's
     closure attributes it to the offending cycle member; verdict class is
     what the differential tests compare. *)
  Types.Error_pred (Types.Left_recursive x)

let predict e x tokens =
  let init () =
    if e.einits.(x) >= 0 then Ok e.einits.(x)
    else
      let init_configs =
        List.map
          (fun ix ->
            {
              pred = ix;
              stack = mk_node e (Grammar.prod e.eg ix).Grammar.rhs [ Bottom_nt x ];
            })
          (Grammar.prods_of e.eg x)
      in
      match closure e init_configs with
      | Error () -> Error ()
      | Ok stable ->
        let sid = intern e (merge_stable e stable) in
        e.einits.(x) <- sid;
        Ok sid
  in
  match init () with
  | Error () -> left_rec_error e x
  | Ok sid0 ->
    let rec walk sid tokens =
      let info = e.einfos.(sid) in
      if info.verdict = -2 then Types.Reject_pred
      else if info.verdict >= 0 then Types.Unique_pred info.verdict
      else
        match tokens with
        | [] -> (
          match info.accepting with
          | [] -> Types.Reject_pred
          | [ p ] -> Types.Unique_pred p
          | p :: _ -> Types.Ambig_pred p)
        | tok :: rest -> (
          let a = tok.Token.term in
          let key = (sid * e.en_terms) + a in
          match Hashtbl.find_opt e.etrans key with
          | Some sid' -> walk sid' rest
          | None -> (
            match closure e (advance e (move info.configs a)) with
            | Error () -> left_rec_error e x
            | Ok stable ->
              let sid' = intern e (merge_stable e stable) in
              Hashtbl.add e.etrans key sid';
              walk sid' rest))
    in
    walk sid0 tokens
