(** Summary statistics for benchmark series. *)

let mean xs =
  match Array.length xs with
  | 0 -> invalid_arg "Summary.mean: empty"
  | n -> Array.fold_left ( +. ) 0.0 xs /. float_of_int n

(** Sample standard deviation (n-1 denominator); 0 for singletons. *)
let stdev xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summary.stdev: empty"
  else if n = 1 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let minimum xs = Array.fold_left min xs.(0) xs
let maximum xs = Array.fold_left max xs.(0) xs

let median xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summary.median: empty"
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    if n mod 2 = 1 then sorted.(n / 2)
    else (sorted.((n / 2) - 1) +. sorted.(n / 2)) /. 2.0
  end
