(** LOWESS: locally weighted scatterplot smoothing (Cleveland 1979), the
    technique the paper borrows from the ANTLR evaluation to argue
    linearity: an unconstrained LOWESS curve that coincides with the
    least-squares line indicates a genuinely linear relationship.

    This implementation performs, at each x, a tricube-weighted linear
    regression over the [f]-fraction nearest neighbours (no robustness
    iterations, matching common defaults for clean data). *)

(** [smooth ~f xs ys] returns the smoothed y value at each [xs] point.
    Points must be given sorted by x.  [f] is the smoothing fraction; the
    paper uses f = 0.1. *)
let smooth ~f xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Lowess.smooth: length mismatch";
  if n = 0 then [||]
  else begin
    let r = max 2 (int_of_float (ceil (f *. float_of_int n))) in
    let r = min r n in
    Array.init n (fun i ->
        let x0 = xs.(i) in
        (* Window of the r nearest neighbours of x0: slide [lo, lo+r-1]. *)
        let lo = ref (max 0 (min (n - r) (i - (r / 2)))) in
        (* Refine: shift while the excluded point is nearer than the
           farthest included one. *)
        let better () =
          !lo > 0
          && abs_float (x0 -. xs.(!lo - 1)) < abs_float (xs.(!lo + r - 1) -. x0)
        in
        while better () do
          decr lo
        done;
        let worse () =
          !lo + r < n
          && abs_float (xs.(!lo + r) -. x0) < abs_float (x0 -. xs.(!lo))
        in
        while worse () do
          incr lo
        done;
        let lo = !lo in
        let h =
          max
            (abs_float (x0 -. xs.(lo)))
            (abs_float (xs.(lo + r - 1) -. x0))
        in
        (* Tricube weights over the window; weighted linear fit at x0. *)
        let sw = ref 0.0
        and swx = ref 0.0
        and swy = ref 0.0
        and swxx = ref 0.0
        and swxy = ref 0.0 in
        for j = lo to lo + r - 1 do
          let d = if h = 0.0 then 0.0 else abs_float (xs.(j) -. x0) /. h in
          let w =
            if d >= 1.0 then 0.0 else ((1.0 -. (d ** 3.0)) ** 3.0)
          in
          sw := !sw +. w;
          swx := !swx +. (w *. xs.(j));
          swy := !swy +. (w *. ys.(j));
          swxx := !swxx +. (w *. xs.(j) *. xs.(j));
          swxy := !swxy +. (w *. xs.(j) *. ys.(j))
        done;
        let denom = (!sw *. !swxx) -. (!swx *. !swx) in
        if abs_float denom < 1e-12 then if !sw = 0.0 then ys.(i) else !swy /. !sw
        else begin
          let b = ((!sw *. !swxy) -. (!swx *. !swy)) /. denom in
          let a = (!swy -. (b *. !swx)) /. !sw in
          a +. (b *. x0)
        end)
  end

(** Maximum absolute deviation between the LOWESS curve and a straight
    line, normalized by the y range: the paper's "curves coincide"
    criterion, quantified. *)
let max_deviation_from_line ~f xs ys (fit : Regression.fit) =
  let sm = smooth ~f xs ys in
  let ymin = Array.fold_left min ys.(0) ys
  and ymax = Array.fold_left max ys.(0) ys in
  let range = if ymax -. ymin = 0.0 then 1.0 else ymax -. ymin in
  let dev = ref 0.0 in
  Array.iteri
    (fun i s -> dev := max !dev (abs_float (s -. Regression.predict fit xs.(i)) /. range))
    sm;
  !dev
