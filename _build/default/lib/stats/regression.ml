(** Ordinary least-squares linear regression (one regressor), used by the
    Fig. 9 linearity analysis. *)

type fit = {
  slope : float;
  intercept : float;
  r2 : float;  (** coefficient of determination *)
}

let fit xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Regression.fit: length mismatch";
  if n < 2 then invalid_arg "Regression.fit: need at least two points";
  let fn = float_of_int n in
  let sx = Array.fold_left ( +. ) 0.0 xs and sy = Array.fold_left ( +. ) 0.0 ys in
  let mx = sx /. fn and my = sy /. fn in
  let sxx = ref 0.0 and sxy = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxx := !sxx +. (dx *. dx);
    sxy := !sxy +. (dx *. dy);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0.0 then invalid_arg "Regression.fit: x values are constant";
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let r2 = if !syy = 0.0 then 1.0 else !sxy *. !sxy /. (!sxx *. !syy) in
  { slope; intercept; r2 }

let predict f x = (f.slope *. x) +. f.intercept
