lib/stats/lowess.ml: Array Regression
