lib/stats/regression.ml: Array
