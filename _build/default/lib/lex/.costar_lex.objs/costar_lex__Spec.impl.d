lib/lex/spec.ml: Buffer List Printf Regex_parse Scanner String
