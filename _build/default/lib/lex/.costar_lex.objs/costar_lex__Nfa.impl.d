lib/lex/nfa.ml: Array List Regex
