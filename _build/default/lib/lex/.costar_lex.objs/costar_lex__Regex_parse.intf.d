lib/lex/regex_parse.mli: Regex
