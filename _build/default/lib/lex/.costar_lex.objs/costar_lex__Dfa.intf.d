lib/lex/dfa.mli: Nfa
