lib/lex/regex.mli:
