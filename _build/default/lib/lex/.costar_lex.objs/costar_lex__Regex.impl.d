lib/lex/regex.ml: Char List String
