lib/lex/spec.mli: Scanner
