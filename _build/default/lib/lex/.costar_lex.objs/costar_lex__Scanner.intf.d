lib/lex/scanner.mli: Costar_grammar Format Regex
