lib/lex/scanner.ml: Array Costar_grammar Dfa Fmt List Nfa Printf Regex String
