lib/lex/nfa.mli: Regex
