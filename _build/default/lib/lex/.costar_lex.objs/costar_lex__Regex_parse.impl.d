lib/lex/regex_parse.ml: Array Buffer Char List Printf Regex String
