lib/lex/dfa.ml: Array Char List Map Nfa Stdlib
