exception Err of string

let fail fmt = Printf.ksprintf (fun s -> raise (Err s)) fmt

type stream = {
  input : string;
  mutable pos : int;
}

let peek s = if s.pos < String.length s.input then Some s.input.[s.pos] else None

let advance s = s.pos <- s.pos + 1

let expect s c =
  match peek s with
  | Some c' when c' = c -> advance s
  | Some c' -> fail "expected %C but found %C at offset %d" c c' s.pos
  | None -> fail "expected %C but reached end of pattern" c

let escape_char s =
  (* Just consumed a backslash. *)
  match peek s with
  | None -> fail "dangling backslash"
  | Some c ->
    advance s;
    (match c with
    | 'n' -> '\n'
    | 't' -> '\t'
    | 'r' -> '\r'
    | '0' -> '\000'
    | c -> c)

(* Characters that must be escaped to appear literally outside classes. *)
let is_meta c = String.contains "()[]|?*+.\\\"" c

let parse_class s =
  (* '[' already consumed. *)
  let negated =
    match peek s with
    | Some '^' ->
      advance s;
      true
    | _ -> false
  in
  let ranges = ref [] in
  let rec loop () =
    match peek s with
    | None -> fail "unterminated character class"
    | Some ']' -> advance s
    | Some c ->
      let lo =
        if c = '\\' then begin
          advance s;
          escape_char s
        end
        else begin
          advance s;
          c
        end
      in
      let hi =
        match peek s with
        | Some '-' when s.pos + 1 < String.length s.input && s.input.[s.pos + 1] <> ']'
          ->
          advance s;
          let c2 =
            match peek s with
            | Some '\\' ->
              advance s;
              escape_char s
            | Some c2 ->
              advance s;
              c2
            | None -> fail "unterminated range"
          in
          c2
        | _ -> lo
      in
      if hi < lo then fail "inverted range %C-%C" lo hi;
      ranges := (lo, hi) :: !ranges;
      loop ()
  in
  loop ();
  if !ranges = [] then fail "empty character class";
  let ranges = List.rev !ranges in
  if not negated then Regex.alt (List.map (fun (lo, hi) -> Regex.range lo hi) ranges)
  else begin
    (* Complement over the byte alphabet. *)
    let excluded = Array.make 256 false in
    List.iter
      (fun (lo, hi) ->
        for i = Char.code lo to Char.code hi do
          excluded.(i) <- true
        done)
      ranges;
    let out = ref [] in
    let i = ref 0 in
    while !i < 256 do
      if not excluded.(!i) then begin
        let start = !i in
        while !i < 256 && not excluded.(!i) do
          incr i
        done;
        out := (Char.chr start, Char.chr (!i - 1)) :: !out
      end
      else incr i
    done;
    match !out with
    | [] -> fail "class excludes every byte"
    | ranges -> Regex.alt (List.rev_map (fun (lo, hi) -> Regex.range lo hi) ranges)
  end

let rec parse_alt s =
  let first = parse_seq s in
  match peek s with
  | Some '|' ->
    advance s;
    Regex.alt [ first; parse_alt s ]
  | _ -> first

and parse_seq s =
  let rec atoms acc =
    match peek s with
    | None | Some ')' | Some '|' -> List.rev acc
    | _ -> atoms (parse_postfix s :: acc)
  in
  Regex.seq (atoms [])

and parse_postfix s =
  let atom = parse_atom s in
  let rec post e =
    match peek s with
    | Some '?' ->
      advance s;
      post (Regex.opt e)
    | Some '*' ->
      advance s;
      post (Regex.star e)
    | Some '+' ->
      advance s;
      post (Regex.plus e)
    | _ -> e
  in
  post atom

and parse_atom s =
  match peek s with
  | None -> fail "expected an atom at end of pattern"
  | Some '(' ->
    advance s;
    let inner = parse_alt s in
    expect s ')';
    inner
  | Some '[' ->
    advance s;
    parse_class s
  | Some '.' ->
    advance s;
    Regex.any
  | Some '"' ->
    advance s;
    let buf = Buffer.create 8 in
    let rec loop () =
      match peek s with
      | None -> fail "unterminated string literal"
      | Some '"' -> advance s
      | Some '\\' ->
        advance s;
        Buffer.add_char buf (escape_char s);
        loop ()
      | Some c ->
        advance s;
        Buffer.add_char buf c;
        loop ()
    in
    loop ();
    Regex.str (Buffer.contents buf)
  | Some '\\' ->
    advance s;
    Regex.chr (escape_char s)
  | Some c when is_meta c -> fail "unexpected %C at offset %d" c s.pos
  | Some c ->
    advance s;
    Regex.chr c

let parse input =
  let s = { input; pos = 0 } in
  match parse_alt s with
  | re ->
    if s.pos <> String.length input then
      Error (Printf.sprintf "trailing input at offset %d" s.pos)
    else Ok re
  | exception Err msg -> Error msg

let parse_exn input =
  match parse input with
  | Ok re -> re
  | Error msg -> invalid_arg ("Regex_parse.parse: " ^ msg)
