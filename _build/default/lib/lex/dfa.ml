type state = int

type t = {
  start : state;
  trans : int array array;  (** state -> 256-entry successor array, -1 dead *)
  accepts : int option array;
}

let start d = d.start
let num_states d = Array.length d.trans
let next d s c = d.trans.(s).(Char.code c)
let accept d s = d.accepts.(s)

module Key = struct
  type t = int list

  let compare = Stdlib.compare
end

module Key_map = Map.Make (Key)

let of_nfa nfa =
  let ids = ref Key_map.empty in
  let trans_acc = ref [] in
  let accepts_acc = ref [] in
  let next_id = ref 0 in
  let rec intern states =
    match Key_map.find_opt states !ids with
    | Some id -> id
    | None ->
      let id = !next_id in
      incr next_id;
      ids := Key_map.add states id !ids;
      let accept =
        List.fold_left
          (fun acc s ->
            match Nfa.accept_rule nfa s, acc with
            | Some ix, Some ix' -> Some (min ix ix')
            | Some ix, None -> Some ix
            | None, acc -> acc)
          None states
      in
      accepts_acc := (id, accept) :: !accepts_acc;
      let row = Array.make 256 (-1) in
      (* Reserve the row slot now so recursion sees a stable order. *)
      trans_acc := (id, row) :: !trans_acc;
      for c = 0 to 255 do
        match Nfa.eps_closure nfa (Nfa.step nfa states (Char.chr c)) with
        | [] -> ()
        | states' -> row.(c) <- intern states'
      done;
      id
  in
  let start = intern (Nfa.eps_closure nfa [ Nfa.start nfa ]) in
  let n = !next_id in
  let trans = Array.make n [||] in
  List.iter (fun (id, row) -> trans.(id) <- row) !trans_acc;
  let accepts = Array.make n None in
  List.iter (fun (id, a) -> accepts.(id) <- a) !accepts_acc;
  { start; trans; accepts }
