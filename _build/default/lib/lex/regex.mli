(** Regular expressions over bytes, built with combinators.

    This is the surface language of the lexer engine (DESIGN.md system #12),
    the substrate standing in for the paper's ANTLR lexers. *)

type t

(** {1 Constructors} *)

val eps : t
val chr : char -> t

(** [str "abc"] matches exactly that string. *)
val str : string -> t

(** Inclusive character range. *)
val range : char -> char -> t

(** Any of the characters in the string. *)
val set : string -> t

(** Any byte except those in the string. *)
val none_of : string -> t

(** Any byte. *)
val any : t

val seq : t list -> t
val alt : t list -> t
val star : t -> t
val plus : t -> t
val opt : t -> t

(** {1 Convenience} *)

val digit : t
val lower : t
val upper : t
val letter : t

(** Letters, digits and underscore. *)
val word_char : t

(** {1 Inspection} *)

(** Does the regex accept the empty string?  (Scanner rules must not: a
    rule that matches epsilon could loop forever.) *)
val nullable : t -> bool

(** Character ranges as [(lo, hi)] pairs; used by the NFA construction. *)
type node =
  | Eps
  | Ranges of (char * char) list
  | Seq2 of t * t
  | Alt2 of t * t
  | Star of t

val view : t -> node
