exception Err of string

let fail fmt = Printf.ksprintf (fun s -> raise (Err s)) fmt

type tok =
  | Name of string  (** rule name: identifier or quoted literal *)
  | Pattern of string  (** raw pattern text between double quotes *)
  | Colon
  | Semi
  | Skip_kw
  | Eof

let lex input =
  let n = String.length input in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  while !i < n do
    let c = input.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && input.[!i + 1] = '/' then
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    else if c = ':' then begin
      toks := Colon :: !toks;
      incr i
    end
    else if c = ';' then begin
      toks := Semi :: !toks;
      incr i
    end
    else if c = '"' then begin
      (* Raw pattern: everything up to the closing unescaped quote, with
         backslash-escapes passed through to the regex parser (except the
         escaped quote itself). *)
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if input.[!i] = '"' then begin
          closed := true;
          incr i
        end
        else if input.[!i] = '\\' && !i + 1 < n && input.[!i + 1] = '"' then begin
          (* Keep the backslash: the regex parser handles the escape. *)
          Buffer.add_string buf "\\\"";
          i := !i + 2
        end
        else begin
          Buffer.add_char buf input.[!i];
          incr i
        end
      done;
      if not !closed then fail "line %d: unterminated pattern" !line;
      toks := Pattern (Buffer.contents buf) :: !toks
    end
    else if c = '\'' then begin
      let buf = Buffer.create 4 in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if input.[!i] = '\'' then begin
          closed := true;
          incr i
        end
        else if input.[!i] = '\\' && !i + 1 < n then begin
          (match input.[!i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | ch -> Buffer.add_char buf ch);
          i := !i + 2
        end
        else begin
          Buffer.add_char buf input.[!i];
          incr i
        end
      done;
      if not !closed then fail "line %d: unterminated name literal" !line;
      toks := Name (Buffer.contents buf) :: !toks
    end
    else if is_ident c then begin
      let start = !i in
      while !i < n && is_ident input.[!i] do
        incr i
      done;
      let word = String.sub input start (!i - start) in
      toks := (if word = "skip" then Skip_kw else Name word) :: !toks
    end
    else fail "line %d: unexpected character %C" !line c
  done;
  List.rev (Eof :: !toks)

let rules_of_string input =
  match
    let toks = ref (lex input) in
    let peek () = match !toks with [] -> Eof | t :: _ -> t in
    let advance () = match !toks with [] -> () | _ :: r -> toks := r in
    let rec rules acc =
      match peek () with
      | Eof -> List.rev acc
      | _ ->
        let skip =
          match peek () with
          | Skip_kw ->
            advance ();
            true
          | _ -> false
        in
        let name =
          match peek () with
          | Name n ->
            advance ();
            n
          | _ -> fail "expected a rule name"
        in
        (match peek () with
        | Colon -> advance ()
        | _ -> fail "rule %s: expected ':'" name);
        let pattern =
          match peek () with
          | Pattern p ->
            advance ();
            p
          | _ -> fail "rule %s: expected a quoted pattern" name
        in
        (match peek () with
        | Semi -> advance ()
        | _ -> fail "rule %s: expected ';'" name);
        let re =
          match Regex_parse.parse pattern with
          | Ok re -> re
          | Error msg -> fail "rule %s: %s" name msg
        in
        rules (Scanner.rule ~skip name re :: acc)
    in
    rules []
  with
  | [] -> Error "empty lexer specification"
  | rules -> Ok rules
  | exception Err msg -> Error msg

let scanner_of_string input =
  match rules_of_string input with
  | Error _ as e -> e
  | Ok rules -> (
    match Scanner.make rules with
    | sc -> Ok sc
    | exception Invalid_argument msg -> Error msg)
