(** A parser for a conventional regex surface syntax, so lexer rules can be
    written as strings (and loaded from lexer-spec files by the CLI).

    Supported syntax:
    {v
      a          literal character        \n \t \\ \' escapes
      .          any byte
      [a-z0_]    character class          [^...] negated class
      (e)        grouping
      e?  e*  e+ postfix repetition
      e1|e2      alternation
      "abc"      literal string (escape the quote with a backslash)
    v} *)

val parse : string -> (Regex.t, string) result

(** Parse, raising [Invalid_argument] on syntax errors (for inline
    literals). *)
val parse_exn : string -> Regex.t
