(** Thompson construction: regexes to nondeterministic finite automata.

    A combined NFA is built from a list of tagged regexes (one per scanner
    rule); each accepting state remembers the index of the rule it belongs
    to, so the DFA can implement rule-priority tie-breaking. *)

type t

type state = int

val num_states : t -> int
val start : t -> state

(** [build rules] wires one Thompson fragment per regex, all reachable from
    a shared start state via epsilon.  Rule indices are positions in the
    input list. *)
val build : Regex.t list -> t

(** Epsilon closure of a set of states, as a sorted list. *)
val eps_closure : t -> state list -> state list

(** States reachable from [states] by consuming byte [c] (not closed). *)
val step : t -> state list -> char -> state list

(** [accept_rule nfa s] is the rule index accepted at state [s], if any. *)
val accept_rule : t -> state -> int option
