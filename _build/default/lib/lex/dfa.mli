(** Subset construction: NFA to DFA with dense byte-indexed transitions.

    Accepting DFA states carry the lowest accepting rule index of their NFA
    state set, implementing first-rule-wins tie-breaking for equal-length
    matches. *)

type t

type state = int

val start : t -> state
val num_states : t -> int

val of_nfa : Nfa.t -> t

(** [next dfa s c] is the successor state, or [-1] if the DFA dies. *)
val next : t -> state -> char -> state

(** Accepting rule index of a state, if accepting. *)
val accept : t -> state -> int option
