type node =
  | Eps
  | Ranges of (char * char) list
  | Seq2 of t * t
  | Alt2 of t * t
  | Star of t

and t = node

let view t = t

let eps = Eps
let chr c = Ranges [ (c, c) ]
let range lo hi =
  if lo > hi then invalid_arg "Regex.range: lo > hi" else Ranges [ (lo, hi) ]

let set s =
  if s = "" then invalid_arg "Regex.set: empty set"
  else Ranges (List.init (String.length s) (fun i -> (s.[i], s.[i])))

let none_of s =
  (* Complement of the byte set: compute the gaps between sorted members. *)
  let members = List.sort_uniq Char.compare (List.init (String.length s) (String.get s)) in
  let rec gaps lo = function
    | [] -> if lo <= 255 then [ (Char.chr lo, Char.chr 255) ] else []
    | c :: rest ->
      let code = Char.code c in
      let before = if lo <= code - 1 then [ (Char.chr lo, Char.chr (code - 1)) ] else [] in
      before @ gaps (code + 1) rest
  in
  match gaps 0 members with
  | [] -> invalid_arg "Regex.none_of: excludes every byte"
  | ranges -> Ranges ranges

let any = Ranges [ ('\000', '\255') ]

let seq2 r1 r2 =
  match r1, r2 with
  | Eps, r | r, Eps -> r
  | _ -> Seq2 (r1, r2)

let seq rs = List.fold_right seq2 rs Eps

let alt = function
  | [] -> invalid_arg "Regex.alt: empty alternation"
  | r :: rest -> List.fold_left (fun acc r' -> Alt2 (acc, r')) r rest

let star r = Star r
let plus r = seq2 r (Star r)
let opt r = Alt2 (r, Eps)

let str s =
  if s = "" then Eps
  else seq (List.init (String.length s) (fun i -> chr s.[i]))

let digit = range '0' '9'
let lower = range 'a' 'z'
let upper = range 'A' 'Z'
let letter = Ranges [ ('a', 'z'); ('A', 'Z') ]
let word_char = Ranges [ ('a', 'z'); ('A', 'Z'); ('0', '9'); ('_', '_') ]

let rec nullable = function
  | Eps -> true
  | Ranges _ -> false
  | Seq2 (r1, r2) -> nullable r1 && nullable r2
  | Alt2 (r1, r2) -> nullable r1 || nullable r2
  | Star _ -> true
