(** Longest-match scanners built from prioritized regex rules.

    A scanner turns an input string into raw tokens using the
    maximal-munch rule; ties between rules matching the same length are
    broken by rule order (first rule wins), as in ANTLR and ocamllex.
    Rules marked [Skip] match but emit nothing (whitespace, comments). *)

type action =
  | Emit  (** produce a token named after the rule *)
  | Skip  (** match and discard *)

type rule = {
  name : string;
  re : Regex.t;
  action : action;
}

val rule : ?skip:bool -> string -> Regex.t -> rule

type t

(** @raise Invalid_argument if any rule accepts the empty string (such a
    rule could make the scanner loop). *)
val make : rule list -> t

(** A raw token, before terminal-name resolution against a grammar. *)
type raw = {
  kind : string;
  lexeme : string;
  line : int;
  col : int;
}

type error = {
  msg : string;
  err_line : int;
  err_col : int;
}

val pp_error : Format.formatter -> error -> unit

(** [scan t input] produces the raw token sequence, or the position of the
    first character no rule matches. *)
val scan : t -> string -> (raw list, error) result

(** [tokenize t g input] scans and resolves token kinds to terminals of
    [g].  Raw tokens whose kind is not a terminal of [g] produce an
    [Error]. *)
val tokenize :
  t -> Costar_grammar.Grammar.t -> string ->
  (Costar_grammar.Token.t list, error) result
