type action =
  | Emit
  | Skip

type rule = {
  name : string;
  re : Regex.t;
  action : action;
}

let rule ?(skip = false) name re =
  { name; re; action = (if skip then Skip else Emit) }

type t = {
  rules : rule array;
  dfa : Dfa.t;
}

let make rules =
  List.iter
    (fun r ->
      if Regex.nullable r.re then
        invalid_arg ("Scanner.make: rule " ^ r.name ^ " accepts empty string"))
    rules;
  let nfa = Nfa.build (List.map (fun r -> r.re) rules) in
  { rules = Array.of_list rules; dfa = Dfa.of_nfa nfa }

type raw = {
  kind : string;
  lexeme : string;
  line : int;
  col : int;
}

type error = {
  msg : string;
  err_line : int;
  err_col : int;
}

let pp_error ppf e =
  Fmt.pf ppf "lexical error at line %d, column %d: %s" e.err_line e.err_col
    e.msg

let scan t input =
  let n = String.length input in
  let line = ref 1 and col = ref 0 in
  let advance_pos lexeme =
    String.iter
      (fun c ->
        if c = '\n' then begin
          incr line;
          col := 0
        end
        else incr col)
      lexeme
  in
  let rec go pos acc =
    if pos >= n then Ok (List.rev acc)
    else begin
      (* Maximal munch: run the DFA as far as possible, remembering the
         last accepting position and its rule. *)
      let best = ref None in
      let state = ref (Dfa.start t.dfa) in
      let i = ref pos in
      (match Dfa.accept t.dfa !state with
      | Some _ -> assert false (* no nullable rules *)
      | None -> ());
      let continue = ref true in
      while !continue && !i < n do
        let s' = Dfa.next t.dfa !state input.[!i] in
        if s' < 0 then continue := false
        else begin
          state := s';
          incr i;
          match Dfa.accept t.dfa s' with
          | Some rule_ix -> best := Some (!i, rule_ix)
          | None -> ()
        end
      done;
      match !best with
      | None ->
        Error
          {
            msg = Printf.sprintf "no rule matches %C" input.[pos];
            err_line = !line;
            err_col = !col;
          }
      | Some (end_pos, rule_ix) ->
        let lexeme = String.sub input pos (end_pos - pos) in
        let r = t.rules.(rule_ix) in
        let tok_line = !line and tok_col = !col in
        advance_pos lexeme;
        let acc =
          match r.action with
          | Skip -> acc
          | Emit ->
            { kind = r.name; lexeme; line = tok_line; col = tok_col } :: acc
        in
        go end_pos acc
    end
  in
  go 0 []

let tokenize t g input =
  match scan t input with
  | Error e -> Error e
  | Ok raws ->
    let module G = Costar_grammar.Grammar in
    let module Tk = Costar_grammar.Token in
    let rec resolve acc = function
      | [] -> Ok (List.rev acc)
      | r :: rest -> (
        match G.terminal_of_name g r.kind with
        | Some term ->
          resolve (Tk.make ~line:r.line ~col:r.col term r.lexeme :: acc) rest
        | None ->
          Error
            {
              msg =
                Printf.sprintf "token kind %s is not a terminal of the grammar"
                  r.kind;
              err_line = r.line;
              err_col = r.col;
            })
    in
    resolve [] raws
