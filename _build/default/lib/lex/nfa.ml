type state = int

type t = {
  num_states : int;
  start : state;
  eps : state list array;  (** epsilon transitions *)
  trans : (char * char * state) list array;  (** range transitions *)
  accepts : int option array;  (** accepting rule index per state *)
}

let num_states n = n.num_states
let start n = n.start
let accept_rule n s = n.accepts.(s)

(* Mutable builder. *)
type builder = {
  mutable n : int;
  mutable b_eps : (state * state) list;
  mutable b_trans : (state * char * char * state) list;
  mutable b_accepts : (state * int) list;
}

let fresh b =
  let s = b.n in
  b.n <- b.n + 1;
  s

let add_eps b s1 s2 = b.b_eps <- (s1, s2) :: b.b_eps
let add_trans b s1 lo hi s2 = b.b_trans <- (s1, lo, hi, s2) :: b.b_trans

(* Thompson fragment for [re] between fresh entry/exit states. *)
let rec fragment b re =
  match Regex.view re with
  | Regex.Eps ->
    let s = fresh b and e = fresh b in
    add_eps b s e;
    (s, e)
  | Regex.Ranges ranges ->
    let s = fresh b and e = fresh b in
    List.iter (fun (lo, hi) -> add_trans b s lo hi e) ranges;
    (s, e)
  | Regex.Seq2 (r1, r2) ->
    let s1, e1 = fragment b r1 in
    let s2, e2 = fragment b r2 in
    add_eps b e1 s2;
    (s1, e2)
  | Regex.Alt2 (r1, r2) ->
    let s = fresh b and e = fresh b in
    let s1, e1 = fragment b r1 in
    let s2, e2 = fragment b r2 in
    add_eps b s s1;
    add_eps b s s2;
    add_eps b e1 e;
    add_eps b e2 e;
    (s, e)
  | Regex.Star r ->
    let s = fresh b and e = fresh b in
    let s1, e1 = fragment b r in
    add_eps b s s1;
    add_eps b s e;
    add_eps b e1 s1;
    add_eps b e1 e;
    (s, e)

let build rules =
  let b = { n = 0; b_eps = []; b_trans = []; b_accepts = [] } in
  let start = fresh b in
  List.iteri
    (fun ix re ->
      let s, e = fragment b re in
      add_eps b start s;
      b.b_accepts <- (e, ix) :: b.b_accepts)
    rules;
  let eps = Array.make b.n [] in
  List.iter (fun (s1, s2) -> eps.(s1) <- s2 :: eps.(s1)) b.b_eps;
  let trans = Array.make b.n [] in
  List.iter
    (fun (s1, lo, hi, s2) -> trans.(s1) <- (lo, hi, s2) :: trans.(s1))
    b.b_trans;
  let accepts = Array.make b.n None in
  List.iter
    (fun (s, ix) ->
      (* Lowest rule index wins when fragments share a state (they cannot,
         but be defensive). *)
      match accepts.(s) with
      | Some ix' when ix' <= ix -> ()
      | _ -> accepts.(s) <- Some ix)
    b.b_accepts;
  { num_states = b.n; start; eps; trans; accepts }

let eps_closure nfa states =
  let seen = Array.make nfa.num_states false in
  let rec go s =
    if not seen.(s) then begin
      seen.(s) <- true;
      List.iter go nfa.eps.(s)
    end
  in
  List.iter go states;
  let acc = ref [] in
  for s = nfa.num_states - 1 downto 0 do
    if seen.(s) then acc := s :: !acc
  done;
  !acc

let step nfa states c =
  let seen = Array.make nfa.num_states false in
  List.iter
    (fun s ->
      List.iter
        (fun (lo, hi, s') -> if c >= lo && c <= hi then seen.(s') <- true)
        nfa.trans.(s))
    states;
  let acc = ref [] in
  for s = nfa.num_states - 1 downto 0 do
    if seen.(s) then acc := s :: !acc
  done;
  !acc
