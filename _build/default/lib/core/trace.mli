(** Machine-execution traces in the style of the paper's Fig. 2.

    Each rendered state shows the suffix stack (unprocessed symbols, open
    nonterminals bracketed), the partial parse trees of the top prefix
    frame, the remaining tokens, and the visited set. *)

open Costar_grammar

val pp_state : Machine.env -> Format.formatter -> Machine.state -> unit

(** Run the parser, collecting one rendered line per machine state (the
    initial state included), and the final result. *)
val run : Parser.t -> Token.t list -> string list * Parser.result

(** [print p w] writes the trace to stdout and returns the result. *)
val print : Parser.t -> Token.t list -> Parser.result
