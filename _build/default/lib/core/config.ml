(** Prediction subparser configurations (paper, Fig. 1: [theta = (gamma, Psi)]).

    A configuration carries the index of the candidate right-hand side it was
    launched for ([pred]) and a stack of unprocessed-symbol frames.  SLL
    configurations additionally carry a truncated-stack context marker: when
    the frames are exhausted, the subparser simulates a return to the
    statically computed caller continuations of the context nonterminal
    (paper, §3.5 "stable return" frames), or accepts if end-of-input is
    legal there. *)

open Costar_grammar.Symbols

(** Truncated-stack context for SLL subparsers. *)
type sctx =
  | Ctx_nt of nonterminal
      (** Below the frames lies the (unknown) context of this nonterminal:
          popping past it forks to all grammar callers. *)
  | Ctx_accept
      (** Reached by popping through a caller chain that may legally end the
          input: the subparser is in accepting position. *)

type sll = {
  s_pred : int;
  s_frames : symbol list list;
  s_ctx : sctx;
}

type ll = {
  l_pred : int;
  l_frames : symbol list list;
}

let rec compare_frames f1 f2 =
  match f1, f2 with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | s1 :: r1, s2 :: r2 ->
    let c = compare_symbols s1 s2 in
    if c <> 0 then c else compare_frames r1 r2

let compare_sctx c1 c2 =
  match c1, c2 with
  | Ctx_nt x, Ctx_nt y -> Int.compare x y
  | Ctx_nt _, Ctx_accept -> -1
  | Ctx_accept, Ctx_nt _ -> 1
  | Ctx_accept, Ctx_accept -> 0

let compare_sll c1 c2 =
  let c = Int.compare c1.s_pred c2.s_pred in
  if c <> 0 then c
  else
    let c = compare_frames c1.s_frames c2.s_frames in
    if c <> 0 then c else compare_sctx c1.s_ctx c2.s_ctx

let compare_ll c1 c2 =
  let c = Int.compare c1.l_pred c2.l_pred in
  if c <> 0 then c else compare_frames c1.l_frames c2.l_frames

module Sll_set = Set.Make (struct
  type t = sll

  let compare = compare_sll
end)

module Ll_set = Set.Make (struct
  type t = ll

  let compare = compare_ll
end)

(** Distinct predictions carried by a list of configurations, ascending. *)
let preds_of_sll configs =
  List.sort_uniq Int.compare (List.map (fun c -> c.s_pred) configs)

let preds_of_ll configs =
  List.sort_uniq Int.compare (List.map (fun c -> c.l_pred) configs)
