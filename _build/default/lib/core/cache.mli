(** The SLL prediction cache: a persistent DFA per decision nonterminal
    (paper, §3.4).

    DFA states are interned canonical sets of SLL configurations; transitions
    are keyed by (state, terminal).  The cache is a purely functional value
    threaded through the machine state, exactly as in the Coq development; it
    only ever grows, and may be carried across parses via
    {!Parser.run_with_cache}. *)

open Costar_grammar.Symbols

type t

type state_id = int

(** Precomputed facts about an interned DFA state. *)
type verdict =
  | V_empty  (** no live subparsers: reject *)
  | V_all_pred of int  (** all live subparsers carry this prediction *)
  | V_pending  (** live subparsers disagree: keep scanning *)

type info = {
  configs : Config.sll list;  (** canonical (sorted, deduped) *)
  verdict : verdict;
  accepting : int list;
      (** distinct predictions of configurations in accepting position *)
}

val empty : t

val num_states : t -> int
val num_transitions : t -> int

(** Initial DFA state for a decision nonterminal, if already computed. *)
val find_init : t -> nonterminal -> state_id option

val add_init : t -> nonterminal -> state_id -> t

(** [intern cache configs] returns the id for this canonical configuration
    set, allocating (and precomputing {!info} for) a fresh state if new. *)
val intern : t -> Config.sll list -> t * state_id

val info : t -> state_id -> info

val find_trans : t -> state_id -> terminal -> state_id option

val add_trans : t -> state_id -> terminal -> state_id -> t

(** Memoized single-configuration closures.  The closure of a configuration
    set is the union of its members' closures, and identical configurations
    recur constantly across DFA states, so caching per-configuration results
    removes most closure work once the cache is warm. *)
val find_closure :
  t -> Config.sll -> (Config.sll list, Types.error) result option

val add_closure :
  t -> Config.sll -> (Config.sll list, Types.error) result -> t
