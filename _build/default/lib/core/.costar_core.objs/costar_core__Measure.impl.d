lib/core/measure.ml: Array Costar_grammar Fmt Grammar Int Int_set List Machine
