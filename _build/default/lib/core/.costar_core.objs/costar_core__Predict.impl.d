lib/core/predict.ml: Costar_grammar Grammar Ll Sll Types
