lib/core/ll.mli: Config Costar_grammar Grammar Token Types
