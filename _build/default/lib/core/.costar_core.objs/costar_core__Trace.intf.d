lib/core/trace.mli: Costar_grammar Format Machine Parser Token
