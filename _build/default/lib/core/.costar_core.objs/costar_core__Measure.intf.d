lib/core/measure.mli: Costar_grammar Format Grammar Int_set Machine
