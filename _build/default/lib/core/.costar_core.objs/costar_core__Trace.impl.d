lib/core/trace.ml: Costar_grammar Fmt Grammar Int_set List Machine Parser Printf String Token Tree
