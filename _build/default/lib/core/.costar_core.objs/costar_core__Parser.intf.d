lib/core/parser.mli: Analysis Cache Costar_grammar Format Grammar Machine Token Tree Types
