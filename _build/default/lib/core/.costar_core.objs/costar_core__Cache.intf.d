lib/core/cache.mli: Config Costar_grammar Types
