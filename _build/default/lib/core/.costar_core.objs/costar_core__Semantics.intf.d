lib/core/semantics.mli: Costar_grammar Grammar Parser Token Tree Types
