lib/core/cache.ml: Config Costar_grammar Int List Map Types
