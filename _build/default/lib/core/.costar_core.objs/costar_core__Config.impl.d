lib/core/config.ml: Costar_grammar Int List Set
