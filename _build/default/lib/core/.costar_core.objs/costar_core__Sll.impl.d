lib/core/sll.ml: Analysis Cache Config Costar_grammar Grammar Instr Int_set List Sll_set Token Types
