lib/core/machine.ml: Analysis Cache Costar_grammar Grammar Int_set List Predict Printf Token Tree Types
