lib/core/parser.ml: Analysis Cache Costar_grammar Fmt List Machine Sll Tree Types
