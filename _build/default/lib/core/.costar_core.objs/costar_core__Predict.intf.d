lib/core/predict.mli: Analysis Cache Costar_grammar Grammar Token Types
