lib/core/semantics.ml: Costar_grammar Grammar List Parser Printf Token Tree Types
