lib/core/types.ml: Costar_grammar Fmt
