lib/core/sll.mli: Analysis Cache Config Costar_grammar Grammar Token Types
