lib/core/ll.ml: Config Costar_grammar Grammar Instr Int_set List Ll_set Token Types
