lib/core/instr.ml: Hashtbl List
