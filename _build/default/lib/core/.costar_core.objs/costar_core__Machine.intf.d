lib/core/machine.mli: Analysis Cache Costar_grammar Grammar Int_set Token Tree Types
