(** [adaptivePredict] (paper, §3.4): SLL first, failing over to LL when the
    SLL result may be unsound.

    SLL's [Unique_pred] and [Reject_pred] are trusted (SLL overapproximates
    LL); an SLL [Ambig_pred] merely means several candidates survived, so
    prediction recommences in exact LL mode, whose [Ambig_pred] genuinely
    witnesses an ambiguous input. *)

open Costar_grammar
open Costar_grammar.Symbols

(** [adaptive_predict g a cache x conts tokens] chooses a right-hand side
    for decision nonterminal [x].  [conts] produces the unprocessed
    remainder of the suffix stack below the decision; it is a thunk because
    only the (rare) LL fallback needs it, and materializing it eagerly
    would cost O(stack depth) on every push — quadratic on deeply
    right-recursive inputs. *)
val adaptive_predict :
  Grammar.t ->
  Analysis.t ->
  Cache.t ->
  nonterminal ->
  (unit -> symbol list list) ->
  Token.t list ->
  Cache.t * Types.prediction
