open Costar_grammar
open Costar_grammar.Symbols
open Config

exception Left_rec of nonterminal

(* See the comment on [Sll.closure]: one visited-set snapshot per frame,
   restored on pop, so that completed nullable subtrees do not poison later
   expansions of the same nonterminal. *)
let closure g configs =
  let seen = ref Ll_set.empty in
  let stable = ref [] in
  let rec go cfg vises =
    if not (Ll_set.mem cfg !seen) then begin
      seen := Ll_set.add cfg !seen;
      match cfg.l_frames, vises with
      | [], _ ->
        (* The simulated stack is exhausted: this subparser is in accepting
           position (viable only if the input ends here). *)
        stable := cfg :: !stable
      | [] :: rest, _ :: vs -> go { cfg with l_frames = rest } vs
      | (T _ :: _) :: _, _ -> stable := cfg :: !stable
      | (NT y :: suf) :: rest, vis :: vs ->
        if Int_set.mem y vis then raise (Left_rec y)
        else
          (* See Sll.closure: skip empty residue frames. *)
          let frames_below, vises_below =
            if suf = [] then (rest, vs) else (suf :: rest, vis :: vs)
          in
          let vises = Int_set.add y vis :: vises_below in
          List.iter
            (fun rhs -> go { cfg with l_frames = rhs :: frames_below } vises)
            (Grammar.rhss_of g y)
      | _ :: _, [] -> assert false (* one snapshot per frame *)
    end
  in
  let fresh cfg = List.map (fun _ -> Int_set.empty) cfg.l_frames in
  match List.iter (fun c -> go c (fresh c)) configs with
  | () -> Ok (List.sort_uniq compare_ll !stable)
  | exception Left_rec x -> Error (Types.Left_recursive x)

let move configs a =
  List.filter_map
    (fun cfg ->
      match cfg.l_frames with
      | (T a' :: suf) :: rest when a' = a ->
        Some { cfg with l_frames = suf :: rest }
      | _ -> None)
    configs

let init_configs g x conts =
  List.map
    (fun ix -> { l_pred = ix; l_frames = (Grammar.prod g ix).rhs :: conts })
    (Grammar.prods_of g x)

let is_accepting cfg = cfg.l_frames = []

let predict g x conts tokens =
  let rec loop depth configs tokens =
    match preds_of_ll configs with
    | [] -> (Types.Reject_pred, depth)
    | [ p ] -> (Types.Unique_pred p, depth)
    | _ -> (
      match tokens with
      | [] -> (
        match preds_of_ll (List.filter is_accepting configs) with
        | [] -> (Types.Reject_pred, depth)
        | [ p ] -> (Types.Unique_pred p, depth)
        | p :: _ -> (Types.Ambig_pred p, depth))
      | tok :: rest -> (
        match closure g (move configs tok.Token.term) with
        | Error e -> (Types.Error_pred e, depth)
        | Ok configs' -> loop (depth + 1) configs' rest))
  in
  match closure g (init_configs g x conts) with
  | Error e -> Types.Error_pred e
  | Ok configs ->
    let result, depth = loop 0 configs tokens in
    Instr.record_ll x depth;
    result
