(** Semantic actions over parse trees.

    The paper lists user-defined semantic actions as future work (§8); this
    module provides the action layer on top of the verified parser: a
    catamorphism over parse trees where each production supplies a value
    built from its children's values.  Ambiguity keeps its meaning from the
    paper — actions run over the single tree the parser returns, and the
    [Ambig] label is surfaced so callers can reject ambiguous inputs before
    trusting the computed value.

    (Semantic {e predicates}, which gate prediction itself, are out of
    scope: they would change the parser's correctness statement.) *)

open Costar_grammar

type 'a actions = {
  on_token : Token.t -> 'a;
  on_production : Grammar.production -> 'a list -> 'a;
      (** Called with the production used at a node and the values of its
          children, in order. *)
}

(** Fold the actions over a tree.  [Error] when the tree is not well-formed
    with respect to the grammar (impossible for trees the parser built). *)
val eval : Grammar.t -> 'a actions -> Tree.t -> ('a, string) result

type 'a result =
  | Value of 'a  (** unique parse; action value *)
  | Ambiguous_value of 'a  (** input was ambiguous; value of the tree returned *)
  | Rejected of string
  | Failed of Types.error

(** Parse and evaluate in one step. *)
val run : Parser.t -> 'a actions -> Token.t list -> 'a result
