(** The well-founded termination measure (paper, §4.2–4.3).

    OCaml does not require a termination proof, but we implement the measure
    anyway and the test suite checks Lemmas 4.2–4.4 as executable properties:
    every machine step strictly decreases [meas] in the lexicographic order.

    [stackScore] values grow like [base^(|N| + stack height)], far beyond
    63-bit integers, so scores are represented exactly as base-[b] digit
    strings: [frameScore] coefficients are bounded by [maxRhsLen < b], so
    each frame contributes one digit. *)

open Costar_grammar
open Costar_grammar.Symbols

(** An exact natural number in base [base], least-significant digit first. *)
type score = private {
  base : int;
  digits : int array;
}

val compare_score : score -> score -> int

(** [stack_score g ~visited sufs] where [sufs] are the unprocessed symbol
    lists of the suffix stack, topmost first.  Uses base
    [1 + maxRhsLen(g)] and initial exponent [|U \ V|] per the paper. *)
val stack_score : Grammar.t -> visited:Int_set.t -> symbol list list -> score

(** The triple (remaining tokens, stack score, stack height). *)
type t = {
  tokens : int;
  score : score;
  height : int;
}

val meas : Grammar.t -> Machine.state -> t

(** Lexicographic order on triples (the paper's [<3], flipped to [compare]
    conventions). *)
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
