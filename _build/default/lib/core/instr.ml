(** Optional prediction instrumentation (disabled by default).

    When [enabled] is set, SLL and LL prediction record, per decision
    nonterminal, how many times they ran and how many tokens of lookahead
    they consumed.  Used by the benchmark harness and for performance
    debugging; zero-cost-ish when disabled (one branch per prediction). *)

let enabled = ref false

type counter = {
  mutable calls : int;
  mutable tokens : int;
}

let sll_tbl : (int, counter) Hashtbl.t = Hashtbl.create 64
let ll_tbl : (int, counter) Hashtbl.t = Hashtbl.create 64

let record tbl x n =
  let c =
    match Hashtbl.find_opt tbl x with
    | Some c -> c
    | None ->
      let c = { calls = 0; tokens = 0 } in
      Hashtbl.add tbl x c;
      c
  in
  c.calls <- c.calls + 1;
  c.tokens <- c.tokens + n

let record_sll x n = if !enabled then record sll_tbl x n
let record_ll x n = if !enabled then record ll_tbl x n

let reset () =
  Hashtbl.reset sll_tbl;
  Hashtbl.reset ll_tbl

(** Totals: (sll calls, sll lookahead tokens, ll calls, ll lookahead). *)
let totals () =
  let sum tbl f = Hashtbl.fold (fun _ c acc -> acc + f c) tbl 0 in
  ( sum sll_tbl (fun c -> c.calls),
    sum sll_tbl (fun c -> c.tokens),
    sum ll_tbl (fun c -> c.calls),
    sum ll_tbl (fun c -> c.tokens) )

(** Per-nonterminal rows sorted by lookahead volume: (nt, mode, calls,
    tokens). *)
let report () =
  let rows tbl mode =
    Hashtbl.fold (fun x c acc -> (x, mode, c.calls, c.tokens) :: acc) tbl []
  in
  List.sort
    (fun (_, _, _, t1) (_, _, _, t2) -> compare t2 t1)
    (rows sll_tbl `Sll @ rows ll_tbl `Ll)
