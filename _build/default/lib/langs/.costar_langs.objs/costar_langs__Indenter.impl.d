lib/langs/indenter.ml: Costar_lex List Printf Scanner
