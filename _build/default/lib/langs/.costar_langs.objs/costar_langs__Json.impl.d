lib/langs/json.ml: Costar_ebnf Costar_lex Fmt Gen_util Lang Lazy Regex Scanner
