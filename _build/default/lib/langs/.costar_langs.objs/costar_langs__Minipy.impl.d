lib/langs/minipy.ml: Costar_ebnf Costar_grammar Costar_lex Fmt Gen_util Indenter Lang Lazy List Printf Regex Scanner String
