lib/langs/lang.ml: Costar_grammar Grammar Lazy Printf Token
