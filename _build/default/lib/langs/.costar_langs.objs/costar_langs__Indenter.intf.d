lib/langs/indenter.mli: Costar_lex
