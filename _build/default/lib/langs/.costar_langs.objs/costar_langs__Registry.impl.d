lib/langs/registry.ml: Dot Json Lang List Minipy Xml
