lib/langs/gen_util.ml: Array Buffer Char Printf Random String
