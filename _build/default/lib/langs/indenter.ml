open Costar_lex

let openers = [ "("; "["; "{" ]
let closers = [ ")"; "]"; "}" ]

let synth kind line col = { Scanner.kind; lexeme = ""; line; col }

let run raws =
  let out = ref [] in
  let emit r = out := r :: !out in
  let indents = ref [ 0 ] in
  let depth = ref 0 in
  let line_has_content = ref false in
  let at_line_start = ref true in
  let error = ref None in
  let handle_line_start (tok : Scanner.raw) =
    let col = tok.Scanner.col in
    (match !indents with
    | top :: _ when col > top ->
      indents := col :: !indents;
      emit (synth "INDENT" tok.line 0)
    | _ ->
      let rec dedent () =
        match !indents with
        | top :: rest when col < top ->
          indents := rest;
          emit (synth "DEDENT" tok.line 0);
          dedent ()
        | top :: _ ->
          if col <> top then
            error :=
              Some
                (Printf.sprintf
                   "line %d: unindent does not match any outer level" tok.line)
        | [] -> assert false
      in
      dedent ());
    at_line_start := false
  in
  List.iter
    (fun (tok : Scanner.raw) ->
      if !error = None then
        if tok.Scanner.kind = "NEWLINE" then begin
          if !depth = 0 && !line_has_content then begin
            emit { tok with lexeme = "" };
            line_has_content := false;
            at_line_start := true
          end
          (* Blank line or implicit join: drop the newline. *)
        end
        else begin
          if !at_line_start && !depth = 0 then handle_line_start tok;
          if List.mem tok.kind openers then incr depth
          else if List.mem tok.kind closers then depth := max 0 (!depth - 1);
          line_has_content := true;
          emit tok
        end)
    raws;
  match !error with
  | Some msg -> Error msg
  | None ->
    let last_line =
      match !out with [] -> 1 | r :: _ -> r.Scanner.line + 1
    in
    if !line_has_content then emit (synth "NEWLINE" last_line 0);
    List.iter
      (fun level -> if level > 0 then emit (synth "DEDENT" last_line 0))
      !indents;
    Ok (List.rev !out)
