(** Python-style indentation pre-pass.

    Turns a flat scanner token stream into a logical-line stream with
    synthesized [INDENT] and [DEDENT] tokens, implementing the interesting
    parts of Python's tokenizer algorithm:

    - newlines inside parentheses/brackets/braces are implicit line joins
      and are dropped;
    - blank lines (and comment-only lines, whose comments the scanner has
      already skipped) produce no NEWLINE;
    - at the start of each logical line, a column increase pushes the indent
      stack and emits [INDENT]; a decrease pops and emits one [DEDENT] per
      level, and must land exactly on an enclosing level;
    - end of input closes any open logical line and emits the remaining
      [DEDENT]s. *)

(** [run raws] consumes the raw scanner tokens (which must include one raw
    per physical newline, kind ["NEWLINE"]) and yields the logical stream.
    Fails with a message on inconsistent dedents. *)
val run :
  Costar_lex.Scanner.raw list -> (Costar_lex.Scanner.raw list, string) result
