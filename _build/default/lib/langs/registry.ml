(** The benchmark languages, in the paper's Fig. 8 order. *)

let all : Lang.t list = [ Json.lang; Xml.lang; Dot.lang; Minipy.lang ]

let find name = List.find_opt (fun l -> l.Lang.name = name) all

let names = List.map (fun l -> l.Lang.name) all
