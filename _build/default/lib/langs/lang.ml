(** Common interface for the benchmark languages (paper, §6.1).

    Each language packages a desugared BNF grammar, a DFA scanner, a
    tokenizer (scanner plus any post-passes, e.g. Python's indenter), and a
    deterministic synthetic-corpus generator standing in for the paper's
    data sets (see DESIGN.md, substitutions table). *)

open Costar_grammar

type t = {
  name : string;
  grammar : Grammar.t Lazy.t;
  tokenize : string -> (Token.t list, string) result;
  generate : seed:int -> size:int -> string;
      (** [generate ~seed ~size] produces a source file; [size] roughly
          scales the number of syntactic items. *)
}

let grammar l = Lazy.force l.grammar
let tokenize l = l.tokenize
let generate l = l.generate

(** Tokenize, failing loudly — for tests and examples where the input is
    known to be lexable. *)
let tokenize_exn l input =
  match l.tokenize input with
  | Ok toks -> toks
  | Error msg -> invalid_arg (Printf.sprintf "%s lexer: %s" l.name msg)
