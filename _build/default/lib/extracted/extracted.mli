(** An "extraction-style" CoStar: the same ALL(star) algorithm as
    {!Costar_core}, implemented the way code extracted from Coq looks —
    string-named symbols compared lexicographically, AVL-tree maps and sets
    from the standard library everywhere, no interning, no arrays, no hash
    tables.

    Two purposes (DESIGN.md, experiment E8):

    - it reproduces the paper's §6.1 profiling observation that symbol
      comparison functions ([compareNT]) dominate execution time on large
      grammars, quantified here as the slowdown of this implementation
      relative to the interned-integer core on each benchmark grammar;
    - it is a second, independent implementation of the parser, and the
      test suite checks that both produce identical verdicts and trees on
      random grammars (differential testing).

    The implementation is deliberately self-contained: it shares no code
    with [Costar_core] beyond the token type. *)

open Costar_grammar

type symbol =
  | T of string
  | NT of string

type tree =
  | Leaf of string * string  (** terminal name, lexeme *)
  | Node of string * tree list

type result =
  | Unique of tree
  | Ambig of tree
  | Reject
  | Error of string

type grammar

(** Convert an interned grammar to the string-symbol representation. *)
val of_grammar : Grammar.t -> grammar

(** Build directly from (lhs, rhs) pairs in priority order. *)
val make : start:string -> (string * symbol list) list -> grammar

(** [parse g w] where tokens are (terminal name, lexeme) pairs. *)
val parse : grammar -> (string * string) list -> result

(** Run on a [Costar_grammar] token list by resolving terminal names. *)
val parse_tokens : grammar -> Grammar.t -> Token.t list -> result
