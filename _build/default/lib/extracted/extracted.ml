open Costar_grammar

type symbol =
  | T of string
  | NT of string

type tree =
  | Leaf of string * string
  | Node of string * tree list

type result =
  | Unique of tree
  | Ambig of tree
  | Reject
  | Error of string

(* compareNT / compareT: the string comparisons the paper's profiling
   identifies as dominant for large grammars. *)
let compare_nt (a : string) b = String.compare a b
let compare_t (a : string) b = String.compare a b

let compare_symbol s1 s2 =
  match s1, s2 with
  | T a, T b -> compare_t a b
  | NT x, NT y -> compare_nt x y
  | T _, NT _ -> -1
  | NT _, T _ -> 1

let rec compare_symbols l1 l2 =
  match l1, l2 with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | s1 :: r1, s2 :: r2 ->
    let c = compare_symbol s1 s2 in
    if c <> 0 then c else compare_symbols r1 r2

module SSet = Set.Make (String)
module SMap = Map.Make (String)

type grammar = {
  start : string;
  (* Production right-hand sides per nonterminal, in priority order; the
     global priority of a production is its (lhs, local index). *)
  by_lhs : symbol list list SMap.t;
  (* Derived analyses, all over string-keyed AVL maps. *)
  nullable : SSet.t;
  callers : (string * symbol list) list SMap.t;
  endable : SSet.t;
}

let nullable_seq nullable syms =
  List.for_all (function T _ -> false | NT x -> SSet.mem x nullable) syms

let compute_nullable by_lhs =
  let rec fix acc =
    let acc' =
      SMap.fold
        (fun x rhss acc ->
          if SSet.mem x acc then acc
          else if List.exists (nullable_seq acc) rhss then SSet.add x acc
          else acc)
        by_lhs acc
    in
    if SSet.equal acc acc' then acc else fix acc'
  in
  fix SSet.empty

let compute_callers by_lhs =
  SMap.fold
    (fun y rhss acc ->
      List.fold_left
        (fun acc rhs ->
          let rec go acc = function
            | [] -> acc
            | T _ :: rest -> go acc rest
            | NT x :: rest ->
              let entry = (y, rest) in
              let existing = Option.value ~default:[] (SMap.find_opt x acc) in
              let mem =
                List.exists
                  (fun (y', beta) ->
                    compare_nt y y' = 0 && compare_symbols rest beta = 0)
                  existing
              in
              let acc =
                if mem then acc else SMap.add x (existing @ [ entry ]) acc
              in
              go acc rest
          in
          go acc rhs)
        acc rhss)
    by_lhs SMap.empty

let compute_endable start nullable callers all_nts =
  let rec fix acc =
    let acc' =
      SSet.fold
        (fun x acc ->
          if SSet.mem x acc then acc
          else
            let cs = Option.value ~default:[] (SMap.find_opt x callers) in
            if
              List.exists
                (fun (y, beta) -> SSet.mem y acc && nullable_seq nullable beta)
                cs
            then SSet.add x acc
            else acc)
        all_nts acc
    in
    if SSet.equal acc acc' then acc else fix acc'
  in
  fix (SSet.singleton start)

let make ~start prods =
  let by_lhs =
    List.fold_left
      (fun acc (lhs, rhs) ->
        let existing = Option.value ~default:[] (SMap.find_opt lhs acc) in
        SMap.add lhs (existing @ [ rhs ]) acc)
      SMap.empty prods
  in
  let nullable = compute_nullable by_lhs in
  let callers = compute_callers by_lhs in
  let all_nts =
    SMap.fold (fun x _ acc -> SSet.add x acc) by_lhs SSet.empty
  in
  let endable = compute_endable start nullable callers all_nts in
  { start; by_lhs; nullable; callers; endable }

let of_grammar g =
  let sym = function
    | Symbols.T a -> T (Grammar.terminal_name g a)
    | Symbols.NT x -> NT (Grammar.nonterminal_name g x)
  in
  make
    ~start:(Grammar.nonterminal_name g (Grammar.start g))
    (Array.to_list
       (Array.map
          (fun p ->
            (Grammar.nonterminal_name g p.Grammar.lhs, List.map sym p.Grammar.rhs))
          (Grammar.prods g)))

let rhss g x = Option.value ~default:[] (SMap.find_opt x g.by_lhs)
let callers_of g x = Option.value ~default:[] (SMap.find_opt x g.callers)

(* --- Prediction configurations ------------------------------------------ *)

(* pred is (lhs, local production index): grammar-order priority. *)
type ctx =
  | Ctx_nt of string
  | Ctx_accept

type config = {
  pred : int;
  frames : symbol list list;
  ctx : ctx;
}

let rec compare_frames f1 f2 =
  match f1, f2 with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | s1 :: r1, s2 :: r2 ->
    let c = compare_symbols s1 s2 in
    if c <> 0 then c else compare_frames r1 r2

let compare_ctx c1 c2 =
  match c1, c2 with
  | Ctx_nt x, Ctx_nt y -> compare_nt x y
  | Ctx_nt _, Ctx_accept -> -1
  | Ctx_accept, Ctx_nt _ -> 1
  | Ctx_accept, Ctx_accept -> 0

let compare_config c1 c2 =
  let c = Int.compare c1.pred c2.pred in
  if c <> 0 then c
  else
    let c = compare_frames c1.frames c2.frames in
    if c <> 0 then c else compare_ctx c1.ctx c2.ctx

module Cfg_set = Set.Make (struct
  type t = config

  let compare = compare_config
end)

exception Left_rec of string

(* SLL closure with per-frame visited snapshots (same scheme as the core;
   see Sll.closure there). *)
let closure g configs =
  let seen = ref Cfg_set.empty in
  let stable = ref [] in
  let rec go cfg vises =
    if not (Cfg_set.mem cfg !seen) then begin
      seen := Cfg_set.add cfg !seen;
      match cfg.frames, vises with
      | [], _ -> (
        match cfg.ctx with
        | Ctx_accept -> stable := cfg :: !stable
        | Ctx_nt x ->
          List.iter
            (fun (y, beta) ->
              go { cfg with frames = [ beta ]; ctx = Ctx_nt y } [ SSet.empty ])
            (callers_of g x);
          if SSet.mem x g.endable then
            go { cfg with frames = []; ctx = Ctx_accept } [])
      | [] :: rest, _ :: vs -> go { cfg with frames = rest } vs
      | (T _ :: _) :: _, _ -> stable := cfg :: !stable
      | (NT y :: suf) :: rest, vis :: vs ->
        if SSet.mem y vis then raise (Left_rec y)
        else
          let vises = SSet.add y vis :: vis :: vs in
          List.iter
            (fun rhs -> go { cfg with frames = rhs :: suf :: rest } vises)
            (rhss g y)
      | _ :: _, [] -> assert false
    end
  in
  match
    List.iter (fun c -> go c (List.map (fun _ -> SSet.empty) c.frames)) configs
  with
  | () -> Ok (List.sort_uniq compare_config !stable)
  | exception Left_rec x -> Error ("left-recursive nonterminal " ^ x)

let move configs a =
  List.filter_map
    (fun cfg ->
      match cfg.frames with
      | (T a' :: suf) :: rest when compare_t a' a = 0 ->
        Some { cfg with frames = suf :: rest }
      | _ -> None)
    configs

let preds configs = List.sort_uniq Int.compare (List.map (fun c -> c.pred) configs)

let accepting cfg = cfg.ctx = Ctx_accept && cfg.frames = []

(* --- SLL prediction with a Map-based DFA cache --------------------------- *)

module Key = struct
  type t = config list

  let rec compare l1 l2 =
    match l1, l2 with
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | c1 :: r1, c2 :: r2 ->
      let c = compare_config c1 c2 in
      if c <> 0 then c else compare r1 r2
end

module Key_map = Map.Make (Key)
module IMap = Map.Make (Int)

module TKey = struct
  type t = int * string

  let compare (s1, a1) (s2, a2) =
    let c = Int.compare s1 s2 in
    if c <> 0 then c else compare_t a1 a2
end

module TMap = Map.Make (TKey)

type cache = {
  ids : int Key_map.t;
  cfgs : config list IMap.t;
  trans : int TMap.t;
  inits : int SMap.t;
  next : int;
}

let empty_cache =
  { ids = Key_map.empty; cfgs = IMap.empty; trans = TMap.empty; inits = SMap.empty; next = 0 }

let intern cache configs =
  match Key_map.find_opt configs cache.ids with
  | Some sid -> (cache, sid)
  | None ->
    let sid = cache.next in
    ( {
        cache with
        ids = Key_map.add configs sid cache.ids;
        cfgs = IMap.add sid configs cache.cfgs;
        next = sid + 1;
      },
      sid )

type 'a prediction =
  | Unique_p of 'a
  | Ambig_p of 'a
  | Reject_p
  | Error_p of string

let sll_predict g cache x tokens =
  let init () =
    match SMap.find_opt x cache.inits with
    | Some sid -> Ok (cache, sid)
    | None -> (
      let init_configs =
        List.mapi (fun i rhs -> { pred = i; frames = [ rhs ]; ctx = Ctx_nt x }) (rhss g x)
      in
      match closure g init_configs with
      | Error e -> Error e
      | Ok configs ->
        let cache, sid = intern cache configs in
        Ok ({ cache with inits = SMap.add x sid cache.inits }, sid))
  in
  match init () with
  | Error e -> (cache, Error_p e)
  | Ok (cache, sid0) ->
    let rec walk cache sid tokens =
      let configs = IMap.find sid cache.cfgs in
      match preds configs with
      | [] -> (cache, Reject_p)
      | [ p ] -> (cache, Unique_p p)
      | _ -> (
        match tokens with
        | [] -> (
          match preds (List.filter accepting configs) with
          | [] -> (cache, Reject_p)
          | [ p ] -> (cache, Unique_p p)
          | p :: _ -> (cache, Ambig_p p))
        | (a, _) :: rest -> (
          match TMap.find_opt (sid, a) cache.trans with
          | Some sid' -> walk cache sid' rest
          | None -> (
            match closure g (move configs a) with
            | Error e -> (cache, Error_p e)
            | Ok configs' ->
              let cache, sid' = intern cache configs' in
              let cache = { cache with trans = TMap.add (sid, a) sid' cache.trans } in
              walk cache sid' rest)))
    in
    walk cache sid0 tokens

(* --- LL prediction -------------------------------------------------------- *)

type ll_config = {
  l_pred : int;
  l_frames : symbol list list;
}

let compare_ll c1 c2 =
  let c = Int.compare c1.l_pred c2.l_pred in
  if c <> 0 then c else compare_frames c1.l_frames c2.l_frames

module Ll_set = Set.Make (struct
  type t = ll_config

  let compare = compare_ll
end)

let ll_closure g configs =
  let seen = ref Ll_set.empty in
  let stable = ref [] in
  let rec go cfg vises =
    if not (Ll_set.mem cfg !seen) then begin
      seen := Ll_set.add cfg !seen;
      match cfg.l_frames, vises with
      | [], _ -> stable := cfg :: !stable
      | [] :: rest, _ :: vs -> go { cfg with l_frames = rest } vs
      | (T _ :: _) :: _, _ -> stable := cfg :: !stable
      | (NT y :: suf) :: rest, vis :: vs ->
        if SSet.mem y vis then raise (Left_rec y)
        else
          let vises = SSet.add y vis :: vis :: vs in
          List.iter
            (fun rhs -> go { cfg with l_frames = rhs :: suf :: rest } vises)
            (rhss g y)
      | _ :: _, [] -> assert false
    end
  in
  match
    List.iter (fun c -> go c (List.map (fun _ -> SSet.empty) c.l_frames)) configs
  with
  | () -> Ok (List.sort_uniq compare_ll !stable)
  | exception Left_rec x -> Error ("left-recursive nonterminal " ^ x)

let ll_predict g x conts tokens =
  let ll_move configs a =
    List.filter_map
      (fun cfg ->
        match cfg.l_frames with
        | (T a' :: suf) :: rest when compare_t a' a = 0 ->
          Some { cfg with l_frames = suf :: rest }
        | _ -> None)
      configs
  in
  let l_preds cs = List.sort_uniq Int.compare (List.map (fun c -> c.l_pred) cs) in
  let rec loop configs tokens =
    match l_preds configs with
    | [] -> Reject_p
    | [ p ] -> Unique_p p
    | _ -> (
      match tokens with
      | [] -> (
        match l_preds (List.filter (fun c -> c.l_frames = []) configs) with
        | [] -> Reject_p
        | [ p ] -> Unique_p p
        | p :: _ -> Ambig_p p)
      | (a, _) :: rest -> (
        match ll_closure g (ll_move configs a) with
        | Error e -> Error_p e
        | Ok configs' -> loop configs' rest))
  in
  let init =
    List.mapi (fun i rhs -> { l_pred = i; l_frames = rhs :: conts }) (rhss g x)
  in
  match ll_closure g init with
  | Error e -> Error_p e
  | Ok configs -> loop configs tokens

let adaptive_predict g cache x conts tokens =
  match rhss g x with
  | [] -> (cache, Reject_p)
  | [ _ ] -> (cache, Unique_p 0)
  | _ -> (
    match sll_predict g cache x tokens with
    | (_, (Unique_p _ | Reject_p | Error_p _)) as r -> r
    | cache, Ambig_p _ -> (cache, ll_predict g x conts tokens))

(* --- The stack machine ---------------------------------------------------- *)

type frame = {
  label : string option;
  trees_rev : tree list;
  suf : symbol list;
}

let parse g tokens =
  let rec go top frames cache tokens visited unique =
    match top.suf with
    | T a :: suf -> (
      match tokens with
      | (a', lex) :: rest when compare_t a a' = 0 ->
        go
          { top with trees_rev = Leaf (a, lex) :: top.trees_rev; suf }
          frames cache rest SSet.empty unique
      | _ -> Reject)
    | NT x :: suf ->
      if SSet.mem x visited then Error ("left-recursive nonterminal " ^ x)
      else begin
        let conts = suf :: List.map (fun f -> f.suf) frames in
        match adaptive_predict g cache x conts tokens with
        | cache, Unique_p i ->
          go
            { label = Some x; trees_rev = []; suf = List.nth (rhss g x) i }
            ({ top with suf } :: frames)
            cache tokens (SSet.add x visited) unique
        | cache, Ambig_p i ->
          go
            { label = Some x; trees_rev = []; suf = List.nth (rhss g x) i }
            ({ top with suf } :: frames)
            cache tokens (SSet.add x visited) false
        | _, Reject_p -> Reject
        | _, Error_p e -> Error e
      end
    | [] -> (
      match frames, top.label with
      | caller :: frames', Some x ->
        let node = Node (x, List.rev top.trees_rev) in
        go
          { caller with trees_rev = node :: caller.trees_rev }
          frames' cache tokens (SSet.remove x visited) unique
      | [], None -> (
        match tokens, top.trees_rev with
        | [], [ v ] -> if unique then Unique v else Ambig v
        | _ :: _, _ -> Reject
        | [], _ -> Error "malformed final configuration")
      | _ -> Error "malformed stack")
  in
  go
    { label = None; trees_rev = []; suf = [ NT g.start ] }
    [] empty_cache tokens SSet.empty true

let parse_tokens eg g tokens =
  parse eg
    (List.map
       (fun t ->
         (Grammar.terminal_name g t.Token.term, t.Token.lexeme))
       tokens)
