lib/extracted/extracted.mli: Costar_grammar Grammar Token
