lib/extracted/extracted.ml: Array Costar_grammar Grammar Int List Map Option Set String Symbols Token
