(** Turbo: an unverified, imperatively optimized ALL(star) parser.

    Turbo is this repo's stand-in for ANTLR in the paper's §6.2 comparison
    (DESIGN.md, experiments E3 and E4).  It implements the same algorithm as
    {!Costar_core.Parser} — and is differentially tested against it — but
    trades the verified implementation's purely functional style for the
    optimizations an engineer would reach for:

    - tokens in an array indexed by position, not a linked list;
    - a static 1-token dispatch table that resolves unambiguous decisions
      without launching subparsers (most decisions in practice);
    - mutable hash-table DFA caches that persist across inputs, enabling
      the warm-cache experiments of Fig. 11.

    Results are bit-identical to the verified parser's (same trees, same
    Unique/Ambig labels, same accept/reject verdicts). *)

open Costar_grammar

type t

(** Build a parser instance.  The instance owns mutable caches; it is not
    thread-safe, and cache contents persist across {!parse} calls. *)
val create : Grammar.t -> t

val grammar : t -> Grammar.t

val parse : t -> Token.t list -> Costar_core.Parser.result

(** Forget all dynamically learned DFA states (the static dispatch table
    remains): the "cold cache" configuration of experiment E4. *)
val reset_cache : t -> unit

(** Number of interned DFA states currently cached. *)
val cache_states : t -> int
