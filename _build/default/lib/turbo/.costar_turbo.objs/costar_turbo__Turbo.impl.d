lib/turbo/turbo.ml: Analysis Array Costar_core Costar_grammar Grammar Hashtbl Int_set List Printf Token Tree
