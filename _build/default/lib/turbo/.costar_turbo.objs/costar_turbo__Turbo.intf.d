lib/turbo/turbo.mli: Costar_core Costar_grammar Grammar Token
