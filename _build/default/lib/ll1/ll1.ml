open Costar_grammar
open Costar_grammar.Symbols

type conflict = {
  nt : nonterminal;
  on : terminal option;
  prods : int list;
}

let pp_conflict g ppf c =
  Fmt.pf ppf "LL(1) conflict at %s on %s between {%a}"
    (Grammar.nonterminal_name g c.nt)
    (match c.on with
    | Some a -> "'" ^ Grammar.terminal_name g a ^ "'"
    | None -> "<eof>")
    Fmt.(list ~sep:comma (fun ppf ix -> Grammar.pp_production g ppf (Grammar.prod g ix)))
    c.prods

type table = {
  g : Grammar.t;
  (* cells.(x * num_terminals + a) and eof.(x): candidate production lists,
     in grammar order. *)
  cells : int list array;
  eof : int list array;
}

let build_raw g =
  let anl = Analysis.make g in
  let nts = Grammar.num_nonterminals g and terms = Grammar.num_terminals g in
  let cells = Array.make (nts * terms) [] in
  let eof = Array.make nts [] in
  let add_cell x a ix = cells.((x * terms) + a) <- cells.((x * terms) + a) @ [ ix ] in
  Array.iter
    (fun p ->
      let x = p.Grammar.lhs in
      Int_set.iter (fun a -> add_cell x a p.ix) (Analysis.first_seq anl p.rhs);
      if Analysis.nullable_seq anl p.rhs then begin
        Int_set.iter (fun a -> add_cell x a p.ix) (Analysis.follow anl x);
        if Analysis.follow_end anl x then eof.(x) <- eof.(x) @ [ p.ix ]
      end)
    (Grammar.prods g);
  { g; cells; eof }

let conflicts g =
  let t = build_raw g in
  let terms = Grammar.num_terminals g in
  let acc = ref [] in
  Array.iteri
    (fun i prods ->
      match prods with
      | _ :: _ :: _ -> acc := { nt = i / terms; on = Some (i mod terms); prods } :: !acc
      | _ -> ())
    t.cells;
  Array.iteri
    (fun x prods ->
      match prods with
      | _ :: _ :: _ -> acc := { nt = x; on = None; prods } :: !acc
      | _ -> ())
    t.eof;
  List.rev !acc

let build g =
  match conflicts g with [] -> Ok (build_raw g) | cs -> Error cs

(* The driver mirrors the CoStar machine's merged frames, minus prediction:
   each frame records the open nonterminal, the reversed subtrees built so
   far, and the unprocessed symbols. *)
type frame = {
  label : nonterminal option;
  trees_rev : Tree.t list;
  suf : symbol list;
}

let parse t w =
  let g = t.g in
  let terms = Grammar.num_terminals g in
  let lookup x = function
    | Some a -> (
      match t.cells.((x * terms) + a) with [ ix ] -> Some ix | _ -> None)
    | None -> ( match t.eof.(x) with [ ix ] -> Some ix | _ -> None)
  in
  let rec go top frames tokens =
    match top.suf with
    | T a :: suf -> (
      match tokens with
      | tok :: rest when tok.Token.term = a ->
        go { top with trees_rev = Tree.Leaf tok :: top.trees_rev; suf } frames rest
      | tok :: _ ->
        Error
          (Printf.sprintf "expected '%s' but found '%s' at line %d"
             (Grammar.terminal_name g a)
             (Grammar.terminal_name g tok.Token.term)
             tok.Token.line)
      | [] ->
        Error
          (Printf.sprintf "expected '%s' but reached end of input"
             (Grammar.terminal_name g a)))
    | NT x :: suf -> (
      let la = match tokens with tok :: _ -> Some tok.Token.term | [] -> None in
      match lookup x la with
      | Some ix ->
        go
          { label = Some x; trees_rev = []; suf = (Grammar.prod g ix).rhs }
          ({ top with suf } :: frames)
          tokens
      | None ->
        Error
          (Printf.sprintf "no table entry for %s on %s"
             (Grammar.nonterminal_name g x)
             (match la with
             | Some a -> "'" ^ Grammar.terminal_name g a ^ "'"
             | None -> "<eof>")))
    | [] -> (
      match frames, top.label with
      | caller :: frames', Some x ->
        let node = Tree.Node (x, List.rev top.trees_rev) in
        go { caller with trees_rev = node :: caller.trees_rev } frames' tokens
      | [], None -> (
        match tokens, top.trees_rev with
        | [], [ v ] -> Ok v
        | tok :: _, _ ->
          Error
            (Printf.sprintf "input remains at line %d: '%s'" tok.Token.line
               tok.Token.lexeme)
        | [], _ -> Error "malformed final state")
      | _ -> Error "malformed stack")
  in
  go
    { label = None; trees_rev = []; suf = [ NT (Grammar.start g) ] }
    [] w

let parse_with g w =
  match build g with
  | Ok t -> parse t w
  | Error cs ->
    Error
      (Fmt.str "grammar is not LL(1): %a"
         Fmt.(list ~sep:(any "; ") (pp_conflict g))
         cs)
