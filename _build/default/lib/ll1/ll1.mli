(** A table-driven LL(1) parser generator: the verified-top-down-parsing
    baseline (Lasser et al., ITP 2019; paper §1, §7).

    Building the table reports every LL(1) conflict, which is how experiment
    E7 demonstrates that the XML benchmark grammar is out of reach for
    LL(1)-only verified parsers while CoStar handles it. *)

open Costar_grammar
open Costar_grammar.Symbols

type conflict = {
  nt : nonterminal;
  on : terminal option;  (** [None] = conflict in the end-of-input column *)
  prods : int list;  (** competing production indices *)
}

val pp_conflict : Grammar.t -> Format.formatter -> conflict -> unit

type table

(** [build g] constructs the LL(1) table, or reports all conflicts. *)
val build : Grammar.t -> (table, conflict list) result

(** Number of conflicts without building (for reporting). *)
val conflicts : Grammar.t -> conflict list

(** [parse table w] drives the table over [w].  The driver uses an explicit
    stack, so deeply nested inputs cannot overflow the OCaml stack. *)
val parse : table -> Token.t list -> (Tree.t, string) result

(** Convenience: build and parse, failing on conflicted grammars. *)
val parse_with : Grammar.t -> Token.t list -> (Tree.t, string) result
