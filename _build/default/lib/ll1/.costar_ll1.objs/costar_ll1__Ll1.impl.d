lib/ll1/ll1.ml: Analysis Array Costar_grammar Fmt Grammar Int_set List Printf Token Tree
