lib/ll1/ll1.mli: Costar_grammar Format Grammar Token Tree
