open Costar_grammar
open Costar_grammar.Symbols

type item = {
  prod : int;
  dot : int;
  origin : int;
}

module Item_set = Set.Make (struct
  type t = item

  let compare i1 i2 =
    let c = Int.compare i1.prod i2.prod in
    if c <> 0 then c
    else
      let c = Int.compare i1.dot i2.dot in
      if c <> 0 then c else Int.compare i1.origin i2.origin
end)

let accepts_sym g start w =
  let anl = Analysis.make g in
  let rhs_arr =
    Array.map (fun p -> Array.of_list p.Grammar.rhs) (Grammar.prods g)
  in
  let toks = Array.of_list w in
  let n = Array.length toks in
  let sets = Array.make (n + 1) Item_set.empty in
  (* Queue of unprocessed items per set, drained one set at a time. *)
  let add i item queue =
    if Item_set.mem item sets.(i) then queue
    else begin
      sets.(i) <- Item_set.add item sets.(i);
      item :: queue
    end
  in
  let next_sym item =
    let rhs = rhs_arr.(item.prod) in
    if item.dot < Array.length rhs then Some rhs.(item.dot) else None
  in
  let seed i queue =
    List.fold_left
      (fun q ix -> add i { prod = ix; dot = 0; origin = i } q)
      queue (Grammar.prods_of g start)
  in
  let process i =
    let queue = ref (Item_set.elements sets.(i)) in
    while !queue <> [] do
      let item = List.hd !queue in
      queue := List.tl !queue;
      match next_sym item with
      | Some (NT y) ->
        List.iter
          (fun ix -> queue := add i { prod = ix; dot = 0; origin = i } !queue)
          (Grammar.prods_of g y);
        (* Aycock-Horspool: a nullable nonterminal may be skipped over
           immediately, covering same-set completions. *)
        if Analysis.nullable anl y then
          queue := add i { item with dot = item.dot + 1 } !queue
      | Some (T a) ->
        if i < n && toks.(i).Token.term = a then
          (* Scanning fills the next set; it is drained when we get there. *)
          sets.(i + 1) <-
            Item_set.add { item with dot = item.dot + 1 } sets.(i + 1)
      | None ->
        (* Completion: advance every item in the origin set waiting on this
           item's left-hand side. *)
        let lhs = (Grammar.prod g item.prod).Grammar.lhs in
        Item_set.iter
          (fun it ->
            match next_sym it with
            | Some (NT y) when y = lhs ->
              queue := add i { it with dot = it.dot + 1 } !queue
            | _ -> ())
          sets.(item.origin)
    done
  in
  sets.(0) <- Item_set.empty;
  let _ = seed 0 [] in
  for i = 0 to n do
    process i
  done;
  Item_set.exists
    (fun item ->
      item.origin = 0
      && (Grammar.prod g item.prod).Grammar.lhs = start
      && next_sym item = None)
    sets.(n)

let accepts g w = accepts_sym g (Grammar.start g) w
