(** Capped derivation counting: the ambiguity oracle.

    [count_trees g w] computes [min cap N] where [N] is the number of
    distinct parse trees for [w] rooted at the start symbol — including
    [N = infinity], which unit/epsilon cycles can produce; the saturating
    fixpoint converges to the cap in that case.  The CoStar test suite uses
    [0 / 1 / >= 2] to decide the expected Reject / Unique / Ambig verdict
    (paper, Theorems 5.1, 5.6, 5.11, 5.12). *)

open Costar_grammar

val count_trees : ?cap:int -> Grammar.t -> Token.t list -> int

val count_trees_sym :
  ?cap:int -> Grammar.t -> Symbols.nonterminal -> Token.t list -> int

(** [enumerate ~limit ~depth g w] returns up to [limit] distinct parse trees
    for [w], exploring derivations of depth at most [depth] (deeper trees —
    only possible through unit/epsilon cycles — are ignored). *)
val enumerate :
  ?limit:int -> ?depth:int -> Grammar.t -> Token.t list -> Tree.t list

(** [first_tree g w] extracts one parse tree for [w] — the one that prefers
    earlier productions and leftmost-shortest splits — or [None] when
    [w] is not in the language.  Unlike {!enumerate}, extraction is
    polynomial: it is guided by the counting table and backtracks only
    over unit/epsilon cycles.  When [count_trees g w = 1], this is {e the}
    parse tree, making it an independent oracle for the parser's output
    trees. *)
val first_tree : Grammar.t -> Token.t list -> Tree.t option
