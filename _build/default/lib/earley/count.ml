open Costar_grammar
open Costar_grammar.Symbols

(* Saturating arithmetic capped at [cap]. *)
let sat_add cap a b = min cap (a + b)
let sat_mul cap a b = min cap (a * b)

let count_trees_sym ?(cap = 2) g start w =
  let toks = Array.of_list w in
  let n = Array.length toks in
  let num_nts = Grammar.num_nonterminals g in
  (* cnt.(x).((i * (n+1)) + j) = capped number of x-rooted trees over
     w[i..j).  Computed as the least fixpoint of the obvious recursive
     equations; saturation makes the lattice finite, so iteration
     terminates even for grammars with unit/epsilon cycles (where the true
     count is infinite). *)
  let cnt = Array.init num_nts (fun _ -> Array.make ((n + 1) * (n + 1)) 0) in
  let idx i j = (i * (n + 1)) + j in
  let sym_count s i j =
    match s with
    | T a -> if j = i + 1 && toks.(i).Token.term = a then 1 else 0
    | NT x -> cnt.(x).(idx i j)
  in
  (* Number of ways the symbols [syms] span w[i..j), with current counts. *)
  let rec seq_count syms i j =
    match syms with
    | [] -> if i = j then 1 else 0
    | [ s ] -> sym_count s i j
    | s :: rest ->
      let total = ref 0 in
      for m = i to j do
        if !total < cap then
          let c1 = sym_count s i m in
          if c1 > 0 then
            total := sat_add cap !total (sat_mul cap c1 (seq_count rest m j))
      done;
      !total
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun p ->
        let x = p.Grammar.lhs in
        for i = 0 to n do
          for j = i to n do
            let old = cnt.(x).(idx i j) in
            if old < cap then begin
              (* Recompute x's total over all its productions. *)
              let total = ref 0 in
              List.iter
                (fun ix ->
                  if !total < cap then
                    total :=
                      sat_add cap !total
                        (seq_count (Grammar.prod g ix).Grammar.rhs i j))
                (Grammar.prods_of g x);
              if !total > old then begin
                cnt.(x).(idx i j) <- !total;
                changed := true
              end
            end
          done
        done)
      (Grammar.prods g)
  done;
  cnt.(start).(idx 0 n)

let count_trees ?cap g w = count_trees_sym ?cap g (Grammar.start g) w

(* A reusable recognition table: derivable.(x).(i,j) for nonterminals. *)
let recognition_table g toks =
  let n = Array.length toks in
  let num_nts = Grammar.num_nonterminals g in
  let tbl = Array.init num_nts (fun _ -> Array.make ((n + 1) * (n + 1)) false) in
  let idx i j = (i * (n + 1)) + j in
  let sym_ok s i j =
    match s with
    | T a -> j = i + 1 && toks.(i).Token.term = a
    | NT x -> tbl.(x).(idx i j)
  in
  let rec seq_ok syms i j =
    match syms with
    | [] -> i = j
    | [ s ] -> sym_ok s i j
    | s :: rest ->
      let found = ref false in
      let m = ref i in
      while (not !found) && !m <= j do
        if sym_ok s i !m && seq_ok rest !m j then found := true;
        incr m
      done;
      !found
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun p ->
        let x = p.Grammar.lhs in
        for i = 0 to n do
          for j = i to n do
            if (not tbl.(x).(idx i j)) && seq_ok p.Grammar.rhs i j then begin
              tbl.(x).(idx i j) <- true;
              changed := true
            end
          done
        done)
      (Grammar.prods g)
  done;
  (tbl, idx)

let first_tree g w =
  let toks = Array.of_list w in
  let n = Array.length toks in
  let tbl, idx = recognition_table g toks in
  let sym_ok s i j =
    match s with
    | T a -> j = i + 1 && toks.(i).Token.term = a
    | NT x -> tbl.(x).(idx i j)
  in
  (* Backtracking extraction, pruned by the recognition table.  A path
     visited set over (nonterminal, span) blocks unit/epsilon cycles;
     minimal trees never repeat a (nonterminal, span) along a path, so the
     pruned search is still complete. *)
  let module Key = struct
    type t = int * int * int

    let compare = Stdlib.compare
  end in
  let module KSet = Set.Make (Key) in
  let rec build_sym s i j path =
    match s with
    | T _ -> if sym_ok s i j then Some (Tree.Leaf toks.(i)) else None
    | NT x ->
      if (not (sym_ok s i j)) || KSet.mem (x, i, j) path then None
      else begin
        let path = KSet.add (x, i, j) path in
        let rec try_prods = function
          | [] -> None
          | ix :: rest -> (
            match build_seq (Grammar.prod g ix).Grammar.rhs i j path with
            | Some kids -> Some (Tree.Node (x, kids))
            | None -> try_prods rest)
        in
        try_prods (Grammar.prods_of g x)
      end
  and build_seq syms i j path =
    match syms with
    | [] -> if i = j then Some [] else None
    | s :: rest ->
      let rec try_split m =
        if m > j then None
        else if sym_ok s i m then
          match build_sym s i m path with
          | Some v -> (
            match build_seq rest m j path with
            | Some vs -> Some (v :: vs)
            | None -> try_split (m + 1))
          | None -> try_split (m + 1)
        else try_split (m + 1)
      in
      try_split i
  in
  build_sym (NT (Grammar.start g)) 0 n KSet.empty

let enumerate ?(limit = 2) ?(depth = 64) g w =
  let toks = Array.of_list w in
  let n = Array.length toks in
  (* All trees for symbol [s] over w[i..j), up to [limit], depth-bounded. *)
  let rec sym_trees s i j d =
    if d <= 0 then []
    else
      match s with
      | T a ->
        if j = i + 1 && toks.(i).Token.term = a then [ Tree.Leaf toks.(i) ]
        else []
      | NT x ->
        List.concat_map
          (fun ix ->
            let rhs = (Grammar.prod g ix).Grammar.rhs in
            List.map
              (fun kids -> Tree.Node (x, kids))
              (seq_trees rhs i j (d - 1)))
          (Grammar.prods_of g x)
  and seq_trees syms i j d =
    match syms with
    | [] -> if i = j then [ [] ] else []
    | s :: rest ->
      List.concat
        (List.init
           (j - i + 1)
           (fun k ->
             let m = i + k in
             let heads = sym_trees s i m d in
             if heads = [] then []
             else
               List.concat_map
                 (fun tail -> List.map (fun h -> h :: tail) heads)
                 (seq_trees rest m j d)))
  in
  let all = sym_trees (NT (Grammar.start g)) 0 n depth in
  let distinct = List.sort_uniq Tree.compare all in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  take limit distinct
