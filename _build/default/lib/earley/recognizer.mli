(** An Earley recognizer for arbitrary context-free grammars.

    This is an independent implementation of language membership used as the
    completeness oracle for the CoStar parser (DESIGN.md §4) and as the
    general-CFG performance baseline (experiment E9).  It handles nullable
    nonterminals via the Aycock–Horspool prediction fix and, unlike the
    CoStar machine, is also correct for left-recursive grammars. *)

open Costar_grammar

(** [accepts g w]: is [w] in the language of [g]'s start symbol? *)
val accepts : Grammar.t -> Token.t list -> bool

(** [accepts_sym g x w]: does nonterminal [x] derive [w]? *)
val accepts_sym : Grammar.t -> Symbols.nonterminal -> Token.t list -> bool
