lib/earley/recognizer.ml: Analysis Array Costar_grammar Grammar Int List Set Token
