lib/earley/count.ml: Array Costar_grammar Grammar List Set Stdlib Token Tree
