lib/earley/count.mli: Costar_grammar Grammar Symbols Token Tree
