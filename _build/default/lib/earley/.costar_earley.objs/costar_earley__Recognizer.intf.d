lib/earley/recognizer.mli: Costar_grammar Grammar Symbols Token
