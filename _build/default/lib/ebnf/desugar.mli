(** Lowering EBNF to BNF (paper, §6.1).

    [? * +] operators and nested groups become fresh nonterminals with new
    productions, exactly as the paper's ANTLR-to-CoStar conversion tool
    does.  Repetition is expanded {e right}-recursively, so the result never
    introduces left recursion:

    - [e*] becomes [X -> eps | E X]
    - [e+] becomes [X -> E S] with [S] the star of [e] (so the
      loop-continuation decision needs one token of lookahead, as in
      ANTLR's ATN loops, rather than a rescan of [e])
    - [e?] becomes [X -> eps | E]
    - a nested alternation or group becomes [X -> alt1 | alt2 | ...]

    Structurally identical subexpressions share one synthesized nonterminal,
    keeping the desugared grammar compact (and the Fig. 8 statistics
    honest). *)

(** [to_grammar ~start rules] lowers and builds the grammar.
    @raise Invalid_argument on undefined references or duplicate rules. *)
val to_grammar :
  ?extra_terminals:string list ->
  start:string ->
  Ast.rule list ->
  Costar_grammar.Grammar.t
