(** Printing grammars back to the textual EBNF format.

    [grammar_to_string g] renders every nonterminal's alternatives, one
    rule per line, such that [Parse.grammar_of_string] reparses it to a
    structurally identical grammar (same rule order, same alternatives) —
    property-tested round-tripping. *)

val grammar_to_string : Costar_grammar.Grammar.t -> string

(** Render a single right-hand side (terminal names quoted as needed). *)
val rhs_to_string :
  Costar_grammar.Grammar.t -> Costar_grammar.Symbols.symbol list -> string
