lib/ebnf/parse.mli: Ast Costar_grammar
