lib/ebnf/print.ml: Buffer Costar_grammar Grammar List String
