lib/ebnf/desugar.mli: Ast Costar_grammar
