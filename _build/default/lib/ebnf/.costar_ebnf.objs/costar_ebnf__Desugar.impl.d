lib/ebnf/desugar.ml: Ast Costar_grammar Hashtbl List Printf
