lib/ebnf/parse.ml: Ast Buffer Desugar List Printf String
