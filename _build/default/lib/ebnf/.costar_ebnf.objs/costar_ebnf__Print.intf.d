lib/ebnf/print.mli: Costar_grammar
