lib/ebnf/ast.ml: Fmt
