(** EBNF abstract syntax.

    This is the input language of the grammar-conversion tool (paper, §6.1):
    rules may use alternation, grouping, and the [? * +] postfix operators,
    which {!Desugar} lowers to plain BNF. *)

type exp =
  | Ref of string  (** nonterminal reference *)
  | Tok of string  (** named token kind, e.g. [STRING] *)
  | Lit of string  (** literal terminal, e.g. ['{'] *)
  | Seq of exp list  (** [Seq []] is epsilon *)
  | Alt of exp list
  | Opt of exp
  | Star of exp
  | Plus of exp

type rule = {
  name : string;
  body : exp;
}

(** {1 Combinator-style builders} *)

let r name = Ref name
let tok name = Tok name
let lit s = Lit s
let seq es = Seq es
let alt es = Alt es
let opt e = Opt e
let star e = Star e
let plus e = Plus e
let eps = Seq []

let rule name body = { name; body }

let rec pp_exp ppf = function
  | Ref s -> Fmt.string ppf s
  | Tok s -> Fmt.string ppf s
  | Lit s -> Fmt.pf ppf "'%s'" s
  | Seq [] -> Fmt.string ppf "()"
  | Seq es -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:sp pp_exp) es
  | Alt es -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " | ") pp_exp) es
  | Opt e -> Fmt.pf ppf "%a?" pp_exp e
  | Star e -> Fmt.pf ppf "%a*" pp_exp e
  | Plus e -> Fmt.pf ppf "%a+" pp_exp e

let pp_rule ppf rule = Fmt.pf ppf "%s : %a ;" rule.name pp_exp rule.body
