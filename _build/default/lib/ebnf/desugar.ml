open Ast
module G = Costar_grammar.Grammar

(* Synthesized-rule table: structural subexpression -> fresh nonterminal
   name, plus the list of synthesized rules in creation order. *)
type st = {
  tbl : (exp, string) Hashtbl.t;
  mutable synthesized : (string * G.elt list list) list;
  mutable counter : int;
}

let fresh st prefix =
  st.counter <- st.counter + 1;
  Printf.sprintf "%s__%d" prefix st.counter

(* An alternative is a list of grammar elements.  [flatten_alts] turns an
   expression into its top-level alternatives; atoms inside an alternative
   that are not plain symbols are delegated to synthesized nonterminals. *)
let rec alternatives st (e : exp) : G.elt list list =
  match e with
  | Alt es -> List.concat_map (alternatives st) es
  | _ -> [ elems st e ]

and elems st (e : exp) : G.elt list =
  match e with
  | Seq es -> List.concat_map (elems st) es
  | Ref name -> [ G.n name ]
  | Tok name -> [ G.t name ]
  | Lit s -> [ G.t s ]
  | Alt _ | Opt _ | Star _ | Plus _ -> [ G.n (synthesize st e) ]

and synthesize st e =
  match Hashtbl.find_opt st.tbl e with
  | Some name -> name
  | None ->
    let kind =
      match e with
      | Opt _ -> "opt"
      | Star _ -> "star"
      | Plus _ -> "plus"
      | _ -> "grp"
    in
    let name = fresh st kind in
    Hashtbl.add st.tbl e name;
    let alts =
      match e with
      | Opt inner -> [ [] ] @ alternatives st inner
      | Star inner ->
        (* name -> eps | inner name  (right recursion) *)
        let inner_alts = alternatives st inner in
        [] :: List.map (fun alt -> alt @ [ G.n name ]) inner_alts
      | Plus inner ->
        (* name -> inner star(inner): the loop-continuation decision then
           lives in the star nonterminal and needs one token (enter vs
           follow), instead of a scan of a whole extra [inner] as the
           naive [inner | inner name] expansion would require. *)
        let star_name = synthesize st (Star inner) in
        let inner_alts = alternatives st inner in
        List.map (fun alt -> alt @ [ G.n star_name ]) inner_alts
      | other -> alternatives st other
    in
    st.synthesized <- (name, alts) :: st.synthesized;
    name

let to_grammar ?extra_terminals ~start rules =
  let st = { tbl = Hashtbl.create 64; synthesized = []; counter = 0 } in
  let main =
    List.map (fun rule -> (rule.name, alternatives st rule.body)) rules
  in
  (* Synthesized rules are appended after user rules, in creation order, so
     production indices of user rules match the source. *)
  G.define ?extra_terminals ~start (main @ List.rev st.synthesized)
