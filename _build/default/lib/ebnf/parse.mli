(** Parser for a textual EBNF grammar format (ANTLR-flavoured).

    Syntax:
    {v
      // line comment       /* block comment */
      json  : value ;
      obj   : '{' pair (',' pair)* '}' | '{' '}' ;
      pair  : STRING ':' value ;
    v}

    Lowercase identifiers are nonterminals, uppercase identifiers are token
    kinds, quoted strings are literal terminals.  Postfix [? * +] and
    parenthesised groups are supported.  The first rule is the default start
    symbol. *)

(** Parse the textual format into EBNF rules. *)
val rules_of_string : string -> (Ast.rule list, string) result

(** Parse and desugar in one step; [start] defaults to the first rule. *)
val grammar_of_string :
  ?extra_terminals:string list ->
  ?start:string ->
  string ->
  (Costar_grammar.Grammar.t, string) result
