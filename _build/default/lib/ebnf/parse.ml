(* A hand-written lexer and recursive-descent parser for the textual EBNF
   format.  (CoStar itself could parse this, but the grammar toolchain must
   not depend on the parser it feeds.) *)

type tok =
  | Ident of string
  | Literal of string
  | Colon
  | Semi
  | Bar
  | Lparen
  | Rparen
  | Quest
  | Aster
  | Plus_t
  | Eof

let tok_to_string = function
  | Ident s -> s
  | Literal s -> Printf.sprintf "'%s'" s
  | Colon -> ":"
  | Semi -> ";"
  | Bar -> "|"
  | Lparen -> "("
  | Rparen -> ")"
  | Quest -> "?"
  | Aster -> "*"
  | Plus_t -> "+"
  | Eof -> "<eof>"

exception Syntax_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Syntax_error s)) fmt

let lex input =
  let n = String.length input in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let is_ident_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_'
  in
  while !i < n do
    let c = input.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && input.[!i + 1] = '/' then begin
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && !i + 1 < n && input.[!i + 1] = '*' then begin
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if input.[!i] = '\n' then incr line;
        if !i + 1 < n && input.[!i] = '*' && input.[!i + 1] = '/' then begin
          i := !i + 2;
          closed := true
        end
        else incr i
      done;
      if not !closed then fail "line %d: unterminated block comment" !line
    end
    else if c = '\'' then begin
      let buf = Buffer.create 8 in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if input.[!i] = '\'' then begin
          incr i;
          closed := true
        end
        else if input.[!i] = '\\' && !i + 1 < n then begin
          (* Escapes inside literals: \' \\ \n \t *)
          (match input.[!i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | ch -> Buffer.add_char buf ch);
          i := !i + 2
        end
        else begin
          Buffer.add_char buf input.[!i];
          incr i
        end
      done;
      if not !closed then fail "line %d: unterminated literal" !line;
      if Buffer.length buf = 0 then fail "line %d: empty literal" !line;
      toks := Literal (Buffer.contents buf) :: !toks
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      toks := Ident (String.sub input start (!i - start)) :: !toks
    end
    else begin
      (match c with
      | ':' -> toks := Colon :: !toks
      | ';' -> toks := Semi :: !toks
      | '|' -> toks := Bar :: !toks
      | '(' -> toks := Lparen :: !toks
      | ')' -> toks := Rparen :: !toks
      | '?' -> toks := Quest :: !toks
      | '*' -> toks := Aster :: !toks
      | '+' -> toks := Plus_t :: !toks
      | _ -> fail "line %d: unexpected character %C" !line c);
      incr i
    end
  done;
  List.rev (Eof :: !toks)

(* Recursive descent over the token list. *)
type stream = { mutable toks : tok list }

let peek s = match s.toks with [] -> Eof | t :: _ -> t

let advance s = match s.toks with [] -> () | _ :: rest -> s.toks <- rest

let expect s t =
  if peek s = t then advance s
  else fail "expected %s but found %s" (tok_to_string t) (tok_to_string (peek s))

let is_upper_ident name =
  name <> "" && name.[0] >= 'A' && name.[0] <= 'Z'

let rec parse_alts s =
  let first = parse_seq s in
  let rec more acc =
    if peek s = Bar then begin
      advance s;
      more (parse_seq s :: acc)
    end
    else List.rev acc
  in
  match more [ first ] with [ single ] -> single | alts -> Ast.Alt alts

and parse_seq s =
  let rec items acc =
    match peek s with
    | Ident _ | Literal _ | Lparen -> items (parse_item s :: acc)
    | _ -> List.rev acc
  in
  match items [] with [ single ] -> single | es -> Ast.Seq es

and parse_item s =
  let atom =
    match peek s with
    | Ident name ->
      advance s;
      if is_upper_ident name then Ast.Tok name else Ast.Ref name
    | Literal lit ->
      advance s;
      Ast.Lit lit
    | Lparen ->
      advance s;
      let inner = parse_alts s in
      expect s Rparen;
      inner
    | t -> fail "expected an atom but found %s" (tok_to_string t)
  in
  let rec postfix e =
    match peek s with
    | Quest ->
      advance s;
      postfix (Ast.Opt e)
    | Aster ->
      advance s;
      postfix (Ast.Star e)
    | Plus_t ->
      advance s;
      postfix (Ast.Plus e)
    | _ -> e
  in
  postfix atom

let parse_rule s =
  (* A defined rule is a nonterminal whatever its case (see
     [resolve_refs] below); only *references* default by case. *)
  match peek s with
  | Ident name ->
    advance s;
    expect s Colon;
    let body = parse_alts s in
    expect s Semi;
    Ast.rule name body
  | t -> fail "expected a rule name but found %s" (tok_to_string t)

(* Identifier case decides token-vs-nonterminal at parse time, but an
   uppercase identifier that names a rule is unambiguously a nonterminal
   reference: reinterpret it, so grammars with uppercase nonterminals (and
   output of [Print.grammar_to_string]) round-trip. *)
let resolve_refs rules =
  let rule_names = List.map (fun r -> r.Ast.name) rules in
  let rec fix = function
    | Ast.Tok name when List.mem name rule_names -> Ast.Ref name
    | (Ast.Tok _ | Ast.Ref _ | Ast.Lit _) as e -> e
    | Ast.Seq es -> Ast.Seq (List.map fix es)
    | Ast.Alt es -> Ast.Alt (List.map fix es)
    | Ast.Opt e -> Ast.Opt (fix e)
    | Ast.Star e -> Ast.Star (fix e)
    | Ast.Plus e -> Ast.Plus (fix e)
  in
  List.map (fun r -> { r with Ast.body = fix r.Ast.body }) rules

let rules_of_string input =
  match
    let s = { toks = lex input } in
    let rec rules acc =
      if peek s = Eof then List.rev acc else rules (parse_rule s :: acc)
    in
    rules []
  with
  | [] -> Error "empty grammar"
  | rules -> Ok (resolve_refs rules)
  | exception Syntax_error msg -> Error msg

let grammar_of_string ?extra_terminals ?start input =
  match rules_of_string input with
  | Error _ as e -> e
  | Ok rules -> (
    let start =
      match start with Some s -> s | None -> (List.hd rules).Ast.name
    in
    match Desugar.to_grammar ?extra_terminals ~start rules with
    | g -> Ok g
    | exception Invalid_argument msg -> Error msg)
