open Costar_grammar
open Costar_grammar.Symbols

(* A terminal name can be written bare only if the lexer reads it back as
   an uppercase identifier; anything else is quoted, with escapes for the
   quote and backslash characters. *)
let is_upper_ident s =
  s <> ""
  && s.[0] >= 'A'
  && s.[0] <= 'Z'
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_')
       s

let quote_terminal name =
  if is_upper_ident name then name
  else begin
    let buf = Buffer.create (String.length name + 2) in
    Buffer.add_char buf '\'';
    String.iter
      (fun c ->
        match c with
        | '\'' -> Buffer.add_string buf "\\'"
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | c -> Buffer.add_char buf c)
      name;
    Buffer.add_char buf '\'';
    Buffer.contents buf
  end

let sym_to_string g = function
  | T a -> quote_terminal (Grammar.terminal_name g a)
  | NT x -> Grammar.nonterminal_name g x

let rhs_to_string g rhs = String.concat " " (List.map (sym_to_string g) rhs)

let grammar_to_string g =
  let buf = Buffer.create 256 in
  for x = 0 to Grammar.num_nonterminals g - 1 do
    match Grammar.rhss_of g x with
    | [] -> () (* nonterminals without productions cannot be expressed *)
    | rhss ->
      Buffer.add_string buf (Grammar.nonterminal_name g x);
      Buffer.add_string buf " : ";
      Buffer.add_string buf
        (String.concat " | " (List.map (rhs_to_string g) rhss));
      Buffer.add_string buf " ;\n"
  done;
  Buffer.contents buf
