(** Parse trees and forests (paper, Fig. 1).

    [Leaf t] holds a consumed token; [Node (x, kids)] holds a nonterminal and
    the subtrees for the symbols of one of its right-hand sides. *)

open Symbols

type t =
  | Leaf of Token.t
  | Node of nonterminal * t list

type forest = t list

(** Root symbol of a tree: the token's terminal for a leaf, the nonterminal
    for a node. *)
val root : t -> symbol

(** Frontier of the tree, left to right: the consumed tokens. *)
val yield : t -> Token.t list

val yield_forest : forest -> Token.t list

(** Number of nodes and leaves. *)
val size : t -> int

val depth : t -> int

(** Number of tokens in the frontier. *)
val width : t -> int

(** Structural equality: nodes by nonterminal, leaves by terminal and
    lexeme. *)
val equal : t -> t -> bool

val compare : t -> t -> int

(** Collect every nonterminal labelling a node. *)
val nonterminals : t -> Int_set.t

(** [pp g] renders a tree with symbol names resolved against [g], in
    s-expression style: [(S (A 'a' 'b') 'd')]. *)
val pp : Grammar.t -> Format.formatter -> t -> unit

val to_string : Grammar.t -> t -> string

(** GraphViz DOT rendering of a parse tree (one node per tree node). *)
val to_dot : Grammar.t -> t -> string
