(** Grammar transformations.

    The paper's correctness theorems require a non-left-recursive grammar
    and note (§4.1) that ANTLR sidesteps most left recursion by rewriting
    the grammar; verifying such rewrites is listed as future work (§8).
    This module implements the classical rewrites so that CoStar-ml can be
    applied to grammars written with left recursion:

    - {!eliminate_left_recursion}: Paull's algorithm (ordering nonterminals,
      substituting lower-ordered ones at the left edge, then removing
      immediate left recursion with fresh tail nonterminals);
    - {!left_factor}: repeatedly factors the longest common prefix of any
      two alternatives into a fresh nonterminal — useful to reduce
      prediction lookahead;
    - {!remove_useless}: drops non-productive and unreachable nonterminals.

    The transformations preserve the generated language (property-tested
    against the Earley oracle), but not parse trees: trees over the
    transformed grammar mention synthesized nonterminals. *)

(** Eliminate direct and indirect left recursion.  Fresh tail nonterminals
    are named [<nt>__lr].  Grammars with [X -> X] self-loops simply drop the
    cyclic production (it never changes the language).

    @raise Invalid_argument when the grammar has hidden left recursion (a
    left-recursive cycle through nullable symbols), which Paull's algorithm
    does not handle, or when epsilon productions among the substituted
    nonterminals make the substitution phase explode. *)
val eliminate_left_recursion : Grammar.t -> Grammar.t

(** Left-factor common prefixes of alternatives.  Fresh nonterminals are
    named [<nt>__lf<k>]. *)
val left_factor : Grammar.t -> Grammar.t

(** Remove unreachable and non-productive nonterminals (and productions
    mentioning them).  The start symbol is always kept.
    @raise Invalid_argument if the start symbol itself is non-productive
    (the language would be empty). *)
val remove_useless : Grammar.t -> Grammar.t
