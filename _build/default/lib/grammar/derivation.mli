(** Executable counterpart of the derivation relations of the paper's Fig. 3.

    [tree_derives g s w v] decides the judgment "symbol [s] derives word [w],
    producing tree [v]" (written [s --v--> w] in the paper); [forest_derives]
    decides the sentential-form variant [gamma --f--> w].  These checkers are
    the soundness specification used by the test suite: whenever the parser
    returns a tree, the tree must satisfy this relation. *)

open Symbols

(** Structural well-formedness of a tree with respect to a grammar: every
    node's children's roots spell out one of its right-hand sides. *)
val well_formed : Grammar.t -> Tree.t -> bool

val tree_derives : Grammar.t -> symbol -> Token.t list -> Tree.t -> bool

val forest_derives :
  Grammar.t -> symbol list -> Token.t list -> Tree.forest -> bool

(** [recognizes_start g w v] is [tree_derives g (NT (Grammar.start g)) w v]. *)
val recognizes_start : Grammar.t -> Token.t list -> Tree.t -> bool
