(** Tokens.

    A token pairs a terminal symbol with the literal text it was lexed from
    (paper, Fig. 1: [t ::= (a, l)]), plus a source position for error
    reporting.  The parser only inspects the [term] field; literals are
    carried into parse-tree leaves. *)

type t = {
  term : Symbols.terminal;
  lexeme : string;
  line : int;  (** 1-based line of the first character, 0 if unknown. *)
  col : int;  (** 0-based column of the first character. *)
}

let make ?(line = 0) ?(col = 0) term lexeme = { term; lexeme; line; col }

let term t = t.term
let lexeme t = t.lexeme

let equal t1 t2 = t1.term = t2.term && String.equal t1.lexeme t2.lexeme

let pp ?pool ppf t =
  let name =
    match pool with
    | Some p -> Pool.name p t.term
    | None -> string_of_int t.term
  in
  Fmt.pf ppf "(%s, %S)" name t.lexeme
