(** Grammar symbols.

    Terminals and nonterminals are interned integers (see {!Pool}); a symbol
    is a tagged union of the two.  This module also provides the fast
    comparison and set/map instances used throughout the parser. *)

type terminal = int
type nonterminal = int

type symbol =
  | T of terminal
  | NT of nonterminal

let compare_terminal (a : terminal) (b : terminal) = Int.compare a b
let compare_nonterminal (a : nonterminal) (b : nonterminal) = Int.compare a b

let compare_symbol s1 s2 =
  match s1, s2 with
  | T a, T b -> Int.compare a b
  | NT x, NT y -> Int.compare x y
  | T _, NT _ -> -1
  | NT _, T _ -> 1

let equal_symbol s1 s2 = compare_symbol s1 s2 = 0

let rec compare_symbols l1 l2 =
  match l1, l2 with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | s1 :: r1, s2 :: r2 ->
    let c = compare_symbol s1 s2 in
    if c <> 0 then c else compare_symbols r1 r2

let is_terminal = function T _ -> true | NT _ -> false
let is_nonterminal = function T _ -> false | NT _ -> true

module Int_set = Set.Make (Int)
module Int_map = Map.Make (Int)

module Sym_ord = struct
  type t = symbol

  let compare = compare_symbol
end

module Sym_set = Set.Make (Sym_ord)
module Sym_map = Map.Make (Sym_ord)
