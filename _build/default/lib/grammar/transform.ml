open Symbols

(* The transformations work on a name-based representation, since they
   synthesize fresh nonterminals; the result is rebuilt with
   [Grammar.define]. *)

type rules = (string * Grammar.elt list list) list

let to_rules g : rules =
  let elt = function
    | T a -> Grammar.Tm (Grammar.terminal_name g a)
    | NT x -> Grammar.Ntm (Grammar.nonterminal_name g x)
  in
  let names = List.init (Grammar.num_nonterminals g) (Grammar.nonterminal_name g) in
  List.map
    (fun name ->
      let x =
        match Grammar.nonterminal_of_name g name with
        | Some x -> x
        | None -> assert false
      in
      (name, List.map (List.map elt) (Grammar.rhss_of g x)))
    names

(* Rebuild with the source grammar's full terminal alphabet: a transformed
   grammar denotes a language over the same terminals even when some no
   longer occur in any production. *)
let of_rules ~like ~start (rules : rules) =
  let extra_terminals =
    List.init (Grammar.num_terminals like) (Grammar.terminal_name like)
  in
  Grammar.define ~extra_terminals ~start rules

let start_name g = Grammar.nonterminal_name g (Grammar.start g)

(* --- Left-recursion elimination (Paull's algorithm) --------------------- *)

let eliminate_left_recursion g =
  let rules = Array.of_list (to_rules g) in
  let n = Array.length rules in
  let fresh_rules = ref [] in
  (* Remove immediate left recursion on the rule at index [i]. *)
  let remove_immediate i =
    let name, alts = rules.(i) in
    let recs, nonrecs =
      List.partition
        (fun alt ->
          match alt with Grammar.Ntm x :: _ -> x = name | _ -> false)
        alts
    in
    (* X -> X alone is a unit cycle: it never contributes a finite
       derivation, so dropping it preserves the language. *)
    let recs =
      List.filter_map
        (fun alt ->
          match alt with
          | Grammar.Ntm _ :: [] -> None
          | Grammar.Ntm _ :: gamma -> Some gamma
          | _ -> assert false)
        recs
    in
    if recs <> [] then begin
      let tail = name ^ "__lr" in
      let base = List.map (fun beta -> beta @ [ Grammar.Ntm tail ]) nonrecs in
      rules.(i) <- (name, base);
      fresh_rules :=
        (tail, [] :: List.map (fun gamma -> gamma @ [ Grammar.Ntm tail ]) recs)
        :: !fresh_rules
    end
    else
      (* Every recursive alternative was a dropped X -> X self-loop: keep
         only the non-recursive alternatives. *)
      rules.(i) <- (name, nonrecs)
  in
  (* Guard against pathological blow-up: with epsilon productions among
     the lower-ordered nonterminals, Paull's substitution can oscillate or
     grow exponentially; cap the work and report instead of diverging. *)
  let budget = ref (1000 * (n + 1)) in
  let explode () =
    invalid_arg
      "Transform.eliminate_left_recursion: substitution exploded (epsilon \
       productions feeding the left-recursive cycle); refactor by hand"
  in
  for i = 0 to n - 1 do
    (* Substitute away leading references to earlier nonterminals. *)
    let changed = ref true in
    while !changed do
      decr budget;
      if !budget <= 0 then explode ();
      changed := false;
      let name, alts = rules.(i) in
      let alts' =
        List.concat_map
          (fun alt ->
            match alt with
            | Grammar.Ntm y :: gamma when y <> name ->
              let j = ref (-1) in
              Array.iteri (fun k (n', _) -> if n' = y then j := k) rules;
              if !j >= 0 && !j < i then begin
                changed := true;
                List.map (fun delta -> delta @ gamma) (snd rules.(!j))
              end
              else [ alt ]
            | _ -> [ alt ])
          alts
      in
      let alts' = List.sort_uniq Stdlib.compare alts' in
      if List.length alts' > 2000 then explode ();
      rules.(i) <- (name, alts')
    done;
    remove_immediate i
  done;
  let g' =
    of_rules ~like:g ~start:(start_name g) (Array.to_list rules @ List.rev !fresh_rules)
  in
  match Left_recursion.check g' with
  | Ok () -> g'
  | Error _ ->
    (* Left recursion hidden behind nullable symbols survives Paull's
       algorithm; the caller must refactor by hand. *)
    invalid_arg
      "Transform.eliminate_left_recursion: grammar has hidden left recursion \
       (left-recursive cycle through nullable symbols)"

(* --- Left factoring ------------------------------------------------------ *)

let common_prefix a b =
  let rec go acc a b =
    match a, b with
    | x :: a', y :: b' when x = y -> go (x :: acc) a' b'
    | _ -> List.rev acc
  in
  go [] a b

let rec drop k l = if k = 0 then l else drop (k - 1) (List.tl l)

let left_factor g =
  let counter = Hashtbl.create 16 in
  let fresh base =
    let k = Option.value ~default:0 (Hashtbl.find_opt counter base) + 1 in
    Hashtbl.replace counter base k;
    Printf.sprintf "%s__lf%d" base k
  in
  (* One factoring pass over a single rule: factor the first group of
     alternatives sharing their longest common prefix. *)
  let factor_rule (name, alts) =
    let rec find_group = function
      | [] -> None
      | alt :: rest -> (
        if alt = [] then find_group rest
        else
          let sharing =
            List.filter
              (fun alt' -> alt' <> [] && List.hd alt' = List.hd alt)
              rest
          in
          match sharing with
          | [] -> find_group rest
          | _ ->
            let group = alt :: sharing in
            let prefix =
              List.fold_left common_prefix (List.hd group) (List.tl group)
            in
            Some (prefix, group))
    in
    match find_group alts with
    | None -> None
    | Some (prefix, group) ->
      let tail_name = fresh name in
      let k = List.length prefix in
      let suffixes = List.map (fun alt -> drop k alt) group in
      let alts' =
        (* Keep alternative order: the factored alternative takes the
           position of the first group member. *)
        List.filter_map
          (fun alt ->
            if List.memq alt group then
              if alt == List.hd group then
                Some (prefix @ [ Grammar.Ntm tail_name ])
              else None
            else Some alt)
          alts
      in
      Some ((name, alts'), (tail_name, suffixes))
  in
  let rec saturate acc = function
    | [] -> List.rev acc
    | rule :: rest -> (
      match factor_rule rule with
      | None -> saturate (rule :: acc) rest
      | Some (rule', fresh_rule) -> saturate acc (rule' :: rest @ [ fresh_rule ]))
  in
  of_rules ~like:g ~start:(start_name g) (saturate [] (to_rules g))

(* --- Useless-symbol removal ---------------------------------------------- *)

let remove_useless g =
  let anl = Analysis.make g in
  if not (Analysis.productive anl (Grammar.start g)) then
    invalid_arg "Transform.remove_useless: the start symbol derives no word";
  (* Pass 1: drop non-productive nonterminals and productions using them. *)
  let productive_sym = function
    | T _ -> true
    | NT x -> Analysis.productive anl x
  in
  let rules1 =
    List.filter_map
      (fun name ->
        match Grammar.nonterminal_of_name g name with
        | None -> None
        | Some x ->
          if not (Analysis.productive anl x) then None
          else
            Some
              ( name,
                x,
                List.filter (List.for_all productive_sym) (Grammar.rhss_of g x)
              ))
      (List.init (Grammar.num_nonterminals g) (Grammar.nonterminal_name g))
  in
  (* Pass 2: keep only nonterminals reachable through surviving
     productions. *)
  let by_name = List.map (fun (name, _, rhss) -> (name, rhss)) rules1 in
  let reachable = Hashtbl.create 16 in
  let rec visit name =
    if not (Hashtbl.mem reachable name) then begin
      Hashtbl.add reachable name ();
      match List.assoc_opt name by_name with
      | None -> ()
      | Some rhss ->
        List.iter
          (List.iter (function
            | T _ -> ()
            | NT y -> visit (Grammar.nonterminal_name g y)))
          rhss
    end
  in
  visit (start_name g);
  let elt = function
    | T a -> Grammar.Tm (Grammar.terminal_name g a)
    | NT x -> Grammar.Ntm (Grammar.nonterminal_name g x)
  in
  let rules =
    List.filter_map
      (fun (name, _, rhss) ->
        if Hashtbl.mem reachable name then
          Some (name, List.map (List.map elt) rhss)
        else None)
      rules1
  in
  of_rules ~like:g ~start:(start_name g) rules
