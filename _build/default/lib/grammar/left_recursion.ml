open Symbols

(* Left edges: x -> y when x -> alpha y beta with alpha nullable. *)
let left_edges g a =
  let n = Grammar.num_nonterminals g in
  let edges = Array.make n Int_set.empty in
  Array.iter
    (fun p ->
      let rec go = function
        | [] -> ()
        | T _ :: _ -> ()
        | NT y :: rest ->
          edges.(p.Grammar.lhs) <- Int_set.add y edges.(p.Grammar.lhs);
          if Analysis.nullable a y then go rest
      in
      go p.rhs)
    (Grammar.prods g);
  edges

let left_recursive_nts g a =
  let n = Grammar.num_nonterminals g in
  let edges = left_edges g a in
  (* x is left-recursive iff x is reachable from x via >= 1 left edge. *)
  let reaches_self x =
    let seen = Array.make n false in
    let rec dfs y =
      y = x
      || (not seen.(y))
         && begin
              seen.(y) <- true;
              Int_set.exists dfs edges.(y)
            end
    in
    Int_set.exists dfs edges.(x)
  in
  let acc = ref Int_set.empty in
  for x = 0 to n - 1 do
    if reaches_self x then acc := Int_set.add x !acc
  done;
  !acc

let is_left_recursive g a x = Int_set.mem x (left_recursive_nts g a)

let check g =
  let a = Analysis.make g in
  let bad = left_recursive_nts g a in
  if Int_set.is_empty bad then Ok () else Error (Int_set.elements bad)
