lib/grammar/left_recursion.mli: Analysis Grammar Int_set Symbols
