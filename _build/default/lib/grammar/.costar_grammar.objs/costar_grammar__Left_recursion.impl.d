lib/grammar/left_recursion.ml: Analysis Array Grammar Int_set Symbols
