lib/grammar/sample.mli: Grammar Random Token
