lib/grammar/derivation.mli: Grammar Symbols Token Tree
