lib/grammar/atn.ml: Array Buffer Grammar List Printf Symbols
