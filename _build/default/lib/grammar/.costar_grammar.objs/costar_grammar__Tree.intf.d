lib/grammar/tree.mli: Format Grammar Int_set Symbols Token
