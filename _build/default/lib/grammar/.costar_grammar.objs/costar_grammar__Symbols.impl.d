lib/grammar/symbols.ml: Int Map Set
