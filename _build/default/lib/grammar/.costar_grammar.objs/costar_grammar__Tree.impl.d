lib/grammar/tree.ml: Buffer Fmt Grammar Int Int_set List Printf String Symbols Token
