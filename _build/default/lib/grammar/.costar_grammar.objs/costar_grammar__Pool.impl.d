lib/grammar/pool.ml: Array Hashtbl List Printf
