lib/grammar/transform.ml: Analysis Array Grammar Hashtbl Left_recursion List Option Printf Stdlib Symbols
