lib/grammar/token.ml: Fmt Pool String Symbols
