lib/grammar/derivation.ml: Grammar List Symbols Token Tree
