lib/grammar/grammar.ml: Array Fmt List Pool Symbols Token
