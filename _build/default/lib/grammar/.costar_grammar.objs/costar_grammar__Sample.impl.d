lib/grammar/sample.ml: Grammar List Option Random Symbols
