lib/grammar/analysis.ml: Array Grammar Int_set List Symbols
