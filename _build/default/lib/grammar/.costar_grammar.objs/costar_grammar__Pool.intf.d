lib/grammar/pool.mli:
