lib/grammar/grammar.mli: Format Symbols Token
