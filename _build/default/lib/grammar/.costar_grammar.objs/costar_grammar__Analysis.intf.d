lib/grammar/analysis.mli: Grammar Int_set Symbols
