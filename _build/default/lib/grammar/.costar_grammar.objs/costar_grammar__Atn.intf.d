lib/grammar/atn.mli: Grammar Symbols
