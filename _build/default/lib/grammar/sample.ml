open Symbols

let sentence ?(max_len = 64) ?(fuel = 200) g rand =
  let fuel = ref fuel in
  let nt_weight ix =
    List.length
      (List.filter
         (function NT _ -> true | T _ -> false)
         (Grammar.prod g ix).Grammar.rhs)
  in
  let rec go acc len syms =
    if len > max_len then None
    else
      match syms with
      | [] -> Some (List.rev acc)
      | T a :: rest -> go (Grammar.terminal_name g a :: acc) (len + 1) rest
      | NT x :: rest -> (
        decr fuel;
        if !fuel <= 0 then None
        else
          match Grammar.prods_of g x with
          | [] -> None
          | prods ->
            let pick =
              if !fuel < 40 then
                (* Low fuel: steer towards the alternative with the fewest
                   nonterminals, to converge. *)
                List.fold_left
                  (fun best ix -> if nt_weight ix < nt_weight best then ix else best)
                  (List.hd prods) prods
              else List.nth prods (Random.State.int rand (List.length prods))
            in
            go acc len ((Grammar.prod g pick).Grammar.rhs @ rest))
  in
  go [] 0 [ NT (Grammar.start g) ]

let tokens ?max_len ?fuel g rand =
  Option.map (Grammar.tokens g) (sentence ?max_len ?fuel g rand)
