type t = {
  mutable names : string array;
  mutable n : int;
  tbl : (string, int) Hashtbl.t;
}

let create () = { names = Array.make 16 ""; n = 0; tbl = Hashtbl.create 64 }

let grow p =
  if p.n = Array.length p.names then begin
    let names = Array.make (2 * p.n) "" in
    Array.blit p.names 0 names 0 p.n;
    p.names <- names
  end

let intern p s =
  match Hashtbl.find_opt p.tbl s with
  | Some id -> id
  | None ->
    grow p;
    let id = p.n in
    p.names.(id) <- s;
    p.n <- p.n + 1;
    Hashtbl.add p.tbl s id;
    id

let find p s = Hashtbl.find_opt p.tbl s

let name p id =
  if id < 0 || id >= p.n then
    invalid_arg (Printf.sprintf "Pool.name: id %d out of range [0,%d)" id p.n)
  else p.names.(id)

let size p = p.n

let names p = List.init p.n (fun i -> p.names.(i))
