(** Random sentence sampling from a grammar.

    Used by the test suite's completeness properties, the [costar gen] CLI
    command, and grammar fuzzing: words drawn from the grammar exercise the
    parser's accepting paths, which uniformly random words almost never
    reach. *)

(** [sentence ?max_len ?fuel g rand] draws a word of the grammar's start
    symbol by random leftmost expansion, as terminal names.  Expansion uses
    [fuel] (default 200) nonterminal expansions before steering towards
    low-nonterminal alternatives; [None] when fuel or [max_len] (default 64)
    is exceeded, or when a non-productive nonterminal blocks expansion. *)
val sentence :
  ?max_len:int ->
  ?fuel:int ->
  Grammar.t ->
  Random.State.t ->
  string list option

(** Like {!sentence} but returns tokens (each lexeme is its terminal
    name). *)
val tokens :
  ?max_len:int ->
  ?fuel:int ->
  Grammar.t ->
  Random.State.t ->
  Token.t list option
