(** String interning pools.

    A pool maps strings to dense integer identifiers and back.  Grammars use
    two pools: one for terminal names and one for nonterminal names.  Interned
    identifiers make every comparison in the parser's hot paths an integer
    comparison (see DESIGN.md, experiment E8, for the ablation that motivates
    this choice). *)

type t

val create : unit -> t

(** [intern p s] returns the identifier for [s], allocating a fresh one if [s]
    has not been seen before.  Identifiers are dense, starting at 0. *)
val intern : t -> string -> int

(** [find p s] returns the identifier for [s] if it has been interned. *)
val find : t -> string -> int option

(** [name p id] returns the string interned as [id].
    @raise Invalid_argument if [id] is out of range. *)
val name : t -> int -> string

(** Number of interned strings. *)
val size : t -> int

(** All interned names, in identifier order. *)
val names : t -> string list
