(** Static left-recursion detection.

    The paper's correctness theorems assume a non-left-recursive grammar and
    note (§8) that the property is decidable; this module is that decision
    procedure.  A nonterminal [x] is left-recursive iff there is a nullable
    path from [x] back to [x]: a cycle in the graph with an edge [x -> y]
    whenever the grammar contains [x -> alpha y beta] with [alpha] nullable. *)

open Symbols

(** Nonterminals that lie on a left-recursive cycle. *)
val left_recursive_nts : Grammar.t -> Analysis.t -> Int_set.t

(** [is_left_recursive g a x]: does [x] lie on a left-recursive cycle? *)
val is_left_recursive : Grammar.t -> Analysis.t -> nonterminal -> bool

(** [check g] is [Ok ()] when [g] has no left recursion, otherwise
    [Error xs] with the offending nonterminals (in identifier order). *)
val check : Grammar.t -> (unit, nonterminal list) result
