(* Statistics library tests: summary stats, least squares, LOWESS. *)

open Costar_stats

let check_float = Alcotest.(check (float 1e-9))
let check = Alcotest.(check bool)

let test_summary () =
  check_float "mean" 2.5 (Summary.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "stdev singleton" 0.0 (Summary.stdev [| 5.0 |]);
  check_float "stdev" (sqrt (5.0 /. 3.0))
    (Summary.stdev [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "median odd" 2.0 (Summary.median [| 3.0; 1.0; 2.0 |]);
  check_float "median even" 2.5 (Summary.median [| 4.0; 1.0; 2.0; 3.0 |]);
  check_float "min" 1.0 (Summary.minimum [| 3.0; 1.0; 2.0 |]);
  check_float "max" 3.0 (Summary.maximum [| 3.0; 1.0; 2.0 |])

let test_regression_exact () =
  (* y = 3x + 1 recovered exactly, r^2 = 1. *)
  let xs = [| 0.0; 1.0; 2.0; 3.0; 4.0 |] in
  let ys = Array.map (fun x -> (3.0 *. x) +. 1.0) xs in
  let f = Regression.fit xs ys in
  check_float "slope" 3.0 f.Regression.slope;
  check_float "intercept" 1.0 f.Regression.intercept;
  check_float "r2" 1.0 f.Regression.r2;
  check_float "predict" 16.0 (Regression.predict f 5.0)

let test_regression_noisy () =
  let xs = Array.init 100 float_of_int in
  let ys =
    Array.mapi
      (fun i x -> (2.0 *. x) +. 5.0 +. (if i mod 2 = 0 then 0.5 else -0.5))
      xs
  in
  let f = Regression.fit xs ys in
  check "slope near 2" true (abs_float (f.Regression.slope -. 2.0) < 0.01);
  check "r2 high" true (f.Regression.r2 > 0.99)

let test_lowess_linear () =
  (* On linear data the LOWESS curve coincides with the line (the paper's
     linearity criterion). *)
  let xs = Array.init 50 (fun i -> float_of_int i) in
  let ys = Array.map (fun x -> (0.7 *. x) +. 2.0) xs in
  let f = Regression.fit xs ys in
  let dev = Lowess.max_deviation_from_line ~f:0.3 xs ys f in
  check "coincides on linear data" true (dev < 0.01)

let test_lowess_quadratic_deviates () =
  (* On quadratic data, LOWESS departs from the regression line — the
     signature of nonlinearity the methodology is designed to expose. *)
  let xs = Array.init 50 (fun i -> float_of_int i) in
  let ys = Array.map (fun x -> x *. x) xs in
  let f = Regression.fit xs ys in
  let dev = Lowess.max_deviation_from_line ~f:0.3 xs ys f in
  check "deviates on quadratic data" true (dev > 0.03)

let test_lowess_tracks_data () =
  let xs = Array.init 30 (fun i -> float_of_int i) in
  let ys = Array.map (fun x -> sin (x /. 5.0)) xs in
  let sm = Lowess.smooth ~f:0.2 xs ys in
  Array.iteri
    (fun i s -> check "close to data" true (abs_float (s -. ys.(i)) < 0.1))
    sm

let suite =
  [
    Alcotest.test_case "summary" `Quick test_summary;
    Alcotest.test_case "regression exact" `Quick test_regression_exact;
    Alcotest.test_case "regression noisy" `Quick test_regression_noisy;
    Alcotest.test_case "lowess linear" `Quick test_lowess_linear;
    Alcotest.test_case "lowess quadratic" `Quick test_lowess_quadratic_deviates;
    Alcotest.test_case "lowess tracks data" `Quick test_lowess_tracks_data;
  ]

let () = Alcotest.run "costar_stats" [ ("stats", suite) ]
