(* Direct unit tests of the Python-style indentation pre-pass. *)

open Costar_langs
open Costar_lex

let check = Alcotest.(check bool)

(* Build raw tokens the way the MiniPython scanner would: content tokens
   with line/col, NEWLINE rows. *)
let raw kind ?(lexeme = kind) line col = { Scanner.kind; lexeme; line; col }
let nl line = raw "NEWLINE" ~lexeme:"\n" line 0

let kinds = function
  | Ok raws -> List.map (fun r -> r.Scanner.kind) raws
  | Error msg -> Alcotest.failf "indenter error: %s" msg

let test_flat_lines () =
  let input = [ raw "NAME" 1 0; nl 1; raw "NAME" 2 0; nl 2 ] in
  Alcotest.(check (list string))
    "no indents" [ "NAME"; "NEWLINE"; "NAME"; "NEWLINE" ]
    (kinds (Indenter.run input))

let test_indent_dedent () =
  let input =
    [ raw "if" 1 0; raw ":" 1 2; nl 1; raw "NAME" 2 4; nl 2; raw "NAME" 3 0; nl 3 ]
  in
  Alcotest.(check (list string))
    "one block"
    [ "if"; ":"; "NEWLINE"; "INDENT"; "NAME"; "NEWLINE"; "DEDENT"; "NAME"; "NEWLINE" ]
    (kinds (Indenter.run input))

let test_nested_dedents_at_eof () =
  let input =
    [ raw "a" 1 0; nl 1; raw "b" 2 2; nl 2; raw "c" 3 4; nl 3 ]
  in
  Alcotest.(check (list string))
    "two dedents at eof"
    [ "a"; "NEWLINE"; "INDENT"; "b"; "NEWLINE"; "INDENT"; "c"; "NEWLINE";
      "DEDENT"; "DEDENT" ]
    (kinds (Indenter.run input))

let test_blank_lines_dropped () =
  let input = [ raw "a" 1 0; nl 1; nl 2; nl 3; raw "b" 4 0; nl 4 ] in
  Alcotest.(check (list string))
    "blank lines produce no NEWLINE" [ "a"; "NEWLINE"; "b"; "NEWLINE" ]
    (kinds (Indenter.run input))

let test_implicit_join_in_brackets () =
  let input =
    [ raw "(" 1 0; nl 1; raw "NAME" 2 4; nl 2; raw ")" 3 0; nl 3 ]
  in
  (* Newlines inside parentheses vanish; the col-4 NAME is not an indent. *)
  Alcotest.(check (list string))
    "joined" [ "("; "NAME"; ")"; "NEWLINE" ]
    (kinds (Indenter.run input))

let test_missing_final_newline () =
  let input = [ raw "a" 1 0 ] in
  Alcotest.(check (list string))
    "newline synthesized" [ "a"; "NEWLINE" ]
    (kinds (Indenter.run input))

let test_inconsistent_dedent () =
  let input =
    [ raw "a" 1 0; nl 1; raw "b" 2 4; nl 2; raw "c" 3 2; nl 3 ]
  in
  match Indenter.run input with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an inconsistent-dedent error"

let test_dedent_through_several_levels () =
  let input =
    [
      raw "a" 1 0; nl 1;
      raw "b" 2 2; nl 2;
      raw "c" 3 4; nl 3;
      raw "d" 4 0; nl 4;
    ]
  in
  Alcotest.(check (list string))
    "both levels closed before d"
    [ "a"; "NEWLINE"; "INDENT"; "b"; "NEWLINE"; "INDENT"; "c"; "NEWLINE";
      "DEDENT"; "DEDENT"; "d"; "NEWLINE" ]
    (kinds (Indenter.run input))

let test_empty_input () =
  check "empty ok" true (Indenter.run [] = Ok [])

let suite =
  [
    Alcotest.test_case "flat lines" `Quick test_flat_lines;
    Alcotest.test_case "indent/dedent" `Quick test_indent_dedent;
    Alcotest.test_case "dedents at eof" `Quick test_nested_dedents_at_eof;
    Alcotest.test_case "blank lines" `Quick test_blank_lines_dropped;
    Alcotest.test_case "implicit join" `Quick test_implicit_join_in_brackets;
    Alcotest.test_case "missing final newline" `Quick test_missing_final_newline;
    Alcotest.test_case "inconsistent dedent" `Quick test_inconsistent_dedent;
    Alcotest.test_case "multi-level dedent" `Quick
      test_dedent_through_several_levels;
    Alcotest.test_case "empty input" `Quick test_empty_input;
  ]

let () = Alcotest.run "costar_indenter" [ ("indenter", suite) ]
