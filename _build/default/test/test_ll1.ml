(* LL(1) baseline tests, including experiment E7's headline claim: the XML
   benchmark grammar has LL(1) conflicts (it is not LL(k) for any k), while
   an LL(1)-factored JSON grammar builds cleanly and parses. *)

open Costar_grammar
open Costar_langs
module Ll1 = Costar_ll1.Ll1

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* An LL(1)-factored JSON grammar (left-factored '{'/'[' alternatives). *)
let json_ll1 =
  match
    Costar_ebnf.Parse.grammar_of_string ~start:"json"
      {|
        json    : value ;
        value   : obj | arr | STRING | NUMBER | 'true' | 'false' | 'null' ;
        obj     : '{' members '}' ;
        members : pair (',' pair)* | ;
        pair    : STRING ':' value ;
        arr     : '[' elements ']' ;
        elements : value (',' value)* | ;
      |}
  with
  | Ok g -> g
  | Error msg -> failwith msg

let test_build_ll1_json () =
  match Ll1.build json_ll1 with
  | Ok _ -> ()
  | Error cs ->
    Alcotest.failf "unexpected conflicts: %a"
      Fmt.(list ~sep:(any "; ") (Ll1.pp_conflict json_ll1))
      cs

let test_parse_ll1_json () =
  match Ll1.build json_ll1 with
  | Error _ -> Alcotest.fail "table build failed"
  | Ok table -> (
    let toks s =
      match Json.lang.Lang.tokenize s with
      | Ok raw ->
        (* Re-resolve terminals against the LL(1) grammar (same names). *)
        List.map
          (fun t ->
            match
              Grammar.terminal_of_name json_ll1
                (Grammar.terminal_name (Lang.grammar Json.lang) t.Token.term)
            with
            | Some a -> Token.make a t.Token.lexeme
            | None -> Alcotest.fail "terminal mismatch")
          raw
      | Error e -> Alcotest.failf "lex: %s" e
    in
    (match Ll1.parse table (toks {|{"a": [1, true], "b": {}}|}) with
    | Ok v ->
      check "derives" true
        (Derivation.recognizes_start json_ll1 (toks {|{"a": [1, true], "b": {}}|}) v)
    | Error msg -> Alcotest.failf "parse: %s" msg);
    match Ll1.parse table (toks {|{"a": }|}) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "expected reject")

let test_xml_not_ll1 () =
  (* E7: the ANTLR-style XML grammar is not LL(1): the two element
     alternatives share the unbounded prefix '<' NAME attribute*. *)
  let g = Lang.grammar Xml.lang in
  let cs = Ll1.conflicts g in
  check "has conflicts" true (cs <> []);
  (* The conflict involves the element rule (or a nonterminal synthesized
     from it). *)
  check "element-related conflict" true
    (List.exists
       (fun c ->
         let name = Grammar.nonterminal_name g c.Ll1.nt in
         String.length name >= 4 && String.sub name 0 4 = "elem"
         || String.length name >= 4 && String.sub name 0 4 = "star")
       cs)

let test_antlr_json_not_ll1 () =
  (* The ANTLR-form JSON grammar (unfactored '{'/'[') is not LL(1) either —
     CoStar handles it, the LL(1) generator cannot. *)
  let g = Lang.grammar Json.lang in
  check "conflicts" true (Ll1.conflicts g <> [])

let test_ll1_agrees_with_costar () =
  (* On an LL(1) grammar both parsers accept the same inputs with the same
     trees. *)
  match Ll1.build json_ll1 with
  | Error _ -> Alcotest.fail "table build failed"
  | Ok table ->
    List.iter
      (fun (seed, size) ->
        let src = Lang.generate Json.lang ~seed ~size in
        match Json.lang.Lang.tokenize src with
        | Error e -> Alcotest.failf "lex: %s" e
        | Ok toks_orig ->
          let toks =
            List.map
              (fun t ->
                match
                  Grammar.terminal_of_name json_ll1
                    (Grammar.terminal_name (Lang.grammar Json.lang) t.Token.term)
                with
                | Some a -> Token.make a t.Token.lexeme
                | None -> Alcotest.fail "terminal mismatch")
              toks_orig
          in
          let ll1_result = Ll1.parse table toks in
          let costar_result = Costar_core.Parser.parse json_ll1 toks in
          (match ll1_result, costar_result with
          | Ok v1, Costar_core.Parser.Unique v2 ->
            check "same tree" true (Tree.equal v1 v2)
          | Error _, (Costar_core.Parser.Reject _ | Costar_core.Parser.Error _) -> ()
          | _ -> Alcotest.fail "LL(1) and CoStar disagree"))
      [ (11, 10); (12, 40); (13, 120) ]

let test_eof_column () =
  (* Nullable start: selecting a production at end of input uses the eof
     column. *)
  let g =
    Grammar.define ~start:"S"
      [ ("S", [ []; [ Grammar.t "x"; Grammar.n "S" ] ]) ]
  in
  match Ll1.build g with
  | Error _ -> Alcotest.fail "grammar is LL(1)"
  | Ok table ->
    (match Ll1.parse table [] with
    | Ok (Tree.Node (_, [])) -> ()
    | _ -> Alcotest.fail "expected empty-word parse");
    (match Ll1.parse table (Grammar.tokens g [ "x"; "x" ]) with
    | Ok v -> check_int "width" 2 (Tree.width v)
    | Error msg -> Alcotest.failf "parse: %s" msg)

let test_conflict_reporting () =
  (* First/first and first/follow conflicts are both reported. *)
  let ff =
    Grammar.define ~start:"S"
      [ ("S", [ [ Grammar.t "a"; Grammar.t "b" ]; [ Grammar.t "a"; Grammar.t "c" ] ]) ]
  in
  check_int "first/first" 1 (List.length (Ll1.conflicts ff));
  let f_follow =
    (* S -> A a ; A -> eps | a : on 'a', A can derive eps (follow) or 'a'. *)
    Grammar.define ~start:"S"
      [
        ("S", [ [ Grammar.n "A"; Grammar.t "a" ] ]);
        ("A", [ []; [ Grammar.t "a" ] ]);
      ]
  in
  check "first/follow" true
    (List.exists (fun c -> c.Ll1.on <> None) (Ll1.conflicts f_follow))

let suite =
  [
    Alcotest.test_case "LL(1) JSON builds" `Quick test_build_ll1_json;
    Alcotest.test_case "LL(1) JSON parses" `Quick test_parse_ll1_json;
    Alcotest.test_case "XML grammar is not LL(1) (E7)" `Quick test_xml_not_ll1;
    Alcotest.test_case "ANTLR JSON grammar is not LL(1)" `Quick
      test_antlr_json_not_ll1;
    Alcotest.test_case "LL(1) agrees with CoStar" `Quick
      test_ll1_agrees_with_costar;
    Alcotest.test_case "eof column" `Quick test_eof_column;
    Alcotest.test_case "conflict kinds" `Quick test_conflict_reporting;
  ]

let () = Alcotest.run "costar_ll1" [ ("ll1", suite) ]
