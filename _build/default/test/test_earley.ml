(* Earley recognizer and counting-oracle unit tests, including cases the
   CoStar machine cannot handle (left recursion), which the oracle must. *)

open Costar_grammar
module E = Costar_earley

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fig2 =
  Grammar.define ~start:"S"
    [
      ("S", [ [ Grammar.n "A"; Grammar.t "c" ]; [ Grammar.n "A"; Grammar.t "d" ] ]);
      ("A", [ [ Grammar.t "a"; Grammar.n "A" ]; [ Grammar.t "b" ] ]);
    ]

let lr_expr =
  (* Left-recursive arithmetic: E -> E + n | n *)
  Grammar.define ~start:"E"
    [ ("E", [ [ Grammar.n "E"; Grammar.t "+"; Grammar.t "n" ]; [ Grammar.t "n" ] ]) ]

let ambig =
  (* S -> S S | a : exponentially ambiguous *)
  Grammar.define ~start:"S"
    [ ("S", [ [ Grammar.n "S"; Grammar.n "S" ]; [ Grammar.t "a" ] ]) ]

let w g names = Grammar.tokens g names

let test_recognizer_basic () =
  check "abd ok" true (E.Recognizer.accepts fig2 (w fig2 [ "a"; "b"; "d" ]));
  check "bc ok" true (E.Recognizer.accepts fig2 (w fig2 [ "b"; "c" ]));
  check "ab bad" false (E.Recognizer.accepts fig2 (w fig2 [ "a"; "b" ]));
  check "empty bad" false (E.Recognizer.accepts fig2 []);
  check "dd bad" false (E.Recognizer.accepts fig2 (w fig2 [ "d"; "d" ]))

let test_recognizer_left_recursion () =
  check "n" true (E.Recognizer.accepts lr_expr (w lr_expr [ "n" ]));
  check "n+n" true (E.Recognizer.accepts lr_expr (w lr_expr [ "n"; "+"; "n" ]));
  check "n+n+n" true
    (E.Recognizer.accepts lr_expr (w lr_expr [ "n"; "+"; "n"; "+"; "n" ]));
  check "+n" false (E.Recognizer.accepts lr_expr (w lr_expr [ "+"; "n" ]));
  check "n+" false (E.Recognizer.accepts lr_expr (w lr_expr [ "n"; "+" ]))

let test_recognizer_nullable () =
  (* S -> A B ; A -> eps | a ; B -> eps | b : tricky nullable completions *)
  let g =
    Grammar.define ~start:"S"
      [
        ("S", [ [ Grammar.n "A"; Grammar.n "B" ] ]);
        ("A", [ []; [ Grammar.t "a" ] ]);
        ("B", [ []; [ Grammar.t "b" ] ]);
      ]
  in
  check "eps" true (E.Recognizer.accepts g []);
  check "a" true (E.Recognizer.accepts g (w g [ "a" ]));
  check "b" true (E.Recognizer.accepts g (w g [ "b" ]));
  check "ab" true (E.Recognizer.accepts g (w g [ "a"; "b" ]));
  check "ba" false (E.Recognizer.accepts g (w g [ "b"; "a" ]))

let test_count_unique () =
  check_int "abd" 1 (E.Count.count_trees fig2 (w fig2 [ "a"; "b"; "d" ]));
  check_int "invalid" 0 (E.Count.count_trees fig2 (w fig2 [ "a" ]));
  check_int "n+n" 1 (E.Count.count_trees lr_expr (w lr_expr [ "n"; "+"; "n" ]))

let test_count_ambiguous () =
  check_int "a" 1 (E.Count.count_trees ambig (w ambig [ "a" ]));
  check_int "aa" 1 (E.Count.count_trees ambig (w ambig [ "a"; "a" ]));
  (* aaa: two binary bracketings *)
  check_int "aaa" 2 (E.Count.count_trees ambig (w ambig [ "a"; "a"; "a" ]));
  (* Higher caps count precisely: aaaa has 5 bracketings (Catalan). *)
  check_int "aaaa cap 10" 5
    (E.Count.count_trees ~cap:10 ambig (w ambig [ "a"; "a"; "a"; "a" ]))

let test_count_infinite_cycles () =
  (* A -> A | a : infinitely many trees; saturates at the cap. *)
  let g =
    Grammar.define ~start:"A" [ ("A", [ [ Grammar.n "A" ]; [ Grammar.t "a" ] ]) ]
  in
  check_int "unit cycle saturates" 2 (E.Count.count_trees g (w g [ "a" ]));
  check_int "cap 7" 7 (E.Count.count_trees ~cap:7 g (w g [ "a" ]))

let test_enumerate () =
  let trees = E.Count.enumerate ~limit:2 ambig (w ambig [ "a"; "a"; "a" ]) in
  check_int "two trees" 2 (List.length trees);
  (match trees with
  | [ v1; v2 ] ->
    check "distinct" false (Tree.equal v1 v2);
    check "sound 1" true
      (Derivation.recognizes_start ambig (w ambig [ "a"; "a"; "a" ]) v1);
    check "sound 2" true
      (Derivation.recognizes_start ambig (w ambig [ "a"; "a"; "a" ]) v2)
  | _ -> Alcotest.fail "expected two trees");
  let unique = E.Count.enumerate ~limit:5 fig2 (w fig2 [ "a"; "b"; "d" ]) in
  check_int "one tree" 1 (List.length unique)

let test_first_tree () =
  (match E.Count.first_tree fig2 (w fig2 [ "a"; "b"; "d" ]) with
  | Some v ->
    Alcotest.(check string)
      "tree" "(S (A 'a' (A 'b')) 'd')" (Tree.to_string fig2 v)
  | None -> Alcotest.fail "expected a tree");
  check "invalid gives None" true
    (E.Count.first_tree fig2 (w fig2 [ "a" ]) = None);
  (* On ambiguous input: some valid tree. *)
  (match E.Count.first_tree ambig (w ambig [ "a"; "a"; "a" ]) with
  | Some v ->
    check "valid" true
      (Derivation.recognizes_start ambig (w ambig [ "a"; "a"; "a" ]) v)
  | None -> Alcotest.fail "expected a tree");
  (* Through a unit cycle: A -> A | 'a' still extracts the finite tree. *)
  let cyc =
    Grammar.define ~start:"A" [ ("A", [ [ Grammar.n "A" ]; [ Grammar.t "a" ] ]) ]
  in
  match E.Count.first_tree cyc (w cyc [ "a" ]) with
  | Some v -> check "cycle tree valid" true (Derivation.recognizes_start cyc (w cyc [ "a" ]) v)
  | None -> Alcotest.fail "expected a tree"

let prop_first_tree_oracle =
  (* Wherever the word has exactly one derivation, the extractor and the
     CoStar parser must produce the identical tree. *)
  QCheck.Test.make ~count:400 ~name:"first_tree = CoStar tree when unique"
    Util.arb_grammar_word (fun (g, word) ->
      match Left_recursion.check g with
      | Error _ -> true
      | Ok () -> (
        let toks = Grammar.tokens g word in
        match E.Count.count_trees ~cap:2 g toks, E.Count.first_tree g toks with
        | 0, None -> true
        | 0, Some _ -> false
        | _, None -> false
        | 1, Some v1 -> (
          match Costar_core.Parser.parse g toks with
          | Costar_core.Parser.Unique v2 -> Tree.equal v1 v2
          | _ -> false)
        | _, Some v -> Derivation.recognizes_start g toks v))

let suite =
  [
    Alcotest.test_case "recognizer basics" `Quick test_recognizer_basic;
    Alcotest.test_case "recognizer left recursion" `Quick
      test_recognizer_left_recursion;
    Alcotest.test_case "recognizer nullable" `Quick test_recognizer_nullable;
    Alcotest.test_case "count unique" `Quick test_count_unique;
    Alcotest.test_case "count ambiguous" `Quick test_count_ambiguous;
    Alcotest.test_case "count infinite cycles" `Quick test_count_infinite_cycles;
    Alcotest.test_case "enumerate" `Quick test_enumerate;
    Alcotest.test_case "first_tree" `Quick test_first_tree;
    QCheck_alcotest.to_alcotest prop_first_tree_oracle;
  ]

let () = Alcotest.run "costar_earley" [ ("earley", suite) ]
