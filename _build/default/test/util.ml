(* Shared test helpers: random grammar and word generation for the
   property-based suites. *)

open Costar_grammar

let nt_names = [| "S"; "A"; "B"; "C" |]
let term_names = [| "a"; "b"; "c" |]

(* A random grammar over up to 4 nonterminals and 3 terminals.  Left
   recursion is allowed; properties dispatch on the static checker. *)
let gen_grammar : Grammar.t QCheck.Gen.t =
  let open QCheck.Gen in
  int_range 1 4 >>= fun n_nts ->
  int_range 1 3 >>= fun n_terms ->
  let gen_sym =
    int_range 0 (n_nts + n_terms - 1) >|= fun i ->
    if i < n_terms then Grammar.t term_names.(i)
    else Grammar.n nt_names.(i - n_terms)
  in
  let gen_alt = int_range 0 3 >>= fun len -> list_repeat len gen_sym in
  let gen_alts = int_range 1 3 >>= fun k -> list_repeat k gen_alt in
  let rec gen_rules i acc =
    if i = n_nts then return (List.rev acc)
    else
      gen_alts >>= fun alts -> gen_rules (i + 1) ((nt_names.(i), alts) :: acc)
  in
  gen_rules 0 [] >|= fun rules ->
  Grammar.define ~extra_terminals:(Array.to_list term_names) ~start:"S" rules

(* A random word over the grammar's terminals, as terminal names. *)
let gen_random_word g : string list QCheck.Gen.t =
  let open QCheck.Gen in
  let n_terms = Grammar.num_terminals g in
  int_range 0 10 >>= fun len ->
  list_repeat len (int_range 0 (n_terms - 1) >|= Grammar.terminal_name g)

(* Attempt to sample a valid sentence of [g] by random leftmost expansion
   with fuel; returns None when fuel runs out (e.g. non-productive
   grammars). *)
let random_sentence g (rand : Random.State.t) : string list option =
  let module S = Symbols in
  let fuel = ref 60 in
  let rec go acc syms =
    if List.length acc > 12 then None
    else
      match syms with
      | [] -> Some (List.rev acc)
      | S.T a :: rest -> go (Grammar.terminal_name g a :: acc) rest
      | S.NT x :: rest -> (
        decr fuel;
        if !fuel <= 0 then None
        else
          match Grammar.prods_of g x with
          | [] -> None
          | prods ->
            let pick =
              if !fuel < 20 then
                (* Low fuel: bias towards the alternative with the fewest
                   nonterminals to steer toward termination. *)
                let weight ix =
                  List.length
                    (List.filter
                       (function S.NT _ -> true | S.T _ -> false)
                       (Grammar.prod g ix).Grammar.rhs)
                in
                List.fold_left
                  (fun best ix -> if weight ix < weight best then ix else best)
                  (List.hd prods) prods
              else List.nth prods (Random.State.int rand (List.length prods))
            in
            go acc ((Grammar.prod g pick).Grammar.rhs @ rest))
  in
  go [] [ S.NT (Grammar.start g) ]

(* A word that is valid with probability ~1/2 (when the grammar permits):
   either a sampled sentence or a uniformly random word. *)
let gen_word g : string list QCheck.Gen.t =
  let open QCheck.Gen in
  bool >>= fun use_sentence ->
  if use_sentence then fun st ->
    match random_sentence g st with
    | Some w -> w
    | None -> generate1 ~rand:st (gen_random_word g)
  else gen_random_word g

let print_case (g, w) =
  Fmt.str "@[<v>%a@,word: %s@]" Grammar.pp g (String.concat " " w)

let arb_grammar_word : (Grammar.t * string list) QCheck.arbitrary =
  let gen =
    let open QCheck.Gen in
    gen_grammar >>= fun g ->
    gen_word g >|= fun w -> (g, w)
  in
  QCheck.make ~print:print_case gen
