test/test_predict.ml: Alcotest Analysis Cache Config Costar_core Costar_grammar Fun Grammar List Ll Parser Predict QCheck Sll Symbols Types Util
