test/test_core_extra.ml: Alcotest Cache Costar_core Costar_grammar Grammar Left_recursion List Machine Parser Printf String Token Tree
