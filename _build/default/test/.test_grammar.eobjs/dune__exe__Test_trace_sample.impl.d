test/test_trace_sample.ml: Alcotest Costar_core Costar_earley Costar_grammar Fmt Grammar Left_recursion List Parser QCheck QCheck_alcotest Random Sample String Trace Util
