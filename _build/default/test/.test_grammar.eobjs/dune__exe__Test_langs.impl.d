test/test_langs.ml: Alcotest Costar_core Costar_grammar Costar_langs Derivation Dot Grammar Json Lang Left_recursion List Minipy Printf Registry String Token Tree Xml
