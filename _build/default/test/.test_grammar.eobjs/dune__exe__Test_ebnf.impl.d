test/test_ebnf.ml: Alcotest Ast Costar_core Costar_ebnf Costar_grammar Desugar Fmt Grammar Left_recursion List Parse Print QCheck QCheck_alcotest String Util
