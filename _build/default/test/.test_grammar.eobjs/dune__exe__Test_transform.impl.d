test/test_transform.ml: Alcotest Costar_core Costar_earley Costar_grammar Costar_ll1 Grammar Left_recursion List QCheck QCheck_alcotest Transform Util
