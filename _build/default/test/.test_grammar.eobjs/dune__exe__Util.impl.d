test/util.ml: Array Costar_grammar Fmt Grammar List QCheck Random String Symbols
