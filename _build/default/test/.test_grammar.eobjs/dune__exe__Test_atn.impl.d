test/test_atn.ml: Alcotest Array Atn Costar_grammar Fmt Grammar List QCheck QCheck_alcotest String Util
