test/test_indenter.mli:
