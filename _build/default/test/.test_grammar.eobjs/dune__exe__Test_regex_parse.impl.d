test/test_regex_parse.ml: Alcotest Costar_lex Regex Regex_parse Scanner String
