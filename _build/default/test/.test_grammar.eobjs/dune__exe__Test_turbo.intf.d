test/test_turbo.mli:
