test/test_extracted.mli:
