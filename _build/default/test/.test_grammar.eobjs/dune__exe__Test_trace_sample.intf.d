test/test_trace_sample.mli:
