test/test_ebnf.mli:
