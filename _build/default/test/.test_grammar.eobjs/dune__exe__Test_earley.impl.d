test/test_earley.ml: Alcotest Costar_core Costar_earley Costar_grammar Derivation Grammar Left_recursion List QCheck QCheck_alcotest Tree Util
