test/test_measure.ml: Alcotest Costar_core Costar_grammar Grammar Int_set List Measure Parser
