test/test_semantics.ml: Alcotest Costar_core Costar_grammar Grammar List Parser Semantics String Token Tree
