test/test_lex.ml: Alcotest Costar_grammar Costar_lex Grammar List QCheck QCheck_alcotest Regex Scanner String Token
