test/test_atn.mli:
