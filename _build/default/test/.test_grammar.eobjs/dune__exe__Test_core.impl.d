test/test_core.ml: Alcotest Costar_core Costar_grammar Derivation Grammar List Parser Tree Types
