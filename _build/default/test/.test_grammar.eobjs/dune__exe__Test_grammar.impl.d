test/test_grammar.ml: Alcotest Analysis Costar_grammar Derivation Grammar Int_set Left_recursion List Pool String Symbols Token Tree
