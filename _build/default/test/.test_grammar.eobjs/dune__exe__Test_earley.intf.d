test/test_earley.mli:
