test/test_regex_parse.mli:
