test/test_turbo.ml: Alcotest Costar_core Costar_grammar Costar_langs Costar_turbo Fmt Grammar Json Lang Left_recursion List Minipy Printf QCheck QCheck_alcotest Registry Tree Util
