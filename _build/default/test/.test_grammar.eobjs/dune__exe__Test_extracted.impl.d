test/test_extracted.ml: Alcotest Costar_core Costar_extracted Costar_grammar Costar_langs Dot Grammar Json Lang Left_recursion List QCheck QCheck_alcotest String Token Tree Util Xml
