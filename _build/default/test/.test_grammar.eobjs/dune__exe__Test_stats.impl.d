test/test_stats.ml: Alcotest Array Costar_stats Lowess Regression Summary
