test/test_analysis.ml: Alcotest Analysis Costar_core Costar_grammar Costar_langs Grammar Int_set Lang List Minipy
