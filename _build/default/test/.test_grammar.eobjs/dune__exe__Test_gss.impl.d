test/test_gss.ml: Alcotest Analysis Array Cache Costar_core Costar_ebnf Costar_grammar Costar_gss Costar_langs Fun Grammar Left_recursion List Printf QCheck QCheck_alcotest Sll String Types Util
