test/test_gss.mli:
