test/test_ll1.mli:
