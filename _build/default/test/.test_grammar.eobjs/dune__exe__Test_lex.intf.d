test/test_lex.mli:
