test/test_spec.ml: Alcotest Costar_core Costar_ebnf Costar_lex List Scanner Spec
