test/test_ll1.ml: Alcotest Costar_core Costar_ebnf Costar_grammar Costar_langs Costar_ll1 Derivation Fmt Grammar Json Lang List String Token Tree Xml
