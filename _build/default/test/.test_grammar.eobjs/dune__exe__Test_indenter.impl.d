test/test_indenter.ml: Alcotest Costar_langs Costar_lex Indenter List Scanner
