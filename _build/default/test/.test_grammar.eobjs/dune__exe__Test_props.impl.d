test/test_props.ml: Alcotest Analysis Cache Costar_core Costar_earley Costar_grammar Derivation Grammar Left_recursion List Ll Machine Measure Parser QCheck QCheck_alcotest Sll Tree Types Util
