(* Dedicated grammar-analysis tests: sequence-level FIRST/nullable, FOLLOW
   propagation chains, callers deduplication, endable corner cases, and a
   corpus-scale check of the termination measure. *)

open Costar_grammar
open Costar_grammar.Symbols

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let nt g name =
  match Grammar.nonterminal_of_name g name with
  | Some x -> x
  | None -> Alcotest.failf "unknown nonterminal %s" name

let tm g name =
  match Grammar.terminal_of_name g name with
  | Some a -> a
  | None -> Alcotest.failf "unknown terminal %s" name

let g =
  (* S -> A B 'z' ; A -> eps | 'a' ; B -> A 'b' | C ; C -> 'c' C | eps *)
  Grammar.define ~start:"S"
    [
      ("S", [ [ Grammar.n "A"; Grammar.n "B"; Grammar.t "z" ] ]);
      ("A", [ []; [ Grammar.t "a" ] ]);
      ("B", [ [ Grammar.n "A"; Grammar.t "b" ]; [ Grammar.n "C" ] ]);
      ("C", [ [ Grammar.t "c"; Grammar.n "C" ]; [] ]);
    ]

let anl = Analysis.make g

let set names = Int_set.of_list (List.map (tm g) names)

let test_nullable_seq () =
  check "eps seq" true (Analysis.nullable_seq anl []);
  check "A C" true (Analysis.nullable_seq anl [ NT (nt g "A"); NT (nt g "C") ]);
  check "A B" true (Analysis.nullable_seq anl [ NT (nt g "A"); NT (nt g "B") ]);
  check "with terminal" false
    (Analysis.nullable_seq anl [ NT (nt g "A"); T (tm g "z") ])

let test_first_seq () =
  (* FIRST(A B z) = {a} ∪ FIRST(B) ∪ {z} since A and B are nullable *)
  check "S rhs" true
    (Int_set.equal
       (Analysis.first_seq anl [ NT (nt g "A"); NT (nt g "B"); T (tm g "z") ])
       (set [ "a"; "b"; "c"; "z" ]));
  check "stops at non-nullable" true
    (Int_set.equal
       (Analysis.first_seq anl [ T (tm g "b"); NT (nt g "C") ])
       (set [ "b" ]))

let test_follow_chain () =
  (* FOLLOW(A): from S -> A B z: FIRST(B z) = {a(b via A), b, c, z};
     from B -> A 'b': {b}. *)
  check "follow A" true
    (Int_set.equal (Analysis.follow anl (nt g "A")) (set [ "a"; "b"; "c"; "z" ]));
  (* FOLLOW(C) = FOLLOW(B) = {z} *)
  check "follow C" true
    (Int_set.equal (Analysis.follow anl (nt g "C")) (set [ "z" ]));
  check "no end after C" false (Analysis.follow_end anl (nt g "C"));
  check "end after S" true (Analysis.follow_end anl (nt g "S"))

let test_callers_positions () =
  (* A occurs in S (suffix [B z]) and in B (suffix ['b']). *)
  let callers = Analysis.callers anl (nt g "A") in
  check_int "two occurrences" 2 (List.length callers);
  check "S context" true
    (List.exists
       (fun (y, beta) -> y = nt g "S" && List.length beta = 2)
       callers);
  check "B context" true
    (List.exists
       (fun (y, beta) -> y = nt g "B" && List.length beta = 1)
       callers)

let test_callers_dedup () =
  (* The same (caller, suffix) pair appearing in two productions is
     recorded once. *)
  let g2 =
    Grammar.define ~start:"S"
      [
        ("S", [ [ Grammar.n "A"; Grammar.t "x" ]; [ Grammar.t "y"; Grammar.n "A"; Grammar.t "x" ] ]);
        ("A", [ [ Grammar.t "a" ] ]);
      ]
  in
  let anl2 = Analysis.make g2 in
  check_int "deduped" 1 (List.length (Analysis.callers anl2 (nt g2 "A")))

let test_endable () =
  (* Nothing is endable except S: 'z' always follows the others. *)
  check "S endable" true (Analysis.endable anl (nt g "S"));
  check "B not endable" false (Analysis.endable anl (nt g "B"));
  (* With a nullable tail, endability propagates down. *)
  let g3 =
    Grammar.define ~start:"S"
      [
        ("S", [ [ Grammar.t "x"; Grammar.n "A"; Grammar.n "N" ] ]);
        ("A", [ [ Grammar.t "a" ] ]);
        ("N", [ [] ]);
      ]
  in
  let anl3 = Analysis.make g3 in
  check "A endable through nullable N" true (Analysis.endable anl3 (nt g3 "A"));
  check "N endable" true (Analysis.endable anl3 (nt g3 "N"))

let test_measure_on_corpus () =
  (* Lemmas 4.2-4.4 at corpus scale: every step of a real MiniPython parse
     strictly decreases the measure. *)
  let open Costar_langs in
  let lang = Minipy.lang in
  let mg = Lang.grammar lang in
  let p = Costar_core.Parser.make mg in
  let toks = Lang.tokenize_exn lang (Lang.generate lang ~seed:77 ~size:40) in
  let prev = ref None in
  let ok = ref true in
  let steps = ref 0 in
  (match
     Costar_core.Parser.run_inspect p
       ~inspect:(fun st ->
         incr steps;
         let m = Costar_core.Measure.meas mg st in
         (match !prev with
         | Some m' -> ok := !ok && Costar_core.Measure.compare m m' < 0
         | None -> ());
         prev := Some m)
       toks
   with
  | Costar_core.Parser.Unique _ -> ()
  | r -> Alcotest.failf "corpus parse failed: %a" (Costar_core.Parser.pp_result mg) r);
  check "hundreds of steps" true (!steps > 200);
  check "strictly decreasing throughout" true !ok

let suite =
  [
    Alcotest.test_case "nullable_seq" `Quick test_nullable_seq;
    Alcotest.test_case "first_seq" `Quick test_first_seq;
    Alcotest.test_case "follow chains" `Quick test_follow_chain;
    Alcotest.test_case "caller positions" `Quick test_callers_positions;
    Alcotest.test_case "caller dedup" `Quick test_callers_dedup;
    Alcotest.test_case "endable propagation" `Quick test_endable;
    Alcotest.test_case "measure at corpus scale" `Quick test_measure_on_corpus;
  ]

let () = Alcotest.run "costar_analysis" [ ("analysis", suite) ]
