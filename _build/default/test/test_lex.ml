(* Lexer engine tests: regexes, NFA/DFA construction, maximal munch,
   rule priority, positions, skip rules, error reporting. *)

open Costar_lex

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let kinds raws = List.map (fun r -> r.Scanner.kind) raws
let lexemes raws = List.map (fun r -> r.Scanner.lexeme) raws

let simple_scanner =
  Scanner.make
    [
      Scanner.rule "IF" (Regex.str "if");
      Scanner.rule "ID" (Regex.plus Regex.letter);
      Scanner.rule "NUM" (Regex.plus Regex.digit);
      Scanner.rule "WS" ~skip:true (Regex.plus (Regex.set " \t\n"));
    ]

let scan_ok s input =
  match Scanner.scan s input with
  | Ok raws -> raws
  | Error e -> Alcotest.failf "unexpected lex error: %a" Scanner.pp_error e

let test_basic () =
  let raws = scan_ok simple_scanner "if iffy 42 x" in
  Alcotest.(check (list string))
    "kinds" [ "IF"; "ID"; "NUM"; "ID" ] (kinds raws);
  Alcotest.(check (list string))
    "lexemes" [ "if"; "iffy"; "42"; "x" ] (lexemes raws)

let test_maximal_munch () =
  (* "iffy" must lex as one ID, not IF + "fy" *)
  let raws = scan_ok simple_scanner "iffy" in
  check_int "one token" 1 (List.length raws);
  check_str "kind" "ID" (List.hd raws).Scanner.kind

let test_rule_priority () =
  (* "if" matches both IF and ID at the same length: first rule wins. *)
  let raws = scan_ok simple_scanner "if" in
  check_str "IF wins" "IF" (List.hd raws).Scanner.kind;
  (* Swapping the rules makes ID win. *)
  let flipped =
    Scanner.make
      [ Scanner.rule "ID" (Regex.plus Regex.letter); Scanner.rule "IF" (Regex.str "if") ]
  in
  let raws = scan_ok flipped "if" in
  check_str "ID wins" "ID" (List.hd raws).Scanner.kind

let test_positions () =
  let raws = scan_ok simple_scanner "if\n  foo 12" in
  match raws with
  | [ t1; t2; t3 ] ->
    check_int "t1 line" 1 t1.Scanner.line;
    check_int "t1 col" 0 t1.Scanner.col;
    check_int "t2 line" 2 t2.Scanner.line;
    check_int "t2 col" 2 t2.Scanner.col;
    check_int "t3 col" 6 t3.Scanner.col
  | _ -> Alcotest.fail "expected three tokens"

let test_lex_error () =
  match Scanner.scan simple_scanner "ab $ cd" with
  | Error e ->
    check_int "line" 1 e.Scanner.err_line;
    check_int "col" 3 e.Scanner.err_col
  | Ok _ -> Alcotest.fail "expected a lexical error"

let test_nullable_rule_rejected () =
  check "nullable rule rejected" true
    (try
       ignore (Scanner.make [ Scanner.rule "BAD" (Regex.star Regex.digit) ]);
       false
     with Invalid_argument _ -> true)

let test_string_literals () =
  (* JSON-style string: " (escape | non-quote)* " *)
  let string_re =
    Regex.(
      seq
        [
          chr '"';
          star (alt [ seq [ chr '\\'; any ]; none_of "\"\\" ]);
          chr '"';
        ])
  in
  let s =
    Scanner.make
      [
        Scanner.rule "STRING" string_re;
        Scanner.rule "WS" ~skip:true (Regex.plus (Regex.chr ' '));
      ]
  in
  let raws = scan_ok s {|"hello" "a\"b" ""|} in
  Alcotest.(check (list string))
    "lexemes"
    [ {|"hello"|}; {|"a\"b"|}; {|""|} ]
    (lexemes raws)

let test_comments_skipped () =
  let s =
    Scanner.make
      [
        Scanner.rule "ID" (Regex.plus Regex.letter);
        Scanner.rule "COMMENT" ~skip:true
          Regex.(seq [ str "//"; star (none_of "\n") ]);
        Scanner.rule "WS" ~skip:true (Regex.plus (Regex.set " \n"));
      ]
  in
  let raws = scan_ok s "ab // trailing\ncd" in
  Alcotest.(check (list string)) "lexemes" [ "ab"; "cd" ] (lexemes raws)

let test_tokenize_against_grammar () =
  let open Costar_grammar in
  let g =
    Grammar.define ~start:"S"
      [ ("S", [ [ Grammar.t "ID"; Grammar.t "NUM" ] ]) ]
  in
  (match Scanner.tokenize simple_scanner g "abc 7" with
  | Ok toks ->
    Alcotest.(check (list string))
      "lexemes" [ "abc"; "7" ]
      (List.map Token.lexeme toks)
  | Error e -> Alcotest.failf "unexpected: %a" Scanner.pp_error e);
  (* IF is not a terminal of g: resolution fails. *)
  match Scanner.tokenize simple_scanner g "if 7" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a resolution error"

let test_ranges_and_classes () =
  let s =
    Scanner.make
      [
        Scanner.rule "HEX"
          Regex.(seq [ str "0x"; plus (alt [ digit; range 'a' 'f' ]) ]);
        Scanner.rule "NUM" (Regex.plus Regex.digit);
        Scanner.rule "WS" ~skip:true (Regex.plus (Regex.chr ' '));
      ]
  in
  let raws = scan_ok s "0xff 123 0x0" in
  Alcotest.(check (list string)) "kinds" [ "HEX"; "NUM"; "HEX" ] (kinds raws)

let test_regex_nullable () =
  check "eps nullable" true (Regex.nullable Regex.eps);
  check "star nullable" true (Regex.nullable (Regex.star (Regex.chr 'a')));
  check "opt nullable" true (Regex.nullable (Regex.opt (Regex.chr 'a')));
  check "plus not nullable" false (Regex.nullable (Regex.plus (Regex.chr 'a')));
  check "str not nullable" false (Regex.nullable (Regex.str "ab"));
  check "empty str nullable" true (Regex.nullable (Regex.str ""))

let prop_scanner_total =
  (* The scanner is total: any byte string either scans cleanly (and the
     concatenated lexemes plus skipped spans reconstruct the input) or
     yields a located error — never an exception. *)
  QCheck.Test.make ~count:1000 ~name:"scanner never raises"
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 60) QCheck.Gen.printable)
    (fun input ->
      match Scanner.scan simple_scanner input with
      | Ok raws ->
        List.for_all (fun r -> String.length r.Scanner.lexeme > 0) raws
      | Error e -> e.Scanner.err_line >= 1 && e.Scanner.err_col >= 0)

let prop_scanner_reconstructs =
  (* Without skip rules, the lexemes concatenate to exactly the input. *)
  QCheck.Test.make ~count:1000 ~name:"lexemes reconstruct input"
    QCheck.(
      string_gen_of_size
        (QCheck.Gen.int_range 0 60)
        (QCheck.Gen.oneofl [ 'a'; 'b'; '0'; '1'; ' ' ]))
    (fun input ->
      let sc =
        Scanner.make
          [
            Scanner.rule "WORD" (Regex.plus Regex.letter);
            Scanner.rule "NUM" (Regex.plus Regex.digit);
            Scanner.rule "SPACE" (Regex.plus (Regex.chr ' '));
          ]
      in
      match Scanner.scan sc input with
      | Ok raws ->
        String.equal input
          (String.concat "" (List.map (fun r -> r.Scanner.lexeme) raws))
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "basic scanning" `Quick test_basic;
    Alcotest.test_case "maximal munch" `Quick test_maximal_munch;
    Alcotest.test_case "rule priority" `Quick test_rule_priority;
    Alcotest.test_case "positions" `Quick test_positions;
    Alcotest.test_case "lex error position" `Quick test_lex_error;
    Alcotest.test_case "nullable rule rejected" `Quick test_nullable_rule_rejected;
    Alcotest.test_case "string literals" `Quick test_string_literals;
    Alcotest.test_case "comments skipped" `Quick test_comments_skipped;
    Alcotest.test_case "tokenize vs grammar" `Quick test_tokenize_against_grammar;
    Alcotest.test_case "ranges and classes" `Quick test_ranges_and_classes;
    Alcotest.test_case "regex nullability" `Quick test_regex_nullable;
    QCheck_alcotest.to_alcotest prop_scanner_total;
    QCheck_alcotest.to_alcotest prop_scanner_reconstructs;
  ]

let () = Alcotest.run "costar_lex" [ ("lex", suite) ]
