(* Benchmark-language tests: every generated corpus file must lex and parse
   to a Unique tree whose yield matches the token stream; hand-written
   positive and negative cases per language; indenter unit tests; Fig. 8
   grammar statistics. *)

open Costar_grammar
open Costar_langs
module P = Costar_core.Parser

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse_lang lang input =
  let g = Lang.grammar lang in
  match Lang.tokenize lang input with
  | Error msg -> Error ("lex: " ^ msg)
  | Ok toks -> (
    match P.parse g toks with
    | P.Unique v -> Ok (`Unique, v, toks)
    | P.Ambig v -> Ok (`Ambig, v, toks)
    | P.Reject msg -> Error ("reject: " ^ msg)
    | P.Error e -> Error ("error: " ^ Costar_core.Types.error_to_string g e))

let expect_unique lang input =
  match parse_lang lang input with
  | Ok (`Unique, v, toks) ->
    let g = Lang.grammar lang in
    check "yield matches tokens" true
      (List.for_all2 Token.equal (Tree.yield v) toks);
    check "derivation checker" true (Derivation.recognizes_start g toks v)
  | Ok (`Ambig, _, _) ->
    Alcotest.failf "%s: ambiguous parse of %s" lang.Lang.name input
  | Error msg -> Alcotest.failf "%s: %s\ninput: %s" lang.Lang.name msg input

let expect_reject lang input =
  match parse_lang lang input with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: expected reject for %s" lang.Lang.name input

let test_generated lang () =
  List.iter
    (fun (seed, size) ->
      let src = Lang.generate lang ~seed ~size in
      expect_unique lang src)
    [ (1, 5); (2, 20); (3, 60); (4, 150); (5, 400) ]

(* --- JSON --------------------------------------------------------------- *)

let json = Json.lang

let test_json_cases () =
  expect_unique json {|{"a": 1, "b": [true, false, null], "c": {"d": "e"}}|};
  expect_unique json {|[]|};
  expect_unique json {|{}|};
  expect_unique json {|[1, 2.5, -3, 1.0e10, "x\"y"]|};
  expect_unique json {|"lone string"|};
  expect_reject json {|{"a": }|};
  expect_reject json {|[1, 2|};
  expect_reject json {|{,}|};
  expect_reject json {|[1 2]|};
  expect_reject json "@"

let test_json_fig8_stats () =
  (* The desugared JSON grammar matches the paper's Fig. 8 exactly. *)
  let g = Lang.grammar json in
  check_int "|T|" 11 (Grammar.num_terminals g);
  check_int "|N|" 7 (Grammar.num_nonterminals g);
  check_int "|P|" 17 (Grammar.num_productions g)

(* --- XML ---------------------------------------------------------------- *)

let xml = Xml.lang

let test_xml_cases () =
  expect_unique xml {|<?xml version="1.0"?><root><a x="1">hi there</a><b/></root>|};
  expect_unique xml {|<a><!-- comment --><b attr='v'/>&amp;&#38;<c>text</c></a>|};
  expect_unique xml {|<a><![CDATA[raw <stuff>]]></a>|};
  expect_unique xml "<a>\n  <b/>\n</a>";
  expect_unique xml {|<x/>|};
  (* Mismatched tag names are a semantic check, not syntactic — <a></b>
     parses; structural breakage must reject: *)
  expect_reject xml {|<a>|};
  expect_reject xml {|<a/><b/>|};
  expect_reject xml {|</a>|}

let test_xml_not_ll1_shape () =
  (* The two element alternatives stay viable through arbitrarily many
     attributes: exercise deep attribute lists on both. *)
  let attrs =
    String.concat " " (List.init 30 (fun i -> Printf.sprintf "a%d=\"v\"" i))
  in
  expect_unique xml (Printf.sprintf "<e %s></e>" attrs);
  expect_unique xml (Printf.sprintf "<e %s/>" attrs)

(* --- DOT ---------------------------------------------------------------- *)

let dot = Dot.lang

let test_dot_cases () =
  expect_unique dot "digraph g { a -> b; }";
  expect_unique dot "strict graph { a -- b -- c; }";
  expect_unique dot
    "digraph { n0 [color=\"red\", label=\"x\"]; n0 -> n1 -> n2 [weight=\"2\"]; }";
  expect_unique dot "digraph { subgraph cluster_a { x; y; } x -> y; }";
  expect_unique dot "digraph { a:n -> b:s; }";
  expect_unique dot "digraph { graph [size=\"1\"]; node [shape=\"box\"]; }";
  expect_unique dot "digraph { x = y; }";
  expect_unique dot "digraph { subgraph { a; } -> b; }";
  expect_reject dot "digraph { a -> ; }";
  expect_reject dot "graph g { a -> b }  extra";
  expect_reject dot "{ a; }"

(* --- MiniPython --------------------------------------------------------- *)

let minipy = Minipy.lang

let test_minipy_cases () =
  expect_unique minipy "x = 1\n";
  expect_unique minipy "def f(a, b=2):\n    return a + b\n";
  expect_unique minipy
    "class C:\n    def m(self):\n        if self.x > 0:\n            return 1\n        else:\n            return 2\n";
  expect_unique minipy
    "for i in items:\n    total += i\n    if total > 100:\n        break\n";
  expect_unique minipy "while not done:\n    step()\n";
  expect_unique minipy
    "try:\n    risky()\nexcept ValueError as e:\n    handle(e)\nfinally:\n    cleanup()\n";
  expect_unique minipy "import os, sys as system\nfrom a.b import c as d, e\n";
  expect_unique minipy "x = [i * 2 for i in range(10) if i % 2 == 0]\n";
  expect_unique minipy "d = {\"k\": 1, \"j\": 2}\ns = {1, 2, 3}\n";
  expect_unique minipy "f = lambda a, b: a if a > b else b\n";
  expect_unique minipy "xs[1:2] = ys[:3]\n";
  expect_unique minipy "assert x == 1, \"bad\"\ndel xs\nglobal g\n";
  expect_unique minipy "a = b = c = 0\nx, y = y, x\n";
  expect_unique minipy "raise Error(\"x\") from cause\n";
  expect_unique minipy "with open(f) as h, lock() as l:\n    use(h)\n";
  expect_unique minipy "x = (1 +\n     2)\n";
  expect_unique minipy "s = \"a\" \"b\" \"c\"\n";
  expect_unique minipy "x = 1 if flag else 2\ny = not a and b or c\n";
  expect_unique minipy "x = a < b <= c != d\ny = e is not f\nz = g not in h\n";
  expect_unique minipy "@cached\n@app.route(\"x\")\ndef f():\n    pass\n";
  expect_unique minipy "@dec\nclass C:\n    pass\n";
  expect_unique minipy "def g(a, b=1, *args, **kwargs) -> None:\n    yield a\n";
  expect_unique minipy "def h():\n    yield\n    yield from gen()\n";
  expect_unique minipy "f(*xs, **kv)\nf(x for x in xs)\n";
  expect_unique minipy "d = {k: v for k, v in pairs}\ns = {x for x in xs}\n";
  expect_unique minipy "m = {**base, \"k\": 1}\n";
  expect_unique minipy "def t(x: int, y: str = \"d\") -> bool:\n    return True\n";
  expect_unique minipy "x = ...\n";
  expect_reject minipy "def f(:\n    pass\n";
  expect_reject minipy "x = = 1\n";
  expect_reject minipy "return\n1 +\n"

let test_minipy_blank_lines_comments () =
  expect_unique minipy "# leading comment\n\nx = 1\n\n# middle\n\ny = 2\n";
  expect_unique minipy "def f():\n    # only a comment then code\n    pass\n"

let test_minipy_indent_errors () =
  (match Lang.tokenize minipy "if x:\n    y = 1\n  z = 2\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an indentation error");
  match Lang.tokenize minipy "x = 1\n    y = 2\n" with
  | Error _ -> ()
  | Ok toks ->
    (* An unexpected indent lexes (INDENT is synthesized) but must not
       parse. *)
    (match P.parse (Lang.grammar minipy) toks with
    | P.Reject _ -> ()
    | _ -> Alcotest.fail "expected a parse reject for stray indent")

let test_grammar_sizes_ordering () =
  (* MiniPython is the largest grammar, as Python 3 is in the paper. *)
  let size l = Grammar.num_productions (Lang.grammar l) in
  check "minipy largest" true
    (List.for_all (fun l -> size l <= size minipy) Registry.all);
  check "json smallest" true
    (List.for_all (fun l -> size l >= size json) Registry.all)

let test_all_lr_free () =
  List.iter
    (fun l ->
      check
        (l.Lang.name ^ " grammar is left-recursion-free")
        true
        (Left_recursion.check (Lang.grammar l) = Ok ()))
    Registry.all

let test_generator_determinism () =
  List.iter
    (fun l ->
      let a = Lang.generate l ~seed:42 ~size:50 in
      let b = Lang.generate l ~seed:42 ~size:50 in
      let c = Lang.generate l ~seed:43 ~size:50 in
      check (l.Lang.name ^ " deterministic") true (String.equal a b);
      check (l.Lang.name ^ " seed-sensitive") false (String.equal a c))
    Registry.all

let suite =
  [
    Alcotest.test_case "json cases" `Quick test_json_cases;
    Alcotest.test_case "json fig8 stats" `Quick test_json_fig8_stats;
    Alcotest.test_case "json generated corpus" `Quick (test_generated json);
    Alcotest.test_case "xml cases" `Quick test_xml_cases;
    Alcotest.test_case "xml non-LL(k) shape" `Quick test_xml_not_ll1_shape;
    Alcotest.test_case "xml generated corpus" `Quick (test_generated xml);
    Alcotest.test_case "dot cases" `Quick test_dot_cases;
    Alcotest.test_case "dot generated corpus" `Quick (test_generated dot);
    Alcotest.test_case "minipy cases" `Quick test_minipy_cases;
    Alcotest.test_case "minipy blank lines/comments" `Quick
      test_minipy_blank_lines_comments;
    Alcotest.test_case "minipy indent errors" `Quick test_minipy_indent_errors;
    Alcotest.test_case "minipy generated corpus" `Quick (test_generated minipy);
    Alcotest.test_case "grammar size ordering" `Quick test_grammar_sizes_ordering;
    Alcotest.test_case "all grammars LR-free" `Quick test_all_lr_free;
    Alcotest.test_case "generators deterministic" `Quick
      test_generator_determinism;
  ]

let () = Alcotest.run "costar_langs" [ ("langs", suite) ]
