(* Turbo (the ANTLR stand-in) tests: unit cases plus differential testing
   against the verified core parser — results must be bit-identical. *)

open Costar_grammar
open Costar_langs
module P = Costar_core.Parser

let check = Alcotest.(check bool)

let same_result g r1 r2 =
  match r1, r2 with
  | P.Unique v1, P.Unique v2 | P.Ambig v1, P.Ambig v2 -> Tree.equal v1 v2
  | P.Reject _, P.Reject _ -> true
  | P.Error e1, P.Error e2 -> e1 = e2
  | _ ->
    Fmt.epr "core: %a@.turbo: %a@." (P.pp_result g) r1 (P.pp_result g) r2;
    false

let test_langs_agree () =
  List.iter
    (fun lang ->
      let g = Lang.grammar lang in
      let p = P.make g in
      let turbo = Costar_turbo.Turbo.create g in
      List.iter
        (fun (seed, size) ->
          let src = Lang.generate lang ~seed ~size in
          let toks = Lang.tokenize_exn lang src in
          check
            (Printf.sprintf "%s seed %d" lang.Lang.name seed)
            true
            (same_result g (P.run p toks) (Costar_turbo.Turbo.parse turbo toks)))
        [ (21, 10); (22, 50); (23, 150) ])
    Registry.all

let test_rejects_agree () =
  let lang = Json.lang in
  let g = Lang.grammar lang in
  let turbo = Costar_turbo.Turbo.create g in
  List.iter
    (fun src ->
      match lang.Lang.tokenize src with
      | Error _ -> ()
      | Ok toks ->
        check src true
          (same_result g (P.parse g toks) (Costar_turbo.Turbo.parse turbo toks)))
    [ {|{"a" 1}|}; {|[1,]|}; {|[}|}; {|{"a":1}|}; "true"; "[[[]]]"; "," ]

let test_ambiguity_detected () =
  let g =
    Grammar.define ~start:"S"
      [
        ("S", [ [ Grammar.n "X" ]; [ Grammar.n "Y" ] ]);
        ("X", [ [ Grammar.t "a" ] ]);
        ("Y", [ [ Grammar.t "a" ] ]);
      ]
  in
  let turbo = Costar_turbo.Turbo.create g in
  match Costar_turbo.Turbo.parse turbo (Grammar.tokens g [ "a" ]) with
  | P.Ambig _ -> ()
  | r -> Alcotest.failf "expected Ambig, got %a" (P.pp_result g) r

let test_left_recursion_detected () =
  let g =
    Grammar.define ~start:"E"
      [ ("E", [ [ Grammar.n "E"; Grammar.t "+" ]; [ Grammar.t "n" ] ]) ]
  in
  let turbo = Costar_turbo.Turbo.create g in
  match Costar_turbo.Turbo.parse turbo (Grammar.tokens g [ "n"; "+" ]) with
  | P.Error (Costar_core.Types.Left_recursive _) -> ()
  | r -> Alcotest.failf "expected error, got %a" (P.pp_result g) r

let test_cache_warm_and_reset () =
  let lang = Minipy.lang in
  let g = Lang.grammar lang in
  let turbo = Costar_turbo.Turbo.create g in
  let toks = Lang.tokenize_exn lang (Lang.generate lang ~seed:7 ~size:100) in
  let r1 = Costar_turbo.Turbo.parse turbo toks in
  let warmed = Costar_turbo.Turbo.cache_states turbo in
  check "cache grew" true (warmed > 0);
  let r2 = Costar_turbo.Turbo.parse turbo toks in
  check "warm result identical" true (same_result g r1 r2);
  check "no further growth on same input" true
    (Costar_turbo.Turbo.cache_states turbo = warmed);
  Costar_turbo.Turbo.reset_cache turbo;
  check "reset empties cache" true (Costar_turbo.Turbo.cache_states turbo = 0);
  let r3 = Costar_turbo.Turbo.parse turbo toks in
  check "cold result identical" true (same_result g r1 r3)

let prop_differential =
  QCheck.Test.make ~count:800 ~name:"turbo = core on random grammars"
    Util.arb_grammar_word (fun (g, w) ->
      let word = Grammar.tokens g w in
      match Left_recursion.check g with
      | Error _ -> true (* error discovery points may differ under LR *)
      | Ok () ->
        let r_core = P.parse g word in
        let r_turbo = Costar_turbo.Turbo.parse (Costar_turbo.Turbo.create g) word in
        same_result g r_core r_turbo)

let suite =
  [
    Alcotest.test_case "agrees on all language corpora" `Quick test_langs_agree;
    Alcotest.test_case "agrees on rejects" `Quick test_rejects_agree;
    Alcotest.test_case "detects ambiguity" `Quick test_ambiguity_detected;
    Alcotest.test_case "detects left recursion" `Quick test_left_recursion_detected;
    Alcotest.test_case "cache warm/reset" `Quick test_cache_warm_and_reset;
    QCheck_alcotest.to_alcotest prop_differential;
  ]

let () = Alcotest.run "costar_turbo" [ ("turbo", suite) ]
