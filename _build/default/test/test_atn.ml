(* ATN tests: the graph representation round-trips the grammar (paper §3.5:
   "an ATN is merely a graph representation of a CFG"). *)

open Costar_grammar
open Costar_grammar.Symbols

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fig2 =
  Grammar.define ~start:"S"
    [
      ("S", [ [ Grammar.n "A"; Grammar.t "c" ]; [ Grammar.n "A"; Grammar.t "d" ] ]);
      ("A", [ [ Grammar.t "a"; Grammar.n "A" ]; [ Grammar.t "b" ] ]);
    ]

let test_state_count () =
  let atn = Atn.of_grammar fig2 in
  (* 2 per nonterminal + one interior state per rhs symbol:
     2*2 + (2 + 2 + 2 + 1) = 11. *)
  check_int "states" 11 (Atn.num_states atn)

let test_spell_all_productions () =
  List.iter
    (fun g ->
      let atn = Atn.of_grammar g in
      Array.iter
        (fun p ->
          let spelled = Atn.spell_production atn p.Grammar.ix in
          check "spells rhs" true (compare_symbols spelled p.Grammar.rhs = 0))
        (Grammar.prods g))
    [
      fig2;
      Grammar.define ~start:"S" [ ("S", [ [] ]) ];
      Grammar.define ~start:"S"
        [ ("S", [ []; [ Grammar.t "x"; Grammar.n "S"; Grammar.t "y" ] ]) ];
    ]

let test_entry_fanout () =
  let atn = Atn.of_grammar fig2 in
  let s =
    match Grammar.nonterminal_of_name fig2 "S" with
    | Some x -> x
    | None -> assert false
  in
  (* The entry state has one epsilon edge per alternative. *)
  let outs = Atn.edges atn (Atn.entry atn s) in
  check_int "fanout" 2 (List.length outs);
  check "all epsilon" true
    (List.for_all (function Atn.Epsilon _ -> true | _ -> false) outs);
  (* The accept state has no outgoing edges. *)
  check_int "accept is final" 0 (List.length (Atn.edges atn (Atn.accept atn s)))

let test_dot_rendering () =
  let atn = Atn.of_grammar fig2 in
  let dot = Atn.to_dot atn in
  let contains sub =
    let n = String.length dot and m = String.length sub in
    let rec go i = i + m <= n && (String.sub dot i m = sub || go (i + 1)) in
    go 0
  in
  check "has digraph" true (contains "digraph atn");
  check "names S" true (contains "\"S\"");
  check "labels terminal" true (contains "'a'")

let prop_spell_random =
  QCheck.Test.make ~count:300 ~name:"ATN spells every production back"
    (QCheck.make ~print:(fun g -> Fmt.str "%a" Grammar.pp g) Util.gen_grammar)
    (fun g ->
      let atn = Atn.of_grammar g in
      Array.for_all
        (fun p ->
          compare_symbols (Atn.spell_production atn p.Grammar.ix) p.Grammar.rhs
          = 0)
        (Grammar.prods g))

let suite =
  [
    Alcotest.test_case "state count" `Quick test_state_count;
    Alcotest.test_case "spelling" `Quick test_spell_all_productions;
    Alcotest.test_case "entry fanout" `Quick test_entry_fanout;
    Alcotest.test_case "dot rendering" `Quick test_dot_rendering;
    QCheck_alcotest.to_alcotest prop_spell_random;
  ]

let () = Alcotest.run "costar_atn" [ ("atn", suite) ]
