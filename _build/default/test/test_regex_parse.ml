(* Regex surface-syntax parser tests: each pattern is compiled and checked
   against accept/reject strings through a one-rule scanner. *)

open Costar_lex

let check = Alcotest.(check bool)

let matches pattern input =
  (* Full-match via the scanner: the rule must consume the entire input in
     one token. *)
  match Regex_parse.parse pattern with
  | Error msg -> Alcotest.failf "pattern %S: %s" pattern msg
  | Ok re -> (
    if Regex.nullable re then
      (* A nullable pattern can't drive the scanner; test emptiness only. *)
      input = ""
    else
      match Scanner.scan (Scanner.make [ Scanner.rule "R" re ]) input with
      | Ok [ raw ] -> String.equal raw.Scanner.lexeme input
      | _ -> false)

let test_literals () =
  check "abc" true (matches "abc" "abc");
  check "abc no" false (matches "abc" "abd");
  check "escaped dot" true (matches "a\\.b" "a.b");
  check "escaped dot no" false (matches "a\\.b" "axb");
  check "newline escape" true (matches "a\\nb" "a\nb");
  check "string literal" true (matches "\"a.c\"" "a.c");
  check "string literal is literal" false (matches "\"a.c\"" "abc")

let test_classes () =
  check "range" true (matches "[a-c]+" "abcba");
  check "range excludes" false (matches "[a-c]+" "abd");
  check "multi range" true (matches "[a-z0-9_]+" "ab_9z");
  check "negated" true (matches "[^0-9]+" "hello!");
  check "negated excludes" false (matches "[^0-9]+" "hi5");
  check "literal dash" true (matches "[a-]+" "a-a");
  check "escaped in class" true (matches "[\\n\\t]+" "\n\t")

let test_operators () =
  check "star" true (matches "ab*c" "abbbc");
  check "star zero" true (matches "ab*c" "ac");
  check "plus" true (matches "ab+c" "abc");
  check "plus zero" false (matches "ab+c" "ac");
  check "opt present" true (matches "ab?c" "abc");
  check "opt absent" true (matches "ab?c" "ac");
  check "alt" true (matches "cat|dog" "dog");
  check "alt no" false (matches "cat|dog" "cow");
  check "group" true (matches "(ab)+" "ababab");
  check "group vs nogroup" false (matches "(ab)+" "abb");
  check "dot" true (matches "a.c" "axc");
  check "precedence |" true (matches "ab|cd" "cd");
  check "precedence | no" false (matches "ab|cd" "ad")

let test_realistic () =
  let number = "-?(0|[1-9][0-9]*)(\\.[0-9]+)?([eE][+-]?[0-9]+)?" in
  check "int" true (matches number "42");
  check "neg float" true (matches number "-3.14");
  check "exp" true (matches number "1.5e-10");
  check "leading zero" false (matches number "042");
  let ident = "[a-zA-Z_][a-zA-Z0-9_]*" in
  check "ident" true (matches ident "_foo42");
  check "ident no" false (matches ident "9lives")

let test_errors () =
  let bad p = match Regex_parse.parse p with Error _ -> true | Ok _ -> false in
  check "unbalanced paren" true (bad "(ab");
  check "stray close" true (bad "ab)");
  check "unterminated class" true (bad "[abc");
  check "empty class" true (bad "[]");
  check "inverted range" true (bad "[z-a]");
  check "dangling backslash" true (bad "ab\\");
  check "stray postfix" true (bad "*ab");
  check "unterminated string" true (bad "\"ab")

let test_parse_exn () =
  check "ok" true (Regex_parse.parse_exn "a" = Regex.chr 'a');
  check "raises" true
    (try
       ignore (Regex_parse.parse_exn "(");
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "literals" `Quick test_literals;
    Alcotest.test_case "classes" `Quick test_classes;
    Alcotest.test_case "operators" `Quick test_operators;
    Alcotest.test_case "realistic patterns" `Quick test_realistic;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "parse_exn" `Quick test_parse_exn;
  ]

let () = Alcotest.run "costar_regex_parse" [ ("regex-parse", suite) ]
