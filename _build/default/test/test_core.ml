(* Core parser tests: the paper's running examples (Fig. 2 and Fig. 6),
   basic accept/reject behaviour, ambiguity labelling, left recursion. *)

open Costar_grammar
open Costar_core

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* Fig. 2: S -> A c | A d ; A -> a A | b.  Input "abd". *)
let fig2 =
  Grammar.define ~start:"S"
    [
      ("S", [ [ Grammar.n "A"; Grammar.t "c" ]; [ Grammar.n "A"; Grammar.t "d" ] ]);
      ("A", [ [ Grammar.t "a"; Grammar.n "A" ]; [ Grammar.t "b" ] ]);
    ]

(* Fig. 6: S -> X | Y ; X -> a ; Y -> a.  Input "a" is ambiguous. *)
let fig6 =
  Grammar.define ~start:"S"
    [
      ("S", [ [ Grammar.n "X" ]; [ Grammar.n "Y" ] ]);
      ("X", [ [ Grammar.t "a" ] ]);
      ("Y", [ [ Grammar.t "a" ] ]);
    ]

let parse_names g names = Parser.parse g (Grammar.tokens g names)

let test_fig2_unique () =
  match parse_names fig2 [ "a"; "b"; "d" ] with
  | Parser.Unique v ->
    check_str "tree" "(S (A 'a' (A 'b')) 'd')" (Tree.to_string fig2 v);
    check "sound" true
      (Derivation.recognizes_start fig2 (Grammar.tokens fig2 [ "a"; "b"; "d" ]) v)
  | r -> Alcotest.failf "expected Unique, got %a" (Parser.pp_result fig2) r

let test_fig2_reject () =
  (match parse_names fig2 [ "a"; "b" ] with
  | Parser.Reject _ -> ()
  | r -> Alcotest.failf "expected Reject, got %a" (Parser.pp_result fig2) r);
  (match parse_names fig2 [ "b"; "d"; "d" ] with
  | Parser.Reject _ -> ()
  | r -> Alcotest.failf "expected Reject, got %a" (Parser.pp_result fig2) r);
  match parse_names fig2 [] with
  | Parser.Reject _ -> ()
  | r -> Alcotest.failf "expected Reject, got %a" (Parser.pp_result fig2) r

let test_fig2_longer () =
  (* a^n b c parses uniquely for various n *)
  for n = 0 to 20 do
    let w = List.init n (fun _ -> "a") @ [ "b"; "c" ] in
    match parse_names fig2 w with
    | Parser.Unique v ->
      check "sound" true
        (Derivation.recognizes_start fig2 (Grammar.tokens fig2 w) v)
    | r -> Alcotest.failf "n=%d: expected Unique, got %a" n (Parser.pp_result fig2) r
  done

let test_fig6_ambig () =
  match parse_names fig6 [ "a" ] with
  | Parser.Ambig v ->
    check "sound" true
      (Derivation.recognizes_start fig6 (Grammar.tokens fig6 [ "a" ]) v)
  | r -> Alcotest.failf "expected Ambig, got %a" (Parser.pp_result fig6) r

let test_left_recursion_error () =
  (* E -> E '+' 'n' | 'n' is left-recursive: the parser must report it
     as an error rather than diverge. *)
  let g =
    Grammar.define ~start:"E"
      [ ("E", [ [ Grammar.n "E"; Grammar.t "+"; Grammar.t "n" ]; [ Grammar.t "n" ] ]) ]
  in
  match parse_names g [ "n"; "+"; "n" ] with
  | Parser.Error (Types.Left_recursive x) ->
    check_str "nonterminal" "E" (Grammar.nonterminal_name g x)
  | r -> Alcotest.failf "expected Left_recursive, got %a" (Parser.pp_result g) r

let test_empty_word_nullable () =
  let g =
    Grammar.define ~start:"S" [ ("S", [ []; [ Grammar.t "x"; Grammar.n "S" ] ]) ]
  in
  (match parse_names g [] with
  | Parser.Unique (Tree.Node (_, [])) -> ()
  | r -> Alcotest.failf "expected Unique (S), got %a" (Parser.pp_result g) r);
  match parse_names g [ "x"; "x"; "x" ] with
  | Parser.Unique v ->
    check "sound" true
      (Derivation.recognizes_start g (Grammar.tokens g [ "x"; "x"; "x" ]) v)
  | r -> Alcotest.failf "expected Unique, got %a" (Parser.pp_result g) r

let suite =
  [
    Alcotest.test_case "fig2 unique parse" `Quick test_fig2_unique;
    Alcotest.test_case "fig2 rejections" `Quick test_fig2_reject;
    Alcotest.test_case "fig2 longer inputs" `Quick test_fig2_longer;
    Alcotest.test_case "fig6 ambiguity" `Quick test_fig6_ambig;
    Alcotest.test_case "left recursion error" `Quick test_left_recursion_error;
    Alcotest.test_case "nullable start symbol" `Quick test_empty_word_nullable;
  ]

let () = Alcotest.run "costar_core" [ ("parser", suite) ]
