(* Grammar-transformation tests: left-recursion elimination (paper §4.1/§8),
   left factoring, and useless-symbol removal — unit cases plus
   language-preservation properties against the Earley oracle. *)

open Costar_grammar

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let accepts g w =
  (* A word mentioning a terminal the grammar does not even know is
     trivially outside its language. *)
  match Grammar.tokens g w with
  | toks -> Costar_earley.Recognizer.accepts g toks
  | exception Invalid_argument _ -> false

(* Spot-check language equality over all words up to [len] drawn from
   [terminals].  (Exponential, so keep len small.) *)
let same_language ?(len = 5) terminals g1 g2 =
  let rec words n =
    if n = 0 then [ [] ]
    else
      let shorter = words (n - 1) in
      shorter
      @ List.concat_map
          (fun w -> List.map (fun t -> t :: w) terminals)
          (List.filter (fun w -> List.length w = n - 1) shorter)
  in
  List.for_all (fun w -> accepts g1 w = accepts g2 w) (words len)

let lr_expr =
  Grammar.define ~start:"E"
    [
      ( "E",
        [
          [ Grammar.n "E"; Grammar.t "+"; Grammar.t "n" ];
          [ Grammar.n "E"; Grammar.t "*"; Grammar.t "n" ];
          [ Grammar.t "n" ];
        ] );
    ]

let test_eliminate_direct () =
  let g' = Transform.eliminate_left_recursion lr_expr in
  check "LR-free afterwards" true (Left_recursion.check g' = Ok ());
  check "same language" true (same_language [ "n"; "+"; "*" ] lr_expr g');
  (* And CoStar can now actually parse with it. *)
  match
    Costar_core.Parser.parse g' (Grammar.tokens g' [ "n"; "+"; "n"; "*"; "n" ])
  with
  | Costar_core.Parser.Unique _ -> ()
  | r -> Alcotest.failf "expected Unique, got %a" (Costar_core.Parser.pp_result g') r

let test_eliminate_indirect () =
  (* A -> B 'a' | 'd' ; B -> A 'b' | 'c' : indirect left recursion. *)
  let g =
    Grammar.define ~start:"A"
      [
        ("A", [ [ Grammar.n "B"; Grammar.t "a" ]; [ Grammar.t "d" ] ]);
        ("B", [ [ Grammar.n "A"; Grammar.t "b" ]; [ Grammar.t "c" ] ]);
      ]
  in
  check "indirectly left-recursive" true (Left_recursion.check g <> Ok ());
  let g' = Transform.eliminate_left_recursion g in
  check "LR-free afterwards" true (Left_recursion.check g' = Ok ());
  check "same language" true
    (same_language ~len:6 [ "a"; "b"; "c"; "d" ] g g')

let test_eliminate_unit_self_loop () =
  (* X -> X | 'x' : the cyclic production is dropped. *)
  let g =
    Grammar.define ~start:"X" [ ("X", [ [ Grammar.n "X" ]; [ Grammar.t "x" ] ]) ]
  in
  let g' = Transform.eliminate_left_recursion g in
  check "LR-free" true (Left_recursion.check g' = Ok ());
  check "accepts x" true (accepts g' [ "x" ]);
  check "rejects xx" false (accepts g' [ "x"; "x" ])

let test_eliminate_hidden_raises () =
  let g =
    Grammar.define ~start:"S"
      [
        ("S", [ [ Grammar.n "N"; Grammar.n "S"; Grammar.t "x" ]; [ Grammar.t "y" ] ]);
        ("N", [ [] ]);
      ]
  in
  check "hidden LR raises" true
    (try
       ignore (Transform.eliminate_left_recursion g);
       false
     with Invalid_argument _ -> true)

let test_eliminate_noop_on_clean () =
  let g =
    Grammar.define ~start:"S"
      [ ("S", [ [ Grammar.t "a"; Grammar.n "S" ]; [] ]) ]
  in
  let g' = Transform.eliminate_left_recursion g in
  check "language unchanged" true (same_language [ "a" ] g g');
  check_int "no new nonterminals" (Grammar.num_nonterminals g)
    (Grammar.num_nonterminals g')

let test_left_factor () =
  let g =
    Grammar.define ~start:"S"
      [
        ( "S",
          [
            [ Grammar.t "a"; Grammar.t "b"; Grammar.t "c" ];
            [ Grammar.t "a"; Grammar.t "b"; Grammar.t "d" ];
            [ Grammar.t "e" ];
          ] );
      ]
  in
  check "not LL(1) before" true (Costar_ll1.Ll1.conflicts g <> []);
  let g' = Transform.left_factor g in
  check "LL(1) after factoring" true (Costar_ll1.Ll1.conflicts g' = []);
  check "same language" true
    (same_language ~len:4 [ "a"; "b"; "c"; "d"; "e" ] g g')

let test_left_factor_nested () =
  (* Factoring cascades: after pulling 'a', the suffixes still share 'b'. *)
  let g =
    Grammar.define ~start:"S"
      [
        ( "S",
          [
            [ Grammar.t "a"; Grammar.t "b"; Grammar.t "c" ];
            [ Grammar.t "a"; Grammar.t "b" ];
            [ Grammar.t "a" ];
          ] );
      ]
  in
  let g' = Transform.left_factor g in
  check "same language" true (same_language ~len:4 [ "a"; "b"; "c" ] g g');
  check "LL(1) after" true (Costar_ll1.Ll1.conflicts g' = [])

let test_remove_useless () =
  let g =
    Grammar.define ~allow_undefined:true ~start:"S"
      [
        ("S", [ [ Grammar.t "x" ]; [ Grammar.n "Loop" ] ]);
        ("Dead", [ [ Grammar.t "y" ] ]);
        ("Loop", [ [ Grammar.n "Loop" ] ]);
      ]
  in
  let g' = Transform.remove_useless g in
  check "Dead removed" true (Grammar.nonterminal_of_name g' "Dead" = None);
  check "Loop removed" true (Grammar.nonterminal_of_name g' "Loop" = None);
  check "language preserved" true (same_language ~len:3 [ "x"; "y" ] g g')

let test_remove_useless_empty_language () =
  let g =
    Grammar.define ~start:"S" [ ("S", [ [ Grammar.n "S"; Grammar.t "x" ] ]) ]
  in
  check "empty language raises" true
    (try
       ignore (Transform.remove_useless g);
       false
     with Invalid_argument _ -> true)

let prop_eliminate_preserves_language =
  QCheck.Test.make ~count:300
    ~name:"left-recursion elimination preserves the language"
    Util.arb_grammar_word (fun (g, w) ->
      match Transform.eliminate_left_recursion g with
      | exception Invalid_argument _ -> true (* hidden left recursion *)
      | g' ->
        Left_recursion.check g' = Ok () && accepts g w = accepts g' w)

let prop_factor_preserves_language =
  QCheck.Test.make ~count:300 ~name:"left factoring preserves the language"
    Util.arb_grammar_word (fun (g, w) ->
      let g' = Transform.left_factor g in
      accepts g w = accepts g' w)

let prop_eliminated_grammars_parse =
  QCheck.Test.make ~count:200
    ~name:"CoStar parses what the eliminated grammar accepts"
    Util.arb_grammar_word (fun (g, w) ->
      match Transform.eliminate_left_recursion g with
      | exception Invalid_argument _ -> true
      | g' -> (
        let word = Grammar.tokens g' w in
        let accepted = accepts g' w in
        match Costar_core.Parser.parse g' word with
        | Costar_core.Parser.Unique _ | Costar_core.Parser.Ambig _ -> accepted
        | Costar_core.Parser.Reject _ -> not accepted
        | Costar_core.Parser.Error _ -> false))

let suite =
  [
    Alcotest.test_case "direct elimination" `Quick test_eliminate_direct;
    Alcotest.test_case "indirect elimination" `Quick test_eliminate_indirect;
    Alcotest.test_case "unit self-loop dropped" `Quick
      test_eliminate_unit_self_loop;
    Alcotest.test_case "hidden LR raises" `Quick test_eliminate_hidden_raises;
    Alcotest.test_case "no-op on clean grammars" `Quick
      test_eliminate_noop_on_clean;
    Alcotest.test_case "left factoring" `Quick test_left_factor;
    Alcotest.test_case "nested left factoring" `Quick test_left_factor_nested;
    Alcotest.test_case "useless removal" `Quick test_remove_useless;
    Alcotest.test_case "empty language rejected" `Quick
      test_remove_useless_empty_language;
    QCheck_alcotest.to_alcotest prop_eliminate_preserves_language;
    QCheck_alcotest.to_alcotest prop_factor_preserves_language;
    QCheck_alcotest.to_alcotest prop_eliminated_grammars_parse;
  ]

let () = Alcotest.run "costar_transform" [ ("transform", suite) ]
