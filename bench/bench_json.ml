(* Machine-readable benchmark output.  Experiments record named float
   metrics as they print their tables; with `--json-dir DIR` the harness
   writes one `BENCH_<experiment>.json` file per experiment at the end of
   the run, e.g.

     { "experiment": "batch",
       "metrics": { "json.speedup_4d": 2.84, ... } }

   so CI can archive and compare runs without scraping the human tables.
   Without `--json-dir`, recording is a no-op. *)

let dir : string option ref = ref None

let order : string list ref = ref []
let store : (string, (string * float) list ref) Hashtbl.t = Hashtbl.create 8

let record ~bench key value =
  if !dir <> None then begin
    let row =
      match Hashtbl.find_opt store bench with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.add store bench r;
        order := bench :: !order;
        r
    in
    row := (key, value) :: !row
  end

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* %h/%e style floats are noisy; a fixed six significant decimals is enough
   for benchmark metrics and keeps the files diffable. *)
let float_str v =
  if Float.is_nan v then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let flush () =
  match !dir with
  | None -> ()
  | Some d ->
    List.iter
      (fun bench ->
        let metrics = List.rev !(Hashtbl.find store bench) in
        let path = Filename.concat d (Printf.sprintf "BENCH_%s.json" bench) in
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            output_string oc "{\n";
            Printf.fprintf oc "  \"experiment\": \"%s\",\n" (escape bench);
            output_string oc "  \"metrics\": {\n";
            List.iteri
              (fun i (k, v) ->
                Printf.fprintf oc "    \"%s\": %s%s\n" (escape k) (float_str v)
                  (if i = List.length metrics - 1 then "" else ","))
              metrics;
            output_string oc "  }\n}\n");
        Printf.printf "wrote %s\n" path)
      (List.rev !order)
