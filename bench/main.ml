(* The CoStar-ml evaluation harness: regenerates every table and figure of
   the paper's Section 6, plus the ablations called out in DESIGN.md.

     E1  --only fig8      grammar & data-set statistics (Fig. 8, a table)
     E2  --only fig9      input size vs parse time + regression/LOWESS (Fig. 9)
     E3  --only fig10     CoStar slowdown w.r.t. Turbo/"ANTLR" (Fig. 10)
     E4  --only fig11     cold vs warm prediction cache on MiniPython (Fig. 11)
     E7  --only ll1       LL(1) conflict report: XML is not LL(1) (§6.1 claim)
     E8  --only ablation  interned ints vs extraction-style strings (§6.1)
     E9  --only earley    general-CFG baseline vs CoStar (§7 claim)
     E12 --only precache  offline DFA precompilation: analyze once, parse warm
     E13 --only intern    interned prediction hot path: cold vs warm us/token
     E14 --only pipeline  zero-copy token pipeline: list vs buffer MB/s
     E15 --only batch     multicore batch parsing: 1/2/4/8 domains vs sequential
     E16 --only e16       GC-free data plane: prefork workers over an mmapped
                          v3 cache image, with minor-allocation fences

   With no --only option, all experiments run.  --quick shrinks the corpora
   (used for smoke checks); --bechamel additionally runs one Bechamel
   micro-benchmark per experiment. *)

open Costar_grammar
open Costar_langs
module P = Costar_core.Parser
module Batch = Costar_parallel.Batch
module Stats = Costar_stats

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  quick : bool;
  trials : int;
  only : string option;
  bechamel : bool;
  json_dir : string option;
}

let parse_args () =
  let quick = ref false and trials = ref 5 and only = ref None and bech = ref false in
  let json_dir = ref None in
  let spec =
    [
      ("--quick", Arg.Set quick, " shrink corpora for a fast smoke run");
      ("--trials", Arg.Set_int trials, "<n> timing trials per data point (default 5)");
      ( "--only",
        Arg.String (fun s -> only := Some s),
        "<exp> run one experiment: \
         fig8|fig9|fig10|fig11|ll1|ablation|earley|lookahead|gss|precache|intern|pipeline|batch|e16" );
      ("--bechamel", Arg.Set bech, " also run Bechamel micro-benchmarks");
      ( "--json-dir",
        Arg.String (fun s -> json_dir := Some s),
        "<dir> also write machine-readable BENCH_<experiment>.json files" );
    ]
  in
  Arg.parse (Arg.align spec)
    (fun s -> raise (Arg.Bad ("unexpected argument " ^ s)))
    "costar benchmark harness";
  { quick = !quick; trials = !trials; only = !only; bechamel = !bech;
    json_dir = !json_dir }

let wants cfg name = match cfg.only with None -> true | Some o -> o = name

(* ------------------------------------------------------------------ *)
(* Corpora                                                             *)
(* ------------------------------------------------------------------ *)

type file = {
  src : string;
  toks : Token.t list;
  n_toks : int;
  bytes : int;
}

type corpus = {
  lang : Lang.t;
  files : file list;
}

(* Log-spaced size parameters from [lo] to [hi]. *)
let log_spaced ~n ~lo ~hi =
  List.init n (fun i ->
      let t = float_of_int i /. float_of_int (max 1 (n - 1)) in
      let s =
        exp
          (log (float_of_int lo)
          +. (t *. (log (float_of_int hi) -. log (float_of_int lo))))
      in
      int_of_float (Float.round s))

let build_corpus lang ~n ~lo ~hi =
  let files =
    List.mapi
      (fun i size ->
        let seed = 1000 + i in
        let src = Lang.generate lang ~seed ~size in
        let toks = Lang.tokenize_exn lang src in
        { src; toks; n_toks = List.length toks; bytes = String.length src })
      (log_spaced ~n ~lo ~hi)
  in
  { lang; files }

let corpora cfg =
  let q n = if cfg.quick then max 4 (n / 4) else n in
  let qs n = if cfg.quick then max 20 (n / 8) else n in
  [
    build_corpus Json.lang ~n:(q 25) ~lo:8 ~hi:(qs 20000);
    build_corpus Xml.lang ~n:(q 25) ~lo:8 ~hi:(qs 10000);
    build_corpus Dot.lang ~n:(q 32) ~lo:8 ~hi:(qs 6000);
    build_corpus Minipy.lang ~n:(q 20) ~lo:8 ~hi:(qs 5000);
  ]

(* ------------------------------------------------------------------ *)
(* Timing                                                              *)
(* ------------------------------------------------------------------ *)

let time_once ~reps f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (f ())
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int reps

let time_trials ~trials f =
  (* One untimed warm-up call lets lazy per-grammar setup (e.g. the static
     grammar cache) happen outside the measured region; it also calibrates
     a repetition count so each sample spans >= ~1ms of wall clock, keeping
     clock-resolution noise out of the small-file points.  Functions that
     measure cold-cache behaviour reset their caches inside [f], so
     repetition does not warm them. *)
  let est = time_once ~reps:1 f in
  let reps = max 1 (min 2000 (int_of_float (1e-3 /. (est +. 1e-9)))) in
  (* Settle the GC before sampling: setup work (corpus generation, cache
     warming) leaves incremental-mark debt that would otherwise be paid —
     unevenly — inside the first few measured parses. *)
  Gc.full_major ();
  let samples = Array.init trials (fun _ -> time_once ~reps f) in
  (Stats.Summary.mean samples, Stats.Summary.stdev samples)

(* Best-of-samples variant for the head-to-head engine comparison (E13):
   on a shared machine the distribution of samples is the true cost plus
   one-sided interference spikes, so the minimum estimates the true cost
   far more robustly than the mean. *)
let time_best ~trials f =
  let est = time_once ~reps:1 f in
  let reps = max 1 (min 2000 (int_of_float (1e-3 /. (est +. 1e-9)))) in
  Gc.full_major ();
  let best = ref infinity in
  for _ = 1 to trials do
    best := min !best (time_once ~reps f)
  done;
  !best

let expect_unique lang = function
  | P.Unique _ -> ()
  | r ->
    Fmt.failwith "%s corpus file did not parse uniquely: %a" lang.Lang.name
      (P.pp_result (Lang.grammar lang))
      r

(* ------------------------------------------------------------------ *)
(* E1: Fig. 8 — grammar and data-set statistics                        *)
(* ------------------------------------------------------------------ *)

let fig8 corpora =
  print_endline "== Figure 8 (table): grammar size and data set size ==";
  print_endline
    "(counts taken from the desugared BNF grammars, as in the paper)";
  Printf.printf "%-10s %6s %6s %6s %8s %10s\n" "Benchmark" "|T|" "|N|" "|P|"
    "# files" "KB";
  List.iter
    (fun { lang; files } ->
      let g = Lang.grammar lang in
      let kb =
        float_of_int (List.fold_left (fun acc f -> acc + f.bytes) 0 files)
        /. 1024.
      in
      Printf.printf "%-10s %6d %6d %6d %8d %10.1f\n" lang.Lang.name
        (Grammar.num_terminals g)
        (Grammar.num_nonterminals g)
        (Grammar.num_productions g)
        (List.length files) kb)
    corpora;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E2: Fig. 9 — input size vs parse time, regression + LOWESS          *)
(* ------------------------------------------------------------------ *)

let fig9 cfg corpora =
  print_endline "== Figure 9: input size vs CoStar parse time ==";
  Printf.printf
    "(each point: %d trials; each parse starts from the static grammar cache \
     only,\n keeping nothing learned from earlier parses, as in the paper)\n"
    cfg.trials;
  List.iter
    (fun { lang; files } ->
      let p = P.make (Lang.grammar lang) in
      Printf.printf "\n-- %s (%d files) --\n" lang.Lang.name (List.length files);
      Printf.printf "%10s %10s %12s %12s\n" "tokens" "bytes" "mean(ms)"
        "stdev(ms)";
      let points =
        List.map
          (fun f ->
            let mean, stdev =
              time_trials ~trials:cfg.trials (fun () ->
                  let r = P.run_cold p f.toks in
                  expect_unique lang r;
                  r)
            in
            Printf.printf "%10d %10d %12.3f %12.3f\n" f.n_toks f.bytes
              (mean *. 1e3) (stdev *. 1e3);
            (float_of_int f.n_toks, mean))
          files
      in
      let points = List.sort compare points in
      let xs = Array.of_list (List.map fst points) in
      let ys = Array.of_list (List.map snd points) in
      let fit = Stats.Regression.fit xs ys in
      let dev = Stats.Lowess.max_deviation_from_line ~f:0.3 xs ys fit in
      Printf.printf
        "regression: %.3f us/token, intercept %.3f ms, r^2 = %.4f\n"
        (fit.Stats.Regression.slope *. 1e6)
        (fit.Stats.Regression.intercept *. 1e3)
        fit.Stats.Regression.r2;
      Printf.printf "LOWESS vs regression: max deviation %.1f%% of range -> %s\n"
        (dev *. 100.)
        (* The paper's criterion is visual coincidence of the two curves;
           we quantify it as <15% of the y-range, which tolerates DOT's
           content-dependent prediction costs (edge-vs-subgraph mix). *)
        (if dev < 0.15 then "curves coincide (linear)" else "NONLINEAR"))
    corpora;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E3: Fig. 10 — slowdown w.r.t. the Turbo (ANTLR stand-in) parser     *)
(* ------------------------------------------------------------------ *)

let fig10 cfg corpora =
  print_endline
    "== Figure 10: CoStar slowdown w.r.t. Turbo (ANTLR stand-in) ==";
  Printf.printf "%-10s %25s %32s\n" "Benchmark" "parser-only slowdown"
    "(lexer+CoStar)/(lexer+Turbo)";
  List.iter
    (fun { lang; files } ->
      let g = Lang.grammar lang in
      let p = P.make g in
      let turbo = Costar_turbo.Turbo.create g in
      let ratios, pipe_ratios =
        List.split
          (List.filter_map
             (fun f ->
               if f.n_toks < 20 then None
               else begin
                 let lex_t, _ =
                   time_trials ~trials:cfg.trials (fun () ->
                       Lang.tokenize lang f.src)
                 in
                 let costar_t, _ =
                   time_trials ~trials:cfg.trials (fun () ->
                       P.run_cold p f.toks)
                 in
                 let turbo_t, _ =
                   time_trials ~trials:cfg.trials (fun () ->
                       (* cold cache per trial, matching the paper's ANTLR
                          configuration (fresh parser per trial) *)
                       Costar_turbo.Turbo.reset_cache turbo;
                       Costar_turbo.Turbo.parse turbo f.toks)
                 in
                 Some
                   ( costar_t /. turbo_t,
                     (lex_t +. costar_t) /. (lex_t +. turbo_t) )
               end)
             files)
      in
      let ratios = Array.of_list ratios in
      let pipe_ratios = Array.of_list pipe_ratios in
      Printf.printf "%-10s %17.1fx ± %-5.1f %24.1fx ± %-5.1f\n" lang.Lang.name
        (Stats.Summary.mean ratios)
        (Stats.Summary.stdev ratios)
        (Stats.Summary.mean pipe_ratios)
        (Stats.Summary.stdev pipe_ratios))
    corpora;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E4: Fig. 11 — cold vs pre-warmed prediction cache (MiniPython)      *)
(* ------------------------------------------------------------------ *)

let fig11 cfg corpora =
  print_endline
    "== Figure 11: cold vs pre-warmed cache, MiniPython (Turbo) ==";
  let { lang; files } =
    List.find (fun c -> c.lang.Lang.name = "minipy") corpora
  in
  let g = Lang.grammar lang in
  let turbo = Costar_turbo.Turbo.create g in
  let cold =
    List.map
      (fun f ->
        let t, _ =
          time_trials ~trials:cfg.trials (fun () ->
              Costar_turbo.Turbo.reset_cache turbo;
              Costar_turbo.Turbo.parse turbo f.toks)
        in
        (f, t))
      files
  in
  (* Pre-warm on the whole corpus, then measure warm times. *)
  Costar_turbo.Turbo.reset_cache turbo;
  List.iter (fun f -> ignore (Costar_turbo.Turbo.parse turbo f.toks)) files;
  let warm =
    List.map
      (fun f ->
        let t, _ =
          time_trials ~trials:cfg.trials (fun () ->
              Costar_turbo.Turbo.parse turbo f.toks)
        in
        (f, t))
      files
  in
  Printf.printf "%10s %14s %14s %16s %16s\n" "tokens" "cold(ms)" "warm(ms)"
    "cold us/token" "warm us/token";
  List.iter2
    (fun (f, tc) (_, tw) ->
      Printf.printf "%10d %14.3f %14.3f %16.2f %16.2f\n" f.n_toks (tc *. 1e3)
        (tw *. 1e3)
        (tc /. float_of_int (max 1 f.n_toks) *. 1e6)
        (tw /. float_of_int (max 1 f.n_toks) *. 1e6))
    cold warm;
  (* The paper's observation: per-token cost falls with file size when the
     cache is cold (warm-up amortizes), and the effect disappears when the
     cache is pre-warmed. *)
  let per_token l =
    List.filter_map
      (fun (f, t) ->
        if f.n_toks < 50 then None
        else Some (f.n_toks, t /. float_of_int f.n_toks))
      l
  in
  let summarize name l =
    let pts = per_token l in
    let k = List.length pts / 2 in
    let small = List.filteri (fun i _ -> i < k) pts in
    let large = List.filteri (fun i _ -> i >= k) pts in
    let mean l = Stats.Summary.mean (Array.of_list (List.map snd l)) in
    Printf.printf
      "%s: mean per-token cost, smaller half %.2f us vs larger half %.2f us (ratio %.2f)\n"
      name (mean small *. 1e6) (mean large *. 1e6)
      (mean small /. mean large)
  in
  summarize "cold" cold;
  summarize "warm" warm;
  (* CoStar-side extension: the verified parser with a reused cache. *)
  let p = P.make g in
  let shared =
    List.fold_left
      (fun cache f -> snd (P.run_with_cache p cache f.toks))
      (Costar_core.Cache.create (P.analysis p))
      files
  in
  let costar_warm =
    List.map
      (fun f ->
        let t, _ =
          time_trials ~trials:cfg.trials (fun () ->
              P.run_with_cache p shared f.toks)
        in
        (f, t))
      files
  in
  summarize "CoStar warm (extension)" costar_warm;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E7: LL(1) conflict report                                           *)
(* ------------------------------------------------------------------ *)

let ll1_table corpora =
  print_endline
    "== E7: LL(1) generator vs the benchmark grammars (Section 6.1 claim) ==";
  Printf.printf "%-10s %12s   %s\n" "Benchmark" "conflicts" "example";
  List.iter
    (fun { lang; _ } ->
      let g = Lang.grammar lang in
      match Costar_ll1.Ll1.conflicts g with
      | [] ->
        Printf.printf "%-10s %12d   (grammar is LL(1))\n" lang.Lang.name 0
      | c :: _ as cs ->
        Printf.printf "%-10s %12d   %s\n" lang.Lang.name (List.length cs)
          (Fmt.str "%a" (Costar_ll1.Ll1.pp_conflict g) c))
    corpora;
  print_endline
    "CoStar parses all four corpora (see Fig. 9); the LL(1) baseline can build";
  print_endline
    "a table for none of them without refactoring. In particular the XML";
  print_endline
    "element rule is not LL(k) for any k (unbounded attribute lookahead).";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E8: symbol-representation ablation                                  *)
(* ------------------------------------------------------------------ *)

let ablation cfg corpora =
  print_endline
    "== E8 (ablation): interned ints vs extraction-style strings ==";
  print_endline
    "(the paper profiles extracted code and finds comparison functions dominate;";
  print_endline
    " slowdown should grow with grammar size, cf. its JSON-vs-Python discussion)";
  Printf.printf "%-10s %6s %14s %14s %10s\n" "Benchmark" "|P|" "core(ms)"
    "extracted(ms)" "slowdown";
  List.iter
    (fun { lang; files } ->
      let g = Lang.grammar lang in
      let eg = Costar_extracted.Extracted.of_grammar g in
      let p = P.make g in
      (* Mid-sized file to keep the string version affordable. *)
      let f = List.nth files (List.length files / 2) in
      let core_t, _ =
        time_trials ~trials:cfg.trials (fun () -> P.run p f.toks)
      in
      let ext_t, _ =
        time_trials ~trials:cfg.trials (fun () ->
            Costar_extracted.Extracted.parse_tokens eg g f.toks)
      in
      Printf.printf "%-10s %6d %14.3f %14.3f %9.1fx\n" lang.Lang.name
        (Grammar.num_productions g)
        (core_t *. 1e3) (ext_t *. 1e3) (ext_t /. core_t))
    corpora;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E9: general-CFG (Earley) baseline                                   *)
(* ------------------------------------------------------------------ *)

let earley cfg corpora =
  print_endline "== E9: Earley (general-CFG) baseline vs CoStar, JSON ==";
  print_endline
    "(Section 7's motivation: general parsers are slower on the deterministic";
  print_endline
    " grammars that suffice in practice; Earley here only *recognizes*)";
  let { lang; files } =
    List.find (fun c -> c.lang.Lang.name = "json") corpora
  in
  let g = Lang.grammar lang in
  let p = P.make g in
  Printf.printf "%10s %14s %14s %10s\n" "tokens" "CoStar(ms)" "Earley(ms)"
    "ratio";
  List.iter
    (fun f ->
      if f.n_toks >= 50 && f.n_toks <= 3000 then begin
        let costar_t, _ =
          time_trials ~trials:cfg.trials (fun () -> P.run p f.toks)
        in
        let earley_t, _ =
          time_trials ~trials:cfg.trials (fun () ->
              Costar_earley.Recognizer.accepts g f.toks)
        in
        Printf.printf "%10d %14.3f %14.3f %9.1fx\n" f.n_toks (costar_t *. 1e3)
          (earley_t *. 1e3)
          (earley_t /. costar_t)
      end)
    files;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E11 (supplementary): graph-structured stack ablation                 *)
(* ------------------------------------------------------------------ *)

let gss_ablation cfg corpora =
  print_endline "== E11 (supplementary): GSS vs list-stack SLL prediction ==";
  print_endline
    "(Section 3.5: CoStar forgoes ANTLR's graph-structured stack and 'may be";
  print_endline
    " less space-efficient'.  Implementing the GSS exposed a residue-frame";
  print_endline
    " accumulation in the list-stack engine that made long scans quadratic;";
  print_endline
    " with that fixed, both engines stay flat on the paper's XML element";
  print_endline
    " decision however many attributes prediction must scan, and the GSS's";
  print_endline
    " remaining contribution is physical sharing of stack structure)";
  let g =
    match
      Costar_ebnf.Parse.grammar_of_string ~start:"element"
        {|
          element : '<' NAME attr* '>' | '<' NAME attr* '/>' ;
          attr    : NAME '=' STRING ;
        |}
    with
    | Ok g -> g
    | Error msg -> failwith msg
  in
  let x =
    match Grammar.nonterminal_of_name g "element" with
    | Some x -> x
    | None -> assert false
  in
  let anl = Analysis.make g in
  Printf.printf "%8s %14s %14s %12s %12s %10s
" "attrs" "list-SLL(us)"
    "GSS(us)" "list states" "GSS states" "GSS peak";
  List.iter
    (fun n_attrs ->
      let w =
        Grammar.tokens g
          ([ "<"; "NAME" ]
          @ List.concat (List.init n_attrs (fun _ -> [ "NAME"; "="; "STRING" ]))
          @ [ "/>" ])
      in
      let list_t, _ =
        time_trials ~trials:cfg.trials (fun () ->
            Costar_core.Sll.predict g anl
              (Costar_core.Cache.create anl)
              x w)
      in
      (* Count states of a single cold run. *)
      let cache, _ =
        Costar_core.Sll.predict g anl (Costar_core.Cache.create anl) x w
      in
      let e = Costar_gss.Gss.create g in
      let gss_t, _ =
        time_trials ~trials:cfg.trials (fun () ->
            Costar_gss.Gss.reset e;
            Costar_gss.Gss.predict e x w)
      in
      Costar_gss.Gss.reset e;
      ignore (Costar_gss.Gss.predict e x w);
      let _, gss_states, gss_peak = Costar_gss.Gss.stats e in
      Printf.printf "%8d %14.2f %14.2f %12d %12d %10d
" n_attrs
        (list_t *. 1e6) (gss_t *. 1e6)
        (Costar_core.Cache.num_states cache)
        gss_states gss_peak)
    [ 2; 8; 32; 128; 512 ];
  (* Sanity on a real corpus: verdict-identical engines (also covered by the
     test suite); report node sharing on MiniPython. *)
  let { lang; files } =
    List.find (fun c -> c.lang.Lang.name = "minipy") corpora
  in
  let mg = Lang.grammar lang in
  let e = Costar_gss.Gss.create mg in
  let f = List.nth files (List.length files / 2) in
  List.iter
    (fun x ->
      if List.length (Grammar.prods_of mg x) > 1 then
        ignore (Costar_gss.Gss.predict e x f.toks))
    (List.init (Grammar.num_nonterminals mg) Fun.id);
  let nodes, states, peak = Costar_gss.Gss.stats e in
  Printf.printf
    "minipy (all decisions on one mid-size file): %d shared stack nodes, %d DFA states, peak %d configs/state
"
    nodes states peak;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E10 (supplementary): prediction lookahead statistics                *)
(* ------------------------------------------------------------------ *)

let lookahead cfg corpora =
  ignore cfg;
  print_endline "== E10 (supplementary): prediction lookahead statistics ==";
  print_endline
    "(the empirical basis of Section 2's efficiency claim: adaptive decisions";
  print_endline " almost always resolve within one or two tokens of lookahead)";
  Printf.printf "%-10s %10s %12s %12s %10s %12s
" "Benchmark" "tokens"
    "decisions" "la tokens" "avg la" "LL calls";
  List.iter
    (fun { lang; files } ->
      let p = P.make (Lang.grammar lang) in
      Costar_core.Instr.reset ();
      Costar_core.Instr.enabled := true;
      let total_tokens =
        List.fold_left
          (fun acc f ->
            ignore (P.run p f.toks);
            acc + f.n_toks)
          0 files
      in
      Costar_core.Instr.enabled := false;
      let sll_calls, sll_tokens, ll_calls, _ = Costar_core.Instr.totals () in
      Printf.printf "%-10s %10d %12d %12d %10.2f %12d
" lang.Lang.name
        total_tokens sll_calls sll_tokens
        (float_of_int sll_tokens /. float_of_int (max 1 sll_calls))
        ll_calls)
    corpora;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E12: offline DFA precompilation (the tentpole of the static        *)
(* prediction analyzer): analyze once, serialize the prediction-DFA   *)
(* cache, and start parsing from it instead of from an empty cache.   *)
(* ------------------------------------------------------------------ *)

let precache cfg corpora =
  print_endline
    "== E12: offline DFA precompilation (analyze once, parse warm) ==";
  print_endline
    "(the static analyzer explores each decision's SLL closure offline; the";
  print_endline
    " DFA states it interns are exactly the runtime's cache entries, so a";
  print_endline
    " deserialized analysis cache removes first-parse cold misses)";
  Printf.printf "%-10s %11s %9s %16s %16s %12s %12s %8s\n" "Benchmark"
    "analyze(ms)" "file(KB)" "cold miss(s/t)" "warm miss(s/t)" "cold(ms)"
    "warm(ms)" "speedup";
  List.iter
    (fun { lang; files } ->
      let g = Lang.grammar lang in
      let fp = Grammar.fingerprint g in
      let t0 = Unix.gettimeofday () in
      let r = Costar_predict_analysis.Analyze.analyze g in
      let analyze_t = Unix.gettimeofday () -. t0 in
      let blob =
        Costar_core.Cache.precompile ~fingerprint:fp
          r.Costar_predict_analysis.Analyze.cache
      in
      let p = P.make g in
      let anl = P.analysis p in
      let pre =
        match Costar_core.Cache.of_precompiled ~anl ~fingerprint:fp blob with
        | Ok c -> c
        | Error msg -> failwith msg
      in
      (* One pass over the whole corpus from a given starting cache; the
         number of states/transitions the parser adds on top of it is its
         DFA-cache miss count.  The cache store is mutable, so the
         before-counts must be snapshot before parsing, and each pass works
         on a private copy so timing passes still start from the intended
         cache. *)
      let parse_all cache0 =
        List.fold_left
          (fun cache f -> snd (P.run_with_cache p cache f.toks))
          cache0 files
      in
      let miss cache0 =
        let c = Costar_core.Cache.copy cache0 in
        let s0 = Costar_core.Cache.num_states c in
        let t0 = Costar_core.Cache.num_transitions c in
        let c = parse_all c in
        ( Costar_core.Cache.num_states c - s0,
          Costar_core.Cache.num_transitions c - t0 )
      in
      let cold_s, cold_t' = miss (Costar_core.Cache.create anl) in
      let warm_s, warm_t' = miss pre in
      let cold_time, _ =
        time_trials ~trials:cfg.trials (fun () ->
            parse_all (Costar_core.Cache.create anl))
      in
      let warm_time, _ =
        time_trials ~trials:cfg.trials (fun () ->
            parse_all (Costar_core.Cache.copy pre))
      in
      Printf.printf "%-10s %11.1f %9.1f %10d/%-5d %10d/%-5d %12.3f %12.3f %7.2fx\n"
        lang.Lang.name (analyze_t *. 1e3)
        (float_of_int (String.length blob) /. 1024.)
        cold_s cold_t' warm_s warm_t' (cold_time *. 1e3) (warm_time *. 1e3)
        (cold_time /. warm_time))
    corpora;
  print_endline
    "(miss s/t = DFA states/transitions the corpus parse adds beyond its";
  print_endline
    " starting cache; zero warm misses means the analyzer's offline closure";
  print_endline
    " already interned every state and transition the corpus parse needs)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E13: interned prediction hot path — cold vs warm per-token cost     *)
(* ------------------------------------------------------------------ *)

let intern_bench cfg corpora =
  print_endline
    "== E13: interned prediction hot path (hash-consed frames, dense config \
     ids, array DFA stepping) ==";
  print_endline
    "(cold = each parse starts from the static grammar cache, keeping nothing;";
  print_endline
    " warm = shared cache pre-warmed on the whole corpus; largest file per \
     language)";
  Printf.printf "%-10s %8s %10s %10s %13s %13s\n" "Benchmark" "tokens"
    "cold(ms)" "warm(ms)" "cold us/tok" "warm us/tok";
  List.iter
    (fun { lang; files } ->
      let p = P.make (Lang.grammar lang) in
      let f = List.nth files (List.length files - 1) in
      let cold_t =
        time_best ~trials:(max 7 cfg.trials) (fun () ->
            let r = P.run_cold p f.toks in
            expect_unique lang r;
            r)
      in
      let shared =
        List.fold_left
          (fun cache fl -> snd (P.run_with_cache p cache fl.toks))
          (Costar_core.Cache.create (P.analysis p))
          files
      in
      let warm_t =
        time_best ~trials:(max 7 cfg.trials) (fun () ->
            P.run_with_cache p shared f.toks)
      in
      let us_per_tok t = t /. float_of_int (max 1 f.n_toks) *. 1e6 in
      Printf.printf "%-10s %8d %10.3f %10.3f %13.3f %13.3f\n" lang.Lang.name
        f.n_toks (cold_t *. 1e3) (warm_t *. 1e3) (us_per_tok cold_t)
        (us_per_tok warm_t);
      Bench_json.record ~bench:"intern"
        (lang.Lang.name ^ ".cold_us_per_tok") (us_per_tok cold_t);
      Bench_json.record ~bench:"intern"
        (lang.Lang.name ^ ".warm_us_per_tok") (us_per_tok warm_t);
      (* One instrumented warm parse: with the DFA fully learned, the hot
         loop should be all transition hits and no closure work. *)
      Costar_core.Instr.reset ();
      Costar_core.Instr.enabled := true;
      ignore (P.run_with_cache p shared f.toks);
      Costar_core.Instr.enabled := false;
      let c = Costar_core.Instr.cache_totals () in
      Printf.printf
        "           warm cache: trans %d hits / %d misses; closure memo %d \
         hits / %d misses; %d state interns\n"
        c.Costar_core.Instr.trans_hits c.Costar_core.Instr.trans_misses
        c.Costar_core.Instr.closure_hits c.Costar_core.Instr.closure_misses
        c.Costar_core.Instr.state_interns)
    corpora;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E14: zero-copy token pipeline — end-to-end lex+parse throughput     *)
(* ------------------------------------------------------------------ *)

let pipeline_bench cfg corpora =
  print_endline
    "== E14: zero-copy token pipeline (equivalence-classed DFA, \
     struct-of-arrays buffer, array cursor) ==";
  print_endline
    "(end-to-end source-to-tree: tokenize + parse per sample, warm shared \
     prediction cache;";
  print_endline
    " list = legacy Token.t-list pipeline, buf = compiled scanner into the \
     token buffer;";
  print_endline " min over samples, largest file per language)";
  Printf.printf "%-10s %9s %8s %10s %10s %9s %9s %8s\n" "Benchmark" "bytes"
    "tokens" "list(ms)" "buf(ms)" "listMB/s" "bufMB/s" "speedup";
  List.iter
    (fun { lang; files } ->
      let p = P.make (Lang.grammar lang) in
      let f = List.nth files (List.length files - 1) in
      (* Warm the shared prediction cache on the whole corpus, so the
         measured region is the lex+parse hot path, not cache learning. *)
      let shared =
        List.fold_left
          (fun cache fl -> snd (P.run_with_cache p cache fl.toks))
          (Costar_core.Cache.create (P.analysis p))
          files
      in
      let trials = max 7 cfg.trials in
      let list_t =
        time_best ~trials (fun () ->
            let toks = Lang.tokenize_exn lang f.src in
            fst (P.run_with_cache p shared toks))
      in
      let buf_t =
        time_best ~trials (fun () ->
            let buf = Lang.tokenize_buf_exn lang f.src in
            fst (P.run_with_cache_word p shared (Word.of_buf buf)))
      in
      let mb_s t = float_of_int f.bytes /. t /. 1e6 in
      Printf.printf "%-10s %9d %8d %10.3f %10.3f %9.1f %9.1f %7.2fx\n"
        lang.Lang.name f.bytes f.n_toks (list_t *. 1e3) (buf_t *. 1e3)
        (mb_s list_t) (mb_s buf_t) (list_t /. buf_t);
      Bench_json.record ~bench:"pipeline"
        (lang.Lang.name ^ ".list_mb_s") (mb_s list_t);
      Bench_json.record ~bench:"pipeline"
        (lang.Lang.name ^ ".buf_mb_s") (mb_s buf_t);
      Bench_json.record ~bench:"pipeline"
        (lang.Lang.name ^ ".buf_speedup") (list_t /. buf_t);
      (* Lex-only split, plus the buffer scan's steady-state allocation. *)
      let lex_list_t =
        time_best ~trials (fun () -> Lang.tokenize_exn lang f.src)
      in
      let lex_buf_t =
        time_best ~trials (fun () -> Lang.tokenize_buf_exn lang f.src)
      in
      let reps = 5 in
      let m0 = Gc.minor_words () in
      for _ = 1 to reps do
        ignore (Lang.tokenize_buf_exn lang f.src)
      done;
      let minor_per_tok =
        (Gc.minor_words () -. m0) /. float_of_int (reps * max 1 f.n_toks)
      in
      Printf.printf
        "           lex only: list %.2f Mtok/s, buf %.2f Mtok/s (%.2fx); \
         buf steady-state %.3f minor words/token\n"
        (float_of_int f.n_toks /. lex_list_t /. 1e6)
        (float_of_int f.n_toks /. lex_buf_t /. 1e6)
        (lex_list_t /. lex_buf_t) minor_per_tok;
      Bench_json.record ~bench:"pipeline"
        (lang.Lang.name ^ ".buf_minor_words_per_tok") minor_per_tok)
    corpora;
  print_newline ()

(* A dedicated, larger corpus for the parallel experiments (E15/E16):
   scaling is only measurable when per-file parse work dominates the fixed
   per-worker costs (domain spawn or fork, snapshot freeze, and OCaml 5's
   cross-domain minor-GC synchronization), so these use files an order of
   magnitude bigger than the fig9 sweep. *)
let batch_corpora cfg =
  let n = if cfg.quick then 12 else 24 in
  let h x = if cfg.quick then x / 2 else x in
  [
    build_corpus Json.lang ~n ~lo:2000 ~hi:(h 40000);
    build_corpus Xml.lang ~n ~lo:2000 ~hi:(h 20000);
    build_corpus Dot.lang ~n ~lo:2000 ~hi:(h 12000);
    build_corpus Minipy.lang ~n:(min n 16) ~lo:1000 ~hi:(h 6000);
  ]

(* ------------------------------------------------------------------ *)
(* E16: GC-free data plane — prefork processes over an mmapped image   *)
(* ------------------------------------------------------------------ *)

let prefork_bench cfg =
  (* Unix.fork is only legal while no other domain has ever been spawned
     in this process, so main () runs E16 before E15's run_batch calls,
     and inside E16 every fork-based timing completes (pass 1, all
     languages) before the Domain-based comparison column (pass 2). *)
  let corpora = batch_corpora cfg in
  print_endline
    "== E16: GC-free data plane (prefork worker processes over an mmapped \
     v3 cache image) ==";
  print_endline
    "(corpus family of E15; prediction DFA learned once, frozen to a flat \
     int32-LE image, served read-only";
  print_endline
    " via mmap; seq = warm sequential run_word loop, Np = run_prefork over \
     N forked workers sharing the";
  print_endline
    " mapping; min over samples; per-language allocation fences below \
     each row)";
  Printf.printf "%-10s %6s %7s %9s %9s %9s %9s %9s %8s\n" "Benchmark"
    "files" "MB" "seq(ms)" "1p(ms)" "2p(ms)" "4p(ms)" "MB/s@4p" "x@4p";
  let worker_counts = [ 1; 2; 4 ] in
  let json_speedup = ref nan and json_words = ref nan in
  (* Pass 1 (fork-only): sequential baseline, prefork scaling over the
     mmapped image, and Gc.minor_words allocation fences. *)
  let pass2 =
    List.map
      (fun { lang; files } ->
        let inputs = Array.of_list (List.map (fun f -> f.src) files) in
        let bytes = List.fold_left (fun a f -> a + f.bytes) 0 files in
        let g = Lang.grammar lang in
        let tokenize s = Result.map Word.of_buf (Lang.tokenize_buf lang s) in
        (* Learn the whole corpus once, freeze the DFA to a flat image,
           and serve everything below from the read-only mapping. *)
        let learner = P.make g in
        Array.iter
          (fun src ->
            match tokenize src with
            | Ok w -> ignore (P.run_word learner w)
            | Error msg -> failwith msg)
          inputs;
        let img = Filename.temp_file "costar_e16_" ".img" in
        Costar_core.Cache.save_image ~fingerprint:(Grammar.fingerprint g)
          (P.base_cache learner) img;
        let p = P.make g in
        (match
           Costar_core.Cache.load_image ~anl:(P.analysis p)
             ~fingerprint:(Grammar.fingerprint g) img
         with
        | Ok c -> P.set_base_cache p c
        | Error e -> failwith (Costar_core.Cache.image_error_to_string e));
        let trials = max 5 cfg.trials in
        let seq_t =
          time_best ~trials (fun () ->
              Array.iter
                (fun src ->
                  match tokenize src with
                  | Ok w -> ignore (P.run_word p w)
                  | Error msg -> failwith msg)
                inputs)
        in
        let pre_ts =
          List.map
            (fun w ->
              ( w,
                time_best ~trials (fun () ->
                    ignore (Batch.run_prefork ~workers:w p ~tokenize inputs))
              ))
            worker_counts
        in
        let t_at w = List.assoc w pre_ts in
        let speedup4 = seq_t /. t_at 4 in
        if lang.Lang.name = "json" then json_speedup := speedup4;
        Printf.printf
          "%-10s %6d %7.2f %9.2f %9.2f %9.2f %9.2f %9.1f %7.2fx\n"
          lang.Lang.name (Array.length inputs)
          (float_of_int bytes /. 1e6)
          (seq_t *. 1e3) (t_at 1 *. 1e3) (t_at 2 *. 1e3) (t_at 4 *. 1e3)
          (float_of_int bytes /. t_at 4 /. 1e6)
          speedup4;
        Bench_json.record ~bench:"E16" (lang.Lang.name ^ ".seq_ms")
          (seq_t *. 1e3);
        List.iter
          (fun w ->
            Bench_json.record ~bench:"E16"
              (Printf.sprintf "%s.speedup_%dp" lang.Lang.name w)
              (seq_t /. t_at w))
          worker_counts;
        (* Allocation fences, min over samples.  The warm data plane (DFA
           scan into a cleared off-heap buffer) must allocate nothing per
           token; warm end-to-end additionally builds the parse tree, a
           fixed floor of one Token and one Leaf per consumed token, so it
           is gated as a budget rather than at zero. *)
        let f = List.nth files (List.length files - 1) in
        let min_words reps fn =
          let best = ref infinity in
          for _ = 1 to trials do
            let m0 = Gc.minor_words () in
            for _ = 1 to reps do
              fn ()
            done;
            let w = (Gc.minor_words () -. m0) /. float_of_int reps in
            if w < !best then best := w
          done;
          !best
        in
        let e2e_words =
          min_words 3 (fun () ->
              match tokenize f.src with
              | Ok w -> ignore (P.run_word p w)
              | Error msg -> failwith msg)
          /. float_of_int (max 1 f.n_toks)
        in
        let scan_words =
          match Lang.scanner lang with
          | None -> nan
          | Some sc -> (
            match Costar_lex.Scanner.compile sc g with
            | Error msg -> failwith msg
            | Ok compiled ->
              let buf = Token_buf.create_for_input f.src in
              Costar_lex.Scanner.scan_into compiled buf f.src;
              let n = max 1 (Token_buf.length buf) in
              min_words 3 (fun () ->
                  Token_buf.clear buf;
                  Costar_lex.Scanner.scan_into compiled buf f.src)
              /. float_of_int n)
        in
        if Float.is_nan scan_words then
          Printf.printf
            "           alloc: end-to-end %.2f minor words/token (tree \
             floor; scanner not a plain DFA)\n"
            e2e_words
        else begin
          Printf.printf
            "           alloc: scan %.3f minor words/token (data plane), \
             end-to-end %.2f minor words/token (tree floor)\n"
            scan_words e2e_words;
          Bench_json.record ~bench:"E16"
            (lang.Lang.name ^ ".scan_minor_words_per_tok")
            scan_words
        end;
        if lang.Lang.name = "json" then json_words := e2e_words;
        Bench_json.record ~bench:"E16"
          (lang.Lang.name ^ ".e2e_minor_words_per_tok")
          e2e_words;
        Sys.remove img;
        (lang, p, tokenize, inputs, seq_t))
      corpora
  in
  (* Pass 2 (domains): the head-to-head comparison, after every fork above
     has completed. *)
  List.iter
    (fun (lang, p, tokenize, inputs, seq_t) ->
      let trials = max 5 cfg.trials in
      let dom_t =
        time_best ~trials (fun () ->
            ignore (Batch.run_batch ~domains:4 p ~tokenize inputs))
      in
      Printf.printf
        "%-10s 4-domain head-to-head: %.2f ms (%.2fx vs seq; prefork x@4p \
         above)\n"
        lang.Lang.name (dom_t *. 1e3) (seq_t /. dom_t);
      Bench_json.record ~bench:"E16"
        (lang.Lang.name ^ ".speedup_4d") (seq_t /. dom_t))
    pass2;
  (* Stable machine-readable lines for the CI gates. *)
  Printf.printf "E16-gate json 4-worker prefork speedup: %.2fx\n"
    !json_speedup;
  Printf.printf "E16-gate json warm minor words per token: %.2f\n"
    !json_words;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E15: multicore batch parsing — domains vs sequential throughput     *)
(* ------------------------------------------------------------------ *)

let batch_bench cfg =
  let corpora = batch_corpora cfg in
  print_endline
    "== E15: multicore batch parsing (frozen DFA snapshot + per-domain \
     overlays) ==";
  print_endline
    "(whole corpus tokenized+parsed per sample, warm shared prediction \
     cache; min over samples;";
  Printf.printf
    " seq = sequential run_buf loop, Nd = run_batch over N domains; host \
     reports %d recommended domain(s))\n"
    (Domain.recommended_domain_count ());
  let domain_counts = [ 1; 2; 4; 8 ] in
  Printf.printf "%-10s %6s %7s %9s %9s %9s %9s %9s %9s %9s\n" "Benchmark"
    "files" "MB" "seq(ms)" "1d(ms)" "2d(ms)" "4d(ms)" "8d(ms)" "MB/s@4"
    "x@4";
  let json_speedup = ref nan in
  List.iter
    (fun { lang; files } ->
      let inputs = Array.of_list (List.map (fun f -> f.src) files) in
      let bytes = List.fold_left (fun a f -> a + f.bytes) 0 files in
      let p = P.make (Lang.grammar lang) in
      let tokenize s = Result.map Word.of_buf (Lang.tokenize_buf lang s) in
      (* Saturate the shared cache on the whole corpus first, so every
         configuration measures the same warm steady state and absorb
         between samples is a no-op. *)
      Array.iter
        (fun src ->
          match tokenize src with
          | Ok w -> ignore (P.run_word p w)
          | Error msg -> failwith msg)
        inputs;
      let trials = max 5 cfg.trials in
      let seq_t =
        time_best ~trials (fun () ->
            Array.iter
              (fun src ->
                match tokenize src with
                | Ok w -> ignore (P.run_word p w)
                | Error msg -> failwith msg)
              inputs)
      in
      let par_ts =
        List.map
          (fun d ->
            ( d,
              time_best ~trials (fun () ->
                  ignore (Batch.run_batch ~domains:d p ~tokenize inputs)) ))
          domain_counts
      in
      let t_at d = List.assoc d par_ts in
      let speedup4 = seq_t /. t_at 4 in
      if lang.Lang.name = "json" then json_speedup := speedup4;
      Printf.printf
        "%-10s %6d %7.2f %9.2f %9.2f %9.2f %9.2f %9.2f %9.1f %8.2fx\n"
        lang.Lang.name (Array.length inputs)
        (float_of_int bytes /. 1e6)
        (seq_t *. 1e3)
        (t_at 1 *. 1e3)
        (t_at 2 *. 1e3)
        (t_at 4 *. 1e3)
        (t_at 8 *. 1e3)
        (float_of_int bytes /. t_at 4 /. 1e6)
        speedup4;
      Bench_json.record ~bench:"batch"
        (lang.Lang.name ^ ".seq_ms") (seq_t *. 1e3);
      List.iter
        (fun d ->
          Bench_json.record ~bench:"batch"
            (Printf.sprintf "%s.speedup_%dd" lang.Lang.name d)
            (seq_t /. t_at d))
        domain_counts;
      Bench_json.record ~bench:"batch"
        (lang.Lang.name ^ ".mb_s_4d")
        (float_of_int bytes /. t_at 4 /. 1e6))
    corpora;
  (* Stable machine-readable line for the CI throughput gate. *)
  Printf.printf "E15-gate json 4-domain speedup: %.2fx\n" !json_speedup;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (one Test.make per experiment)            *)
(* ------------------------------------------------------------------ *)

let bechamel_run corpora =
  let open Bechamel in
  let open Toolkit in
  print_endline "== Bechamel micro-benchmarks (one per experiment) ==";
  let mid { lang; files } = (lang, List.nth files (List.length files / 2)) in
  let json = List.find (fun c -> c.lang.Lang.name = "json") corpora in
  let minipy = List.find (fun c -> c.lang.Lang.name = "minipy") corpora in
  let tests =
    (* fig9: CoStar parse per language *)
    List.map
      (fun c ->
        let lang, f = mid c in
        let p = P.make (Lang.grammar lang) in
        Test.make
          ~name:(Printf.sprintf "fig9/costar-%s" lang.Lang.name)
          (Staged.stage (fun () -> ignore (P.run p f.toks))))
      corpora
    @ (* fig10: turbo counterpart *)
    List.map
      (fun c ->
        let lang, f = mid c in
        let turbo = Costar_turbo.Turbo.create (Lang.grammar lang) in
        Test.make
          ~name:(Printf.sprintf "fig10/turbo-%s" lang.Lang.name)
          (Staged.stage (fun () ->
               Costar_turbo.Turbo.reset_cache turbo;
               ignore (Costar_turbo.Turbo.parse turbo f.toks))))
      corpora
    @
    let lang, f = mid minipy in
    let turbo_warm = Costar_turbo.Turbo.create (Lang.grammar lang) in
    ignore (Costar_turbo.Turbo.parse turbo_warm f.toks);
    let jlang, jf = mid json in
    let jp = P.make (Lang.grammar jlang) in
    let jeg = Costar_extracted.Extracted.of_grammar (Lang.grammar jlang) in
    [
      (* fig11: warm-cache parse *)
      Test.make ~name:"fig11/turbo-minipy-warm"
        (Staged.stage (fun () ->
             ignore (Costar_turbo.Turbo.parse turbo_warm f.toks)));
      (* fig8: the grammar-statistics computation itself *)
      Test.make ~name:"fig8/stats-json"
        (Staged.stage (fun () ->
             let g = Lang.grammar jlang in
             ignore
               ( Grammar.num_terminals g,
                 Grammar.num_nonterminals g,
                 Grammar.num_productions g )));
      (* ll1: conflict computation on XML *)
      Test.make ~name:"ll1/conflicts-xml"
        (Staged.stage
           (let xg = Lang.grammar Xml.lang in
            fun () -> ignore (Costar_ll1.Ll1.conflicts xg)));
      (* ablation: extraction-style parse *)
      Test.make ~name:"ablation/extracted-json"
        (Staged.stage (fun () ->
             ignore
               (Costar_extracted.Extracted.parse_tokens jeg
                  (Lang.grammar jlang) jf.toks)));
      (* earley baseline *)
      Test.make ~name:"earley/recognize-json"
        (Staged.stage (fun () ->
             ignore
               (Costar_earley.Recognizer.accepts (Lang.grammar jlang) jf.toks)));
      Test.make ~name:"fig9/costar-json-warmcache"
        (Staged.stage
           (let cache =
              snd
                (P.run_with_cache jp
                   (Costar_core.Cache.create (P.analysis jp))
                   jf.toks)
            in
            fun () -> ignore (P.run_with_cache jp cache jf.toks)));
    ]
  in
  let grouped = Test.make_grouped ~name:"costar" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg_b =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg_b instances grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, ols_result) ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Printf.printf "%-34s %12.1f ns/run\n" name est
      | _ -> Printf.printf "%-34s (no estimate)\n" name)
    (List.sort compare rows);
  print_newline ()

(* ------------------------------------------------------------------ *)

let () =
  (* A larger minor heap keeps GC promotion noise out of the large-file
     data points (the parser allocates trees and persistent cache nodes). *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 4 * 1024 * 1024 };
  let cfg = parse_args () in
  Bench_json.dir := cfg.json_dir;
  let corpora = corpora cfg in
  if wants cfg "fig8" then fig8 corpora;
  if wants cfg "fig9" then fig9 cfg corpora;
  if wants cfg "fig10" then fig10 cfg corpora;
  if wants cfg "fig11" then fig11 cfg corpora;
  if wants cfg "ll1" then ll1_table corpora;
  if wants cfg "ablation" then ablation cfg corpora;
  if wants cfg "earley" then earley cfg corpora;
  if wants cfg "lookahead" then lookahead cfg corpora;
  if wants cfg "gss" then gss_ablation cfg corpora;
  if wants cfg "precache" then precache cfg corpora;
  if wants cfg "intern" then intern_bench cfg corpora;
  if wants cfg "pipeline" then pipeline_bench cfg corpora;
  (* E16 forks worker processes, which OCaml 5 forbids once any domain has
     been spawned — so it must run before E15's run_batch. *)
  if wants cfg "e16" then prefork_bench cfg;
  if wants cfg "batch" then batch_bench cfg;
  if cfg.bechamel then bechamel_run corpora;
  Bench_json.flush ();
  print_endline "done."
