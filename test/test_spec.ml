(* Lexer-specification file tests: the textual rule format that, together
   with the EBNF grammar format, defines a language entirely in text. *)

open Costar_lex

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let calc_spec =
  {|
    // calculator tokens
    NUM  : "[0-9]+(\.[0-9]+)?" ;
    '+'  : "\+" ;
    '*'  : "\*" ;
    '('  : "\(" ;
    ')'  : "\)" ;
    skip WS : "[ \t\n]+" ;
  |}

let test_scanner_from_spec () =
  match Spec.scanner_of_string calc_spec with
  | Error msg -> Alcotest.fail msg
  | Ok sc -> (
    match Scanner.scan sc "1 + 2.5 * (3)" with
    | Ok raws ->
      Alcotest.(check (list string))
        "kinds"
        [ "NUM"; "+"; "NUM"; "*"; "("; "NUM"; ")" ]
        (List.map (fun r -> r.Scanner.kind) raws)
    | Error e -> Alcotest.failf "scan failed: %a" Scanner.pp_error e)

let test_skip_rules () =
  match Spec.rules_of_string calc_spec with
  | Error msg -> Alcotest.fail msg
  | Ok rules ->
    check_int "six rules" 6 (List.length rules);
    let skips =
      List.filter (fun r -> r.Scanner.action = Scanner.Skip) rules
    in
    check_int "one skip" 1 (List.length skips);
    Alcotest.(check string) "WS" "WS" (List.hd skips).Scanner.name

let test_end_to_end_with_grammar () =
  let g =
    match
      Costar_ebnf.Parse.grammar_of_string
        "expr : term ('+' term)* ; term : NUM | '(' expr ')' ;"
    with
    | Ok g -> g
    | Error msg -> Alcotest.fail msg
  in
  match Spec.scanner_of_string calc_spec with
  | Error msg -> Alcotest.fail msg
  | Ok sc -> (
    match Scanner.tokenize sc g "(1 + 2) + 3" with
    | Error e -> Alcotest.failf "tokenize: %a" Scanner.pp_error e
    | Ok toks -> (
      match Costar_core.Parser.parse g toks with
      | Costar_core.Parser.Unique _ -> ()
      | r ->
        Alcotest.failf "expected Unique, got %a" (Costar_core.Parser.pp_result g) r))

let test_errors () =
  let bad s = match Spec.rules_of_string s with Error _ -> true | Ok _ -> false in
  check "missing colon" true (bad "NUM \"[0-9]+\" ;");
  check "missing semi" true (bad "NUM : \"[0-9]+\"");
  check "missing pattern" true (bad "NUM : ;");
  check "bad regex" true (bad "NUM : \"[\" ;");
  check "nullable pattern" true
    (match Spec.scanner_of_string "X : \"a*\" ;" with Error _ -> true | Ok _ -> false);
  check "empty spec" true (bad "  // nothing\n");
  check "stray char" true (bad "NUM := \"[0-9]\" ;")

let test_empty_matching_rule () =
  (* A rule whose regex accepts the empty string would make the scanner
     livelock (zero-width matches forever).  The spec layer still parses it
     — with spans, so lint can point at the offending pattern — but scanner
     construction refuses to run it. *)
  let src = "A : \"a+\" ;\nB : \"b*\" ;" in
  (match Spec.srules_of_string src with
  | Error msg -> Alcotest.failf "spec should parse: %s" msg
  | Ok srules ->
    check_int "both rules kept" 2 (List.length srules);
    let b = List.nth srules 1 in
    Alcotest.(check string) "name" "B" b.Spec.rule.Scanner.name;
    check "pattern nullable" true (Regex.nullable b.Spec.rule.Scanner.re);
    check_int "pattern span line" 2
      b.Spec.pattern_span.Costar_grammar.Loc.start_line);
  (* scanner_of_string surfaces the same problem as a hard error naming the
     rule, and never yields a scanner that could loop. *)
  match Spec.scanner_of_string src with
  | Ok _ -> Alcotest.fail "nullable rule must not build a scanner"
  | Error msg ->
    check "error names the rule" true
      (let n = String.length "B" in
       let rec at i =
         i + n <= String.length msg && (String.sub msg i n = "B" || at (i + 1))
       in
       at 0)

let test_quoted_names_and_escapes () =
  match Spec.rules_of_string {| 'if' : "if" ; NL : "\n" ; Q : "\"" ; |} with
  | Error msg -> Alcotest.fail msg
  | Ok [ r1; _; _ ] -> Alcotest.(check string) "quoted name" "if" r1.Scanner.name
  | Ok _ -> Alcotest.fail "expected three rules"

let suite =
  [
    Alcotest.test_case "scanner from spec" `Quick test_scanner_from_spec;
    Alcotest.test_case "skip rules" `Quick test_skip_rules;
    Alcotest.test_case "end-to-end with grammar" `Quick
      test_end_to_end_with_grammar;
    Alcotest.test_case "spec errors" `Quick test_errors;
    Alcotest.test_case "empty-matching rule" `Quick test_empty_matching_rule;
    Alcotest.test_case "quoted names and escapes" `Quick
      test_quoted_names_and_escapes;
  ]

let () = Alcotest.run "costar_spec" [ ("lexer-spec", suite) ]
