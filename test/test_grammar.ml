(* Grammar substrate tests: construction, analyses, left-recursion
   detection, derivation checker, trees. *)

open Costar_grammar
open Symbols

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let g1 =
  (* S -> A c | A d ; A -> a A | b *)
  Grammar.define ~start:"S"
    [
      ("S", [ [ Grammar.n "A"; Grammar.t "c" ]; [ Grammar.n "A"; Grammar.t "d" ] ]);
      ("A", [ [ Grammar.t "a"; Grammar.n "A" ]; [ Grammar.t "b" ] ]);
    ]

let nt g name =
  match Grammar.nonterminal_of_name g name with
  | Some x -> x
  | None -> Alcotest.failf "unknown nonterminal %s" name

let tm g name =
  match Grammar.terminal_of_name g name with
  | Some a -> a
  | None -> Alcotest.failf "unknown terminal %s" name

let test_sizes () =
  check_int "nonterminals" 2 (Grammar.num_nonterminals g1);
  check_int "terminals" 4 (Grammar.num_terminals g1);
  check_int "productions" 4 (Grammar.num_productions g1);
  check_int "max rhs len" 2 (Grammar.max_rhs_len g1)

let test_prods_of () =
  check_int "S alternatives" 2 (List.length (Grammar.prods_of g1 (nt g1 "S")));
  check_int "A alternatives" 2 (List.length (Grammar.prods_of g1 (nt g1 "A")));
  (* grammar order is preserved *)
  match Grammar.rhss_of g1 (nt g1 "S") with
  | [ [ NT _; T c ]; [ NT _; T d ] ] ->
    check "first alt is c" true (c = tm g1 "c");
    check "second alt is d" true (d = tm g1 "d")
  | _ -> Alcotest.fail "unexpected rhss for S"

let test_nullable_first_follow () =
  let a = Analysis.make g1 in
  check "S not nullable" false (Analysis.nullable a (nt g1 "S"));
  check "A not nullable" false (Analysis.nullable a (nt g1 "A"));
  let first_s = Analysis.first a (nt g1 "S") in
  check "first(S) = {a,b}" true
    (Int_set.equal first_s (Int_set.of_list [ tm g1 "a"; tm g1 "b" ]));
  let follow_a = Analysis.follow a (nt g1 "A") in
  check "follow(A) = {c,d}" true
    (Int_set.equal follow_a (Int_set.of_list [ tm g1 "c"; tm g1 "d" ]));
  check "end in follow(S)" true (Analysis.follow_end a (nt g1 "S"));
  check "end not in follow(A)" false (Analysis.follow_end a (nt g1 "A"))

let test_nullable_chain () =
  let g =
    Grammar.define ~start:"S"
      [
        ("S", [ [ Grammar.n "A"; Grammar.n "B" ] ]);
        ("A", [ []; [ Grammar.t "a" ] ]);
        ("B", [ [ Grammar.n "A" ] ]);
      ]
  in
  let a = Analysis.make g in
  check "A nullable" true (Analysis.nullable a (nt g "A"));
  check "B nullable" true (Analysis.nullable a (nt g "B"));
  check "S nullable" true (Analysis.nullable a (nt g "S"));
  (* endable: B ends S; A ends via B, and also via S -> A B with B nullable *)
  check "B endable" true (Analysis.endable a (nt g "B"));
  check "A endable" true (Analysis.endable a (nt g "A"))

let test_callers () =
  let a = Analysis.make g1 in
  let callers_a = Analysis.callers a (nt g1 "A") in
  (* A occurs in S -> A c, S -> A d, A -> a A *)
  check_int "A occurrences" 3 (List.length callers_a)

let test_reachable_productive () =
  let g =
    Grammar.define ~allow_undefined:true ~start:"S"
      [
        ("S", [ [ Grammar.t "x" ] ]);
        ("Dead", [ [ Grammar.t "y" ] ]);
        ("Loop", [ [ Grammar.n "Loop" ] ]);
      ]
  in
  let a = Analysis.make g in
  check "S reachable" true (Analysis.reachable a (nt g "S"));
  check "Dead unreachable" false (Analysis.reachable a (nt g "Dead"));
  check "S productive" true (Analysis.productive a (nt g "S"));
  check "Loop non-productive" false (Analysis.productive a (nt g "Loop"))

let test_left_recursion_direct () =
  let g =
    Grammar.define ~start:"E"
      [ ("E", [ [ Grammar.n "E"; Grammar.t "+" ]; [ Grammar.t "n" ] ]) ]
  in
  match Left_recursion.check g with
  | Error [ x ] -> check "E is left-recursive" true (x = nt g "E")
  | _ -> Alcotest.fail "expected left recursion on E"

let test_left_recursion_indirect_nullable () =
  (* A -> B a ; B -> C ; C -> eps | A b : A -> B -> C -> A through a
     nullable prefix (C's alternatives start with A directly). *)
  let g =
    Grammar.define ~start:"A"
      [
        ("A", [ [ Grammar.n "B"; Grammar.t "a" ] ]);
        ("B", [ [ Grammar.n "C" ] ]);
        ("C", [ []; [ Grammar.n "A"; Grammar.t "b" ] ]);
      ]
  in
  match Left_recursion.check g with
  | Error xs -> check_int "three nts on the cycle" 3 (List.length xs)
  | Ok () -> Alcotest.fail "expected left recursion"

let test_not_left_recursive () =
  check "fig2 grammar is LR-free" true (Left_recursion.check g1 = Ok ());
  (* Right recursion is fine. *)
  let g =
    Grammar.define ~start:"L"
      [ ("L", [ [ Grammar.t "x"; Grammar.n "L" ]; [] ]) ]
  in
  check "right recursion ok" true (Left_recursion.check g = Ok ())

let test_hidden_left_recursion () =
  (* S -> N S x | y ; N -> eps : nullable N hides the S-S loop. *)
  let g =
    Grammar.define ~start:"S"
      [
        ("S", [ [ Grammar.n "N"; Grammar.n "S"; Grammar.t "x" ]; [ Grammar.t "y" ] ]);
        ("N", [ [] ]);
      ]
  in
  match Left_recursion.check g with
  | Error xs -> check "S on cycle" true (List.mem (nt g "S") xs)
  | Ok () -> Alcotest.fail "expected hidden left recursion to be caught"

let test_witness_kinds () =
  let witness g name =
    let anl = Analysis.make g in
    Left_recursion.witness g anl (nt g name)
  in
  let names g xs = List.map (Grammar.nonterminal_name g) xs in
  (* Direct: one edge back to itself. *)
  let g =
    Grammar.define ~start:"E"
      [ ("E", [ [ Grammar.n "E"; Grammar.t "+" ]; [ Grammar.t "n" ] ]) ]
  in
  (match witness g "E" with
  | Some (Left_recursion.Direct, cycle) ->
    Alcotest.(check (list string)) "direct cycle" [ "E"; "E" ] (names g cycle)
  | _ -> Alcotest.fail "expected a direct witness");
  (* Indirect: shortest cycle through B found by BFS. *)
  let g =
    Grammar.define ~start:"A"
      [
        ("A", [ [ Grammar.n "B"; Grammar.t "x" ]; [ Grammar.t "z" ] ]);
        ("B", [ [ Grammar.n "A"; Grammar.t "y" ] ]);
      ]
  in
  (match witness g "A" with
  | Some (Left_recursion.Indirect, cycle) ->
    Alcotest.(check (list string)) "indirect cycle" [ "A"; "B"; "A" ]
      (names g cycle)
  | _ -> Alcotest.fail "expected an indirect witness");
  (* Hidden: the recursive reference sits behind a nullable prefix. *)
  let g =
    Grammar.define ~start:"S"
      [
        ( "S",
          [ [ Grammar.n "N"; Grammar.n "S"; Grammar.t "x" ]; [ Grammar.t "y" ] ]
        );
        ("N", [ []; [ Grammar.t "w" ] ]);
      ]
  in
  (match witness g "S" with
  | Some (Left_recursion.Hidden, cycle) ->
    Alcotest.(check (list string)) "hidden cycle" [ "S"; "S" ] (names g cycle)
  | _ -> Alcotest.fail "expected a hidden witness");
  (* No witness for a non-left-recursive nonterminal. *)
  let g =
    Grammar.define ~start:"L"
      [ ("L", [ [ Grammar.t "x"; Grammar.n "L" ]; [] ]) ]
  in
  check "right recursion has no witness" true (witness g "L" = None)

let test_tree_ops () =
  let tok name = Grammar.token g1 name name in
  let v =
    Tree.Node
      ( nt g1 "S",
        [
          Tree.Node
            ( nt g1 "A",
              [ Tree.Leaf (tok "a"); Tree.Node (nt g1 "A", [ Tree.Leaf (tok "b") ]) ]
            );
          Tree.Leaf (tok "d");
        ] )
  in
  check_int "size" 6 (Tree.size v);
  check_int "depth" 4 (Tree.depth v);
  check_int "width" 3 (Tree.width v);
  let y = Tree.yield v in
  Alcotest.(check (list string))
    "yield" [ "a"; "b"; "d" ]
    (List.map Token.lexeme y);
  check "derives" true (Derivation.recognizes_start g1 y v);
  (* Perturbed tree must fail the checker. *)
  let bad = Tree.Node (nt g1 "S", [ Tree.Leaf (tok "d") ]) in
  check "bad tree rejected" false
    (Derivation.recognizes_start g1 [ tok "d" ] bad);
  (* DOT export mentions every label *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let dot = Tree.to_dot g1 v in
  check "dot has S" true (contains dot "\"S\"")

let test_define_errors () =
  check "duplicate rule rejected" true
    (try
       ignore
         (Grammar.define ~start:"S" [ ("S", [ [] ]); ("S", [ [ Grammar.t "x" ] ]) ]);
       false
     with Invalid_argument _ -> true);
  check "undefined nonterminal rejected" true
    (try
       ignore (Grammar.define ~start:"S" [ ("S", [ [ Grammar.n "T" ] ]) ]);
       false
     with Invalid_argument _ -> true);
  check "undefined start rejected" true
    (try
       ignore (Grammar.define ~start:"Z" [ ("S", [ [] ]) ]);
       false
     with Invalid_argument _ -> true)

let test_pool () =
  let p = Pool.create () in
  let a = Pool.intern p "alpha" in
  let b = Pool.intern p "beta" in
  check_int "alpha again" a (Pool.intern p "alpha");
  check "distinct ids" true (a <> b);
  Alcotest.(check string) "name roundtrip" "beta" (Pool.name p b);
  check_int "size" 2 (Pool.size p);
  check "find missing" true (Pool.find p "gamma" = None);
  check "out of range" true
    (try
       ignore (Pool.name p 99);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "sizes" `Quick test_sizes;
    Alcotest.test_case "prods_of order" `Quick test_prods_of;
    Alcotest.test_case "nullable/first/follow" `Quick test_nullable_first_follow;
    Alcotest.test_case "nullable chain + endable" `Quick test_nullable_chain;
    Alcotest.test_case "callers map" `Quick test_callers;
    Alcotest.test_case "reachable/productive" `Quick test_reachable_productive;
    Alcotest.test_case "direct left recursion" `Quick test_left_recursion_direct;
    Alcotest.test_case "indirect left recursion" `Quick
      test_left_recursion_indirect_nullable;
    Alcotest.test_case "no false positives" `Quick test_not_left_recursive;
    Alcotest.test_case "hidden left recursion" `Quick test_hidden_left_recursion;
    Alcotest.test_case "left-recursion witnesses" `Quick test_witness_kinds;
    Alcotest.test_case "tree operations" `Quick test_tree_ops;
    Alcotest.test_case "define errors" `Quick test_define_errors;
    Alcotest.test_case "interning pool" `Quick test_pool;
  ]

let () = Alcotest.run "costar_grammar" [ ("grammar", suite) ]
