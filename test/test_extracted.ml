(* Differential tests between the interned-integer core parser and the
   independent extraction-style implementation: identical verdicts and
   identical trees, on unit cases and random grammars. *)

open Costar_grammar
module P = Costar_core.Parser
module E = Costar_extracted.Extracted

let check = Alcotest.(check bool)

(* Convert a core tree to the extracted representation for comparison. *)
let rec convert g = function
  | Tree.Leaf tok ->
    E.Leaf (Grammar.terminal_name g tok.Token.term, tok.Token.lexeme)
  | Tree.Node (x, kids) ->
    E.Node (Grammar.nonterminal_name g x, List.map (convert g) kids)
  | Tree.Error _ -> Alcotest.fail "plain engine produced an error node"

let same g core extracted =
  match core, extracted with
  | P.Unique v1, E.Unique v2 | P.Ambig v1, E.Ambig v2 -> convert g v1 = v2
  | P.Reject _, E.Reject -> true
  | P.Error _, E.Error _ -> true
  | _ -> false

let run_both g w =
  let word = Grammar.tokens g w in
  let core = P.parse g word in
  let extracted = E.parse_tokens (E.of_grammar g) g word in
  (core, extracted)

let test_unit_cases () =
  let fig2 =
    Grammar.define ~start:"S"
      [
        ("S", [ [ Grammar.n "A"; Grammar.t "c" ]; [ Grammar.n "A"; Grammar.t "d" ] ]);
        ("A", [ [ Grammar.t "a"; Grammar.n "A" ]; [ Grammar.t "b" ] ]);
      ]
  in
  List.iter
    (fun w ->
      let core, ex = run_both fig2 w in
      check (String.concat " " w) true (same fig2 core ex))
    [ [ "a"; "b"; "d" ]; [ "b"; "c" ]; [ "a"; "a" ]; []; [ "a"; "b"; "c"; "c" ] ]

let test_langs () =
  let open Costar_langs in
  List.iter
    (fun (lang : Lang.t) ->
      let g = Lang.grammar lang in
      let eg = E.of_grammar g in
      let src = Lang.generate lang ~seed:31 ~size:25 in
      let toks = Lang.tokenize_exn lang src in
      check lang.Lang.name true
        (same g (P.parse g toks) (E.parse_tokens eg g toks)))
    [ Json.lang; Xml.lang; Dot.lang ]

let prop_differential =
  QCheck.Test.make ~count:600 ~name:"extracted = core on random grammars"
    Util.arb_grammar_word (fun (g, w) ->
      match Left_recursion.check g with
      | Error _ -> true
      | Ok () ->
        let core, ex = run_both g w in
        same g core ex)

let suite =
  [
    Alcotest.test_case "unit cases" `Quick test_unit_cases;
    Alcotest.test_case "benchmark languages" `Quick test_langs;
    QCheck_alcotest.to_alcotest prop_differential;
  ]

let () = Alcotest.run "costar_extracted" [ ("extracted", suite) ]
