(* Trace-rendering and sentence-sampling tests. *)

open Costar_grammar
open Costar_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fig2 =
  Grammar.define ~start:"S"
    [
      ("S", [ [ Grammar.n "A"; Grammar.t "c" ]; [ Grammar.n "A"; Grammar.t "d" ] ]);
      ("A", [ [ Grammar.t "a"; Grammar.n "A" ]; [ Grammar.t "b" ] ]);
    ]

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_trace_fig2 () =
  let p = Parser.make fig2 in
  let lines, result = Trace.run p (Grammar.tokens fig2 [ "a"; "b"; "d" ]) in
  check_int "ten states" 10 (List.length lines);
  (match result with
  | Parser.Unique _ -> ()
  | _ -> Alcotest.fail "expected Unique");
  (* The initial state shows the start symbol and the full input. *)
  let first = List.hd lines in
  check "start symbol shown" true (contains first "[S]");
  check "input shown" true (contains first "a b d");
  (* After the second push, the visited set is {S, A} (Fig. 2's sigma_2). *)
  let s2 = List.nth lines 2 in
  check "visited {S,A}" true (contains s2 "visited: {S,A}");
  (* The final state holds the finished tree. *)
  let last = List.nth lines 9 in
  check "final tree" true (contains last "(S (A 'a' (A 'b')) 'd')")

let test_trace_reject () =
  let p = Parser.make fig2 in
  let lines, result = Trace.run p (Grammar.tokens fig2 [ "a"; "b" ]) in
  (* Prediction for S scans to end of input and finds no viable right-hand
     side, so the machine rejects in its very first configuration. *)
  check "some states" true (List.length lines >= 1);
  match result with
  | Parser.Reject _ -> ()
  | _ -> Alcotest.fail "expected Reject"

let test_sample_valid () =
  (* Every sampled sentence is accepted by the oracle. *)
  let rand = Random.State.make [| 11 |] in
  let produced = ref 0 in
  for _ = 1 to 100 do
    match Sample.tokens fig2 rand with
    | Some w ->
      incr produced;
      check "oracle accepts" true (Costar_earley.Recognizer.accepts fig2 w)
    | None -> ()
  done;
  check "produces sentences" true (!produced > 50)

let test_sample_max_len () =
  (* Sampling is total on productive grammars, and [max_len] caps the
     random exploration: once the emitted prefix reaches it, every
     remaining nonterminal finishes by its shortest derivation.  For fig2
     the pending form is always [A; c|d], so the overshoot is at most 2. *)
  let rand = Random.State.make [| 3 |] in
  let anl = Analysis.make fig2 in
  for _ = 1 to 100 do
    match Sample.sentence ~max_len:5 ~analysis:anl fig2 rand with
    | Some w -> check "max_len bounds exploration" true (List.length w <= 7)
    | None -> Alcotest.fail "sampling a productive grammar returned None"
  done

let test_sample_total_deep () =
  (* A grammar whose every sentence has 128 terminals: the old fuel-steered
     walk hit its length budget and returned None; the shortest-derivation
     fallback is total. *)
  let rules =
    ("D0", [ [ Grammar.t "x" ] ])
    :: List.init 7 (fun i ->
           let d k = "D" ^ string_of_int k in
           (d (i + 1), [ [ Grammar.n (d i); Grammar.n (d i) ] ]))
  in
  let g = Grammar.define ~start:"D7" (List.rev rules) in
  let rand = Rng.of_seed 5 in
  match Sample.sentence g rand with
  | None -> Alcotest.fail "deep productive grammar sampled None"
  | Some w -> check_int "all 128 leaves" 128 (List.length w)

let test_sample_deterministic () =
  let draw () =
    let rand = Rng.of_seed 42 in
    List.init 10 (fun _ -> Sample.sentence fig2 rand)
  in
  check "same seed, same sentences" true (draw () = draw ())

let test_sample_nonproductive () =
  let g =
    Grammar.define ~start:"S" [ ("S", [ [ Grammar.n "S"; Grammar.t "x" ] ]) ]
  in
  let rand = Random.State.make [| 1 |] in
  check "no sentence from empty language" true (Sample.sentence g rand = None)

let prop_samples_parse =
  QCheck.Test.make ~count:300 ~name:"sampled sentences parse"
    (QCheck.make
       ~print:(fun g -> Fmt.str "%a" Grammar.pp g)
       Util.gen_grammar)
    (fun g ->
      match Left_recursion.check g with
      | Error _ -> true
      | Ok () -> (
        let rand = Random.State.make [| 17 |] in
        match Sample.tokens g rand with
        | None -> true
        | Some w -> (
          match Parser.parse g w with
          | Parser.Unique _ | Parser.Ambig _ -> true
          | Parser.Reject _ | Parser.Error _ -> false)))

let suite =
  [
    Alcotest.test_case "fig2 trace" `Quick test_trace_fig2;
    Alcotest.test_case "reject trace" `Quick test_trace_reject;
    Alcotest.test_case "samples are valid" `Quick test_sample_valid;
    Alcotest.test_case "sample max_len" `Quick test_sample_max_len;
    Alcotest.test_case "sample total on deep grammars" `Quick
      test_sample_total_deep;
    Alcotest.test_case "sample deterministic by seed" `Quick
      test_sample_deterministic;
    Alcotest.test_case "non-productive grammar" `Quick test_sample_nonproductive;
    QCheck_alcotest.to_alcotest prop_samples_parse;
  ]

let () = Alcotest.run "costar_trace_sample" [ ("trace+sample", suite) ]
