(* The static prediction analyzer (lib/analysis_predict): lookahead bounds,
   conflict pairs and witnesses, ambiguity confirmation, LL-fallback
   prediction, and precompiled-cache round trips — unit tests on known
   grammars plus properties against the instrumented runtime and the Earley
   oracle on randomized grammars. *)

open Costar_grammar
open Costar_core
module A = Costar_predict_analysis.Analyze
module Count = Costar_earley.Count

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let nt g name =
  match Grammar.nonterminal_of_name g name with
  | Some x -> x
  | None -> Alcotest.failf "unknown nonterminal %s" name

let prod_ix g lhs k = List.nth (Grammar.prods_of g (nt g lhs)) k

let decision r g name =
  match A.decision_for r (nt g name) with
  | Some d -> d
  | None -> Alcotest.failf "no decision record for %s" name

(* Fig. 2: deciding S requires scanning past an arbitrarily long A. *)
let fig2 =
  Grammar.define ~start:"S"
    [
      ( "S",
        [ [ Grammar.n "A"; Grammar.t "c" ]; [ Grammar.n "A"; Grammar.t "d" ] ]
      );
      ("A", [ [ Grammar.t "a"; Grammar.n "A" ]; [ Grammar.t "b" ] ]);
    ]

let test_fig2_unbounded () =
  let r = A.analyze fig2 in
  let s = decision r fig2 "S" in
  (match s.A.lookahead with
  | A.Cyclic -> ()
  | la -> Alcotest.failf "S: expected Cyclic, got %s" (A.lookahead_to_string la));
  check "S has a witness pair" true (s.A.conflicts <> []);
  (let c = List.hd s.A.conflicts in
   check_int "pair fst" (prod_ix fig2 "S" 0) (fst c.A.alts);
   check_int "pair snd" (prod_ix fig2 "S" 1) (snd c.A.alts);
   check "no ambiguity" true (c.A.ambiguous_word = None));
  check "S never falls back to LL" false (A.ll_fallback_possible s);
  check "S exercises stable return" true s.A.uses_stable_return;
  let a = decision r fig2 "A" in
  check "A is SLL(1)" true (a.A.lookahead = A.Sll_k 1);
  check "A has no conflicts" true (a.A.conflicts = [])

let test_two_token_lookahead () =
  let g =
    Grammar.define ~start:"S"
      [
        ( "S",
          [
            [ Grammar.n "A"; Grammar.t "x" ]; [ Grammar.n "A"; Grammar.t "y" ];
          ] );
        ("A", [ [ Grammar.t "a" ] ]);
      ]
  in
  let r = A.analyze g in
  check_int "only S is a decision" 1 (List.length r.A.decisions);
  let s = decision r g "S" in
  check "S is SLL(2)" true (s.A.lookahead = A.Sll_k 2);
  check "no conflicts" true (s.A.conflicts = []);
  check "no LL fallback" false (A.ll_fallback_possible s)

let test_duplicate_alternative_ambiguous () =
  let g =
    Grammar.define ~start:"S"
      [
        ("S", [ [ Grammar.n "A" ] ]);
        ("A", [ [ Grammar.t "a" ]; [ Grammar.t "b" ]; [ Grammar.t "a" ] ]);
      ]
  in
  let r = A.analyze g in
  let a = decision r g "A" in
  check "A is ambiguous" true (a.A.lookahead = A.Ambiguous);
  let amb =
    List.filter (fun c -> c.A.ambiguous_word <> None) a.A.conflicts
  in
  check_int "one ambiguous pair" 1 (List.length amb);
  let c = List.hd amb in
  check_int "alt 0 vs alt 2 (fst)" (prod_ix g "A" 0) (fst c.A.alts);
  check_int "alt 0 vs alt 2 (snd)" (prod_ix g "A" 2) (snd c.A.alts);
  (match c.A.ambiguous_word with
  | Some w ->
    (* Independent confirmation, with a higher counting cap than the
       analyzer's oracle uses. *)
    check "Earley-confirmed" true
      (Count.count_trees_sym ~cap:3 g (nt g "A") (A.tokens_of_terms g w) >= 2)
  | None -> Alcotest.fail "expected an ambiguous word");
  check "ambiguity manifests at end of input" true (A.ll_fallback_possible a)

let test_decided_without_lookahead () =
  (* The second alternative dies in the initial closure (B derives nothing),
     so the decision is made before any token is read. *)
  let g =
    Grammar.define ~allow_undefined:true ~start:"S"
      [ ("S", [ [ Grammar.t "a" ]; [ Grammar.n "B" ] ]) ]
  in
  let r = A.analyze g in
  let s = decision r g "S" in
  check "SLL(0)" true (s.A.lookahead = A.Sll_k 0)

let test_left_recursion_reported () =
  let g =
    Grammar.define ~start:"S"
      [ ("S", [ [ Grammar.n "S"; Grammar.t "a" ]; [ Grammar.t "b" ] ]) ]
  in
  let r = A.analyze g in
  let s = decision r g "S" in
  match s.A.error with
  | Some (Types.Left_recursive x) -> check_int "on S" (nt g "S") x
  | _ -> Alcotest.fail "expected a left-recursion error"

let test_bound_reported () =
  (* Deciding S needs 4 tokens; with k = 2 the analyzer must say Beyond. *)
  let g =
    Grammar.define ~start:"S"
      [
        ( "S",
          [
            [ Grammar.t "a"; Grammar.t "a"; Grammar.t "a"; Grammar.t "x" ];
            [ Grammar.t "a"; Grammar.t "a"; Grammar.t "a"; Grammar.t "y" ];
          ] );
      ]
  in
  let r = A.analyze ~k:2 g in
  let s = decision r g "S" in
  check "Beyond 2" true (s.A.lookahead = A.Beyond 2);
  check "bound conflict recorded" true (s.A.conflicts <> []);
  let r = A.analyze ~k:8 g in
  let s = decision r g "S" in
  check "SLL(4) with enough budget" true (s.A.lookahead = A.Sll_k 4)

let test_fingerprint () =
  let g1 = fig2 in
  let g2 =
    Grammar.define ~start:"S"
      [
        ( "S",
          [ [ Grammar.n "A"; Grammar.t "c" ]; [ Grammar.n "A"; Grammar.t "d" ] ]
        );
        ("A", [ [ Grammar.t "a"; Grammar.n "A" ]; [ Grammar.t "b" ] ]);
      ]
  in
  let g3 =
    Grammar.define ~start:"S"
      [
        ( "S",
          [ [ Grammar.n "A"; Grammar.t "c" ]; [ Grammar.n "A"; Grammar.t "e" ] ]
        );
        ("A", [ [ Grammar.t "a"; Grammar.n "A" ]; [ Grammar.t "b" ] ]);
      ]
  in
  Alcotest.(check string)
    "same grammar, same fingerprint" (Grammar.fingerprint g1)
    (Grammar.fingerprint g2);
  check "different grammar, different fingerprint" false
    (String.equal (Grammar.fingerprint g1) (Grammar.fingerprint g3))

let test_precompile_roundtrip () =
  let g = fig2 in
  let anl = Analysis.make g in
  let fp = Grammar.fingerprint g in
  let r = A.analyze g in
  let s = Cache.precompile ~fingerprint:fp r.A.cache in
  (match Cache.of_precompiled ~anl ~fingerprint:fp s with
  | Ok c ->
    check_int "states survive" (Cache.num_states r.A.cache)
      (Cache.num_states c);
    check_int "transitions survive"
      (Cache.num_transitions r.A.cache)
      (Cache.num_transitions c)
  | Error e -> Alcotest.failf "roundtrip failed: %s" e);
  (match Cache.of_precompiled ~anl ~fingerprint:"0000" s with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong fingerprint accepted");
  (match Cache.of_precompiled ~anl ~fingerprint:fp "hello, world" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  let file = Filename.temp_file "costar_cache" ".dfa" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Cache.save_precompiled ~fingerprint:fp r.A.cache file;
      match Cache.load_precompiled ~anl ~fingerprint:fp file with
      | Ok c ->
        check_int "file roundtrip" (Cache.num_states r.A.cache)
          (Cache.num_states c)
      | Error e -> Alcotest.failf "file roundtrip failed: %s" e)

let test_precompiled_parse_warm () =
  let g = fig2 in
  let p = Parser.make g in
  let words =
    [
      [ "a"; "a"; "b"; "c" ]; [ "b"; "d" ]; [ "a"; "b"; "d" ]; [ "b"; "c" ];
    ]
  in
  (* The cache store is mutable, so snapshot the state count before the
     corpus pass: comparing the same object to itself afterwards would
     always yield zero misses. *)
  let run_all base =
    let before = Cache.num_states base in
    let final =
      List.fold_left
        (fun cache w ->
          snd (Parser.run_with_cache p cache (Grammar.tokens g w)))
        base words
    in
    Cache.num_states final - before
  in
  let pre = (A.analyze g).A.cache in
  let cold_misses = run_all (Cache.create (Parser.analysis p)) in
  let warm_misses = run_all (Cache.copy pre) in
  check "precompiled cache has fewer cold misses" true
    (warm_misses < cold_misses);
  (* And identical results. *)
  List.iter
    (fun w ->
      let toks = Grammar.tokens g w in
      let r_cold = Parser.run p toks in
      let r_warm, _ = Parser.run_with_cache p pre toks in
      let same =
        match r_cold, r_warm with
        | Parser.Unique t1, Parser.Unique t2 | Parser.Ambig t1, Parser.Ambig t2
          ->
          Tree.equal t1 t2
        | Parser.Reject _, Parser.Reject _ -> true
        | Parser.Error e1, Parser.Error e2 -> e1 = e2
        | _ -> false
      in
      check "warm result identical" true same)
    words

(* Properties on randomized grammars. *)

let parser_result_equal r1 r2 =
  match r1, r2 with
  | Parser.Unique t1, Parser.Unique t2 | Parser.Ambig t1, Parser.Ambig t2 ->
    Tree.equal t1 t2
  | Parser.Reject _, Parser.Reject _ -> true
  | Parser.Error e1, Parser.Error e2 -> e1 = e2
  | _ -> false

(* A decision the analyzer classifies SLL(k) with no conflicts must never
   take the LL fallback at runtime: fallback requires an SLL Ambig verdict,
   which requires a reachable pending state with two accepting predictions —
   exactly what the analyzer reports as an at-EOF conflict. *)
let prop_safe_decisions_never_fall_back =
  QCheck.Test.make ~count:80 ~name:"analyzer SLL(k)-unique => no LL fallback"
    Util.arb_grammar_word (fun (g, w) ->
      let r = A.analyze ~oracle:false g in
      let safe =
        List.filter_map
          (fun (d : A.decision) ->
            match d.A.lookahead, d.A.error with
            | A.Sll_k _, None when d.A.conflicts = [] -> Some d.A.nt
            | _ -> None)
          r.A.decisions
      in
      if safe = [] then true
      else begin
        let p = Parser.make g in
        Instr.reset ();
        Instr.enabled := true;
        ignore (Parser.run p (Grammar.tokens g w));
        Instr.enabled := false;
        let rows = Instr.report () in
        List.for_all
          (fun x ->
            not
              (List.exists
                 (fun (y, mode, _, _) -> y = x && mode = `Ll)
                 rows))
          safe
      end)

(* Every ambiguous word the analyzer reports must be confirmed ambiguous by
   the Earley derivation-counting oracle (run here with a different cap). *)
let prop_ambiguous_words_confirmed =
  QCheck.Test.make ~count:60 ~name:"analyzer ambiguity witnesses are genuine"
    (QCheck.make Util.gen_grammar ~print:(Fmt.to_to_string Grammar.pp))
    (fun g ->
      let r = A.analyze g in
      List.for_all
        (fun (d : A.decision) ->
          List.for_all
            (fun (c : A.conflict) ->
              match c.A.ambiguous_word with
              | None -> true
              | Some w ->
                Count.count_trees_sym ~cap:3 g d.A.nt (A.tokens_of_terms g w)
                >= 2)
            d.A.conflicts)
        r.A.decisions)

(* Re-analyzing on top of the already-populated cache must not change any
   verdict (the lint driver and `costar analyze --emit-cache` rely on it). *)
let prop_analysis_cache_stable =
  QCheck.Test.make ~count:60 ~name:"analysis is stable under cache reuse"
    (QCheck.make Util.gen_grammar ~print:(Fmt.to_to_string Grammar.pp))
    (fun g ->
      let r1 = A.analyze ~oracle:false g in
      let r2 = A.analyze ~oracle:false ~cache:r1.A.cache g in
      List.length r1.A.decisions = List.length r2.A.decisions
      && List.for_all2
           (fun (d1 : A.decision) (d2 : A.decision) ->
             d1.A.nt = d2.A.nt
             && d1.A.lookahead = d2.A.lookahead
             && d1.A.conflicts = d2.A.conflicts
             && d1.A.error = d2.A.error)
           r1.A.decisions r2.A.decisions)

(* Parsing with the analyzer's precompiled cache is semantically transparent. *)
let prop_precompiled_cache_transparent =
  QCheck.Test.make ~count:80 ~name:"precompiled cache never changes results"
    Util.arb_grammar_word (fun (g, w) ->
      let p = Parser.make g in
      let toks = Grammar.tokens g w in
      let pre = (A.analyze ~oracle:false g).A.cache in
      parser_result_equal (Parser.run p toks)
        (fst (Parser.run_with_cache p pre toks)))

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_safe_decisions_never_fall_back;
      prop_ambiguous_words_confirmed;
      prop_analysis_cache_stable;
      prop_precompiled_cache_transparent;
    ]

let () =
  Alcotest.run "predict_analysis"
    [
      ( "unit",
        [
          Alcotest.test_case "fig2 unbounded" `Quick test_fig2_unbounded;
          Alcotest.test_case "two-token lookahead" `Quick
            test_two_token_lookahead;
          Alcotest.test_case "duplicate alternative is ambiguous" `Quick
            test_duplicate_alternative_ambiguous;
          Alcotest.test_case "decided without lookahead" `Quick
            test_decided_without_lookahead;
          Alcotest.test_case "left recursion reported" `Quick
            test_left_recursion_reported;
          Alcotest.test_case "bound reported" `Quick test_bound_reported;
          Alcotest.test_case "fingerprint" `Quick test_fingerprint;
          Alcotest.test_case "precompile roundtrip" `Quick
            test_precompile_roundtrip;
          Alcotest.test_case "precompiled parse warm" `Quick
            test_precompiled_parse_warm;
        ] );
      ("properties", props);
    ]
