(* Differential tests for the zero-copy token pipeline: the compiled
   buffer scanner against the legacy list scanner (tokens, lexemes,
   positions), the equivalence-classed DFA stepping against the raw
   256-column rows, the array-cursor parser against the list API, and
   the steady-state allocation contract (~0 minor words per token). *)

open Costar_grammar
open Costar_core
open Costar_lex

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- random scanner specs ----------------------------------------------- *)

(* A small pool of handwritten regexes over {a, b, c, 0, 1, space}; random
   specs pick a subset (in random order, exercising first-rule-wins) plus a
   skip rule.  None accept the empty string. *)
let regex_pool =
  let open Regex in
  [|
    ("AB", str "ab");
    ("ABC", str "abc");
    ("AS", plus (chr 'a'));
    ("BS", plus (chr 'b'));
    ("LETTERS", plus (set "abc"));
    ("NUM", plus (set "01"));
    ("WORD", seq [ set "abc"; star (set "abc01") ]);
    ("PAIR", seq [ set "ab"; set "01" ]);
    ("OPT0", seq [ chr 'c'; opt (chr '0') ]);
    ("MIX", seq [ chr 'b'; alt [ chr 'a'; chr '1' ] ]);
  |]

let gen_spec : Scanner.rule list QCheck.Gen.t =
  let open QCheck.Gen in
  let n = Array.length regex_pool in
  int_range 2 n >>= fun k ->
  shuffle_l (List.init n Fun.id) >|= fun order ->
  let picked = List.filteri (fun i _ -> i < k) order in
  let rules =
    List.map
      (fun i ->
        let name, re = regex_pool.(i) in
        Scanner.rule name re)
      picked
  in
  rules @ [ Scanner.rule "WS" ~skip:true Regex.(plus (chr ' ')) ]

let gen_input : string QCheck.Gen.t =
  let open QCheck.Gen in
  int_range 0 40 >>= fun len ->
  string_size ~gen:(oneofl [ 'a'; 'b'; 'c'; '0'; '1'; ' ' ]) (return len)

let arb_spec_input =
  QCheck.make
    ~print:(fun (rules, input) ->
      Printf.sprintf "rules: %s\ninput: %S"
        (String.concat " " (List.map (fun (r : Scanner.rule) -> r.name) rules))
        input)
    QCheck.Gen.(pair gen_spec gen_input)

(* A grammar that declares every rule name as a terminal, so both
   pipelines can resolve kinds. *)
let grammar_for rules =
  Grammar.define
    ~extra_terminals:(List.map (fun (r : Scanner.rule) -> r.name) rules)
    ~start:"S"
    [ ("S", [ [] ]) ]

let same_token (t1 : Token.t) (t2 : Token.t) =
  t1.Token.term = t2.Token.term
  && String.equal t1.Token.lexeme t2.Token.lexeme
  && t1.Token.line = t2.Token.line
  && t1.Token.col = t2.Token.col

(* --- properties --------------------------------------------------------- *)

let prop_scan_buf_agrees =
  QCheck.Test.make ~count:1000
    ~name:"scan_buf tokens/lexemes/positions = legacy tokenize"
    arb_spec_input (fun (rules, input) ->
      let sc = Scanner.make rules in
      let g = grammar_for rules in
      let compiled =
        match Scanner.compile sc g with
        | Ok c -> c
        | Error msg -> QCheck.Test.fail_reportf "compile failed: %s" msg
      in
      match Scanner.tokenize sc g input, Scanner.scan_buf compiled input with
      | Ok toks, Ok buf ->
        List.length toks = Token_buf.length buf
        && List.for_all2 same_token toks (Token_buf.to_tokens buf)
      | Error e1, Error e2 ->
        (* Same failure position, both pipelines. *)
        e1.Scanner.err_line = e2.Scanner.err_line
        && e1.Scanner.err_col = e2.Scanner.err_col
      | Ok _, Error _ | Error _, Ok _ -> false)

let prop_classes_correct =
  QCheck.Test.make ~count:300
    ~name:"class-table stepping = raw-row stepping (all states x 256 bytes)"
    arb_spec_input (fun (rules, _) ->
      let d = Scanner.dfa (Scanner.make rules) in
      let ok = ref true in
      for s = 0 to Dfa.num_states d - 1 do
        for c = 0 to 255 do
          let c = Char.chr c in
          if Dfa.next d s c <> Dfa.next_raw d s c then ok := false
        done
      done;
      !ok)

let prop_classes_partition =
  QCheck.Test.make ~count:300
    ~name:"class table is a partition of the byte range"
    arb_spec_input (fun (rules, _) ->
      let d = Scanner.dfa (Scanner.make rules) in
      let tbl = Dfa.class_table d in
      let nc = Dfa.num_classes d in
      Array.length tbl = 256
      && nc >= 1
      && nc <= 256
      && Array.for_all (fun k -> k >= 0 && k < nc) tbl
      (* Every class id is inhabited. *)
      && List.for_all
           (fun k -> Array.exists (fun k' -> k' = k) tbl)
           (List.init nc Fun.id))

(* Parse differential: a scanner whose rules are single characters over the
   random grammar's terminals, so that random words round-trip through a
   real string input and both the list and buffer pipelines. *)
let single_char_scanner_for g =
  let rules =
    List.init (Grammar.num_terminals g) (fun t ->
        let name = Grammar.terminal_name g t in
        Scanner.rule name (Regex.str name))
  in
  Scanner.make (rules @ [ Scanner.rule "WS" ~skip:true Regex.(plus (chr ' ')) ])

let same_result r1 r2 =
  match r1, r2 with
  | Parser.Unique t1, Parser.Unique t2 -> Tree.equal t1 t2
  | Parser.Ambig t1, Parser.Ambig t2 -> Tree.equal t1 t2
  | Parser.Reject _, Parser.Reject _ -> true
  | Parser.Error e1, Parser.Error e2 -> e1 = e2
  | _ -> false

let prop_parse_buf_agrees =
  QCheck.Test.make ~count:400
    ~name:"run_buf verdict+tree = list run verdict+tree"
    Util.arb_grammar_word (fun (g, w) ->
      match Left_recursion.check g with
      | Error _ -> true
      | Ok () -> (
        let sc = single_char_scanner_for g in
        let input = String.concat " " w in
        let compiled =
          match Scanner.compile sc g with
          | Ok c -> c
          | Error msg -> QCheck.Test.fail_reportf "compile failed: %s" msg
        in
        let p = Parser.make g in
        match Scanner.tokenize sc g input, Scanner.scan_buf compiled input with
        | Ok toks, Ok buf ->
          (* Note: tree leaves carry positions from different laziness
             paths; Tree.equal compares terminals and lexemes. *)
          same_result (Parser.run p toks) (Parser.run_buf p buf)
        | Error _, Error _ -> true
        | _ -> false))

(* --- language frontends -------------------------------------------------- *)

let langs = Costar_langs.[ Json.lang; Xml.lang; Dot.lang; Minipy.lang ]

let test_langs_differential () =
  List.iter
    (fun l ->
      let name = l.Costar_langs.Lang.name in
      List.iter
        (fun seed ->
          let input = Costar_langs.Lang.generate l ~seed ~size:120 in
          let toks = Costar_langs.Lang.tokenize_exn l input in
          let buf = Costar_langs.Lang.tokenize_buf_exn l input in
          check_int
            (Printf.sprintf "%s seed %d: token count" name seed)
            (List.length toks) (Token_buf.length buf);
          List.iteri
            (fun i t ->
              let t' = Token_buf.token buf i in
              if not (same_token t t') then
                Alcotest.failf
                  "%s seed %d: token %d differs: (%d,%S,%d:%d) vs (%d,%S,%d:%d)"
                  name seed i t.Token.term t.Token.lexeme t.Token.line
                  t.Token.col t'.Token.term t'.Token.lexeme t'.Token.line
                  t'.Token.col)
            toks;
          let p = Parser.make (Costar_langs.Lang.grammar l) in
          check
            (Printf.sprintf "%s seed %d: same parse result" name seed)
            true
            (same_result (Parser.run p toks) (Parser.run_buf p buf)))
        [ 1; 2; 3 ])
    langs

let test_minipy_indent_error_agrees () =
  (* Inconsistent dedent: both pipelines must reject, with the same
     message. *)
  let l = Costar_langs.Minipy.lang in
  let input = "if x:\n    y = 1\n  z = 2\n" in
  match
    Costar_langs.Lang.tokenize l input, Costar_langs.Lang.tokenize_buf l input
  with
  | Error m1, Error m2 -> Alcotest.(check string) "same error" m1 m2
  | _ -> Alcotest.fail "expected both pipelines to reject"

(* --- steady-state allocation --------------------------------------------- *)

let test_scan_minor_words () =
  let l = Costar_langs.Json.lang in
  let input = Costar_langs.Lang.generate l ~seed:7 ~size:2000 in
  let compiled =
    match
      Scanner.compile
        (Lazy.force Costar_langs.Json.scanner)
        (Costar_langs.Lang.grammar l)
    with
    | Ok c -> c
    | Error msg -> Alcotest.failf "compile failed: %s" msg
  in
  let buf = Token_buf.create_for_input input in
  Scanner.scan_into compiled buf input;
  let n = Token_buf.length buf in
  check "corpus has tokens" true (n > 1000);
  (* Warm re-scan of the same input into the cleared buffer: the per-token
     cost must be three int writes, i.e. no minor-heap allocation at all
     beyond fixed per-call noise. *)
  Token_buf.clear buf;
  let before = Gc.minor_words () in
  Scanner.scan_into compiled buf input;
  let words = Gc.minor_words () -. before in
  check
    (Printf.sprintf "minor words per token ~ 0 (got %.3f for %d tokens)"
       (words /. float_of_int n) n)
    true
    (words /. float_of_int n < 0.01)

(* Warm end-to-end parse: with the DFA cache saturated, run_buf's per-token
   cost is the tree-building floor (one Token and one Leaf per consumed
   token plus machine steps) — a fixed budget, not zero.  The budget fences
   the data plane: reintroducing per-token boxing in the scanner, the word
   cursor, or warm prediction blows well past it. *)
let test_run_buf_minor_words () =
  List.iter
    (fun (l, budget) ->
      let name = l.Costar_langs.Lang.name in
      let input = Costar_langs.Lang.generate l ~seed:11 ~size:4000 in
      let p = Parser.make (Costar_langs.Lang.grammar l) in
      let buf = Costar_langs.Lang.tokenize_buf_exn l input in
      let n = Token_buf.length buf in
      check (name ^ " corpus has tokens") true (n > 500);
      (* Two warm-up runs saturate the base DFA cache for this input. *)
      ignore (Parser.run_buf p buf);
      ignore (Parser.run_buf p buf);
      Gc.full_major ();
      (* Min over samples: one-sided GC/interference noise only inflates. *)
      let best = ref infinity in
      for _ = 1 to 3 do
        let m0 = Gc.minor_words () in
        ignore (Parser.run_buf p buf);
        let w = Gc.minor_words () -. m0 in
        if w < !best then best := w
      done;
      let per_tok = !best /. float_of_int (max 1 n) in
      check
        (Printf.sprintf
           "%s warm run_buf minor words/token within budget (got %.1f, \
            budget %.0f)"
           name per_tok budget)
        true (per_tok < budget))
    Costar_langs.[ (Json.lang, 150.); (Xml.lang, 150.) ]

(* Warm SLL prediction over the array cursor allocates a small constant per
   call (the result tuple and verdict), independent of how many tokens the
   lookahead scans: the scan itself reads kinds straight from the off-heap
   buffer. *)
let test_predict_word_minor_words () =
  let l = Costar_langs.Json.lang in
  let g = Costar_langs.Lang.grammar l in
  let p = Parser.make g in
  let a = Parser.analysis p in
  let input = Costar_langs.Lang.generate l ~seed:11 ~size:2000 in
  let w = Word.of_buf (Costar_langs.Lang.tokenize_buf_exn l input) in
  ignore (Parser.run_word p w);
  let cache = Parser.base_cache p in
  let x = Grammar.start g in
  ignore (Sll.predict_word g a cache x w 0);
  Gc.full_major ();
  let reps = 1000 in
  let m0 = Gc.minor_words () in
  for _ = 1 to reps do
    ignore (Sll.predict_word g a cache x w 0)
  done;
  let per_call = (Gc.minor_words () -. m0) /. float_of_int reps in
  check
    (Printf.sprintf "warm predict_word allocates O(1) words/call (got %.1f)"
       per_call)
    true (per_call < 16.)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_scan_buf_agrees;
      prop_classes_correct;
      prop_classes_partition;
      prop_parse_buf_agrees;
    ]

let () =
  Alcotest.run "pipeline"
    [
      ("differential", props);
      ( "langs",
        [
          Alcotest.test_case "buffer pipeline = legacy (4 langs)" `Quick
            test_langs_differential;
          Alcotest.test_case "minipy indent errors agree" `Quick
            test_minipy_indent_error_agrees;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "steady-state scan allocates ~nothing" `Quick
            test_scan_minor_words;
          Alcotest.test_case "warm run_buf stays within the tree-floor budget"
            `Quick test_run_buf_minor_words;
          Alcotest.test_case "warm predict_word allocates O(1) per call"
            `Quick test_predict_word_minor_words;
        ] );
    ]
