(* GSS prediction engine tests: verdict-identical to the list-stack SLL
   engine (differential, on unit cases, random grammars, and the benchmark
   corpora), with the structure sharing actually observable. *)

open Costar_grammar
open Costar_core
module Gss = Costar_gss.Gss

let check = Alcotest.(check bool)

let nt g name =
  match Grammar.nonterminal_of_name g name with
  | Some x -> x
  | None -> Alcotest.failf "unknown nonterminal %s" name

let same_verdict v1 v2 =
  match v1, v2 with
  | Types.Unique_pred i, Types.Unique_pred j -> i = j
  | Types.Ambig_pred i, Types.Ambig_pred j -> i = j
  | Types.Reject_pred, Types.Reject_pred -> true
  | Types.Error_pred _, Types.Error_pred _ -> true
  | _ -> false

let fig2 =
  Grammar.define ~start:"S"
    [
      ("S", [ [ Grammar.n "A"; Grammar.t "c" ]; [ Grammar.n "A"; Grammar.t "d" ] ]);
      ("A", [ [ Grammar.t "a"; Grammar.n "A" ]; [ Grammar.t "b" ] ]);
    ]

let test_fig2 () =
  let e = Gss.create fig2 in
  let anl = Analysis.make fig2 in
  List.iter
    (fun w ->
      let toks = Grammar.tokens fig2 w in
      List.iter
        (fun name ->
          let x = nt fig2 name in
          let _, core = Sll.predict fig2 anl (Cache.create anl) x toks in
          let gss = Gss.predict e x toks in
          check
            (Printf.sprintf "%s on %s" name (String.concat " " w))
            true (same_verdict core gss))
        [ "S"; "A" ])
    [ [ "a"; "b"; "d" ]; [ "b"; "c" ]; [ "a"; "a" ]; []; [ "c" ] ]

let test_sharing_observable () =
  (* The paper's XML element rule: the two alternatives share the whole
     attribute-scanning region; the GSS engine must keep the configuration
     sets small (one per alternative after merging). *)
  let g =
    match
      Costar_ebnf.Parse.grammar_of_string ~start:"element"
        {|
          element : '<' NAME attr* '>' | '<' NAME attr* '/>' ;
          attr    : NAME '=' STRING ;
        |}
    with
    | Ok g -> g
    | Error msg -> Alcotest.fail msg
  in
  let e = Gss.create g in
  let w =
    Grammar.tokens g
      ([ "<"; "NAME" ]
      @ List.concat (List.init 20 (fun _ -> [ "NAME"; "="; "STRING" ]))
      @ [ "/>" ])
  in
  (match Gss.predict e (nt g "element") w with
  | Types.Unique_pred 1 -> ()
  | v ->
    Alcotest.failf "expected Unique 1, got %s"
      (match v with
      | Types.Unique_pred i -> Printf.sprintf "Unique %d" i
      | Types.Ambig_pred _ -> "Ambig"
      | Types.Reject_pred -> "Reject"
      | Types.Error_pred _ -> "Error"));
  let _, _, peak = Gss.stats e in
  (* Without merging, configurations multiply with contexts; with the GSS
     they stay bounded by a small constant. *)
  check "peak configurations stay small" true (peak <= 8)

let test_cache_reuse () =
  let e = Gss.create fig2 in
  let toks = Grammar.tokens fig2 [ "a"; "b"; "d" ] in
  let v1 = Gss.predict e (nt fig2 "S") toks in
  let _, states1, _ = Gss.stats e in
  let v2 = Gss.predict e (nt fig2 "S") toks in
  let _, states2, _ = Gss.stats e in
  check "same verdict" true (same_verdict v1 v2);
  check "no new states on re-predict" true (states1 = states2);
  Gss.reset e;
  let _, states3, _ = Gss.stats e in
  check "reset clears" true (states3 = 0);
  check "verdict stable after reset" true
    (same_verdict v1 (Gss.predict e (nt fig2 "S") toks))

let prop_differential =
  QCheck.Test.make ~count:600 ~name:"GSS = list-stack SLL on random grammars"
    Util.arb_grammar_word (fun (g, w) ->
      match Left_recursion.check g with
      | Error _ -> true
      | Ok () ->
        let toks = Grammar.tokens g w in
        let anl = Analysis.make g in
        let e = Gss.create g in
        List.for_all
          (fun x ->
            let _, core = Sll.predict g anl (Cache.create anl) x toks in
            let gss = Gss.predict e x toks in
            same_verdict core gss)
          (List.init (Grammar.num_nonterminals g) Fun.id))

let test_langs_agree () =
  List.iter
    (fun (lang : Costar_langs.Lang.t) ->
      let g = Costar_langs.Lang.grammar lang in
      let anl = Analysis.make g in
      let e = Gss.create g in
      let src = Costar_langs.Lang.generate lang ~seed:51 ~size:40 in
      let toks = Costar_langs.Lang.tokenize_exn lang src in
      (* Compare predictions for every multi-alternative nonterminal at
         several suffixes of the corpus token stream. *)
      let suffixes =
        let arr = Array.of_list toks in
        let n = Array.length arr in
        List.filter_map
          (fun k ->
            if k <= n then
              Some (Array.to_list (Array.sub arr k (min 30 (n - k))))
            else None)
          [ 0; n / 3; n / 2; n - 1 ]
      in
      List.iter
        (fun x ->
          if List.length (Grammar.prods_of g x) > 1 then
            List.iter
              (fun suffix ->
                let _, core = Sll.predict g anl (Cache.create anl) x suffix in
                let gss = Gss.predict e x suffix in
                check
                  (Printf.sprintf "%s/%s" lang.Costar_langs.Lang.name
                     (Grammar.nonterminal_name g x))
                  true (same_verdict core gss))
              suffixes)
        (List.init (Grammar.num_nonterminals g) Fun.id))
    [ Costar_langs.Json.lang; Costar_langs.Xml.lang; Costar_langs.Dot.lang ]

let suite =
  [
    Alcotest.test_case "fig2 verdicts" `Quick test_fig2;
    Alcotest.test_case "sharing bounds configs" `Quick test_sharing_observable;
    Alcotest.test_case "cache reuse and reset" `Quick test_cache_reuse;
    Alcotest.test_case "benchmark languages agree" `Quick test_langs_agree;
    QCheck_alcotest.to_alcotest prop_differential;
  ]

let () = Alcotest.run "costar_gss" [ ("gss", suite) ]
