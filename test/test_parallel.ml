(* Theorems-as-tests for the multicore batch engine (DESIGN.md §9).

   The central property is the differential one: because DFA-cache contents
   never influence parse results, a batch run — any number of domains, any
   round split, cold or warm snapshot — must be result-identical (verdict,
   tree, ambiguity flag, error positions) to parsing the corpus
   sequentially.  Alongside it, the freeze/overlay/absorb round-trip is
   pinned to produce the very same cache CONTENT as sequential warming, and
   absorb is checked idempotent and order-independent. *)

open Costar_grammar
open Costar_core
module Batch = Costar_parallel.Batch

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Domain counts under test.  CI's parallel-smoke step pins a single count
   via COSTAR_TEST_DOMAINS (e.g. "2" or "4"); the default exercises the
   full ladder of the ISSUE's differential property. *)
let domain_counts =
  match Sys.getenv_opt "COSTAR_TEST_DOMAINS" with
  | None | Some "" -> [ 1; 2; 4; 8 ]
  | Some s ->
    List.map
      (fun x ->
        match int_of_string_opt (String.trim x) with
        | Some d when d >= 1 -> d
        | _ -> failwith ("COSTAR_TEST_DOMAINS: bad count " ^ x))
      (String.split_on_char ',' s)

let same_result r1 r2 =
  match r1, r2 with
  | Parser.Unique t1, Parser.Unique t2 -> Tree.equal t1 t2
  | Parser.Ambig t1, Parser.Ambig t2 -> Tree.equal t1 t2
  | Parser.Reject m1, Parser.Reject m2 -> String.equal m1 m2
  | Parser.Error e1, Parser.Error e2 -> e1 = e2
  | _ -> false

let pp_outcome g ppf = function
  | Ok r -> Parser.pp_result g ppf r
  | Error msg -> Fmt.pf ppf "Lex_error (%s)" msg

let same_outcome o1 o2 =
  match o1, o2 with
  | Ok r1, Ok r2 -> same_result r1 r2
  | Error m1, Error m2 -> String.equal m1 m2
  | _ -> false

(* --- language corpora ---------------------------------------------------- *)

let langs = Costar_langs.[ Json.lang; Xml.lang; Dot.lang; Minipy.lang ]

(* A corpus that exercises every outcome: well-formed files of several
   sizes, a truncated file (syntax error or lex error at a real position),
   and a file with a byte no lexer accepts. *)
let corpus_for l =
  let gen seed size = Costar_langs.Lang.generate l ~seed ~size in
  let whole = List.map (fun (s, n) -> gen s n)
      [ (1, 20); (2, 60); (3, 120); (4, 200); (5, 90); (6, 40); (7, 150); (8, 10) ]
  in
  let big = gen 9 160 in
  let truncated = String.sub big 0 (String.length big / 2) in
  let garbage = gen 10 30 ^ "\x01\x01" in
  Array.of_list (whole @ [ truncated; garbage ])

let tokenize_of_lang l s =
  Result.map Word.of_buf (Costar_langs.Lang.tokenize_buf l s)

(* The sequential oracle: one fresh parser, run_buf in corpus order. *)
let sequential_outcomes l inputs =
  let p = Parser.make (Costar_langs.Lang.grammar l) in
  Array.map
    (fun s ->
      match tokenize_of_lang l s with
      | Error msg -> Error msg
      | Ok w -> Ok (Parser.run_word p w))
    inputs

let test_batch_differential () =
  List.iter
    (fun l ->
      let name = l.Costar_langs.Lang.name in
      let g = Costar_langs.Lang.grammar l in
      let inputs = corpus_for l in
      let expected = sequential_outcomes l inputs in
      List.iter
        (fun d ->
          (* Cold: a fresh parser whose snapshot holds only the static
             grammar cache.  Warm: the same parser again, its base cache
             now holding everything the first batch absorbed. *)
          let p = Parser.make g in
          let check_run phase =
            let results, st =
              Batch.run_batch ~domains:d p
                ~tokenize:(tokenize_of_lang l) inputs
            in
            check_int
              (Printf.sprintf "%s %dd %s: result count" name d phase)
              (Array.length expected) (Array.length results);
            Array.iteri
              (fun i r ->
                if not (same_outcome expected.(i) r) then
                  Alcotest.failf "%s %dd %s: file %d differs: %a vs %a" name
                    d phase i (pp_outcome g) expected.(i) (pp_outcome g) r)
              results;
            check_int
              (Printf.sprintf "%s %dd %s: domains spawned" name d phase)
              d st.Batch.st_domains;
            check_int
              (Printf.sprintf "%s %dd %s: files accounted" name d phase)
              (Array.length inputs)
              (Array.fold_left
                 (fun a ds -> a + ds.Batch.ds_files)
                 0 st.Batch.st_per_domain)
          in
          check_run "cold";
          check_run "warm";
          (* Multi-round: overlays absorbed between rounds of 3 files. *)
          let p3 = Parser.make g in
          let results, st =
            Batch.run_batch ~domains:d ~round_size:3 p3
              ~tokenize:(tokenize_of_lang l) inputs
          in
          check
            (Printf.sprintf "%s %dd rounds: round count" name d)
            true
            (st.Batch.st_rounds = (Array.length inputs + 2) / 3);
          Array.iteri
            (fun i r ->
              if not (same_outcome expected.(i) r) then
                Alcotest.failf "%s %dd rounds: file %d differs" name d i)
            results)
        domain_counts)
    langs

(* --- prefork differential ------------------------------------------------ *)

(* The process tier must satisfy the exact same differential as the domain
   tier: any worker count, cold or image-backed base, verdicts identical
   to sequential parsing.  Runs at 2 and 4 workers (CI smokes 2). *)
let test_prefork_differential () =
  List.iter
    (fun l ->
      let name = l.Costar_langs.Lang.name in
      let g = Costar_langs.Lang.grammar l in
      let inputs = corpus_for l in
      let expected = sequential_outcomes l inputs in
      List.iter
        (fun workers ->
          let p = Parser.make g in
          let results, st =
            Batch.run_prefork ~workers p ~tokenize:(tokenize_of_lang l) inputs
          in
          Array.iteri
            (fun i r ->
              if not (same_outcome expected.(i) r) then
                Alcotest.failf "%s %dw prefork: file %d differs: %a vs %a" name
                  workers i (pp_outcome g) expected.(i) (pp_outcome g) r)
            results;
          check_int
            (Printf.sprintf "%s %dw prefork: workers accounted" name workers)
            workers st.Batch.st_domains;
          check_int
            (Printf.sprintf "%s %dw prefork: files accounted" name workers)
            (Array.length inputs)
            (Array.fold_left
               (fun a ds -> a + ds.Batch.ds_files)
               0 st.Batch.st_per_domain))
        [ 2; 4 ])
    langs

(* Prefork over an mmapped v3 cache image: save the warmed base cache,
   reload it image-backed, fork workers over the mapping — still verdict-
   identical to sequential parsing. *)
let test_prefork_over_image () =
  List.iter
    (fun l ->
      let name = l.Costar_langs.Lang.name in
      let g = Costar_langs.Lang.grammar l in
      let inputs = corpus_for l in
      let expected = sequential_outcomes l inputs in
      let fp = Grammar.fingerprint g in
      (* Warm a parser on a few files, save its cache as an image. *)
      let psrc = Parser.make g in
      Array.iteri
        (fun i s ->
          if i < 3 then
            match tokenize_of_lang l s with
            | Ok w -> ignore (Parser.run_word psrc w)
            | Error _ -> ())
        inputs;
      let file = Filename.temp_file "costar_prefork" ".img" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
        (fun () ->
          Cache.save_image ~fingerprint:fp (Parser.base_cache psrc) file;
          let p = Parser.make g in
          (match
             Cache.load_image ~anl:(Parser.analysis p) ~fingerprint:fp file
           with
          | Error e ->
            Alcotest.failf "%s: image load failed: %s" name
              (Cache.image_error_to_string e)
          | Ok c -> Parser.set_base_cache p c);
          let results, _ =
            Batch.run_prefork ~workers:2 p ~tokenize:(tokenize_of_lang l)
              inputs
          in
          Array.iteri
            (fun i r ->
              if not (same_outcome expected.(i) r) then
                Alcotest.failf "%s prefork-over-image: file %d differs" name i)
            results))
    langs

(* --- random-grammar differential ----------------------------------------- *)

(* Random grammars parsed through the batch engine: the corpus is several
   random words of one grammar, the tokenizer maps terminal names.  Two
   domains and a round split keep the schedule nontrivial without making
   the property slow. *)
let arb_grammar_words =
  let gen =
    let open QCheck.Gen in
    Util.gen_grammar >>= fun g ->
    int_range 2 6 >>= fun n ->
    list_repeat n (Util.gen_word g) >|= fun ws -> (g, ws)
  in
  QCheck.make
    ~print:(fun (g, ws) ->
      Fmt.str "@[<v>%a@,words: %s@]" Grammar.pp g
        (String.concat " | " (List.map (String.concat " ") ws)))
    gen

let tokenize_names g s =
  let names = List.filter (fun x -> x <> "") (String.split_on_char ' ' s) in
  let toks =
    List.map
      (fun name ->
        match Grammar.terminal_of_name g name with
        | Some a -> Token.make a name
        | None -> failwith ("not a terminal: " ^ name))
      names
  in
  Ok (Word.of_tokens toks)

let prop_batch_random_grammars =
  QCheck.Test.make ~count:60
    ~name:"run_batch = sequential run_word (random grammars, 2 domains)"
    arb_grammar_words (fun (g, ws) ->
      match Left_recursion.check g with
      | Error _ -> true
      | Ok () ->
        let inputs = Array.of_list (List.map (String.concat " ") ws) in
        let pseq = Parser.make g in
        let expected =
          Array.map
            (fun s ->
              match tokenize_names g s with
              | Ok w -> Ok (Parser.run_word pseq w)
              | Error _ -> assert false)
            inputs
        in
        let p = Parser.make g in
        let results, _ =
          Batch.run_batch ~domains:2 ~round_size:2 p
            ~tokenize:(tokenize_names g) inputs
        in
        Array.for_all2 (fun a b -> same_outcome a b) expected results)

(* --- frozen-snapshot semantics ------------------------------------------- *)

(* Canonical cache content, independent of state/config id assignment and
   of which frames interner the cache lives in: states become sorted lists
   of decoded configurations, transitions and initials refer to states by
   that decoded value. *)
type canon_config = int * Symbols.symbol list list * Config.sctx

let canon_state fr (info : Cache.info) : canon_config list =
  List.sort compare
    (List.map
       (fun (c : Config.sll) ->
         (c.Config.s_pred, Frames.frames_of_spine fr c.Config.s_frames,
          c.Config.s_ctx))
       info.Cache.configs)

let canon_of_cache g c =
  let fr = Cache.frames c in
  let n = Cache.num_states c in
  let states = Array.init n (fun sid -> canon_state fr (Cache.info c sid)) in
  let trans = ref [] in
  for sid = 0 to n - 1 do
    for a = 0 to Grammar.num_terminals g - 1 do
      match Cache.find_trans c sid a with
      | None -> ()
      | Some sid' -> trans := (states.(sid), a, states.(sid')) :: !trans
    done
  done;
  let inits = ref [] in
  for x = 0 to Grammar.num_nonterminals g - 1 do
    match Cache.find_init c x with
    | None -> ()
    | Some sid -> inits := (x, states.(sid)) :: !inits
  done;
  ( List.sort compare (Array.to_list states),
    List.sort compare !trans,
    List.sort compare !inits )

let warm_sequentially p inputs tokenize =
  Array.iter
    (fun s ->
      match tokenize s with
      | Ok w -> ignore (Parser.run_word p w)
      | Error _ -> ())
    inputs

let test_freeze_absorb_equals_sequential () =
  List.iter
    (fun l ->
      let name = l.Costar_langs.Lang.name in
      let g = Costar_langs.Lang.grammar l in
      let inputs = corpus_for l in
      (* Sequential warming. *)
      let pseq = Parser.make g in
      warm_sequentially pseq inputs (tokenize_of_lang l);
      let seq_canon = canon_of_cache g (Parser.base_cache pseq) in
      (* Batch warming over the same inputs, several domains + rounds. *)
      let pbatch = Parser.make g in
      ignore
        (Batch.run_batch ~domains:3 ~round_size:4 pbatch
           ~tokenize:(tokenize_of_lang l) inputs);
      let batch_canon = canon_of_cache g (Parser.base_cache pbatch) in
      check
        (Printf.sprintf "%s: batch cache content = sequential cache content"
           name)
        true
        (seq_canon = batch_canon))
    [ Costar_langs.Json.lang; Costar_langs.Minipy.lang ]

let test_absorb_idempotent_order_independent () =
  let l = Costar_langs.Json.lang in
  let g = Costar_langs.Lang.grammar l in
  let inputs = corpus_for l in
  let n = Array.length inputs in
  let half1 = Array.sub inputs 0 (n / 2) in
  let half2 = Array.sub inputs (n / 2) (n - n / 2) in
  let p = Parser.make g in
  let master = Parser.base_cache p in
  let fz = Cache.freeze master in
  let warm_overlay half =
    let o = Cache.overlay fz in
    Array.iter
      (fun s ->
        match tokenize_of_lang l s with
        | Ok w -> ignore (Parser.run_with_cache_word p o w)
        | Error _ -> ())
      half;
    o
  in
  let o1 = warm_overlay half1 in
  let o2 = warm_overlay half2 in
  check "overlays learned something" true
    (Cache.overlay_new_states o1 > 0 || Cache.num_transitions o1 > 0);
  (* Overlay reads must see the frozen base: state count includes it. *)
  check "overlay counts include the snapshot" true
    (Cache.num_states o1 >= Cache.frozen_num_states fz);
  (* Idempotence: absorbing the same overlay twice is absorbing it once. *)
  let m1 = Cache.absorb (Cache.copy master) o1 in
  let once = canon_of_cache g m1 in
  let m1 = Cache.absorb m1 o1 in
  check "absorb idempotent" true (canon_of_cache g m1 = once);
  (* Order independence (content-level): o1 then o2 = o2 then o1. *)
  let m12 = Cache.absorb (Cache.absorb (Cache.copy master) o1) o2 in
  let m21 = Cache.absorb (Cache.absorb (Cache.copy master) o2) o1 in
  check "absorb order-independent" true
    (canon_of_cache g m12 = canon_of_cache g m21);
  (* And both agree with warming the master on everything sequentially. *)
  let pseq = Parser.make g in
  warm_sequentially pseq inputs (tokenize_of_lang l);
  check "absorbed halves = sequential whole" true
    (canon_of_cache g m12 = canon_of_cache g (Parser.base_cache pseq))

let test_freeze_rejects_overlay () =
  let l = Costar_langs.Json.lang in
  let p = Parser.make (Costar_langs.Lang.grammar l) in
  let fz = Cache.freeze (Parser.base_cache p) in
  let o = Cache.overlay fz in
  match Cache.freeze o with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "freeze of an overlay must be rejected"

(* Mutating an overlay never changes what the frozen snapshot answers. *)
let test_snapshot_immutable_under_overlay_growth () =
  let l = Costar_langs.Minipy.lang in
  let g = Costar_langs.Lang.grammar l in
  let inputs = corpus_for l in
  let p = Parser.make g in
  let fz = Cache.freeze (Parser.base_cache p) in
  let before =
    (Cache.frozen_num_states fz, Cache.frozen_num_transitions fz)
  in
  let o = Cache.overlay fz in
  Array.iter
    (fun s ->
      match tokenize_of_lang l s with
      | Ok w -> ignore (Parser.run_with_cache_word p o w)
      | Error _ -> ())
    inputs;
  Alcotest.(check (pair int int))
    "snapshot unchanged" before
    (Cache.frozen_num_states fz, Cache.frozen_num_transitions fz)

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_batch_random_grammars ]

let () =
  Alcotest.run "parallel"
    [
      ( "differential",
        [
          (* Prefork first: Unix.fork is only legal while no other domain
             has been spawned in this process, so the process-tier tests
             must precede every Domain.spawn. *)
          Alcotest.test_case "prefork = sequential (4 langs, 2+4 workers)"
            `Slow test_prefork_differential;
          Alcotest.test_case "prefork over mmapped image = sequential" `Slow
            test_prefork_over_image;
          Alcotest.test_case "batch = sequential (4 langs, cold+warm+rounds)"
            `Slow test_batch_differential;
        ]
        @ props );
      ( "snapshot",
        [
          Alcotest.test_case "freeze/overlay/absorb = sequential warming"
            `Slow test_freeze_absorb_equals_sequential;
          Alcotest.test_case "absorb idempotent and order-independent" `Quick
            test_absorb_idempotent_order_independent;
          Alcotest.test_case "freeze rejects overlays" `Quick
            test_freeze_rejects_overlay;
          Alcotest.test_case "snapshot immutable under overlay growth" `Quick
            test_snapshot_immutable_under_overlay_growth;
        ] );
    ]
