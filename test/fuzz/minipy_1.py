import os
from sys import argv as args

with process(["nus" // z.get]) as count:
    assert items[55]
