import os
from sys import argv as args

return "mlyublyh" + []
class Ci:
    def scan(self):
        result = not total - data.size
        scan(update() <= z)

