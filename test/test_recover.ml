(* The error-recovery engine's hard obligations (DESIGN.md §14):

   - Conservativity: with recovery enabled, a well-formed input yields a
     bit-identical tree, an empty event list, and an identical DFA-cache
     evolution — the engine drives the very same machine steps.
   - Productivity: a rejected input yields a partial tree with explicit
     error nodes and at least one coded, span-sane diagnostic.
   - Termination: every machine step and every committed repair strictly
     decreases the extended §4 measure ([~verify_measure:true] raises on
     any violation, so these tests double as the no-hang gate).

   Checked differentially over the four built-in languages' generated
   corpora, over 500 random grammars with mixed valid/invalid words, and
   as QCheck span/ordering properties over deterministic mutants. *)

open Costar_grammar
module P = Costar_core.Parser
module Cache = Costar_core.Cache
module R = Costar_recover.Recover
module D = Costar_lint.Diagnostic
module Mutate = Costar_cover.Mutate
module Lang = Costar_langs.Lang

let langs = Costar_langs.Registry.all

(* One clean-input comparison: plain engine vs recovery engine, each from
   its own fresh cache, demanding identical trees and identical cache
   growth. *)
let check_conservative ?(what = "input") p eng word =
  let anl = P.analysis p in
  let plain, c1 =
    P.run_with_cache_word p (Cache.create anl) word
  in
  let o, c2 =
    R.run_with_cache_word ~verify_measure:true eng (Cache.create anl) word
  in
  (match (plain, o.R.verdict) with
  | P.Unique t1, R.Recovered t2 | P.Ambig t1, R.Recovered_ambig t2 ->
    if o.R.events <> [] then
      Alcotest.failf "%s: clean parse produced %d recovery events" what
        (List.length o.R.events);
    if not (Tree.equal t1 t2) then
      Alcotest.failf "%s: recovery tree differs from the plain tree" what
  | P.Reject _, _ | _, R.Fatal _ | P.Error _, _ ->
    Alcotest.failf "%s: expected a clean parse" what
  | _ ->
    Alcotest.failf "%s: verdict mismatch on a clean parse" what);
  if
    Cache.num_states c1 <> Cache.num_states c2
    || Cache.num_transitions c1 <> Cache.num_transitions c2
  then
    Alcotest.failf
      "%s: cache evolution differs (plain %d states/%d transitions, \
       recovery %d/%d)"
      what (Cache.num_states c1)
      (Cache.num_transitions c1)
      (Cache.num_states c2)
      (Cache.num_transitions c2)

(* --- Built-in language corpora ------------------------------------------ *)

let test_corpus_conservative () =
  List.iter
    (fun l ->
      let p = P.make (Lang.grammar l) in
      let eng = R.make p in
      List.iter
        (fun (seed, size) ->
          let src = Lang.generate l ~seed ~size in
          let toks = Lang.tokenize_exn l src in
          check_conservative
            ~what:(Printf.sprintf "%s seed=%d size=%d" l.Lang.name seed size)
            p eng (Word.of_tokens toks))
        [ (0, 5); (1, 20); (2, 40); (3, 80); (4, 10) ])
    langs

(* Deterministic mutants of each language's corpus: rejected ones must
   recover with diagnostics; accepted ones must stay conservative. *)
let test_corpus_mutants () =
  List.iter
    (fun l ->
      let g = Lang.grammar l in
      let p = P.make g in
      let eng = R.make p in
      let source = Lang.generate l ~seed:0 ~size:30 in
      let tokens = Lang.tokenize_exn l source in
      let rejected = ref 0 in
      for k = 0 to 199 do
        let rng = Rng.split 42 k in
        let toks' =
          match Mutate.derive rng ~source ~tokens with
          | Mutate.Tokens (toks', _) -> Some toks'
          | Mutate.Source (s, _) -> (
            match Lang.tokenize l s with Ok t -> Some t | Error _ -> None)
        in
        match toks' with
        | None -> () (* lexical rejection: P004 is the CLI's concern *)
        | Some toks' -> (
          let word = Word.of_tokens toks' in
          match P.run_word p word with
          | P.Unique _ | P.Ambig _ -> check_conservative p eng word
          | P.Error _ -> ()
          | P.Reject _ -> (
            incr rejected;
            let o = R.run_word ~verify_measure:true eng word in
            match o.R.verdict with
            | R.Fatal _ ->
              Alcotest.failf "%s mutant %d: recovery was Fatal on a Reject"
                l.Lang.name k
            | R.Recovered t | R.Recovered_ambig t ->
              if o.R.events = [] then
                Alcotest.failf "%s mutant %d: rejected input, no events"
                  l.Lang.name k;
              if not (Tree.has_errors t) then
                Alcotest.failf
                  "%s mutant %d: partial tree has no error nodes" l.Lang.name
                  k;
              List.iter
                (fun (e : R.event) ->
                  if e.R.diag.D.message = "" then
                    Alcotest.failf "%s mutant %d: empty diagnostic"
                      l.Lang.name k)
                o.R.events))
      done;
      if !rejected = 0 then
        Alcotest.failf "%s: no mutant was rejected (mutators too tame?)"
          l.Lang.name)
    langs

(* --- Random grammars ----------------------------------------------------- *)

(* Recovery-on ≡ recovery-off over random grammars and mixed valid/invalid
   words: conservativity on accepts, productivity on rejects, Fatal only
   where the plain engine errors. *)
let prop_random_grammars =
  QCheck.Test.make ~count:500 ~name:"recovery-on ≡ recovery-off (random)"
    Util.arb_grammar_word (fun (g, w) ->
      let word = Word.of_tokens (Grammar.tokens g w) in
      let p = P.make g in
      let eng = R.make p in
      match Left_recursion.check g with
      | Error _ -> (
        (* Left-recursive grammar: repairs may legitimately steer the
           machine into its left-recursion guard (Fatal), so only demand
           totality — no exception, and events whenever a partial tree
           comes back on a reject. *)
        match (P.run_word p word, (R.run_word eng word).R.verdict) with
        | (P.Unique _ | P.Ambig _), (R.Recovered _ | R.Recovered_ambig _) ->
          check_conservative p eng word;
          true
        | P.Reject _, (R.Recovered t | R.Recovered_ambig t) ->
          Tree.has_errors t
        | _, R.Fatal _ -> true
        | _ -> false)
      | Ok () -> (
        match P.run_word p word with
        | P.Unique _ | P.Ambig _ ->
          check_conservative p eng word;
          true
        | P.Error _ -> false (* Thm 5.8: unreachable for non-LR grammars *)
        | P.Reject _ -> (
          let o = R.run_word ~verify_measure:true eng word in
          match o.R.verdict with
          | R.Fatal _ -> false
          | R.Recovered t | R.Recovered_ambig t ->
            o.R.events <> [] && Tree.has_errors t
            && Tree.yield t = Word.to_tokens word)))

(* --- Span and ordering properties ---------------------------------------- *)

(* Events over real (positioned) inputs: spans lie inside the input (or
   are dummy), event token ranges are in order, non-overlapping, and
   within bounds. *)
let prop_spans =
  QCheck.Test.make ~count:300 ~name:"diagnostic spans lie inside the input"
    QCheck.(pair (int_bound 1_000_000) (int_bound 2))
    (fun (seed, li) ->
      let l = List.nth langs (li mod List.length langs) in
      let source = Lang.generate l ~seed:(seed mod 7) ~size:15 in
      let tokens = Lang.tokenize_exn l source in
      let rng = Rng.split 7 seed in
      match Mutate.derive rng ~source ~tokens with
      | Mutate.Source _ -> true (* byte mutants may not lex; covered above *)
      | Mutate.Tokens (toks', _) ->
        let eng = R.make (P.make (Lang.grammar l)) in
        let o = R.run ~verify_measure:true eng toks' in
        let len = List.length toks' in
        let max_line =
          List.fold_left (fun m t -> max m t.Token.line) 1 toks'
        in
        let span_ok (d : D.t) =
          Loc.is_dummy d.D.span
          || d.D.span.Loc.start_line >= 1
             && d.D.span.Loc.end_line <= max_line + 1
             && d.D.span.Loc.start_col >= 0
             && Loc.compare d.D.span d.D.span = 0
             && (d.D.span.Loc.start_line < d.D.span.Loc.end_line
                || d.D.span.Loc.start_col <= d.D.span.Loc.end_col)
        in
        let rec ranges_ok last = function
          | [] -> true
          | (e : R.event) :: rest ->
            e.R.at >= last && e.R.consumed >= 0
            && e.R.at + e.R.consumed <= len
            && ranges_ok (e.R.at + e.R.consumed) rest
        in
        List.for_all (fun (e : R.event) -> span_ok e.R.diag) o.R.events
        && ranges_ok 0 o.R.events)

(* --- Unit checks ---------------------------------------------------------- *)

let test_lex_diag () =
  let d = R.lex_diag ~file:"x.json" "lexical error at line 3, column 7: nope" in
  Alcotest.(check string) "code" "P004" d.D.code;
  Alcotest.(check int) "line" 3 d.D.span.Loc.start_line;
  Alcotest.(check int) "col" 7 d.D.span.Loc.start_col;
  let d2 = R.lex_diag "unpositioned failure" in
  Alcotest.(check bool) "dummy span" true (Loc.is_dummy d2.D.span)

(* max_errors = 0 bails after one diagnostic; the give-up event still
   covers the rest of the input. *)
let test_max_errors () =
  let l = List.find (fun l -> l.Lang.name = "json") langs in
  let eng = R.make (P.make (Lang.grammar l)) in
  let toks = Lang.tokenize_exn l "} } { ] [" in
  let o = R.run ~verify_measure:true ~max_errors:0 eng toks in
  Alcotest.(check int) "one event" 1 (List.length o.R.events);
  match o.R.verdict with
  | R.Recovered t -> Alcotest.(check bool) "errors" true (Tree.has_errors t)
  | _ -> Alcotest.fail "expected Recovered"

let () =
  Alcotest.run "recover"
    [
      ( "differential",
        [
          Alcotest.test_case "language corpora are conservative" `Quick
            test_corpus_conservative;
          Alcotest.test_case "corpus mutants recover" `Quick
            test_corpus_mutants;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_random_grammars; prop_spans ] );
      ( "unit",
        [
          Alcotest.test_case "lex_diag parses positions" `Quick test_lex_diag;
          Alcotest.test_case "max_errors bails early" `Quick test_max_errors;
        ] );
    ]
