(* Lint engine tests: one positive and one negative case per diagnostic
   code, span checks, severity policy, exit codes, JSON golden output, and
   lint-cleanliness of the four built-in languages. *)

open Costar_lint
module D = Diagnostic
module Loc = Costar_grammar.Loc

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let lint_grammar ?start src =
  match Costar_ebnf.Parse.rules_of_string src with
  | Error msg -> Alcotest.failf "grammar parse failed: %s" msg
  | Ok rules -> Lint.run { Lint.empty_input with rules = Some rules; start }

let lint_lexer src =
  match Costar_lex.Spec.srules_of_string src with
  | Error msg -> Alcotest.failf "lexer parse failed: %s" msg
  | Ok rules -> Lint.run { Lint.empty_input with lexer = Some rules }

let lint_both gsrc lsrc =
  match
    ( Costar_ebnf.Parse.rules_of_string gsrc,
      Costar_lex.Spec.srules_of_string lsrc )
  with
  | Ok rules, Ok lrules ->
    Lint.run
      { Lint.empty_input with rules = Some rules; lexer = Some lrules }
  | Error msg, _ | _, Error msg -> Alcotest.failf "parse failed: %s" msg

let has code ds = List.exists (fun d -> d.D.code = code) ds
let find code ds = List.find (fun d -> d.D.code = code) ds

let mentions code sub ds =
  List.exists
    (fun d ->
      d.D.code = code
      && (let all = String.concat "\n" (d.D.message :: d.D.notes) in
          let n = String.length sub in
          let rec at i =
            i + n <= String.length all
            && (String.sub all i n = sub || at (i + 1))
          in
          at 0))
    ds

(* --- G001 unreachable --------------------------------------------------- *)

let test_g001 () =
  let ds = lint_grammar "s : 'a' ;\ndead : 'b' ;" in
  check "positive" true (has "G001" ds);
  check "names the nt" true (mentions "G001" "`dead`" ds);
  check_int "span line" 2 (find "G001" ds).D.span.Loc.start_line;
  check "negative" false (has "G001" (lint_grammar "s : 'a' ;"))

(* A synthesized nonterminal inside an unreachable rule is folded into the
   parent diagnostic rather than reported separately. *)
let test_g001_synth_suppressed () =
  let ds = lint_grammar "s : 'a' ;\ndead : 'b'* ;" in
  check_int "one G001" 1
    (List.length (List.filter (fun d -> d.D.code = "G001") ds))

(* --- G002 unproductive -------------------------------------------------- *)

let test_g002 () =
  let ds = lint_grammar "s : 'a' | t ;\nt : 'x' t ;" in
  check "positive" true (has "G002" ds);
  check "is warning" true ((find "G002" ds).D.severity = D.Warning);
  check "negative" false (has "G002" (lint_grammar "s : 'a' ;"))

let test_g002_start_is_error () =
  let ds = lint_grammar "s : 'x' s ;" in
  check "positive" true (has "G002" ds);
  check "error on start" true ((find "G002" ds).D.severity = D.Error)

(* --- G003 left recursion ------------------------------------------------ *)

let test_g003_direct () =
  let ds = lint_grammar "s : s 'x' | 'y' ;" in
  check "positive" true (has "G003" ds);
  check "classified direct" true (mentions "G003" "direct" ds);
  check "witness" true (mentions "G003" "cycle: s -> s" ds);
  check "negative (right recursion)" false
    (has "G003" (lint_grammar "s : 'x' s | 'y' ;"))

let test_g003_indirect () =
  let ds = lint_grammar "a : b 'x' | 'z' ;\nb : a 'y' ;" in
  check "positive" true (has "G003" ds);
  check "classified indirect" true (mentions "G003" "indirect" ds);
  check "witness" true (mentions "G003" "cycle: a -> b -> a" ds);
  check_int "one diagnostic per cycle" 1
    (List.length (List.filter (fun d -> d.D.code = "G003") ds))

let test_g003_hidden () =
  (* n is nullable, so the recursion on a consumes no token first. *)
  let ds = lint_grammar "a : n a 'x' | 'z' ;\nn : 'w' | ;" in
  check "positive" true (has "G003" ds);
  check "classified hidden" true (mentions "G003" "hidden" ds);
  check "explains nullable prefix" true (mentions "G003" "nullable prefix" ds)

(* --- G004 / G005 LL(1) conflicts ---------------------------------------- *)

let test_g004 () =
  let ds = lint_grammar "s : 'a' 'b' | 'a' 'c' ;" in
  check "positive" true (has "G004" ds);
  check "is info" true ((find "G004" ds).D.severity = D.Info);
  check "lookahead named" true (mentions "G004" "'a'" ds);
  check "negative" false (has "G004" (lint_grammar "s : 'a' | 'b' ;"))

let test_g005 () =
  let ds = lint_grammar "s : a 'x' ;\na : 'x' | ;" in
  check "positive" true (has "G005" ds);
  check "negative" false (has "G005" (lint_grammar "s : 'a' | 'b' ;"))

(* --- G006 duplicate alternatives ---------------------------------------- *)

let test_g006 () =
  let ds = lint_grammar "s : 'a' | 'b' | 'a' ;" in
  check "positive" true (has "G006" ds);
  check "negative" false (has "G006" (lint_grammar "s : 'a' | 'b' ;"))

(* --- G007 nullable cycle ------------------------------------------------ *)

let test_g007 () =
  let ds = lint_grammar "a : b | 'x' ;\nb : a ;" in
  check "positive" true (has "G007" ds);
  check "witness" true (mentions "G007" "cycle: a -> b -> a" ds);
  (* Right recursion with an epsilon alternative is fine. *)
  check "negative" false (has "G007" (lint_grammar "s : 'a' s | ;"))

(* --- G008/G009/G010 desugar errors -------------------------------------- *)

let test_g008 () =
  let ds = lint_grammar "s : t 'x' ;" in
  check "positive" true (has "G008" ds);
  check "names rule and ref" true (mentions "G008" "`t`" ds);
  check_int "span col" 5 (find "G008" ds).D.span.Loc.start_col;
  check "negative" false (has "G008" (lint_grammar "s : t 'x' ;\nt : 'y' ;"))

let test_g009 () =
  let ds = lint_grammar "s : 'a' ;\ns : 'b' ;" in
  check "positive" true (has "G009" ds);
  check_int "span line" 2 (find "G009" ds).D.span.Loc.start_line;
  check "first site noted" true (mentions "G009" "first defined at 1:1" ds);
  check "negative" false (has "G009" (lint_grammar "s : 'a' ;\nt : 'b' ;"))

let test_g010 () =
  let ds = lint_grammar ~start:"nope" "s : 'a' ;" in
  check "positive" true (has "G010" ds);
  check "negative" false (has "G010" (lint_grammar ~start:"s" "s : 'a' ;"));
  (* Empty rule list is the other G010 case. *)
  let ds =
    Lint.run { Lint.empty_input with rules = Some []; start = Some "s" }
  in
  check "empty grammar" true (has "G010" ds)

(* --- L001 empty-string rule --------------------------------------------- *)

let test_l001 () =
  let ds = lint_lexer {| A : "a*" ; |} in
  check "positive" true (has "L001" ds);
  check "is error" true ((find "L001" ds).D.severity = D.Error);
  check "negative" false (has "L001" (lint_lexer {| A : "a+" ; |}))

(* --- L002 shadowed rule ------------------------------------------------- *)

let test_l002 () =
  let ds = lint_lexer {| ID : "[a-z]+" ; KW : "if" ; |} in
  check "positive" true (has "L002" ds);
  check "names the loser" true (mentions "L002" "`KW`" ds);
  (* Keyword-first is the standard fix. *)
  check "negative" false
    (has "L002" (lint_lexer {| KW : "if" ; ID : "[a-z]+" ; |}))

(* --- L003 / L004 grammar<->lexer consistency ----------------------------- *)

let test_l003 () =
  let ds = lint_both "s : ID 'x' ;" {| ID : "[a-z]+" ; |} in
  check "positive" true (has "L003" ds);
  check "names the terminal" true (mentions "L003" "'x'" ds);
  check "negative" false
    (has "L003" (lint_both "s : ID 'x' ;" {| ID : "[a-z]+" ; 'x' : "x" ; |}))

let test_l004 () =
  let ds = lint_both "s : ID ;" {| ID : "[a-z]+" ; NUM : "[0-9]+" ; |} in
  check "positive" true (has "L004" ds);
  check "names the rule" true (mentions "L004" "`NUM`" ds);
  (* skip rules are exempt. *)
  check "negative" false
    (has "L004" (lint_both "s : ID ;" {| ID : "[a-z]+" ; skip WS : " +" ; |}))

(* --- L005 duplicate rule names ------------------------------------------ *)

let test_l005 () =
  let ds = lint_lexer {| A : "a" ; A : "b" ; |} in
  check "positive" true (has "L005" ds);
  check "negative" false (has "L005" (lint_lexer {| A : "a" ; B : "b" ; |}))

(* --- Engine-level behavior ---------------------------------------------- *)

let test_registry_covers_codes () =
  (* Every code the engine can emit is registered, and codes are unique. *)
  let codes = List.map (fun r -> r.Lint.code) Lint.registry in
  check_int "unique codes" (List.length codes)
    (List.length (List.sort_uniq String.compare codes));
  List.iter
    (fun c -> check ("registered " ^ c) true (Lint.find_rule c <> None))
    [ "G001"; "G002"; "G003"; "G004"; "G005"; "G006"; "G007"; "G008";
      "G009"; "G010"; "L001"; "L002"; "L003"; "L004"; "L005" ]

let test_exit_codes () =
  let clean = lint_grammar "s : 'a' ;" in
  check_int "clean" 0 (Lint.exit_code clean);
  let warns = lint_grammar "s : 'a' ;\ndead : 'b' ;" in
  check_int "warnings gate" 1 (Lint.exit_code warns);
  check_int "max-warnings tolerates" 0 (Lint.exit_code ~max_warnings:5 warns);
  let errs = lint_grammar "s : s ;" in
  check_int "errors dominate" 2 (Lint.exit_code ~max_warnings:99 errs);
  (* Info diagnostics never affect the exit code. *)
  let infos = lint_grammar "s : 'a' 'b' | 'a' 'c' ;" in
  check "has infos" true (has "G004" infos);
  check_int "infos are free" 0 (Lint.exit_code infos)

let test_sorted_deterministic () =
  let ds = lint_grammar "s : 'a' ;\ndead : 'b' ;\ndead2 : 'c' ;" in
  let spans = List.map (fun d -> d.D.span.Loc.start_line) ds in
  check "document order" true (List.sort compare spans = spans)

let test_json_golden () =
  let ds = lint_grammar "s : 'a' | 'a' ;" in
  let expected =
    {|{
  "version": 1,
  "diagnostics": [
    {
      "code": "A001",
      "severity": "info",
      "span": {"start_line": 1, "start_col": 1, "end_line": 1, "end_col": 1},
      "message": "SLL and LL prediction can diverge on `s`: on some inputs every lookahead token is consumed with several alternatives still viable, so the runtime falls back to exact LL prediction",
      "notes": ["both viable to end of input immediately (before any token)", "alternative s -> 'a'", "alternative s -> 'a'"]
    },
    {
      "code": "A003",
      "severity": "warning",
      "span": {"start_line": 1, "start_col": 1, "end_line": 1, "end_col": 1},
      "message": "`s` is ambiguous: `a` has at least two parse trees (Earley-confirmed)",
      "notes": ["alternative s -> 'a'", "alternative s -> 'a'"]
    },
    {
      "code": "G004",
      "severity": "info",
      "span": {"start_line": 1, "start_col": 1, "end_line": 1, "end_col": 1},
      "message": "FIRST/FIRST LL(1) conflict at `s` on 'a': ALL(*) prediction is required here",
      "notes": ["candidate: s -> 'a'", "candidate: s -> 'a'"]
    },
    {
      "code": "G006",
      "severity": "warning",
      "span": {"start_line": 1, "start_col": 1, "end_line": 1, "end_col": 1},
      "message": "duplicate alternative for `s`: s -> 'a' appears more than once",
      "notes": ["every input matching s -> 'a' has at least two parse trees"]
    }
  ],
  "summary": {"errors": 0, "warnings": 2, "infos": 2}
}
|}
  in
  check_str "json" expected (Render.json ds)

let test_text_render () =
  let ds = lint_grammar "s : 'a' | 'a' ;" in
  let text = Render.text ds in
  check "has code tag" true
    (let sub = "warning[G006]" in
     let n = String.length sub in
     let rec at i =
       i + n <= String.length text && (String.sub text i n = sub || at (i + 1))
     in
     at 0);
  check_str "clean text" "no diagnostics\n" (Render.text (lint_grammar "s : 'a' ;"))

(* --- Built-in languages are lint-clean (errors/warnings; infos allowed) -- *)

let test_langs_clean () =
  List.iter
    (fun l ->
      let ds = Lint.lint_prebuilt (Costar_langs.Lang.grammar l) in
      let worst =
        List.filter
          (fun d -> d.D.severity = D.Error || d.D.severity = D.Warning)
          ds
      in
      Alcotest.(check (list string))
        (l.Costar_langs.Lang.name ^ " clean")
        []
        (List.map (fun d -> d.D.code ^ ": " ^ d.D.message) worst);
      check_int
        (l.Costar_langs.Lang.name ^ " exit 0")
        0 (Lint.exit_code ds))
    Costar_langs.Registry.all

(* The paper's point, as a lint assertion: json/xml/dot/minipy all need
   ALL(star) prediction somewhere, i.e. none is plain LL(1). *)
let test_langs_need_alls () =
  List.iter
    (fun l ->
      let ds = Lint.lint_prebuilt (Costar_langs.Lang.grammar l) in
      check
        (l.Costar_langs.Lang.name ^ " has LL(1) conflicts")
        true
        (has "G004" ds || has "G005" ds))
    Costar_langs.Registry.all

let suite =
  [
    Alcotest.test_case "G001 unreachable" `Quick test_g001;
    Alcotest.test_case "G001 synth suppressed" `Quick test_g001_synth_suppressed;
    Alcotest.test_case "G002 unproductive" `Quick test_g002;
    Alcotest.test_case "G002 start is error" `Quick test_g002_start_is_error;
    Alcotest.test_case "G003 direct" `Quick test_g003_direct;
    Alcotest.test_case "G003 indirect" `Quick test_g003_indirect;
    Alcotest.test_case "G003 hidden" `Quick test_g003_hidden;
    Alcotest.test_case "G004 first/first" `Quick test_g004;
    Alcotest.test_case "G005 first/follow" `Quick test_g005;
    Alcotest.test_case "G006 duplicate alts" `Quick test_g006;
    Alcotest.test_case "G007 nullable cycle" `Quick test_g007;
    Alcotest.test_case "G008 undefined ref" `Quick test_g008;
    Alcotest.test_case "G009 duplicate rule" `Quick test_g009;
    Alcotest.test_case "G010 bad start" `Quick test_g010;
    Alcotest.test_case "L001 empty match" `Quick test_l001;
    Alcotest.test_case "L002 shadowed" `Quick test_l002;
    Alcotest.test_case "L003 missing terminal" `Quick test_l003;
    Alcotest.test_case "L004 unknown kind" `Quick test_l004;
    Alcotest.test_case "L005 duplicate name" `Quick test_l005;
    Alcotest.test_case "registry" `Quick test_registry_covers_codes;
    Alcotest.test_case "exit codes" `Quick test_exit_codes;
    Alcotest.test_case "deterministic order" `Quick test_sorted_deterministic;
    Alcotest.test_case "json golden" `Quick test_json_golden;
    Alcotest.test_case "text render" `Quick test_text_render;
    Alcotest.test_case "built-in languages clean" `Quick test_langs_clean;
    Alcotest.test_case "built-in languages need ALL(star)" `Quick
      test_langs_need_alls;
  ]

let () = Alcotest.run "costar_lint" [ ("lint", suite) ]
