(* The worklist dataflow engine (lib/analysis_flow) against its oracles:

   - differential: every fact agrees with the iterated whole-grammar passes
     of Costar_grammar.Analysis, on the four built-in languages and on
     random grammars (including left-recursive and unproductive ones);
   - witnesses: each [*_witness] chain exists exactly when the fact holds,
     and replaying a FIRST justification chain yields a concrete sentence
     that the Earley recognizer accepts from the nonterminal;
   - semantics: FIRST/FOLLOW membership reconfirmed against brute-force
     derivation sampling — every sampled sentence's first terminal is in
     FIRST(start), and every adjacent pair inside a sampled sentential
     form respects FOLLOW. *)

open Costar_grammar
open Costar_grammar.Symbols
module Flow = Costar_flow.Flow
module Bitset = Costar_flow.Bitset

let check = Alcotest.(check bool)

let set_to_string g s =
  "{ "
  ^ String.concat " " (List.map (Names.terminal g) (Int_set.elements s))
  ^ " }"

(* Every fact of the flow engine equals the corresponding fact of the
   iterated analysis; raises on the first mismatch. *)
let agree g =
  let anl = Analysis.make g in
  let flow = Flow.make g in
  let expect_set what x a b =
    if not (Int_set.equal a b) then
      Alcotest.failf "%s mismatch on `%s`: flow %s vs analysis %s" what
        (Names.nonterminal g x) (set_to_string g a) (set_to_string g b)
  in
  for x = 0 to Grammar.num_nonterminals g - 1 do
    let expect what a b =
      if a <> b then
        Alcotest.failf "%s mismatch on `%s`" what (Names.nonterminal g x)
    in
    expect "nullable" (Flow.nullable flow x) (Analysis.nullable anl x);
    expect "follow_end" (Flow.follow_end flow x) (Analysis.follow_end anl x);
    expect "reachable" (Flow.reachable flow x) (Analysis.reachable anl x);
    expect "productive" (Flow.productive flow x) (Analysis.productive anl x);
    expect_set "first" x (Flow.first_set flow x) (Analysis.first anl x);
    expect_set "follow" x (Flow.follow_set flow x) (Analysis.follow anl x);
    expect_set "sync" x
      (Flow.sync_set flow x)
      (Int_set.union (Analysis.first anl x) (Analysis.follow anl x))
  done;
  (flow, anl)

let test_langs_differential () =
  List.iter
    (fun name ->
      match Costar_langs.Registry.find name with
      | None -> Alcotest.failf "missing built-in language %s" name
      | Some l -> ignore (agree (Costar_langs.Lang.grammar l)))
    [ "json"; "xml"; "dot"; "minipy" ]

(* The fixture of test_analysis.ml: nullable chains, FOLLOW through
   nullable suffixes, an unreachable-free grammar. *)
let fixture =
  Grammar.define ~start:"S"
    [
      ("S", [ [ Grammar.n "A"; Grammar.n "B"; Grammar.t "z" ] ]);
      ("A", [ []; [ Grammar.t "a" ] ]);
      ("B", [ [ Grammar.n "A"; Grammar.t "b" ]; [ Grammar.n "C" ] ]);
      ("C", [ [ Grammar.t "c"; Grammar.n "C" ]; [] ]);
    ]

let test_fixture_facts () =
  let flow, _ = agree fixture in
  let tm name = Option.get (Grammar.terminal_of_name fixture name) in
  let nt name = Option.get (Grammar.nonterminal_of_name fixture name) in
  check "A nullable" true (Flow.nullable flow (nt "A"));
  check "S not nullable" false (Flow.nullable flow (nt "S"));
  check "facts counted" true (Flow.facts flow > 0);
  (* sync(C) = FIRST(C) ∪ FOLLOW(C) = {c} ∪ {z} *)
  check "sync C" true
    (Int_set.equal
       (Flow.sync_set flow (nt "C"))
       (Int_set.of_list [ tm "c"; tm "z" ]))

let prop_random_differential =
  QCheck.Test.make ~count:500 ~name:"flow = iterated analysis (random)"
    (QCheck.make ~print:(Fmt.str "%a" Grammar.pp) Util.gen_grammar)
    (fun g ->
      ignore (agree g);
      true)

(* Witness chains exist exactly when the fact holds, and name only real
   productions of the grammar. *)
let prop_witness_presence =
  QCheck.Test.make ~count:500 ~name:"witnesses iff facts"
    (QCheck.make ~print:(Fmt.str "%a" Grammar.pp) Util.gen_grammar)
    (fun g ->
      let flow = Flow.make g in
      let ok = ref true in
      for x = 0 to Grammar.num_nonterminals g - 1 do
        ok :=
          !ok
          && Option.is_some (Flow.nullable_witness flow x)
             = Flow.nullable flow x
          && Option.is_some (Flow.reachable_witness flow x)
             = Flow.reachable flow x
          && Option.is_some (Flow.productive_witness flow x)
             = Flow.productive flow x;
        for a = 0 to Grammar.num_terminals g - 1 do
          ok :=
            !ok
            && Option.is_some (Flow.first_witness flow x a)
               = Bitset.mem (Flow.first flow x) a
            && Option.is_some (Flow.follow_witness flow x a)
               = Bitset.mem (Flow.follow flow x) a
        done
      done;
      !ok)

(* Replaying a FIRST justification chain yields a real sentence: it starts
   with the queried terminal and the Earley recognizer accepts it from the
   queried nonterminal.  (first_word may be None when the completing suffix
   is unproductive; in a fully productive grammar it must exist.) *)
let prop_first_word_earley =
  QCheck.Test.make ~count:200 ~name:"first_word is Earley-accepted"
    (QCheck.make ~print:(Fmt.str "%a" Grammar.pp) Util.gen_grammar)
    (fun g ->
      let anl = Analysis.make g in
      let flow = Flow.make g in
      let all_productive =
        let ok = ref true in
        for x = 0 to Grammar.num_nonterminals g - 1 do
          ok := !ok && Analysis.productive anl x
        done;
        !ok
      in
      let ok = ref true in
      for x = 0 to Grammar.num_nonterminals g - 1 do
        for a = 0 to Grammar.num_terminals g - 1 do
          if Bitset.mem (Flow.first flow x) a then
            match Flow.first_word flow anl x a with
            | None -> if all_productive then ok := false
            | Some w ->
              let starts = match w with b :: _ -> b = a | [] -> false in
              let toks =
                List.map (fun b -> Token.make b (Grammar.terminal_name g b)) w
              in
              ok :=
                !ok && starts
                && Costar_earley.Recognizer.accepts_sym g x toks
        done
      done;
      !ok)

(* Brute-force semantic check of FIRST and FOLLOW: sample leftmost
   derivations; the first terminal of every sampled sentence of [x] is in
   FIRST(x), and in every sampled sentential form, a terminal directly
   following an occurrence of [x] (across a nullable gap) lands in
   FOLLOW(x). *)
let prop_sampled_sentences_respect_first =
  QCheck.Test.make ~count:300 ~name:"sampled sentences start in FIRST(start)"
    (QCheck.make ~print:(Fmt.str "%a" Grammar.pp) Util.gen_grammar)
    (fun g ->
      let flow = Flow.make g in
      let rand = Random.State.make [| 42 |] in
      let ok = ref true in
      for _ = 1 to 20 do
        match Util.random_sentence g rand with
        | Some (first :: _) ->
          let a = Option.get (Grammar.terminal_of_name g first) in
          ok := !ok && Bitset.mem (Flow.first flow (Grammar.start g)) a
        | Some [] | None -> ()
      done;
      !ok)

(* FOLLOW soundness on random sentential forms: expand the start symbol a
   few random steps; wherever ... x γ appears with FIRST(γ) ∋ a directly
   (through nullable prefixes of γ), a must be in FOLLOW(x) — checked for
   the leftmost nonterminal of each form to keep the walk cheap. *)
let prop_sentential_follow =
  QCheck.Test.make ~count:300 ~name:"sentential forms respect FOLLOW"
    (QCheck.make ~print:(Fmt.str "%a" Grammar.pp) Util.gen_grammar)
    (fun g ->
      let flow = Flow.make g in
      let rand = Random.State.make [| 7 |] in
      let ok = ref true in
      let rec step fuel form =
        if fuel > 0 then begin
          (* Check every NT occurrence against its right context. *)
          let rec scan = function
            | [] -> ()
            | T _ :: rest -> scan rest
            | NT x :: rest ->
              Bitset.iter
                (fun a ->
                  if not (Bitset.mem (Flow.follow flow x) a) then ok := false)
                (Flow.first_seq flow rest);
              scan rest
          in
          scan form;
          (* Expand the leftmost nonterminal, if any. *)
          let rec expand before = function
            | [] -> ()
            | T _ :: rest -> expand (before + 1) rest
            | NT x :: _ -> (
              match Grammar.prods_of g x with
              | [] -> ()
              | prods ->
                let ix =
                  List.nth prods (Random.State.int rand (List.length prods))
                in
                let rhs = (Grammar.prod g ix).Grammar.rhs in
                let prefix = List.filteri (fun j _ -> j < before) form in
                let suffix = List.filteri (fun j _ -> j > before) form in
                step (fuel - 1) (prefix @ rhs @ suffix))
          in
          expand 0 form
        end
      in
      for _ = 1 to 5 do
        step 8 [ NT (Grammar.start g) ]
      done;
      !ok)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_random_differential;
      prop_witness_presence;
      prop_first_word_earley;
      prop_sampled_sentences_respect_first;
      prop_sentential_follow;
    ]

let suite =
  [
    Alcotest.test_case "built-in languages differential" `Quick
      test_langs_differential;
    Alcotest.test_case "fixture facts" `Quick test_fixture_facts;
  ]
  @ props

let () = Alcotest.run "costar_flow" [ ("flow", suite) ]
