(* Additional core-parser coverage: scale, error reporting, API surface,
   robustness, and behaviours at the specification's edges. *)

open Costar_grammar
open Costar_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let list_grammar =
  (* list -> eps | 'x' list : right recursion builds an O(n)-deep stack. *)
  Grammar.define ~start:"L" [ ("L", [ []; [ Grammar.t "x"; Grammar.n "L" ] ]) ]

let test_deep_input () =
  let n = 30_000 in
  let w = List.init n (fun _ -> Grammar.token list_grammar "x" "x") in
  match Parser.parse list_grammar w with
  | Parser.Unique v ->
    check_int "width" n (Tree.width v);
    check_int "depth" (n + 1) (Tree.depth v);
    check_int "yield length" n (List.length (Tree.yield v))
  | r -> Alcotest.failf "expected Unique, got %a" (Parser.pp_result list_grammar) r

let test_reject_position () =
  let g =
    Grammar.define ~start:"S"
      [ ("S", [ [ Grammar.t "a"; Grammar.t "b" ] ]) ]
  in
  let w =
    [ Grammar.token ~line:3 ~col:7 g "a" "a"; Grammar.token ~line:3 ~col:9 g "a" "a" ]
  in
  match Parser.parse g w with
  | Parser.Reject msg ->
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    check "mentions expected terminal" true (contains msg "'b'");
    check "mentions line" true (contains msg "line 3");
    check "mentions column" true (contains msg "column 9")
  | r -> Alcotest.failf "expected Reject, got %a" (Parser.pp_result g) r

let test_leftover_input_rejected () =
  let g = Grammar.define ~start:"S" [ ("S", [ [ Grammar.t "a" ] ]) ] in
  match Parser.parse g (Grammar.tokens g [ "a"; "a" ]) with
  | Parser.Reject msg ->
    check "mentions remaining input" true
      (String.length msg > 0)
  | r -> Alcotest.failf "expected Reject, got %a" (Parser.pp_result g) r

let test_run_idempotent () =
  let p = Parser.make list_grammar in
  let w = Grammar.tokens list_grammar [ "x"; "x"; "x" ] in
  match Parser.run p w, Parser.run p w with
  | Parser.Unique v1, Parser.Unique v2 -> check "same tree" true (Tree.equal v1 v2)
  | _ -> Alcotest.fail "expected Unique twice"

let test_empty_cache_equivalent () =
  let p = Parser.make list_grammar in
  let w = Grammar.tokens list_grammar [ "x"; "x" ] in
  let r1 = Parser.run p w in
  let r2, _ = Parser.run_with_cache p (Cache.create (Parser.analysis p)) w in
  match r1, r2 with
  | Parser.Unique v1, Parser.Unique v2 -> check "same tree" true (Tree.equal v1 v2)
  | _ -> Alcotest.fail "expected Unique twice"

let test_unreachable_left_recursion_harmless () =
  (* The grammar is statically left-recursive (in a dead rule), but parses
     that never touch the cycle still succeed: the correctness theorems
     assume LR-freeness, yet the implementation degrades gracefully. *)
  let g =
    Grammar.define ~start:"S"
      [
        ("S", [ [ Grammar.t "a" ] ]);
        ("Dead", [ [ Grammar.n "Dead"; Grammar.t "b" ] ]);
      ]
  in
  check "statically LR" true (Left_recursion.check g <> Ok ());
  match Parser.parse g (Grammar.tokens g [ "a" ]) with
  | Parser.Unique _ -> ()
  | r -> Alcotest.failf "expected Unique, got %a" (Parser.pp_result g) r

let test_empty_input_non_nullable () =
  let g = Grammar.define ~start:"S" [ ("S", [ [ Grammar.t "a" ] ]) ] in
  match Parser.parse g [] with
  | Parser.Reject _ -> ()
  | r -> Alcotest.failf "expected Reject, got %a" (Parser.pp_result g) r

let test_foreign_terminal_rejected () =
  (* Tokens whose terminal id belongs to no grammar terminal cannot crash
     the parser; they are ordinary mismatches. *)
  let g = Grammar.define ~start:"S" [ ("S", [ [ Grammar.t "a" ] ]) ] in
  let alien = Token.make 9999 "???" in
  match Parser.parse g [ alien ] with
  | Parser.Reject _ -> ()
  | r -> Alcotest.failf "expected Reject, got %a" (Parser.pp_result g) r

let test_wide_alternation () =
  (* 40 alternatives with distinct leading terminals: every one must be
     predicted correctly in one token. *)
  let names = List.init 40 (fun i -> Printf.sprintf "t%02d" i) in
  let g =
    Grammar.define ~start:"S"
      [ ("S", List.map (fun name -> [ Grammar.t name; Grammar.t "end" ]) names) ]
  in
  List.iter
    (fun name ->
      match Parser.parse g (Grammar.tokens g [ name; "end" ]) with
      | Parser.Unique (Tree.Node (_, [ Tree.Leaf tok; _ ])) ->
        Alcotest.(check string) "right branch" name (Token.lexeme tok)
      | r -> Alcotest.failf "%s: unexpected %a" name (Parser.pp_result g) r)
    names

let test_long_lookahead_decision () =
  (* S -> A 'x' | A 'y' with A -> 'a' A | eps: the decision for S scans
     the entire run of 'a's; still linear and correct. *)
  let g =
    Grammar.define ~start:"S"
      [
        ("S", [ [ Grammar.n "A"; Grammar.t "x" ]; [ Grammar.n "A"; Grammar.t "y" ] ]);
        ("A", [ [ Grammar.t "a"; Grammar.n "A" ]; [] ]);
      ]
  in
  let w = List.init 2000 (fun _ -> "a") @ [ "y" ] in
  match Parser.parse g (Grammar.tokens g w) with
  | Parser.Unique v -> check_int "width" 2001 (Tree.width v)
  | r -> Alcotest.failf "expected Unique, got %a" (Parser.pp_result g) r

let test_machine_accessors () =
  let p = Parser.make list_grammar in
  let env = Parser.env p in
  let st = Machine.init env (Grammar.tokens list_grammar [ "x" ]) in
  check_int "initial height" 1 (Machine.height st);
  check_int "initial conts" 1 (List.length (Machine.conts st));
  check "initial state well-formed" true (Machine.stacks_wf env st);
  match Machine.step env st with
  | Machine.Step_cont st' ->
    check_int "after push" 2 (Machine.height st');
    check "still well-formed" true (Machine.stacks_wf env st')
  | _ -> Alcotest.fail "expected Step_cont"

let test_all_rhs_orders_respected () =
  (* Ambiguity resolution commits to the first viable alternative in
     grammar order (the ALL-star policy). *)
  let g1 =
    Grammar.define ~start:"S"
      [
        ("S", [ [ Grammar.n "X" ]; [ Grammar.n "Y" ] ]);
        ("X", [ [ Grammar.t "a" ] ]);
        ("Y", [ [ Grammar.t "a" ] ]);
      ]
  in
  let g2 =
    Grammar.define ~start:"S"
      [
        ("S", [ [ Grammar.n "Y" ]; [ Grammar.n "X" ] ]);
        ("X", [ [ Grammar.t "a" ] ]);
        ("Y", [ [ Grammar.t "a" ] ]);
      ]
  in
  let top g =
    match Parser.parse g (Grammar.tokens g [ "a" ]) with
    | Parser.Ambig (Tree.Node (_, [ Tree.Node (x, _) ])) ->
      Grammar.nonterminal_name g x
    | r -> Alcotest.failf "unexpected %a" (Parser.pp_result g) r
  in
  Alcotest.(check string) "first alternative (X first)" "X" (top g1);
  Alcotest.(check string) "first alternative (Y first)" "Y" (top g2)

let test_interior_ambiguity_detected () =
  (* Ambiguity deep inside the derivation — not at the start symbol — is
     still detected and propagated to the final label. *)
  let g =
    Grammar.define ~start:"S"
      [
        ("S", [ [ Grammar.t "("; Grammar.n "M"; Grammar.t ")" ] ]);
        ("M", [ [ Grammar.n "X" ]; [ Grammar.n "Y" ] ]);
        ("X", [ [ Grammar.t "a" ] ]);
        ("Y", [ [ Grammar.t "a" ] ]);
      ]
  in
  match Parser.parse g (Grammar.tokens g [ "("; "a"; ")" ]) with
  | Parser.Ambig _ -> ()
  | r -> Alcotest.failf "expected Ambig, got %a" (Parser.pp_result g) r

let test_ambiguity_flag_not_sticky_across_runs () =
  let g =
    Grammar.define ~start:"S"
      [
        ("S", [ [ Grammar.n "X"; Grammar.t "u" ]; [ Grammar.n "X"; Grammar.t "v" ] ]);
        ("X", [ [ Grammar.t "a" ] ]);
      ]
  in
  let p = Parser.make g in
  (* This grammar is unambiguous; repeated runs (warming caches) must keep
     saying Unique. *)
  for _ = 1 to 3 do
    match Parser.run p (Grammar.tokens g [ "a"; "v" ]) with
    | Parser.Unique _ -> ()
    | r -> Alcotest.failf "expected Unique, got %a" (Parser.pp_result g) r
  done

let test_null_ambiguity () =
  (* Two distinct epsilon derivations: ambiguity without any tokens. *)
  let g =
    Grammar.define ~start:"S"
      [
        ("S", [ [ Grammar.n "X" ]; [ Grammar.n "Y" ] ]);
        ("X", [ [] ]);
        ("Y", [ [] ]);
      ]
  in
  match Parser.parse g [] with
  | Parser.Ambig _ -> ()
  | r -> Alcotest.failf "expected Ambig, got %a" (Parser.pp_result g) r

let suite =
  [
    Alcotest.test_case "30k-token input" `Quick test_deep_input;
    Alcotest.test_case "reject carries position" `Quick test_reject_position;
    Alcotest.test_case "leftover input rejected" `Quick
      test_leftover_input_rejected;
    Alcotest.test_case "run is idempotent" `Quick test_run_idempotent;
    Alcotest.test_case "empty cache equivalent" `Quick
      test_empty_cache_equivalent;
    Alcotest.test_case "unreachable LR harmless" `Quick
      test_unreachable_left_recursion_harmless;
    Alcotest.test_case "empty input" `Quick test_empty_input_non_nullable;
    Alcotest.test_case "foreign terminal" `Quick test_foreign_terminal_rejected;
    Alcotest.test_case "wide alternation" `Quick test_wide_alternation;
    Alcotest.test_case "long-lookahead decision" `Quick
      test_long_lookahead_decision;
    Alcotest.test_case "machine accessors" `Quick test_machine_accessors;
    Alcotest.test_case "grammar-order commitment" `Quick
      test_all_rhs_orders_respected;
    Alcotest.test_case "interior ambiguity" `Quick
      test_interior_ambiguity_detected;
    Alcotest.test_case "flag not sticky" `Quick
      test_ambiguity_flag_not_sticky_across_runs;
    Alcotest.test_case "null ambiguity" `Quick test_null_ambiguity;
  ]

let () = Alcotest.run "costar_core_extra" [ ("core-extra", suite) ]
