(* Semantic-action layer tests (paper §8 extension). *)

open Costar_grammar
open Costar_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Sum grammar: S -> N | N '+' S *)
let g =
  Grammar.define ~start:"S"
    [
      ("S", [ [ Grammar.n "N" ]; [ Grammar.n "N"; Grammar.t "+"; Grammar.n "S" ] ]);
      ("N", [ [ Grammar.t "num" ] ]);
    ]

(* Tokens carry their value in the lexeme. *)
let tok v = Grammar.token g "num" (string_of_int v)
let plus = Grammar.token g "+" "+"

let sum_actions =
  {
    Semantics.on_token =
      (fun t -> if Token.lexeme t = "+" then 0 else int_of_string (Token.lexeme t));
    on_production = (fun _ kids -> List.fold_left ( + ) 0 kids);
  }

let test_sum () =
  let p = Parser.make g in
  (match Semantics.run p sum_actions [ tok 1; plus; tok 2; plus; tok 39 ] with
  | Semantics.Value v -> check_int "1+2+39" 42 v
  | _ -> Alcotest.fail "expected a value");
  match Semantics.run p sum_actions [ tok 7 ] with
  | Semantics.Value v -> check_int "singleton" 7 v
  | _ -> Alcotest.fail "expected a value"

let test_reject_propagates () =
  let p = Parser.make g in
  match Semantics.run p sum_actions [ tok 1; plus ] with
  | Semantics.Rejected _ -> ()
  | _ -> Alcotest.fail "expected Rejected"

let test_ambiguous_value () =
  let ag =
    Grammar.define ~start:"S"
      [
        ("S", [ [ Grammar.n "X" ]; [ Grammar.n "Y" ] ]);
        ("X", [ [ Grammar.t "a" ] ]);
        ("Y", [ [ Grammar.t "a" ] ]);
      ]
  in
  let p = Parser.make ag in
  let actions =
    {
      Semantics.on_token = (fun _ -> 1);
      on_production = (fun _ kids -> List.fold_left ( + ) 0 kids);
    }
  in
  match Semantics.run p actions (Grammar.tokens ag [ "a" ]) with
  | Semantics.Ambiguous_value 1 -> ()
  | Semantics.Ambiguous_value v -> Alcotest.failf "wrong value %d" v
  | _ -> Alcotest.fail "expected Ambiguous_value"

let test_production_identity () =
  (* Actions can dispatch on the production that built the node. *)
  let p = Parser.make g in
  let count_plus_nodes =
    {
      Semantics.on_token = (fun _ -> 0);
      on_production =
        (fun prod kids ->
          let here = if List.length prod.Grammar.rhs = 3 then 1 else 0 in
          here + List.fold_left ( + ) 0 kids);
    }
  in
  match
    Semantics.run p count_plus_nodes [ tok 1; plus; tok 2; plus; tok 3 ]
  with
  | Semantics.Value v -> check_int "two + nodes" 2 v
  | _ -> Alcotest.fail "expected a value"

let test_eval_malformed_tree () =
  (* A hand-built tree that matches no production is reported. *)
  let x =
    match Grammar.nonterminal_of_name g "S" with Some x -> x | None -> assert false
  in
  let bad = Tree.Node (x, [ Tree.Leaf plus ]) in
  match Semantics.eval g sum_actions bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an evaluation error"

let test_eval_agrees_with_manual_fold () =
  (* eval over the parser's tree = manual recursion over the same tree. *)
  let p = Parser.make g in
  let w = [ tok 5; plus; tok 6 ] in
  match Parser.run p w with
  | Parser.Unique v ->
    let manual =
      let rec go = function
        | Tree.Leaf t -> sum_actions.Semantics.on_token t
        | Tree.Node (_, kids) -> List.fold_left (fun a k -> a + go k) 0 kids
        | Tree.Error _ -> Alcotest.fail "plain engine produced an error node"
      in
      go v
    in
    (match Semantics.eval g sum_actions v with
    | Ok value -> check_int "agrees" manual value
    | Error msg -> Alcotest.fail msg)
  | _ -> Alcotest.fail "expected Unique"

let test_polymorphic_actions () =
  (* The same parse drives differently-typed analyses. *)
  let p = Parser.make g in
  let as_string =
    {
      Semantics.on_token = (fun t -> Token.lexeme t);
      on_production = (fun _ kids -> "(" ^ String.concat " " kids ^ ")");
    }
  in
  match Semantics.run p as_string [ tok 1; plus; tok 2 ] with
  | Semantics.Value s -> check "renders" true (s = "((1) + ((2)))");
  | _ -> Alcotest.fail "expected a value"

let suite =
  [
    Alcotest.test_case "sum evaluation" `Quick test_sum;
    Alcotest.test_case "reject propagates" `Quick test_reject_propagates;
    Alcotest.test_case "ambiguous value flagged" `Quick test_ambiguous_value;
    Alcotest.test_case "production identity" `Quick test_production_identity;
    Alcotest.test_case "malformed tree" `Quick test_eval_malformed_tree;
    Alcotest.test_case "eval = manual fold" `Quick
      test_eval_agrees_with_manual_fold;
    Alcotest.test_case "polymorphic actions" `Quick test_polymorphic_actions;
  ]

let () = Alcotest.run "costar_semantics" [ ("semantics", suite) ]
