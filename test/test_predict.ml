(* Prediction-mechanism unit tests: SLL closure/move, the stable-return
   (caller-fork) simulation, end-of-input accepting configurations, the
   DFA cache, LL exactness, and the adaptive failover. *)

open Costar_grammar
open Costar_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let nt g name =
  match Grammar.nonterminal_of_name g name with
  | Some x -> x
  | None -> Alcotest.failf "unknown nonterminal %s" name

let prod_ix g lhs k =
  (* k-th alternative (grammar order) of lhs *)
  List.nth (Grammar.prods_of g (nt g lhs)) k

let sll_predict g x w =
  let anl = Analysis.make g in
  snd (Sll.predict g anl (Cache.create anl) (nt g x) (Grammar.tokens g w))

let ll_predict g x conts w =
  let anl = Analysis.make g in
  Ll.predict g anl (nt g x) conts (Grammar.tokens g w)

(* Fig. 2 grammar *)
let fig2 =
  Grammar.define ~start:"S"
    [
      ("S", [ [ Grammar.n "A"; Grammar.t "c" ]; [ Grammar.n "A"; Grammar.t "d" ] ]);
      ("A", [ [ Grammar.t "a"; Grammar.n "A" ]; [ Grammar.t "b" ] ]);
    ]

let test_sll_fig2 () =
  (* Deciding S requires scanning past the A to see 'c' or 'd'. *)
  (match sll_predict fig2 "S" [ "a"; "b"; "d" ] with
  | Types.Unique_pred ix -> check_int "S -> A d" (prod_ix fig2 "S" 1) ix
  | _ -> Alcotest.fail "expected Unique");
  (match sll_predict fig2 "S" [ "b"; "c" ] with
  | Types.Unique_pred ix -> check_int "S -> A c" (prod_ix fig2 "S" 0) ix
  | _ -> Alcotest.fail "expected Unique");
  match sll_predict fig2 "S" [ "c" ] with
  | Types.Reject_pred -> ()
  | _ -> Alcotest.fail "expected Reject"

let test_sll_two_token_lookahead () =
  (* S -> A 'x' | A 'y' ; A -> 'a': the decision needs the token after A. *)
  let g =
    Grammar.define ~start:"S"
      [
        ("S", [ [ Grammar.n "A"; Grammar.t "x" ]; [ Grammar.n "A"; Grammar.t "y" ] ]);
        ("A", [ [ Grammar.t "a" ] ]);
      ]
  in
  (match sll_predict g "S" [ "a"; "x" ] with
  | Types.Unique_pred ix -> check_int "first" (prod_ix g "S" 0) ix
  | _ -> Alcotest.fail "expected Unique");
  match sll_predict g "S" [ "a"; "y" ] with
  | Types.Unique_pred ix -> check_int "second" (prod_ix g "S" 1) ix
  | _ -> Alcotest.fail "expected Unique"

let test_sll_accepting_at_eof () =
  (* A -> 'a' | 'a' 'b' inside S -> A: at <eof> after 'a', only the short
     alternative is in accepting position. *)
  let g =
    Grammar.define ~start:"S"
      [
        ("S", [ [ Grammar.n "A" ] ]);
        ("A", [ [ Grammar.t "a" ]; [ Grammar.t "a"; Grammar.t "b" ] ]);
      ]
  in
  (match sll_predict g "A" [ "a" ] with
  | Types.Unique_pred ix -> check_int "short alt" (prod_ix g "A" 0) ix
  | _ -> Alcotest.fail "expected Unique");
  match sll_predict g "A" [ "a"; "b" ] with
  | Types.Unique_pred ix -> check_int "long alt" (prod_ix g "A" 1) ix
  | _ -> Alcotest.fail "expected Unique"

let test_sll_follow_fork () =
  (* The classic case needing the stable-return simulation: deciding the
     list-continuation nonterminal requires knowing what may follow the
     list in its callers. *)
  let g =
    Grammar.define ~start:"S"
      [
        ("S", [ [ Grammar.t "["; Grammar.n "L"; Grammar.t "]" ] ]);
        ("L", [ [ Grammar.t "x" ]; [ Grammar.t "x"; Grammar.t ","; Grammar.n "L" ] ]);
      ]
  in
  (* After 'x', ']' must select the first alternative, ',' the second. *)
  (match sll_predict g "L" [ "x"; "]" ] with
  | Types.Unique_pred ix -> check_int "end of list" (prod_ix g "L" 0) ix
  | _ -> Alcotest.fail "expected Unique");
  match sll_predict g "L" [ "x"; ","; "x"; "]" ] with
  | Types.Unique_pred ix -> check_int "continue list" (prod_ix g "L" 1) ix
  | _ -> Alcotest.fail "expected Unique"

let test_sll_ambig_triggers_failover () =
  let g =
    Grammar.define ~start:"S"
      [
        ("S", [ [ Grammar.n "X" ]; [ Grammar.n "Y" ] ]);
        ("X", [ [ Grammar.t "a" ] ]);
        ("Y", [ [ Grammar.t "a" ] ]);
      ]
  in
  (match sll_predict g "S" [ "a" ] with
  | Types.Ambig_pred _ -> ()
  | _ -> Alcotest.fail "expected SLL Ambig");
  (* The exact LL check from the true start context confirms ambiguity. *)
  match ll_predict g "S" [ [] ] [ "a" ] with
  | Types.Ambig_pred ix -> check_int "first alternative" (prod_ix g "S" 0) ix
  | _ -> Alcotest.fail "expected LL Ambig"

let test_ll_context_sensitivity () =
  (* LL prediction sees the actual continuation: the same decision gives
     different answers under different stack continuations. *)
  let g =
    Grammar.define ~start:"S"
      [
        ("S", [ [ Grammar.n "A"; Grammar.t "x" ] ]);
        ("A", [ [ Grammar.t "a" ]; [ Grammar.t "a"; Grammar.t "x" ] ]);
      ]
  in
  let term name =
    match Grammar.terminal_of_name g name with
    | Some a -> a
    | None -> Alcotest.failf "unknown terminal %s" name
  in
  (* Input "a x": with the real continuation ['x'], only A -> 'a' lets the
     whole word parse. *)
  (match ll_predict g "A" [ [ Symbols.T (term "x") ] ] [ "a"; "x" ] with
  | Types.Unique_pred ix -> check_int "short" (prod_ix g "A" 0) ix
  | _ -> Alcotest.fail "expected Unique (short)");
  (* With an empty continuation, only A -> 'a' 'x' consumes everything. *)
  match ll_predict g "A" [ [] ] [ "a"; "x" ] with
  | Types.Unique_pred ix -> check_int "long" (prod_ix g "A" 1) ix
  | _ -> Alcotest.fail "expected Unique (long)"

let test_left_recursion_in_closure () =
  let g =
    Grammar.define ~start:"E"
      [ ("E", [ [ Grammar.n "E"; Grammar.t "+" ]; [ Grammar.t "n" ] ]) ]
  in
  match sll_predict g "E" [ "n" ] with
  | Types.Error_pred (Types.Left_recursive x) ->
    check_int "names E" (nt g "E") x
  | _ -> Alcotest.fail "expected Left_recursive"

let test_no_spurious_left_recursion () =
  (* S -> B B 'd' ; B -> eps | 'c' : expanding B twice along one closure
     path is legal once the first B has completed (visited snapshots must
     be restored on pop). *)
  let g =
    Grammar.define ~start:"S"
      [
        ("S", [ [ Grammar.n "B"; Grammar.n "B"; Grammar.t "d" ] ]);
        ("B", [ []; [ Grammar.t "c" ] ]);
      ]
  in
  (match sll_predict g "B" [ "d" ] with
  | Types.Error_pred _ -> Alcotest.fail "spurious left-recursion report"
  | _ -> ());
  match Parser.parse g (Grammar.tokens g [ "d" ]) with
  | Parser.Unique _ -> ()
  | r -> Alcotest.failf "expected Unique, got %a" (Parser.pp_result g) r

let test_cache_growth_and_reuse () =
  let anl = Analysis.make fig2 in
  let x = nt fig2 "S" in
  let w = Grammar.tokens fig2 [ "a"; "a"; "b"; "d" ] in
  let cache, _ = Sll.predict fig2 anl (Cache.create anl) x w in
  let states1 = Cache.num_states cache in
  let trans1 = Cache.num_transitions cache in
  check "states interned" true (states1 > 0);
  check "transitions cached" true (trans1 > 0);
  (* Re-predicting over the same prefix adds nothing. *)
  let cache2, _ = Sll.predict fig2 anl cache x w in
  check_int "no new states" states1 (Cache.num_states cache2);
  check_int "no new transitions" trans1 (Cache.num_transitions cache2)

let test_prepare () =
  let anl = Analysis.make fig2 in
  let x = nt fig2 "S" in
  let cache = Sll.prepare fig2 anl (Cache.create anl) x in
  check "init present" true (Cache.find_init cache x <> None);
  let deep = Sll.prepare ~deep:true fig2 anl (Cache.create anl) x in
  check "deep adds transitions" true (Cache.num_transitions deep > 0);
  (* Results are identical with or without preparation. *)
  let w = Grammar.tokens fig2 [ "b"; "d" ] in
  let _, r1 = Sll.predict fig2 anl (Cache.create anl) x w in
  let _, r2 = Sll.predict fig2 anl deep x w in
  check "prepared = unprepared" true (r1 = r2)

let test_closure_cached_consistency () =
  (* The memoized closure agrees with the direct closure. *)
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"closure_cached = closure"
       Util.arb_grammar_word (fun (g, _) ->
         let anl = Analysis.make g in
         List.for_all
           (fun x ->
             let configs = Sll.init_configs g anl x in
             let direct = Sll.closure g anl configs in
             let _, cached =
               Sll.closure_cached g anl (Cache.create anl) configs
             in
             match direct, cached with
             | Ok l1, Ok l2 ->
               List.length l1 = List.length l2
               && List.for_all2 (fun a b -> Config.compare_sll a b = 0) l1 l2
             | Error _, Error _ -> true
             | _ -> false)
           (List.init (Grammar.num_nonterminals g) Fun.id)))

let test_single_production_shortcut () =
  (* A single-alternative nonterminal is predicted without consulting the
     cache at all. *)
  let g =
    Grammar.define ~start:"S" [ ("S", [ [ Grammar.t "a"; Grammar.t "b" ] ]) ]
  in
  let anl = Analysis.make g in
  let cache, pred =
    Predict.adaptive_predict g anl (Cache.create anl) (nt g "S")
      (fun () -> [ [] ])
      (Grammar.tokens g [ "a"; "b" ])
  in
  (match pred with
  | Types.Unique_pred 0 -> ()
  | _ -> Alcotest.fail "expected Unique 0");
  check_int "cache untouched" 0 (Cache.num_states cache)

let test_no_productions_rejects () =
  let g =
    Grammar.define ~allow_undefined:true ~start:"S"
      [ ("S", [ [ Grammar.n "Ghost" ] ]) ]
  in
  match Parser.parse g (Grammar.tokens g []) with
  | Parser.Reject _ -> ()
  | r -> Alcotest.failf "expected Reject, got %a" (Parser.pp_result g) r

let suite =
  [
    Alcotest.test_case "SLL on fig2" `Quick test_sll_fig2;
    Alcotest.test_case "SLL two-token lookahead" `Quick
      test_sll_two_token_lookahead;
    Alcotest.test_case "SLL accepting at eof" `Quick test_sll_accepting_at_eof;
    Alcotest.test_case "SLL stable-return fork" `Quick test_sll_follow_fork;
    Alcotest.test_case "SLL ambig triggers LL failover" `Quick
      test_sll_ambig_triggers_failover;
    Alcotest.test_case "LL context sensitivity" `Quick
      test_ll_context_sensitivity;
    Alcotest.test_case "left recursion in closure" `Quick
      test_left_recursion_in_closure;
    Alcotest.test_case "no spurious left recursion" `Quick
      test_no_spurious_left_recursion;
    Alcotest.test_case "cache growth and reuse" `Quick
      test_cache_growth_and_reuse;
    Alcotest.test_case "prepare / deep prepare" `Quick test_prepare;
    Alcotest.test_case "closure_cached consistency" `Quick
      test_closure_cached_consistency;
    Alcotest.test_case "single-production shortcut" `Quick
      test_single_production_shortcut;
    Alcotest.test_case "no productions rejects" `Quick
      test_no_productions_rejects;
  ]

let () = Alcotest.run "costar_predict" [ ("predict", suite) ]
