(* The flat tables image (lib/analysis_predict/tables.ml): the differential
   gate of the `costar tables` subcommand as unit/property tests.

   - round-trip: decode(encode t) succeeds and re-encodes byte-equal;
   - reconstruction: decisions decoded from the image are structurally
     identical to the live analyzer's, and the bitset sections agree with
     the dataflow engine;
   - rejection: every truncation prefix and byte corruption yields a typed
     error (never an exception, never a silently wrong table), wrong-
     version and wrong-grammar images are refused by the header checks. *)

open Costar_grammar
module Flow = Costar_flow.Flow
module Bitset = Costar_flow.Bitset
module Analyze = Costar_predict_analysis.Analyze
module Tables = Costar_predict_analysis.Tables

let check = Alcotest.(check bool)

let build ?(k = Analyze.default_k) ?(oracle = true) g =
  let flow = Flow.make g in
  let r = Analyze.analyze ~k ~oracle g in
  (flow, r, Tables.build g flow r)

let lang name =
  match Costar_langs.Registry.find name with
  | Some l -> Costar_langs.Lang.grammar l
  | None -> Alcotest.failf "missing built-in language %s" name

let langs = [ "json"; "xml"; "dot"; "minipy" ]

let test_roundtrip () =
  List.iter
    (fun name ->
      let g = lang name in
      let _, _, t = build g in
      let bytes = Tables.encode t in
      match Tables.decode ~expect_fingerprint:(Grammar.fingerprint g) bytes with
      | Error e -> Alcotest.failf "%s: decode failed: %s" name
                     (Tables.error_to_string e)
      | Ok t' ->
        check (name ^ " byte-equal") true (Tables.encode t' = bytes);
        check (name ^ " fingerprint") true
          (Tables.fingerprint t' = Grammar.fingerprint g))
    langs

let test_decisions_identical () =
  List.iter
    (fun name ->
      let g = lang name in
      let _, r, t = build g in
      let t' = Result.get_ok (Tables.decode (Tables.encode t)) in
      check (name ^ " decisions") true
        (Tables.same_decisions (Tables.decisions t') r.Analyze.decisions))
    langs

let test_sections_agree () =
  List.iter
    (fun name ->
      let g = lang name in
      let flow, _, t = build g in
      let t = Result.get_ok (Tables.decode (Tables.encode t)) in
      for x = 0 to Grammar.num_nonterminals g - 1 do
        let ok_set what got want =
          if got <> Bitset.elements want then
            Alcotest.failf "%s: %s row differs on `%s`" name what
              (Names.nonterminal g x)
        in
        check "nullable" (Flow.nullable flow x) (Tables.nullable t x);
        check "reachable" (Flow.reachable flow x) (Tables.reachable t x);
        check "productive" (Flow.productive flow x) (Tables.productive t x);
        check "follow_end" (Flow.follow_end flow x) (Tables.follow_end t x);
        ok_set "first" (Tables.first t x) (Flow.first flow x);
        ok_set "follow" (Tables.follow t x) (Flow.follow flow x);
        ok_set "sync" (Tables.sync t x) (Flow.sync flow x)
      done)
    langs

(* Every proper prefix of a valid image must be rejected with a typed
   error.  Exhaustive on json (small); strided on the others. *)
let test_truncation_rejected () =
  List.iter
    (fun (name, stride) ->
      let g = lang name in
      let _, _, t = build g in
      let bytes = Tables.encode t in
      let n = String.length bytes in
      let len = ref 0 in
      while !len < n do
        (match Tables.decode (String.sub bytes 0 !len) with
        | Ok _ -> Alcotest.failf "%s: %d-byte prefix accepted" name !len
        | Error _ -> ());
        len := !len + stride
      done)
    [ ("json", 1); ("minipy", 97) ]

(* Flipping any byte must be rejected: header bytes break the header
   checks, payload bytes break the FNV-1a checksum.  (The fingerprint line
   is only validated against an expectation, so the decode passes one.) *)
let test_corruption_rejected () =
  let g = lang "json" in
  let _, _, t = build g in
  let bytes = Tables.encode t in
  let fp = Grammar.fingerprint g in
  let i = ref 0 in
  while !i < String.length bytes do
    let b = Bytes.of_string bytes in
    Bytes.set b !i (Char.chr (Char.code (Bytes.get b !i) lxor 0xff));
    (match Tables.decode ~expect_fingerprint:fp (Bytes.to_string b) with
    | Ok _ -> Alcotest.failf "corrupted byte %d accepted" !i
    | Error _ -> ());
    i := !i + 3
  done

let test_header_checks () =
  let g = lang "json" in
  let _, _, t = build g in
  let bytes = Tables.encode t in
  (* Wrong magic. *)
  (match Tables.decode ("not-a-tables-image\n" ^ bytes) with
  | Error Tables.Bad_magic -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  (* Wrong version: bump the second line. *)
  let nl1 = String.index bytes '\n' in
  let nl2 = String.index_from bytes (nl1 + 1) '\n' in
  let v2 =
    String.sub bytes 0 (nl1 + 1)
    ^ "99\n"
    ^ String.sub bytes (nl2 + 1) (String.length bytes - nl2 - 1)
  in
  (match Tables.decode v2 with
  | Error (Tables.Bad_version "99") -> ()
  | _ -> Alcotest.fail "bad version accepted");
  (* Wrong grammar: decoding against another fingerprint. *)
  match
    Tables.decode ~expect_fingerprint:(Grammar.fingerprint (lang "xml")) bytes
  with
  | Error (Tables.Fingerprint_mismatch _) -> ()
  | _ -> Alcotest.fail "wrong fingerprint accepted"

(* Random grammars: round-trip byte-equal and decisions identical, with
   the oracle off and a small k to keep the analyzer cheap. *)
let prop_random_roundtrip =
  QCheck.Test.make ~count:100 ~name:"random grammars round-trip"
    (QCheck.make ~print:(Fmt.str "%a" Grammar.pp) Util.gen_grammar)
    (fun g ->
      let _, r, t = build ~k:3 ~oracle:false g in
      let bytes = Tables.encode t in
      match Tables.decode ~expect_fingerprint:(Grammar.fingerprint g) bytes with
      | Error _ -> false
      | Ok t' ->
        Tables.encode t' = bytes
        && Tables.same_decisions (Tables.decisions t') r.Analyze.decisions)

let suite =
  [
    Alcotest.test_case "round-trip byte-equal (4 langs)" `Quick test_roundtrip;
    Alcotest.test_case "decisions reconstruct identically" `Quick
      test_decisions_identical;
    Alcotest.test_case "bitset sections match the dataflow" `Quick
      test_sections_agree;
    Alcotest.test_case "every truncation rejected" `Quick
      test_truncation_rejected;
    Alcotest.test_case "corrupted bytes rejected" `Quick
      test_corruption_rejected;
    Alcotest.test_case "header checks" `Quick test_header_checks;
    QCheck_alcotest.to_alcotest prop_random_roundtrip;
  ]

let () = Alcotest.run "costar_tables" [ ("tables", suite) ]
