(* Termination-measure tests (paper §4.2–4.3): the digit representation of
   stackScore, the lexicographic order, and the per-operation Lemmas 4.3
   and 4.4 checked on concrete machine traces. *)

open Costar_grammar
open Costar_grammar.Symbols
open Costar_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fig2 =
  Grammar.define ~start:"S"
    [
      ("S", [ [ Grammar.n "A"; Grammar.t "c" ]; [ Grammar.n "A"; Grammar.t "d" ] ]);
      ("A", [ [ Grammar.t "a"; Grammar.n "A" ]; [ Grammar.t "b" ] ]);
    ]

let nt name =
  match Grammar.nonterminal_of_name fig2 name with
  | Some x -> x
  | None -> assert false

let test_score_representation () =
  (* base = 1 + maxRhsLen = 3; U = {S, A}; empty visited set: e0 = 2.
     A single frame holding one symbol scores 1 * 3^2: digits [0;0;1]. *)
  let s = Measure.stack_score fig2 ~visited:Int_set.empty [ [ NT (nt "S") ] ] in
  check_int "base" 3 s.Measure.base;
  Alcotest.(check (array int)) "digits" [| 0; 0; 1 |] s.Measure.digits

let test_score_visited_shifts_exponent () =
  (* With S visited, |U \ V| = 1: the same frame scores 1 * 3^1. *)
  let s =
    Measure.stack_score fig2
      ~visited:(Int_set.singleton (nt "S"))
      [ [ NT (nt "A") ] ]
  in
  Alcotest.(check (array int)) "digits" [| 0; 1 |] s.Measure.digits

let test_score_compare () =
  let score visited sufs = Measure.stack_score fig2 ~visited sufs in
  let empty = Int_set.empty in
  (* Two symbols in one frame > one symbol in the same position. *)
  check "2 syms > 1 sym" true
    (Measure.compare_score
       (score empty [ [ T 0; T 1 ] ])
       (score empty [ [ T 0 ] ])
    > 0);
  (* A deeper frame weighs more than a shallower one. *)
  check "lower frame heavier" true
    (Measure.compare_score
       (score empty [ []; [ T 0 ] ])
       (score empty [ [ T 0 ] ])
    > 0);
  check "equal scores" true
    (Measure.compare_score (score empty [ [ T 0 ] ]) (score empty [ [ T 0 ] ])
    = 0)

let test_score_different_bases_rejected () =
  let g2 = Grammar.define ~start:"S" [ ("S", [ [] ]) ] in
  let s1 = Measure.stack_score fig2 ~visited:Int_set.empty [ [] ] in
  let s2 = Measure.stack_score g2 ~visited:Int_set.empty [ [] ] in
  check "different bases rejected" true
    (try
       ignore (Measure.compare_score s1 s2);
       false
     with Invalid_argument _ -> true)

let collect_states g w =
  let p = Parser.make g in
  let states = ref [] in
  let result =
    Parser.run_inspect p ~inspect:(fun st -> states := st :: !states) w
  in
  (List.rev !states, result)

(* Cursor-path twin of [collect_states]: the same trace through the
   zero-copy [run_word] entry point (array cursor instead of token list). *)
let collect_states_word g w =
  let p = Parser.make g in
  let states = ref [] in
  let result =
    Parser.run_inspect_word p
      ~inspect:(fun st -> states := st :: !states)
      (Word.of_tokens w)
  in
  (List.rev !states, result)

let test_fig2_trace_measures () =
  let w = Grammar.tokens fig2 [ "a"; "b"; "d" ] in
  let states, result = collect_states fig2 w in
  (match result with
  | Parser.Unique _ -> ()
  | _ -> Alcotest.fail "expected Unique");
  (* 10 machine states: s0..s9 as in Fig. 2 (one extra vs the figure's 8
     because our machine performs the final S-return and accept check as
     separate configurations). *)
  check_int "state count" 10 (List.length states);
  let measures = List.map (Measure.meas fig2) states in
  let rec strictly_decreasing = function
    | m1 :: (m2 :: _ as rest) ->
      Measure.compare m2 m1 < 0 && strictly_decreasing rest
    | _ -> true
  in
  check "strictly decreasing" true (strictly_decreasing measures);
  (* Token counts along the trace: consumed at s3, s5, s8. *)
  Alcotest.(check (list int))
    "token counts"
    [ 3; 3; 3; 2; 2; 1; 1; 1; 0; 0 ]
    (List.map (fun m -> m.Measure.tokens) measures)

let test_push_decreases_score () =
  (* Lemma 4.3: a push with constant token count strictly decreases the
     score component.  s0 -> s1 is the push of S. *)
  let w = Grammar.tokens fig2 [ "a"; "b"; "d" ] in
  let states, _ = collect_states fig2 w in
  match List.map (Measure.meas fig2) states with
  | m0 :: m1 :: _ ->
    check_int "tokens constant" m0.Measure.tokens m1.Measure.tokens;
    check "score decreases" true
      (Measure.compare_score m1.Measure.score m0.Measure.score < 0)
  | _ -> Alcotest.fail "trace too short"

let test_return_preserves_score_decreases_height () =
  (* Lemma 4.4: on a return the score does not increase and the height
     decreases.  In the Fig. 2 trace, s5 -> s6 is a return. *)
  let w = Grammar.tokens fig2 [ "a"; "b"; "d" ] in
  let states, _ = collect_states fig2 w in
  let m = List.map (Measure.meas fig2) states in
  let m5 = List.nth m 5 and m6 = List.nth m 6 in
  check_int "tokens constant" m5.Measure.tokens m6.Measure.tokens;
  check "score non-increasing" true
    (Measure.compare_score m6.Measure.score m5.Measure.score <= 0);
  check "height decreases" true (m6.Measure.height < m5.Measure.height)

let strictly_decreasing measures =
  let rec go = function
    | m1 :: (m2 :: _ as rest) -> Measure.compare m2 m1 < 0 && go rest
    | _ -> true
  in
  go measures

let test_fig2_cursor_trace_matches_list () =
  (* The cursor path must walk the identical machine trace: same states,
     same (strictly decreasing) measures, same result. *)
  let w = Grammar.tokens fig2 [ "a"; "b"; "d" ] in
  let list_states, list_result = collect_states fig2 w in
  let word_states, word_result = collect_states_word fig2 w in
  check_int "same state count" (List.length list_states)
    (List.length word_states);
  check "same result kind" true
    (match list_result, word_result with
    | Parser.Unique t1, Parser.Unique t2 -> Tree.equal t1 t2
    | _ -> false);
  let lm = List.map (Measure.meas fig2) list_states in
  let wm = List.map (Measure.meas fig2) word_states in
  List.iter2
    (fun m1 m2 ->
      check_int "tokens agree" m1.Measure.tokens m2.Measure.tokens;
      check "scores agree" true
        (Measure.compare_score m1.Measure.score m2.Measure.score = 0);
      check_int "heights agree" m1.Measure.height m2.Measure.height)
    lm wm;
  check "cursor trace strictly decreasing" true (strictly_decreasing wm)

(* Lemmas 4.2–4.4 as a property over random grammars, through the cursor
   path: along every [run_word] trace the measure strictly decreases, a
   consuming step resets the score ordering via the token component, and
   the trace is finite (the machine returned at all). *)
let prop_cursor_measure_decreases =
  QCheck.Test.make ~count:300
    ~name:"measure strictly decreases along run_word traces"
    Util.arb_grammar_word (fun (g, names) ->
      match Left_recursion.check g with
      | Error _ -> true
      | Ok () ->
        let w = Grammar.tokens g names in
        let states, _ = collect_states_word g w in
        let measures = List.map (Measure.meas g) states in
        strictly_decreasing measures)

(* And the cursor trace is measure-for-measure the list trace. *)
let prop_cursor_trace_equals_list_trace =
  QCheck.Test.make ~count:200
    ~name:"run_word trace measures = list-API trace measures"
    Util.arb_grammar_word (fun (g, names) ->
      match Left_recursion.check g with
      | Error _ -> true
      | Ok () ->
        let w = Grammar.tokens g names in
        let ls, _ = collect_states g w in
        let ws, _ = collect_states_word g w in
        List.length ls = List.length ws
        && List.for_all2
             (fun s1 s2 ->
               let m1 = Measure.meas g s1 and m2 = Measure.meas g s2 in
               m1.Measure.tokens = m2.Measure.tokens
               && Measure.compare_score m1.Measure.score m2.Measure.score = 0
               && m1.Measure.height = m2.Measure.height)
             ls ws)

let test_epsilon_grammar_base_clamped () =
  (* All-epsilon grammars have maxRhsLen = 0; the base is clamped to 2 so
     the bottom frame's digit stays valid. *)
  let g = Grammar.define ~start:"S" [ ("S", [ [] ]) ] in
  let s =
    Measure.stack_score g ~visited:Int_set.empty [ [ NT (Grammar.start g) ] ]
  in
  check_int "clamped base" 2 s.Measure.base

let suite =
  [
    Alcotest.test_case "score digit representation" `Quick
      test_score_representation;
    Alcotest.test_case "visited shifts exponents" `Quick
      test_score_visited_shifts_exponent;
    Alcotest.test_case "score comparison" `Quick test_score_compare;
    Alcotest.test_case "cross-grammar compare rejected" `Quick
      test_score_different_bases_rejected;
    Alcotest.test_case "fig2 trace measures" `Quick test_fig2_trace_measures;
    Alcotest.test_case "push decreases score (Lemma 4.3)" `Quick
      test_push_decreases_score;
    Alcotest.test_case "return keeps score, shrinks stack (Lemma 4.4)" `Quick
      test_return_preserves_score_decreases_height;
    Alcotest.test_case "epsilon grammar base clamp" `Quick
      test_epsilon_grammar_base_clamped;
    Alcotest.test_case "fig2 cursor trace = list trace" `Quick
      test_fig2_cursor_trace_matches_list;
  ]

let cursor_props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_cursor_measure_decreases; prop_cursor_trace_equals_list_trace ]

let () =
  Alcotest.run "costar_measure"
    [ ("measure", suite); ("measure-cursor", cursor_props) ]
