(* Property-based differential tests: the paper's theorems as executable
   properties over random grammars and words (DESIGN.md, Section 4).

   - Soundness (Thms 5.1, 5.6): returned trees satisfy the Fig. 3 derivation
     relation, and their Unique/Ambig labels agree with the capped
     derivation-count oracle.
   - Completeness (Thms 5.11, 5.12): the oracle accepts iff the parser does.
   - Error-free termination (Thm 5.8): no Error for statically
     non-left-recursive grammars.
   - Left-recursion detection soundness (Lemma 5.10): a LeftRecursive error
     always names a statically confirmed left-recursive nonterminal.
   - Lemmas 4.2-4.4: every machine step strictly decreases the well-founded
     measure.
   - StacksWf_I (Fig. 4): stack well-formedness is invariant. *)

open Costar_grammar
open Costar_core

let toks g names = Grammar.tokens g names

let prop_oracle_agreement =
  QCheck.Test.make ~count:1000 ~name:"parse result agrees with oracle"
    Util.arb_grammar_word (fun (g, w) ->
      let word = toks g w in
      let result = Parser.parse g word in
      match Left_recursion.check g with
      | Error lr_nts -> (
        (* Left-recursive grammar: no oracle comparison (the parser may
           legitimately error), but any tree must still be sound and any
           left-recursion report must be statically confirmed. *)
        match result with
        | Parser.Unique v | Parser.Ambig v ->
          Derivation.recognizes_start g word v
        | Parser.Reject _ -> true
        | Parser.Error (Types.Left_recursive x) -> List.mem x lr_nts
        | Parser.Error (Types.Invalid_state _) -> false)
      | Ok () -> (
        let count = Costar_earley.Count.count_trees ~cap:2 g word in
        match result with
        | Parser.Unique v ->
          count = 1 && Derivation.recognizes_start g word v
        | Parser.Ambig v ->
          count >= 2 && Derivation.recognizes_start g word v
        | Parser.Reject _ -> count = 0
        | Parser.Error _ -> false))

let prop_earley_agreement =
  QCheck.Test.make ~count:500 ~name:"recognizer agrees with counting oracle"
    Util.arb_grammar_word (fun (g, w) ->
      let word = toks g w in
      let earley = Costar_earley.Recognizer.accepts g word in
      let count = Costar_earley.Count.count_trees ~cap:2 g word in
      earley = (count > 0))

let prop_measure_decreases =
  QCheck.Test.make ~count:300 ~name:"steps decrease the measure (Lemma 4.2)"
    Util.arb_grammar_word (fun (g, w) ->
      let word = toks g w in
      let p = Parser.make g in
      let states = ref [] in
      let _ = Parser.run_inspect p ~inspect:(fun st -> states := st :: !states) word in
      (* [states] is newest-first; check successive pairs. *)
      let rec ok = function
        | s2 :: s1 :: rest ->
          Measure.compare (Measure.meas g s2) (Measure.meas g s1) < 0
          && ok (s1 :: rest)
        | _ -> true
      in
      ok !states)

let prop_stacks_wf =
  QCheck.Test.make ~count:300 ~name:"StacksWf_I is invariant (Fig. 4)"
    Util.arb_grammar_word (fun (g, w) ->
      let word = toks g w in
      let p = Parser.make g in
      let all_wf = ref true in
      let env = Parser.env p in
      let _ =
        Parser.run_inspect p
          ~inspect:(fun st -> all_wf := !all_wf && Machine.stacks_wf env st)
          word
      in
      !all_wf)

let prop_valid_sentences_accepted =
  (* Words sampled from the grammar itself parse successfully (for non-LR
     grammars): a direct completeness check that does not rely on the word
     generator's 50/50 mix. *)
  QCheck.Test.make ~count:500 ~name:"sampled sentences are accepted"
    (QCheck.make ~print:Util.print_case
       (QCheck.Gen.( >>= ) Util.gen_grammar (fun g ->
            fun st ->
             match Util.random_sentence g st with
             | Some w -> (g, w)
             | None -> (g, []))))
    (fun (g, w) ->
      match Left_recursion.check g with
      | Error _ -> true
      | Ok () -> (
        let word = toks g w in
        if not (Costar_earley.Recognizer.accepts g word) then true
        else
          match Parser.parse g word with
          | Parser.Unique v | Parser.Ambig v ->
            Derivation.recognizes_start g word v
          | Parser.Reject _ | Parser.Error _ -> false))

let prop_cache_reuse_stable =
  (* Running with a reused cache gives the same result as a fresh cache. *)
  QCheck.Test.make ~count:200 ~name:"warm cache does not change results"
    Util.arb_grammar_word (fun (g, w) ->
      let word = toks g w in
      let p = Parser.make g in
      let r1 = Parser.run p word in
      let _, cache =
        Parser.run_with_cache p (Cache.create (Parser.analysis p)) word
      in
      let r2, _ = Parser.run_with_cache p cache word in
      let same =
        match r1, r2 with
        | Parser.Unique v1, Parser.Unique v2 | Parser.Ambig v1, Parser.Ambig v2
          ->
          Tree.equal v1 v2
        | Parser.Reject _, Parser.Reject _ -> true
        | Parser.Error e1, Parser.Error e2 -> e1 = e2
        | _ -> false
      in
      same)

let prop_sll_overapproximates_ll =
  (* Direct check of the failover soundness argument (Lemma 5.4) at the
     start-symbol decision: when the word is genuinely in the language,
     neither SLL nor LL may reject the start decision, and if both commit
     to a Unique alternative it must be the same one.  (When no alternative
     is viable, SLL and LL may "uniquely" commit to different vacuous
     choices, so the comparison is only meaningful on accepted words.) *)
  QCheck.Test.make ~count:300 ~name:"SLL Unique implies LL agrees"
    Util.arb_grammar_word (fun (g, w) ->
      match Left_recursion.check g with
      | Error _ -> true
      | Ok () ->
        let word = toks g w in
        let x = Grammar.start g in
        if
          List.length (Grammar.prods_of g x) < 2
          || not (Costar_earley.Recognizer.accepts g word)
        then true
        else
          let anl = Analysis.make g in
          let _, sll = Sll.predict g anl (Cache.create anl) x word in
          let ll = Ll.predict g anl x [ [] ] word in
          let not_stuck = function
            | Types.Reject_pred | Types.Error_pred _ -> false
            | Types.Unique_pred _ | Types.Ambig_pred _ -> true
          in
          not_stuck sll && not_stuck ll
          &&
          match sll, ll with
          | Types.Unique_pred i, Types.Unique_pred j -> i = j
          | Types.Unique_pred _, Types.Ambig_pred _ ->
            (* SLL claiming a sole viable alternative contradicts true
               ambiguity at this decision. *)
            false
          | _ -> true)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_oracle_agreement;
      prop_earley_agreement;
      prop_measure_decreases;
      prop_stacks_wf;
      prop_valid_sentences_accepted;
      prop_cache_reuse_stable;
      prop_sll_overapproximates_ll;
    ]

let () = Alcotest.run "costar_properties" [ ("properties", props) ]
