(* Theorems-as-tests for the v3 flat cache image (DESIGN.md §13).

   The format's contract, pinned here:

   - a frozen cache survives the encode/decode round trip with identical
     canonical content AND identical state ids (re-interning in id order,
     like v2);
   - the mmap-backed loader and the heap decoder are result-equivalent:
     parsers running over either cache — or over no cache at all — return
     byte-identical outcomes on all four bundled languages, including
     inputs the saved cache has never seen (exercising the image
     fallthrough, lazy per-state decode, and copy-on-write row seeding);
   - the loader survives hostile bytes: truncation at every prefix length
     and a flip of every single byte are rejected with a typed error,
     never an exception, never a silent acceptance;
   - the two persistence formats coexist: the sniffing loader dispatches
     v2 and v3 files correctly, and each loader rejects the other's
     format with a clear typed error. *)

open Costar_grammar
open Costar_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- canonical cache content (as in test_parallel) ---------------------- *)

type canon_config = int * Symbols.symbol list list * Config.sctx

let canon_state fr (info : Cache.info) : canon_config list =
  List.sort compare
    (List.map
       (fun (c : Config.sll) ->
         ( c.Config.s_pred,
           Frames.frames_of_spine fr c.Config.s_frames,
           c.Config.s_ctx ))
       info.Cache.configs)

let canon_of_cache g c =
  let fr = Cache.frames c in
  let n = Cache.num_states c in
  let states = Array.init n (fun sid -> canon_state fr (Cache.info c sid)) in
  let trans = ref [] in
  for sid = 0 to n - 1 do
    for a = 0 to Grammar.num_terminals g - 1 do
      match Cache.find_trans c sid a with
      | None -> ()
      | Some sid' -> trans := (states.(sid), a, states.(sid')) :: !trans
    done
  done;
  let inits = ref [] in
  for x = 0 to Grammar.num_nonterminals g - 1 do
    match Cache.find_init c x with
    | None -> ()
    | Some sid -> inits := (x, states.(sid)) :: !inits
  done;
  ( List.sort compare (Array.to_list states),
    List.sort compare !trans,
    List.sort compare !inits )

let same_result r1 r2 =
  match r1, r2 with
  | Parser.Unique t1, Parser.Unique t2 -> Tree.equal t1 t2
  | Parser.Ambig t1, Parser.Ambig t2 -> Tree.equal t1 t2
  | Parser.Reject m1, Parser.Reject m2 -> String.equal m1 m2
  | Parser.Error e1, Parser.Error e2 -> e1 = e2
  | _ -> false

let same_outcome o1 o2 =
  match o1, o2 with
  | Ok r1, Ok r2 -> same_result r1 r2
  | Error m1, Error m2 -> String.equal m1 m2
  | _ -> false

let langs = Costar_langs.[ Json.lang; Xml.lang; Dot.lang; Minipy.lang ]

let corpus_for l =
  let gen seed size = Costar_langs.Lang.generate l ~seed ~size in
  let whole =
    List.map
      (fun (s, n) -> gen s n)
      [ (1, 20); (2, 60); (3, 120); (4, 200); (5, 90); (6, 40); (7, 150) ]
  in
  let big = gen 9 160 in
  let truncated = String.sub big 0 (String.length big / 2) in
  let garbage = gen 10 30 ^ "\x01\x01" in
  Array.of_list (whole @ [ truncated; garbage ])

let tokenize_of_lang l s =
  Result.map Word.of_buf (Costar_langs.Lang.tokenize_buf l s)

(* A parser warmed on a slice of the corpus; its base cache is the image
   source.  Warming on a strict subset leaves uncomputed DFA regions, so
   the differential below also drives the image-extension paths. *)
let warmed_parser l k inputs =
  let p = Parser.make (Costar_langs.Lang.grammar l) in
  Array.iteri
    (fun i s ->
      if i < k then
        match tokenize_of_lang l s with
        | Ok w -> ignore (Parser.run_word p w)
        | Error _ -> ())
    inputs;
  p

let fingerprint_of l = Grammar.fingerprint (Costar_langs.Lang.grammar l)

let tmp_file suffix = Filename.temp_file "costar_image" suffix

(* --- round trip ---------------------------------------------------------- *)

let test_roundtrip_equals_freeze () =
  List.iter
    (fun l ->
      let name = l.Costar_langs.Lang.name in
      let g = Costar_langs.Lang.grammar l in
      let inputs = corpus_for l in
      let p = warmed_parser l (Array.length inputs) inputs in
      let c = Parser.base_cache p in
      let fp = fingerprint_of l in
      let bytes = Cache.image_bytes ~fingerprint:fp c in
      match Cache.of_image_bytes ~anl:(Parser.analysis p) ~fingerprint:fp bytes with
      | Error e ->
        Alcotest.failf "%s: round trip rejected: %s" name
          (Cache.image_error_to_string e)
      | Ok c' ->
        check_int
          (name ^ ": state count survives the round trip")
          (Cache.num_states c) (Cache.num_states c');
        (* Id-level equality: decode re-interns in id order, so every
           transition must match state id for state id. *)
        let ok = ref true in
        for sid = 0 to Cache.num_states c - 1 do
          for a = 0 to Grammar.num_terminals g - 1 do
            if Cache.trans_get c sid a <> Cache.trans_get c' sid a then
              ok := false
          done
        done;
        check (name ^ ": transition tables identical id-for-id") true !ok;
        check
          (name ^ ": canonical content survives the round trip")
          true
          (canon_of_cache g c = canon_of_cache g c'))
    langs

(* --- mmap-load = heap-load = no-cache differential ----------------------- *)

let test_mmap_heap_differential () =
  List.iter
    (fun l ->
      let name = l.Costar_langs.Lang.name in
      let inputs = corpus_for l in
      (* Save an image warmed on a strict subset of the corpus. *)
      let psrc = warmed_parser l 3 inputs in
      let fp = fingerprint_of l in
      let file = tmp_file ".img" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
        (fun () ->
          Cache.save_image ~fingerprint:fp (Parser.base_cache psrc) file;
          let expected =
            let p = Parser.make (Costar_langs.Lang.grammar l) in
            Array.map
              (fun s ->
                match tokenize_of_lang l s with
                | Error msg -> Error msg
                | Ok w -> Ok (Parser.run_word p w))
              inputs
          in
          let outcomes_with load kind =
            let p = Parser.make (Costar_langs.Lang.grammar l) in
            (match load ~anl:(Parser.analysis p) ~fingerprint:fp file with
            | Error e ->
              Alcotest.failf "%s: %s load failed: %s" name kind
                (Cache.image_error_to_string e)
            | Ok c -> Parser.set_base_cache p c);
            Array.map
              (fun s ->
                match tokenize_of_lang l s with
                | Error msg -> Error msg
                | Ok w -> Ok (Parser.run_word p w))
              inputs
          in
          let via_mmap = outcomes_with Cache.load_image "mmap" in
          let via_heap = outcomes_with Cache.load_image_heap "heap" in
          check
            (name ^ ": mmap-backed cache = no cache, result for result")
            true
            (Array.for_all2 same_outcome expected via_mmap);
          check
            (name ^ ": heap-decoded cache = no cache, result for result")
            true
            (Array.for_all2 same_outcome expected via_heap)))
    langs

let test_image_backed_flag () =
  let l = Costar_langs.Json.lang in
  let inputs = corpus_for l in
  let p = warmed_parser l 3 inputs in
  let fp = fingerprint_of l in
  let file = tmp_file ".img" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Cache.save_image ~fingerprint:fp (Parser.base_cache p) file;
      check "source cache is not image-backed" false
        (Cache.image_backed (Parser.base_cache p));
      match Cache.load_image ~anl:(Parser.analysis p) ~fingerprint:fp file with
      | Error e -> Alcotest.failf "load: %s" (Cache.image_error_to_string e)
      | Ok c ->
        check "mmap-loaded cache is image-backed" true (Cache.image_backed c));
  match
    Cache.of_image_bytes ~anl:(Parser.analysis p) ~fingerprint:fp
      (Cache.image_bytes ~fingerprint:fp (Parser.base_cache p))
  with
  | Error e -> Alcotest.failf "decode: %s" (Cache.image_error_to_string e)
  | Ok c -> check "heap-decoded cache is not image-backed" false
              (Cache.image_backed c)

(* --- hostile bytes -------------------------------------------------------- *)

(* A deliberately small image (one warmed decision grammar) so exhaustive
   prefix/flip sweeps stay fast. *)
let small_image () =
  let g =
    Grammar.define ~start:"S"
      [
        ( "S",
          [ [ Grammar.n "A"; Grammar.t "c" ]; [ Grammar.n "A"; Grammar.t "d" ] ]
        );
        ("A", [ [ Grammar.t "a"; Grammar.n "A" ]; [ Grammar.t "b" ] ]);
      ]
  in
  let p = Parser.make g in
  let fp = Grammar.fingerprint g in
  (* Warm the cache along a real parse so the image carries transitions. *)
  let tok name =
    match Grammar.terminal_of_name g name with
    | Some t -> Token.make ~line:1 ~col:1 t name
    | None -> assert false
  in
  ignore (Parser.run p [ tok "a"; tok "b"; tok "c" ]);
  (p, fp, Cache.image_bytes ~fingerprint:fp (Parser.base_cache p))

let test_truncation_rejected () =
  let p, fp, bytes = small_image () in
  let anl = Parser.analysis p in
  (match Cache.of_image_bytes ~anl ~fingerprint:fp bytes with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "whole image rejected: %s" (Cache.image_error_to_string e));
  for len = 0 to String.length bytes - 1 do
    match Cache.of_image_bytes ~anl ~fingerprint:fp (String.sub bytes 0 len) with
    | Ok _ -> Alcotest.failf "truncation to %d bytes accepted" len
    | Error _ -> ()
    | exception e ->
      Alcotest.failf "truncation to %d bytes escaped with %s" len
        (Printexc.to_string e)
  done

let test_byte_flips_rejected () =
  let p, fp, bytes = small_image () in
  let anl = Parser.analysis p in
  for i = 0 to String.length bytes - 1 do
    let b = Bytes.of_string bytes in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
    match Cache.of_image_bytes ~anl ~fingerprint:fp (Bytes.to_string b) with
    | Ok _ -> Alcotest.failf "flip of byte %d accepted" i
    | Error _ -> ()
    | exception e ->
      Alcotest.failf "flip of byte %d escaped with %s" i (Printexc.to_string e)
  done

let test_wrong_fingerprint_rejected () =
  let p, fp, bytes = small_image () in
  match
    Cache.of_image_bytes ~anl:(Parser.analysis p)
      ~fingerprint:(fp ^ "nope") bytes
  with
  | Error Cache.Img_fingerprint_mismatch -> ()
  | Error e ->
    Alcotest.failf "expected fingerprint mismatch, got %s"
      (Cache.image_error_to_string e)
  | Ok _ -> Alcotest.fail "wrong fingerprint accepted"

(* --- format coexistence --------------------------------------------------- *)

let test_v2_and_v3_coexist () =
  let l = Costar_langs.Json.lang in
  let g = Costar_langs.Lang.grammar l in
  let inputs = corpus_for l in
  let p = warmed_parser l 3 inputs in
  let c = Parser.base_cache p in
  let anl = Parser.analysis p in
  let fp = fingerprint_of l in
  let v2 = tmp_file ".cache" in
  let v3 = tmp_file ".img" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ v2; v3 ])
    (fun () ->
      Cache.save_precompiled ~fingerprint:fp c v2;
      Cache.save_image ~fingerprint:fp c v3;
      (* The sniffing loader dispatches both formats. *)
      (match Cache.load_any ~anl ~fingerprint:fp v2 with
      | Error msg -> Alcotest.failf "load_any on v2: %s" msg
      | Ok c' ->
        check "load_any(v2) content = source" true
          (canon_of_cache g c = canon_of_cache g c'));
      (match Cache.load_any ~anl ~fingerprint:fp v3 with
      | Error msg -> Alcotest.failf "load_any on v3: %s" msg
      | Ok c' ->
        check "load_any(v3) is image-backed" true (Cache.image_backed c'));
      (* Each dedicated loader rejects the other format, cleanly. *)
      (match Cache.load_image ~anl ~fingerprint:fp v2 with
      | Error Cache.Img_bad_magic -> ()
      | Error e ->
        Alcotest.failf "v2 through image loader: expected bad magic, got %s"
          (Cache.image_error_to_string e)
      | Ok _ -> Alcotest.fail "v2 file accepted by the image loader");
      match Cache.load_precompiled ~anl ~fingerprint:fp v3 with
      | Error msg -> check "v3 through v2 loader mentions magic" true
                       (let affix = "magic" in
                        let n = String.length affix and m = String.length msg in
                        let rec go i =
                          i + n <= m && (String.sub msg i n = affix || go (i + 1))
                        in
                        go 0)
      | Ok _ -> Alcotest.fail "v3 file accepted by the v2 loader")

let () =
  Alcotest.run "image"
    [
      ( "round-trip",
        [
          Alcotest.test_case "decode = freeze, id for id" `Quick
            test_roundtrip_equals_freeze;
          Alcotest.test_case "image-backed flag" `Quick test_image_backed_flag;
        ] );
      ( "differential",
        [
          Alcotest.test_case "mmap = heap = no cache, four languages" `Quick
            test_mmap_heap_differential;
        ] );
      ( "hostile bytes",
        [
          Alcotest.test_case "every-prefix truncation rejected" `Quick
            test_truncation_rejected;
          Alcotest.test_case "every single-byte flip rejected" `Quick
            test_byte_flips_rejected;
          Alcotest.test_case "wrong fingerprint rejected" `Quick
            test_wrong_fingerprint_rejected;
        ] );
      ( "coexistence",
        [
          Alcotest.test_case "v2 and v3 load side by side" `Quick
            test_v2_and_v3_coexist;
        ] );
    ]
