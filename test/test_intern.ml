(* Differential tests for the interned prediction engine (hash-consed
   frames, dense config ids, array DFA stepping) against the structural
   oracle kept in [Costar_core.Structural]: identical predictions, closure
   results, and stable-return fork flags on every grammar, decision and
   input.  Plus unit regressions for the idempotent [Cache.add_trans] and
   the versioned (v2) cache persistence format. *)

open Costar_grammar
open Costar_core
module S = Structural

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let nt g name =
  match Grammar.nonterminal_of_name g name with
  | Some x -> x
  | None -> Alcotest.failf "unknown nonterminal %s" name

let fig2 =
  Grammar.define ~start:"S"
    [
      ("S", [ [ Grammar.n "A"; Grammar.t "c" ]; [ Grammar.n "A"; Grammar.t "d" ] ]);
      ("A", [ [ Grammar.t "a"; Grammar.n "A" ]; [ Grammar.t "b" ] ]);
    ]

(* Predictions are compared observably: same constructor, same production
   index, same error. *)
let same_prediction p1 p2 =
  match p1, p2 with
  | Types.Unique_pred i, Types.Unique_pred j
  | Types.Ambig_pred i, Types.Ambig_pred j ->
    i = j
  | Types.Reject_pred, Types.Reject_pred -> true
  | Types.Error_pred e1, Types.Error_pred e2 -> e1 = e2
  | _ -> false

let decision_nts g =
  List.filter
    (fun x -> List.length (Grammar.prods_of g x) > 1)
    (List.init (Grammar.num_nonterminals g) Fun.id)

(* Decode an interned SLL configuration to the structural representation. *)
let decode_sll fr (cfg : Config.sll) =
  {
    S.Config.s_pred = cfg.Config.s_pred;
    s_frames = Frames.frames_of_spine fr cfg.Config.s_frames;
    s_ctx =
      (match cfg.Config.s_ctx with
      | Config.Ctx_nt x -> S.Config.Ctx_nt x
      | Config.Ctx_accept -> S.Config.Ctx_accept);
  }

(* --- differential properties ------------------------------------------- *)

let prop_sll_predict_agrees =
  QCheck.Test.make ~count:500
    ~name:"interned SLL predict = structural SLL predict"
    Util.arb_grammar_word (fun (g, w) ->
      let toks = Grammar.tokens g w in
      let anl = Analysis.make g in
      List.for_all
        (fun x ->
          let _, structural =
            S.Sll.predict g anl S.Cache.empty x toks
          in
          let _, interned = Sll.predict g anl (Cache.create anl) x toks in
          same_prediction structural interned)
        (decision_nts g))

let prop_ll_predict_agrees =
  QCheck.Test.make ~count:500
    ~name:"interned LL predict = structural LL predict"
    Util.arb_grammar_word (fun (g, w) ->
      let toks = Grammar.tokens g w in
      let anl = Analysis.make g in
      List.for_all
        (fun x ->
          same_prediction
            (S.Ll.predict g x [ [] ] toks)
            (Ll.predict g anl x [ [] ] toks))
        (decision_nts g))

let prop_closure_and_fork_agree =
  (* The interned closure must produce the same stable configurations
     (after decoding) and the same stable-return fork flag as the
     structural closure, for the initial configurations of every
     decision. *)
  QCheck.Test.make ~count:500
    ~name:"interned closure = structural closure (configs + fork flag)"
    (QCheck.make Util.gen_grammar ~print:(Fmt.to_to_string Grammar.pp))
    (fun g ->
      let anl = Analysis.make g in
      let fr = Analysis.frames anl in
      List.for_all
        (fun x ->
          let structural =
            S.Sll.closure_ext g anl (S.Sll.init_configs g x)
          in
          let interned = Sll.closure_ext g anl (Sll.init_configs g anl x) in
          match structural, interned with
          | Error e1, Error e2 -> e1 = e2
          | Ok (stable1, forked1), Ok (stable2, forked2) ->
            forked1 = forked2
            && S.Config.Sll_set.equal
                 (S.Config.Sll_set.of_list stable1)
                 (S.Config.Sll_set.of_list (List.map (decode_sll fr) stable2))
          | _ -> false)
        (decision_nts g))

let prop_parse_agrees_with_turbo_baseline =
  (* End to end: the interned parser and the structural-engine Turbo
     baseline accept/reject the same words.  (Tree-level agreement is
     covered by test_turbo; this guards the engines' verdicts after the
     representation split.) *)
  QCheck.Test.make ~count:300 ~name:"interned parse verdict = Turbo verdict"
    Util.arb_grammar_word (fun (g, w) ->
      match Left_recursion.check g with
      | Error _ -> true
      | Ok () -> (
        let toks = Grammar.tokens g w in
        let turbo = Costar_turbo.Turbo.create g in
        match Parser.parse g toks, Costar_turbo.Turbo.parse turbo toks with
        | Parser.Unique _, Parser.Unique _
        | Parser.Ambig _, Parser.Ambig _
        | Parser.Reject _, Parser.Reject _
        | Parser.Error _, Parser.Error _ ->
          true
        | _ -> false))

(* --- add_trans idempotency (regression) --------------------------------- *)

let test_add_trans_idempotent () =
  let g = fig2 in
  let anl = Analysis.make g in
  let c = Cache.create anl in
  let c, sid0 =
    match Sll.closure g anl (Sll.init_configs g anl (nt g "S")) with
    | Ok configs -> Cache.intern c configs
    | Error _ -> Alcotest.fail "closure failed"
  in
  let c, sid1 =
    match Sll.closure g anl (Sll.init_configs g anl (nt g "A")) with
    | Ok configs -> Cache.intern c configs
    | Error _ -> Alcotest.fail "closure failed"
  in
  let a = 0 in
  let c = Cache.add_trans c sid0 a sid1 in
  check_int "one transition" 1 (Cache.num_transitions c);
  (* Re-adding the same transition must not double-count... *)
  let c = Cache.add_trans c sid0 a sid1 in
  check_int "still one transition" 1 (Cache.num_transitions c);
  (* ...nor may a conflicting re-add clobber the recorded successor. *)
  let c = Cache.add_trans c sid0 a sid0 in
  check_int "no double count on conflict" 1 (Cache.num_transitions c);
  Alcotest.(check (option int))
    "first successor kept" (Some sid1)
    (Cache.find_trans c sid0 a)

(* --- persistence format (v2) ------------------------------------------- *)

let test_v1_cache_rejected () =
  let g = fig2 in
  let anl = Analysis.make g in
  let fp = Grammar.fingerprint g in
  (* A file in the shape of the pre-interning format: magic, version 1,
     fingerprint, then a (now meaningless) marshalled payload. *)
  let v1 = Printf.sprintf "costar/sll-dfa\n1\n%s\nPAYLOAD" fp in
  match Cache.of_precompiled ~anl ~fingerprint:fp v1 with
  | Ok _ -> Alcotest.fail "v1 cache accepted"
  | Error msg ->
    check "error names the version"
      true
      (contains ~affix:"format version 1" msg);
    check "error says how to regenerate" true
      (contains ~affix:"costar analyze" msg)

let test_v2_roundtrip_reinterns_identically () =
  let g = fig2 in
  let p = Parser.make g in
  let anl = Parser.analysis p in
  let fp = Grammar.fingerprint g in
  (* Build a populated cache by parsing a few words. *)
  let cache =
    List.fold_left
      (fun cache w ->
        snd (Parser.run_with_cache p cache (Grammar.tokens g w)))
      (Cache.create anl)
      [ [ "a"; "a"; "b"; "c" ]; [ "b"; "d" ]; [ "a"; "b"; "d" ] ]
  in
  let blob = Cache.precompile ~fingerprint:fp cache in
  match Cache.of_precompiled ~anl ~fingerprint:fp blob with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok c2 ->
    check_int "states survive" (Cache.num_states cache) (Cache.num_states c2);
    check_int "transitions survive"
      (Cache.num_transitions cache)
      (Cache.num_transitions c2);
    (* Reloading re-interns states in id order: every state's canonical
       configuration set must land on the same id, making transitions and
       inits meaningful without translation. *)
    for sid = 0 to Cache.num_states cache - 1 do
      let configs = (Cache.info cache sid).Cache.configs in
      let _, sid' = Cache.intern c2 configs in
      check_int "state id reproduced" sid sid'
    done;
    (* And the reloaded cache parses identically. *)
    List.iter
      (fun w ->
        let toks = Grammar.tokens g w in
        let r1 = Parser.run p toks in
        let r2, _ = Parser.run_with_cache p c2 toks in
        check "same outcome" true
          (match r1, r2 with
          | Parser.Unique t1, Parser.Unique t2 -> Tree.equal t1 t2
          | Parser.Reject _, Parser.Reject _ -> true
          | _ -> false))
      [ [ "a"; "b"; "c" ]; [ "b"; "d" ]; [ "b"; "a" ] ]

let test_wrong_suffix_table_rejected () =
  (* Tamper with the suffix-table digest line: the load must fail before
     unmarshalling, with a digest-specific message. *)
  let g = fig2 in
  let anl = Analysis.make g in
  let fp = Grammar.fingerprint g in
  let blob = Cache.precompile ~fingerprint:fp (Cache.create anl) in
  let lines = String.split_on_char '\n' blob in
  let tampered =
    match lines with
    | magic :: version :: fp' :: _digest :: rest ->
      String.concat "\n" (magic :: version :: fp' :: "deadbeef" :: rest)
    | _ -> Alcotest.fail "unexpected blob shape"
  in
  match Cache.of_precompiled ~anl ~fingerprint:fp tampered with
  | Ok _ -> Alcotest.fail "tampered suffix table accepted"
  | Error msg ->
    check "digest mismatch reported" true
      (contains ~affix:"suffix table" msg)

(* Loader hardening: whatever bytes we feed the v2 loader — truncations of
   a valid file at every prefix length, bit flips in the header, garbage
   payloads — it must return a typed [Error], never let an exception
   escape, and never accept a damaged file as [Ok]. *)
let test_truncated_cache_fails_cleanly () =
  let g = fig2 in
  let p = Parser.make g in
  let anl = Parser.analysis p in
  let fp = Grammar.fingerprint g in
  let cache =
    List.fold_left
      (fun cache w -> snd (Parser.run_with_cache p cache (Grammar.tokens g w)))
      (Cache.create anl)
      [ [ "a"; "a"; "b"; "c" ]; [ "b"; "d" ] ]
  in
  let blob = Cache.precompile ~fingerprint:fp cache in
  for len = 0 to String.length blob - 1 do
    let truncated = String.sub blob 0 len in
    match Cache.of_precompiled ~anl ~fingerprint:fp truncated with
    | Ok _ -> Alcotest.failf "truncation to %d bytes accepted" len
    | Error msg -> check "error is non-empty" true (String.length msg > 0)
    | exception e ->
      Alcotest.failf "truncation to %d bytes escaped with %s" len
        (Printexc.to_string e)
  done

let test_header_fuzz_fails_cleanly () =
  let g = fig2 in
  let anl = Analysis.make g in
  let fp = Grammar.fingerprint g in
  let blob = Cache.precompile ~fingerprint:fp (Cache.create anl) in
  let header_len =
    (* End of the fourth header line: the start of the marshalled payload. *)
    let rec nth_nl i = function
      | 0 -> i
      | k -> nth_nl (String.index_from blob i '\n' + 1) (k - 1)
    in
    nth_nl 0 4
  in
  let rand = Random.State.make [| 0x5eed |] in
  let try_load s =
    match Cache.of_precompiled ~anl ~fingerprint:fp s with
    | Error msg -> check "error is non-empty" true (String.length msg > 0)
    | Ok _ ->
      (* Only acceptable if the fuzz happened to leave the bytes intact. *)
      check "accepted only when unchanged" true (String.equal s blob)
    | exception e ->
      Alcotest.failf "fuzzed header escaped with %s" (Printexc.to_string e)
  in
  (* Single-byte corruptions across the whole header. *)
  for i = 0 to header_len - 1 do
    let b = Bytes.of_string blob in
    Bytes.set b i (Char.chr (Random.State.int rand 256));
    try_load (Bytes.to_string b)
  done;
  (* Random garbage payloads behind a pristine header. *)
  for _ = 1 to 50 do
    let n = Random.State.int rand 200 in
    let junk =
      String.init n (fun _ -> Char.chr (Random.State.int rand 256))
    in
    try_load (String.sub blob 0 header_len ^ junk)
  done;
  (* Pathological shapes. *)
  List.iter try_load
    [ ""; "\n"; "costar/sll-dfa"; "costar/sll-dfa\n"; "costar/sll-dfa\n2";
      "costar/sll-dfa\n2\n" ^ fp; "costar/sll-dfa\n2\n" ^ fp ^ "\n";
      String.make 4096 '\xff' ]

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_sll_predict_agrees;
      prop_ll_predict_agrees;
      prop_closure_and_fork_agree;
      prop_parse_agrees_with_turbo_baseline;
    ]

let () =
  Alcotest.run "intern"
    [
      ( "unit",
        [
          Alcotest.test_case "add_trans idempotent" `Quick
            test_add_trans_idempotent;
          Alcotest.test_case "v1 cache rejected" `Quick test_v1_cache_rejected;
          Alcotest.test_case "v2 roundtrip re-interns identically" `Quick
            test_v2_roundtrip_reinterns_identically;
          Alcotest.test_case "wrong suffix table rejected" `Quick
            test_wrong_suffix_table_rejected;
          Alcotest.test_case "truncated cache fails cleanly" `Quick
            test_truncated_cache_fails_cleanly;
          Alcotest.test_case "header fuzz fails cleanly" `Quick
            test_header_fuzz_fails_cleanly;
        ] );
      ("differential", props);
    ]
