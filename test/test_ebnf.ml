(* EBNF layer tests: desugaring semantics (language preservation spot
   checks), fresh-nonterminal sharing, and the textual format parser. *)

open Costar_grammar
open Costar_ebnf
module P = Costar_core.Parser

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parses g names =
  match P.parse g (Grammar.tokens g names) with
  | P.Unique _ | P.Ambig _ -> true
  | P.Reject _ -> false
  | P.Error e -> Alcotest.failf "parser error: %s" (Costar_core.Types.error_to_string g e)

let test_star () =
  (* list : '[' ITEM* ']' *)
  let g =
    Desugar.to_grammar_exn ~start:"list"
      [ Ast.rule "list" Ast.(seq [ lit "["; star (tok "ITEM"); lit "]" ]) ]
  in
  check "empty" true (parses g [ "["; "]" ]);
  check "one" true (parses g [ "["; "ITEM"; "]" ]);
  check "three" true (parses g [ "["; "ITEM"; "ITEM"; "ITEM"; "]" ]);
  check "missing close" false (parses g [ "["; "ITEM" ])

let test_plus () =
  let g =
    Desugar.to_grammar_exn ~start:"s" [ Ast.rule "s" Ast.(plus (tok "X")) ]
  in
  check "zero rejected" false (parses g []);
  check "one" true (parses g [ "X" ]);
  check "many" true (parses g [ "X"; "X"; "X"; "X" ])

let test_opt () =
  let g =
    Desugar.to_grammar_exn ~start:"s"
      [ Ast.rule "s" Ast.(seq [ tok "A"; opt (tok "B"); tok "C" ]) ]
  in
  check "without" true (parses g [ "A"; "C" ]);
  check "with" true (parses g [ "A"; "B"; "C" ]);
  check "double rejected" false (parses g [ "A"; "B"; "B"; "C" ])

let test_nested_groups () =
  (* s : ('a' | 'b' 'c')+ 'd' *)
  let g =
    Desugar.to_grammar_exn ~start:"s"
      [
        Ast.rule "s"
          Ast.(seq [ plus (alt [ lit "a"; seq [ lit "b"; lit "c" ] ]); lit "d" ]);
      ]
  in
  check "a d" true (parses g [ "a"; "d" ]);
  check "bc d" true (parses g [ "b"; "c"; "d" ]);
  check "a bc a d" true (parses g [ "a"; "b"; "c"; "a"; "d" ]);
  check "b d rejected" false (parses g [ "b"; "d" ])

let test_sharing () =
  (* The same subexpression used twice synthesizes one nonterminal. *)
  let star_x = Ast.(star (tok "X")) in
  let g =
    Desugar.to_grammar_exn ~start:"s"
      [ Ast.rule "s" Ast.(seq [ star_x; tok "SEP"; star_x ]) ]
  in
  (* nonterminals: s + one shared star = 2 *)
  check_int "two nonterminals" 2 (Grammar.num_nonterminals g)

let test_no_left_recursion_introduced () =
  let g =
    Desugar.to_grammar_exn ~start:"s"
      [
        Ast.rule "s" Ast.(seq [ star (r "item"); tok "END" ]);
        Ast.rule "item" Ast.(alt [ tok "A"; seq [ tok "B"; opt (tok "C") ] ]);
      ]
  in
  check "still LR-free" true (Left_recursion.check g = Ok ())

let test_textual_format () =
  let src =
    {|
      // A toy expression language
      expr   : term (('+' | '-') term)* ;
      term   : factor ('*' factor)* ;
      factor : NUM | '(' expr ')' ;
    |}
  in
  match Parse.grammar_of_string src with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok g ->
    check "n+n*n" true (parses g [ "NUM"; "+"; "NUM"; "*"; "NUM" ]);
    check "parens" true
      (parses g [ "("; "NUM"; "+"; "NUM"; ")"; "*"; "NUM" ]);
    check "dangling op" false (parses g [ "NUM"; "+" ]);
    check "LR-free" true (Left_recursion.check g = Ok ())

let test_textual_comments_and_escapes () =
  let src = {|
    s : 'a' /* inline */ t? ;  // trailing
    t : '\n' ;
  |} in
  match Parse.rules_of_string src with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok rules ->
    check_int "two rules" 2 (List.length rules);
    check "newline literal" true
      (match (List.nth rules 1).Ast.body.Ast.desc with
      | Ast.Lit "\n" -> true
      | _ -> false)

let test_textual_errors () =
  let bad fmt = match Parse.rules_of_string fmt with Error _ -> true | Ok _ -> false in
  check "missing semi" true (bad "s : 'a'");
  check "unbalanced paren" true (bad "s : ('a' ;");
  check "empty literal" true (bad "s : '' ;");
  check "missing colon" true (bad "s 'a' ;");
  check "stray char" true (bad "s : 'a' @ ;");
  check "unterminated comment" true (bad "s : 'a' ; /* oops");
  check "empty grammar" true (bad "   ")

let test_ebnf_pp_roundtrip () =
  let src = "s : 'a' (B | c)* d? ;\nc : C+ ;\nd : D ;" in
  match Parse.rules_of_string src with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok rules -> (
    let printed = Fmt.str "%a" Fmt.(list ~sep:cut Ast.pp_rule) rules in
    match Parse.rules_of_string printed with
    | Error msg -> Alcotest.failf "reparse failed: %s (printed: %s)" msg printed
    | Ok rules' -> check_int "same rule count" (List.length rules) (List.length rules'))

let prop_print_parse_roundtrip =
  (* Printing a (BNF) grammar and reparsing it is the identity, up to the
     printer's own normal form: print (parse (print g)) = print g. *)
  QCheck.Test.make ~count:300 ~name:"print/parse round-trip"
    (QCheck.make ~print:(fun g -> Fmt.str "%a" Grammar.pp g) Util.gen_grammar)
    (fun g ->
      let text = Print.grammar_to_string g in
      let start =
        Grammar.nonterminal_name g (Grammar.start g)
      in
      match Parse.grammar_of_string ~start text with
      | Error _ -> false
      | Ok g' -> String.equal (Print.grammar_to_string g') text)

let test_print_quoting () =
  let g =
    Grammar.define ~start:"s"
      [ ("s", [ [ Grammar.t "it's"; Grammar.t "NL"; Grammar.t "\n" ] ]) ]
  in
  let text = Print.grammar_to_string g in
  match Parse.grammar_of_string ~start:"s" text with
  | Error msg -> Alcotest.failf "reparse failed: %s on %s" msg text
  | Ok g' ->
    Alcotest.(check string) "stable" text (Print.grammar_to_string g')

let suite =
  [
    Alcotest.test_case "star" `Quick test_star;
    Alcotest.test_case "plus" `Quick test_plus;
    Alcotest.test_case "opt" `Quick test_opt;
    Alcotest.test_case "nested groups" `Quick test_nested_groups;
    Alcotest.test_case "subexpression sharing" `Quick test_sharing;
    Alcotest.test_case "no left recursion introduced" `Quick
      test_no_left_recursion_introduced;
    Alcotest.test_case "textual format" `Quick test_textual_format;
    Alcotest.test_case "textual comments/escapes" `Quick
      test_textual_comments_and_escapes;
    Alcotest.test_case "textual errors" `Quick test_textual_errors;
    Alcotest.test_case "pp roundtrip" `Quick test_ebnf_pp_roundtrip;
    Alcotest.test_case "print quoting" `Quick test_print_quoting;
    QCheck_alcotest.to_alcotest prop_print_parse_roundtrip;
  ]

let () = Alcotest.run "costar_ebnf" [ ("ebnf", suite) ]
