if x
    y = 1
