(* An XML well-formedness checker: syntactic validation with the benchmark
   grammar (which an LL(1) parser cannot express — the element rule needs
   unbounded lookahead), followed by a semantic pass that checks tag
   matching, which is not context-free at all.

   Run with:  dune exec examples/xml_validator.exe *)

open Costar_grammar
open Costar_langs

(* Collect (open, close) tag-name pairs from element nodes. *)
let rec check_tags g tree errors =
  match tree with
  | Tree.Leaf _ -> errors
  | Tree.Node (x, kids) ->
    let errors =
      if Grammar.nonterminal_name g x = "element" then
        match List.filter_map (name_token g) kids with
        | [ opened; closed ] when opened.Token.lexeme <> closed.Token.lexeme ->
          Printf.sprintf "line %d: <%s> closed by </%s> (line %d)"
            opened.Token.line opened.Token.lexeme closed.Token.lexeme
            closed.Token.line
          :: errors
        | _ -> errors
      else errors
    in
    List.fold_left (fun errs kid -> check_tags g kid errs) errors kids
  | Tree.Error (_, kids) ->
    List.fold_left (fun errs kid -> check_tags g kid errs) errors kids

and name_token g = function
  | Tree.Leaf tok when Grammar.terminal_name g tok.Token.term = "NAME" ->
    Some tok
  | _ -> None

let validate doc =
  let lang = Xml.lang in
  let g = Lang.grammar lang in
  Printf.printf "--- validating:\n%s\n" doc;
  match Lang.tokenize lang doc with
  | Error msg -> Printf.printf "  not lexable: %s\n\n" msg
  | Ok tokens -> (
    match Costar_core.Parser.parse g tokens with
    | Costar_core.Parser.Unique tree -> (
      match List.rev (check_tags g tree []) with
      | [] -> Printf.printf "  well-formed (%d tokens)\n\n" (List.length tokens)
      | errors ->
        Printf.printf "  parses, but tags mismatch:\n";
        List.iter (fun e -> Printf.printf "    %s\n" e) errors;
        print_newline ())
    | Costar_core.Parser.Ambig _ -> Printf.printf "  ambiguous?!\n\n"
    | Costar_core.Parser.Reject msg -> Printf.printf "  malformed: %s\n\n" msg
    | Costar_core.Parser.Error e ->
      Printf.printf "  error: %s\n\n" (Costar_core.Types.error_to_string g e))

let () =
  validate "<note a=\"1\"><to>alice</to><from>bob</from><body/></note>";
  validate "<note><to>alice</wrong>\n</note>";
  validate "<note><unclosed></note>";
  validate "<a x=1></a>"
