(* Dense bitsets over small integer universes (terminal / nonterminal ids).
   The dataflow engine stores one word-packed row per nonterminal; membership
   and union-into are O(1) / O(words).  Mutable: rows are owned by exactly
   one analysis and never shared. *)

type t = {
  bits : int array;
  universe : int;  (* number of valid bit indexes *)
}

let bits_per_word = Sys.int_size - 1  (* 62 on 64-bit, portable to 32-bit *)

let create universe =
  { bits = Array.make ((universe + bits_per_word - 1) / bits_per_word + 1) 0;
    universe }

let universe s = s.universe

let check s i =
  if i < 0 || i >= s.universe then
    invalid_arg (Printf.sprintf "Bitset: index %d outside universe %d" i
                   s.universe)

let mem s i =
  check s i;
  s.bits.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

(* [add s i] is true iff [i] was not already present (the dataflow engine's
   "did this fact change anything" signal). *)
let add s i =
  check s i;
  let w = i / bits_per_word and b = 1 lsl (i mod bits_per_word) in
  if s.bits.(w) land b <> 0 then false
  else begin
    s.bits.(w) <- s.bits.(w) lor b;
    true
  end

(* [union_into ~into src] merges [src] into [into]; true iff [into] grew. *)
let union_into ~into src =
  if into.universe <> src.universe then
    invalid_arg "Bitset.union_into: universe mismatch";
  let changed = ref false in
  for w = 0 to Array.length into.bits - 1 do
    let merged = into.bits.(w) lor src.bits.(w) in
    if merged <> into.bits.(w) then begin
      into.bits.(w) <- merged;
      changed := true
    end
  done;
  !changed

let union a b =
  let r = create a.universe in
  ignore (union_into ~into:r a);
  ignore (union_into ~into:r b);
  r

let inter a b =
  if a.universe <> b.universe then invalid_arg "Bitset.inter: universe mismatch";
  let r = create a.universe in
  for w = 0 to Array.length r.bits - 1 do
    r.bits.(w) <- a.bits.(w) land b.bits.(w)
  done;
  r

let is_empty s = Array.for_all (fun w -> w = 0) s.bits

let cardinal s =
  let n = ref 0 in
  for i = 0 to s.universe - 1 do
    if mem s i then incr n
  done;
  !n

let iter f s =
  for i = 0 to s.universe - 1 do
    if mem s i then f i
  done

let elements s =
  let acc = ref [] in
  for i = s.universe - 1 downto 0 do
    if mem s i then acc := i :: !acc
  done;
  !acc

let equal a b =
  a.universe = b.universe
  && (let ok = ref true in
      for w = 0 to Array.length a.bits - 1 do
        if a.bits.(w) <> b.bits.(w) then ok := false
      done;
      !ok)

let copy s = { s with bits = Array.copy s.bits }
