(* A worklist fixed-point dataflow engine over the interned grammar.

   Where Costar_grammar.Analysis iterates whole-grammar passes until nothing
   changes (O(passes * grammar)), this engine propagates individual facts
   along precomputed occurrence edges: each fact (a nonterminal becoming
   nullable, a terminal entering a FIRST or FOLLOW set) is enqueued once and
   pushed only to the productions that can consume it.  Two things fall out
   of the single-discovery discipline:

   - every fact carries a justification recorded at the moment it was first
     derived, and every justification references only facts discovered
     strictly earlier — so witness extraction is a simple acyclic walk;
   - the engine is O(facts * occurrences) rather than O(passes * grammar).

   The computed facts are the classical NULLABLE / FIRST / FOLLOW lattice
   (Edelmann et al., "LL(1) Parsing with Derivatives and Zippers", give the
   inductive spec this engine is property-tested against), plus REACHABLE,
   PRODUCTIVE, and the per-nonterminal sync/anchor sets
   (FIRST ∪ FOLLOW, the Coco/R-style resynchronization vocabulary) that the
   planned multi-error recovery engine and the flat-table exporter consume. *)

open Costar_grammar
open Costar_grammar.Symbols

(* Why a terminal entered FOLLOW(x). *)
type follow_reason =
  | F_first of { prod : int; x_pos : int; src_pos : int }
      (* In production [prod], [x] at [x_pos] is followed (through a
         nullable gap) by the symbol at [src_pos], which contributes the
         terminal: directly if it is that terminal, via its FIRST set if it
         is a nonterminal. *)
  | F_follow of { prod : int; x_pos : int }
      (* In production [prod] the suffix after [x_pos] is nullable, so
         FOLLOW of the production's left-hand side flows into FOLLOW(x). *)

type t = {
  g : Grammar.t;
  occs : (int * int) list array;  (* nonterminal -> (prod, pos) occurrences *)
  nullable : bool array;
  null_why : int array;  (* justifying production, -1 when not nullable *)
  first : Bitset.t array;
  first_why : (int * int) array array;  (* (prod, pos); (-1, -1) if absent *)
  follow : Bitset.t array;
  follow_why : follow_reason option array array;
  follow_end_ : bool array;
  follow_end_why : (int * int) array;
      (* (prod, x_pos) inheritance step; (-1, -1) for the start symbol *)
  reachable_ : bool array;
  reach_why : (int * int) array;  (* (prod, pos); (-1, -1) for the start *)
  productive_ : bool array;
  prod_why : int array;  (* justifying production, -1 when unproductive *)
  sync_ : Bitset.t array;  (* FIRST ∪ FOLLOW, precomputed *)
  mutable facts : int;  (* dataflow facts discovered (worklist pushes) *)
}

(* --- Construction ------------------------------------------------------- *)

let occurrences g =
  let occs = Array.make (Grammar.num_nonterminals g) [] in
  Array.iter
    (fun (p : Grammar.production) ->
      List.iteri
        (fun pos -> function
          | T _ -> ()
          | NT y -> occs.(y) <- (p.ix, pos) :: occs.(y))
        p.rhs)
    (Grammar.prods g);
  Array.map List.rev occs

(* NULLABLE by counting: each production tracks how many of its right-hand
   side symbols are not yet known nullable; a terminal anywhere makes the
   production permanently non-nullable.  A nonterminal is enqueued exactly
   once, when its count first reaches zero. *)
let compute_nullable t =
  let g = t.g in
  let n_prods = Grammar.num_productions g in
  let remaining = Array.make n_prods 0 in
  let dead = Array.make n_prods false in
  let queue = Queue.create () in
  let mark x why =
    if not t.nullable.(x) then begin
      t.nullable.(x) <- true;
      t.null_why.(x) <- why;
      t.facts <- t.facts + 1;
      Queue.add x queue
    end
  in
  Array.iter
    (fun (p : Grammar.production) ->
      List.iter
        (function
          | T _ -> dead.(p.ix) <- true
          | NT _ -> remaining.(p.ix) <- remaining.(p.ix) + 1)
        p.rhs;
      if (not dead.(p.ix)) && remaining.(p.ix) = 0 then mark p.lhs p.ix)
    (Grammar.prods g);
  while not (Queue.is_empty queue) do
    let x = Queue.pop queue in
    List.iter
      (fun (ix, _) ->
        if not dead.(ix) then begin
          remaining.(ix) <- remaining.(ix) - 1;
          if remaining.(ix) = 0 then mark (Grammar.prod t.g ix).lhs ix
        end)
      t.occs.(x)
  done

(* Occurrences whose production prefix (the symbols strictly before the
   occurrence) is all nullable: exactly the edges along which FIRST facts
   propagate from the occurring nonterminal to the production's lhs. *)
let nullable_prefix_occs t x =
  List.filter
    (fun (ix, pos) ->
      let rec check j = function
        | [] -> true
        | _ :: _ when j >= pos -> true
        | T _ :: _ -> false
        | NT y :: rest -> t.nullable.(y) && check (j + 1) rest
      in
      check 0 (Grammar.prod t.g ix).rhs)
    t.occs.(x)

let compute_first t =
  let g = t.g in
  let queue = Queue.create () in
  let add x a why =
    if Bitset.add t.first.(x) a then begin
      t.first_why.(x).(a) <- why;
      t.facts <- t.facts + 1;
      Queue.add (x, a) queue
    end
  in
  (* Base facts: the first terminal behind each production's nullable
     prefix. *)
  Array.iter
    (fun (p : Grammar.production) ->
      let rec go j = function
        | [] -> ()
        | T a :: _ -> add p.lhs a (p.ix, j)
        | NT y :: rest -> if t.nullable.(y) then go (j + 1) rest
      in
      go 0 p.rhs)
    (Grammar.prods g);
  (* Propagation: a terminal entering FIRST(y) enters FIRST(lhs) for every
     occurrence of y behind a nullable prefix. *)
  let prop = Array.mapi (fun y _ -> nullable_prefix_occs t y) t.occs in
  while not (Queue.is_empty queue) do
    let y, a = Queue.pop queue in
    List.iter
      (fun (ix, pos) -> add (Grammar.prod g ix).lhs a (ix, pos))
      prop.(y)
  done

let compute_follow t =
  let g = t.g in
  let queue = Queue.create () in
  let add x a why =
    if Bitset.add t.follow.(x) a then begin
      t.follow_why.(x).(a) <- Some why;
      t.facts <- t.facts + 1;
      Queue.add (x, a) queue
    end
  in
  (* Inheritance edges lhs -> x (x occurs with a nullable suffix), shared by
     the FOLLOW and the end-of-input propagation. *)
  let inherit_edges = Array.make (Grammar.num_nonterminals g) [] in
  Array.iter
    (fun (p : Grammar.production) ->
      let rhs = Array.of_list p.rhs in
      let m = Array.length rhs in
      for pos = 0 to m - 1 do
        match rhs.(pos) with
        | T _ -> ()
        | NT x ->
          (* Seed from the suffix: FIRST of everything x can see to its
             right, through nullable gaps. *)
          let rec go j =
            if j >= m then
              inherit_edges.(p.lhs) <- (x, p.ix, pos) :: inherit_edges.(p.lhs)
            else
              match rhs.(j) with
              | T a -> add x a (F_first { prod = p.ix; x_pos = pos; src_pos = j })
              | NT y ->
                Bitset.iter
                  (fun a ->
                    add x a (F_first { prod = p.ix; x_pos = pos; src_pos = j }))
                  t.first.(y);
                if t.nullable.(y) then go (j + 1)
          in
          go (pos + 1)
      done)
    (Grammar.prods g);
  let inherit_edges = Array.map List.rev inherit_edges in
  (* FOLLOW propagation along the inheritance edges. *)
  while not (Queue.is_empty queue) do
    let y, a = Queue.pop queue in
    List.iter
      (fun (x, ix, pos) -> add x a (F_follow { prod = ix; x_pos = pos }))
      inherit_edges.(y)
  done;
  (* End-of-input flows along exactly the same edges, from the start
     symbol. *)
  let end_queue = Queue.create () in
  let mark_end x why =
    if not t.follow_end_.(x) then begin
      t.follow_end_.(x) <- true;
      t.follow_end_why.(x) <- why;
      t.facts <- t.facts + 1;
      Queue.add x end_queue
    end
  in
  mark_end (Grammar.start g) (-1, -1);
  while not (Queue.is_empty end_queue) do
    let y = Queue.pop end_queue in
    List.iter (fun (x, ix, pos) -> mark_end x (ix, pos)) inherit_edges.(y)
  done

let compute_reachable t =
  let g = t.g in
  let queue = Queue.create () in
  let mark x why =
    if not t.reachable_.(x) then begin
      t.reachable_.(x) <- true;
      t.reach_why.(x) <- why;
      t.facts <- t.facts + 1;
      Queue.add x queue
    end
  in
  mark (Grammar.start g) (-1, -1);
  while not (Queue.is_empty queue) do
    let y = Queue.pop queue in
    List.iter
      (fun ix ->
        List.iteri
          (fun pos -> function
            | T _ -> ()
            | NT x -> mark x (ix, pos))
          (Grammar.prod g ix).rhs)
      (Grammar.prods_of g y)
  done

(* PRODUCTIVE by counting, like NULLABLE but with terminals trivially
   satisfied. *)
let compute_productive t =
  let g = t.g in
  let n_prods = Grammar.num_productions g in
  let remaining = Array.make n_prods 0 in
  let queue = Queue.create () in
  let mark x why =
    if not t.productive_.(x) then begin
      t.productive_.(x) <- true;
      t.prod_why.(x) <- why;
      t.facts <- t.facts + 1;
      Queue.add x queue
    end
  in
  Array.iter
    (fun (p : Grammar.production) ->
      List.iter
        (function T _ -> () | NT _ -> remaining.(p.ix) <- remaining.(p.ix) + 1)
        p.rhs;
      if remaining.(p.ix) = 0 then mark p.lhs p.ix)
    (Grammar.prods g);
  while not (Queue.is_empty queue) do
    let x = Queue.pop queue in
    List.iter
      (fun (ix, _) ->
        remaining.(ix) <- remaining.(ix) - 1;
        if remaining.(ix) = 0 then mark (Grammar.prod g ix).lhs ix)
      t.occs.(x)
  done

let make g =
  let n_nts = Grammar.num_nonterminals g in
  let n_terms = Grammar.num_terminals g in
  let t =
    {
      g;
      occs = occurrences g;
      nullable = Array.make n_nts false;
      null_why = Array.make n_nts (-1);
      first = Array.init n_nts (fun _ -> Bitset.create n_terms);
      first_why = Array.init n_nts (fun _ -> Array.make n_terms (-1, -1));
      follow = Array.init n_nts (fun _ -> Bitset.create n_terms);
      follow_why = Array.init n_nts (fun _ -> Array.make n_terms None);
      follow_end_ = Array.make n_nts false;
      follow_end_why = Array.make n_nts (-1, -1);
      reachable_ = Array.make n_nts false;
      reach_why = Array.make n_nts (-1, -1);
      productive_ = Array.make n_nts false;
      prod_why = Array.make n_nts (-1);
      sync_ = [||];
      facts = 0;
    }
  in
  compute_nullable t;
  compute_first t;
  compute_follow t;
  compute_reachable t;
  compute_productive t;
  let sync_ =
    Array.init n_nts (fun x -> Bitset.union t.first.(x) t.follow.(x))
  in
  { t with sync_ }

(* --- Accessors ---------------------------------------------------------- *)

let grammar t = t.g
let nullable t x = t.nullable.(x)
let first t x = t.first.(x)
let follow t x = t.follow.(x)
let follow_end t x = t.follow_end_.(x)
let sync t x = t.sync_.(x)
let reachable t x = t.reachable_.(x)
let productive t x = t.productive_.(x)
let facts t = t.facts

(* Whole-table views, indexed by interned nonterminal id: the recovery
   engine grabs these once per parse instead of per-failure accessor
   calls.  Shared storage — callers must not mutate. *)
let first_all t = t.first
let follow_all t = t.follow
let sync_all t = t.sync_

let first_set t x = Int_set.of_list (Bitset.elements t.first.(x))
let follow_set t x = Int_set.of_list (Bitset.elements t.follow.(x))
let sync_set t x = Int_set.of_list (Bitset.elements t.sync_.(x))

let nullable_seq t syms =
  List.for_all (function T _ -> false | NT x -> t.nullable.(x)) syms

let first_seq t syms =
  let acc = Bitset.create (Grammar.num_terminals t.g) in
  let rec go = function
    | [] -> ()
    | T a :: _ -> ignore (Bitset.add acc a)
    | NT x :: rest ->
      ignore (Bitset.union_into ~into:acc t.first.(x));
      if t.nullable.(x) then go rest
  in
  go syms;
  acc

(* --- Witness extraction -------------------------------------------------

   Every justification recorded by the worklist references only facts
   discovered strictly earlier, so each walk below strictly descends in
   discovery order and terminates. *)

(* Render production [ix] with a bullet in front of the symbol at [pos]
   (the symbol the justification points at). *)
let marked_production g ix pos =
  let p = Grammar.prod g ix in
  let syms =
    List.mapi
      (fun j s ->
        (if j = pos then "\xe2\x80\xa2" ^ Names.symbol g s
         else Names.symbol g s))
      p.rhs
  in
  Printf.sprintf "%s -> %s"
    (Names.nonterminal g p.lhs)
    (match syms with [] -> "\xce\xb5" | _ -> String.concat " " syms)

(* Productions used to derive epsilon from [x], one per distinct
   nonterminal of the derivation tree. *)
let nullable_witness t x =
  if not t.nullable.(x) then None
  else begin
    let seen = Hashtbl.create 8 in
    let acc = ref [] in
    let rec go x =
      if not (Hashtbl.mem seen x) then begin
        Hashtbl.add seen x ();
        let ix = t.null_why.(x) in
        acc := Names.production t.g ix :: !acc;
        List.iter
          (function T _ -> assert false | NT y -> go y)
          (Grammar.prod t.g ix).rhs
      end
    in
    go x;
    Some (List.rev !acc)
  end

(* The production chain deriving a word of [x] that starts with [a]: each
   step is a production with the contributing symbol marked; the walk
   descends while that symbol is a nonterminal. *)
let first_witness t x a =
  if a < 0 || a >= Grammar.num_terminals t.g || not (Bitset.mem t.first.(x) a)
  then None
  else begin
    let rec go x acc =
      let ix, pos = t.first_why.(x).(a) in
      let acc = marked_production t.g ix pos :: acc in
      match List.nth (Grammar.prod t.g ix).rhs pos with
      | T _ -> List.rev acc
      | NT y -> go y acc
    in
    Some (go x [])
  end

(* The inheritance chain justifying [a] ∈ FOLLOW([x]): zero or more
   FOLLOW-of-lhs steps, then the occurrence whose right context contributes
   [a], then (if that contributor is a nonterminal) its FIRST chain. *)
let follow_witness t x a =
  if a < 0 || a >= Grammar.num_terminals t.g || not (Bitset.mem t.follow.(x) a)
  then None
  else begin
    let rec go x acc =
      match t.follow_why.(x).(a) with
      | None -> List.rev acc  (* unreachable: facts always carry reasons *)
      | Some (F_first { prod; x_pos = _; src_pos }) -> (
        let acc = marked_production t.g prod src_pos :: acc in
        match List.nth (Grammar.prod t.g prod).rhs src_pos with
        | T _ -> List.rev acc
        | NT y ->
          List.rev_append acc (Option.value ~default:[] (first_witness t y a)))
      | Some (F_follow { prod; x_pos }) ->
        go (Grammar.prod t.g prod).lhs (marked_production t.g prod x_pos :: acc)
    in
    Some (go x [])
  end

(* The chain of productions from the start symbol down to an occurrence of
   [x]. *)
let reachable_witness t x =
  if not t.reachable_.(x) then None
  else begin
    let rec go x acc =
      match t.reach_why.(x) with
      | -1, -1 -> acc
      | ix, pos -> go (Grammar.prod t.g ix).lhs (marked_production t.g ix pos :: acc)
    in
    Some (go x [])
  end

(* Same chain, unrendered: the raw (production, position) steps from the
   start symbol down to an occurrence of [x], root first.  This is what the
   coverage generator replays to build a sentential context around a target
   (the rendered [reachable_witness] is for humans, this one for tools). *)
let reachable_chain t x =
  if x < 0 || x >= Array.length t.reachable_ || not t.reachable_.(x) then None
  else begin
    let rec go x acc =
      match t.reach_why.(x) with
      | -1, -1 -> acc
      | ix, pos -> go (Grammar.prod t.g ix).lhs ((ix, pos) :: acc)
    in
    Some (go x [])
  end

(* Productions used to derive some terminal word from [x], one per distinct
   nonterminal (the PRODUCTIVE analogue of [nullable_witness]). *)
let productive_witness t x =
  if not t.productive_.(x) then None
  else begin
    let seen = Hashtbl.create 8 in
    let acc = ref [] in
    let rec go x =
      if not (Hashtbl.mem seen x) then begin
        Hashtbl.add seen x ();
        let ix = t.prod_why.(x) in
        acc := Names.production t.g ix :: !acc;
        List.iter
          (function T _ -> () | NT y -> go y)
          (Grammar.prod t.g ix).rhs
      end
    in
    go x;
    Some (List.rev !acc)
  end

(* A terminal word of [x] beginning with [a], replayed from the FIRST
   justification chain: nullable prefixes derive ε, the contributing symbol
   recurses, and everything after it takes its shortest yield.  [None] only
   when [a] ∉ FIRST([x]). *)
let first_word t anl x a =
  if a < 0 || a >= Grammar.num_terminals t.g || not (Bitset.mem t.first.(x) a)
  then None
  else begin
    let ( let* ) = Option.bind in
    let rec go x =
      let ix, pos = t.first_why.(x).(a) in
      let rhs = (Grammar.prod t.g ix).rhs in
      let suffix = List.filteri (fun j _ -> j > pos) rhs in
      (* The justification guarantees the prefix before [pos] is nullable
         (it derives ε in the witness word); the suffix still has to finish
         the derivation, which is impossible if it is unproductive. *)
      let* tail = Analysis.min_yield_seq anl suffix in
      match List.nth rhs pos with
      | T a' -> Some (a' :: tail)
      | NT y ->
        let* front = go y in
        Some (front @ tail)
    in
    go x
  end
