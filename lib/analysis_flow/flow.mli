(** Worklist fixed-point dataflow over the interned grammar.

    Computes the classical NULLABLE / FIRST / FOLLOW lattice as
    dense-terminal-id bitsets, plus REACHABLE, PRODUCTIVE, and the
    per-nonterminal {e sync/anchor} sets (FIRST ∪ FOLLOW — the Coco/R-style
    resynchronization vocabulary) consumed by the flat-table exporter
    ({!Costar_predict_analysis.Tables}) and the planned multi-error
    recovery engine.

    Unlike {!Costar_grammar.Analysis} (whole-grammar passes iterated to a
    fixed point), facts here propagate individually along precomputed
    occurrence edges, and each fact records the justification that first
    derived it.  Justifications only ever reference facts discovered
    strictly earlier, so every fact can be expanded into a finite witness
    derivation — the [*_witness] functions below — for explainable
    diagnostics (the F-codes of {!Costar_lint}).

    The engine is differentially tested against {!Costar_grammar.Analysis}
    and against brute-force derivation sampling with Earley-confirmed
    membership (test/test_flow.ml). *)

open Costar_grammar
open Costar_grammar.Symbols

type t

val make : Grammar.t -> t
val grammar : t -> Grammar.t

(** {1 Dataflow facts} *)

val nullable : t -> nonterminal -> bool
val nullable_seq : t -> symbol list -> bool

(** FIRST set over dense terminal ids (do not mutate). *)
val first : t -> nonterminal -> Bitset.t

(** FIRST of a sentential form (fresh bitset). *)
val first_seq : t -> symbol list -> Bitset.t

val follow : t -> nonterminal -> Bitset.t

(** Whether end-of-input may follow the nonterminal. *)
val follow_end : t -> nonterminal -> bool

(** Sync/anchor set: FIRST ∪ FOLLOW.  A recovering parser inside [x] skips
    input until a member (restart [x] on FIRST, give it up on FOLLOW) —
    end-of-input is always an implicit anchor. *)
val sync : t -> nonterminal -> Bitset.t

val reachable : t -> nonterminal -> bool
val productive : t -> nonterminal -> bool

(** {1 Whole-table exports}

    Dense views indexed by interned nonterminal id, for consumers that
    resolve sets per failure on a hot path (the error-recovery engine).
    The arrays and their bitsets are the analysis' own storage — do not
    mutate. *)

val first_all : t -> Bitset.t array
val follow_all : t -> Bitset.t array
val sync_all : t -> Bitset.t array

(** Total dataflow facts discovered (each fact is enqueued exactly once). *)
val facts : t -> int

(** {!Int_set} views of the bitsets, for differential tests against
    {!Costar_grammar.Analysis}. *)

val first_set : t -> nonterminal -> Int_set.t
val follow_set : t -> nonterminal -> Int_set.t
val sync_set : t -> nonterminal -> Int_set.t

(** {1 Witness derivations}

    Each returns [None] when the fact does not hold; otherwise a list of
    rendered derivation steps ("lhs -> alpha •sym beta", the bullet marking
    the symbol the step hinges on), suitable for diagnostic notes. *)

val nullable_witness : t -> nonterminal -> string list option
val first_witness : t -> nonterminal -> terminal -> string list option
val follow_witness : t -> nonterminal -> terminal -> string list option
val reachable_witness : t -> nonterminal -> string list option
val productive_witness : t -> nonterminal -> string list option

(** [reachable_chain t x] is the raw justification chain behind
    {!reachable_witness}: the (production, position) steps from the start
    symbol down to an occurrence of [x], root first (empty for the start
    symbol itself).  Tool-facing — the coverage generator replays it to
    build a sentential context around a target. *)
val reachable_chain : t -> nonterminal -> (int * int) list option

(** [first_word t anl x a] is a terminal word derivable from [x] that
    begins with [a], replayed from the FIRST justification chain with
    shortest-yield completions from [anl].  [None] when [a] ∉ FIRST([x]),
    or when the justification's suffix is unproductive (the prefix fact is
    real, but no finite word completes it).  Property-tested: the word is
    Earley-accepted from [x]. *)
val first_word :
  t -> Analysis.t -> nonterminal -> terminal -> terminal list option
