(** Domain-pool batch parsing: shard a corpus of inputs across OCaml 5
    domains, each parsing with the existing zero-copy buffer pipeline.

    The engine's contract (DESIGN.md §9):

    - Everything the parse path reads — grammar tables, analysis,
      compiled scanners, the frozen DFA snapshot — is published before
      [Domain.spawn] and never mutated while workers run, so workers
      share it without locks.
    - Every worker consults the snapshot through a private
      {!Costar_core.Cache.overlay}; what an input teaches lands in the
      overlay, never in shared state.  The one shared mutable structure,
      the {!Costar_grammar.Frames} interner, serializes its (slow-path)
      mutators internally.
    - Between rounds the overlays are merged into the parser's base cache
      with {!Costar_core.Cache.absorb} and a fresh snapshot is cut, so
      warm-up compounds across rounds and leaks back to sequential use of
      the same parser.
    - Cache contents never influence parse results, only speed, so a batch
      run is result-identical to parsing the corpus sequentially — the
      differential property pinned by [test/test_parallel.ml]. *)

open Costar_grammar

(** Per-worker accounting, indexed by domain.  [cache] holds the DFA
    counters ({!Costar_core.Instr.cache_counters}) summed over the worker's
    rounds — populated only while [Instr.enabled] is set, zero otherwise. *)
type domain_stats = {
  ds_files : int;
  ds_bytes : int;
  ds_new_states : int;  (** DFA states this worker interned past the snapshots *)
  ds_cache : Costar_core.Instr.cache_counters;
}

type stats = {
  st_domains : int;
  st_rounds : int;
  st_files : int;
  st_bytes : int;
  st_states_before : int;  (** base-cache states before the batch *)
  st_states_after : int;  (** after all overlays were absorbed *)
  st_per_domain : domain_stats array;
}

(** [run_batch p ~tokenize inputs] parses every input and returns one
    verdict per input, in order: [Ok r] the parser's verdict, [Error msg] a
    tokenizer failure.  [tokenize] must be safe to call concurrently from
    several domains once it has been called once — true of
    [Lang.tokenize_buf] (the compiled-scanner lazy is forced by the
    engine's warm-up call on the spawning domain; after that the scanner is
    read-only).

    [domains] defaults to [Domain.recommended_domain_count ()]; workers are
    always spawned, even for [domains = 1], so counters and domain-local
    state behave uniformly.  [round_size] (default: the whole corpus)
    bounds the number of files handed out per round; between rounds the
    worker overlays are absorbed into [Parser.base_cache p] and a fresh
    snapshot is frozen, so later rounds start warmer. *)
val run_batch :
  ?domains:int ->
  ?round_size:int ->
  Costar_core.Parser.t ->
  tokenize:(string -> (Word.t, string) result) ->
  string array ->
  (Costar_core.Parser.result, string) result array * stats

(** [run_prefork ~workers p ~tokenize inputs] parses the corpus with
    [workers] forked {e processes} instead of domains (DESIGN.md §13).
    Each worker has its own runtime and minor heap — no shared
    stop-the-world minor collections, the scaling limit of the domain
    engine on allocation-heavy parses (E15/E16) — and inherits the
    parser, scanner tables and base cache copy-on-write; when the base is
    an mmapped v3 cache image ({!Costar_core.Cache.load_image}), all
    workers read one physical copy of the transition matrix.

    Work is sharded over a shared pipe of 4-byte file indices (atomic
    writes, blocking one-index reads — the process analogue of
    [run_batch]'s atomic cursor); results return over one pipe per worker
    as length-prefixed marshalled messages, multiplexed by the parent with
    [select].  A worker crash loses only its in-flight file, which
    surfaces as a per-file [Error]; remaining files are parsed by the
    surviving workers.

    Unlike [run_batch], nothing learned by a worker flows back into the
    parent's cache (processes do not share heaps).  Verdicts are
    nonetheless byte-identical to sequential parsing — cache contents
    never influence results.

    Must be called from a single-domain process ([Unix.fork] does not
    carry other domains into the child).  In [stats], [st_domains] counts
    workers and [ds_cache] holds each worker's own instrumentation
    totals. *)
val run_prefork :
  ?workers:int ->
  Costar_core.Parser.t ->
  tokenize:(string -> (Word.t, string) result) ->
  string array ->
  (Costar_core.Parser.result, string) result array * stats
