open Costar_core

type domain_stats = {
  ds_files : int;
  ds_bytes : int;
  ds_new_states : int;
  ds_cache : Instr.cache_counters;
}

type stats = {
  st_domains : int;
  st_rounds : int;
  st_files : int;
  st_bytes : int;
  st_states_before : int;
  st_states_after : int;
  st_per_domain : domain_stats array;
}

let run_batch ?domains ?round_size p ~tokenize inputs =
  let n = Array.length inputs in
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  let round_size =
    match round_size with
    | Some r -> max 1 r
    | None -> max 1 n
  in
  (* Publish everything the workers will read BEFORE the first spawn: the
     parser's base cache is built lazily behind a mutable field, and the
     tokenizer compiles its scanner behind a lazy — both must be forced on
     this domain so workers only ever read them. *)
  ignore (Parser.base_cache p);
  (try ignore (tokenize "") with _ -> ());
  let states_before = Cache.num_states (Parser.base_cache p) in
  let results = Array.make n (Error "costar batch: file not reached") in
  let per_files = Array.make domains 0 in
  let per_bytes = Array.make domains 0 in
  let per_new = Array.make domains 0 in
  let per_cache = Array.make domains [] in
  let rounds = ref 0 in
  let lo = ref 0 in
  while !lo < n do
    incr rounds;
    let hi = min n (!lo + round_size) in
    (* Work queue: an atomic cursor over [!lo, hi).  Workers pull the next
       unclaimed index, so large files load-balance instead of pinning one
       unlucky domain. *)
    let next = Atomic.make !lo in
    let fz = Cache.freeze (Parser.base_cache p) in
    let worker () =
      let cache = Cache.overlay fz in
      let files = ref 0 in
      let bytes = ref 0 in
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < hi then begin
          let input = inputs.(i) in
          results.(i) <-
            (match tokenize input with
            | Error msg -> Error msg
            | Ok word -> Ok (fst (Parser.run_with_cache_word p cache word)));
          incr files;
          bytes := !bytes + String.length input;
          loop ()
        end
      in
      loop ();
      (cache, !files, !bytes, Instr.cache_totals ())
    in
    let ds = Array.init domains (fun _ -> Domain.spawn worker) in
    (* Join every domain before surfacing a failure: no worker may still be
       touching shared state when the exception propagates. *)
    let joined = Array.map (fun d -> try Ok (Domain.join d) with e -> Error e) ds in
    Array.iter
      (function
        | Error e -> raise e
        | Ok _ -> ())
      joined;
    Array.iteri
      (fun d r ->
        match r with
        | Ok (cache, files, bytes, counters) ->
          per_files.(d) <- per_files.(d) + files;
          per_bytes.(d) <- per_bytes.(d) + bytes;
          per_new.(d) <- per_new.(d) + Cache.overlay_new_states cache;
          per_cache.(d) <- counters :: per_cache.(d);
          ignore (Cache.absorb (Parser.base_cache p) cache)
        | Error _ -> ())
      joined;
    lo := hi
  done;
  let per_domain =
    Array.init domains (fun d ->
        {
          ds_files = per_files.(d);
          ds_bytes = per_bytes.(d);
          ds_new_states = per_new.(d);
          ds_cache = Instr.sum_cache_counters per_cache.(d);
        })
  in
  ( results,
    {
      st_domains = domains;
      st_rounds = !rounds;
      st_files = n;
      st_bytes = Array.fold_left (fun a b -> a + b) 0 per_bytes;
      st_states_before = states_before;
      st_states_after = Cache.num_states (Parser.base_cache p);
      st_per_domain = per_domain;
    } )
