open Costar_core

type domain_stats = {
  ds_files : int;
  ds_bytes : int;
  ds_new_states : int;
  ds_cache : Instr.cache_counters;
}

type stats = {
  st_domains : int;
  st_rounds : int;
  st_files : int;
  st_bytes : int;
  st_states_before : int;
  st_states_after : int;
  st_per_domain : domain_stats array;
}

let run_batch ?domains ?round_size p ~tokenize inputs =
  let n = Array.length inputs in
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  let round_size =
    match round_size with
    | Some r -> max 1 r
    | None -> max 1 n
  in
  (* Publish everything the workers will read BEFORE the first spawn: the
     parser's base cache is built lazily behind a mutable field, and the
     tokenizer compiles its scanner behind a lazy — both must be forced on
     this domain so workers only ever read them. *)
  ignore (Parser.base_cache p);
  (try ignore (tokenize "") with _ -> ());
  let states_before = Cache.num_states (Parser.base_cache p) in
  let results = Array.make n (Error "costar batch: file not reached") in
  let per_files = Array.make domains 0 in
  let per_bytes = Array.make domains 0 in
  let per_new = Array.make domains 0 in
  let per_cache = Array.make domains [] in
  let rounds = ref 0 in
  let lo = ref 0 in
  while !lo < n do
    incr rounds;
    let hi = min n (!lo + round_size) in
    (* Work queue: an atomic cursor over [!lo, hi).  Workers pull the next
       unclaimed index, so large files load-balance instead of pinning one
       unlucky domain. *)
    let next = Atomic.make !lo in
    let fz = Cache.freeze (Parser.base_cache p) in
    let worker () =
      let cache = Cache.overlay fz in
      let files = ref 0 in
      let bytes = ref 0 in
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < hi then begin
          let input = inputs.(i) in
          results.(i) <-
            (match tokenize input with
            | Error msg -> Error msg
            | Ok word -> Ok (fst (Parser.run_with_cache_word p cache word)));
          incr files;
          bytes := !bytes + String.length input;
          loop ()
        end
      in
      loop ();
      (cache, !files, !bytes, Instr.cache_totals ())
    in
    let ds = Array.init domains (fun _ -> Domain.spawn worker) in
    (* Join every domain before surfacing a failure: no worker may still be
       touching shared state when the exception propagates. *)
    let joined = Array.map (fun d -> try Ok (Domain.join d) with e -> Error e) ds in
    Array.iter
      (function
        | Error e -> raise e
        | Ok _ -> ())
      joined;
    Array.iteri
      (fun d r ->
        match r with
        | Ok (cache, files, bytes, counters) ->
          per_files.(d) <- per_files.(d) + files;
          per_bytes.(d) <- per_bytes.(d) + bytes;
          per_new.(d) <- per_new.(d) + Cache.overlay_new_states cache;
          per_cache.(d) <- counters :: per_cache.(d);
          ignore (Cache.absorb (Parser.base_cache p) cache)
        | Error _ -> ())
      joined;
    lo := hi
  done;
  let per_domain =
    Array.init domains (fun d ->
        {
          ds_files = per_files.(d);
          ds_bytes = per_bytes.(d);
          ds_new_states = per_new.(d);
          ds_cache = Instr.sum_cache_counters per_cache.(d);
        })
  in
  ( results,
    {
      st_domains = domains;
      st_rounds = !rounds;
      st_files = n;
      st_bytes = Array.fold_left (fun a b -> a + b) 0 per_bytes;
      st_states_before = states_before;
      st_states_after = Cache.num_states (Parser.base_cache p);
      st_per_domain = per_domain;
    } )

(* {2 The prefork tier}

   Forked worker processes instead of domains: each worker is a full
   process with its own runtime and its own minor heap, so parsing never
   crosses a stop-the-world minor collection shared with other workers —
   the GC decoupling that domains on OCaml 5 cannot give (E15/E16).  The
   parser, scanner tables and base cache are inherited copy-on-write; when
   the base cache is an mmapped v3 image ({!Costar_core.Cache.load_image}),
   the transition matrix is shared physically, read-only, by every worker.

   Work distribution: one shared work pipe.  The parent feeds 4-byte LE
   file indices (each write atomic, far below PIPE_BUF) and closes the
   write end when done; workers blocking-read one index at a time, so
   large files load-balance exactly like the atomic cursor above.  Every
   worker reports over its own result pipe — length-prefixed marshalled
   messages, parent↔own-child only — and the parent multiplexes the pipes
   with [select], feeding work and draining results in one loop.

   Crash isolation: a worker that dies (OOM, signal, runtime failure)
   closes its result pipe; the parent keeps serving the remaining workers,
   the dead worker's claimed-but-unreported file surfaces as a typed
   per-file error, and every other file is still parsed.  A domain crash,
   by contrast, would take the whole process down. *)

type prefork_msg =
  | Pf_result of int * (Parser.result, string) result
  | Pf_done of int * int * int * Instr.cache_counters
      (* files, bytes, states interned past the inherited base *)

let rec write_all fd b off len =
  if len > 0 then begin
    let k = Unix.write fd b off len in
    write_all fd b (off + k) (len - k)
  end

(* Reads [len] bytes or raises [End_of_file].  The work pipe is shared by
   all workers, but the parent writes whole 4-byte indices atomically and
   every reader requests whole indices, so the pipe content stays
   4-aligned and short reads cannot interleave between workers; the loop
   is belt-and-braces. *)
let rec read_exact fd b off len =
  if len > 0 then begin
    let k = Unix.read fd b off len in
    if k = 0 then raise End_of_file;
    read_exact fd b (off + k) (len - k)
  end

let le32_of_bytes b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let le32_to_bytes b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xff))

let send_msg fd (msg : prefork_msg) =
  let payload = Marshal.to_bytes msg [] in
  let len = Bytes.length payload in
  let b = Bytes.create (4 + len) in
  le32_to_bytes b 0 len;
  Bytes.blit payload 0 b 4 len;
  write_all fd b 0 (4 + len)

let worker_loop p ~tokenize inputs work_r out states_inherited =
  let idx = Bytes.create 4 in
  let files = ref 0 in
  let bytes_n = ref 0 in
  (try
     let rec go () =
       match read_exact work_r idx 0 4 with
       | exception End_of_file -> ()
       | () ->
         let i = le32_of_bytes idx 0 in
         let input = inputs.(i) in
         let outcome =
           match tokenize input with
           | Error msg -> Error msg
           | Ok word -> Ok (Parser.run_word p word)
         in
         send_msg out (Pf_result (i, outcome));
         incr files;
         bytes_n := !bytes_n + String.length input;
         go ()
     in
     go ();
     send_msg out
       (Pf_done
          ( !files,
            !bytes_n,
            Cache.num_states (Parser.base_cache p) - states_inherited,
            Instr.cache_totals () ))
   with _ -> ());
  (try Unix.close out with Unix.Unix_error _ -> ());
  (* Skip at_exit/channel flushing: any buffered output in this image
     belongs to the parent and must not be emitted twice. *)
  Unix._exit 0

let run_prefork ?(workers = 2) p ~tokenize inputs =
  let n = Array.length inputs in
  let workers = max 1 workers in
  (* Force everything workers will read BEFORE forking, so it is inherited
     ready-built (and, for an mmapped image base, shared physically). *)
  ignore (Parser.base_cache p);
  (try ignore (tokenize "") with _ -> ());
  let states_before = Cache.num_states (Parser.base_cache p) in
  let results = Array.make n (Error "costar batch: file not reached") in
  let per_files = Array.make workers 0 in
  let per_bytes = Array.make workers 0 in
  let per_new = Array.make workers 0 in
  let per_cache = Array.make workers [] in
  if n > 0 then begin
    let work_r, work_w = Unix.pipe ~cloexec:false () in
    let res_pipes = Array.init workers (fun _ -> Unix.pipe ~cloexec:false ()) in
    (* The parent may write work after every reader died (all workers
       crashed): that must surface as EPIPE, not SIGPIPE. *)
    let old_sigpipe =
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ | Sys_error _ -> None
    in
    let pids =
      Array.init workers (fun w ->
          match Unix.fork () with
          | 0 ->
            Unix.close work_w;
            Array.iteri
              (fun w' (r, wfd) ->
                Unix.close r;
                if w' <> w then Unix.close wfd)
              res_pipes;
            worker_loop p ~tokenize inputs work_r (snd res_pipes.(w))
              states_before
          | pid -> pid)
    in
    Unix.close work_r;
    Array.iter (fun (_, wfd) -> Unix.close wfd) res_pipes;
    let reported = Array.make n false in
    let alive = Array.map (fun _ -> true) pids in
    let open_fds = ref workers in
    let bufs = Array.init workers (fun _ -> Buffer.create 4096) in
    let chunk = Bytes.create 65536 in
    let next = ref 0 in
    let work_open = ref (n > 0) in
    let close_work () =
      if !work_open then begin
        work_open := false;
        try Unix.close work_w with Unix.Unix_error _ -> ()
      end
    in
    let handle w = function
      | Pf_result (i, outcome) ->
        results.(i) <- outcome;
        reported.(i) <- true
      | Pf_done (files, bytes, new_states, counters) ->
        per_files.(w) <- files;
        per_bytes.(w) <- bytes;
        per_new.(w) <- new_states;
        per_cache.(w) <- [ counters ]
    in
    (* Drain complete length-prefixed messages from worker [w]'s buffer. *)
    let drain w =
      let s = Buffer.contents bufs.(w) in
      let len = String.length s in
      let off = ref 0 in
      let again = ref true in
      while !again do
        again := false;
        if len - !off >= 4 then begin
          let m = Costar_grammar.Flatimg.le_word s !off in
          if m >= 0 && len - !off - 4 >= m then begin
            handle w (Marshal.from_string s (!off + 4) : prefork_msg);
            off := !off + 4 + m;
            again := true
          end
        end
      done;
      if !off > 0 then begin
        let rest = String.sub s !off (len - !off) in
        Buffer.clear bufs.(w);
        Buffer.add_string bufs.(w) rest
      end
    in
    let idx_bytes = Bytes.create 4 in
    while !open_fds > 0 do
      let rfds =
        Array.to_list
          (Array.of_seq
             (Seq.filter_map
                (fun w -> if alive.(w) then Some (fst res_pipes.(w)) else None)
                (Seq.init workers Fun.id)))
      in
      let wfds = if !work_open && !next < n then [ work_w ] else [] in
      match Unix.select rfds wfds [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, writable, _ ->
        List.iter
          (fun fd ->
            let w = ref 0 in
            Array.iteri
              (fun w' (r, _) -> if r == fd || r = fd then w := w')
              res_pipes;
            let w = !w in
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | 0 ->
              alive.(w) <- false;
              decr open_fds;
              (try Unix.close fd with Unix.Unix_error _ -> ())
            | k ->
              Buffer.add_subbytes bufs.(w) chunk 0 k;
              drain w)
          readable;
        if writable <> [] then begin
          le32_to_bytes idx_bytes 0 !next;
          match write_all work_w idx_bytes 0 4 with
          | () ->
            incr next;
            if !next >= n then close_work ()
          | exception Unix.Unix_error (Unix.EPIPE, _, _) ->
            (* Every reader is gone; the unfed files stay unreported. *)
            close_work ()
        end
    done;
    close_work ();
    Array.iter (fun pid -> try ignore (Unix.waitpid [] pid) with _ -> ()) pids;
    (match old_sigpipe with
    | Some h -> ( try Sys.set_signal Sys.sigpipe h with _ -> ())
    | None -> ());
    for i = 0 to n - 1 do
      if not reported.(i) then
        results.(i) <-
          Error "costar batch: worker process exited before reporting this file"
    done
  end;
  let per_domain =
    Array.init workers (fun w ->
        {
          ds_files = per_files.(w);
          ds_bytes = per_bytes.(w);
          ds_new_states = per_new.(w);
          ds_cache = Instr.sum_cache_counters per_cache.(w);
        })
  in
  ( results,
    {
      st_domains = workers;
      st_rounds = 1;
      st_files = n;
      st_bytes = Array.fold_left (fun a b -> a + b) 0 per_bytes;
      st_states_before = states_before;
      st_states_after = Cache.num_states (Parser.base_cache p);
      st_per_domain = per_domain;
    } )
