open Costar_grammar

type edit =
  | Byte_flip of int
  | Byte_insert of int
  | Byte_delete of int
  | Byte_truncate of int
  | Token_delete of int
  | Token_dup of int
  | Token_swap of int
  | Token_truncate of int

let edit_to_string = function
  | Byte_flip i -> Printf.sprintf "byte flip at offset %d" i
  | Byte_insert i -> Printf.sprintf "byte insert at offset %d" i
  | Byte_delete i -> Printf.sprintf "byte delete at offset %d" i
  | Byte_truncate n -> Printf.sprintf "source truncated to %d bytes" n
  | Token_delete i -> Printf.sprintf "deleted token %d" i
  | Token_dup i -> Printf.sprintf "duplicated token %d" i
  | Token_swap i -> Printf.sprintf "swapped tokens %d and %d" i (i + 1)
  | Token_truncate n -> Printf.sprintf "input truncated to %d tokens" n

type mutant =
  | Source of string * edit
  | Tokens of Token.t list * edit

(* A mutated byte stays printable ASCII so lexers with narrow alphabets
   exercise their error paths on plausible garbage rather than always
   dying on byte 0. *)
let random_byte rng = Char.chr (32 + Random.State.int rng 95)

let splice s i n insert =
  String.sub s 0 i ^ insert ^ String.sub s (i + n) (String.length s - i - n)

let mutate_source rng s =
  let n = String.length s in
  match Random.State.int rng 4 with
  | 0 ->
    let i = Random.State.int rng n in
    let c = Char.chr (Char.code s.[i] lxor (1 lsl Random.State.int rng 7)) in
    (splice s i 1 (String.make 1 c), Byte_flip i)
  | 1 ->
    let i = Random.State.int rng (n + 1) in
    (splice s i 0 (String.make 1 (random_byte rng)), Byte_insert i)
  | 2 ->
    let i = Random.State.int rng n in
    (splice s i 1 "", Byte_delete i)
  | _ ->
    let k = Random.State.int rng n in
    (String.sub s 0 k, Byte_truncate k)

let mutate_tokens rng toks =
  let n = List.length toks in
  let drop_at i = List.filteri (fun j _ -> j <> i) toks in
  let dup_at i =
    List.concat_map
      (fun (j, tok) -> if j = i then [ tok; tok ] else [ tok ])
      (List.mapi (fun j tok -> (j, tok)) toks)
  in
  let swap_at i =
    let arr = Array.of_list toks in
    let tmp = arr.(i) in
    arr.(i) <- arr.(i + 1);
    arr.(i + 1) <- tmp;
    Array.to_list arr
  in
  match Random.State.int rng (if n >= 2 then 4 else 3) with
  | 0 ->
    let i = Random.State.int rng n in
    (drop_at i, Token_delete i)
  | 1 ->
    let i = Random.State.int rng n in
    (dup_at i, Token_dup i)
  | 2 ->
    let k = Random.State.int rng n in
    (List.filteri (fun j _ -> j < k) toks, Token_truncate k)
  | _ ->
    let i = Random.State.int rng (n - 1) in
    (swap_at i, Token_swap i)

let derive rng ~source ~tokens =
  let have_bytes = String.length source > 0 in
  let have_tokens = tokens <> [] in
  let pick_bytes =
    if have_bytes && have_tokens then Random.State.bool rng else have_bytes
  in
  if pick_bytes then
    let s, e = mutate_source rng source in
    Source (s, e)
  else if have_tokens then
    let toks, e = mutate_tokens rng tokens in
    Tokens (toks, e)
  else Source ("", Byte_truncate 0)
