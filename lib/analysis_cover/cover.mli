(** Decision-coverage universe: every production, SLL decision point,
    cached prediction-DFA edge, and lexer-DFA class transition, each tagged
    statically coverable or dead (C001–C003) from the Flow dataflow facts,
    then filled in with runtime hit counts.  See DESIGN.md §12. *)

open Costar_grammar
open Costar_grammar.Symbols

type target =
  | Prod of int  (** production index, as in {!Grammar.prod} *)
  | Decision of nonterminal  (** a multi-alternative prediction ran *)
  | Edge of int * terminal  (** (analyzer-cache DFA state, lookahead) *)
  | Lex_trans of int * int  (** (lexer DFA state, byte class) *)

type status =
  | Coverable
  | Dead of { code : string; reason : string }

type entry = {
  target : target;
  status : status;
  mutable hits : int;
}

type t = {
  g : Grammar.t;
  flow : Costar_flow.Flow.t;
  anl : Analysis.t;
  parser_ : Costar_core.Parser.t;
  result : Costar_predict_analysis.Analyze.t;
  scanner : Costar_lex.Scanner.t option;
  dfa : Costar_lex.Dfa.t option;
  n_states : int;  (** universe DFA states (the cache may grow past this) *)
  u_reach : bool array;
      (** usefully reachable: reachable through occurrences whose sibling
          symbols are all productive, so a complete sentence exists around
          every such occurrence (strictly stronger than REACHABLE) *)
  u_why : (int * int) array;  (** (prod, pos) parent edge of [u_reach] *)
  exit_yield : terminal list option array;
      (** per nonterminal, a yield ending in a committed exit token — the
          sibling fill that realizes exit-freedom (shortest yields often
          vanish it); [None] when the nonterminal is not exit-free *)
  owner : int array;  (** DFA state -> owning decision nonterminal, or -1 *)
  entries : entry array;
  decision_ix : (int, int) Hashtbl.t;
  edge_ix : (int * int, int) Hashtbl.t;
  lex_ix : (int * int, int) Hashtbl.t;
}

(** Build the universe: runs the parser's grammar analysis, Flow, and the
    offline prediction analyzer, then enumerates and statically tags every
    target.  Pass [scanner] to include the lexer-transition universe. *)
val make : ?scanner:Costar_lex.Scanner.t -> Grammar.t -> t

(** Parse under coverage instrumentation, through the analyzer's own cache
    (so runtime DFA-edge ids coincide with universe ids), folding the hits
    into the universe.  Counts accrue even when the parse rejects. *)
val mark_word : t -> Word.t -> Costar_core.Parser.result

val mark_tokens : t -> Token.t list -> Costar_core.Parser.result

(** Byte-level lexer replay (maximal munch, first-rule-wins) crediting the
    class transitions along each accepted lexeme; overrun suffixes that are
    backtracked out of do not count.  Stops at the first lexical error.
    Returns the number of accepted lexemes (skips included); [0] when the
    universe has no scanner. *)
val mark_bytes : t -> string -> int

type kind = K_prod | K_decision | K_edge | K_lex

val kind_of : target -> kind
val kind_name : kind -> string

type summary = {
  covered : int;
  coverable : int;
  dead : int;
}

(** Per-kind tallies, in fixed kind order ([K_lex] omitted when the
    universe has no scanner). *)
val summary : t -> (kind * summary) list

(** Coverable targets with zero hits. *)
val residual : t -> entry list

val describe : t -> target -> string

(** C001–C003 diagnostics for the statically dead targets, one per entry,
    with the deadness reason as a note. *)
val dead_diags : ?file:string -> t -> Costar_lint.Diagnostic.t list
