(* Decision-coverage universe over the interned grammar and its compiled
   artifacts (see DESIGN.md §12).

   The universe enumerates every target a parse (or scan) could exercise:

   - every production (committed to by a machine push);
   - every SLL decision point (a multi-alternative prediction run);
   - every cached prediction-DFA edge, as explored offline by the static
     analyzer — state ids are the analyzer cache's own, and runtime parses
     are threaded through that same cache so runtime-covered edges and
     universe edges agree by construction;
   - every lexer-DFA byte-class transition, when the source has a scanner.

   Each target is tagged statically: [Coverable] when some concrete input
   can exercise it, or [Dead] with one of the C-codes (C001 dead
   production, C002 unreachable decision edge, C003 dead lexer-class
   transition) and a reason derived from the Flow dataflow facts.  Runtime
   runs then fill in hit counts — from the [Costar_core.Instr] coverage
   counters for parser-level targets, and from a byte-level DFA replay
   (this module, not the hot scanner) for lexer transitions.  What is
   coverable but unhit is the residue; [Witness.close] tries to generate a
   sentence per residual target. *)

open Costar_grammar
open Costar_grammar.Symbols
module P = Costar_core.Parser
module Cache = Costar_core.Cache
module Instr = Costar_core.Instr
module Flow = Costar_flow.Flow
module Analyze = Costar_predict_analysis.Analyze
module D = Costar_lint.Diagnostic
module Lint = Costar_lint.Lint
module Dfa = Costar_lex.Dfa
module Scanner = Costar_lex.Scanner

type target =
  | Prod of int  (** production index, as in {!Grammar.prod} *)
  | Decision of nonterminal  (** a multi-alternative prediction ran *)
  | Edge of int * terminal  (** (analyzer-cache DFA state, lookahead) *)
  | Lex_trans of int * int  (** (lexer DFA state, byte class) *)

type status =
  | Coverable
  | Dead of { code : string; reason : string }

type entry = {
  target : target;
  status : status;
  mutable hits : int;
}

type t = {
  g : Grammar.t;
  flow : Flow.t;
  anl : Analysis.t;
  parser_ : P.t;
  result : Analyze.t;
  scanner : Scanner.t option;
  dfa : Dfa.t option;
  n_states : int;  (** universe DFA states (the cache may grow past this) *)
  u_reach : bool array;
      (** usefully reachable: reachable through occurrences whose sibling
          symbols are all productive, so a complete sentence exists around
          every such occurrence (strictly stronger than REACHABLE) *)
  u_why : (int * int) array;  (** (prod, pos) parent edge of [u_reach] *)
  exit_yield : terminal list option array;
      (** per nonterminal, a yield ending in a committed exit token — the
          sibling fill that realizes exit-freedom (shortest yields often
          vanish it); [None] when the nonterminal is not exit-free *)
  owner : int array;  (** DFA state -> owning decision nonterminal, or -1 *)
  entries : entry array;
  decision_ix : (int, int) Hashtbl.t;
  edge_ix : (int * int, int) Hashtbl.t;
  lex_ix : (int * int, int) Hashtbl.t;
}

(* --- Static structure ---------------------------------------------------- *)

(* Useful reachability: BFS from the start symbol descending only into
   occurrences whose sibling symbols are all productive.  Flow's REACHABLE
   admits contexts that can never be completed into a sentence (an
   unproductive sibling poisons the whole derivation); the generator needs
   the stronger fact, and the parent edges double as its derivation
   backbone. *)
let useful_reachability g anl =
  let n = Grammar.num_nonterminals g in
  let reach = Array.make n false in
  let why = Array.make n (-1, -1) in
  let q = Queue.create () in
  let productive_sym = function
    | T _ -> true
    | NT z -> Analysis.productive anl z
  in
  reach.(Grammar.start g) <- true;
  Queue.add (Grammar.start g) q;
  while not (Queue.is_empty q) do
    let y = Queue.pop q in
    List.iter
      (fun ix ->
        let rhs = (Grammar.prod g ix).rhs in
        let siblings_ok pos =
          let rec go j = function
            | [] -> true
            | s :: rest -> (j = pos || productive_sym s) && go (j + 1) rest
          in
          go 0 rhs
        in
        List.iteri
          (fun pos -> function
            | T _ -> ()
            | NT x ->
              if (not reach.(x)) && siblings_ok pos then begin
                reach.(x) <- true;
                why.(x) <- (ix, pos);
                Queue.add x q
              end)
          rhs)
      (Grammar.prods_of g y)
  done;
  (reach, why)

(* Decisions whose entry lookahead is "free": some usable context pushes
   [x] with the next input token unconstrained by any enclosing
   prediction, so ANY terminal can sit at the decision point.  When x is
   NOT free, every context pinches through an enclosing committing
   prediction scanning from the same input position — so a terminal
   outside FIRST(x) (∪ FOLLOW(x) when x is nullable) can never be the
   lookahead at x's own decision, and the corresponding initial-state DFA
   edges are statically dead.

   The subtlety is that a token earlier in the sentence is not enough:
   the decisions *between* consuming that token and pushing x (trailing
   star/opt exits, ε commitments of nullable prefixes) are keyed on the
   very lookahead position we want to free.  Three mutually recursive
   facts capture "no decision in between":

   - trivial_eps(z): z derives ε through single-alternative (or
     closure-pre-decided) productions only — it vanishes without running
     a committing prediction;
   - exit_free(z): some usable production of z ends in a terminal, or in
     an exit-free nonterminal, modulo trivially-vanishing nullable tails
     — after z's subparse the next token is unconstrained;
   - free(x): some usable occurrence y → α x β where, walking α backward
     from x, the first non-trivially-vanishing symbol is a terminal or an
     exit-free nonterminal; or the whole prefix vanishes trivially and
     the (free) parent commits without scanning (single-alternative or
     pre-decided) — plus the start symbol.

   A freeing token is still not enough when the PARENT's own prediction
   must scan past x's position before committing (deep-lookahead
   pipelining: element → '<' NAME attrs• — the decision between the two
   element alternatives resolves only at '>' or '/>', beyond attrs).  The
   analyzer's DFA decides this exactly: an occurrence frees x only if the
   parent can commit to that production within the tokens its prefix can
   supply (commit depth from the cached DFA vs. the prefix's maximal
   yield).  If every committing scan covers x's position, the surviving
   configurations at that offset all read FIRST(x) (or the stable-return
   set ⊆ FOLLOW(x)) — which is exactly the deadness test.

   Freedom remains an overapproximation in one direction only (a
   committing word need not be consistent with the chosen prefix
   derivation): claiming free for a constrained decision costs a failed
   generation, reported as honest C002 residue, while the dead tags —
   which rely on ¬free — stay sound for the SLL machine (the LL fallback
   only ever runs after an EOF-ambiguous scan, which has covered every
   position already).

   Exit-freedom is computed constructively: instead of a boolean fixpoint
   the relaxation builds, per nonterminal, an EXIT YIELD — a concrete
   terminal yield ending in the committed exit token (['strict'] for an
   optional keyword, ['{'; '}'] for a bracketed alternative).  The
   generator needs it verbatim: the shortest yield of an exit-free
   sibling usually vanishes the very token that frees the position. *)
let free_lookahead g flow anl (result : Analyze.t) u_reach =
  let cache = result.Analyze.cache in
  let n = Grammar.num_nonterminals g in
  let nullable z = Flow.nullable flow z in
  let productive_sym = function
    | T _ -> true
    | NT z -> Flow.productive flow z
  in
  let usable ix = List.for_all productive_sym (Grammar.prod g ix).rhs in
  let single y = match Grammar.prods_of g y with [ _ ] -> true | _ -> false in
  let pre_decided y ix =
    (* Closure killed every rival alternative: the decision commits
       without scanning, constraining nothing. *)
    match Cache.find_init cache y with
    | Some s0 -> (Cache.info cache s0).Cache.verdict = Cache.V_all_pred ix
    | None -> false
  in
  (* Maximal yield length per nonterminal, saturated: any growth still
     happening after n rounds is a positive-length cycle, hence ∞. *)
  let inf = max_int / 4 in
  let maxy = Array.make n 0 in
  let sum_sat a b = if a >= inf || b >= inf || a + b >= inf then inf else a + b in
  let max_yield_seq syms =
    List.fold_left
      (fun acc -> function
        | T _ -> sum_sat acc 1
        | NT z -> sum_sat acc maxy.(z))
      0 syms
  in
  for _ = 0 to n do
    for z = 0 to n - 1 do
      List.iter
        (fun ix ->
          if usable ix then
            let l = max_yield_seq (Grammar.prod g ix).rhs in
            if l > maxy.(z) then maxy.(z) <- min l inf)
        (Grammar.prods_of g z)
    done
  done;
  let bumped = ref false in
  for z = 0 to n - 1 do
    List.iter
      (fun ix ->
        if usable ix && max_yield_seq (Grammar.prod g ix).rhs > maxy.(z)
        then begin
          maxy.(z) <- inf;
          bumped := true
        end)
      (Grammar.prods_of g z)
  done;
  if !bumped then
    (* One more saturating sweep so ∞ propagates to callers. *)
    for _ = 0 to n do
      for z = 0 to n - 1 do
        List.iter
          (fun ix ->
            if usable ix then
              let l = max_yield_seq (Grammar.prod g ix).rhs in
              if l > maxy.(z) then maxy.(z) <- min l inf)
          (Grammar.prods_of g z)
      done
    done;
  (* Shortest DFA scan after which decision [y] commits to production
     [ix] (V_all_pred states, reached through pending states), from one
     BFS per decision. *)
  let commit_depths = Hashtbl.create 16 in
  List.iter
    (fun (d : Analyze.decision) ->
      let y = d.Analyze.nt in
      let depths = Hashtbl.create 4 in
      (match Cache.find_init cache y with
      | None -> ()
      | Some s0 ->
        let nst = Cache.num_states cache in
        let dist = Array.make nst (-1) in
        let q = Queue.create () in
        let note s =
          match (Cache.info cache s).Cache.verdict with
          | Cache.V_all_pred p ->
            if not (Hashtbl.mem depths p) then Hashtbl.add depths p dist.(s)
          | _ -> ()
        in
        if s0 < nst then begin
          dist.(s0) <- 0;
          Queue.add s0 q;
          note s0
        end;
        while not (Queue.is_empty q) do
          let s = Queue.pop q in
          if (Cache.info cache s).Cache.verdict = Cache.V_pending then
            for a = 0 to Grammar.num_terminals g - 1 do
              let s' = Cache.trans_get cache s a in
              if s' >= 0 && s' < nst && dist.(s') < 0 then begin
                dist.(s') <- dist.(s) + 1;
                note s';
                Queue.add s' q
              end
            done
        done);
      Hashtbl.replace commit_depths y depths)
    result.Analyze.decisions;
  (* Can [y]'s decision commit to [ix] after at most [avail] tokens? *)
  let commits_within y ix avail =
    single y || pre_decided y ix
    ||
    match Hashtbl.find_opt commit_depths y with
    | None -> false
    | Some depths -> (
      match Hashtbl.find_opt depths ix with
      | Some depth -> depth <= avail
      | None -> false)
  in
  let trivial = Array.make n false in
  let changed = ref true in
  while !changed do
    changed := false;
    for z = 0 to n - 1 do
      if
        (not trivial.(z))
        && List.exists
             (fun ix ->
               (single z || pre_decided z ix)
               && List.for_all
                    (function T _ -> false | NT w -> trivial.(w))
                    (Grammar.prod g ix).rhs)
             (Grammar.prods_of g z)
      then begin
        trivial.(z) <- true;
        changed := true
      end
    done
  done;
  let exy : terminal list option array = Array.make n None in
  let exitf w = exy.(w) <> None in
  let min_yield_rev rev_syms =
    Analysis.min_yield_seq anl (List.rev rev_syms)
  in
  (* An exit yield for production [ix] of [z]: walking the rhs backward,
     the last non-trivially-vanishing symbol must be a terminal or carry
     an exit yield itself; everything before it is filled with its
     shortest yield.  The exit token frees the next position only if z's
     own decision can commit to this production before scanning past its
     yield. *)
  let prod_exit_yield z ix =
    let rhs = (Grammar.prod g ix).rhs in
    let rec back = function
      | [] -> None
      | T a :: rest -> (
        match min_yield_rev rest with
        | Some w -> Some (w @ [ a ])
        | None -> None)
      | NT w :: rest -> (
        match exy.(w) with
        | Some wy -> (
          match min_yield_rev rest with
          | Some pre -> Some (pre @ wy)
          | None -> None)
        | None -> if nullable w && trivial.(w) then back rest else None)
    in
    if commits_within z ix (max_yield_seq rhs) then back (List.rev rhs)
    else None
  in
  changed := true;
  while !changed do
    changed := false;
    for z = 0 to n - 1 do
      if exy.(z) = None then
        List.iter
          (fun ix ->
            if exy.(z) = None && usable ix then
              match prod_exit_yield z ix with
              | Some _ as y ->
                exy.(z) <- y;
                changed := true
              | None -> ())
          (Grammar.prods_of g z)
    done
  done;
  let free = Array.make n false in
  let q = Queue.create () in
  let set x =
    if not free.(x) then begin
      free.(x) <- true;
      Queue.add x q
    end
  in
  (* Direct rule: a terminal (or free exit) right before the occurrence,
     modulo trivially-vanishing nullables — whoever the parent is — and
     the parent's own decision able to commit within the prefix (deep
     lookahead pipelining otherwise pins x's position too). *)
  for y = 0 to n - 1 do
    if u_reach.(y) then
      List.iter
        (fun ix ->
          if usable ix then begin
            let arr = Array.of_list (Grammar.prod g ix).rhs in
            Array.iteri
              (fun pos sym ->
                match sym with
                | T _ -> ()
                | NT x ->
                  if not free.(x) then begin
                    let rec back j =
                      j >= 0
                      &&
                      match arr.(j) with
                      | T _ -> true
                      | NT w ->
                        exitf w
                        || (nullable w && trivial.(w) && back (j - 1))
                    in
                    let avail =
                      max_yield_seq
                        (Array.to_list (Array.sub arr 0 pos))
                    in
                    if back (pos - 1) && commits_within y ix avail then
                      set x
                  end)
              arr
          end)
        (Grammar.prods_of g y)
  done;
  set (Grammar.start g);
  (* Inherit closure: a trivially-vanishing prefix under a parent that
     commits without scanning passes the parent's freedom down. *)
  while not (Queue.is_empty q) do
    let y = Queue.pop q in
    List.iter
      (fun ix ->
        if usable ix && (single y || pre_decided y ix) then begin
          let arr = Array.of_list (Grammar.prod g ix).rhs in
          Array.iteri
            (fun pos sym ->
              match sym with
              | NT x when not free.(x) ->
                let rec back j =
                  j < 0
                  ||
                  match arr.(j) with
                  | T _ -> false
                  | NT w -> nullable w && trivial.(w) && back (j - 1)
                in
                if back (pos - 1) then set x
              | _ -> ())
            arr
        end)
      (Grammar.prods_of g y)
  done;
  (free, exy)

(* Which decision owns each cached DFA state: BFS from every decision's
   initial state over the cached transitions.  States are interned config
   sets whose members carry decision-specific production indices, so the
   per-decision DFAs are disjoint in practice; first owner wins. *)
let compute_owners g (result : Analyze.t) =
  let cache = result.Analyze.cache in
  let n = Cache.num_states cache in
  let nterms = Grammar.num_terminals g in
  let owner = Array.make n (-1) in
  List.iter
    (fun (d : Analyze.decision) ->
      match Cache.find_init cache d.Analyze.nt with
      | None -> ()
      | Some sid0 ->
        let q = Queue.create () in
        let visit sid =
          if sid < n && owner.(sid) < 0 then begin
            owner.(sid) <- d.Analyze.nt;
            Queue.add sid q
          end
        in
        visit sid0;
        while not (Queue.is_empty q) do
          let sid = Queue.pop q in
          for a = 0 to nterms - 1 do
            let sid' = Cache.trans_get cache sid a in
            if sid' >= 0 then visit sid'
          done
        done)
    result.Analyze.decisions;
  owner

let dead code reason = Dead { code; reason }

let make ?scanner g =
  let parser_ = P.make g in
  let anl = P.analysis parser_ in
  let flow = Flow.make g in
  let result = Analyze.analyze ~analysis:anl g in
  let cache = result.Analyze.cache in
  let u_reach, u_why = useful_reachability g anl in
  let free, exit_yield = free_lookahead g flow anl result u_reach in
  let owner = compute_owners g result in
  let dfa = Option.map Scanner.dfa scanner in
  let entries = ref [] in
  let count = ref 0 in
  let push e =
    entries := e :: !entries;
    incr count;
    !count - 1
  in
  (* Productions, in index order (entry index = production index). *)
  Array.iter
    (fun (p : Grammar.production) ->
      let status =
        if not (Flow.reachable flow p.lhs) then
          dead "C001"
            (Printf.sprintf "`%s` is unreachable from the start symbol (G001)"
               (Names.nonterminal g p.lhs))
        else
          match
            List.find_opt
              (function NT y -> not (Analysis.productive anl y) | T _ -> false)
              p.rhs
          with
          | Some (NT y) ->
            dead "C001"
              (Printf.sprintf
                 "`%s` derives no terminal string (G002), so no successful \
                  parse commits to this alternative (F001)"
                 (Names.nonterminal g y))
          | _ ->
            if not u_reach.(p.lhs) then
              dead "C001"
                (Printf.sprintf
                   "every occurrence of `%s` has an unproductive sibling \
                    symbol: no complete sentence reaches this alternative"
                   (Names.nonterminal g p.lhs))
            else Coverable
      in
      ignore (push { target = Prod p.ix; status; hits = 0 }))
    (Grammar.prods g);
  (* Decision points. *)
  let decision_ix = Hashtbl.create 16 in
  let decision_status = Hashtbl.create 16 in
  List.iter
    (fun (d : Analyze.decision) ->
      let x = d.Analyze.nt in
      let status =
        match d.Analyze.error with
        | Some e ->
          dead "C002"
            (Printf.sprintf "prediction cannot run: %s"
               (Costar_core.Types.error_to_string g e))
        | None ->
          if not (Flow.reachable flow x) then
            dead "C002"
              (Printf.sprintf
                 "decision `%s` is unreachable from the start symbol (G001)"
                 (Names.nonterminal g x))
          else if not u_reach.(x) then
            dead "C002"
              (Printf.sprintf
                 "every occurrence of `%s` has an unproductive sibling \
                  symbol: no complete sentence reaches this decision"
                 (Names.nonterminal g x))
          else Coverable
      in
      Hashtbl.replace decision_status x status;
      Hashtbl.replace decision_ix x (push { target = Decision x; status; hits = 0 }))
    result.Analyze.decisions;
  (* Cached prediction-DFA edges. *)
  let n_states = Cache.num_states cache in
  let edge_ix = Hashtbl.create 256 in
  for sid = 0 to n_states - 1 do
    let info = Cache.info cache sid in
    let pending = info.Cache.verdict = Cache.V_pending in
    for a = 0 to Grammar.num_terminals g - 1 do
      if Cache.trans_get cache sid a >= 0 then begin
        let status =
          let x = owner.(sid) in
          if x < 0 then
            dead "C002"
              "state is unreachable from every decision's initial state"
          else
            (* Inherit deadness from the owning decision. *)
            match Hashtbl.find_opt decision_status x with
            | Some (Dead { reason; _ }) ->
              dead "C002"
                (Printf.sprintf "its decision `%s` is dead: %s"
                   (Names.nonterminal g x) reason)
            | Some Coverable | None ->
              if not pending then
                dead "C002"
                  "the source state is already decided: the runtime loop \
                   returns its verdict without scanning further"
              else if
                (* Initial-state edge of a lookahead-constrained decision:
                   terminal [a] can never be the next token when the
                   machine pushes [x], because every usable context
                   pinches through an enclosing committing prediction
                   scanning from the same position. *)
                Cache.init_get cache x = sid
                && (not free.(x))
                && (not (Costar_flow.Bitset.mem (Flow.first flow x) a))
                && not
                     (Flow.nullable flow x
                     && Costar_flow.Bitset.mem (Flow.follow flow x) a)
              then
                dead "C002"
                  (Printf.sprintf
                     "lookahead `%s` cannot occur at entry to decision \
                      `%s`: it is outside FIRST and FOLLOW, and every \
                      context reaching the decision is pinned by an \
                      enclosing prediction"
                     (Names.terminal g a) (Names.nonterminal g x))
              else Coverable
        in
        Hashtbl.replace edge_ix (sid, a)
          (push { target = Edge (sid, a); status; hits = 0 })
      end
    done
  done;
  (* Lexer-DFA class transitions. *)
  let lex_ix = Hashtbl.create 256 in
  (match dfa with
  | None -> ()
  | Some d ->
    for s = 0 to Dfa.num_states d - 1 do
      for k = 0 to Dfa.num_classes d - 1 do
        let s' = Dfa.next_class d s k in
        if s' >= 0 then begin
          let status =
            match Dfa.accept_witness d s' with
            | Some _ -> Coverable
            | None ->
              dead "C003"
                "no accepting state is reachable from the successor: every \
                 scan taking this transition backtracks to an earlier match \
                 or fails"
          in
          Hashtbl.replace lex_ix (s, k)
            (push { target = Lex_trans (s, k); status; hits = 0 })
        end
      done
    done);
  {
    g;
    flow;
    anl;
    parser_;
    result;
    scanner;
    dfa;
    n_states;
    u_reach;
    u_why;
    exit_yield;
    owner;
    entries = Array.of_list (List.rev !entries);
    decision_ix;
    edge_ix;
    lex_ix;
  }

(* --- Runtime marking ----------------------------------------------------- *)

let with_cov f =
  Instr.cov_reset ();
  Instr.cov_enabled := true;
  Fun.protect ~finally:(fun () -> Instr.cov_enabled := false) f

(* Fold the calling domain's coverage tallies into the universe.  Runtime
   keys outside the universe (DFA states interned after [make], productions
   of another grammar) are ignored: the universe is a fixed denominator. *)
let drain t =
  List.iter
    (fun (ix, n) ->
      if ix >= 0 && ix < Grammar.num_productions t.g then
        let e = t.entries.(ix) in
        e.hits <- e.hits + n)
    (Instr.cov_prod_hits ());
  List.iter
    (fun (x, n) ->
      match Hashtbl.find_opt t.decision_ix x with
      | Some i -> t.entries.(i).hits <- t.entries.(i).hits + n
      | None -> ())
    (Instr.cov_decision_hits ());
  List.iter
    (fun (key, n) ->
      match Hashtbl.find_opt t.edge_ix key with
      | Some i -> t.entries.(i).hits <- t.entries.(i).hits + n
      | None -> ())
    (Instr.cov_edge_hits ());
  Instr.cov_reset ()

(* Parse under coverage instrumentation, through the analyzer's own cache,
   so runtime edge ids coincide with universe edge ids.  The parse result
   is returned (coverage counts pushes and DFA walks even on rejection). *)
let mark_word t word =
  let r =
    with_cov (fun () ->
        fst (P.run_with_cache_word t.parser_ t.result.Analyze.cache word))
  in
  drain t;
  r

let mark_tokens t toks = mark_word t (Word.of_tokens toks)

(* Byte-level lexer replay: re-run the DFA over the input with
   maximal-munch restarts (the hot scanner stays uninstrumented), crediting
   the class transitions along each *accepted* lexeme — transitions in
   overrun suffixes that a scan later backtracks out of do not count, which
   matches the C003 deadness definition.  Stops at the first lexical
   error; returns the number of accepted lexemes (skips included). *)
let mark_bytes t text =
  match t.dfa with
  | None -> 0
  | Some d ->
    let n = String.length text in
    let ctab = Dfa.class_table d in
    let credit s k =
      match Hashtbl.find_opt t.lex_ix (s, k) with
      | Some i -> t.entries.(i).hits <- t.entries.(i).hits + 1
      | None -> ()
    in
    let tokens = ref 0 in
    let pos = ref 0 in
    let ok = ref true in
    while !ok && !pos < n do
      let s = ref (Dfa.start d) in
      let i = ref !pos in
      let last_accept = ref (-1) in
      let path = ref [] in
      (* (source state, class, end offset) *)
      let alive = ref true in
      while !alive && !i < n do
        let k = ctab.(Char.code text.[!i]) in
        let s' = Dfa.next_class d !s k in
        if s' < 0 then alive := false
        else begin
          path := (!s, k, !i + 1) :: !path;
          s := s';
          incr i;
          if Dfa.accept_ix d !s >= 0 then last_accept := !i
        end
      done;
      if !last_accept <= !pos then ok := false
      else begin
        let stop = !last_accept in
        List.iter
          (fun (s, k, end_ofs) -> if end_ofs <= stop then credit s k)
          !path;
        incr tokens;
        pos := stop
      end
    done;
    !tokens

(* --- Reporting ----------------------------------------------------------- *)

type kind = K_prod | K_decision | K_edge | K_lex

let kind_of = function
  | Prod _ -> K_prod
  | Decision _ -> K_decision
  | Edge _ -> K_edge
  | Lex_trans _ -> K_lex

let kind_name = function
  | K_prod -> "productions"
  | K_decision -> "decisions"
  | K_edge -> "decision edges"
  | K_lex -> "lexer transitions"

type summary = {
  covered : int;
  coverable : int;
  dead : int;
}

let summary t =
  let kinds =
    [ K_prod; K_decision; K_edge ] @ if t.dfa = None then [] else [ K_lex ]
  in
  List.map
    (fun k ->
      let sum =
        Array.fold_left
          (fun acc e ->
            if kind_of e.target <> k then acc
            else
              match e.status with
              | Dead _ -> { acc with dead = acc.dead + 1 }
              | Coverable ->
                {
                  acc with
                  coverable = acc.coverable + 1;
                  covered = (acc.covered + if e.hits > 0 then 1 else 0);
                })
          { covered = 0; coverable = 0; dead = 0 }
          t.entries
      in
      (k, sum))
    kinds

let residual t =
  Array.to_list t.entries
  |> List.filter (fun e -> e.status = Coverable && e.hits = 0)

let describe t = function
  | Prod ix -> Printf.sprintf "production %s" (Names.production t.g ix)
  | Decision x ->
    Printf.sprintf "decision `%s` (%d alternatives)" (Names.nonterminal t.g x)
      (List.length (Grammar.prods_of t.g x))
  | Edge (sid, a) ->
    let who =
      let x = if sid < Array.length t.owner then t.owner.(sid) else -1 in
      if x < 0 then "" else Printf.sprintf "decision `%s`: " (Names.nonterminal t.g x)
    in
    Printf.sprintf "%sDFA edge %d --'%s'--> %d" who sid (Names.terminal t.g a)
      (Cache.trans_get t.result.Analyze.cache sid a)
  | Lex_trans (s, k) -> (
    match t.dfa with
    | None -> Printf.sprintf "lexer transition %d/%d" s k
    | Some d ->
      Printf.sprintf "lexer DFA edge %d --class %d (%C)--> %d" s k
        (Dfa.class_rep d k) (Dfa.next_class d s k))

let severity_of_code code =
  match Lint.find_rule code with
  | Some r -> r.Lint.default_severity
  | None -> D.Info

(* C-code diagnostics for the statically dead targets.  Spans are dummy
   (targets live in compiled artifacts, not source text); the grammar file
   is attached when known so SARIF output still lands somewhere. *)
let dead_diags ?file t =
  Array.to_list t.entries
  |> List.filter_map (fun e ->
         match e.status with
         | Coverable -> None
         | Dead { code; reason } ->
           Some
             (D.make ~severity:(severity_of_code code) ?file
                ~notes:[ reason ] code
                (Printf.sprintf "dead coverage target: %s" (describe t e.target))))
