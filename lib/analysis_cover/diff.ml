(* Differential runner for generated corpora: one input, three engines.

   The verified-core parser is the reference; the Turbo engine must agree
   tree-for-tree and the Earley oracle must agree on the verdict (tree
   count 0 / 1 / ≥2 maps onto Reject / Unique / Ambig).  Two more
   obligations ride along on the reference run: the paper's §4 termination
   measure must strictly decrease across every machine step, and rejection
   diagnostics must carry sane positions.  Any violation is a one-line
   human-readable report; a run over a corpus is a fuzz gate. *)

open Costar_grammar
module P = Costar_core.Parser
module Measure = Costar_core.Measure
module Turbo = Costar_turbo.Turbo
module Count = Costar_earley.Count
module R = Costar_recover.Recover

let result_kind = function
  | P.Unique _ -> "Unique"
  | P.Ambig _ -> "Ambig"
  | P.Reject _ -> "Reject"
  | P.Error _ -> "Error"

(* Positions quoted in a rejection message must exist: a "line L" must be
   1-based and no further than one past the last input line (EOF errors
   point just past the end). *)
let position_sane toks msg =
  if String.length msg = 0 then Error "empty rejection message"
  else begin
    let max_line =
      List.fold_left (fun acc tok -> max acc tok.Token.line) 0 toks
    in
    let ok = ref (Ok ()) in
    let n = String.length msg in
    let key = "line " in
    let kl = String.length key in
    let i = ref 0 in
    while !ok = Ok () && !i + kl < n do
      if String.sub msg !i kl = key && msg.[!i + kl] >= '0' && msg.[!i + kl] <= '9'
      then begin
        let j = ref (!i + kl) in
        while !j < n && msg.[!j] >= '0' && msg.[!j] <= '9' do
          incr j
        done;
        let l = int_of_string (String.sub msg (!i + kl) (!j - !i - kl)) in
        if l < 1 || l > max_line + 1 then
          ok :=
            Error
              (Printf.sprintf "diagnostic quotes line %d, input has %d" l
                 max_line);
        i := !j
      end
      else incr i
    done;
    !ok
  end

(* Run one input through the trio.  [turbo] lets a caller reuse one cached
   engine across a corpus (the point of Turbo); a fresh one is created
   otherwise. *)
let verdict_kind = function
  | R.Recovered _ -> "Recovered"
  | R.Recovered_ambig _ -> "Recovered_ambig"
  | R.Fatal _ -> "Fatal"

let run ?turbo ?recover g toks =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf Result.error fmt in
  (* Reference parse, with the §4 measure checked at every machine step. *)
  let prev = ref None in
  let monotone = ref (Ok ()) in
  let reference =
    P.run_inspect (P.make g)
      ~inspect:(fun st ->
        match !monotone with
        | Error _ -> ()
        | Ok () ->
          let m = Measure.meas g st in
          (match !prev with
          | Some m0 when not (Measure.compare m m0 < 0) ->
            monotone := Error "the §4 termination measure failed to decrease"
          | _ -> ());
          prev := Some m)
      toks
  in
  let* () = !monotone in
  let* () =
    match reference with
    | P.Error e -> err "core parser error: %s" (Costar_core.Types.error_to_string g e)
    | _ -> Ok ()
  in
  (* Turbo must agree with the core constructor-for-constructor and
     tree-for-tree. *)
  let t = match turbo with Some t -> t | None -> Turbo.create g in
  let fast = Turbo.parse t toks in
  let* () =
    match (reference, fast) with
    | P.Unique t1, P.Unique t2 | P.Ambig t1, P.Ambig t2 ->
      if Tree.equal t1 t2 then Ok ()
      else err "turbo/core tree mismatch on a %s parse" (result_kind reference)
    | P.Reject _, P.Reject _ -> Ok ()
    | r1, r2 ->
      err "turbo/core verdict mismatch: core %s, turbo %s" (result_kind r1)
        (result_kind r2)
  in
  (* Earley oracle: tree count 0/1/>=2 against Reject/Unique/Ambig; on a
     unique parse the trees must coincide. *)
  let count = Count.count_trees ~cap:2 g toks in
  let* () =
    match (reference, count) with
    | P.Reject _, 0 | P.Ambig _, 2 -> Ok ()
    | P.Unique t1, 1 -> (
      match Count.first_tree g toks with
      | Some t2 when Tree.equal t1 t2 -> Ok ()
      | Some _ -> Error "earley/core tree mismatch on a unique parse"
      | None -> Error "earley counted one tree but enumerated none")
    | r, n ->
      err "earley/core verdict mismatch: core %s, earley counts %s"
        (result_kind r)
        (if n >= 2 then ">=2" else string_of_int n)
  in
  (* Recovery lane: the error-recovery engine must be conservative on
     well-formed input (bit-identical tree, empty event list) and
     productive on malformed input (>=1 coded diagnostic, an error-marked
     partial tree), with the extended §4 measure strictly decreasing
     across every repair (the no-hang obligation — [verify_measure]
     raises on any violation, caught below). *)
  let* () =
    match recover with
    | None -> Ok ()
    | Some r -> (
      match R.run ~verify_measure:true r toks with
      | exception e -> err "recovery engine raised: %s" (Printexc.to_string e)
      | o -> (
        match (reference, o.R.verdict, o.R.events) with
        | P.Unique t1, R.Recovered t2, [] ->
          if Tree.equal t1 t2 then Ok ()
          else Error "recovery changed the tree of a clean Unique parse"
        | P.Ambig t1, R.Recovered_ambig t2, [] ->
          if Tree.equal t1 t2 then Ok ()
          else Error "recovery changed the tree of a clean Ambig parse"
        | P.Reject _, (R.Recovered t | R.Recovered_ambig t), (_ :: _ as evs) ->
          if not (Tree.has_errors t) then
            Error
              "recovery of a rejected input produced a tree without error \
               nodes"
          else
            List.fold_left
              (fun acc (e : R.event) ->
                let* () = acc in
                position_sane toks e.R.diag.Costar_lint.Diagnostic.message)
              (Ok ()) evs
        | P.Error _, R.Fatal _, _ -> Ok ()
        | rr, v, evs ->
          err "recovery lane mismatch: core %s, recovery %s with %d events"
            (result_kind rr) (verdict_kind v) (List.length evs)))
  in
  (* Rejection diagnostics must be non-empty and position-sane. *)
  match reference with
  | P.Reject msg -> position_sane toks msg
  | _ -> Ok ()
