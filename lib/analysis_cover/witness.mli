(** Witness-directed sentence generation over a coverage universe:
    Purdom-style shortest-derivation contexts from the useful-reachability
    chains, with per-target steering (production expansion, decision entry,
    DFA lookahead prefix, lexer-DFA path).  See DESIGN.md §12. *)

open Costar_grammar.Symbols

(** Terminal (prefix, suffix) context around a usefully reachable
    nonterminal, every sibling filled with its shortest yield. *)
val context :
  Cover.t -> nonterminal -> (terminal list * terminal list) option

(** All candidate contexts: the useful-reachability chain first, then one
    per direct occurrence under a usefully reachable parent — different
    occurrences place the hole under different enclosing decisions. *)
val contexts : Cover.t -> nonterminal -> (terminal list * terminal list) list

(** A complete sentence committing to production [ix]. *)
val prod_witness : Cover.t -> int -> terminal list option

(** A complete sentence running the decision at [x]. *)
val decision_witness : Cover.t -> nonterminal -> terminal list option

(** Shortest lookahead word from the decision's initial DFA state to a
    state, through pending states only. *)
val edge_prefix : Cover.t -> nonterminal -> int -> terminal list option

(** A sentence whose prediction at the owning decision scans across the
    cached DFA edge (the parse itself may still reject — scanning the edge
    is what covers it). *)
val edge_witness : Cover.t -> int * terminal -> terminal list option

(** A byte string that is one maximal lexeme crossing the lexer-DFA
    transition. *)
val lex_witness : Cover.t -> int * int -> string option

type generated = {
  label : string;  (** the target the sentence was generated for *)
  tokens : terminal list option;  (** token-level sentence, if any *)
  bytes : string option;  (** byte-level rendering / raw lexer input *)
}

(** Generate and run a sentence per uncovered coverable target (coverage is
    re-checked before each generation, so one sentence covering many
    targets suppresses later ones).  Token sentences run through the
    instrumented parser; byte renderings and lexer witnesses through the
    DFA replay. *)
val close : Cover.t -> generated list

(** C002/C003/C004 diagnostics for coverable targets still uncovered after
    {!close}, with witness-chain notes. *)
val residual_diags : ?file:string -> Cover.t -> Costar_lint.Diagnostic.t list
