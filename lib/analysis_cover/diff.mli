(** Differential fuzz runner: one input through the verified-core parser
    (reference), the Turbo engine, and the Earley oracle, asserting tree
    agreement, strict §4-measure decrease, and position-sane rejection
    diagnostics.  See DESIGN.md §12. *)

open Costar_grammar

(** [Ok ()] when all engines agree and all side obligations hold;
    [Error msg] is a one-line human-readable violation report.  Pass
    [turbo] to reuse a cached engine across a corpus, and [recover] to
    additionally drive the error-recovery lane: conservative on
    well-formed input (bit-identical tree, no events), productive on
    rejected input (error-marked partial tree with position-sane coded
    diagnostics), measure-verified throughout. *)
val run :
  ?turbo:Costar_turbo.Turbo.t ->
  ?recover:Costar_recover.Recover.t ->
  Grammar.t ->
  Token.t list ->
  (unit, string) result

(** Non-empty and every quoted "line L" within one past the input's last
    line.  Exposed for tests. *)
val position_sane : Token.t list -> string -> (unit, string) result
