(** Deterministic input mutators for the recovery fuzz gate.

    Each mutator derives a malformed (or occasionally still-valid) variant
    of a seed input: byte-level edits stress the scanner and the P004
    path, token-level edits stress parse-time recovery (P001–P003).
    Streams come from {!Costar_grammar.Rng}, so a (seed, index) pair
    always derives the same mutant — the fuzz corpus is reproducible and
    failures replay. *)

open Costar_grammar

(** What was done to the input, for failure reports ("byte flip at 17",
    "deleted token 4", ...). *)
type edit =
  | Byte_flip of int
  | Byte_insert of int
  | Byte_delete of int
  | Byte_truncate of int
  | Token_delete of int
  | Token_dup of int
  | Token_swap of int
  | Token_truncate of int

val edit_to_string : edit -> string

(** A derived input: either mutated source text (to be re-tokenized, and
    allowed to fail the lexer) or a mutated token list (bypasses the
    scanner, always reaches the parser). *)
type mutant =
  | Source of string * edit
  | Tokens of Token.t list * edit

(** [derive rng ~source ~tokens] draws one random mutant of the seed
    input.  Byte-level and token-level edits are drawn with equal
    probability when [tokens] is non-empty; an empty token list (or
    empty source) restricts the menu to whatever stays well-defined. *)
val derive : Random.State.t -> source:string -> tokens:Token.t list -> mutant
