(* Witness-directed sentence generation: for each coverable-but-uncovered
   target, build a concrete sentence that exercises it.

   The backbone is Purdom-style shortest derivation: the useful-reachability
   parent chain ([Cover.u_why]) is replayed root-first into a (prefix,
   suffix) terminal context around any nonterminal, with every sibling
   filled by its shortest yield.  Per-target steering then plants the
   interesting material in the hole:

   - a production: its own shortest expansion;
   - a decision: any yield of its nonterminal (reaching it runs prediction);
   - a DFA edge (sid, a): the BFS lookahead prefix w from the decision's
     initial state to sid, then [a] — covering the edge only requires the
     machine to reach the decision with remaining input starting w·a; a
     completion from the target state's configurations is appended so the
     sentence usually also parses;
   - a lexer transition: shortest string to the source state, the class's
     representative byte, then the shortest completion to acceptance.

   Byte-level rendering inverts the lexer DFA to a shortest accepted lexeme
   per terminal and validates by re-tokenizing; when a terminal has no
   lexeme (post-pass tokens such as INDENT/DEDENT), the sentence stays
   token-level. *)

open Costar_grammar
open Costar_grammar.Symbols
module Cache = Costar_core.Cache
module Config = Costar_core.Config
module Frames = Costar_grammar.Frames
module Analyze = Costar_predict_analysis.Analyze
module D = Costar_lint.Diagnostic
module Dfa = Costar_lex.Dfa
module Scanner = Costar_lex.Scanner

(* --- Derivation contexts ------------------------------------------------- *)

let yield_of (t : Cover.t) syms =
  match Analysis.min_yield_seq t.Cover.anl syms with
  | Some w -> w
  | None -> []  (* unproductive sibling: cannot happen on u_reach chains *)

(* Terminal (prefix, suffix) context around nonterminal [x], following the
   useful-reachability parent chain root-first; every occurrence on the
   chain has productive siblings, so the context always completes into a
   sentence.  [None] when [x] is not usefully reachable. *)
let context (t : Cover.t) x =
  if x < 0 || x >= Array.length t.Cover.u_reach || not t.Cover.u_reach.(x) then
    None
  else begin
    let rec go x =
      match t.Cover.u_why.(x) with
      | -1, -1 -> ([], [])  (* the start symbol *)
      | ix, pos ->
        let p = Grammar.prod t.Cover.g ix in
        let pre, suf = go p.lhs in
        let before = List.filteri (fun j _ -> j < pos) p.rhs in
        let after = List.filteri (fun j _ -> j > pos) p.rhs in
        (pre @ yield_of t before, yield_of t after @ suf)
    in
    Some (go x)
  end

(* A fill of the [before] siblings that realizes exit-freedom: the last
   non-vanishing sibling expanded to its exit yield (which ends in a
   committed token) instead of its shortest yield — the shortest yield
   usually vanishes the very token that frees the position. *)
let free_fill (t : Cover.t) before =
  let arr = Array.of_list before in
  let rec back j =
    if j < 0 then None
    else
      match arr.(j) with
      | T _ -> None  (* the shortest fill already ends in a terminal *)
      | NT w -> (
        match t.Cover.exit_yield.(w) with
        | Some wy -> (
          match
            Analysis.min_yield_seq t.Cover.anl
              (Array.to_list (Array.sub arr 0 j))
          with
          | Some pre -> Some (pre @ wy)
          | None -> None)
        | None ->
          if Analysis.min_yield t.Cover.anl w = Some [] then back (j - 1)
          else None)
  in
  back (Array.length arr - 1)

(* Candidate contexts per nonterminal, capped.  Beyond the useful-
   reachability chain, the enumeration recurses over every occurrence
   under every context of its parent, with min-yield and exit-yield
   sibling fills: different occurrence chains place the hole under
   different enclosing decisions, and a sentence that rejects through one
   chain (an enclosing prediction scanning past the hole before
   committing) often drives the target cleanly through another. *)
let max_contexts = 32

let contexts_fn (t : Cover.t) =
  let g = t.Cover.g in
  let n = Grammar.num_nonterminals g in
  let occs = Array.make n [] in
  for y = 0 to n - 1 do
    if t.Cover.u_reach.(y) then
      List.iter
        (fun ix ->
          List.iteri
            (fun pos sym ->
              match sym with
              | NT x -> occs.(x) <- (y, ix, pos) :: occs.(x)
              | T _ -> ())
            (Grammar.prod g ix).rhs)
        (Grammar.prods_of g y)
  done;
  for x = 0 to n - 1 do
    occs.(x) <- List.rev occs.(x)
  done;
  let memo = Array.make n None in
  let visiting = Array.make n false in
  let rec go x =
    if x < 0 || x >= n || not t.Cover.u_reach.(x) then []
    else
      match memo.(x) with
      | Some cs -> cs
      | None when visiting.(x) -> []  (* break occurrence cycles *)
      | None ->
        visiting.(x) <- true;
        let acc = ref (match context t x with Some c -> [ c ] | None -> []) in
        let add c =
          if List.length !acc < max_contexts && not (List.mem c !acc) then
            acc := !acc @ [ c ]
        in
        List.iter
          (fun (y, ix, pos) ->
            let p = Grammar.prod g ix in
            let before = List.filteri (fun j _ -> j < pos) p.rhs in
            let after = List.filteri (fun j _ -> j > pos) p.rhs in
            match
              ( Analysis.min_yield_seq t.Cover.anl before,
                Analysis.min_yield_seq t.Cover.anl after )
            with
            | Some b, Some a ->
              let fills =
                match free_fill t before with
                | Some f when f <> b -> [ b; f ]
                | _ -> [ b ]
              in
              List.iter
                (fun (pre, suf) ->
                  List.iter (fun fill -> add (pre @ fill, a @ suf)) fills)
                (go y)
            | _ -> ())
          occs.(x);
        visiting.(x) <- false;
        memo.(x) <- Some !acc;
        !acc
  in
  go

let contexts (t : Cover.t) x = contexts_fn t x

let prod_witnesses_with ctxs (t : Cover.t) ix =
  let p = Grammar.prod t.Cover.g ix in
  match Analysis.min_yield_seq t.Cover.anl p.rhs with
  | None -> []
  | Some y -> List.map (fun (pre, suf) -> pre @ y @ suf) (ctxs p.lhs)

let prod_witnesses (t : Cover.t) ix = prod_witnesses_with (contexts_fn t) t ix

let prod_witness (t : Cover.t) ix =
  match prod_witnesses t ix with w :: _ -> Some w | [] -> None

let decision_witnesses_with ctxs (t : Cover.t) x =
  match Analysis.min_yield t.Cover.anl x with
  | None -> []
  | Some y -> List.map (fun (pre, suf) -> pre @ y @ suf) (ctxs x)

let decision_witnesses (t : Cover.t) x =
  decision_witnesses_with (contexts_fn t) t x

let decision_witness (t : Cover.t) x =
  match decision_witnesses t x with w :: _ -> Some w | [] -> None

(* --- DFA-edge steering --------------------------------------------------- *)

(* Shortest lookahead words driving the cached DFA from decision [x]'s
   initial state, through pending states only (the runtime loop stops
   scanning at a decided state, so paths through them are not walkable).
   One BFS serves every state of the decision; [prefix_fn] memoizes it per
   decision, which matters when reporting thousands of residual edges. *)
let prefix_arrays (t : Cover.t) x =
  let cache = t.Cover.result.Analyze.cache in
  let n = t.Cover.n_states in
  let dist = Array.make n (-1) in
  let back = Array.make n (-1, -1) in
  (match Cache.find_init cache x with
  | None -> ()
  | Some s0 ->
    let q = Queue.create () in
    let pending s = (Cache.info cache s).Cache.verdict = Cache.V_pending in
    if s0 < n then begin
      dist.(s0) <- 0;
      Queue.add s0 q
    end;
    while not (Queue.is_empty q) do
      let s = Queue.pop q in
      if pending s then
        for a = 0 to Grammar.num_terminals t.Cover.g - 1 do
          let s' = Cache.trans_get cache s a in
          if s' >= 0 && s' < n && dist.(s') < 0 then begin
            dist.(s') <- dist.(s) + 1;
            back.(s') <- (s, a);
            Queue.add s' q
          end
        done
    done);
  (dist, back)

let prefix_of_arrays (dist, back) sid =
  if sid < 0 || sid >= Array.length dist || dist.(sid) < 0 then None
  else begin
    let rec build s acc =
      if dist.(s) = 0 then acc
      else
        let p, a = back.(s) in
        build p (a :: acc)
    in
    Some (build sid [])
  end

let prefix_fn (t : Cover.t) =
  let memo = Hashtbl.create 8 in
  fun x sid ->
    let arrays =
      match Hashtbl.find_opt memo x with
      | Some arrays -> arrays
      | None ->
        let arrays = prefix_arrays t x in
        Hashtbl.add memo x arrays;
        arrays
    in
    prefix_of_arrays arrays sid

let edge_prefix (t : Cover.t) x sid = prefix_of_arrays (prefix_arrays t x) sid

(* A terminal completion for the subparser that just scanned w·a into the
   target state: the shortest yield of one surviving configuration's frame
   stack, preferring configurations still inside the decision's expansion
   ([Ctx_nt]) over stable-return forks.  Empty on failure — the edge is
   covered by the scan itself; only the surrounding parse gets sloppier. *)
let edge_completion (t : Cover.t) sid a =
  let cache = t.Cover.result.Analyze.cache in
  let fr = Analysis.frames t.Cover.anl in
  let sid' = Cache.trans_get cache sid a in
  if sid' < 0 then []
  else begin
    let configs = (Cache.info cache sid').Cache.configs in
    let inside, forks =
      List.partition
        (fun (c : Config.sll) ->
          match c.Config.s_ctx with
          | Config.Ctx_nt _ -> true
          | Config.Ctx_accept -> false)
        configs
    in
    let rec first = function
      | [] -> []
      | (c : Config.sll) :: rest -> (
        let syms = List.concat (Frames.frames_of_spine fr c.Config.s_frames) in
        match Analysis.min_yield_seq t.Cover.anl syms with
        | Some w -> w
        | None -> first rest)
    in
    first (inside @ forks)
  end

let edge_witnesses_with ctxs prefix (t : Cover.t) (sid, a) =
  let x = if sid < Array.length t.Cover.owner then t.Cover.owner.(sid) else -1 in
  if x < 0 then []
  else
    match prefix x sid with
    | None -> []
    | Some w ->
      let tail = a :: edge_completion t sid a in
      List.map (fun (pre, suf) -> pre @ w @ tail @ suf) (ctxs x)

let edge_witness (t : Cover.t) e =
  match edge_witnesses_with (contexts_fn t) (prefix_fn t) t e with
  | w :: _ -> Some w
  | [] -> None

(* --- Lexer-transition steering ------------------------------------------- *)

(* A byte string whose scan drives the lexer DFA across (s, class k): the
   shortest path to [s], the class's representative byte, then the shortest
   completion to an accepting state — so the whole string is one maximal
   lexeme and the replay credits every transition along it. *)
let lex_witness (t : Cover.t) (s, k) =
  match t.Cover.dfa with
  | None -> None
  | Some d -> (
    let s' = Dfa.next_class d s k in
    if s' < 0 then None
    else
      match Dfa.witness d s, Dfa.accept_witness d s' with
      | Some head, Some tail ->
        Some (head ^ String.make 1 (Dfa.class_rep d k) ^ tail)
      | _ -> None)

(* --- Byte rendering ------------------------------------------------------ *)

(* terminal -> shortest byte lexeme, by inverting the lexer DFA per Emit
   rule (first-rule-wins already folded into [rule_witness]); terminals the
   scanner never emits (post-pass tokens like INDENT/DEDENT) are absent. *)
let lexeme_table (t : Cover.t) =
  match t.Cover.scanner with
  | None -> (Hashtbl.create 1, " ")
  | Some sc ->
    let d = Scanner.dfa sc in
    let tbl = Hashtbl.create 32 in
    let sep = ref None in
    List.iteri
      (fun ix (r : Scanner.rule) ->
        match r.Scanner.action with
        | Scanner.Emit ->
          if not (Hashtbl.mem tbl r.Scanner.name) then (
            match Dfa.rule_witness d ix with
            | Some w -> Hashtbl.add tbl r.Scanner.name w
            | None -> ())
        | Scanner.Skip ->
          if !sep = None then sep := Dfa.rule_witness d ix)
      (Scanner.rules sc);
    (tbl, Option.value !sep ~default:" ")

(* Render a terminal sentence to bytes and check the scanner reads it back
   kind-for-kind; [None] (stay token-level) when a terminal has no lexeme
   or the rendering re-tokenizes differently (e.g. two adjacent lexemes
   fusing into one). *)
let render_bytes (t : Cover.t) ~lexemes ~sep terms =
  match t.Cover.scanner with
  | None -> None
  | Some sc -> (
    let rec collect acc = function
      | [] -> Some (List.rev acc)
      | a :: rest -> (
        match Hashtbl.find_opt lexemes (Names.terminal t.Cover.g a) with
        | Some w -> collect (w :: acc) rest
        | None -> None)
    in
    match collect [] terms with
    | None -> None
    | Some ws -> (
      let text = String.concat sep ws in
      match Scanner.tokenize sc t.Cover.g text with
      | Ok toks
        when List.length toks = List.length terms
             && List.for_all2 (fun tok a -> Token.term tok = a) toks terms ->
        Some text
      | _ -> None))

(* --- Closing the universe ------------------------------------------------ *)

type generated = {
  label : string;  (** the target the sentence was generated for *)
  tokens : terminal list option;  (** token-level sentence, if any *)
  bytes : string option;  (** byte-level rendering / raw lexer input *)
}

(* Generate a sentence per uncovered coverable target and run it through
   the instrumented pipeline, re-checking coverage before each generation
   (one sentence usually covers many targets).  Token sentences mark the
   parser universe; their byte renderings — and the raw lexer-edge
   witnesses — mark the lexer universe. *)
let close (t : Cover.t) =
  let lexemes, sep = lexeme_table t in
  let prefix = prefix_fn t in
  let ctxs = contexts_fn t in
  let out = ref [] in
  let try_tokens label terms =
    let bytes = render_bytes t ~lexemes ~sep terms in
    ignore
      (Cover.mark_tokens t (Analyze.tokens_of_terms t.Cover.g terms));
    Option.iter (fun b -> ignore (Cover.mark_bytes t b)) bytes;
    out := { label; tokens = Some terms; bytes } :: !out
  in
  let uncovered e = e.Cover.status = Cover.Coverable && e.Cover.hits = 0 in
  (* Run candidate sentences for [e] until one of them covers it. *)
  let attempt e label candidates =
    List.iter
      (fun terms -> if uncovered e then try_tokens label terms)
      candidates
  in
  Array.iter
    (fun (e : Cover.entry) ->
      if uncovered e then
        match e.Cover.target with
        | Cover.Prod ix ->
          attempt e
            (Cover.describe t e.Cover.target)
            (prod_witnesses_with ctxs t ix)
        | _ -> ())
    t.Cover.entries;
  Array.iter
    (fun (e : Cover.entry) ->
      if uncovered e then
        match e.Cover.target with
        | Cover.Decision x ->
          attempt e
            (Cover.describe t e.Cover.target)
            (decision_witnesses_with ctxs t x)
        | _ -> ())
    t.Cover.entries;
  Array.iter
    (fun (e : Cover.entry) ->
      if uncovered e then
        match e.Cover.target with
        | Cover.Edge (sid, a) ->
          attempt e
            (Cover.describe t e.Cover.target)
            (edge_witnesses_with ctxs prefix t (sid, a))
        | _ -> ())
    t.Cover.entries;
  Array.iter
    (fun (e : Cover.entry) ->
      if uncovered e then
        match e.Cover.target with
        | Cover.Lex_trans (s, k) ->
          Option.iter
            (fun b ->
              ignore (Cover.mark_bytes t b);
              out :=
                { label = Cover.describe t e.Cover.target;
                  tokens = None;
                  bytes = Some b }
                :: !out)
            (lex_witness t (s, k))
        | _ -> ())
    t.Cover.entries;
  List.rev !out

(* --- Residue diagnostics ------------------------------------------------- *)

(* C-code diagnostics for coverable targets the generator failed to reach,
   each with the best witness-chain explanation we can compute. *)
let residual_diags ?file (t : Cover.t) =
  let prefix = prefix_fn t in
  let conflict_notes x =
    match Analyze.decision_for t.Cover.result x with
    | None -> []
    | Some d ->
      List.concat_map
        (fun (c : Analyze.conflict) ->
          let i, j = c.Analyze.alts in
          let w = Analyze.witness_string t.Cover.g c.Analyze.witness in
          [ Printf.sprintf
              "alternatives %d and %d stay conflicted on lookahead %s%s" i j w
              (match c.Analyze.ambiguous_word with
              | Some _ -> " (Earley-confirmed ambiguity)"
              | None -> "") ]
          )
        d.Analyze.conflicts
  in
  Cover.residual t
  |> List.map (fun (e : Cover.entry) ->
         let code, notes =
           match e.Cover.target with
           | Cover.Prod ix ->
             let x = (Grammar.prod t.Cover.g ix).lhs in
             ( "C004",
               "generation could not commit prediction to this alternative"
               :: conflict_notes x )
           | Cover.Decision x ->
             ("C004", "no generated sentence ran this decision" :: conflict_notes x)
           | Cover.Edge (sid, a) ->
             let x =
               if sid < Array.length t.Cover.owner then t.Cover.owner.(sid)
               else -1
             in
             let chain =
               match if x < 0 then None else prefix x sid with
               | Some w ->
                 [ Printf.sprintf "lookahead prefix to the source state: %s"
                     (Analyze.witness_string t.Cover.g (w @ [ a ])) ]
               | None ->
                 [ "no pending-state lookahead path reaches the source \
                    state: the edge is viable only under the stable-return \
                    approximation" ]
             in
             ("C002", chain)
           | Cover.Lex_trans (s, k) ->
             ( "C003",
               match lex_witness t (s, k) with
               | Some w -> [ Printf.sprintf "candidate lexeme %S was not accepted by the replay" w ]
               | None -> [ "no single accepted lexeme traverses this transition" ] )
         in
         let sev =
           match Costar_lint.Lint.find_rule code with
           | Some r -> r.Costar_lint.Lint.default_severity
           | None -> D.Info
         in
         D.make ~severity:sev ?file ~notes code
           (Printf.sprintf "uncovered target: %s" (Cover.describe t e.Cover.target)))
