(* Rendering for `costar analyze`: the static prediction-analysis report,
   as human-readable text or as stable JSON (golden-tested in test/lint). *)

open Costar_grammar
module A = Costar_predict_analysis.Analyze
module Types = Costar_core.Types
module Cache = Costar_core.Cache

let error_string g = function
  | Types.Left_recursive x ->
    Printf.sprintf "left recursion on `%s`" (Names.nonterminal g x)
  | Types.Invalid_state s -> Printf.sprintf "invalid state: %s" s

let production_string g ix =
  Fmt.str "%a" (Grammar.pp_production g) (Grammar.prod g ix)

let conflict_line g (c : A.conflict) =
  let what =
    match c.A.ambiguous_word with
    | Some w ->
      Printf.sprintf "ambiguous sentence `%s` (Earley-confirmed)"
        (A.witness_string g w)
    | None ->
      Printf.sprintf "collide after `%s`%s"
        (A.witness_string g c.A.witness)
        (if c.A.at_eof then " (viable to end of input)" else "")
  in
  Printf.sprintf "    %s  /  %s: %s"
    (production_string g (fst c.A.alts))
    (production_string g (snd c.A.alts))
    what

let decision_lines g (d : A.decision) =
  let head =
    match d.A.error with
    | Some e ->
      Printf.sprintf "  %s: not analyzable (%s)"
        (Names.nonterminal g d.A.nt)
        (error_string g e)
    | None ->
      let flags =
        (if A.ll_fallback_possible d then [ "LL fallback possible" ] else [])
        @ (if d.A.uses_stable_return then [ "stable-return fork" ] else [])
        @ (if d.A.truncated then [ "state budget hit" ] else [])
      in
      Printf.sprintf "  %s: %s, %d alternatives, %d DFA states%s"
        (Names.nonterminal g d.A.nt)
        (A.lookahead_to_string d.A.lookahead)
        d.A.n_alts d.A.states
        (match flags with
        | [] -> ""
        | fs -> " [" ^ String.concat "; " fs ^ "]")
  in
  head :: (if d.A.error = None then List.map (conflict_line g) d.A.conflicts
           else [])

let text (r : A.t) =
  let g = r.A.g in
  let header =
    Printf.sprintf
      "prediction analysis of `%s`: %d decision point%s (lookahead bound k \
       <= %d)"
      (Names.nonterminal g (Grammar.start g))
      (List.length r.A.decisions)
      (if List.length r.A.decisions = 1 then "" else "s")
      r.A.k_bound
  in
  let footer =
    Printf.sprintf "precompiled DFA cache: %d states, %d transitions"
      (Cache.num_states r.A.cache)
      (Cache.num_transitions r.A.cache)
  in
  String.concat "\n"
    ((header :: List.concat_map (decision_lines g) r.A.decisions) @ [ footer ])
  ^ "\n"

let json_of_lookahead = function
  | A.Sll_k k -> Json_out.(Obj [ ("kind", String "sll_k"); ("k", Int k) ])
  | A.Beyond k -> Json_out.(Obj [ ("kind", String "beyond"); ("k", Int k) ])
  | A.Cyclic -> Json_out.(Obj [ ("kind", String "cyclic") ])
  | A.Ambiguous -> Json_out.(Obj [ ("kind", String "ambiguous") ])

let json_of_conflict g (c : A.conflict) =
  let open Json_out in
  Obj
    [
      ("alts", List [ Int (fst c.A.alts); Int (snd c.A.alts) ]);
      ( "productions",
        List
          [
            String (production_string g (fst c.A.alts));
            String (production_string g (snd c.A.alts));
          ] );
      ( "witness",
        List
          (List.map
             (fun a -> String (Names.terminal g a))
             c.A.witness) );
      ("at_eof", Bool c.A.at_eof);
      ( "ambiguous_word",
        match c.A.ambiguous_word with
        | None -> Null
        | Some w ->
          List (List.map (fun a -> String (Names.terminal g a)) w) );
    ]

let json_of_decision g (d : A.decision) =
  let open Json_out in
  Obj
    [
      ("nonterminal", String (Names.nonterminal g d.A.nt));
      ("alternatives", Int d.A.n_alts);
      ( "lookahead",
        match d.A.error with
        | Some _ -> Null
        | None -> json_of_lookahead d.A.lookahead );
      ("ll_fallback_possible", Bool (A.ll_fallback_possible d));
      ("uses_stable_return", Bool d.A.uses_stable_return);
      ("states", Int d.A.states);
      ("truncated", Bool d.A.truncated);
      ( "error",
        match d.A.error with
        | None -> Null
        | Some e -> String (error_string g e) );
      ("conflicts", List (List.map (json_of_conflict g) d.A.conflicts));
    ]

let json (r : A.t) =
  let g = r.A.g in
  let open Json_out in
  to_string
    (Obj
       [
         ("version", Int 1);
         ("k_bound", Int r.A.k_bound);
         ( "grammar",
           Obj
             [
               ( "start",
                 String (Names.nonterminal g (Grammar.start g)) );
               ("nonterminals", Int (Grammar.num_nonterminals g));
               ("terminals", Int (Grammar.num_terminals g));
               ("productions", Int (Grammar.num_productions g));
               ("fingerprint", String (Grammar.fingerprint g));
             ] );
         ("decisions", List (List.map (json_of_decision g) r.A.decisions));
         ( "cache",
           Obj
             [
               ("states", Int (Cache.num_states r.A.cache));
               ("transitions", Int (Cache.num_transitions r.A.cache));
             ] );
       ])
  ^ "\n"
