(* Dataflow-backed checks (F-codes), built on the worklist engine of
   Costar_flow.Flow.  Where the G-codes classify whole nonterminals
   (reachable, productive, LL(1)-conflicting), these localize defects to a
   production or a lexer rule and attach the engine's witness derivations —
   the chain of facts that first proved the defect — as notes.

   F001–F003 run over the grammar alone (same ctx as Rules_grammar);
   F004/F005 are the cross-layer grammar<->lexer checks: F004 asks the
   compiled lexer DFA the emptiness question "is any word mapped to this
   terminal's rule?" (strictly stronger than L003's name lookup: a rule can
   exist and still be dead because earlier rules shadow it everywhere), and
   F005 asks the grammar dataflow whether a lexer rule's terminal can ever
   be consumed (it exists, but only unreachable productions mention it). *)

open Costar_grammar
open Costar_grammar.Symbols
module D = Diagnostic
module Loc = Costar_grammar.Loc
module Flow = Costar_flow.Flow
module Bitset = Costar_flow.Bitset
module Spec = Costar_lex.Spec
module Scanner = Costar_lex.Scanner

(* Witness chains can be long in deep grammars; keep notes readable. *)
let clip_steps ?(max = 5) label steps =
  let n = List.length steps in
  let shown = List.filteri (fun i _ -> i < max) steps in
  let body = String.concat ", then " shown in
  if n > max then
    Printf.sprintf "%s: %s … (%d more steps)" label body (n - max)
  else Printf.sprintf "%s: %s" label body

(* Alternative number of a production within its own nonterminal (the
   production's [ix] is global). *)
let alt_ix g (p : Grammar.production) =
  let rec go i = function
    | [] -> p.ix
    | ix :: rest -> if ix = p.ix then i else go (i + 1) rest
  in
  go 0 (Grammar.prods_of g p.lhs)

let terminals g set =
  Bitset.elements set
  |> List.filteri (fun i _ -> i < 4)
  |> List.map (fun a -> "'" ^ Names.terminal g a ^ "'")
  |> String.concat ", "

(* F001: a production of an otherwise healthy nonterminal that can never be
   used, because its right-hand side contains an unproductive nonterminal.
   G002 already flags the unproductive nonterminal itself; this localizes
   the poisoned alternatives whose lhs *does* have working alternatives and
   would otherwise look fine. *)
let unusable_production (ctx : Rules_grammar.ctx) flow =
  let g = ctx.Rules_grammar.g in
  Array.to_list (Grammar.prods g)
  |> List.filter_map (fun (p : Grammar.production) ->
         if not (Flow.productive flow p.lhs) then None
         else
           let dead =
             List.find_opt
               (function
                 | NT y -> not (Flow.productive flow y)
                 | T _ -> false)
               p.rhs
           in
           match dead with
           | Some (NT y) ->
             Some
               (Rules_grammar.diag ctx ~severity:D.Warning ~x:p.lhs
                  ~extra_notes:
                    [
                      Fmt.str "alternative: %a" (Grammar.pp_production g) p;
                      Printf.sprintf
                        "`%s` derives no terminal string (G002), so this \
                         alternative matches no input"
                        (Names.nonterminal g y);
                    ]
                  "F001"
                  (Printf.sprintf
                     "alternative %d of `%s` is unusable: it contains the \
                      unproductive nonterminal `%s`"
                     (alt_ix g p)
                     (Names.nonterminal g p.lhs)
                     (Names.nonterminal g y)))
           | _ -> None)

(* F002: nullable-prefix shadowing.  In [lhs -> … N rest] with N nullable,
   a lookahead token in FIRST(N) ∩ FIRST(rest · FOLLOW(lhs)) does not decide
   whether N consumes it or is skipped — the prediction DFA must look past
   it.  Harmless for correctness under ALL(star) (hence Info), but each site is
   lookahead the parser pays for; synthesized loop nonterminals are skipped
   because ?/*/+ desugaring creates exactly this shape by design. *)
let nullable_shadowing (ctx : Rules_grammar.ctx) flow =
  let g = ctx.Rules_grammar.g in
  let acc = ref [] in
  Array.iter
    (fun (p : Grammar.production) ->
      let rec walk before = function
        | [] -> ()
        | (T _ as s) :: rest -> walk (s :: before) rest
        | (NT y as s) :: rest ->
          if
            Flow.nullable flow y
            && ctx.Rules_grammar.describe y = None
            && Flow.reachable flow p.lhs
          then begin
            let after = Flow.first_seq flow rest in
            let cont =
              if Flow.nullable_seq flow rest then
                Bitset.union after (Flow.follow flow p.lhs)
              else after
            in
            let overlap = Bitset.inter (Flow.first flow y) cont in
            if not (Bitset.is_empty overlap) then
              acc :=
                Rules_grammar.diag ctx ~severity:D.Info ~x:p.lhs
                  ~extra_notes:
                    [
                      Fmt.str "alternative: %a" (Grammar.pp_production g) p;
                      Printf.sprintf
                        "on %s, prediction cannot tell `%s` consuming the \
                         token from `%s` deriving ε and the token belonging \
                         to what follows"
                        (terminals g overlap)
                        (Names.nonterminal g y)
                        (Names.nonterminal g y);
                    ]
                  "F002"
                  (Printf.sprintf
                     "nullable `%s` in alternative %d of `%s` is shadowed \
                      by its right context on %s"
                     (Names.nonterminal g y) (alt_ix g p)
                     (Names.nonterminal g p.lhs)
                     (terminals g overlap))
                :: !acc
          end;
          walk (s :: before) rest
      in
      walk [] p.rhs)
    (Grammar.prods g);
  List.rev !acc

(* F003: FIRST/FOLLOW overlap on a nullable nonterminal, with the full
   justification chains.  G005 reports the same situation per LL(1) decision
   table cell; this one explains *why* the overlapping terminal is in both
   sets, using the dataflow engine's witness derivations. *)
let follow_conflict_witness (ctx : Rules_grammar.ctx) flow =
  let g = ctx.Rules_grammar.g in
  let acc = ref [] in
  for x = 0 to Grammar.num_nonterminals g - 1 do
    if
      Flow.nullable flow x
      && Flow.reachable flow x
      && ctx.Rules_grammar.describe x = None
    then begin
      let overlap = Bitset.inter (Flow.first flow x) (Flow.follow flow x) in
      match Bitset.elements overlap with
      | [] -> ()
      | a :: _ ->
        let notes =
          List.concat
            [
              (match Flow.nullable_witness flow x with
              | Some steps -> [ clip_steps "why it is nullable" steps ]
              | None -> []);
              (match Flow.first_witness flow x a with
              | Some steps ->
                [
                  clip_steps
                    (Printf.sprintf "why '%s' starts it" (Names.terminal g a))
                    steps;
                ]
              | None -> []);
              (match Flow.follow_witness flow x a with
              | Some steps ->
                [
                  clip_steps
                    (Printf.sprintf "why '%s' may follow it"
                       (Names.terminal g a))
                    steps;
                ]
              | None -> []);
            ]
        in
        acc :=
          Rules_grammar.diag ctx ~severity:D.Info ~x ~extra_notes:notes "F003"
            (Printf.sprintf
               "FIRST/FOLLOW overlap on nullable `%s` (%s): one-token \
                lookahead cannot commit to entering or skipping it"
               (Names.nonterminal g x)
               (terminals g overlap))
          :: !acc
    end
  done;
  List.rev !acc

let grammar_rules ctx =
  let flow = Flow.make ctx.Rules_grammar.g in
  unusable_production ctx flow
  @ nullable_shadowing ctx flow
  @ follow_conflict_witness ctx flow

(* --- Cross-layer checks -------------------------------------------------- *)

type xctx = {
  g : Grammar.t;
  span_of_name : string -> Loc.span;  (* grammar-side spans *)
  rules : Spec.srule list;
  grammar_file : string option;
  lexer_file : string option;
}

let rule_name (sr : Spec.srule) = sr.Spec.rule.Scanner.name
let is_skip (sr : Spec.srule) = sr.Spec.rule.Scanner.action = Scanner.Skip

(* The emptiness query: which rule indexes does the combined scanner DFA
   ever map a word to?  Subset construction only creates reachable states,
   so scanning the accept table is exact.  The DFA is returned too, for the
   witness-producing notes below. *)
let live_rule_ixs rules =
  let dfa =
    Costar_lex.Dfa.of_nfa
      (Costar_lex.Nfa.build
         (List.map (fun sr -> sr.Spec.rule.Scanner.re) rules))
  in
  let live = Hashtbl.create 16 in
  for s = 0 to Costar_lex.Dfa.num_states dfa - 1 do
    match Costar_lex.Dfa.accept dfa s with
    | Some ix -> Hashtbl.replace live ix ()
    | None -> ()
  done;
  (dfa, live)

(* The "nearest non-empty sibling" note: the live non-skip rule closest in
   rule order to the dead one, with the shortest lexeme the combined DFA
   actually maps to it ({!Costar_lex.Dfa.rule_witness} — the same DFA
   inversion the coverage generator uses to produce byte-level inputs).
   Shows at a glance what the scanner *does* accept around the hole. *)
let sibling_note dfa indexed ~dead_ix live =
  let cand =
    List.filter (fun (ix, sr) -> Hashtbl.mem live ix && not (is_skip sr))
      indexed
  in
  let by_dist =
    List.sort
      (fun (i, _) (j, _) ->
        compare (abs (i - dead_ix), i) (abs (j - dead_ix), j))
      cand
  in
  match by_dist with
  | [] -> []
  | (ix, sr) :: _ -> (
    match Costar_lex.Dfa.rule_witness dfa ix with
    | Some w ->
      [
        Printf.sprintf "nearest non-empty sibling: rule `%s` matches %S"
          (rule_name sr) w;
      ]
    | None -> [])

(* First production mentioning terminal [a], for a grammar-side span. *)
let use_site g span_of_name a =
  Array.to_list (Grammar.prods g)
  |> List.find_opt (fun (p : Grammar.production) ->
         List.exists (function T b -> b = a | NT _ -> false) p.rhs)
  |> Option.map (fun (p : Grammar.production) ->
         let lhs = Grammar.nonterminal_name g p.lhs in
         (span_of_name lhs, lhs))

(* F004: a grammar terminal no word can ever become.  Either no (non-skip)
   lexer rule carries its name, or rules do but the combined DFA maps every
   word they match to an earlier rule (L002 per rule; this is the
   per-terminal consequence).  Productions using the terminal are unusable,
   so this is an error, like L003. *)
let unproducible_terminal ctx =
  match ctx.rules with
  | [] -> []
  | rules ->
    let dfa, live = live_rule_ixs rules in
    let indexed = List.mapi (fun ix sr -> (ix, sr)) rules in
    let acc = ref [] in
    for a = 0 to Grammar.num_terminals ctx.g - 1 do
      let nm = Grammar.terminal_name ctx.g a in
      let carriers =
        List.filter (fun (_, sr) -> rule_name sr = nm && not (is_skip sr))
          indexed
      in
      let producible =
        List.exists (fun (ix, _) -> Hashtbl.mem live ix) carriers
      in
      if not producible then begin
        let site = use_site ctx.g ctx.span_of_name a in
        let where =
          match site with
          | Some (_, lhs) -> Printf.sprintf " (used in rule `%s`)" lhs
          | None -> ""
        in
        let d =
          match carriers with
          | [] ->
            let span =
              match site with Some (s, _) -> s | None -> Loc.dummy
            in
            D.make ~severity:D.Error ?file:ctx.grammar_file ~span
              ~notes:
                ("no non-skip lexer rule is named after this terminal, so \
                  the scanner DFA maps no input to it"
                :: sibling_note dfa indexed ~dead_ix:0 live)
              "F004"
              (Printf.sprintf
                 "terminal '%s' is unproducible: the compiled lexer DFA \
                  accepts no word for it%s"
                 nm where)
          | (dead_ix, sr) :: _ ->
            D.make ~severity:D.Error ?file:ctx.lexer_file ~span:sr.Spec.span
              ~notes:
                (Printf.sprintf
                   "rule `%s` exists, but every word it matches is claimed \
                    by an earlier rule (L002), so no accepting DFA state \
                    maps to it"
                   nm
                :: sibling_note dfa indexed ~dead_ix live)
              "F004"
              (Printf.sprintf
                 "terminal '%s' is unproducible: the compiled lexer DFA \
                  accepts no word for it%s"
                 nm where)
        in
        acc := d :: !acc
      end
    done;
    List.rev !acc

(* F005: a lexer rule whose terminal the grammar dataflow marks dead — the
   terminal exists (so L004 is silent), but no production of a reachable
   nonterminal mentions it, so no parse can ever consume the token. *)
let dead_terminal_rule ctx flow =
  let used_reachable = Hashtbl.create 16 in
  Array.iter
    (fun (p : Grammar.production) ->
      if Flow.reachable flow p.lhs then
        List.iter
          (function
            | T a -> Hashtbl.replace used_reachable a ()
            | NT _ -> ())
          p.rhs)
    (Grammar.prods ctx.g);
  List.filter_map
    (fun sr ->
      if is_skip sr then None
      else
        match Grammar.terminal_of_name ctx.g (rule_name sr) with
        | None -> None (* L004's case *)
        | Some a ->
          if Hashtbl.mem used_reachable a then None
          else
            Some
              (D.make ~severity:D.Warning ?file:ctx.lexer_file
                 ~span:sr.Spec.span
                 ~notes:
                   [
                     "the terminal exists in the grammar but only \
                      unreachable productions (if any) mention it, so every \
                      token this rule emits is a guaranteed parse error";
                   ]
                 "F005"
                 (Printf.sprintf
                    "lexer rule `%s` produces a terminal the grammar never \
                     consumes from the start symbol"
                    (rule_name sr))))
    ctx.rules

let cross_layer ?grammar_file ?lexer_file (g, span_of_name) rules =
  let ctx = { g; span_of_name; rules; grammar_file; lexer_file } in
  let flow = Flow.make g in
  unproducible_terminal ctx @ dead_terminal_rule ctx flow
