(* SARIF 2.1.0 rendering of lint diagnostics, for CI annotation surfaces
   (GitHub code scanning et al.).  One run, one driver; the rules table
   lists exactly the codes that occur in the results, in first-occurrence
   order, and every result carries a ruleIndex into it.  Severities map
   Error→"error", Warning→"warning", Info→"note".  Notes are folded into
   the message text (SARIF has no first-class note list at result level
   short of relatedLocations, which need locations our notes don't have).

   Output is deterministic for a given diagnostic list — golden-tested like
   the text and JSON renderers. *)

module D = Diagnostic
module Loc = Costar_grammar.Loc
module J = Json_out

let schema_uri = "https://json.schemastore.org/sarif-2.1.0.json"
let tool_uri = "https://github.com/costar/costar"

let level_of = function
  | D.Error -> "error"
  | D.Warning -> "warning"
  | D.Info -> "note"

let message_text (d : D.t) =
  String.concat "\n" (d.D.message :: List.map (fun n -> "note: " ^ n) d.D.notes)

(* SARIF requires 1-based lines/columns; spans from the EBNF parser are
   already 1-based, and dummy spans (prebuilt grammars) get no region. *)
let location (d : D.t) =
  let artifact =
    match d.D.file with
    | Some f -> [ ("artifactLocation", J.Obj [ ("uri", J.String f) ]) ]
    | None -> []
  in
  let region =
    if Loc.is_dummy d.D.span then []
    else
      [
        ( "region",
          J.Obj
            [
              ("startLine", J.Int d.D.span.Loc.start_line);
              ("startColumn", J.Int d.D.span.Loc.start_col);
              ("endLine", J.Int d.D.span.Loc.end_line);
              ("endColumn", J.Int d.D.span.Loc.end_col);
            ] );
      ]
  in
  match artifact @ region with
  | [] -> []
  | fields ->
    [ ("locations", J.List [ J.Obj [ ("physicalLocation", J.Obj fields) ] ]) ]

let render ?(tool_version = "dev") (registry : (string * D.severity * string) list)
    (ds : D.t list) =
  (* Rules table: first-occurrence order of codes in the results. *)
  let order = ref [] in
  let index = Hashtbl.create 16 in
  List.iter
    (fun (d : D.t) ->
      if not (Hashtbl.mem index d.D.code) then begin
        Hashtbl.add index d.D.code (Hashtbl.length index);
        order := d.D.code :: !order
      end)
    ds;
  let rules =
    List.rev !order
    |> List.map (fun code ->
           let info =
             List.find_opt (fun (c, _, _) -> c = code) registry
           in
           let extra =
             match info with
             | Some (_, sev, title) ->
               [
                 ("shortDescription", J.Obj [ ("text", J.String title) ]);
                 ( "defaultConfiguration",
                   J.Obj [ ("level", J.String (level_of sev)) ] );
               ]
             | None -> []
           in
           J.Obj (("id", J.String code) :: extra))
  in
  let results =
    List.map
      (fun (d : D.t) ->
        J.Obj
          ([
             ("ruleId", J.String d.D.code);
             ("ruleIndex", J.Int (Hashtbl.find index d.D.code));
             ("level", J.String (level_of d.D.severity));
             ("message", J.Obj [ ("text", J.String (message_text d)) ]);
           ]
          @ location d))
      ds
  in
  J.Obj
    [
      ("$schema", J.String schema_uri);
      ("version", J.String "2.1.0");
      ( "runs",
        J.List
          [
            J.Obj
              [
                ( "tool",
                  J.Obj
                    [
                      ( "driver",
                        J.Obj
                          [
                            ("name", J.String "costar");
                            ("informationUri", J.String tool_uri);
                            ("version", J.String tool_version);
                            ("rules", J.List rules);
                          ] );
                    ] );
                ("results", J.List results);
              ];
          ] );
    ]

let to_string ?tool_version registry ds =
  J.to_string (render ?tool_version registry ds) ^ "\n"
