(* Grammar checks, over the desugared BNF.  Spans come from the provenance
   table built during desugaring (see Lint.of_provenance); prebuilt grammars
   (the built-in languages) run the same checks with dummy spans. *)

open Costar_grammar
open Costar_grammar.Symbols
module D = Diagnostic
module Loc = Costar_grammar.Loc

type ctx = {
  g : Grammar.t;
  anl : Analysis.t;
  file : string option;
  span_of : nonterminal -> Loc.span;
  describe : nonterminal -> string option;
      (* provenance note for synthesized nonterminals *)
  synth_parent : nonterminal -> nonterminal option;
      (* user rule a synthesized nonterminal was created in *)
}

let make_ctx ?file ?(span_of = fun _ -> Loc.dummy) ?(describe = fun _ -> None)
    ?(synth_parent = fun _ -> None) g =
  { g; anl = Analysis.make g; file; span_of; describe; synth_parent }

let diag ctx ?severity ~x ?(extra_notes = []) code message =
  let notes =
    match ctx.describe x with
    | Some note -> extra_notes @ [ note ]
    | None -> extra_notes
  in
  D.make ?severity ?file:ctx.file ~span:(ctx.span_of x) ~notes code message

let name ctx x = Grammar.nonterminal_name ctx.g x

let pp_cycle ctx cycle =
  String.concat " -> " (List.map (name ctx) cycle)

(* G001: unreachable nonterminals.  A synthesized nonterminal whose parent
   rule is itself unreachable is suppressed — the parent diagnostic already
   covers it. *)
let unreachable ctx =
  let acc = ref [] in
  for x = Grammar.num_nonterminals ctx.g - 1 downto 0 do
    if not (Analysis.reachable ctx.anl x) then begin
      let parent_also_dead =
        match ctx.synth_parent x with
        | Some p -> not (Analysis.reachable ctx.anl p)
        | None -> false
      in
      if not parent_also_dead then
        acc :=
          diag ctx ~severity:D.Warning ~x "G001"
            (Printf.sprintf
               "unreachable nonterminal `%s`: no derivation from the start \
                symbol `%s` uses it"
               (name ctx x)
               (name ctx (Grammar.start ctx.g)))
          :: !acc
    end
  done;
  !acc

(* G002: unproductive nonterminals (derive no terminal string).  Fatal when
   the start symbol itself is unproductive: the language is empty. *)
let unproductive ctx =
  let acc = ref [] in
  for x = Grammar.num_nonterminals ctx.g - 1 downto 0 do
    if not (Analysis.productive ctx.anl x) then begin
      let is_start = x = Grammar.start ctx.g in
      let severity = if is_start then D.Error else D.Warning in
      let message =
        if is_start then
          Printf.sprintf
            "start symbol `%s` is unproductive: it derives no terminal \
             string, so the language is empty"
            (name ctx x)
        else
          Printf.sprintf
            "unproductive nonterminal `%s`: it derives no terminal string, \
             so no input can ever match it"
            (name ctx x)
      in
      acc := diag ctx ~severity ~x "G002" message :: !acc
    end
  done;
  !acc

(* G003: left recursion, with an explicit cycle witness.  One diagnostic
   per distinct cycle: nonterminals already named on a reported witness are
   not reported again. *)
let left_recursion ctx =
  let bad = Left_recursion.left_recursive_nts ctx.g ctx.anl in
  let reported = Hashtbl.create 8 in
  List.filter_map
    (fun x ->
      if Hashtbl.mem reported x then None
      else
        match Left_recursion.witness ctx.g ctx.anl x with
        | None -> None
        | Some (kind, cycle) ->
          List.iter (fun y -> Hashtbl.replace reported y ()) cycle;
          let extra_notes =
            [ Printf.sprintf "cycle: %s" (pp_cycle ctx cycle) ]
            @
            match kind with
            | Left_recursion.Hidden ->
              [
                "the recursion is hidden behind a nullable prefix, so no \
                 token is consumed before re-entering the cycle";
              ]
            | _ -> []
          in
          Some
            (diag ctx ~severity:D.Error ~x ~extra_notes "G003"
               (Printf.sprintf
                  "%s left recursion on `%s`: CoStar's termination and \
                   correctness theorems require a non-left-recursive grammar"
                  (Left_recursion.kind_to_string kind)
                  (name ctx x))))
    (Int_set.elements bad)

(* G004/G005: LL(1) conflicts, classified FIRST/FIRST vs FIRST/FOLLOW and
   aggregated per nonterminal.  Informational: these are exactly the
   decision points where ALL(star) prediction (rather than a single-token
   table) is required. *)
let ll1_conflicts ctx =
  let g = ctx.g and anl = ctx.anl in
  let classify (c : Costar_ll1.Ll1.conflict) =
    match c.on with
    | None -> `First_follow
    | Some a ->
      let first_contribs =
        List.filter
          (fun ix ->
            Int_set.mem a (Analysis.first_seq anl (Grammar.prod g ix).rhs))
          c.prods
      in
      if List.length first_contribs >= 2 then `First_first else `First_follow
  in
  let la_name = function
    | Some a -> "'" ^ Grammar.terminal_name g a ^ "'"
    | None -> "<eof>"
  in
  (* Aggregate per (nonterminal, kind), preserving first-seen order of
     lookaheads and production sets. *)
  let table = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (c : Costar_ll1.Ll1.conflict) ->
      let key = (c.nt, classify c) in
      let entry =
        match Hashtbl.find_opt table key with
        | Some e -> e
        | None ->
          let e = (ref [], ref []) in
          Hashtbl.add table key e;
          order := key :: !order;
          e
      in
      let las, prods = entry in
      las := !las @ [ la_name c.on ];
      List.iter
        (fun ix -> if not (List.mem ix !prods) then prods := !prods @ [ ix ])
        c.prods)
    (Costar_ll1.Ll1.conflicts g);
  List.rev !order
  |> List.sort (fun (x1, k1) (x2, k2) ->
         let c = compare x1 x2 in
         if c <> 0 then c else compare k1 k2)
  |> List.map (fun ((x, kind) as key) ->
         let las, prods = Hashtbl.find table key in
         let code, label =
           match kind with
           | `First_first -> ("G004", "FIRST/FIRST")
           | `First_follow -> ("G005", "FIRST/FOLLOW")
         in
         let las = !las in
         let shown = List.filteri (fun i _ -> i < 4) las in
         let la_text =
           String.concat ", " shown
           ^
           if List.length las > List.length shown then
             Printf.sprintf " (and %d more)"
               (List.length las - List.length shown)
           else ""
         in
         let extra_notes =
           List.filteri (fun i _ -> i < 3) !prods
           |> List.map (fun ix ->
                  Fmt.str "candidate: %a" (Grammar.pp_production g)
                    (Grammar.prod g ix))
         in
         diag ctx ~severity:D.Info ~x ~extra_notes code
           (Printf.sprintf
              "%s LL(1) conflict at `%s` on %s: ALL(*) prediction is \
               required here"
              label (name ctx x) la_text))

(* G006: textually identical alternatives of one nonterminal — every input
   they match is ambiguous. *)
let duplicate_alternatives ctx =
  let g = ctx.g in
  let acc = ref [] in
  for x = Grammar.num_nonterminals g - 1 downto 0 do
    let prods = Grammar.prods_of g x in
    let seen = ref [] in
    List.iter
      (fun ix ->
        let rhs = (Grammar.prod g ix).rhs in
        match
          List.find_opt
            (fun ix' -> compare_symbols (Grammar.prod g ix').rhs rhs = 0)
            !seen
        with
        | Some first_ix ->
          acc :=
            diag ctx ~severity:D.Warning ~x
              ~extra_notes:
                [
                  Fmt.str "every input matching %a has at least two parse \
                           trees"
                    (Grammar.pp_production g)
                    (Grammar.prod g first_ix);
                ]
              "G006"
              (Fmt.str "duplicate alternative for `%s`: %a appears more \
                        than once"
                 (name ctx x) (Grammar.pp_production g) (Grammar.prod g ix))
            :: !acc
        | None -> seen := !seen @ [ ix ])
      prods
  done;
  !acc

(* G007: nullable cycles [x =>+ x] — such a nonterminal has infinitely many
   derivations for any input it matches.  Cycle edges need the whole rest of
   the production nullable, so every G007 cycle is also left-recursive
   (G003); this diagnostic adds the stronger "infinitely ambiguous" fact. *)
let nullable_cycles ctx =
  let g = ctx.g and anl = ctx.anl in
  let n = Grammar.num_nonterminals g in
  let edges = Array.make n [] in
  Array.iter
    (fun (p : Grammar.production) ->
      let rec go before = function
        | [] -> ()
        | T _ :: _ -> ()
        | NT y :: rest ->
          if
            List.for_all (fun z -> Analysis.nullable anl z) before
            && Analysis.nullable_seq anl rest
          then
            if not (List.mem y edges.(p.lhs)) then
              edges.(p.lhs) <- edges.(p.lhs) @ [ y ];
          go (y :: before) rest
      in
      go [] p.rhs)
    (Grammar.prods g);
  (* BFS witness, as in Left_recursion.witness but over unit-cycle edges. *)
  let witness x =
    let parent = Array.make n (-1) in
    let visited = Array.make n false in
    let q = Queue.create () in
    let closing = ref None in
    let expand y =
      List.iter
        (fun z ->
          if !closing = None then
            if z = x then closing := Some y
            else if not visited.(z) then begin
              visited.(z) <- true;
              parent.(z) <- y;
              Queue.add z q
            end)
        edges.(y)
    in
    expand x;
    while !closing = None && not (Queue.is_empty q) do
      expand (Queue.pop q)
    done;
    match !closing with
    | None -> None
    | Some last ->
      let rec unwind y acc =
        if y = x then acc else unwind parent.(y) (y :: acc)
      in
      Some ((x :: unwind last []) @ [ x ])
  in
  let reported = Hashtbl.create 8 in
  let acc = ref [] in
  for x = 0 to n - 1 do
    if not (Hashtbl.mem reported x) then
      match witness x with
      | None -> ()
      | Some cycle ->
        List.iter (fun y -> Hashtbl.replace reported y ()) cycle;
        acc :=
          diag ctx ~severity:D.Error ~x
            ~extra_notes:[ Printf.sprintf "cycle: %s" (pp_cycle ctx cycle) ]
            "G007"
            (Printf.sprintf
               "nonterminal `%s` derives itself: any input it matches has \
                infinitely many parse trees"
               (name ctx x))
          :: !acc
  done;
  List.rev !acc

let all ctx =
  unreachable ctx @ unproductive ctx @ left_recursion ctx @ ll1_conflicts ctx
  @ duplicate_alternatives ctx @ nullable_cycles ctx
