(* Lexer-spec checks, over the span-carrying rules of Costar_lex.Spec, plus
   grammar<->lexer consistency when the grammar is also available. *)

open Costar_lex
module D = Diagnostic
module Loc = Costar_grammar.Loc
module G = Costar_grammar.Grammar

type ctx = {
  rules : Spec.srule list;
  file : string option;
  grammar : (G.t * (string -> Loc.span)) option;
      (* the grammar and a span lookup by nonterminal name, for the
         consistency checks; the span locates the first production that
         uses a missing terminal *)
  grammar_file : string option;
}

let make_ctx ?file ?grammar ?grammar_file rules =
  { rules; file; grammar; grammar_file }

let rule_name (sr : Spec.srule) = sr.rule.Scanner.name
let is_skip (sr : Spec.srule) = sr.rule.Scanner.action = Scanner.Skip

(* L001: a rule whose regex accepts the empty string.  Scanner.make refuses
   such rules outright — a zero-length match would make the scanner loop
   forever on the same position — so this is an error, caught here with a
   span before construction fails. *)
let empty_match ctx =
  List.filter_map
    (fun sr ->
      if Regex.nullable sr.Spec.rule.Scanner.re then
        Some
          (D.make ~severity:D.Error ?file:ctx.file ~span:sr.Spec.pattern_span
             ~notes:
               [
                 "a zero-length match never advances the input, so the \
                  scanner would loop forever (Scanner.make rejects this \
                  rule)";
               ]
             "L001"
             (Printf.sprintf "lexer rule `%s` can match the empty string"
                (rule_name sr)))
      else None)
    ctx.rules

(* L002: a rule that can never win.  The scanner resolves every match
   through the combined DFA, whose accepting states carry the
   lowest-numbered matching rule (first-rule-wins on equal length); a rule
   index that appears on no DFA state is dead — every string it matches is
   claimed by an earlier rule. *)
let shadowed ctx =
  match ctx.rules with
  | [] -> []
  | rules ->
    let dfa =
      Dfa.of_nfa (Nfa.build (List.map (fun sr -> sr.Spec.rule.Scanner.re) rules))
    in
    let winners = Hashtbl.create 16 in
    for s = 0 to Dfa.num_states dfa - 1 do
      match Dfa.accept dfa s with
      | Some ix -> Hashtbl.replace winners ix ()
      | None -> ()
    done;
    List.mapi (fun ix sr -> (ix, sr)) rules
    |> List.filter_map (fun (ix, sr) ->
           if Hashtbl.mem winners ix then None
           else
             Some
               (D.make ~severity:D.Warning ?file:ctx.file ~span:sr.Spec.span
                  ~notes:
                    [
                      "every string this rule matches is matched by an \
                       earlier rule of at least the same length, and ties \
                       go to the earlier rule";
                    ]
                  "L002"
                  (Printf.sprintf
                     "lexer rule `%s` is shadowed by earlier rules and can \
                      never produce a token"
                     (rule_name sr))))

(* L005: two rules with the same name.  Legal (both emit the same kind) but
   almost always an editing mistake. *)
let duplicate_names ctx =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun sr ->
      let nm = rule_name sr in
      match Hashtbl.find_opt seen nm with
      | Some (first_span : Loc.span) ->
        Some
          (D.make ~severity:D.Warning ?file:ctx.file ~span:sr.Spec.span
             ~notes:
               [
                 Printf.sprintf "first defined at %s"
                   (Loc.to_string first_span);
               ]
             "L005"
             (Printf.sprintf "duplicate lexer rule name `%s`" nm))
      | None ->
        Hashtbl.add seen nm sr.Spec.span;
        None)
    ctx.rules

(* L003/L004: grammar<->lexer consistency.  Terminals the grammar needs but
   the lexer never emits are fatal (those productions can never fire);
   emitting rules whose kind is not a grammar terminal are dead weight. *)
let consistency ctx =
  match ctx.grammar with
  | None -> []
  | Some (g, span_of_nt) ->
    let produced = Hashtbl.create 16 in
    List.iter
      (fun sr ->
        if not (is_skip sr) then Hashtbl.replace produced (rule_name sr) ())
      ctx.rules;
    let missing = ref [] in
    for a = 0 to G.num_terminals g - 1 do
      let nm = G.terminal_name g a in
      if not (Hashtbl.mem produced nm) then begin
        (* Locate the first production whose rhs mentions the terminal, and
           report at its lhs's span in the grammar file. *)
        let site =
          Array.to_list (G.prods g)
          |> List.find_opt (fun (p : G.production) ->
                 List.exists
                   (function
                     | Costar_grammar.Symbols.T b -> b = a
                     | Costar_grammar.Symbols.NT _ -> false)
                   p.rhs)
        in
        let span, where =
          match site with
          | Some p ->
            let lhs_name = G.nonterminal_name g p.lhs in
            ( span_of_nt lhs_name,
              Printf.sprintf " (used in rule `%s`)" lhs_name )
          | None -> (Loc.dummy, "")
        in
        missing :=
          D.make ~severity:D.Error ?file:ctx.grammar_file ~span
            ~notes:
              [
                "inputs requiring this terminal can never be tokenized, so \
                 the productions mentioning it are unusable";
              ]
            "L003"
            (Printf.sprintf
               "terminal '%s' of the grammar is never produced by the lexer%s"
               nm where)
          :: !missing
      end
    done;
    let dead =
      List.filter_map
        (fun sr ->
          let nm = rule_name sr in
          if is_skip sr || G.terminal_of_name g nm <> None then None
          else
            Some
              (D.make ~severity:D.Warning ?file:ctx.file ~span:sr.Spec.span
                 ~notes:
                   [
                     "tokens of this kind make every input containing them \
                      unparseable; mark the rule `skip` or add the terminal \
                      to the grammar";
                   ]
                 "L004"
                 (Printf.sprintf
                    "lexer rule `%s` produces a token kind that is not a \
                     terminal of the grammar"
                    nm)))
        ctx.rules
    in
    List.rev !missing @ dead

let all ctx =
  empty_match ctx @ shadowed ctx @ duplicate_names ctx @ consistency ctx
