module D = Diagnostic
module Loc = Costar_grammar.Loc

let count sev ds = List.length (List.filter (fun d -> d.D.severity = sev) ds)

let summary_counts ds =
  (count D.Error ds, count D.Warning ds, count D.Info ds)

let summary_line ds =
  let e, w, i = summary_counts ds in
  let part n what =
    Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s")
  in
  Printf.sprintf "%s, %s, %s" (part e "error") (part w "warning")
    (part i "info")

let text ?(with_summary = true) ds =
  let body =
    String.concat "\n" (List.map Diagnostic.to_string ds)
  in
  if not with_summary then body
  else if ds = [] then "no diagnostics\n"
  else body ^ "\n" ^ summary_line ds ^ "\n"

let json_of_diag (d : D.t) =
  let open Json_out in
  let span =
    if Loc.is_dummy d.span then Null
    else
      Obj
        [
          ("start_line", Int d.span.Loc.start_line);
          ("start_col", Int d.span.Loc.start_col);
          ("end_line", Int d.span.Loc.end_line);
          ("end_col", Int d.span.Loc.end_col);
        ]
  in
  Obj
    ([
       ("code", String d.code);
       ("severity", String (D.severity_to_string d.severity));
     ]
    @ (match d.file with Some f -> [ ("file", String f) ] | None -> [])
    @ [
        ("span", span);
        ("message", String d.message);
        ("notes", List (List.map (fun n -> String n) d.notes));
      ])

let json ds =
  let e, w, i = summary_counts ds in
  let open Json_out in
  to_string
    (Obj
       [
         ("version", Int 1);
         ("diagnostics", List (List.map json_of_diag ds));
         ( "summary",
           Obj [ ("errors", Int e); ("warnings", Int w); ("infos", Int i) ] );
       ])
  ^ "\n"
