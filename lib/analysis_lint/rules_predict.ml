(* Prediction-analysis checks (A-codes), over the static SLL-decision
   analyzer (lib/analysis_predict).  Where the G-codes talk about grammar
   hygiene, these talk about what adaptive prediction (paper §3.4–3.5) will
   do at runtime: how much lookahead each decision needs, which alternative
   pairs genuinely collide, and where the exact-LL fallback is reachable. *)

open Costar_grammar
module D = Diagnostic
module A = Costar_predict_analysis.Analyze

let name (ctx : Rules_grammar.ctx) x =
  Grammar.nonterminal_name ctx.Rules_grammar.g x

let alt_note g ix =
  Fmt.str "alternative %a" (Grammar.pp_production g) (Grammar.prod g ix)

let pair_notes g (i, j) = [ alt_note g i; alt_note g j ]

let witness_phrase g = function
  | [] -> "immediately (before any token)"
  | w -> Printf.sprintf "after `%s`" (A.witness_string g w)

(* First at-EOF conflict of a decision, used as the A001 witness. *)
let eof_conflict d = List.find_opt (fun c -> c.A.at_eof) d.A.conflicts

let check_decision ctx (d : A.decision) =
  let g = ctx.Rules_grammar.g in
  let x = d.A.nt in
  let acc = ref [] in
  let emit ~severity ?(extra_notes = []) code message =
    acc :=
      Rules_grammar.diag ctx ~severity ~x ~extra_notes code message :: !acc
  in
  (* A001: the runtime can fall back from SLL to exact LL here — some input
     reaches end of input with configurations of several alternatives in
     accepting position, which is precisely when Sll.predict answers
     Ambig_pred and Predict.adaptive_predict re-predicts in LL mode. *)
  (match eof_conflict d with
  | Some c ->
    emit ~severity:D.Info
      ~extra_notes:
        (Printf.sprintf "both viable to end of input %s"
           (witness_phrase g c.A.witness)
        :: pair_notes g c.A.alts)
      "A001"
      (Printf.sprintf
         "SLL and LL prediction can diverge on `%s`: on some inputs every \
          lookahead token is consumed with several alternatives still \
          viable, so the runtime falls back to exact LL prediction"
         (name ctx x))
  | None -> ());
  (* A002: not SLL(k) within the analyzed bound. *)
  (match d.A.lookahead with
  | A.Beyond k ->
    let notes =
      (if d.A.truncated then
         [
           Printf.sprintf
             "exploration stopped at the state budget (%d DFA states)"
             d.A.states;
         ]
       else [])
      @
      match d.A.conflicts with
      | c :: _ ->
        Printf.sprintf "alternatives still undecided %s"
          (witness_phrase g c.A.witness)
        :: pair_notes g c.A.alts
      | [] -> []
    in
    emit ~severity:D.Info ~extra_notes:notes "A002"
      (Printf.sprintf "`%s` is not SLL(k) for any k <= %d" (name ctx x) k)
  | A.Cyclic ->
    let notes =
      match d.A.conflicts with
      | c :: _ ->
        Printf.sprintf "alternatives still undecided %s"
          (witness_phrase g c.A.witness)
        :: pair_notes g c.A.alts
      | [] -> []
    in
    emit ~severity:D.Info ~extra_notes:notes "A002"
      (Printf.sprintf
         "`%s` is not SLL(k) for any finite k: the lookahead DFA cycles \
          without deciding"
         (name ctx x))
  | A.Sll_k _ | A.Ambiguous -> ());
  (* A003: a confirmed ambiguity — one diagnostic per colliding pair whose
     witness sentence the Earley oracle counts >= 2 derivations for. *)
  List.iter
    (fun (c : A.conflict) ->
      match c.A.ambiguous_word with
      | None -> ()
      | Some w ->
        emit ~severity:D.Warning ~extra_notes:(pair_notes g c.A.alts) "A003"
          (Printf.sprintf
             "`%s` is ambiguous: `%s` has at least two parse trees \
              (Earley-confirmed)"
             (name ctx x) (A.witness_string g w)))
    d.A.conflicts;
  (* A004: lookahead-depth report for decisions that need more than one
     token (SLL(1) is the unremarkable common case). *)
  (match d.A.lookahead with
  | A.Sll_k k when k >= 2 ->
    emit ~severity:D.Info "A004"
      (Printf.sprintf
         "`%s` needs %d tokens of lookahead (SLL(%d)); the prediction DFA \
          explores %d states"
         (name ctx x) k k d.A.states)
  | _ -> ());
  List.rev !acc

(* Diagnostics from an analyzer result someone else already ran — `costar
   analyze` reuses its own [A.t] for the shared exit policy instead of
   analyzing twice. *)
let of_result (ctx : Rules_grammar.ctx) (r : A.t) =
  let anl = ctx.Rules_grammar.anl in
  List.concat_map
    (fun (d : A.decision) ->
      (* Unreachable decisions are G001's business; decisions poisoned by
         left recursion are G003's. *)
      if d.A.error <> None || not (Analysis.reachable anl d.A.nt) then []
      else check_decision ctx d)
    r.A.decisions

let all (ctx : Rules_grammar.ctx) =
  let anl = ctx.Rules_grammar.anl in
  of_result ctx (A.analyze ~analysis:anl ctx.Rules_grammar.g)
