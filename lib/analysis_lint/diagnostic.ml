module Loc = Costar_grammar.Loc

type severity =
  | Error
  | Warning
  | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(* Ordering weight: errors first. *)
let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type t = {
  code : string;
  severity : severity;
  file : string option;
  span : Loc.span;
  message : string;
  notes : string list;
}

let make ?(severity = Error) ?file ?(span = Loc.dummy) ?(notes = []) code
    message =
  { code; severity; file; span; message; notes }

(* Document order within a file, then code for determinism. *)
let compare a b =
  let c = Stdlib.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Loc.compare a.span b.span in
    if c <> 0 then c
    else
      let c = String.compare a.code b.code in
      if c <> 0 then c else String.compare a.message b.message

let pp ppf d =
  let pp_loc ppf () =
    match d.file, Loc.is_dummy d.span with
    | Some f, true -> Fmt.pf ppf "%s: " f
    | Some f, false ->
      Fmt.pf ppf "%s:%d:%d: " f d.span.Loc.start_line d.span.Loc.start_col
    | None, true -> ()
    | None, false ->
      Fmt.pf ppf "%d:%d: " d.span.Loc.start_line d.span.Loc.start_col
  in
  Fmt.pf ppf "@[<v>%a%s[%s]: %s%a@]" pp_loc ()
    (severity_to_string d.severity)
    d.code d.message
    Fmt.(list ~sep:nop (fun ppf n -> Fmt.pf ppf "@,  note: %s" n))
    d.notes

let to_string d = Fmt.str "%a" pp d
