(* A minimal JSON emitter — just enough for the lint renderer, so the
   toolkit needs no JSON dependency.  Values are built first-class and
   printed compactly or indented. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Two-space indented rendering, with small scalar-only structures kept on
   one line; stable across runs for golden tests. *)
let to_string v =
  let buf = Buffer.create 256 in
  let add = Buffer.add_string buf in
  let scalar = function
    | Null | Bool _ | Int _ | String _ -> true
    | List [] | Obj [] -> true
    | _ -> false
  in
  let rec go indent v =
    match v with
    | Null -> add "null"
    | Bool b -> add (string_of_bool b)
    | Int i -> add (string_of_int i)
    | String s ->
      add "\"";
      add (escape s);
      add "\""
    | List [] -> add "[]"
    | Obj [] -> add "{}"
    | List vs when List.for_all scalar vs ->
      add "[";
      List.iteri
        (fun i v ->
          if i > 0 then add ", ";
          go indent v)
        vs;
      add "]"
    | Obj fields when List.for_all (fun (_, v) -> scalar v) fields ->
      add "{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then add ", ";
          add "\"";
          add (escape k);
          add "\": ";
          go indent v)
        fields;
      add "}"
    | List vs ->
      let pad = String.make indent ' ' in
      add "[\n";
      List.iteri
        (fun i v ->
          if i > 0 then add ",\n";
          add pad;
          add "  ";
          go (indent + 2) v)
        vs;
      add "\n";
      add pad;
      add "]"
    | Obj fields ->
      let pad = String.make indent ' ' in
      add "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then add ",\n";
          add pad;
          add "  \"";
          add (escape k);
          add "\": ";
          go (indent + 2) v)
        fields;
      add "\n";
      add pad;
      add "}"
  in
  go 0 v;
  Buffer.contents buf
