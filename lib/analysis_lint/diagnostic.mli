(** Coded, span-carrying diagnostics.

    A diagnostic pairs a stable code ([G001]..., [L001]...) with a severity,
    an optional source file and span, a one-line message, and free-form
    notes (cycle witnesses, related positions).  The code table lives in
    {!Lint.registry} and is documented in DESIGN.md. *)

module Loc = Costar_grammar.Loc

type severity =
  | Error  (** the grammar/lexer violates a CoStar precondition *)
  | Warning  (** almost certainly a mistake, but parsing still works *)
  | Info  (** informational, e.g. where ALL(star) prediction is forced *)

val severity_to_string : severity -> string

(** [Error] < [Warning] < [Info]. *)
val severity_rank : severity -> int

type t = {
  code : string;
  severity : severity;
  file : string option;
  span : Loc.span;  (** {!Loc.dummy} when the construct has no source *)
  message : string;
  notes : string list;
}

val make :
  ?severity:severity ->
  ?file:string ->
  ?span:Loc.span ->
  ?notes:string list ->
  string ->
  string ->
  t

(** Document order: file, then span, then code — deterministic, so JSON
    output can be golden-tested. *)
val compare : t -> t -> int

(** One-line [file:line:col: severity[CODE]: message] rendering, with
    indented [note:] lines below. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
