(** The [costar lint] engine: coded, span-carrying static analysis for
    grammars and lexer specifications.

    Grammar checks run over the desugared BNF, with diagnostics mapped back
    to EBNF source spans through {!Costar_ebnf.Desugar} provenance; lexer
    checks run over {!Costar_lex.Spec} rules; prediction-analysis checks run
    the static SLL-decision analyzer ({!Costar_predict_analysis.Analyze})
    over the grammar.  Codes are stable ([G]* for grammar, [L]* for lexer,
    [A]* for prediction analysis; see {!registry} and the table in
    DESIGN.md).

    The motivating paper facts: CoStar's correctness theorems are
    conditional on the absence of left recursion (§4.1, §8) — [G003]/[G007]
    check exactly that precondition — and its prediction cost is driven by
    where SLL decisions need more than one token, which is what the LL(1)
    conflict diagnostics [G004]/[G005] surface. *)

module D = Diagnostic
module Loc = Costar_grammar.Loc

(** {1 Rule registry} *)

type rule_info = {
  code : string;
  default_severity : D.severity;
  title : string;
}

(** All diagnostic codes the engine can emit, in code order. *)
val registry : rule_info list

val find_rule : string -> rule_info option

(** {1 Entry points} *)

(** Map a structured desugaring failure to its diagnostic
    ([G008]/[G009]/[G010]). *)
val of_desugar_error :
  ?file:string -> Costar_ebnf.Desugar.error -> D.t

(** Lint a prebuilt grammar (no EBNF source available, e.g. a built-in
    language); spans are {!Loc.dummy}. *)
val lint_prebuilt : ?file:string -> Costar_grammar.Grammar.t -> D.t list

type input = {
  rules : Costar_ebnf.Ast.rule list option;  (** EBNF source rules *)
  start : string option;  (** defaults to the first rule *)
  grammar_file : string option;
  prebuilt : Costar_grammar.Grammar.t option;
      (** used when [rules] is [None] *)
  lexer : Costar_lex.Spec.srule list option;
  lexer_file : string option;
}

val empty_input : input

(** Run every applicable check; the result is sorted in document order
    (deterministic, ready for golden tests). *)
val run : input -> D.t list

(** {1 Rendering} *)

(** SARIF 2.1.0 document (one run, rules table from {!registry}),
    deterministic for a given diagnostic list. *)
val sarif : ?tool_version:string -> D.t list -> string

(** {1 Exit-code policy}

    Shared by [costar lint] and [costar analyze] ([--max-severity],
    [--max-warnings]). *)

(** The most severe diagnostic level tolerated with a zero exit:
    [Gate_error] tolerates everything (report-only), [Gate_warning]
    tolerates warnings up to [max_warnings] (the lint default), [Gate_info]
    only info, [Gate_none] nothing. *)
type gate = Gate_none | Gate_info | Gate_warning | Gate_error

val gate_of_string : string -> gate option
val gate_to_string : gate -> string

(** [2] if errors exceed the gate, [1] if warnings (or, under [Gate_none],
    info) do, else [0].  [max_warnings] (default [0]) applies only under
    [Gate_warning]. *)
val exit_code : ?max_severity:gate -> ?max_warnings:int -> D.t list -> int
