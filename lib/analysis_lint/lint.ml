module D = Diagnostic
module Loc = Costar_grammar.Loc
module Grammar = Costar_grammar.Grammar
module Ast = Costar_ebnf.Ast
module Desugar = Costar_ebnf.Desugar
module Spec = Costar_lex.Spec

(* --- Rule registry ------------------------------------------------------ *)

type rule_info = {
  code : string;
  default_severity : D.severity;
  title : string;
}

let registry =
  [
    { code = "G001"; default_severity = D.Warning;
      title = "unreachable nonterminal" };
    { code = "G002"; default_severity = D.Warning;
      title = "unproductive nonterminal (error on the start symbol)" };
    { code = "G003"; default_severity = D.Error;
      title = "left recursion (direct, indirect, or hidden), with cycle \
               witness" };
    { code = "G004"; default_severity = D.Info;
      title = "LL(1) FIRST/FIRST conflict: ALL(*) prediction required" };
    { code = "G005"; default_severity = D.Info;
      title = "LL(1) FIRST/FOLLOW conflict: ALL(*) prediction required" };
    { code = "G006"; default_severity = D.Warning;
      title = "duplicate identical alternatives of one nonterminal" };
    { code = "G007"; default_severity = D.Error;
      title = "nullable cycle: the nonterminal derives itself (infinite \
               ambiguity)" };
    { code = "G008"; default_severity = D.Error;
      title = "reference to an undefined nonterminal" };
    { code = "G009"; default_severity = D.Error;
      title = "duplicate rule definition" };
    { code = "G010"; default_severity = D.Error;
      title = "undefined start symbol / empty grammar" };
    { code = "L001"; default_severity = D.Error;
      title = "lexer rule can match the empty string (scanner livelock)" };
    { code = "L002"; default_severity = D.Warning;
      title = "lexer rule shadowed by earlier rules (never wins)" };
    { code = "L003"; default_severity = D.Error;
      title = "grammar terminal never produced by the lexer" };
    { code = "L004"; default_severity = D.Warning;
      title = "lexer rule emits a token kind unknown to the grammar" };
    { code = "L005"; default_severity = D.Warning;
      title = "duplicate lexer rule name" };
    { code = "A001"; default_severity = D.Info;
      title = "SLL-vs-LL divergence possible: runtime LL fallback reachable" };
    { code = "A002"; default_severity = D.Info;
      title = "decision is not SLL(k) for any k within the analyzed bound, \
               with witness (unbounded-lookahead cost, the regime ALL(*) \
               exists for)" };
    { code = "A003"; default_severity = D.Warning;
      title = "true ambiguity: witness sentence with several parse trees \
               (Earley-confirmed)" };
    { code = "A004"; default_severity = D.Info;
      title = "lookahead-depth report: minimal k for SLL(k) decisions \
               needing more than one token" };
    { code = "F001"; default_severity = D.Warning;
      title = "unusable alternative: right-hand side contains an \
               unproductive nonterminal" };
    { code = "F002"; default_severity = D.Info;
      title = "nullable symbol shadowed by its right context (extra \
               lookahead at this site)" };
    { code = "F003"; default_severity = D.Info;
      title = "FIRST/FOLLOW overlap on a nullable nonterminal, with \
               dataflow witness chains" };
    { code = "F004"; default_severity = D.Error;
      title = "grammar terminal unproducible by the compiled lexer DFA \
               (emptiness query)" };
    { code = "F005"; default_severity = D.Warning;
      title = "lexer rule's terminal is dead in the grammar (no reachable \
               production consumes it)" };
    { code = "C001"; default_severity = D.Warning;
      title = "statically dead production: no successful parse can ever \
               commit to it (unreachable lhs or unproductive rhs)" };
    { code = "C002"; default_severity = D.Info;
      title = "unreachable SLL decision edge: cached lookahead transition \
               no concrete sentence can drive" };
    { code = "C003"; default_severity = D.Info;
      title = "dead lexer-class transition: no accepted lexeme traverses \
               it (every scan taking it must backtrack or fail)" };
    { code = "C004"; default_severity = D.Info;
      title = "ambiguous-only target: every covering sentence is ambiguous \
               and prediction commits to an earlier alternative" };
    (* P-codes: parse-time diagnostics, emitted by `costar parse` and the
       error-recovery engine (lib/recover) rather than static analysis. *)
    { code = "P001"; default_severity = D.Error;
      title = "unexpected token: the parser expected a different terminal \
               (or had finished) at this position" };
    { code = "P002"; default_severity = D.Error;
      title = "unexpected end of input: the parse needed more tokens" };
    { code = "P003"; default_severity = D.Error;
      title = "no viable alternative: ALL(*) prediction rejected every \
               right-hand side of the decision nonterminal" };
    { code = "P004"; default_severity = D.Error;
      title = "lexical error: the scanner could not tokenize the input" };
  ]

let find_rule code = List.find_opt (fun r -> r.code = code) registry

(* --- Desugar errors as diagnostics -------------------------------------- *)

let of_desugar_error ?file (e : Desugar.error) =
  match e with
  | Desugar.Undefined_reference { name; span; in_rule } ->
    D.make ~severity:D.Error ?file ~span "G008"
      (Printf.sprintf "rule `%s` references undefined nonterminal `%s`"
         in_rule name)
  | Desugar.Duplicate_rule { name; span; prev_span } ->
    D.make ~severity:D.Error ?file ~span
      ~notes:
        (if Loc.is_dummy prev_span then []
         else [ Printf.sprintf "first defined at %s" (Loc.to_string prev_span) ])
      "G009"
      (Printf.sprintf "duplicate rule for `%s`" name)
  | Desugar.Undefined_start { start } ->
    D.make ~severity:D.Error ?file "G010"
      (Printf.sprintf "start symbol `%s` is not defined by any rule" start)
  | Desugar.Empty_grammar ->
    D.make ~severity:D.Error ?file "G010" "the grammar has no rules"

(* --- Provenance plumbing ------------------------------------------------ *)

(* Builds the span/description/parent lookups Rules_grammar wants from the
   desugarer's provenance table. *)
let grammar_ctx ?file g (prov : Desugar.provenance) =
  let span_of x =
    match Desugar.origin_of prov (Grammar.nonterminal_name g x) with
    | Some o -> Desugar.origin_span o
    | None -> Loc.dummy
  in
  let describe x =
    match Desugar.origin_of prov (Grammar.nonterminal_name g x) with
    | Some (Desugar.Synthesized { kind; span; in_rule }) ->
      Some
        (Printf.sprintf
           "`%s` was synthesized for the %s subexpression%s in rule `%s`"
           (Grammar.nonterminal_name g x)
           (match kind with
           | "opt" -> "`?`"
           | "star" -> "`*`"
           | "plus" -> "`+`"
           | _ -> "group")
           (if Loc.is_dummy span then ""
            else " at " ^ Loc.to_string span)
           in_rule)
    | _ -> None
  in
  let synth_parent x =
    match Desugar.origin_of prov (Grammar.nonterminal_name g x) with
    | Some (Desugar.Synthesized { in_rule; _ }) ->
      Grammar.nonterminal_of_name g in_rule
    | _ -> None
  in
  Rules_grammar.make_ctx ?file ~span_of ~describe ~synth_parent g

(* --- Entry points ------------------------------------------------------- *)

(* All checks that run over a (desugared or prebuilt) grammar: the hygiene
   rules, the dataflow F-codes, and the prediction-analysis A-codes. *)
let grammar_rules ctx =
  Rules_grammar.all ctx @ Rules_flow.grammar_rules ctx @ Rules_predict.all ctx

(* Lint a prebuilt grammar (no EBNF source, e.g. a built-in language):
   every grammar rule runs, with dummy spans. *)
let lint_prebuilt ?file g =
  List.stable_sort D.compare (grammar_rules (Rules_grammar.make_ctx ?file g))

type input = {
  rules : Ast.rule list option;  (** EBNF source rules *)
  start : string option;  (** defaults to the first rule *)
  grammar_file : string option;
  prebuilt : Grammar.t option;  (** used when [rules] is [None] *)
  lexer : Spec.srule list option;
  lexer_file : string option;
}

let empty_input =
  {
    rules = None;
    start = None;
    grammar_file = None;
    prebuilt = None;
    lexer = None;
    lexer_file = None;
  }

let run input =
  let file = input.grammar_file in
  (* Grammar side: desugar (collecting structured errors) or use the
     prebuilt grammar directly. *)
  let grammar_diags, g_and_spans =
    match input.rules with
    | Some rules ->
      let start =
        match input.start with
        | Some s -> s
        | None -> (
          match rules with r :: _ -> r.Ast.name | [] -> "")
      in
      (match Desugar.to_grammar_with_provenance ~start rules with
      | Error errs -> (List.map (of_desugar_error ?file) errs, None)
      | Ok (g, prov) ->
        let span_of_name nm =
          match Desugar.origin_of prov nm with
          | Some o -> Desugar.origin_span o
          | None -> Loc.dummy
        in
        (grammar_rules (grammar_ctx ?file g prov), Some (g, span_of_name)))
    | None -> (
      match input.prebuilt with
      | Some g ->
        ( grammar_rules (Rules_grammar.make_ctx ?file g),
          Some (g, fun _ -> Loc.dummy) )
      | None -> ([], None))
  in
  let lexer_diags =
    match input.lexer with
    | None -> []
    | Some rules ->
      Rules_lexer.all
        (Rules_lexer.make_ctx ?file:input.lexer_file ?grammar:g_and_spans
           ?grammar_file:input.grammar_file rules)
  in
  (* Cross-layer dataflow checks need both sides. *)
  let cross_diags =
    match (input.lexer, g_and_spans) with
    | Some rules, Some gs ->
      Rules_flow.cross_layer ?grammar_file:input.grammar_file
        ?lexer_file:input.lexer_file gs rules
    | _ -> []
  in
  List.stable_sort D.compare (grammar_diags @ lexer_diags @ cross_diags)

(* --- Rendering ---------------------------------------------------------- *)

let sarif ?tool_version ds =
  Sarif.to_string ?tool_version
    (List.map (fun r -> (r.code, r.default_severity, r.title)) registry)
    ds

(* --- Exit-code policy --------------------------------------------------- *)

(* The severity gate shared by `costar lint` and `costar analyze`
   (--max-severity): the most severe diagnostic level tolerated with a zero
   exit.  [Gate_warning] is the historical lint default (errors exit 2,
   warnings beyond --max-warnings exit 1, info free); [Gate_error] is the
   historical analyze default (report only, never fail). *)
type gate = Gate_none | Gate_info | Gate_warning | Gate_error

let gate_of_string = function
  | "none" -> Some Gate_none
  | "info" -> Some Gate_info
  | "warning" -> Some Gate_warning
  | "error" -> Some Gate_error
  | _ -> None

let gate_to_string = function
  | Gate_none -> "none"
  | Gate_info -> "info"
  | Gate_warning -> "warning"
  | Gate_error -> "error"

(* 0 = within the gate, 1 = too many warnings (or any info when the gate is
   [Gate_none]), 2 = errors. *)
let exit_code ?(max_severity = Gate_warning) ?(max_warnings = 0) ds =
  let errors, warnings, infos = Render.summary_counts ds in
  match max_severity with
  | Gate_error -> 0
  | Gate_warning ->
    if errors > 0 then 2 else if warnings > max_warnings then 1 else 0
  | Gate_info -> if errors > 0 then 2 else if warnings > 0 then 1 else 0
  | Gate_none ->
    if errors > 0 then 2 else if warnings > 0 || infos > 0 then 1 else 0
