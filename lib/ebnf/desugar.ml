open Ast
module G = Costar_grammar.Grammar
module Loc = Costar_grammar.Loc

type error =
  | Undefined_reference of { name : string; span : Loc.span; in_rule : string }
  | Duplicate_rule of { name : string; span : Loc.span; prev_span : Loc.span }
  | Undefined_start of { start : string }
  | Empty_grammar

let error_message = function
  | Undefined_reference { name; span; in_rule } ->
    if Loc.is_dummy span then
      Printf.sprintf "rule %s references undefined nonterminal %s" in_rule name
    else
      Printf.sprintf "%s: rule %s references undefined nonterminal %s"
        (Loc.to_string span) in_rule name
  | Duplicate_rule { name; span; prev_span } ->
    if Loc.is_dummy span then Printf.sprintf "duplicate rule for %s" name
    else
      Printf.sprintf "%s: duplicate rule for %s (first defined at %s)"
        (Loc.to_string span) name
        (Loc.to_string prev_span)
  | Undefined_start { start } ->
    Printf.sprintf "undefined start symbol %s" start
  | Empty_grammar -> "empty grammar"

let error_messages errs = String.concat "; " (List.map error_message errs)

type origin =
  | User of Loc.span
  | Synthesized of { kind : string; span : Loc.span; in_rule : string }

type provenance = (string * origin) list

let origin_of prov name = List.assoc_opt name prov

let origin_span = function
  | User span -> span
  | Synthesized { span; _ } -> span

(* Synthesized-rule table: structural subexpression (spans stripped, see
   [Ast.strip]) -> fresh nonterminal name, plus the list of synthesized
   rules in creation order and the origin of each fresh name. *)
type st = {
  tbl : (exp, string) Hashtbl.t;
  mutable synthesized : (string * G.elt list list) list;
  mutable origins : (string * origin) list;
  mutable counter : int;
  mutable cur_rule : string;  (* user rule being lowered, for provenance *)
  taken : (string, unit) Hashtbl.t;  (* user rule names, to keep fresh fresh *)
}

let fresh st prefix =
  let rec next () =
    st.counter <- st.counter + 1;
    let name = Printf.sprintf "%s__%d" prefix st.counter in
    if Hashtbl.mem st.taken name then next () else name
  in
  next ()

(* An alternative is a list of grammar elements.  [alternatives] turns an
   expression into its top-level alternatives; atoms inside an alternative
   that are not plain symbols are delegated to synthesized nonterminals. *)
let rec alternatives st (e : exp) : G.elt list list =
  match e.desc with
  | Alt es -> List.concat_map (alternatives st) es
  | _ -> [ elems st e ]

and elems st (e : exp) : G.elt list =
  match e.desc with
  | Seq es -> List.concat_map (elems st) es
  | Ref name -> [ G.n name ]
  | Tok name -> [ G.t name ]
  | Lit s -> [ G.t s ]
  | Alt _ | Opt _ | Star _ | Plus _ -> [ G.n (synthesize st e) ]

and synthesize st e =
  let key = strip e in
  match Hashtbl.find_opt st.tbl key with
  | Some name -> name
  | None ->
    let kind =
      match e.desc with
      | Opt _ -> "opt"
      | Star _ -> "star"
      | Plus _ -> "plus"
      | _ -> "grp"
    in
    let name = fresh st kind in
    Hashtbl.add st.tbl key name;
    st.origins <-
      (name, Synthesized { kind; span = e.span; in_rule = st.cur_rule })
      :: st.origins;
    let alts =
      match e.desc with
      | Opt inner -> [ [] ] @ alternatives st inner
      | Star inner ->
        (* name -> eps | inner name  (right recursion) *)
        let inner_alts = alternatives st inner in
        [] :: List.map (fun alt -> alt @ [ G.n name ]) inner_alts
      | Plus inner ->
        (* name -> inner star(inner): the loop-continuation decision then
           lives in the star nonterminal and needs one token (enter vs
           follow), instead of a scan of a whole extra [inner] as the
           naive [inner | inner name] expansion would require.  The
           derived star inherits the plus's span for provenance. *)
        let star_name =
          synthesize st { desc = Star inner; span = e.span }
        in
        let inner_alts = alternatives st inner in
        List.map (fun alt -> alt @ [ G.n star_name ]) inner_alts
      | other -> alternatives st { e with desc = other }
    in
    st.synthesized <- (name, alts) :: st.synthesized;
    name

(* Static validation, before any lowering: every error is collected (in
   source order) rather than stopping at the first, so a lint pass can
   report them all at once. *)
let validate ~start rules =
  let errs = ref [] in
  let seen = Hashtbl.create 16 in
  if rules = [] then errs := [ Empty_grammar ]
  else begin
    List.iter
      (fun r ->
        match Hashtbl.find_opt seen r.name with
        | Some prev_span ->
          errs :=
            Duplicate_rule { name = r.name; span = r.span; prev_span }
            :: !errs
        | None -> Hashtbl.add seen r.name r.span)
      rules;
    let rec walk in_rule e =
      match e.desc with
      | Ref name ->
        if not (Hashtbl.mem seen name) then
          errs :=
            Undefined_reference { name; span = e.span; in_rule } :: !errs
      | Tok _ | Lit _ -> ()
      | Seq es | Alt es -> List.iter (walk in_rule) es
      | Opt e | Star e | Plus e -> walk in_rule e
    in
    List.iter (fun r -> walk r.name r.body) rules;
    if not (Hashtbl.mem seen start) then
      errs := Undefined_start { start } :: !errs
  end;
  List.rev !errs

let to_grammar_with_provenance ?extra_terminals ~start rules =
  match validate ~start rules with
  | _ :: _ as errs -> Error errs
  | [] ->
    let taken = Hashtbl.create 64 in
    List.iter (fun r -> Hashtbl.replace taken r.name ()) rules;
    let st =
      {
        tbl = Hashtbl.create 64;
        synthesized = [];
        origins = [];
        counter = 0;
        cur_rule = "";
        taken;
      }
    in
    let main =
      List.map
        (fun rule ->
          st.cur_rule <- rule.name;
          (rule.name, alternatives st rule.body))
        rules
    in
    (* Synthesized rules are appended after user rules, in creation order, so
       production indices of user rules match the source. *)
    let g = G.define ?extra_terminals ~start (main @ List.rev st.synthesized) in
    let prov =
      List.map (fun r -> (r.name, User r.span)) rules @ List.rev st.origins
    in
    Ok (g, prov)

let to_grammar ?extra_terminals ~start rules =
  Result.map fst (to_grammar_with_provenance ?extra_terminals ~start rules)

let to_grammar_exn ?extra_terminals ~start rules =
  match to_grammar ?extra_terminals ~start rules with
  | Ok g -> g
  | Error errs -> invalid_arg ("Desugar.to_grammar: " ^ error_messages errs)
