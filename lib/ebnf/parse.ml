(* A hand-written lexer and recursive-descent parser for the textual EBNF
   format.  (CoStar itself could parse this, but the grammar toolchain must
   not depend on the parser it feeds.)

   Every token carries a source span, which the parser threads into the AST
   so diagnostics (Desugar errors, Costar_lint) can point at the offending
   grammar text. *)

module Loc = Costar_grammar.Loc

type tok =
  | Ident of string
  | Literal of string
  | Colon
  | Semi
  | Bar
  | Lparen
  | Rparen
  | Quest
  | Aster
  | Plus_t
  | Eof

let tok_to_string = function
  | Ident s -> s
  | Literal s -> Printf.sprintf "'%s'" s
  | Colon -> ":"
  | Semi -> ";"
  | Bar -> "|"
  | Lparen -> "("
  | Rparen -> ")"
  | Quest -> "?"
  | Aster -> "*"
  | Plus_t -> "+"
  | Eof -> "<eof>"

exception Syntax_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Syntax_error s)) fmt

(* The lexer keeps [bol] (index of the current line start) so columns are
   1-based offsets into the line. *)
let lex input =
  let n = String.length input in
  let toks = ref [] in
  let line = ref 1 in
  let bol = ref 0 in
  let i = ref 0 in
  let col () = !i - !bol + 1 in
  let newline () =
    incr line;
    bol := !i
  in
  let emit ~start_line ~start_col t =
    let span =
      Loc.make ~start_line ~start_col ~end_line:!line ~end_col:(col () - 1)
    in
    toks := (t, span) :: !toks
  in
  let is_ident_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_'
  in
  while !i < n do
    let c = input.[!i] in
    let start_line = !line and start_col = col () in
    if c = '\n' then begin
      incr i;
      newline ()
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && input.[!i + 1] = '/' then begin
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && !i + 1 < n && input.[!i + 1] = '*' then begin
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if !i + 1 < n && input.[!i] = '*' && input.[!i + 1] = '/' then begin
          i := !i + 2;
          closed := true
        end
        else begin
          if input.[!i] = '\n' then begin
            incr i;
            newline ()
          end
          else incr i
        end
      done;
      if not !closed then fail "line %d: unterminated block comment" !line
    end
    else if c = '\'' then begin
      let buf = Buffer.create 8 in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if input.[!i] = '\'' then begin
          incr i;
          closed := true
        end
        else if input.[!i] = '\\' && !i + 1 < n then begin
          (* Escapes inside literals: \' \\ \n \t *)
          (match input.[!i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | ch -> Buffer.add_char buf ch);
          i := !i + 2
        end
        else begin
          if input.[!i] = '\n' then begin
            Buffer.add_char buf '\n';
            incr i;
            newline ()
          end
          else begin
            Buffer.add_char buf input.[!i];
            incr i
          end
        end
      done;
      if not !closed then fail "line %d: unterminated literal" !line;
      if Buffer.length buf = 0 then fail "line %d: empty literal" !line;
      emit ~start_line ~start_col (Literal (Buffer.contents buf))
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      emit ~start_line ~start_col (Ident (String.sub input start (!i - start)))
    end
    else begin
      (match c with
      | ':' -> incr i; emit ~start_line ~start_col Colon
      | ';' -> incr i; emit ~start_line ~start_col Semi
      | '|' -> incr i; emit ~start_line ~start_col Bar
      | '(' -> incr i; emit ~start_line ~start_col Lparen
      | ')' -> incr i; emit ~start_line ~start_col Rparen
      | '?' -> incr i; emit ~start_line ~start_col Quest
      | '*' -> incr i; emit ~start_line ~start_col Aster
      | '+' -> incr i; emit ~start_line ~start_col Plus_t
      | _ -> fail "line %d: unexpected character %C" !line c)
    end
  done;
  let eof_span = Loc.point !line (col ()) in
  List.rev ((Eof, eof_span) :: !toks)

(* Recursive descent over the spanned token list. *)
type stream = { mutable toks : (tok * Loc.span) list }

let peek s = match s.toks with [] -> Eof | (t, _) :: _ -> t
let peek_span s = match s.toks with [] -> Loc.dummy | (_, sp) :: _ -> sp

let advance s = match s.toks with [] -> () | _ :: rest -> s.toks <- rest

let expect s t =
  if peek s = t then advance s
  else
    fail "line %d: expected %s but found %s" (peek_span s).Loc.start_line
      (tok_to_string t)
      (tok_to_string (peek s))

let is_upper_ident name =
  name <> "" && name.[0] >= 'A' && name.[0] <= 'Z'

(* The span of a compound node covers all its children. *)
let exp_list_span (es : Ast.exp list) =
  List.fold_left (fun acc (e : Ast.exp) -> Loc.join acc e.Ast.span) Loc.dummy es

let rec parse_alts s =
  let first = parse_seq s in
  let rec more acc =
    if peek s = Bar then begin
      advance s;
      more (parse_seq s :: acc)
    end
    else List.rev acc
  in
  match more [ first ] with
  | [ single ] -> single
  | alts -> Ast.mk ~span:(exp_list_span alts) (Ast.Alt alts)

and parse_seq s =
  let start_span = peek_span s in
  let rec items acc =
    match peek s with
    | Ident _ | Literal _ | Lparen -> items (parse_item s :: acc)
    | _ -> List.rev acc
  in
  match items [] with
  | [ single ] -> single
  | [] ->
    (* Epsilon: a point span at the position where the alternative would
       have started (e.g. just after '|' or ':'). *)
    Ast.mk
      ~span:(Loc.point start_span.Loc.start_line start_span.Loc.start_col)
      (Ast.Seq [])
  | es -> Ast.mk ~span:(exp_list_span es) (Ast.Seq es)

and parse_item s =
  let atom =
    match peek s with
    | Ident name ->
      let span = peek_span s in
      advance s;
      Ast.mk ~span (if is_upper_ident name then Ast.Tok name else Ast.Ref name)
    | Literal lit ->
      let span = peek_span s in
      advance s;
      Ast.mk ~span (Ast.Lit lit)
    | Lparen ->
      let lspan = peek_span s in
      advance s;
      let inner = parse_alts s in
      let rspan = peek_span s in
      expect s Rparen;
      (* Reposition the group to include the parentheses. *)
      Ast.with_span inner (Loc.join lspan rspan)
    | t ->
      fail "line %d: expected an atom but found %s"
        (peek_span s).Loc.start_line (tok_to_string t)
  in
  let rec postfix (e : Ast.exp) =
    match peek s with
    | Quest ->
      let span = Loc.join e.Ast.span (peek_span s) in
      advance s;
      postfix (Ast.mk ~span (Ast.Opt e))
    | Aster ->
      let span = Loc.join e.Ast.span (peek_span s) in
      advance s;
      postfix (Ast.mk ~span (Ast.Star e))
    | Plus_t ->
      let span = Loc.join e.Ast.span (peek_span s) in
      advance s;
      postfix (Ast.mk ~span (Ast.Plus e))
    | _ -> e
  in
  postfix atom

let parse_rule s =
  (* A defined rule is a nonterminal whatever its case (see
     [resolve_refs] below); only *references* default by case. *)
  match peek s with
  | Ident name ->
    let span = peek_span s in
    advance s;
    expect s Colon;
    let body = parse_alts s in
    expect s Semi;
    Ast.rule ~span name body
  | t ->
    fail "line %d: expected a rule name but found %s"
      (peek_span s).Loc.start_line (tok_to_string t)

(* Identifier case decides token-vs-nonterminal at parse time, but an
   uppercase identifier that names a rule is unambiguously a nonterminal
   reference: reinterpret it, so grammars with uppercase nonterminals (and
   output of [Print.grammar_to_string]) round-trip. *)
let resolve_refs rules =
  let rule_names = List.map (fun r -> r.Ast.name) rules in
  let rec fix e =
    let desc =
      match e.Ast.desc with
      | Ast.Tok name when List.mem name rule_names -> Ast.Ref name
      | (Ast.Tok _ | Ast.Ref _ | Ast.Lit _) as d -> d
      | Ast.Seq es -> Ast.Seq (List.map fix es)
      | Ast.Alt es -> Ast.Alt (List.map fix es)
      | Ast.Opt e -> Ast.Opt (fix e)
      | Ast.Star e -> Ast.Star (fix e)
      | Ast.Plus e -> Ast.Plus (fix e)
    in
    { e with Ast.desc }
  in
  List.map (fun r -> { r with Ast.body = fix r.Ast.body }) rules

let rules_of_string input =
  match
    let s = { toks = lex input } in
    let rec rules acc =
      if peek s = Eof then List.rev acc else rules (parse_rule s :: acc)
    in
    rules []
  with
  | [] -> Error "empty grammar"
  | rules -> Ok (resolve_refs rules)
  | exception Syntax_error msg -> Error msg

let grammar_of_string ?extra_terminals ?start input =
  match rules_of_string input with
  | Error _ as e -> e
  | Ok rules -> (
    let start =
      match start with Some s -> s | None -> (List.hd rules).Ast.name
    in
    match Desugar.to_grammar ?extra_terminals ~start rules with
    | Ok g -> Ok g
    | Error errs -> Error (Desugar.error_messages errs))
