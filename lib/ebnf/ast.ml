(** EBNF abstract syntax.

    This is the input language of the grammar-conversion tool (paper, §6.1):
    rules may use alternation, grouping, and the [? * +] postfix operators,
    which {!Desugar} lowers to plain BNF.

    Every node carries a {!Costar_grammar.Loc.span} so downstream passes
    (desugaring, {!Costar_lint}) can report diagnostics against the original
    source text.  Combinator-built ASTs get {!Costar_grammar.Loc.dummy}
    spans; the textual parser fills in real positions. *)

module Loc = Costar_grammar.Loc

type exp = {
  desc : desc;
  span : Loc.span;
}

and desc =
  | Ref of string  (** nonterminal reference *)
  | Tok of string  (** named token kind, e.g. [STRING] *)
  | Lit of string  (** literal terminal, e.g. ['{'] *)
  | Seq of exp list  (** [Seq []] is epsilon *)
  | Alt of exp list
  | Opt of exp
  | Star of exp
  | Plus of exp

type rule = {
  name : string;
  body : exp;
  span : Loc.span;  (** span of the rule name at its definition site *)
}

(** {1 Combinator-style builders} *)

let mk ?(span = Loc.dummy) desc = { desc; span }

let r name = mk (Ref name)
let tok name = mk (Tok name)
let lit s = mk (Lit s)
let seq es = mk (Seq es)
let alt es = mk (Alt es)
let opt e = mk (Opt e)
let star e = mk (Star e)
let plus e = mk (Plus e)
let eps = seq []

let rule ?(span = Loc.dummy) name body = { name; body; span }

(** [with_span e span] repositions the root node only. *)
let with_span (e : exp) span = { e with span }

(** [strip e] erases every span, giving the structural skeleton; two
    occurrences of the same subexpression compare and hash equal after
    stripping, which is what {!Desugar}'s sharing table keys on. *)
let rec strip e = { desc = strip_desc e.desc; span = Loc.dummy }

and strip_desc = function
  | (Ref _ | Tok _ | Lit _) as d -> d
  | Seq es -> Seq (List.map strip es)
  | Alt es -> Alt (List.map strip es)
  | Opt e -> Opt (strip e)
  | Star e -> Star (strip e)
  | Plus e -> Plus (strip e)

let rec pp_exp ppf e =
  match e.desc with
  | Ref s -> Fmt.string ppf s
  | Tok s -> Fmt.string ppf s
  | Lit s -> Fmt.pf ppf "'%s'" s
  | Seq [] -> Fmt.string ppf "()"
  | Seq es -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:sp pp_exp) es
  | Alt es -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " | ") pp_exp) es
  | Opt e -> Fmt.pf ppf "%a?" pp_exp e
  | Star e -> Fmt.pf ppf "%a*" pp_exp e
  | Plus e -> Fmt.pf ppf "%a+" pp_exp e

let pp_rule ppf rule = Fmt.pf ppf "%s : %a ;" rule.name pp_exp rule.body
