(** Lowering EBNF to BNF (paper, §6.1).

    [? * +] operators and nested groups become fresh nonterminals with new
    productions, exactly as the paper's ANTLR-to-CoStar conversion tool
    does.  Repetition is expanded {e right}-recursively, so the result never
    introduces left recursion:

    - [e*] becomes [X -> eps | E X]
    - [e+] becomes [X -> E S] with [S] the star of [e] (so the
      loop-continuation decision needs one token of lookahead, as in
      ANTLR's ATN loops, rather than a rescan of [e])
    - [e?] becomes [X -> eps | E]
    - a nested alternation or group becomes [X -> alt1 | alt2 | ...]

    Structurally identical subexpressions share one synthesized nonterminal,
    keeping the desugared grammar compact (and the Fig. 8 statistics
    honest).

    Malformed inputs (undefined references, duplicate rules, undefined start
    symbol) are reported as structured, span-carrying {!error} values — all
    of them, in source order — instead of an exception on the first. *)

module Loc = Costar_grammar.Loc

(** Structured desugaring failures.  Spans point into the textual grammar
    source when the rules came from {!Parse}; combinator-built rules carry
    {!Loc.dummy} spans. *)
type error =
  | Undefined_reference of { name : string; span : Loc.span; in_rule : string }
  | Duplicate_rule of { name : string; span : Loc.span; prev_span : Loc.span }
  | Undefined_start of { start : string }
  | Empty_grammar

val error_message : error -> string

(** All messages, ["; "]-separated. *)
val error_messages : error list -> string

(** Where a nonterminal of the desugared grammar came from: a user rule
    (span of its name at the definition site), or a synthesized rule for a
    [? * +] or group subexpression (kind, span of that subexpression, and
    the user rule it first occurred in). *)
type origin =
  | User of Loc.span
  | Synthesized of { kind : string; span : Loc.span; in_rule : string }

type provenance = (string * origin) list

val origin_of : provenance -> string -> origin option

val origin_span : origin -> Loc.span

(** [to_grammar ~start rules] lowers and builds the grammar, or reports
    every validation error. *)
val to_grammar :
  ?extra_terminals:string list ->
  start:string ->
  Ast.rule list ->
  (Costar_grammar.Grammar.t, error list) result

(** Like {!to_grammar} but also returns the nonterminal provenance table,
    which {!Costar_lint} uses to map diagnostics on synthesized
    nonterminals back to their EBNF source spans. *)
val to_grammar_with_provenance :
  ?extra_terminals:string list ->
  start:string ->
  Ast.rule list ->
  (Costar_grammar.Grammar.t * provenance, error list) result

(** Convenience for tests and trusted inputs.
    @raise Invalid_argument on any validation error. *)
val to_grammar_exn :
  ?extra_terminals:string list ->
  start:string ->
  Ast.rule list ->
  Costar_grammar.Grammar.t
