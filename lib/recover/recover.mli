(** Multi-error recovery over the interned machine (ROADMAP item 2).

    The engine drives {!Costar_core.Machine.step} exactly like
    {!Costar_core.Parser}; as long as no step rejects, the two are the
    same loop over the same states, so on well-formed input recovery
    produces a bit-identical tree and an identical DFA-cache evolution
    (the differential obligation of test/test_recover.ml).  When a step
    rejects, the structured {!Costar_core.Machine.fail_reason} is turned
    into a coded, span-carrying diagnostic (P001–P003) and the machine
    state is repaired instead of abandoned:

    - {b insert} — a single missing terminal is synthesized (no input
      consumed) when a bounded trial proves the repaired parse consumes
      real input afterwards;
    - {b delete} — the offending token is dropped, again trial-checked;
    - {b panic} — input is skipped to the nearest token in a resume set
      built from the {!Costar_flow.Flow} FIRST and sync/anchor sets of
      the suspended stack frames, popping frames whose productions are
      abandoned as explicit {!Costar_grammar.Tree.Error} nodes;
    - {b unwind} — at end of input the whole stack is closed off with
      error nodes and a partial tree is produced.

    Termination is the §4 argument extended to repairs: every machine
    step and every committed repair strictly decreases the lexicographic
    (remaining tokens, §4 stack score, stack height) measure — deletion
    and skipping consume input; insertion and symbol drops shorten the
    top suffix at equal input; frame pops shrink the score or the
    height.  [~verify_measure:true] checks this executable bound after
    every transition (the fuzz gate's no-hang obligation). *)

open Costar_grammar
open Costar_grammar.Symbols
module D := Costar_lint.Diagnostic

(** How the parse was repaired at one failure point. *)
type repair =
  | Inserted of terminal
      (** a synthesized terminal stands in for a missing token *)
  | Deleted  (** the offending token was dropped *)
  | Dropped of symbol
      (** the undrivable head symbol was abandoned without consuming
          input *)
  | Skipped of { tokens : int; popped : int }
      (** panic mode: [tokens] input tokens skipped after popping
          [popped] stack frames *)
  | Closed of { popped : int }
      (** end of input: the remaining stack was unwound into error
          nodes *)
  | Gave_up of { tokens : int; popped : int }
      (** the error limit was reached; the rest of the input was
          abandoned in one step *)

(** One recovery event, in input order. *)
type event = {
  diag : D.t;  (** the P-coded diagnostic for the failure *)
  repair : repair;
  at : int;  (** token index the failure was detected at *)
  consumed : int;
      (** tokens consumed by the repair ([at .. at+consumed-1]); 0 for
          insertions and drops *)
}

type verdict =
  | Recovered of Tree.t
      (** a tree over the whole input; contains {!Tree.Error} nodes iff
          any event fired *)
  | Recovered_ambig of Tree.t  (** same, with an ambiguous prediction *)
  | Fatal of Costar_core.Types.error
      (** machine error (left recursion): not recoverable *)

type outcome = {
  verdict : verdict;
  events : event list;  (** chronological; [] iff the input was clean *)
}

(** A recovery engine: a prepared parser plus the dataflow sync sets. *)
type t

val make : Costar_core.Parser.t -> t
val parser_of : t -> Costar_core.Parser.t

(** [run t toks] parses with recovery.  [?file] tags diagnostics;
    [?max_errors] (default 100) bounds the number of repairs before the
    engine gives up in one final skip; [?verify_measure] (default false)
    asserts the strict lexicographic measure decrease after every step
    and repair, raising [Failure] on any violation (test harnesses
    only — it walks the stack at every transition). *)
val run :
  ?file:string ->
  ?max_errors:int ->
  ?verify_measure:bool ->
  t ->
  Token.t list ->
  outcome

(** Cursor form of {!run}. *)
val run_word :
  ?file:string ->
  ?max_errors:int ->
  ?verify_measure:bool ->
  t ->
  Word.t ->
  outcome

(** Like {!run_word}, threading an explicit DFA cache in and out — the
    hook the differential tests use to compare cache evolution against
    {!Costar_core.Parser.run_with_cache_word}. *)
val run_with_cache_word :
  ?file:string ->
  ?max_errors:int ->
  ?verify_measure:bool ->
  t ->
  Costar_core.Cache.t ->
  Word.t ->
  outcome * Costar_core.Cache.t

(** The diagnostics of an outcome, in event order. *)
val diagnostics : outcome -> D.t list

(** Render a P004 lexical-error diagnostic from a scanner message of the
    form ["lexical error at line L, column C: ..."] (the position is
    parsed back out when present), so the CLI can push lex failures
    through the same renderer/exit policy as parse failures. *)
val lex_diag : ?file:string -> string -> D.t
