open Costar_grammar
open Costar_grammar.Symbols
module M = Costar_core.Machine
module P = Costar_core.Parser
module Measure = Costar_core.Measure
module Types = Costar_core.Types
module Flow = Costar_flow.Flow
module Bitset = Costar_flow.Bitset
module D = Costar_lint.Diagnostic
module Loc = Costar_grammar.Loc

type repair =
  | Inserted of terminal
  | Deleted
  | Dropped of symbol
  | Skipped of { tokens : int; popped : int }
  | Closed of { popped : int }
  | Gave_up of { tokens : int; popped : int }

type event = {
  diag : D.t;
  repair : repair;
  at : int;
  consumed : int;
}

type verdict =
  | Recovered of Tree.t
  | Recovered_ambig of Tree.t
  | Fatal of Types.error

type outcome = {
  verdict : verdict;
  events : event list;
}

type t = {
  p : P.t;
  flow : Flow.t;
}

let make p = { p; flow = Flow.make (P.grammar p) }
let parser_of t = t.p
let diagnostics o = List.map (fun e -> e.diag) o.events

(* --- Spans -------------------------------------------------------------- *)

(* Position just past a token: its start advanced over the lexeme
   (newlines included, so multi-line lexemes span correctly).  Tokens
   from the list pipeline may have no position (line 0) — those yield
   dummy spans, like every other position-less construct. *)
let token_end (tok : Token.t) =
  let line = ref tok.Token.line and col = ref tok.Token.col in
  String.iter
    (fun c ->
      if c = '\n' then begin
        incr line;
        col := 0
      end
      else incr col)
    tok.Token.lexeme;
  (!line, !col)

(* Span of the token range [i, i+n) — [n = 0] is the point just before
   token [i] (or past the last token, for end-of-input diagnostics). *)
let span_of_range (w : Word.t) i n =
  if w.Word.len = 0 then Loc.dummy
  else if n = 0 then begin
    let anchor = min (max 0 (i - 1)) (w.Word.len - 1) in
    let tok = Word.token w anchor in
    if tok.Token.line = 0 then Loc.dummy
    else if i = 0 then Loc.point tok.Token.line tok.Token.col
    else
      let line, col = token_end tok in
      Loc.point line col
  end
  else begin
    let first = Word.token w i in
    let last = Word.token w (min (i + n - 1) (w.Word.len - 1)) in
    if first.Token.line = 0 then Loc.dummy
    else
      let end_line, end_col = token_end last in
      Loc.make ~start_line:first.Token.line ~start_col:first.Token.col
        ~end_line ~end_col
  end

(* --- Diagnostics -------------------------------------------------------- *)

let max_expected_names = 8

let expected_note g flow x =
  let names = List.map (Names.terminal g) (Bitset.elements (Flow.first flow x)) in
  match names with
  | [] -> "the decision nonterminal derives no terminal word"
  | _ ->
    let shown, rest =
      if List.length names <= max_expected_names then (names, 0)
      else
        ( List.filteri (fun i _ -> i < max_expected_names) names,
          List.length names - max_expected_names )
    in
    Printf.sprintf "expected one of: %s%s"
      (String.concat ", " (List.map (fun n -> "'" ^ n ^ "'") shown))
      (if rest = 0 then "" else Printf.sprintf " (and %d more)" rest)

let repair_note g = function
  | Inserted a ->
    Printf.sprintf "recovery: inserted a missing '%s'" (Names.terminal g a)
  | Deleted -> "recovery: deleted this token"
  | Dropped s ->
    Printf.sprintf "recovery: gave up on %s here" (Names.symbol g s)
  | Skipped { tokens; popped } ->
    Printf.sprintf "recovery: skipped %d token%s%s" tokens
      (if tokens = 1 then "" else "s")
      (if popped = 0 then ""
       else
         Printf.sprintf " after closing %d open production%s" popped
           (if popped = 1 then "" else "s"))
  | Closed { popped } ->
    Printf.sprintf "recovery: closed %d open production%s at end of input"
      popped
      (if popped = 1 then "" else "s")
  | Gave_up { tokens; popped } ->
    Printf.sprintf
      "recovery: error limit reached; abandoned the remaining %d token%s (%d \
       open production%s)"
      tokens
      (if tokens = 1 then "" else "s")
      popped
      (if popped = 1 then "" else "s")

(* The P-code for a structured machine failure.  [Fail_mismatch] and
   [Fail_trailing] are both "unexpected token" (P001); running out of
   input is P002; a prediction reject is P003. *)
let code_of_reason = function
  | M.Fail_mismatch _ | M.Fail_trailing _ -> "P001"
  | M.Fail_eof _ -> "P002"
  | M.Fail_no_alt _ -> "P003"

let diag_of_failure t ~file (st : M.state) (f : M.failure) repair =
  let g = P.grammar t.p in
  let span =
    match f.M.reason with
    | M.Fail_eof _ -> span_of_range st.M.word st.M.word.Word.len 0
    | M.Fail_mismatch { pos; _ } | M.Fail_trailing { pos } ->
      span_of_range st.M.word pos 1
    | M.Fail_no_alt { pos; _ } ->
      if pos >= st.M.word.Word.len then span_of_range st.M.word pos 0
      else span_of_range st.M.word pos 1
  in
  let notes =
    (match f.M.reason with
    | M.Fail_no_alt { nt; lookahead; _ } ->
      expected_note g t.flow nt
      ::
      (if lookahead > 1 then
         [ Printf.sprintf "prediction examined %d tokens of lookahead"
             lookahead ]
       else [])
    | _ -> [])
    @ [ repair_note g repair ]
  in
  D.make ~severity:D.Error ?file ~span ~notes (code_of_reason f.M.reason)
    f.M.message

(* P004: scanner failures, re-parsed from the rendered message so the CLI
   can route every failure kind through one renderer (the scanner API
   reports strings at its public boundary). *)
let lex_diag ?file msg =
  let span =
    try
      Scanf.sscanf msg "lexical error at line %d, column %d" (fun l c ->
          Loc.point l c)
    with Scanf.Scan_failure _ | End_of_file | Failure _ -> Loc.dummy
  in
  D.make ~severity:D.Error ?file ~span "P004" msg

(* --- State surgery ------------------------------------------------------ *)

(* A synthesized terminal: the machine would have consumed [T a]; instead
   an empty [Error] marker stands in for the missing token.  No input is
   consumed, so [visited] is deliberately kept — the left-recursion
   guard must keep protecting the non-consuming segment. *)
let apply_insert (st : M.state) a =
  match st.M.top.M.suf with
  | T a' :: suf when a' = a ->
    {
      st with
      M.top =
        {
          st.M.top with
          M.syms_rev = T a :: st.M.top.M.syms_rev;
          M.trees_rev = Tree.Error (Some (T a), []) :: st.M.top.M.trees_rev;
          M.suf = suf;
        };
    }
  | _ -> invalid_arg "Recover.apply_insert: head of suffix is not the terminal"

(* Drop the undrivable head symbol (a nonterminal prediction gave up on):
   an empty [Error] marker records the hole. *)
let apply_drop (st : M.state) =
  match st.M.top.M.suf with
  | s :: suf ->
    {
      st with
      M.top =
        {
          st.M.top with
          M.syms_rev = s :: st.M.top.M.syms_rev;
          M.trees_rev = Tree.Error (Some s, []) :: st.M.top.M.trees_rev;
          M.suf = suf;
        };
    }
  | [] -> invalid_arg "Recover.apply_drop: empty suffix"

(* Skip [n >= 1] input tokens into one [Error (None, leaves)] wrapper.
   Consuming input resets [visited], exactly like a machine consume. *)
let apply_skip (st : M.state) n =
  let leaves =
    List.init n (fun k -> Tree.Leaf (Word.token st.M.word (st.M.pos + k)))
  in
  {
    st with
    M.top =
      { st.M.top with M.trees_rev = Tree.Error (None, leaves) :: st.M.top.M.trees_rev };
    M.pos = st.M.pos + n;
    M.visited = Int_set.empty;
  }

(* Pop [d] frames, closing each as an [Error (Some (NT x), partial kids)]
   node in its caller — the recovery analogue of the machine's return
   operation (including the visited-set removal). *)
let rec apply_pops (st : M.state) d =
  if d = 0 then st
  else
    match st.M.frames, st.M.top.M.label with
    | caller :: frames, Some x ->
      let node = Tree.Error (Some (NT x), List.rev st.M.top.M.trees_rev) in
      apply_pops
        {
          st with
          M.top =
            {
              caller with
              M.syms_rev = NT x :: caller.M.syms_rev;
              M.trees_rev = node :: caller.M.trees_rev;
            };
          M.frames;
          M.visited = Int_set.remove x st.M.visited;
        }
        (d - 1)
    | _ -> invalid_arg "Recover.apply_pops: cannot pop the bottom frame"

(* Unwind everything: close every open frame and drop the unprocessed
   suffix of the bottom frame.  After this the stack is empty and the
   driver's finalizer runs. *)
let apply_unwind (st : M.state) =
  let st = apply_pops st (List.length st.M.frames) in
  { st with M.top = { st.M.top with M.suf = [] } }

(* --- Progress trials ---------------------------------------------------- *)

(* Run the machine forward a bounded number of steps and report whether
   the repair provably makes progress: a real token is consumed, or the
   parse finishes cleanly at end of input.  Between two consumes the
   machine performs at most |stack| returns and |nonterminals| pushes
   (the visited guard), so the budget below covers every genuine
   success; rejects, errors, and budget exhaustion fail the trial. *)
let trial env (st0 : M.state) =
  let g = env.M.g in
  let budget = M.height st0 + (2 * Grammar.num_nonterminals g) + 8 in
  let pos0 = st0.M.pos in
  let rec go st n =
    if st.M.pos > pos0 then true
    else if st.M.top.M.suf = [] && st.M.frames = [] then
      st.M.pos >= st.M.word.Word.len
    else if n = 0 then false
    else
      match M.step env st with
      | M.Step_cont st' -> go st' (n - 1)
      | M.Step_accept _ -> true
      | M.Step_reject _ | M.Step_error _ -> false
  in
  go st0 budget

(* --- Panic-mode resynchronization --------------------------------------- *)

(* Resume vocabulary per pop depth [d]: FIRST of the suffix the stack
   would resume at, extended — when that suffix can vanish — with the
   sync/anchor set (FIRST ∪ FOLLOW) of the frame's own nonterminal, the
   Coco/R recipe over the Flow-precomputed tables. *)
let resume_sets t (st : M.state) =
  let flow = t.flow in
  let frames = Array.of_list (st.M.top :: st.M.frames) in
  Array.map
    (fun (f : M.frame) ->
      let r = Flow.first_seq flow f.M.suf in
      (if Flow.nullable_seq flow f.M.suf then
         match f.M.label with
         | Some x -> ignore (Bitset.union_into ~into:r (Flow.sync flow x))
         | None -> ());
      r)
    frames

(* Find the nearest (skip, pop) repair: the smallest number of skipped
   tokens [s], then the fewest popped frames [d], such that the token at
   [pos + s] is in the resume set of depth [d].  (0, 0) is excluded —
   it is the configuration that just failed.  [None] means no token
   resynchronizes: skip to end of input and unwind. *)
let find_resync (r : Bitset.t array) (st : M.state) =
  let kinds = st.M.word.Word.kinds in
  let len = st.M.word.Word.len in
  let n = Array.length r in
  let find_d a min_d =
    let rec go d = if d >= n then None else if Bitset.mem r.(d) a then Some d else go (d + 1) in
    go min_d
  in
  let rec scan s =
    if st.M.pos + s >= len then None
    else
      let a = Bigarray.Array1.get kinds (st.M.pos + s) in
      match find_d a (if s = 0 then 1 else 0) with
      | Some d -> Some (s, d)
      | None -> scan (s + 1)
  in
  scan 0

(* --- The driver --------------------------------------------------------- *)

let run_state t ~file ~max_errors ~verify_measure st0 =
  let env = P.env t.p in
  let g = P.grammar t.p in
  let start = Grammar.start g in
  let events = ref [] in
  let emit diag repair ~at ~consumed =
    events := { diag; repair; at; consumed } :: !events
  in
  let last_meas = ref (if verify_measure then Some (Measure.meas g st0) else None) in
  let check_decrease what st =
    match !last_meas with
    | None -> ()
    | Some m0 ->
      let m1 = Measure.meas g st in
      if Measure.compare m1 m0 >= 0 then
        failwith
          (Fmt.str
             "Recover: %s did not decrease the termination measure (%a -> %a)"
             what Measure.pp m0 Measure.pp m1);
      last_meas := Some m1
  in
  (* Close out an empty-stack state: the machine's finish rule, made
     total.  The clean shape accepts the very tree the plain engine
     would (bit-identical); anything else is wrapped in a root error
     node.  Trailing input at an empty stack is itself a failure, so it
     is diagnosed and skipped first. *)
  let rec finalize (st : M.state) n_errors =
    if st.M.pos < st.M.word.Word.len then begin
      let remaining = st.M.word.Word.len - st.M.pos in
      let failure =
        {
          M.reason = M.Fail_trailing { pos = st.M.pos };
          M.message =
            Printf.sprintf "parse finished with input remaining %s"
              (M.pos_msg st);
        }
      in
      let repair = Skipped { tokens = remaining; popped = 0 } in
      emit (diag_of_failure t ~file st failure repair) repair ~at:st.M.pos
        ~consumed:remaining;
      let st' = apply_skip st remaining in
      check_decrease "trailing-input skip" st';
      finalize st' (n_errors + 1)
    end
    else
      let tree =
        match st.M.top with
        | { M.label = None; M.syms_rev = [ NT x ]; M.trees_rev = [ v ]; M.suf = [] }
          when x = start ->
          v
        | top -> Tree.Error (Some (NT start), List.rev top.M.trees_rev)
      in
      let verdict =
        if st.M.unique then Recovered tree else Recovered_ambig tree
      in
      ({ verdict; events = List.rev !events }, st.M.cache)
  (* One failure, one repair.  Every branch either returns a state whose
     measure strictly decreased or stops the parse. *)
  and recover (st : M.state) (f : M.failure) n_errors =
    let commit what repair ~consumed st' =
      emit (diag_of_failure t ~file st f repair) repair
        ~at:
          (match f.M.reason with
          | M.Fail_mismatch { pos; _ }
          | M.Fail_no_alt { pos; _ }
          | M.Fail_trailing { pos } ->
            pos
          | M.Fail_eof _ -> st.M.word.Word.len)
        ~consumed;
      check_decrease what st';
      st'
    in
    let panic () =
      let r = resume_sets t st in
      match find_resync r st with
      | Some (s, d) ->
        let st' = apply_pops st d in
        let st' = if s > 0 then apply_skip st' s else st' in
        commit "panic resync" (Skipped { tokens = s; popped = d }) ~consumed:s
          st'
      | None ->
        (* No resynchronization point: consume everything and close. *)
        let remaining = st.M.word.Word.len - st.M.pos in
        let popped = List.length st.M.frames in
        let st' = if remaining > 0 then apply_skip st remaining else st in
        let st' = apply_unwind st' in
        if remaining > 0 then
          commit "skip-to-eof" (Skipped { tokens = remaining; popped })
            ~consumed:remaining st'
        else commit "unwind" (Closed { popped }) ~consumed:0 st'
    in
    if n_errors >= max_errors then begin
      let remaining = st.M.word.Word.len - st.M.pos in
      let popped = List.length st.M.frames in
      let st' = if remaining > 0 then apply_skip st remaining else st in
      let st' = apply_unwind st' in
      commit "give-up" (Gave_up { tokens = remaining; popped })
        ~consumed:remaining st'
    end
    else
      match f.M.reason with
      | M.Fail_mismatch { expected; _ } ->
        let inserted = apply_insert st expected in
        if trial env inserted then
          commit "insertion" (Inserted expected) ~consumed:0 inserted
        else
          let deleted = apply_skip st 1 in
          if trial env deleted then commit "deletion" Deleted ~consumed:1 deleted
          else panic ()
      | M.Fail_no_alt _ ->
        if st.M.pos >= st.M.word.Word.len then begin
          (* Prediction starved at end of input: closing the stack is the
             only move. *)
          let popped = List.length st.M.frames in
          commit "eof unwind" (Closed { popped }) ~consumed:0 (apply_unwind st)
        end
        else begin
          let deleted = apply_skip st 1 in
          if trial env deleted then commit "deletion" Deleted ~consumed:1 deleted
          else
            let dropped = apply_drop st in
            if trial env dropped then
              commit "symbol drop"
                (Dropped (List.hd st.M.top.M.suf))
                ~consumed:0 dropped
            else panic ()
        end
      | M.Fail_eof _ ->
        let popped = List.length st.M.frames in
        commit "eof unwind" (Closed { popped }) ~consumed:0 (apply_unwind st)
      | M.Fail_trailing _ ->
        (* Unreachable from the driver (empty-stack states go straight to
           [finalize]), but total anyway. *)
        let remaining = st.M.word.Word.len - st.M.pos in
        commit "trailing skip" (Skipped { tokens = remaining; popped = 0 })
          ~consumed:remaining (apply_skip st remaining)
  and drive st n_errors =
    if st.M.top.M.suf = [] && st.M.frames = [] then finalize st n_errors
    else
      match M.step env st with
      | M.Step_cont st' ->
        check_decrease "machine step" st';
        drive st' n_errors
      | M.Step_accept v ->
        (* Only reachable through [Machine.finish], which the empty-stack
           check above intercepts; kept total for safety. *)
        ( {
            verdict = (if st.M.unique then Recovered v else Recovered_ambig v);
            events = List.rev !events;
          },
          st.M.cache )
      | M.Step_error e ->
        ({ verdict = Fatal e; events = List.rev !events }, st.M.cache)
      | M.Step_reject f -> drive (recover st f n_errors) (n_errors + 1)
  in
  drive st0 0

let run_with_cache_word ?file ?(max_errors = 100) ?(verify_measure = false) t
    cache word =
  let env = P.env t.p in
  run_state t ~file ~max_errors ~verify_measure
    (M.init_word env ~cache word)

let run_word ?file ?max_errors ?verify_measure t word =
  fst
    (run_with_cache_word ?file ?max_errors ?verify_measure t
       (P.base_cache t.p) word)

let run ?file ?max_errors ?verify_measure t tokens =
  run_word ?file ?max_errors ?verify_measure t (Word.of_tokens tokens)
