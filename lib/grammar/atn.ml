open Symbols

type state = int

type edge =
  | On_terminal of terminal * state
  | On_nonterminal of nonterminal * state
  | Epsilon of state

type t = {
  g : Grammar.t;
  entry : state array;
  accept : state array;
  edges : edge list array;
  prod_entry : state array;
}

let grammar t = t.g
let num_states t = Array.length t.edges
let entry t x = t.entry.(x)
let accept t x = t.accept.(x)
let edges t q = t.edges.(q)
let production_entry t ix = t.prod_entry.(ix)

let of_grammar g =
  let nts = Grammar.num_nonterminals g in
  (* States: per nonterminal an entry and an accept, plus one state per
     position inside each production (|rhs| positions after the first). *)
  let n_states =
    ref (2 * nts)
  in
  let entry = Array.init nts (fun x -> 2 * x) in
  let accept = Array.init nts (fun x -> (2 * x) + 1) in
  let prods = Grammar.prods g in
  let prod_entry = Array.make (Array.length prods) 0 in
  (* First pass: number the interior states. *)
  let interior =
    Array.map
      (fun p ->
        let k = List.length p.Grammar.rhs in
        (* Chain q0 --s1--> q1 ... --sk--> accept: q0 is fresh unless the
           rhs is empty (then the production is an epsilon edge from the
           entry and has no interior states beyond its start marker). *)
        let states = Array.init k (fun _ ->
            let q = !n_states in
            incr n_states;
            q)
        in
        states)
      prods
  in
  let edges = Array.make !n_states [] in
  let add q e = edges.(q) <- e :: edges.(q) in
  Array.iteri
    (fun ix p ->
      let x = p.Grammar.lhs in
      let chain = interior.(ix) in
      let k = Array.length chain in
      let q0 = if k = 0 then accept.(x) else chain.(0) in
      prod_entry.(ix) <- q0;
      (* Entry fans out to each alternative. *)
      if k = 0 then add entry.(x) (Epsilon accept.(x))
      else begin
        add entry.(x) (Epsilon chain.(0));
        List.iteri
          (fun i s ->
            let target = if i = k - 1 then accept.(x) else chain.(i + 1) in
            match s with
            | T a -> add chain.(i) (On_terminal (a, target))
            | NT y -> add chain.(i) (On_nonterminal (y, target)))
          p.rhs
      end)
    prods;
  (* Edge lists were built in reverse. *)
  Array.iteri (fun i l -> edges.(i) <- List.rev l) edges;
  { g; entry; accept; edges; prod_entry }

let spell_production t ix =
  let p = Grammar.prod t.g ix in
  let stop = t.accept.(p.Grammar.lhs) in
  let rec walk q acc =
    if q = stop then List.rev acc
    else
      match t.edges.(q) with
      | [ On_terminal (a, q') ] -> walk q' (T a :: acc)
      | [ On_nonterminal (y, q') ] -> walk q' (NT y :: acc)
      | [ Epsilon q' ] -> walk q' acc
      | _ -> invalid_arg "Atn.spell_production: not a chain state"
  in
  if t.prod_entry.(ix) = stop then []
  else walk t.prod_entry.(ix) []

let to_dot ?decision_label t =
  let g = t.g in
  let escape s =
    String.concat "\\\"" (String.split_on_char '"' s)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph atn {\n  rankdir=LR;\n  node [shape=circle];\n";
  for x = 0 to Grammar.num_nonterminals g - 1 do
    let label =
      let name = Names.nonterminal g x in
      match decision_label with
      | None -> name
      | Some f -> (
        match f x with
        | None -> name
        | Some note -> name ^ "\\n" ^ escape note)
    in
    Buffer.add_string buf
      (Printf.sprintf "  q%d [label=\"%s\", shape=box];\n" t.entry.(x) label);
    Buffer.add_string buf
      (Printf.sprintf "  q%d [shape=doublecircle];\n" t.accept.(x))
  done;
  Array.iteri
    (fun q outs ->
      List.iter
        (fun e ->
          let label, q' =
            match e with
            | On_terminal (a, q') ->
              (Printf.sprintf "'%s'" (Names.terminal g a), q')
            | On_nonterminal (y, q') -> (Names.nonterminal g y, q')
            | Epsilon q' -> ("\xce\xb5", q')
          in
          Buffer.add_string buf
            (Printf.sprintf "  q%d -> q%d [label=\"%s\"];\n" q q' label))
        outs)
    t.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
