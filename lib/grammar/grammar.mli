(** Context-free grammars over interned symbols.

    A grammar is a start nonterminal plus an ordered array of productions
    (paper, Fig. 1: [G ::= . | X -> gamma, G]).  Production order matters: when
    prediction reports an ambiguous input it commits to the viable right-hand
    side that appears first in the grammar, mirroring CoStar/ANTLR behaviour.

    Grammars are immutable after construction.  Construction interns all
    terminal and nonterminal names into per-grammar {!Pool}s. *)

open Symbols

type production = {
  lhs : nonterminal;
  rhs : symbol list;
  ix : int;  (** Index of this production in {!prods}, i.e. grammar order. *)
}

type t

(** {1 Construction} *)

(** Right-hand-side element in the surface construction DSL. *)
type elt =
  | Tm of string  (** terminal, by name *)
  | Ntm of string  (** nonterminal, by name *)

val t : string -> elt
val n : string -> elt

(** [define ~start rules] builds a grammar.  Each rule is a nonterminal name
    together with its alternatives in priority order.  Every nonterminal
    referenced on a right-hand side must have at least one rule (otherwise a
    nonterminal would be trivially non-productive); pass [~allow_undefined:
    true] to permit undefined nonterminals (they derive no word).

    [extra_terminals] declares terminal names that appear in the token stream
    but on no right-hand side (e.g. skipped-but-emitted markers).

    @raise Invalid_argument on duplicate rules for a nonterminal, an undefined
    start symbol, or undefined referenced nonterminals. *)
val define :
  ?allow_undefined:bool ->
  ?extra_terminals:string list ->
  start:string ->
  (string * elt list list) list ->
  t

(** {1 Accessors} *)

val start : t -> nonterminal
val prods : t -> production array
val prod : t -> int -> production

(** Indices of the productions for a nonterminal, in grammar order. *)
val prods_of : t -> nonterminal -> int list

(** Right-hand sides for a nonterminal, in grammar order. *)
val rhss_of : t -> nonterminal -> symbol list list

val num_terminals : t -> int
val num_nonterminals : t -> int
val num_productions : t -> int

val terminal_name : t -> terminal -> string
val nonterminal_name : t -> nonterminal -> string
val symbol_name : t -> symbol -> string

val terminal_of_name : t -> string -> terminal option
val nonterminal_of_name : t -> string -> nonterminal option

(** [find_production g x rhs] is the production [x -> rhs] if it is in [g]. *)
val find_production : t -> nonterminal -> symbol list -> production option

(** Longest right-hand side length (paper, Section 4.3: [maxRhsLen]). *)
val max_rhs_len : t -> int

(** [token g name lexeme] builds a token whose terminal is resolved by name.
    Convenient for tests and examples.
    @raise Invalid_argument if [name] is not a terminal of [g]. *)
val token : ?line:int -> ?col:int -> t -> string -> string -> Token.t

(** [tokens g names] builds a token per terminal name, each with its name as
    its lexeme. *)
val tokens : t -> string list -> Token.t list

(** [fingerprint g] is a hex digest over the grammar's full structure — start
    symbol, interned terminal and nonterminal pools (names, in id order), and
    every production — such that two grammars share a fingerprint iff they are
    indistinguishable to the prediction machinery.  Used to invalidate
    precompiled prediction-DFA caches (see {!Costar_core.Cache}). *)
val fingerprint : t -> string

(** {1 Printing} *)

val pp_symbol : t -> Format.formatter -> symbol -> unit
val pp_symbols : t -> Format.formatter -> symbol list -> unit
val pp_production : t -> Format.formatter -> production -> unit
val pp : Format.formatter -> t -> unit
