(** Shared codec for the flat int32-LE image formats.

    Both `costar tables` images (format v1) and v3 prediction-cache images
    encode a payload of 32-bit words — little-endian on disk, FNV-1a
    checksummed over the on-disk byte order.  This module owns that word
    discipline; the two formats define their own layouts on top of it. *)

val bits : int
(** Word width: 32. *)

val words_for : int -> int
(** [words_for n] is the number of words needed for [n] bits. *)

val push : int list ref -> int -> unit
(** Append one word (masked to 32 bits) to a reversed-word-list builder. *)

val checksum : int array -> int
(** FNV-1a (seed [0x811c9dc5], prime [0x01000193]) over the little-endian
    bytes of the words, folded to 32 bits. *)

val checksum_fold : len:int -> (int -> int) -> int
(** Generalized {!checksum} over any indexed word source. *)

val add_le_word : Buffer.t -> int -> unit
val add_le_words : Buffer.t -> int array -> unit

val le_word : string -> int -> int
(** [le_word s pos] reads one LE word at byte offset [pos].  Unsafe: the
    caller must have checked [pos + 4 <= length s]. *)

val words_of_le_string : string -> pos:int -> count:int -> int array

(** {2 int32 Bigarray views}

    The mmap-shared cache image is one contiguous [int32] bigarray; on a
    little-endian host the on-disk words and the array elements coincide
    byte for byte.  Reads return plain unboxed [int]s (sign-extended). *)

type i32 = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

val dim : i32 -> int
val get : i32 -> int -> int
(** Bounds-checked word read. *)

val get_u : i32 -> int -> int
(** Unchecked word read — the warm-path variant.  In native code the
    bigarray load and the [Int32.to_int] compose without allocating an
    [Int32.t] box, so reading mmapped transition rows stays off the minor
    heap.  Only safe on indices a prior validation walk has admitted. *)

val set : i32 -> int -> int -> unit
val of_words : int array -> i32
val checksum_i32 : i32 -> pos:int -> len:int -> int
