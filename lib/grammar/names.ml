(* The one bounds-checked name-rendering helper, shared by every output
   path (machine errors, lint, analyze, atn, table dumps).  Ids reaching a
   renderer may come from foreign tokens or deserialized table images the
   grammar never interned, so rendering must never raise. *)

open Symbols

let terminal g a =
  if a >= 0 && a < Grammar.num_terminals g then Grammar.terminal_name g a
  else Printf.sprintf "<unknown terminal %d>" a

let nonterminal g x =
  if x >= 0 && x < Grammar.num_nonterminals g then Grammar.nonterminal_name g x
  else Printf.sprintf "<unknown nonterminal %d>" x

let symbol g = function
  | T a -> terminal g a
  | NT x -> nonterminal g x

(* Terminal words (lookahead witnesses, sync sets, ...) as space-separated
   names; the empty word renders as epsilon. *)
let terminals g = function
  | [] -> "\xce\xb5"
  | w -> String.concat " " (List.map (terminal g) w)

let production g ix =
  if ix >= 0 && ix < Grammar.num_productions g then
    let p = Grammar.prod g ix in
    Printf.sprintf "%s -> %s" (nonterminal g p.Grammar.lhs)
      (match p.Grammar.rhs with
      | [] -> "\xce\xb5"
      | rhs -> String.concat " " (List.map (symbol g) rhs))
  else Printf.sprintf "<unknown production %d>" ix
