(* One seeded-RNG constructor for every deterministic generator in the
   tree (corpus generators, sentence sampling, coverage-closing witness
   generation).  Mixing the seed through a splitmix64 step before handing
   it to [Random.State] keeps nearby seeds (0, 1, 2, ...) from producing
   correlated low-entropy init vectors. *)

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_seed seed =
  let z0 = mix64 (Int64.of_int seed) in
  let z1 = mix64 (Int64.add z0 0x9e3779b97f4a7c15L) in
  Random.State.make
    [|
      seed;
      Int64.to_int (Int64.logand z0 0x3fffffffffffffffL);
      Int64.to_int (Int64.logand z1 0x3fffffffffffffffL);
    |]

(* Derive an independent stream for subtask [i] of a seeded run (e.g. one
   stream per coverage target), deterministically. *)
let split seed i = of_seed (Int64.to_int (mix64 (Int64.of_int (seed + (i * 0x1f123bb5))) ))
