open Symbols

let rec well_formed g v =
  match v with
  | Tree.Leaf _ -> true
  | Tree.Node (x, kids) ->
    let roots = List.map Tree.root kids in
    (match Grammar.find_production g x roots with
    | Some _ -> true
    | None -> false)
    && List.for_all (well_formed g) kids
  | Tree.Error _ -> false

let rec tokens_equal w1 w2 =
  match w1, w2 with
  | [], [] -> true
  | t1 :: r1, t2 :: r2 -> Token.equal t1 t2 && tokens_equal r1 r2
  | _ -> false

let tree_derives g s w v =
  equal_symbol (Tree.root v) s
  && well_formed g v
  && tokens_equal (Tree.yield v) w

let forest_derives g gamma w f =
  List.length gamma = List.length f
  && List.for_all2 (fun s v -> equal_symbol (Tree.root v) s) gamma f
  && List.for_all (well_formed g) f
  && tokens_equal (Tree.yield_forest f) w

let recognizes_start g w v = tree_derives g (NT (Grammar.start g)) w v
