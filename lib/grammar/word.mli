(** The array cursor the parser core runs on.

    A word is a dense off-heap array of terminal ids (a native-int
    bigarray, shared with the producing {!Token_buf}) plus a lazy
    per-position token materializer; the core consumes [(word, index)]
    pairs so the prediction fast path is pure unboxed array reads.
    Produced from either frontend: {!of_tokens} (legacy list pipeline)
    or {!of_buf} (zero-copy buffer pipeline). *)

type t = {
  kinds : Token_buf.int_array;
      (** terminal id per token; only [0 .. len-1] valid *)
  len : int;
  leaf : int -> Token.t;  (** lazy materializer for leaves and errors *)
}

val of_tokens : Token.t list -> t
val of_buf : Token_buf.t -> t

val length : t -> int
val kind : t -> int -> Symbols.terminal

(** Materialized token at [i] (boxed; allocates). *)
val token : t -> int -> Token.t

val to_tokens : t -> Token.t list

(** Tokens from position [i] to the end, materialized. *)
val drop : t -> int -> Token.t list
