open Symbols

(* Sentence sampling, rebuilt as a Purdom-style generator: random leftmost
   expansion explores while fuel lasts, restricted to alternatives whose
   right-hand sides are fully productive, and the moment fuel or the length
   budget runs out every remaining nonterminal is finished by its shortest
   derivation ([Analysis.min_yield]).  The old fuel-steered walk returned
   [None] whenever a deep grammar outlived its fuel; this one is total on
   productive grammars — [None] survives only for grammars whose start
   symbol derives no terminal word at all. *)

let sentence ?(max_len = 64) ?(fuel = 200) ?analysis g rand =
  let anl = match analysis with Some a -> a | None -> Analysis.make g in
  if not (Analysis.productive anl (Grammar.start g)) then None
  else begin
    let fuel = ref fuel in
    (* Alternatives a random walk may take: every nonterminal of the
       right-hand side must be productive, or the shortest-derivation
       fallback could strand us on an unfinishable form. *)
    let viable_prods x =
      List.filter
        (fun ix ->
          List.for_all
            (function T _ -> true | NT y -> Analysis.productive anl y)
            (Grammar.prod g ix).Grammar.rhs)
        (Grammar.prods_of g x)
    in
    let shortest x =
      match Analysis.min_yield anl x with
      | Some w -> List.map (Grammar.terminal_name g) w
      | None -> assert false (* walk stays inside the productive fragment *)
    in
    let rec go acc len syms =
      match syms with
      | [] -> List.rev acc
      | T a :: rest -> go (Grammar.terminal_name g a :: acc) (len + 1) rest
      | NT x :: rest ->
        decr fuel;
        if !fuel <= 0 || len >= max_len then begin
          (* Budget exhausted: finish deterministically, shortest-first. *)
          let w = shortest x in
          go (List.rev_append w acc) (len + List.length w) rest
        end
        else begin
          match viable_prods x with
          | [] -> assert false (* x is productive, so a viable alt exists *)
          | prods ->
            let pick = List.nth prods (Random.State.int rand (List.length prods)) in
            go acc len ((Grammar.prod g pick).Grammar.rhs @ rest)
        end
    in
    Some (go [] 0 [ NT (Grammar.start g) ])
  end

let tokens ?max_len ?fuel ?analysis g rand =
  Option.map (Grammar.tokens g) (sentence ?max_len ?fuel ?analysis g rand)
