(* Struct-of-arrays token buffer: the zero-copy counterpart of
   [Token.t list].  A scan writes three parallel int arrays — terminal
   ids and start/end byte offsets into the (shared, unsliced) input —
   and nothing else: no per-token records, no lexeme substrings, no
   line/column bookkeeping.  Lexemes and positions are materialized
   lazily, per token, only where they are actually consumed (parse-tree
   leaves, error messages, dumps). *)

type t = {
  input : string;  (** the scanned input; lexemes are slices of it *)
  mutable len : int;
  mutable kinds : int array;  (** terminal id per token *)
  mutable starts : int array;  (** byte offset of the first lexeme byte *)
  mutable ends : int array;  (** byte offset one past the last lexeme byte *)
  mutable lines : Lines.t option;  (** built on first position query *)
}

let create ?(capacity = 64) input =
  let capacity = max 8 capacity in
  {
    input;
    len = 0;
    kinds = Array.make capacity 0;
    starts = Array.make capacity 0;
    ends = Array.make capacity 0;
    lines = None;
  }

(* Pre-sizing from the input length keeps steady-state scanning free of
   even the amortized growth copies: one token per ~8 bytes is an
   overestimate for every bundled language. *)
let create_for_input input =
  create ~capacity:((String.length input / 8) + 16) input

let length b = b.len
let input b = b.input

(* Forget the tokens but keep the arrays (and the newline table — it
   depends only on the input): re-scanning the same input allocates
   nothing. *)
let clear b = b.len <- 0

let grow b =
  let cap = Array.length b.kinds in
  let extend a = Array.append a (Array.make cap 0) in
  b.kinds <- extend b.kinds;
  b.starts <- extend b.starts;
  b.ends <- extend b.ends

let add b ~kind ~start ~stop =
  if b.len = Array.length b.kinds then grow b;
  let i = b.len in
  Array.unsafe_set b.kinds i kind;
  Array.unsafe_set b.starts i start;
  Array.unsafe_set b.ends i stop;
  b.len <- i + 1

let kind b i = b.kinds.(i)
let start_ofs b i = b.starts.(i)
let end_ofs b i = b.ends.(i)

(* The backing array, possibly longer than [length]; pair it with
   [length] (as {!Word.of_buf} does) rather than iterating it blindly. *)
let kinds_unsafe b = b.kinds

let lexeme b i = String.sub b.input b.starts.(i) (b.ends.(i) - b.starts.(i))

let lines b =
  match b.lines with
  | Some l -> l
  | None ->
    let l = Lines.build b.input in
    b.lines <- Some l;
    l

let pos b i = Lines.pos (lines b) b.starts.(i)

let token b i =
  let line, col = pos b i in
  Token.make ~line ~col b.kinds.(i) (lexeme b i)

let to_tokens b = List.init b.len (token b)
