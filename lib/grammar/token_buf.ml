(* Struct-of-arrays token buffer: the zero-copy counterpart of
   [Token.t list].  A scan writes three parallel off-heap arrays —
   terminal ids and start/end byte offsets into the (shared, unsliced)
   input — and nothing else: no per-token records, no lexeme substrings,
   no line/column bookkeeping.  Lexemes and positions are materialized
   lazily, per token, only where they are actually consumed (parse-tree
   leaves, error messages, dumps).

   The arrays are [Bigarray.Array1]s of native ints, not [int array]s:
   bigarray storage lives outside the OCaml heap, so a pre-sized buffer
   that is [reset] between requests contributes nothing to the minor heap
   and nothing to GC scan work — the off-heap data plane of DESIGN.md
   §13.  The native-int kind (rather than int32) is what keeps reads
   unboxed unconditionally: [Array1.unsafe_get] on an int-kind bigarray
   returns a plain [int] in all compilation modes, while an int32 kind
   would return a boxed [Int32.t]. *)

type int_array = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let alloc n : int_array =
  Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

type t = {
  mutable input : string;  (** the scanned input; lexemes are slices of it *)
  mutable len : int;
  mutable kinds : int_array;  (** terminal id per token *)
  mutable starts : int_array;  (** byte offset of the first lexeme byte *)
  mutable ends : int_array;  (** byte offset one past the last lexeme byte *)
  mutable lines : Lines.t option;  (** built on first position query *)
}

let create ?(capacity = 64) input =
  let capacity = max 8 capacity in
  {
    input;
    len = 0;
    kinds = alloc capacity;
    starts = alloc capacity;
    ends = alloc capacity;
    lines = None;
  }

(* Pre-sizing from the input length keeps steady-state scanning free of
   even the amortized growth copies: one token per ~8 bytes is an
   overestimate for every bundled language. *)
let capacity_for input = (String.length input / 8) + 16

let create_for_input input = create ~capacity:(capacity_for input) input

let length b = b.len
let input b = b.input

(* Forget the tokens but keep the arrays (and the newline table — it
   depends only on the input): re-scanning the same input allocates
   nothing. *)
let clear b = b.len <- 0

(* Rebind the arena to a new input: same storage, new request.  The
   arrays are grown up front (if the new input needs more) so the
   subsequent scan proceeds without growth copies; the newline table is
   dropped (it belonged to the old input). *)
let reset b input =
  b.input <- input;
  b.len <- 0;
  b.lines <- None;
  let want = capacity_for input in
  if Bigarray.Array1.dim b.kinds < want then begin
    b.kinds <- alloc want;
    b.starts <- alloc want;
    b.ends <- alloc want
  end

let grow b =
  let cap = Bigarray.Array1.dim b.kinds in
  let extend (a : int_array) =
    let bigger = alloc (2 * cap) in
    Bigarray.Array1.blit a (Bigarray.Array1.sub bigger 0 cap);
    bigger
  in
  b.kinds <- extend b.kinds;
  b.starts <- extend b.starts;
  b.ends <- extend b.ends

let add b ~kind ~start ~stop =
  if b.len = Bigarray.Array1.dim b.kinds then grow b;
  let i = b.len in
  Bigarray.Array1.unsafe_set b.kinds i kind;
  Bigarray.Array1.unsafe_set b.starts i start;
  Bigarray.Array1.unsafe_set b.ends i stop;
  b.len <- i + 1

let kind b i = Bigarray.Array1.get b.kinds i
let start_ofs b i = Bigarray.Array1.get b.starts i
let end_ofs b i = Bigarray.Array1.get b.ends i

(* The backing array, possibly longer than [length]; pair it with
   [length] (as {!Word.of_buf} does) rather than iterating it blindly. *)
let kinds_unsafe b = b.kinds

let lexeme b i = String.sub b.input (start_ofs b i) (end_ofs b i - start_ofs b i)

let lines b =
  match b.lines with
  | Some l -> l
  | None ->
    let l = Lines.build b.input in
    b.lines <- Some l;
    l

let pos b i = Lines.pos (lines b) (start_ofs b i)

let token b i =
  let line, col = pos b i in
  Token.make ~line ~col (kind b i) (lexeme b i)

let to_tokens b = List.init b.len (token b)
