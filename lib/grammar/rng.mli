(** Seeded-RNG construction shared by every deterministic generator.

    A given seed always yields the same [Random.State.t] stream, so corpus
    files, sampled sentences, and coverage witnesses are reproducible run
    to run; the seed is mixed (splitmix64) so consecutive seeds give
    uncorrelated streams. *)

val of_seed : int -> Random.State.t

(** [split seed i] is an independent stream for subtask [i] of run [seed]
    (deterministic in both arguments). *)
val split : int -> int -> Random.State.t
