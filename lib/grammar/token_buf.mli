(** Struct-of-arrays token buffer — the zero-copy token stream.

    Three parallel off-heap arrays (terminal ids, start offsets, end
    offsets into the shared input string) replace [Token.t list] on the
    lex→parse hot path.  The laziness contract: scanning records offsets
    only; lexemes are sliced and positions recovered (via the {!Lines}
    table, built on first query) per token, on demand — so tokens that
    are only ever stepped over by prediction cost three int writes and
    nothing more.

    The arrays are native-int {!Bigarray.Array1}s: the storage lives
    outside the OCaml heap, so a pre-sized buffer reused across requests
    (see {!reset}) adds nothing to minor-GC pressure or heap scan work. *)

type int_array = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Off-heap int array; [Array1.unsafe_get] returns an unboxed [int]. *)

type t

(** [create ?capacity input] is an empty buffer over [input]. *)
val create : ?capacity:int -> string -> t

(** Like {!create}, sized from [String.length input] so that scanning a
    typical corpus never grows the arrays. *)
val create_for_input : string -> t

val length : t -> int
val input : t -> string

(** Drop all tokens, keeping the arrays (and newline table): re-scanning
    the same input into a cleared buffer allocates nothing. *)
val clear : t -> unit

(** [reset b input] rebinds the buffer to a new input, keeping (and if
    necessary growing, up front) the arrays: one arena serves many
    requests, so steady-state lexing allocates nothing per request.  The
    newline table is dropped with the old input. *)
val reset : t -> string -> unit

(** Append one token.  [start]/[stop] delimit the lexeme in the input;
    a synthesized token (e.g. the indenter's INDENT) uses [start = stop],
    making its lexeme empty and its position that of [start]. *)
val add : t -> kind:int -> start:int -> stop:int -> unit

val kind : t -> int -> Symbols.terminal
val start_ofs : t -> int -> int
val end_ofs : t -> int -> int

(** The kinds backing array.  May be longer than [length]; only indices
    below [length] are meaningful. *)
val kinds_unsafe : t -> int_array

(** Lazy lexeme: a fresh slice of the input. *)
val lexeme : t -> int -> string

(** The buffer's newline table (built on first use). *)
val lines : t -> Lines.t

(** Lazy position of token [i]: 1-based line, 0-based column. *)
val pos : t -> int -> int * int

(** Materialize token [i] as a boxed {!Token.t} (lexeme + position). *)
val token : t -> int -> Token.t

(** Materialize the whole buffer (differential tests, dumps). *)
val to_tokens : t -> Token.t list
