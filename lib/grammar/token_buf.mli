(** Struct-of-arrays token buffer — the zero-copy token stream.

    Three parallel int arrays (terminal ids, start offsets, end offsets
    into the shared input string) replace [Token.t list] on the lex→parse
    hot path.  The laziness contract: scanning records offsets only;
    lexemes are sliced and positions recovered (via the {!Lines} table,
    built on first query) per token, on demand — so tokens that are only
    ever stepped over by prediction cost three ints and nothing more. *)

type t

(** [create ?capacity input] is an empty buffer over [input]. *)
val create : ?capacity:int -> string -> t

(** Like {!create}, sized from [String.length input] so that scanning a
    typical corpus never grows the arrays. *)
val create_for_input : string -> t

val length : t -> int
val input : t -> string

(** Drop all tokens, keeping the arrays (and newline table): re-scanning
    the same input into a cleared buffer allocates nothing. *)
val clear : t -> unit

(** Append one token.  [start]/[stop] delimit the lexeme in the input;
    a synthesized token (e.g. the indenter's INDENT) uses [start = stop],
    making its lexeme empty and its position that of [start]. *)
val add : t -> kind:int -> start:int -> stop:int -> unit

val kind : t -> int -> Symbols.terminal
val start_ofs : t -> int -> int
val end_ofs : t -> int -> int

(** The kinds backing array.  May be longer than [length]; only indices
    below [length] are meaningful. *)
val kinds_unsafe : t -> int array

(** Lazy lexeme: a fresh slice of the input. *)
val lexeme : t -> int -> string

(** The buffer's newline table (built on first use). *)
val lines : t -> Lines.t

(** Lazy position of token [i]: 1-based line, 0-based column. *)
val pos : t -> int -> int * int

(** Materialize token [i] as a boxed {!Token.t} (lexeme + position). *)
val token : t -> int -> Token.t

(** Materialize the whole buffer (differential tests, dumps). *)
val to_tokens : t -> Token.t list
