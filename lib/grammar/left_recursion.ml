open Symbols

(* Left edges: x -> y when x -> alpha y beta with alpha nullable. *)
let left_edges g a =
  let n = Grammar.num_nonterminals g in
  let edges = Array.make n Int_set.empty in
  Array.iter
    (fun p ->
      let rec go = function
        | [] -> ()
        | T _ :: _ -> ()
        | NT y :: rest ->
          edges.(p.Grammar.lhs) <- Int_set.add y edges.(p.Grammar.lhs);
          if Analysis.nullable a y then go rest
      in
      go p.rhs)
    (Grammar.prods g);
  edges

type edge = {
  dst : nonterminal;
  prod : int;  (** production index the edge comes from *)
  hidden : bool;  (** a nonempty nullable prefix precedes [dst] *)
}

(* Labelled variant of [left_edges]: remembers which production and whether
   the reached nonterminal sits behind a nullable prefix (hidden left
   recursion, the case one-token-lookahead transformations miss). *)
let left_edges_labeled g a =
  let n = Grammar.num_nonterminals g in
  let edges = Array.make n [] in
  Array.iter
    (fun p ->
      let rec go pos = function
        | [] -> ()
        | T _ :: _ -> ()
        | NT y :: rest ->
          let e = { dst = y; prod = p.Grammar.ix; hidden = pos > 0 } in
          edges.(p.Grammar.lhs) <- e :: edges.(p.Grammar.lhs);
          if Analysis.nullable a y then go (pos + 1) rest
      in
      go 0 p.rhs)
    (Grammar.prods g);
  Array.map List.rev edges

let left_recursive_nts g a =
  let n = Grammar.num_nonterminals g in
  let edges = left_edges g a in
  (* x is left-recursive iff x is reachable from x via >= 1 left edge. *)
  let reaches_self x =
    let seen = Array.make n false in
    let rec dfs y =
      y = x
      || (not seen.(y))
         && begin
              seen.(y) <- true;
              Int_set.exists dfs edges.(y)
            end
    in
    Int_set.exists dfs edges.(x)
  in
  let acc = ref Int_set.empty in
  for x = 0 to n - 1 do
    if reaches_self x then acc := Int_set.add x !acc
  done;
  !acc

let is_left_recursive g a x = Int_set.mem x (left_recursive_nts g a)

type kind =
  | Direct
  | Indirect
  | Hidden

let kind_to_string = function
  | Direct -> "direct"
  | Indirect -> "indirect"
  | Hidden -> "hidden"

(* Shortest left-edge cycle through [x], by BFS with parent pointers.  The
   result lists the nonterminals visited, starting and ending at [x], and
   classifies the cycle: Hidden if any edge on it crosses a nullable
   prefix, Direct for a self-loop, Indirect otherwise. *)
let witness g a x =
  let n = Grammar.num_nonterminals g in
  let edges = left_edges_labeled g a in
  let parent = Array.make n None in
  let visited = Array.make n false in
  let q = Queue.create () in
  let closing = ref None in
  List.iter
    (fun e ->
      if !closing = None then
        if e.dst = x then closing := Some (x, e)
        else if not visited.(e.dst) then begin
          visited.(e.dst) <- true;
          parent.(e.dst) <- Some (x, e);
          Queue.add e.dst q
        end)
    edges.(x);
  while !closing = None && not (Queue.is_empty q) do
    let y = Queue.pop q in
    List.iter
      (fun e ->
        if !closing = None then
          if e.dst = x then closing := Some (y, e)
          else if not visited.(e.dst) then begin
            visited.(e.dst) <- true;
            parent.(e.dst) <- Some (y, e);
            Queue.add e.dst q
          end)
      edges.(y)
  done;
  match !closing with
  | None -> None
  | Some (last, closing_edge) ->
    (* Walk parents back from [last] to [x]. *)
    let rec unwind y acc_nts acc_edges =
      if y = x then (acc_nts, acc_edges)
      else
        match parent.(y) with
        | Some (py, e) -> unwind py (y :: acc_nts) (e :: acc_edges)
        | None -> assert false
    in
    let mids, edges_on_path = unwind last [] [ closing_edge ] in
    let cycle = (x :: mids) @ [ x ] in
    let kind =
      if List.exists (fun e -> e.hidden) edges_on_path then Hidden
      else if List.length edges_on_path = 1 then Direct
      else Indirect
    in
    Some (kind, cycle)

let check g =
  let a = Analysis.make g in
  let bad = left_recursive_nts g a in
  if Int_set.is_empty bad then Ok () else Error (Int_set.elements bad)
