(* The parser core's view of its input: a dense off-heap array of
   terminal ids plus a lazy token materializer.  Prediction and the
   machine's consume step read [kinds.(i)] directly; a boxed [Token.t] is
   built only for parse-tree leaves and error messages.

   Both frontends lower to this one representation: [of_tokens] wraps
   the legacy list pipeline (tokens already exist, so [leaf] just
   indexes them), [of_buf] wraps the zero-copy buffer pipeline ([leaf]
   slices the lexeme and binary-searches the newline table on demand).
   [of_buf] shares the buffer's bigarray storage — no copy, and the
   cursor adds nothing to GC scan work (DESIGN.md §13). *)

type t = {
  kinds : Token_buf.int_array;  (** terminal id per token; [0 .. len-1] *)
  len : int;
  leaf : int -> Token.t;  (** materialize token [i] *)
}

let of_tokens toks =
  let arr = Array.of_list toks in
  let n = Array.length arr in
  let kinds =
    Bigarray.Array1.create Bigarray.int Bigarray.c_layout (max 1 n)
  in
  Array.iteri (fun i tok -> Bigarray.Array1.set kinds i (Token.term tok)) arr;
  { kinds; len = n; leaf = Array.get arr }

let of_buf buf =
  {
    kinds = Token_buf.kinds_unsafe buf;
    len = Token_buf.length buf;
    leaf = Token_buf.token buf;
  }

let length w = w.len
let kind w i = Bigarray.Array1.get w.kinds i
let token w i = w.leaf i

let to_tokens w = List.init w.len w.leaf

(* Remaining input from position [i], as a list (trace dumps, the LL
   fallback's list-free cousin keeps indices; this is for display). *)
let drop w i = List.init (max 0 (w.len - i)) (fun k -> w.leaf (i + k))
