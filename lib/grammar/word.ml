(* The parser core's view of its input: a dense array of terminal ids
   plus a lazy token materializer.  Prediction and the machine's consume
   step read [kinds.(i)] directly; a boxed [Token.t] is built only for
   parse-tree leaves and error messages.

   Both frontends lower to this one representation: [of_tokens] wraps
   the legacy list pipeline (tokens already exist, so [leaf] just
   indexes them), [of_buf] wraps the zero-copy buffer pipeline ([leaf]
   slices the lexeme and binary-searches the newline table on demand). *)

type t = {
  kinds : int array;  (** terminal id per token; indices [0 .. len-1] *)
  len : int;
  leaf : int -> Token.t;  (** materialize token [i] *)
}

let of_tokens toks =
  let arr = Array.of_list toks in
  {
    kinds = Array.map Token.term arr;
    len = Array.length arr;
    leaf = Array.get arr;
  }

let of_buf buf =
  {
    kinds = Token_buf.kinds_unsafe buf;
    len = Token_buf.length buf;
    leaf = Token_buf.token buf;
  }

let length w = w.len
let kind w i = w.kinds.(i)
let token w i = w.leaf i

let to_tokens w = List.init w.len w.leaf

(* Remaining input from position [i], as a list (trace dumps, the LL
   fallback's list-free cousin keeps indices; this is for display). *)
let drop w i = List.init (max 0 (w.len - i)) (fun k -> w.leaf (i + k))
