open Symbols

type production = { lhs : nonterminal; rhs : symbol list; ix : int }

type t = {
  start : nonterminal;
  prods : production array;
  by_lhs : int list array;
  terms : Pool.t;
  nts : Pool.t;
  max_rhs_len : int;
}

type elt = Tm of string | Ntm of string

let t s = Tm s
let n s = Ntm s

let define ?(allow_undefined = false) ?(extra_terminals = []) ~start rules =
  if rules = [] then invalid_arg "Grammar.define: no rules";
  let terms = Pool.create () and nts = Pool.create () in
  (* Intern all nonterminals first, in rule order, so identifiers are stable
     and independent of right-hand-side contents. *)
  List.iter
    (fun (name, _) ->
      match Pool.find nts name with
      | Some _ -> invalid_arg ("Grammar.define: duplicate rule for " ^ name)
      | None -> ignore (Pool.intern nts name))
    rules;
  let start =
    match Pool.find nts start with
    | Some x -> x
    | None -> invalid_arg ("Grammar.define: undefined start symbol " ^ start)
  in
  let sym_of_elt = function
    | Tm a -> T (Pool.intern terms a)
    | Ntm x -> (
      match Pool.find nts x with
      | Some id -> NT id
      | None ->
        if allow_undefined then NT (Pool.intern nts x)
        else invalid_arg ("Grammar.define: undefined nonterminal " ^ x))
  in
  let prods =
    List.concat_map
      (fun (name, alts) ->
        let lhs =
          match Pool.find nts name with Some x -> x | None -> assert false
        in
        List.map (fun alt -> (lhs, List.map sym_of_elt alt)) alts)
      rules
  in
  List.iter (fun a -> ignore (Pool.intern terms a)) extra_terminals;
  let prods =
    Array.of_list (List.mapi (fun ix (lhs, rhs) -> { lhs; rhs; ix }) prods)
  in
  let by_lhs = Array.make (Pool.size nts) [] in
  Array.iter (fun p -> by_lhs.(p.lhs) <- p.ix :: by_lhs.(p.lhs)) prods;
  Array.iteri (fun i l -> by_lhs.(i) <- List.rev l) by_lhs;
  let max_rhs_len =
    Array.fold_left (fun acc p -> max acc (List.length p.rhs)) 0 prods
  in
  { start; prods; by_lhs; terms; nts; max_rhs_len }

let start g = g.start
let prods g = g.prods
let prod g i = g.prods.(i)

let prods_of g x =
  if x < 0 || x >= Array.length g.by_lhs then [] else g.by_lhs.(x)

let rhss_of g x = List.map (fun i -> g.prods.(i).rhs) (prods_of g x)

let num_terminals g = Pool.size g.terms
let num_nonterminals g = Pool.size g.nts
let num_productions g = Array.length g.prods

let terminal_name g a = Pool.name g.terms a
let nonterminal_name g x = Pool.name g.nts x

let symbol_name g = function
  | T a -> terminal_name g a
  | NT x -> nonterminal_name g x

let terminal_of_name g s = Pool.find g.terms s
let nonterminal_of_name g s = Pool.find g.nts s

let find_production g x rhs =
  let rec go = function
    | [] -> None
    | i :: rest ->
      let p = g.prods.(i) in
      if compare_symbols p.rhs rhs = 0 then Some p else go rest
  in
  go (prods_of g x)

let max_rhs_len g = g.max_rhs_len

let token ?line ?col g name lexeme =
  match terminal_of_name g name with
  | Some a -> Token.make ?line ?col a lexeme
  | None -> invalid_arg ("Grammar.token: unknown terminal " ^ name)

let tokens g names = List.map (fun name -> token g name name) names

let fingerprint g =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (nonterminal_name g g.start);
  Buffer.add_char buf '\n';
  for a = 0 to num_terminals g - 1 do
    Buffer.add_string buf (terminal_name g a);
    Buffer.add_char buf '\x00'
  done;
  Buffer.add_char buf '\n';
  for x = 0 to num_nonterminals g - 1 do
    Buffer.add_string buf (nonterminal_name g x);
    Buffer.add_char buf '\x00'
  done;
  Buffer.add_char buf '\n';
  Array.iter
    (fun p ->
      Buffer.add_string buf (string_of_int p.lhs);
      Buffer.add_string buf ":";
      List.iter
        (fun s ->
          (match s with
          | T a ->
            Buffer.add_char buf 't';
            Buffer.add_string buf (string_of_int a)
          | NT x ->
            Buffer.add_char buf 'n';
            Buffer.add_string buf (string_of_int x));
          Buffer.add_char buf ' ')
        p.rhs;
      Buffer.add_char buf '\n')
    g.prods;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let pp_symbol g ppf s =
  match s with
  | T a -> Fmt.pf ppf "'%s'" (terminal_name g a)
  | NT x -> Fmt.string ppf (nonterminal_name g x)

let pp_symbols g ppf syms =
  match syms with
  | [] -> Fmt.string ppf "\xce\xb5" (* epsilon *)
  | _ -> Fmt.(hbox (list ~sep:sp (pp_symbol g))) ppf syms

let pp_production g ppf p =
  Fmt.pf ppf "@[<h>%s -> %a@]" (nonterminal_name g p.lhs) (pp_symbols g) p.rhs

let pp ppf g =
  Fmt.pf ppf "@[<v>start: %s@,%a@]" (nonterminal_name g g.start)
    Fmt.(array ~sep:cut (pp_production g))
    g.prods
