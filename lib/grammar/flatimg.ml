(* Shared codec for the flat int32-LE image formats: the `costar tables`
   export (Costar_predict_analysis.Tables, format v1) and the v3
   prediction-cache image (Costar_core.Cache).  Both encode a payload of
   32-bit words, little-endian on disk, guarded by the same FNV-1a
   checksum; this module owns the word-level byte discipline so the two
   formats cannot drift apart.

   The int32 Bigarray helpers back the mmap-shared cache image: a file of
   whole LE words maps 1:1 onto an [int32 Bigarray.Array1] on a
   little-endian host, and [get]/[get_u] read plain unboxed [int]s out of
   it (the bigarray load and [Int32.to_int] compose without materializing
   an [Int32.t] box in native code — the warm prediction path depends on
   that). *)

let bits = 32
let words_for n = (n + bits - 1) / bits

(* Reversed-word-list builder: the only producers build once, front to
   back, so list-cons accumulation never goes quadratic. *)
let push buf v = buf := v land 0xffffffff :: !buf

(* --- FNV-1a -------------------------------------------------------------- *)

(* FNV-1a over the little-endian bytes of the words, 32-bit folded.  The
   byte order makes the checksum a function of the on-disk bytes, not of
   the in-memory representation. *)
let checksum_fold ~len get =
  let h = ref 0x811c9dc5 in
  let mix b = h := (!h lxor b) * 0x01000193 land 0xffffffff in
  for i = 0 to len - 1 do
    let w = get i in
    mix (w land 0xff);
    mix ((w lsr 8) land 0xff);
    mix ((w lsr 16) land 0xff);
    mix ((w lsr 24) land 0xff)
  done;
  !h

let checksum words =
  checksum_fold ~len:(Array.length words) (Array.unsafe_get words)

(* --- LE words <-> bytes -------------------------------------------------- *)

let add_le_word buf w =
  Buffer.add_char buf (Char.chr (w land 0xff));
  Buffer.add_char buf (Char.chr ((w lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((w lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((w lsr 24) land 0xff))

let add_le_words buf words = Array.iter (add_le_word buf) words

(* One LE word from byte offset [pos]; the caller has checked bounds. *)
let le_word s pos =
  let b k = Char.code (String.unsafe_get s (pos + k)) in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let words_of_le_string s ~pos ~count =
  Array.init count (fun i -> le_word s (pos + (i * 4)))

(* --- int32 Bigarray views ------------------------------------------------ *)

type i32 = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

let dim (a : i32) = Bigarray.Array1.dim a

(* Sign-extending word reads.  [get_u] is the warm-path variant: no bounds
   check, no box — safe only on indices a prior [validate]-style walk has
   already admitted. *)
let get (a : i32) i = Int32.to_int (Bigarray.Array1.get a i)

let[@inline] get_u (a : i32) i =
  Int32.to_int (Bigarray.Array1.unsafe_get a i)

let set (a : i32) i v = Bigarray.Array1.set a i (Int32.of_int v)

let of_words words : i32 =
  let n = Array.length words in
  let a = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout n in
  Array.iteri (fun i w -> set a i w) words;
  a

let checksum_i32 (a : i32) ~pos ~len =
  checksum_fold ~len (fun i -> get_u a (pos + i) land 0xffffffff)
