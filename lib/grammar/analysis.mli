(** Static grammar analyses.

    These are the classical fixpoint analyses (nullable / FIRST / FOLLOW /
    reachable / productive) plus two CoStar-specific artifacts:

    - the {e callers} map, listing every grammar occurrence of a nonterminal
      together with the right-hand-side suffix that follows it — the static
      input to SLL prediction's "stable return" simulation (paper, §3.5);
    - the {e endable} set: nonterminals whose yield may legally end the input
      word, i.e. that occur in a position from which only nullable symbols
      remain on some derivation path from the start symbol. *)

open Symbols

type t

val make : Grammar.t -> t

val grammar : t -> Grammar.t

(** {1 Classical analyses} *)

val nullable : t -> nonterminal -> bool

(** A sequence of symbols is nullable iff every symbol in it is a nullable
    nonterminal. *)
val nullable_seq : t -> symbol list -> bool

val first : t -> nonterminal -> Int_set.t

(** FIRST of a sentential form. *)
val first_seq : t -> symbol list -> Int_set.t

(** FOLLOW set of a nonterminal (terminals only; see {!follow_end}). *)
val follow : t -> nonterminal -> Int_set.t

(** Whether end-of-input may follow the nonterminal. *)
val follow_end : t -> nonterminal -> bool

val reachable : t -> nonterminal -> bool
val productive : t -> nonterminal -> bool

(** {1 CoStar-specific artifacts} *)

(** [callers a x] lists every occurrence of [x] on a right-hand side, as
    pairs [(y, beta)] where the grammar contains [y -> alpha x beta].
    Duplicate [(y, beta)] pairs are collapsed. *)
val callers : t -> nonterminal -> (nonterminal * symbol list) list

(** {!callers} with each continuation pre-interned in {!frames}: the form
    the SLL closure consumes on its hot path. *)
val callers_framed : t -> nonterminal -> (nonterminal * Frames.frame) list

(** The per-grammar frame/spine interner (built by {!make}; see
    {!Frames}). *)
val frames : t -> Frames.t

(** [endable a x] iff some derivation from the start symbol can end with the
    yield of [x] (the start symbol is endable; if [y] is endable and
    [y -> alpha x beta] with [beta] nullable, then [x] is endable). *)
val endable : t -> nonterminal -> bool

(** [min_yield a x] is a shortest terminal word derivable from [x], or [None]
    if [x] is unproductive.  Used by the prediction analyzer to complete
    conflict-witness prefixes into full candidate sentences. *)
val min_yield : t -> nonterminal -> terminal list option

(** Shortest terminal word derivable from a sentential form ([None] if any
    symbol in it is unproductive). *)
val min_yield_seq : t -> symbol list -> terminal list option
