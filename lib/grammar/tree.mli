(** Parse trees and forests (paper, Fig. 1).

    [Leaf t] holds a consumed token; [Node (x, kids)] holds a nonterminal and
    the subtrees for the symbols of one of its right-hand sides.

    [Error (at, kids)] only ever appears in trees produced by the
    error-recovery engine ({!Costar_recover.Recover}): an explicit marker
    for material the recovering parser could not derive normally.
    [at = Some s] records the symbol being repaired — an abandoned
    nonterminal with its partial children, or a terminal the parser
    inserted (no children) — while [at = None] wraps skipped input tokens
    as [Leaf] children.  The plain engines never build [Error] nodes, so
    on well-formed input recovery output is constructor-for-constructor
    identical to theirs (the differential obligation pinned by
    test/test_recover.ml). *)

open Symbols

type t =
  | Leaf of Token.t
  | Node of nonterminal * t list
  | Error of symbol option * t list

type forest = t list

(** Root symbol of a tree: the token's terminal for a leaf, the nonterminal
    for a node, the repaired symbol for an [Error] marker that has one.
    @raise Invalid_argument on [Error (None, _)] — skipped-input markers
    stand for no grammar symbol. *)
val root : t -> symbol

(** Whether the tree contains any [Error] node (i.e. is a partial tree
    emitted by the recovery engine). *)
val has_errors : t -> bool

(** Frontier of the tree, left to right: the consumed tokens.  [Error]
    markers contribute the tokens they wrap (skipped input), so the yield
    of a recovered partial tree still lists the input the parser went
    over; inserted-terminal markers contribute nothing. *)
val yield : t -> Token.t list

val yield_forest : forest -> Token.t list

(** Number of nodes and leaves. *)
val size : t -> int

val depth : t -> int

(** Number of tokens in the frontier. *)
val width : t -> int

(** Structural equality: nodes by nonterminal, leaves by terminal and
    lexeme. *)
val equal : t -> t -> bool

val compare : t -> t -> int

(** Collect every nonterminal labelling a node. *)
val nonterminals : t -> Int_set.t

(** [pp g] renders a tree with symbol names resolved against [g], in
    s-expression style: [(S (A 'a' 'b') 'd')]. *)
val pp : Grammar.t -> Format.formatter -> t -> unit

val to_string : Grammar.t -> t -> string

(** GraphViz DOT rendering of a parse tree (one node per tree node). *)
val to_dot : Grammar.t -> t -> string
