open Symbols

type t =
  | Leaf of Token.t
  | Node of nonterminal * t list
  | Error of symbol option * t list

type forest = t list

let root = function
  | Leaf tok -> T tok.Token.term
  | Node (x, _) -> NT x
  | Error (Some s, _) -> s
  | Error (None, _) -> invalid_arg "Tree.root: skipped-input error node"

let rec has_errors = function
  | Leaf _ -> false
  | Node (_, kids) -> List.exists has_errors kids
  | Error _ -> true

let yield v =
  (* Accumulator-based to stay tail-ish on deep trees. *)
  let rec go acc = function
    | Leaf tok -> tok :: acc
    | Node (_, kids) | Error (_, kids) -> List.fold_left go acc kids
  in
  List.rev (go [] v)

let yield_forest f = List.concat_map yield f

let rec size = function
  | Leaf _ -> 1
  | Node (_, kids) | Error (_, kids) ->
    1 + List.fold_left (fun acc k -> acc + size k) 0 kids

let rec depth = function
  | Leaf _ -> 1
  | Node (_, kids) | Error (_, kids) ->
    1 + List.fold_left (fun acc k -> max acc (depth k)) 0 kids

let rec width = function
  | Leaf _ -> 1
  | Node (_, kids) | Error (_, kids) ->
    List.fold_left (fun acc k -> acc + width k) 0 kids

(* Constructor order for [compare]: Leaf < Node < Error. *)
let ctor_rank = function Leaf _ -> 0 | Node _ -> 1 | Error _ -> 2

let rec compare v1 v2 =
  match v1, v2 with
  | Leaf t1, Leaf t2 ->
    let c = Int.compare t1.Token.term t2.Token.term in
    if c <> 0 then c else String.compare t1.Token.lexeme t2.Token.lexeme
  | Node (x1, k1), Node (x2, k2) ->
    let c = Int.compare x1 x2 in
    if c <> 0 then c else compare_forest k1 k2
  | Error (s1, k1), Error (s2, k2) ->
    let c = Option.compare compare_symbol s1 s2 in
    if c <> 0 then c else compare_forest k1 k2
  | (Leaf _ | Node _ | Error _), _ -> Int.compare (ctor_rank v1) (ctor_rank v2)

and compare_forest f1 f2 =
  match f1, f2 with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | v1 :: r1, v2 :: r2 ->
    let c = compare v1 v2 in
    if c <> 0 then c else compare_forest r1 r2

let equal v1 v2 = compare v1 v2 = 0

let nonterminals v =
  let rec go acc = function
    | Leaf _ -> acc
    | Node (x, kids) -> List.fold_left go (Int_set.add x acc) kids
    | Error (at, kids) ->
      let acc =
        match at with Some (NT x) -> Int_set.add x acc | _ -> acc
      in
      List.fold_left go acc kids
  in
  go Int_set.empty v

let rec pp g ppf = function
  | Leaf tok -> Fmt.pf ppf "'%s'" tok.Token.lexeme
  | Node (x, kids) ->
    Fmt.pf ppf "@[<hov 1>(%s%a)@]"
      (Grammar.nonterminal_name g x)
      Fmt.(list ~sep:nop (fun ppf k -> Fmt.pf ppf "@ %a" (pp g) k))
      kids
  | Error (at, kids) ->
    let label =
      match at with
      | None -> "ERROR"
      | Some s -> "ERROR:" ^ Grammar.symbol_name g s
    in
    Fmt.pf ppf "@[<hov 1>(%s%a)@]" label
      Fmt.(list ~sep:nop (fun ppf k -> Fmt.pf ppf "@ %a" (pp g) k))
      kids

let to_string g v = Fmt.str "%a" (pp g) v

let to_dot g v =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph parse_tree {\n  node [shape=box];\n";
  let ctr = ref 0 in
  let fresh () =
    incr ctr;
    !ctr
  in
  let escape s = String.concat "\\\"" (String.split_on_char '"' s) in
  let rec go v =
    let id = fresh () in
    (match v with
    | Leaf tok ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\", shape=ellipse];\n" id
           (escape tok.Token.lexeme))
    | Node (x, kids) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"];\n" id
           (escape (Grammar.nonterminal_name g x)));
      List.iter
        (fun k ->
          let kid = go k in
          Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" id kid))
        kids
    | Error (at, kids) ->
      let label =
        match at with
        | None -> "ERROR"
        | Some s -> "ERROR: " ^ Grammar.symbol_name g s
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  n%d [label=\"%s\", shape=diamond, color=red];\n" id
           (escape label));
      List.iter
        (fun k ->
          let kid = go k in
          Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" id kid))
        kids);
    id
  in
  ignore (go v);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
