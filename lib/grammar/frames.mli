(** Hash-consed prediction frames and frame stacks.

    Every frame an SLL/LL closure can ever build is a {e suffix of some
    grammar right-hand side} (closure pushes whole RHSs, consumes/expands
    them suffix by suffix, and stable-return forks push caller
    continuations, which are RHS suffixes by construction) — plus the odd
    parser continuation such as [\[NT start\]].  This module interns all RHS
    suffixes at analysis-build time into a side table, so at prediction time
    a frame is an [int], a frame stack is a hash-consed int-spine (the GSS
    idea from [lib/gss], applied to the representation itself), and
    configuration compare/hash are O(1).

    The tables are per-grammar (owned by {!Analysis.t}) and grow-only;
    [frame_of_syms] falls back to dynamic interning for the rare
    non-static frame.  Ids are deterministic for a given grammar, and
    {!fingerprint} digests the static table so persisted caches are bound
    to the exact id assignment they were built with. *)

open Symbols

type t

(** A frame: dense id of an interned symbol-list suffix. *)
type frame = int

(** A stack of frames: dense id of a hash-consed (frame, tail) spine. *)
type spine = int

(** Decoded first symbol of a frame, with the frame id of the rest. *)
type head =
  | Empty
  | Term of terminal * frame
  | Nonterm of nonterminal * frame

(** Build the interner for a grammar: interns the empty frame (id
    {!empty_frame}) and every suffix of every right-hand side. *)
val make : Grammar.t -> t

(** The id of the empty frame [\[\]] (always [0]). *)
val empty_frame : frame

(** Intern an arbitrary symbol list (a table hit for RHS suffixes). *)
val frame_of_syms : t -> symbol list -> frame

val syms_of_frame : t -> frame -> symbol list
val head : t -> frame -> head

(** Frame of the full right-hand side of production [ix]. *)
val rhs_frame : t -> int -> frame

(** {1 Spines} *)

(** The empty spine (always [0]). *)
val nil : spine

val cons : t -> frame -> spine -> spine
val spine_is_nil : spine -> bool
val spine_frame : t -> spine -> frame
val spine_tail : t -> spine -> spine

(** Number of frames in the spine, O(1). *)
val spine_length : t -> spine -> int

val spine_of_frames : t -> symbol list list -> spine
val frames_of_spine : t -> spine -> symbol list list

(** {1 Statistics and identity} *)

val num_frames : t -> int

(** Frames interned by {!make} (before any dynamic additions). *)
val num_static_frames : t -> int

val num_spines : t -> int

(** Hex digest of the static suffix table (frame contents in id order plus
    the production-to-frame map).  Persisted prediction caches embed this so
    a cache built against a different id assignment is rejected. *)
val fingerprint : t -> string
