(** Augmented transition networks (Woods 1970).

    Original ALL(star) operates on an ATN rather than on a CFG directly; the
    paper (§3.5) notes the difference is minor because "an ATN is merely a
    graph representation of a CFG".  This module makes that statement
    concrete: it builds the ATN graph of a grammar — one submachine per
    nonterminal, an epsilon fan-out to each alternative's chain of
    symbol-labelled edges, and a shared accept state — and can render it to
    GraphViz for grammar debugging.  The test suite checks that reading the
    chains back reconstructs the grammar exactly. *)

open Symbols

type state = int

type edge =
  | On_terminal of terminal * state
  | On_nonterminal of nonterminal * state
  | Epsilon of state

type t

val of_grammar : Grammar.t -> t

val grammar : t -> Grammar.t
val num_states : t -> int

(** Entry and accept states of a nonterminal's submachine. *)
val entry : t -> nonterminal -> state
val accept : t -> nonterminal -> state

(** Outgoing edges of a state. *)
val edges : t -> state -> edge list

(** First state of the chain encoding a production (by production index);
    following the unique symbol-labelled path from it to the accept state
    spells the production's right-hand side. *)
val production_entry : t -> int -> state

(** Read a production's right-hand side back off the graph. *)
val spell_production : t -> int -> symbol list

(** GraphViz rendering of the ATN.  [decision_label] may attach an extra line
    of text to a nonterminal's entry box — the prediction analyzer uses it to
    annotate decision states with their lookahead verdicts ([costar atn
    --annotate]). *)
val to_dot : ?decision_label:(nonterminal -> string option) -> t -> string
