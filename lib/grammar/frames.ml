open Symbols

type frame = int
type spine = int

type head =
  | Empty
  | Term of terminal * frame
  | Nonterm of nonterminal * frame

(* Full-depth hashing for symbol-list keys: the default [Hashtbl.hash]
   inspects only ~10 nodes, which would collide long right-hand-side
   suffixes.  Keys are short (bounded by max_rhs_len), so hashing them
   completely is cheap. *)
module Syms_tbl = Hashtbl.Make (struct
  type t = symbol list

  let equal a b = compare_symbols a b = 0
  let hash l = Hashtbl.hash_param 256 256 l
end)

type t = {
  (* Frame table: symbol-list suffix <-> dense id, with the decoded head
     precomputed so closure never re-inspects the symbol list. *)
  f_ids : frame Syms_tbl.t;
  mutable f_syms : symbol list array;
  mutable f_head : head array;
  mutable f_count : int;
  mutable static_frames : int;  (* frames interned at [make] time *)
  (* Spine table: hash-consed (frame, tail) pairs.  [nil] is spine 0; keys
     pack both ids into one word, so lookup allocates nothing. *)
  s_ids : (int, spine) Hashtbl.t;
  mutable s_frame : frame array;
  mutable s_tail : spine array;
  mutable s_len : int array;
  mutable s_count : int;
  (* production ix -> frame of its full right-hand side *)
  rhs_frames : frame array;
  fp : string;
  (* Serializes dynamic interning ([cons], [frame_of_syms]) so domains
     parsing in parallel can extend the shared tables.  Readers stay
     lock-free: a domain only ever dereferences ids it interned itself or
     ids published before it was spawned, both of which happen-before the
     read, and [grow] replaces arrays without disturbing the prefix a stale
     reader might still hold.  The lock sits on the prediction slow path
     (cache-miss closure work) only — the warm path never interns. *)
  lock : Mutex.t;
}

let empty_frame = 0
let nil = 0

let grow arr count fill =
  if count < Array.length arr then arr
  else begin
    let bigger = Array.make (2 * max 1 (Array.length arr)) fill in
    Array.blit arr 0 bigger 0 (Array.length arr);
    bigger
  end

let head_of t = function
  | [] -> Empty
  | T a :: rest -> Term (a, Syms_tbl.find t.f_ids rest)
  | NT x :: rest -> Nonterm (x, Syms_tbl.find t.f_ids rest)

(* Intern a suffix whose own tail suffix is already interned (callers go
   shortest-first), or any symbol list by recursing on the tail.  Callers
   must hold [t.lock] (or be single-threaded construction code). *)
let rec frame_of_syms_locked t syms =
  match Syms_tbl.find_opt t.f_ids syms with
  | Some f -> f
  | None ->
    (match syms with
    | [] -> ()
    | _ :: rest -> ignore (frame_of_syms_locked t rest));
    let f = t.f_count in
    t.f_syms <- grow t.f_syms f [];
    t.f_head <- grow t.f_head f Empty;
    t.f_syms.(f) <- syms;
    Syms_tbl.add t.f_ids syms f;
    t.f_head.(f) <- head_of t syms;
    t.f_count <- f + 1;
    f

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let frame_of_syms t syms = with_lock t (fun () -> frame_of_syms_locked t syms)

let make g =
  let n_prods = Grammar.num_productions g in
  let t =
    {
      f_ids = Syms_tbl.create 256;
      f_syms = Array.make 64 [];
      f_head = Array.make 64 Empty;
      f_count = 0;
      static_frames = 0;
      s_ids = Hashtbl.create 256;
      s_frame = Array.make 64 (-1);
      s_tail = Array.make 64 (-1);
      s_len = Array.make 64 0;
      s_count = 1 (* spine 0 is nil *);
      rhs_frames = Array.make (max 1 n_prods) 0;
      fp = "";
      lock = Mutex.create ();
    }
  in
  ignore (frame_of_syms t []);
  (* Every frame prediction can build is a suffix of some right-hand side
     (closure pushes whole RHSs and residual suffixes; stable-return forks
     push caller continuations, which are RHS suffixes too), so interning
     all RHS suffixes here makes runtime frame lookup a pure table hit. *)
  Array.iter
    (fun p -> t.rhs_frames.(p.Grammar.ix) <- frame_of_syms t p.Grammar.rhs)
    (Grammar.prods g);
  t.static_frames <- t.f_count;
  (* Digest of the static suffix table, in id order: two runs over equal
     grammars produce identical tables, so the digest keys persisted caches
     to the exact frame-id assignment they were built with. *)
  let buf = Buffer.create 1024 in
  for f = 0 to t.f_count - 1 do
    List.iter
      (fun s ->
        (match s with
        | T a ->
          Buffer.add_char buf 't';
          Buffer.add_string buf (string_of_int a)
        | NT x ->
          Buffer.add_char buf 'n';
          Buffer.add_string buf (string_of_int x));
        Buffer.add_char buf ' ')
      t.f_syms.(f);
    Buffer.add_char buf '\n'
  done;
  Array.iter
    (fun f ->
      Buffer.add_string buf (string_of_int f);
      Buffer.add_char buf ' ')
    t.rhs_frames;
  { t with fp = Digest.to_hex (Digest.string (Buffer.contents buf)) }

let syms_of_frame t f = t.f_syms.(f)
let head t f = Array.unsafe_get t.f_head f
let rhs_frame t ix = t.rhs_frames.(ix)
let num_frames t = t.f_count
let num_static_frames t = t.static_frames
let fingerprint t = t.fp

let cons_locked t f s =
  let key = (f lsl 31) lor s in
  match Hashtbl.find_opt t.s_ids key with
  | Some sp -> sp
  | None ->
    let sp = t.s_count in
    t.s_frame <- grow t.s_frame sp (-1);
    t.s_tail <- grow t.s_tail sp (-1);
    t.s_len <- grow t.s_len sp 0;
    t.s_frame.(sp) <- f;
    t.s_tail.(sp) <- s;
    t.s_len.(sp) <- 1 + t.s_len.(s);
    Hashtbl.add t.s_ids key sp;
    t.s_count <- sp + 1;
    sp

let cons t f s = with_lock t (fun () -> cons_locked t f s)

let spine_is_nil s = s = 0

let spine_frame t s =
  if s = 0 then invalid_arg "Frames.spine_frame: nil spine"
  else Array.unsafe_get t.s_frame s

let spine_tail t s =
  if s = 0 then invalid_arg "Frames.spine_tail: nil spine"
  else Array.unsafe_get t.s_tail s

let spine_length t s = t.s_len.(s)
let num_spines t = t.s_count

let spine_of_frames t frames =
  with_lock t (fun () ->
      List.fold_right
        (fun syms s -> cons_locked t (frame_of_syms_locked t syms) s)
        frames nil)

let frames_of_spine t s =
  let rec go s acc =
    if s = 0 then List.rev acc else go t.s_tail.(s) (t.f_syms.(t.s_frame.(s)) :: acc)
  in
  go s []
