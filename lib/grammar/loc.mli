(** Source spans for diagnostics.

    Lines and columns are 1-based; a span covers the half-open character
    range from [start] to just past [end].  The {!dummy} span marks
    synthetic constructs with no source position (combinator-built ASTs,
    generated rules); renderers print it as ["-"]. *)

type span = {
  start_line : int;
  start_col : int;
  end_line : int;
  end_col : int;
}

(** The all-zero span of position-less constructs. *)
val dummy : span

val is_dummy : span -> bool

val make :
  start_line:int -> start_col:int -> end_line:int -> end_col:int -> span

(** A single-position span. *)
val point : int -> int -> span

(** Smallest span covering both arguments; joining with {!dummy} is the
    identity, so combinator-built nodes never pollute real positions. *)
val join : span -> span -> span

(** Document order: by start position, then end position. *)
val compare : span -> span -> int

(** Renders as [line:col], [line:col-col], or [line:col-line:col]. *)
val pp : Format.formatter -> span -> unit

val to_string : span -> string
