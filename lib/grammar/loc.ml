type span = {
  start_line : int;
  start_col : int;
  end_line : int;
  end_col : int;
}

let dummy = { start_line = 0; start_col = 0; end_line = 0; end_col = 0 }
let is_dummy s = s = dummy

let make ~start_line ~start_col ~end_line ~end_col =
  { start_line; start_col; end_line; end_col }

let point line col =
  { start_line = line; start_col = col; end_line = line; end_col = col }

let join a b =
  if is_dummy a then b
  else if is_dummy b then a
  else
    let sl, sc =
      if
        a.start_line < b.start_line
        || (a.start_line = b.start_line && a.start_col <= b.start_col)
      then a.start_line, a.start_col
      else b.start_line, b.start_col
    in
    let el, ec =
      if
        a.end_line > b.end_line
        || (a.end_line = b.end_line && a.end_col >= b.end_col)
      then a.end_line, a.end_col
      else b.end_line, b.end_col
    in
    { start_line = sl; start_col = sc; end_line = el; end_col = ec }

let compare (a : span) (b : span) = Stdlib.compare a b

let pp ppf s =
  if is_dummy s then Fmt.string ppf "-"
  else if s.start_line = s.end_line && s.start_col = s.end_col then
    Fmt.pf ppf "%d:%d" s.start_line s.start_col
  else if s.start_line = s.end_line then
    Fmt.pf ppf "%d:%d-%d" s.start_line s.start_col s.end_col
  else Fmt.pf ppf "%d:%d-%d:%d" s.start_line s.start_col s.end_line s.end_col

let to_string s = Fmt.str "%a" pp s
