(** Bounds-checked name rendering, shared by every output path.

    Ids in errors, diagnostics, and deserialized table images may never have
    been interned by the grammar at hand; these lookups render out-of-range
    ids as ["<unknown terminal %d>"] / ["<unknown nonterminal %d>"] instead
    of raising.  This is the single home of that defensive logic — machine
    errors, lint, analyze, atn, and the table dumps all render through it. *)

open Symbols

val terminal : Grammar.t -> terminal -> string
val nonterminal : Grammar.t -> nonterminal -> string
val symbol : Grammar.t -> symbol -> string

(** Space-separated terminal names; the empty word renders as ["ε"]. *)
val terminals : Grammar.t -> terminal list -> string

(** [production g ix] renders production [ix] as ["lhs -> rhs"] (["ε"] for
    an empty right-hand side), or a placeholder if [ix] is out of range. *)
val production : Grammar.t -> int -> string
