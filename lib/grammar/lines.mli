(** Newline-offset table: lazy position recovery for zero-copy lexing.

    The scanner records only byte offsets; line/column positions are
    recovered on demand by binary search in this table, so position
    bookkeeping costs nothing on the scanning hot path and is paid only
    for the tokens that actually need a position (errors, tree leaves). *)

type t

(** One O(n) pass over the input. *)
val build : string -> t

val num_lines : t -> int

(** [pos t ofs] is the (1-based line, 0-based column) of byte offset
    [ofs].  Offsets past the end of input report a position on the last
    line (or the line after it, if the input ends with a newline) —
    exactly where an end-of-input message should point. *)
val pos : t -> int -> int * int

(** Byte offset of the first character of the line containing [ofs]. *)
val line_start : t -> int -> int
