(** Static left-recursion detection.

    The paper's correctness theorems assume a non-left-recursive grammar and
    note (§8) that the property is decidable; this module is that decision
    procedure.  A nonterminal [x] is left-recursive iff there is a nullable
    path from [x] back to [x]: a cycle in the graph with an edge [x -> y]
    whenever the grammar contains [x -> alpha y beta] with [alpha] nullable. *)

open Symbols

(** Nonterminals that lie on a left-recursive cycle. *)
val left_recursive_nts : Grammar.t -> Analysis.t -> Int_set.t

(** A left edge [x -> dst], labelled with the production it comes from and
    whether [dst] sits behind a nonempty nullable prefix (hidden left
    recursion). *)
type edge = {
  dst : nonterminal;
  prod : int;
  hidden : bool;
}

(** Labelled left-edge adjacency, indexed by source nonterminal. *)
val left_edges_labeled : Grammar.t -> Analysis.t -> edge list array

(** How a left-recursive cycle recurses: a self-loop ([Direct]), through
    other nonterminals ([Indirect]), or behind a nullable prefix
    ([Hidden]). *)
type kind =
  | Direct
  | Indirect
  | Hidden

val kind_to_string : kind -> string

(** [witness g a x] is a shortest left-edge cycle through [x], as the list
    of nonterminals starting and ending at [x] (so a self-loop is [[x; x]]),
    or [None] if [x] is not left-recursive. *)
val witness :
  Grammar.t -> Analysis.t -> nonterminal -> (kind * nonterminal list) option

(** [is_left_recursive g a x]: does [x] lie on a left-recursive cycle? *)
val is_left_recursive : Grammar.t -> Analysis.t -> nonterminal -> bool

(** [check g] is [Ok ()] when [g] has no left recursion, otherwise
    [Error xs] with the offending nonterminals (in identifier order). *)
val check : Grammar.t -> (unit, nonterminal list) result
