(** Random sentence sampling from a grammar.

    Used by the test suite's completeness properties, the [costar sample]
    CLI command, and grammar fuzzing: words drawn from the grammar exercise
    the parser's accepting paths, which uniformly random words almost never
    reach.

    Sampling is {e total} on productive grammars: random leftmost expansion
    (restricted to alternatives whose right-hand sides are fully productive)
    explores while [fuel] lasts, and once fuel or [max_len] is exhausted
    every remaining nonterminal is finished by its shortest derivation
    ({!Analysis.min_yield}), Purdom-style.  Determinism comes from the
    caller's [Random.State.t] — see {!Rng.of_seed}. *)

(** [sentence ?max_len ?fuel ?analysis g rand] draws a word of the
    grammar's start symbol, as terminal names.  [fuel] (default 200) bounds
    the random expansions and [max_len] (default 64) the length at which
    the walk switches to shortest completions (the result may exceed it by
    the lengths of those completions).  [None] iff the start symbol is
    unproductive.  Pass [analysis] to reuse an existing {!Analysis.t} for
    [g] across many draws. *)
val sentence :
  ?max_len:int ->
  ?fuel:int ->
  ?analysis:Analysis.t ->
  Grammar.t ->
  Random.State.t ->
  string list option

(** Like {!sentence} but returns tokens (each lexeme is its terminal
    name). *)
val tokens :
  ?max_len:int ->
  ?fuel:int ->
  ?analysis:Analysis.t ->
  Grammar.t ->
  Random.State.t ->
  Token.t list option
