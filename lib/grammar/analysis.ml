open Symbols

type t = {
  g : Grammar.t;
  nullable : bool array;
  first : Int_set.t array;
  follow : Int_set.t array;
  follow_end : bool array;
  reachable : bool array;
  productive : bool array;
  callers : (nonterminal * symbol list) list array;
  endable : bool array;
  min_yield : terminal list array;
      (* shortest terminal yield per nonterminal; meaningful only where
         [productive] holds *)
  frames : Frames.t;
  callers_framed : (nonterminal * Frames.frame) list array;
      (* [callers] with each continuation pre-interned, so stable-return
         forks in the closure hot path never touch symbol lists *)
}

(* Iterate [f] until it reports no change. *)
let fixpoint f =
  let changed = ref true in
  while !changed do
    changed := false;
    f changed
  done

let compute_nullable g =
  let n = Grammar.num_nonterminals g in
  let nullable = Array.make n false in
  let sym_nullable = function T _ -> false | NT x -> nullable.(x) in
  fixpoint (fun changed ->
      Array.iter
        (fun p ->
          if (not nullable.(p.Grammar.lhs)) && List.for_all sym_nullable p.rhs
          then begin
            nullable.(p.lhs) <- true;
            changed := true
          end)
        (Grammar.prods g));
  nullable

let compute_first g nullable =
  let n = Grammar.num_nonterminals g in
  let first = Array.make n Int_set.empty in
  let add x set changed =
    let merged = Int_set.union first.(x) set in
    if not (Int_set.equal merged first.(x)) then begin
      first.(x) <- merged;
      changed := true
    end
  in
  fixpoint (fun changed ->
      Array.iter
        (fun p ->
          let rec go = function
            | [] -> ()
            | T a :: _ -> add p.Grammar.lhs (Int_set.singleton a) changed
            | NT y :: rest ->
              add p.lhs first.(y) changed;
              if nullable.(y) then go rest
          in
          go p.rhs)
        (Grammar.prods g));
  first

let first_seq_of nullable first syms =
  let rec go acc = function
    | [] -> acc
    | T a :: _ -> Int_set.add a acc
    | NT y :: rest ->
      let acc = Int_set.union first.(y) acc in
      if nullable.(y) then go acc rest else acc
  in
  go Int_set.empty syms

let nullable_seq_of nullable syms =
  List.for_all (function T _ -> false | NT x -> nullable.(x)) syms

let compute_follow g nullable first =
  let n = Grammar.num_nonterminals g in
  let follow = Array.make n Int_set.empty in
  let follow_end = Array.make n false in
  follow_end.(Grammar.start g) <- true;
  fixpoint (fun changed ->
      Array.iter
        (fun p ->
          let rec go = function
            | [] -> ()
            | T _ :: rest -> go rest
            | NT x :: rest ->
              let fs = first_seq_of nullable first rest in
              let merged = Int_set.union follow.(x) fs in
              if not (Int_set.equal merged follow.(x)) then begin
                follow.(x) <- merged;
                changed := true
              end;
              if nullable_seq_of nullable rest then begin
                let merged = Int_set.union follow.(x) follow.(p.Grammar.lhs) in
                if not (Int_set.equal merged follow.(x)) then begin
                  follow.(x) <- merged;
                  changed := true
                end;
                if follow_end.(p.lhs) && not follow_end.(x) then begin
                  follow_end.(x) <- true;
                  changed := true
                end
              end;
              go rest
          in
          go p.rhs)
        (Grammar.prods g));
  (follow, follow_end)

let compute_reachable g =
  let n = Grammar.num_nonterminals g in
  let reachable = Array.make n false in
  let rec visit x =
    if not reachable.(x) then begin
      reachable.(x) <- true;
      List.iter
        (fun rhs ->
          List.iter (function T _ -> () | NT y -> visit y) rhs)
        (Grammar.rhss_of g x)
    end
  in
  visit (Grammar.start g);
  reachable

let compute_productive g =
  let n = Grammar.num_nonterminals g in
  let productive = Array.make n false in
  let sym_productive = function T _ -> true | NT x -> productive.(x) in
  fixpoint (fun changed ->
      Array.iter
        (fun p ->
          if
            (not productive.(p.Grammar.lhs))
            && List.for_all sym_productive p.rhs
          then begin
            productive.(p.lhs) <- true;
            changed := true
          end)
        (Grammar.prods g));
  productive

(* Shortest terminal yield of each productive nonterminal, as an actual word.
   A Bellman-Ford-style fixpoint: an entry is only ever replaced by a strictly
   shorter word, so lengths descend and the iteration terminates.  Ties are
   broken by keeping the incumbent, which makes the result deterministic in
   production order. *)
let compute_min_yield g productive =
  let n = Grammar.num_nonterminals g in
  let yield : terminal list option array = Array.make n None in
  let len = function None -> max_int | Some w -> List.length w in
  let sym_yield = function T a -> Some [ a ] | NT x -> yield.(x) in
  fixpoint (fun changed ->
      Array.iter
        (fun p ->
          let parts = List.map sym_yield p.Grammar.rhs in
          if List.for_all Option.is_some parts then begin
            let w = List.concat_map Option.get parts in
            if List.length w < len yield.(p.lhs) then begin
              yield.(p.lhs) <- Some w;
              changed := true
            end
          end)
        (Grammar.prods g));
  Array.mapi
    (fun x w ->
      match w with
      | Some w -> w
      | None ->
        assert (not productive.(x));
        [])
    yield

let compute_callers g =
  let n = Grammar.num_nonterminals g in
  let callers = Array.make n [] in
  let mem x entry =
    List.exists
      (fun (y, beta) ->
        y = fst entry && compare_symbols beta (snd entry) = 0)
      callers.(x)
  in
  Array.iter
    (fun p ->
      let rec go = function
        | [] -> ()
        | T _ :: rest -> go rest
        | NT x :: rest ->
          if not (mem x (p.Grammar.lhs, rest)) then
            callers.(x) <- (p.lhs, rest) :: callers.(x);
          go rest
      in
      go p.rhs)
    (Grammar.prods g);
  Array.map List.rev callers

let compute_endable g nullable callers =
  let n = Grammar.num_nonterminals g in
  let endable = Array.make n false in
  endable.(Grammar.start g) <- true;
  fixpoint (fun changed ->
      for x = 0 to n - 1 do
        if not endable.(x) then
          if
            List.exists
              (fun (y, beta) -> endable.(y) && nullable_seq_of nullable beta)
              callers.(x)
          then begin
            endable.(x) <- true;
            changed := true
          end
      done);
  endable

let make g =
  let nullable = compute_nullable g in
  let first = compute_first g nullable in
  let follow, follow_end = compute_follow g nullable first in
  let reachable = compute_reachable g in
  let productive = compute_productive g in
  let callers = compute_callers g in
  let endable = compute_endable g nullable callers in
  let min_yield = compute_min_yield g productive in
  let frames = Frames.make g in
  let callers_framed =
    Array.map
      (List.map (fun (y, beta) -> (y, Frames.frame_of_syms frames beta)))
      callers
  in
  {
    g;
    nullable;
    first;
    follow;
    follow_end;
    reachable;
    productive;
    callers;
    endable;
    min_yield;
    frames;
    callers_framed;
  }

let grammar a = a.g
let nullable a x = a.nullable.(x)
let nullable_seq a syms = nullable_seq_of a.nullable syms
let first a x = a.first.(x)
let first_seq a syms = first_seq_of a.nullable a.first syms
let follow a x = a.follow.(x)
let follow_end a x = a.follow_end.(x)
let reachable a x = a.reachable.(x)
let productive a x = a.productive.(x)
let callers a x = a.callers.(x)
let callers_framed a x = a.callers_framed.(x)
let frames a = a.frames
let endable a x = a.endable.(x)
let min_yield a x = if a.productive.(x) then Some a.min_yield.(x) else None

let min_yield_seq a syms =
  let rec go acc = function
    | [] -> Some (List.concat (List.rev acc))
    | T t :: rest -> go ([ t ] :: acc) rest
    | NT x :: rest ->
      if a.productive.(x) then go (a.min_yield.(x) :: acc) rest else None
  in
  go [] syms
