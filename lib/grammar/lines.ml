(* Newline-offset table: positions are recovered from byte offsets by
   binary search instead of being tracked during scanning, so the lexer
   hot loop never touches line/column state.  Built once per input (O(n))
   and shared by every consumer that needs a position — error messages,
   tree leaves, the MiniPython indenter. *)

type t = int array
(* Byte offset of the first character of each line; [starts.(0) = 0]. *)

let build input =
  let n = String.length input in
  let count = ref 1 in
  for i = 0 to n - 1 do
    if String.unsafe_get input i = '\n' then incr count
  done;
  let starts = Array.make !count 0 in
  let next = ref 1 in
  for i = 0 to n - 1 do
    if String.unsafe_get input i = '\n' then begin
      starts.(!next) <- i + 1;
      incr next
    end
  done;
  starts

let num_lines = Array.length

(* Largest index [k] with [starts.(k) <= ofs]. *)
let line_index starts ofs =
  let lo = ref 0 and hi = ref (Array.length starts - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if starts.(mid) <= ofs then lo := mid else hi := mid - 1
  done;
  !lo

let pos starts ofs =
  let k = line_index starts ofs in
  (k + 1, ofs - starts.(k))

let line_start starts ofs = starts.(line_index starts ofs)
