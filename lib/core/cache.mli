(** The SLL prediction cache: a persistent DFA per decision nonterminal
    (paper, §3.4).

    DFA states are interned canonical sets of SLL configurations; transitions
    are keyed by (state, terminal).  The cache is a purely functional value
    threaded through the machine state, exactly as in the Coq development; it
    only ever grows, and may be carried across parses via
    {!Parser.run_with_cache}. *)

open Costar_grammar.Symbols

type t

type state_id = int

(** Precomputed facts about an interned DFA state. *)
type verdict =
  | V_empty  (** no live subparsers: reject *)
  | V_all_pred of int  (** all live subparsers carry this prediction *)
  | V_pending  (** live subparsers disagree: keep scanning *)

type info = {
  configs : Config.sll list;  (** canonical (sorted, deduped) *)
  verdict : verdict;
  accepting : int list;
      (** distinct predictions of configurations in accepting position *)
}

val empty : t

val num_states : t -> int
val num_transitions : t -> int

(** Initial DFA state for a decision nonterminal, if already computed. *)
val find_init : t -> nonterminal -> state_id option

val add_init : t -> nonterminal -> state_id -> t

(** [intern cache configs] returns the id for this canonical configuration
    set, allocating (and precomputing {!info} for) a fresh state if new. *)
val intern : t -> Config.sll list -> t * state_id

val info : t -> state_id -> info

val find_trans : t -> state_id -> terminal -> state_id option

val add_trans : t -> state_id -> terminal -> state_id -> t

(** Memoized single-configuration closures.  The closure of a configuration
    set is the union of its members' closures, and identical configurations
    recur constantly across DFA states, so caching per-configuration results
    removes most closure work once the cache is warm.  Alongside the stable
    configurations each entry records whether the closure performed a
    stable-return fork (simulated return past the truncated stack, §3.5) —
    the spot where SLL overapproximates LL; the static analyzer reads the
    flag through {!Sll.closure_cached_ext}. *)
val find_closure :
  t -> Config.sll -> (Config.sll list * bool, Types.error) result option

val add_closure :
  t -> Config.sll -> (Config.sll list * bool, Types.error) result -> t

(** {1 Persistence}

    A cache — typically one fully populated offline by
    {!Costar_predict_analysis.Analyze.analyze} — can be serialized and
    reloaded so parses start warm.  The format is a validated plain-text
    header (magic, format version, grammar fingerprint from
    {!Costar_grammar.Grammar.fingerprint}) followed by the marshalled cache;
    the header is checked before any unmarshalling, so loading rejects wrong
    files, incompatible format versions, and caches built for any other
    grammar. *)

(** Serialize a cache, binding it to the given grammar fingerprint. *)
val precompile : fingerprint:string -> t -> string

(** Deserialize a precompiled cache, validating magic, version, and grammar
    fingerprint.  The error is a human-readable reason. *)
val of_precompiled : fingerprint:string -> string -> (t, string) result

(** [save_precompiled ~fingerprint c file] writes {!precompile} to [file]. *)
val save_precompiled : fingerprint:string -> t -> string -> unit

(** [load_precompiled ~fingerprint file] reads and validates [file]. *)
val load_precompiled : fingerprint:string -> string -> (t, string) result
