(** The SLL prediction cache: a DFA per decision nonterminal (paper, §3.4),
    interned end to end.

    DFA states are interned canonical sets of SLL configurations.
    Configurations are all-int records ({!Config}), so a state key is the
    sorted array of its members' dense config ids, hashed once; transitions
    live in per-state terminal-indexed arrays, making the warm prediction
    step a pair of array reads ({!trans_get}).

    Unlike the Coq development's purely functional cache, this one is a
    mutable store (hashtables + growable arrays).  The API keeps the
    value-threading shape — mutators return [t] — so code written against
    the functional version still reads naturally, but the returned value is
    the same object: callers sharing a cache observe each other's additions.
    Cache contents never influence parse {e results}, only speed
    (property-tested), so this sharing is benign; use {!copy} where
    independent growth matters (e.g. cold-cache measurements).

    A cache is bound at {!create} to one grammar's {!Analysis.t} (whose
    {!Costar_grammar.Frames} table defines the config representation); using
    it with any other grammar is undefined. *)

open Costar_grammar
open Costar_grammar.Symbols

type t

type state_id = int

(** Precomputed facts about an interned DFA state. *)
type verdict =
  | V_empty  (** no live subparsers: reject *)
  | V_all_pred of int  (** all live subparsers carry this prediction *)
  | V_pending  (** live subparsers disagree: keep scanning *)

type info = {
  configs : Config.sll list;  (** canonical (sorted, deduped) *)
  verdict : verdict;
  accepting : int list;
      (** distinct predictions of configurations in accepting position *)
  decided_pred : Types.prediction;
      (** preboxed [Unique_pred] when [verdict] is [V_all_pred]; the warm
          fast path returns this shared value instead of allocating *)
  eof_pred : Types.prediction;
      (** preboxed prediction for input ending in this state (from
          [accepting]: reject, unique, or ambiguous) *)
}

(** A fresh, empty cache for this grammar analysis. *)
val create : Analysis.t -> t

(** The analysis this cache was created against.  A cache must only be
    consulted through this exact analysis: its configurations are expressed
    in the analysis's {!Costar_grammar.Frames} interner, whose spine ids
    depend on runtime interning order, so even another [Analysis.make] of
    the same grammar is incompatible.  Consumers given a cache without its
    analysis (the machine, the static analyzer) read it back from here. *)
val analysis : t -> Analysis.t

(** The frame interner this cache's configurations are expressed in. *)
val frames : t -> Frames.t

(** An independent cache with the same contents and ids; later additions to
    either do not affect the other. *)
val copy : t -> t

(** {1 Freezing and overlays (parallel batch parsing)}

    A {!frozen} value is a snapshot of a cache that is never mutated again.
    Under the OCaml memory model, data published before [Domain.spawn] and
    never written afterwards is safe to read from any number of domains
    without locks, so one snapshot serves a whole worker pool.  Each worker
    consults it through its own {!overlay} — an ordinary [t] that answers
    reads from the snapshot and records misses in a private layer — and
    the private layers are merged back into a master cache with {!absorb}
    between rounds, so warm-up compounds across batches.

    Because cache contents only ever influence parse {e speed}, never
    results (the differential property in [test/test_parallel.ml]), any
    interleaving of overlay growth and absorption is observationally
    benign. *)

type frozen

(** Snapshot a cache.  The argument remains usable and mutable; the
    snapshot is independent of it.  Raises [Invalid_argument] on an overlay
    (freeze the master cache the overlays were absorbed into instead). *)
val freeze : t -> frozen

(** A fresh mutable overlay over a frozen snapshot.  Reads fall through to
    the snapshot; writes stay in the overlay.  Many overlays may share one
    snapshot, each confined to a single domain. *)
val overlay : frozen -> t

(** [absorb dst src] merges everything recorded at [src]'s own layer into
    [dst] and returns [dst].  States are matched by configuration {e value}
    (exact, since every cache of one analysis shares the same frames
    interner), not by id, so [absorb] is idempotent and — up to id
    assignment, which is unobservable — order-independent. *)
val absorb : t -> t -> t

val frozen_num_states : frozen -> int
val frozen_num_transitions : frozen -> int

(** Number of DFA states interned at this cache's own layer: overlay-local
    states for an overlay, all states for a plain cache. *)
val overlay_new_states : t -> int

val num_states : t -> int
val num_transitions : t -> int

(** Number of distinct configurations assigned dense ids. *)
val num_configs : t -> int

(** Initial DFA state for a decision nonterminal, if already computed. *)
val find_init : t -> nonterminal -> state_id option

(** Raw variant of {!find_init} for the warm prediction loop: the initial
    state id, or [-1] if not yet computed. *)
val init_get : t -> nonterminal -> int

(** The shared preallocated [Unique_pred] box for a production index. *)
val unique_pred : t -> int -> Types.prediction

val add_init : t -> nonterminal -> state_id -> t

(** [intern cache configs] returns the id for this canonical configuration
    set, allocating (and precomputing {!info} for) a fresh state if new. *)
val intern : t -> Config.sll list -> t * state_id

val info : t -> state_id -> info

val find_trans : t -> state_id -> terminal -> state_id option

(** Raw transition read for the warm prediction loop: the successor state
    id, or [-1] if the transition has not been computed. *)
val trans_get : t -> state_id -> terminal -> int

(** Record a transition.  Idempotent: re-adding an existing transition
    neither changes the successor nor double-counts {!num_transitions}. *)
val add_trans : t -> state_id -> terminal -> state_id -> t

(** Memoized single-configuration closures.  The closure of a configuration
    set is the union of its members' closures, and identical configurations
    recur constantly across DFA states, so caching per-configuration results
    removes most closure work once the cache is warm.  Alongside the stable
    configurations each entry records whether the closure performed a
    stable-return fork (simulated return past the truncated stack, §3.5) —
    the spot where SLL overapproximates LL; the static analyzer reads the
    flag through {!Sll.closure_cached_ext}. *)
val find_closure :
  t -> Config.sll -> (Config.sll list * bool, Types.error) result option

val add_closure :
  t -> Config.sll -> (Config.sll list * bool, Types.error) result -> t

(** {1 Persistence}

    A cache — typically one fully populated offline by
    [Costar_predict_analysis.Analyze.analyze] — can be serialized and
    reloaded so parses start warm.  The format (version 2) is a validated
    plain-text header — magic, format version, grammar fingerprint from
    {!Costar_grammar.Grammar.fingerprint}, suffix-table digest from
    {!Costar_grammar.Frames.fingerprint} — followed by a marshalled decoded
    dump (configurations with frames expanded back to symbol lists, since
    interner ids are per-process).  Loading validates the header before any
    unmarshalling and re-interns states in id order, so it rejects wrong
    files, incompatible format versions (including v1 files from earlier
    builds), and caches built for any other grammar, and reproduces
    identical state ids otherwise. *)

(** Serialize a cache, binding it to the given grammar fingerprint. *)
val precompile : fingerprint:string -> t -> string

(** Deserialize a precompiled cache against [anl], validating magic,
    version, grammar fingerprint and suffix-table digest.  The error is a
    human-readable reason. *)
val of_precompiled : anl:Analysis.t -> fingerprint:string -> string -> (t, string) result

(** [save_precompiled ~fingerprint c file] writes {!precompile} to [file]. *)
val save_precompiled : fingerprint:string -> t -> string -> unit

(** [load_precompiled ~anl ~fingerprint file] reads and validates [file]. *)
val load_precompiled :
  anl:Analysis.t -> fingerprint:string -> string -> (t, string) result

(** {1 Flat cache images (format v3)}

    A second persistence format, designed for sharing rather than
    archiving: the frozen cache — state configurations, the dense
    terminal-indexed transition matrix, initial states — encoded as one
    contiguous int32-little-endian image with a validated header
    (magic, version, endian sentinel, grammar fingerprint, suffix-table
    digest, FNV-1a payload checksum; word discipline shared with
    [costar tables] via {!Costar_grammar.Flatimg}).

    {!load_image} maps the file read-only with [Unix.map_file] and serves
    predictions straight off the mapping: transition reads are single
    unboxed word loads against the page cache, state infos are decoded
    lazily per state on first touch, and N processes mapping the same file
    share one physical copy with zero deserialization — the substrate of
    the prefork serving tier (DESIGN.md §13).  Everything is
    bounds-and-range validated before any offset is trusted.  Closure
    memos are not stored; they are recomputed deterministically on
    demand. *)

type image_error =
  | Img_io of string  (** open/read/mmap failure, with the reason *)
  | Img_bad_magic
  | Img_bad_version of int  (** found this version on disk *)
  | Img_endian_mismatch
      (** byte-swapped mapping (big-endian host); the file itself may be
          fine — {!load_image} falls back to the heap decode *)
  | Img_truncated
  | Img_checksum_mismatch
  | Img_fingerprint_mismatch  (** built for a different grammar *)
  | Img_digest_mismatch  (** built against a different suffix table *)
  | Img_malformed of string  (** structural validation failed: what *)

val image_error_to_string : image_error -> string

(** Encode a cache (typically a fully analyzed one) as a v3 image. *)
val image_bytes : fingerprint:string -> t -> string

(** [save_image ~fingerprint c file] writes {!image_bytes} to [file]. *)
val save_image : fingerprint:string -> t -> string -> unit

(** Decode an in-memory image into an ordinary heap cache, re-interning
    states in id order (the differential oracle for {!load_image}). *)
val of_image_bytes :
  anl:Analysis.t -> fingerprint:string -> string -> (t, image_error) result

(** Map [file] read-only and return an image-backed cache serving reads
    from the mapping.  Falls back to the heap decode on a byte-swapped
    (big-endian) host, where zero-copy mapping is not available. *)
val load_image :
  anl:Analysis.t -> fingerprint:string -> string -> (t, image_error) result

(** Load [file] through the heap-decode path (same validation, no mmap). *)
val load_image_heap :
  anl:Analysis.t -> fingerprint:string -> string -> (t, image_error) result

(** Whether this cache serves reads from a mapped image. *)
val image_backed : t -> bool

(** Magic-sniffing loader for CLI [--cache] arguments: dispatches on the
    leading bytes to the v3 image loader or the v2 {!load_precompiled}. *)
val load_any :
  anl:Analysis.t -> fingerprint:string -> string -> (t, string) result
