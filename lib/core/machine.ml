open Costar_grammar
open Costar_grammar.Symbols

type frame = {
  label : nonterminal option;
  syms_rev : symbol list;
  trees_rev : Tree.t list;
  suf : symbol list;
}

type state = {
  top : frame;
  frames : frame list;
  cache : Cache.t;
  word : Word.t;
  pos : int;
  visited : Int_set.t;
  unique : bool;
}

type fail_reason =
  | Fail_mismatch of { expected : terminal; pos : int }
  | Fail_eof of { expected : terminal }
  | Fail_no_alt of { nt : nonterminal; pos : int; lookahead : int }
  | Fail_trailing of { pos : int }

type failure = {
  reason : fail_reason;
  message : string;
}

type step_result =
  | Step_accept of Tree.t
  | Step_reject of failure
  | Step_error of Types.error
  | Step_cont of state

type env = {
  g : Grammar.t;
  anl : Analysis.t;
}

let make_env g = { g; anl = Analysis.make g }

let init_word env ?cache word =
  let cache =
    match cache with Some c -> c | None -> Cache.create env.anl
  in
  {
    top =
      {
        label = None;
        syms_rev = [];
        trees_rev = [];
        suf = [ NT (Grammar.start env.g) ];
      };
    frames = [];
    cache;
    word;
    pos = 0;
    visited = Int_set.empty;
    unique = true;
  }

let init env ?cache tokens = init_word env ?cache (Word.of_tokens tokens)

let conts st = st.top.suf :: List.map (fun f -> f.suf) st.frames

let height st = 1 + List.length st.frames

let remaining st = st.word.Word.len - st.pos

let remaining_tokens st = Word.drop st.word st.pos

let pos_msg st =
  if st.pos >= st.word.Word.len then "at end of input"
  else
    let tok = Word.token st.word st.pos in
    if tok.Token.line > 0 then
      Printf.sprintf "at line %d, column %d" tok.Token.line tok.Token.col
    else "at token " ^ tok.Token.lexeme

(* Defensive name lookups for error messages: input tokens may carry
   terminal ids the grammar never interned. *)
let safe_terminal_name = Costar_grammar.Names.terminal

let consume env st a suf =
  if st.pos < st.word.Word.len then
    if Bigarray.Array1.unsafe_get st.word.Word.kinds st.pos = a then
      (* The leaf token is materialized here, at consume time: in the
         buffer pipeline this is where the lexeme is first sliced and the
         position first recovered (the laziness contract's other end). *)
      let tok = Word.token st.word st.pos in
      Step_cont
        {
          st with
          top =
            {
              st.top with
              syms_rev = T a :: st.top.syms_rev;
              trees_rev = Tree.Leaf tok :: st.top.trees_rev;
              suf;
            };
          pos = st.pos + 1;
          visited = Int_set.empty;
        }
    else
      let tok = Word.token st.word st.pos in
      Step_reject
        {
          reason = Fail_mismatch { expected = a; pos = st.pos };
          message =
            Printf.sprintf "expected '%s' but found '%s' (%S) %s"
              (Grammar.terminal_name env.g a)
              (safe_terminal_name env.g tok.Token.term)
              tok.Token.lexeme (pos_msg st);
        }
  else
    Step_reject
      {
        reason = Fail_eof { expected = a };
        message =
          Printf.sprintf "expected '%s' but reached end of input"
            (Grammar.terminal_name env.g a);
      }

let push env st x suf =
  if Int_set.mem x st.visited then Step_error (Types.Left_recursive x)
  else
    let conts () = suf :: List.map (fun f -> f.suf) st.frames in
    (* Predict through the cache's own analysis, not [env.anl]: a supplied
       cache (precompiled, or built by the static analyzer) expresses its
       configurations in its own frame interner. *)
    let cache, pred, look =
      Predict.adaptive_predict_word_ext env.g (Cache.analysis st.cache)
        st.cache x conts st.word st.pos
    in
    let do_push ix unique =
      Instr.record_cov_prod ix;
      let gamma = (Grammar.prod env.g ix).rhs in
      Step_cont
        {
          top = { label = Some x; syms_rev = []; trees_rev = []; suf = gamma };
          frames = { st.top with suf } :: st.frames;
          cache;
          word = st.word;
          pos = st.pos;
          visited = Int_set.add x st.visited;
          unique = st.unique && unique;
        }
    in
    match pred with
    | Types.Unique_pred ix -> do_push ix true
    | Types.Ambig_pred ix -> do_push ix false
    | Types.Reject_pred ->
      Step_reject
        {
          reason = Fail_no_alt { nt = x; pos = st.pos; lookahead = look };
          message =
            Printf.sprintf "no viable alternative for %s %s"
              (Costar_grammar.Names.nonterminal env.g x)
              (pos_msg st);
        }
    | Types.Error_pred e -> Step_error e

let return_op st =
  match st.frames with
  | caller :: frames -> (
    match st.top.label with
    | Some x ->
      let node = Tree.Node (x, List.rev st.top.trees_rev) in
      Step_cont
        {
          st with
          top =
            {
              caller with
              syms_rev = NT x :: caller.syms_rev;
              trees_rev = node :: caller.trees_rev;
            };
          frames;
          visited = Int_set.remove x st.visited;
        }
    | None -> Step_error (Types.Invalid_state "return from an unlabeled frame"))
  | [] -> Step_error (Types.Invalid_state "return with no caller frame")

let finish env st =
  if st.pos < st.word.Word.len then
    Step_reject
      {
        reason = Fail_trailing { pos = st.pos };
        message =
          Printf.sprintf "parse finished with input remaining %s" (pos_msg st);
      }
  else
    match st.top with
    | { label = None; syms_rev = [ NT x ]; trees_rev = [ v ]; suf = [] }
      when x = Grammar.start env.g ->
      Step_accept v
    | _ -> Step_error (Types.Invalid_state "malformed final configuration")

let step env st =
  match st.top.suf with
  | T a :: suf -> consume env st a suf
  | NT x :: suf -> push env st x suf
  | [] -> if st.frames = [] then finish env st else return_op st

(* --- StacksWf_I (Fig. 4) ------------------------------------------------ *)

let stacks_wf env st =
  let g = env.g in
  (* A frame's full contents: processed symbols, then — if a child frame is
     currently open — the child's nonterminal (the paper keeps it at the
     head of the caller's suffix frame), then the unprocessed symbols. *)
  let full_of frame child_label =
    List.rev_append frame.syms_rev
      (match child_label with
      | Some x -> NT x :: frame.suf
      | None -> frame.suf)
  in
  let rec frames_wf child_label frame rest =
    match rest with
    | [] -> (
      (* Bottom frame: spells exactly the start symbol. *)
      frame.label = None
      &&
      match full_of frame child_label with
      | [ NT x ] -> x = Grammar.start g
      | _ -> false)
    | caller :: below -> (
      match frame.label with
      | Some x ->
        (match Grammar.find_production g x (full_of frame child_label) with
        | Some _ -> true
        | None -> false)
        && frames_wf (Some x) caller below
      | None -> false)
  in
  let frames_wf top rest = frames_wf None top rest in
  (* Each frame's trees correspond one-to-one with its processed symbols. *)
  let trees_ok f =
    List.length f.syms_rev = List.length f.trees_rev
    && List.for_all2
         (fun s v -> equal_symbol (Tree.root v) s)
         f.syms_rev f.trees_rev
  in
  frames_wf st.top st.frames && List.for_all trees_ok (st.top :: st.frames)
