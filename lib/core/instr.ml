(** Optional prediction instrumentation (disabled by default).

    When [enabled] is set, SLL and LL prediction record, per decision
    nonterminal, how many times they ran and how many tokens of lookahead
    they consumed; the DFA cache additionally counts state interns,
    transition hits/misses and closure-memo hits/misses.  Used by
    [costar parse --stats], the benchmark harness and for performance
    debugging; zero-cost-ish when disabled (one branch per event). *)

let enabled = ref false

type counter = {
  mutable calls : int;
  mutable tokens : int;
}

let sll_tbl : (int, counter) Hashtbl.t = Hashtbl.create 64
let ll_tbl : (int, counter) Hashtbl.t = Hashtbl.create 64

let record tbl x n =
  let c =
    match Hashtbl.find_opt tbl x with
    | Some c -> c
    | None ->
      let c = { calls = 0; tokens = 0 } in
      Hashtbl.add tbl x c;
      c
  in
  c.calls <- c.calls + 1;
  c.tokens <- c.tokens + n

let record_sll x n = if !enabled then record sll_tbl x n
let record_ll x n = if !enabled then record ll_tbl x n

(** DFA cache counters (see {!Cache} and {!Sll.loop}): how often the warm
    path hit a precomputed transition vs fell back to closure work, how many
    states were interned, and how the per-configuration closure memo fared. *)
type cache_counters = {
  mutable state_interns : int;
  mutable trans_hits : int;
  mutable trans_misses : int;
  mutable closure_hits : int;
  mutable closure_misses : int;
}

let cache =
  {
    state_interns = 0;
    trans_hits = 0;
    trans_misses = 0;
    closure_hits = 0;
    closure_misses = 0;
  }

let record_state_intern () =
  if !enabled then cache.state_interns <- cache.state_interns + 1

let record_trans_hit () =
  if !enabled then cache.trans_hits <- cache.trans_hits + 1

let record_trans_miss () =
  if !enabled then cache.trans_misses <- cache.trans_misses + 1

let record_closure_hit () =
  if !enabled then cache.closure_hits <- cache.closure_hits + 1

let record_closure_miss () =
  if !enabled then cache.closure_misses <- cache.closure_misses + 1

let reset () =
  Hashtbl.reset sll_tbl;
  Hashtbl.reset ll_tbl;
  cache.state_interns <- 0;
  cache.trans_hits <- 0;
  cache.trans_misses <- 0;
  cache.closure_hits <- 0;
  cache.closure_misses <- 0

(** Totals: (sll calls, sll lookahead tokens, ll calls, ll lookahead). *)
let totals () =
  let sum tbl f = Hashtbl.fold (fun _ c acc -> acc + f c) tbl 0 in
  ( sum sll_tbl (fun c -> c.calls),
    sum sll_tbl (fun c -> c.tokens),
    sum ll_tbl (fun c -> c.calls),
    sum ll_tbl (fun c -> c.tokens) )

(** A copy of the current DFA cache counters. *)
let cache_totals () = { cache with state_interns = cache.state_interns }

(** Per-nonterminal rows sorted by lookahead volume: (nt, mode, calls,
    tokens). *)
let report () =
  let rows tbl mode =
    Hashtbl.fold (fun x c acc -> (x, mode, c.calls, c.tokens) :: acc) tbl []
  in
  List.sort
    (fun (_, _, _, t1) (_, _, _, t2) -> compare t2 t1)
    (rows sll_tbl `Sll @ rows ll_tbl `Ll)
