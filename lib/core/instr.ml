(** Optional prediction instrumentation (disabled by default).

    When [enabled] is set, SLL and LL prediction record, per decision
    nonterminal, how many times they ran and how many tokens of lookahead
    they consumed; the DFA cache additionally counts state interns,
    transition hits/misses and closure-memo hits/misses.  Used by
    [costar parse --stats], the benchmark harness and for performance
    debugging; zero-cost-ish when disabled (one branch per event).

    All counters live in domain-local storage: each domain accumulates its
    own tallies, so parallel batch workers never contend (and per-domain
    DFA hit rates fall out for free — a worker snapshots [cache_totals]
    before it joins).  [enabled] stays a single global flag, flipped only
    while no worker domains are running. *)

let enabled = ref false

(* Decision/production/edge coverage recording (see [cov_*] below) is a
   separate flag: the coverage driver wants hit counts without paying for
   the per-decision lookahead histograms, and vice versa. *)
let cov_enabled = ref false

type counter = {
  mutable calls : int;
  mutable tokens : int;
}

(** DFA cache counters (see {!Cache} and {!Sll.loop}): how often the warm
    path hit a precomputed transition vs fell back to closure work, how many
    states were interned, and how the per-configuration closure memo fared. *)
type cache_counters = {
  mutable state_interns : int;
  mutable trans_hits : int;
  mutable trans_misses : int;
  mutable closure_hits : int;
  mutable closure_misses : int;
}

(** Coverage tallies for one domain.  Keys are the dense ids the rest of
    the system already uses: global production index for [prods], decision
    nonterminal for [decisions], (DFA state id, terminal id) for [edges].
    Edge ids only mean something relative to the cache that interned the
    states, so a coverage run must thread one cache through every parse
    (the cover driver reuses the static analyzer's cache for exactly this
    reason). *)
type cov_counters = {
  prods : (int, int) Hashtbl.t;
  decisions : (int, int) Hashtbl.t;
  edges : (int * int, int) Hashtbl.t;
}

type state = {
  sll_tbl : (int, counter) Hashtbl.t;
  ll_tbl : (int, counter) Hashtbl.t;
  cache : cache_counters;
  cov : cov_counters;
}

let key =
  Domain.DLS.new_key (fun () ->
      {
        sll_tbl = Hashtbl.create 64;
        ll_tbl = Hashtbl.create 64;
        cache =
          {
            state_interns = 0;
            trans_hits = 0;
            trans_misses = 0;
            closure_hits = 0;
            closure_misses = 0;
          };
        cov =
          {
            prods = Hashtbl.create 64;
            decisions = Hashtbl.create 16;
            edges = Hashtbl.create 64;
          };
      })

let state () = Domain.DLS.get key

let record tbl x n =
  let c =
    match Hashtbl.find_opt tbl x with
    | Some c -> c
    | None ->
      let c = { calls = 0; tokens = 0 } in
      Hashtbl.add tbl x c;
      c
  in
  c.calls <- c.calls + 1;
  c.tokens <- c.tokens + n

let record_sll x n = if !enabled then record (state ()).sll_tbl x n
let record_ll x n = if !enabled then record (state ()).ll_tbl x n

let record_state_intern () =
  if !enabled then
    let c = (state ()).cache in
    c.state_interns <- c.state_interns + 1

let record_trans_hit () =
  if !enabled then
    let c = (state ()).cache in
    c.trans_hits <- c.trans_hits + 1

let record_trans_miss () =
  if !enabled then
    let c = (state ()).cache in
    c.trans_misses <- c.trans_misses + 1

let record_closure_hit () =
  if !enabled then
    let c = (state ()).cache in
    c.closure_hits <- c.closure_hits + 1

let record_closure_miss () =
  if !enabled then
    let c = (state ()).cache in
    c.closure_misses <- c.closure_misses + 1

(* --- Coverage events ----------------------------------------------------- *)

let bump_n tbl k n =
  match Hashtbl.find_opt tbl k with
  | Some m -> Hashtbl.replace tbl k (m + n)
  | None -> Hashtbl.add tbl k n

let bump tbl k = bump_n tbl k 1

(** A production was committed to by the machine (a push). *)
let record_cov_prod ix = if !cov_enabled then bump (state ()).cov.prods ix

(** A genuine multi-alternative prediction ran for nonterminal [x]. *)
let record_cov_decision x = if !cov_enabled then bump (state ()).cov.decisions x

(** The prediction DFA took edge [sid --a-->] (whether precomputed or
    built on the fly). *)
let record_cov_edge sid a = if !cov_enabled then bump (state ()).cov.edges (sid, a)

(** Snapshots of the calling domain's coverage tallies. *)
let cov_prod_hits () =
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) (state ()).cov.prods []

let cov_decision_hits () =
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) (state ()).cov.decisions []

let cov_edge_hits () =
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) (state ()).cov.edges []

(** Fold another domain's snapshots into association lists (used by the
    batch driver to merge worker tallies before reporting). *)
let merge_hits base extra =
  let tbl = Hashtbl.create (List.length base + List.length extra) in
  List.iter (fun (k, n) -> bump_n tbl k n) base;
  List.iter (fun (k, n) -> bump_n tbl k n) extra;
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl []

(** Reset only the coverage tallies of the calling domain. *)
let cov_reset () =
  let c = (state ()).cov in
  Hashtbl.reset c.prods;
  Hashtbl.reset c.decisions;
  Hashtbl.reset c.edges

(** Reset the calling domain's counters. *)
let reset () =
  let st = state () in
  Hashtbl.reset st.sll_tbl;
  Hashtbl.reset st.ll_tbl;
  st.cache.state_interns <- 0;
  st.cache.trans_hits <- 0;
  st.cache.trans_misses <- 0;
  st.cache.closure_hits <- 0;
  st.cache.closure_misses <- 0

(** Totals for the calling domain: (sll calls, sll lookahead tokens,
    ll calls, ll lookahead). *)
let totals () =
  let st = state () in
  let sum tbl f = Hashtbl.fold (fun _ c acc -> acc + f c) tbl 0 in
  ( sum st.sll_tbl (fun c -> c.calls),
    sum st.sll_tbl (fun c -> c.tokens),
    sum st.ll_tbl (fun c -> c.calls),
    sum st.ll_tbl (fun c -> c.tokens) )

(** A copy of the calling domain's DFA cache counters. *)
let cache_totals () =
  let c = (state ()).cache in
  { c with state_interns = c.state_interns }

(** Sum a list of counter snapshots (e.g. one per worker domain). *)
let sum_cache_counters l =
  List.fold_left
    (fun acc c ->
      {
        state_interns = acc.state_interns + c.state_interns;
        trans_hits = acc.trans_hits + c.trans_hits;
        trans_misses = acc.trans_misses + c.trans_misses;
        closure_hits = acc.closure_hits + c.closure_hits;
        closure_misses = acc.closure_misses + c.closure_misses;
      })
    {
      state_interns = 0;
      trans_hits = 0;
      trans_misses = 0;
      closure_hits = 0;
      closure_misses = 0;
    }
    l

(** Per-nonterminal rows for the calling domain, sorted by lookahead
    volume: (nt, mode, calls, tokens). *)
let report () =
  let st = state () in
  let rows tbl mode =
    Hashtbl.fold (fun x c acc -> (x, mode, c.calls, c.tokens) :: acc) tbl []
  in
  List.sort
    (fun (_, _, _, t1) (_, _, _, t2) -> compare t2 t1)
    (rows st.sll_tbl `Sll @ rows st.ll_tbl `Ll)
