(** LL prediction (paper, §3.4): the slow, precise simulation.

    LL subparsers carry a copy of the parser's full remaining suffix stack,
    so their verdicts are exact with respect to the current machine state:

    - [Unique_pred i]: production [i] is the only right-hand side that may
      lead to a successful parse (Lemma 5.5);
    - [Ambig_pred i]: production [i] completes the remaining input, and so
      does at least one other — the input word is ambiguous;
    - [Reject_pred]: no right-hand side completes the remaining input. *)

open Costar_grammar
open Costar_grammar.Symbols

val closure :
  Grammar.t -> Analysis.t -> Config.ll list -> (Config.ll list, Types.error) result

val move : Analysis.t -> Config.ll list -> terminal -> Config.ll list

(** [init_configs g anl x conts] launches one subparser per right-hand side
    of [x]; [conts] is the parser's remaining suffix stack below the
    decision point (unprocessed symbols only, topmost first), interned into
    [anl]'s frame table. *)
val init_configs :
  Grammar.t -> Analysis.t -> nonterminal -> symbol list list -> Config.ll list

(** [predict g anl x conts tokens] runs exact LL prediction.  A thin
    wrapper over {!predict_word}. *)
val predict :
  Grammar.t ->
  Analysis.t ->
  nonterminal ->
  symbol list list ->
  Token.t list ->
  Types.prediction

(** [predict_word g anl x conts w i] is LL prediction over the array
    cursor the machine runs on: lookahead reads [w.kinds] from [i]. *)
val predict_word :
  Grammar.t ->
  Analysis.t ->
  nonterminal ->
  symbol list list ->
  Word.t ->
  int ->
  Types.prediction

(** Like {!predict_word}, but additionally reports the lookahead depth at
    which the verdict was reached (tokens examined past position [i]). *)
val predict_word_ext :
  Grammar.t ->
  Analysis.t ->
  nonterminal ->
  symbol list list ->
  Word.t ->
  int ->
  Types.prediction * int
