(** Prediction subparser configurations (paper, Fig. 1: [theta = (gamma, Psi)]).

    A configuration carries the index of the candidate right-hand side it was
    launched for ([pred]) and a stack of unprocessed-symbol frames.  SLL
    configurations additionally carry a truncated-stack context marker: when
    the frames are exhausted, the subparser simulates a return to the
    statically computed caller continuations of the context nonterminal
    (paper, §3.5 "stable return" frames), or accepts if end-of-input is
    legal there.

    Frames are {e interned}: [s_frames]/[l_frames] is a {!Frames.spine} — a
    hash-consed stack of frame ids in the grammar's suffix table
    ({!Costar_grammar.Frames}, owned by the grammar's {!Analysis.t}) — so a
    configuration is three machine words and compare/hash are O(1).  The
    pre-interning representation survives as {!Structural.Config}, the
    differential-testing oracle. *)

open Costar_grammar
open Costar_grammar.Symbols

(** Truncated-stack context for SLL subparsers. *)
type sctx =
  | Ctx_nt of nonterminal
      (** Below the frames lies the (unknown) context of this nonterminal:
          popping past it forks to all grammar callers. *)
  | Ctx_accept
      (** Reached by popping through a caller chain that may legally end the
          input: the subparser is in accepting position. *)

type sll = {
  s_pred : int;
  s_frames : Frames.spine;
  s_ctx : sctx;
}

type ll = {
  l_pred : int;
  l_frames : Frames.spine;
}

(** [Ctx_accept] maps below every nonterminal id, preserving the structural
    engine's ordering of contexts relative to nothing in particular — only
    totality matters. *)
let ctx_code = function Ctx_nt x -> x | Ctx_accept -> -1

let compare_sctx c1 c2 = Int.compare (ctx_code c1) (ctx_code c2)

let compare_sll c1 c2 =
  let c = Int.compare c1.s_pred c2.s_pred in
  if c <> 0 then c
  else
    let c = Int.compare c1.s_frames c2.s_frames in
    if c <> 0 then c else compare_sctx c1.s_ctx c2.s_ctx

let compare_ll c1 c2 =
  let c = Int.compare c1.l_pred c2.l_pred in
  if c <> 0 then c else Int.compare c1.l_frames c2.l_frames

let equal_sll c1 c2 =
  c1.s_pred = c2.s_pred
  && c1.s_frames = c2.s_frames
  && ctx_code c1.s_ctx = ctx_code c2.s_ctx

let hash_sll c =
  (((c.s_pred * 0x01000193) lxor (c.s_frames * 0x9e3779b1))
   lxor (ctx_code c.s_ctx * 0x85ebca6b))
  land max_int

(** Hash table over SLL configurations (O(1) all-int hashing, no deep
    structure to traverse). *)
module Sll_tbl = Hashtbl.Make (struct
  type t = sll

  let equal = equal_sll
  let hash = hash_sll
end)

module Sll_set = Set.Make (struct
  type t = sll

  let compare = compare_sll
end)

module Ll_set = Set.Make (struct
  type t = ll

  let compare = compare_ll
end)

(** Distinct predictions carried by a list of configurations, ascending. *)
let preds_of_sll configs =
  List.sort_uniq Int.compare (List.map (fun c -> c.s_pred) configs)

let preds_of_ll configs =
  List.sort_uniq Int.compare (List.map (fun c -> c.l_pred) configs)

(** Decode a configuration's frames back to symbol lists (diagnostics and
    persistence; never on the prediction hot path). *)
let sll_frames fr (c : sll) = Frames.frames_of_spine fr c.s_frames

let ll_frames fr (c : ll) = Frames.frames_of_spine fr c.l_frames
