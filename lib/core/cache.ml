open Costar_grammar
open Costar_grammar.Symbols

type state_id = int

type verdict =
  | V_empty
  | V_all_pred of int
  | V_pending

type info = {
  configs : Config.sll list;
  verdict : verdict;
  accepting : int list;
  (* Preboxed verdicts for the warm prediction fast path, so deciding a
     state allocates nothing: [decided_pred] is the prediction when
     [verdict] is [V_all_pred] (a shared [Unique_pred] box), [eof_pred] the
     prediction when input ends in this state. *)
  decided_pred : Types.prediction;
  eof_pred : Types.prediction;
}

(* State keys: the sorted array of the member configurations' dense ids,
   hashed over its full length (the generic hash would inspect only a
   prefix). *)
module Key_tbl = Hashtbl.Make (struct
  type t = int array

  let equal a b =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec eq i = i >= n || (a.(i) = b.(i) && eq (i + 1)) in
    eq 0

  let hash a =
    let h = ref (Array.length a) in
    Array.iter (fun x -> h := (!h * 31) + x + 1) a;
    !h land max_int
end)

let no_row : int array = [||]
let dummy_info =
  {
    configs = [];
    verdict = V_empty;
    accepting = [];
    decided_pred = Types.Reject_pred;
    eof_pred = Types.Reject_pred;
  }
let dummy_cfg = { Config.s_pred = -1; s_frames = Frames.nil; s_ctx = Ctx_accept }

type closure_result = (Config.sll list * bool, Types.error) result

type t = {
  (* The analysis this cache was created against.  Configurations are
     expressed in its [Frames] interner, whose spine ids depend on runtime
     interning order — so a cache must only ever be consulted through this
     exact analysis, never through another [Analysis.make] of the same
     grammar.  Consumers holding a foreign cache (the machine, the static
     analyzer) read the analysis back from here. *)
  anl : Analysis.t;
  frames : Frames.t;
  n_terms : int;
  (* One shared [Unique_pred ix] box per production, so the warm path and
     single-alternative decisions never re-allocate their verdict. *)
  uniq : Types.prediction array;
  (* Two-level layering for parallel batch parsing: an overlay cache holds a
     [base] — a frozen snapshot that is never mutated again and is therefore
     safe to consult from many domains without locks — and records only the
     entries discovered past it.  Id spaces are global: config ids below
     [base_cfgs] and state ids below [base_states] belong to the base;
     [cfgs]/[keys]/[infos] are indexed by [id - base_*], while [closures]
     and [trans] are global-indexed so an overlay can attach a closure memo
     or transition row to a base-range id it does not own.  A plain cache is
     the degenerate overlay: [base = None], both offsets 0. *)
  base : t option;
  base_cfgs : int;
  base_states : int;
  (* dense ids for configurations; [closures] is the per-configuration
     closure memo, indexed by (global) config id *)
  cfg_ids : int Config.Sll_tbl.t;
  mutable cfgs : Config.sll array;
  mutable closures : closure_result option array;
  mutable n_cfgs : int;
  (* DFA states: interned sorted-config-id keys, info per state, and a
     lazily allocated terminal-indexed transition row per state *)
  state_ids : state_id Key_tbl.t;
  mutable keys : int array array;
  mutable infos : info array;
  mutable trans : int array array;
  mutable n_states : int;
  mutable n_trans : int; (* transitions added at THIS layer *)
  inits : int array; (* nonterminal -> initial state id, or -1 *)
}

let create anl =
  let g = Analysis.grammar anl in
  {
    anl;
    frames = Analysis.frames anl;
    n_terms = Grammar.num_terminals g;
    uniq =
      Array.init
        (Array.length (Grammar.prods g))
        (fun ix -> Types.Unique_pred ix);
    base = None;
    base_cfgs = 0;
    base_states = 0;
    cfg_ids = Config.Sll_tbl.create 256;
    cfgs = Array.make 256 dummy_cfg;
    closures = Array.make 256 None;
    n_cfgs = 0;
    state_ids = Key_tbl.create 64;
    keys = Array.make 64 no_row;
    infos = Array.make 64 dummy_info;
    trans = Array.make 64 no_row;
    n_states = 0;
    n_trans = 0;
    inits = Array.make (max 1 (Grammar.num_nonterminals g)) (-1);
  }

let frames c = c.frames
let analysis c = c.anl
let num_states c = c.n_states

let rec num_transitions c =
  c.n_trans + match c.base with None -> 0 | Some b -> num_transitions b

let num_configs c = c.n_cfgs

let grow arr count fill =
  if count < Array.length arr then arr
  else begin
    let bigger = Array.make (2 * max 1 (Array.length arr)) fill in
    Array.blit arr 0 bigger 0 (Array.length arr);
    bigger
  end

let config_id c cfg =
  match Config.Sll_tbl.find_opt c.cfg_ids cfg with
  | Some id -> id
  | None -> (
    let in_base =
      match c.base with
      | None -> None
      | Some b -> Config.Sll_tbl.find_opt b.cfg_ids cfg
    in
    match in_base with
    | Some id -> id
    | None ->
      let id = c.n_cfgs in
      let off = id - c.base_cfgs in
      c.cfgs <- grow c.cfgs off dummy_cfg;
      c.closures <- grow c.closures id None;
      c.cfgs.(off) <- cfg;
      Config.Sll_tbl.add c.cfg_ids cfg id;
      c.n_cfgs <- id + 1;
      id)

let cfg_of_id c id =
  if id < c.base_cfgs then
    match c.base with
    | Some b -> b.cfgs.(id)
    | None -> assert false
  else c.cfgs.(id - c.base_cfgs)

(* The closure memo for a global config id, consulting the overlay layer
   first (it may shadow a base-range id the base never computed). *)
let closure_of_id c id =
  match if id < Array.length c.closures then c.closures.(id) else None with
  | Some _ as r -> r
  | None -> (
    match c.base with
    | Some b when id < c.base_cfgs -> b.closures.(id)
    | _ -> None)

(* Raw variants for the warm prediction fast path: no option/box per call. *)
let rec init_get c x =
  let s = c.inits.(x) in
  if s >= 0 then s
  else
    match c.base with
    | Some b -> init_get b x
    | None -> -1

let find_init c x =
  let s = init_get c x in
  if s < 0 then None else Some s

let unique_pred c ix = c.uniq.(ix)

let add_init c x sid =
  c.inits.(x) <- sid;
  c

let is_accepting (cfg : Config.sll) =
  match cfg.s_ctx with
  | Config.Ctx_accept -> Frames.spine_is_nil cfg.s_frames
  | Config.Ctx_nt _ -> false

let compute_info uniq configs =
  let verdict =
    match Config.preds_of_sll configs with
    | [] -> V_empty
    | [ p ] -> V_all_pred p
    | _ -> V_pending
  in
  let accepting = Config.preds_of_sll (List.filter is_accepting configs) in
  let decided_pred =
    match verdict with
    | V_all_pred p -> uniq.(p)
    | V_empty | V_pending -> Types.Reject_pred
  in
  let eof_pred =
    match accepting with
    | [] -> Types.Reject_pred
    | [ p ] -> uniq.(p)
    | p :: _ -> Types.Ambig_pred p
  in
  { configs; verdict; accepting; decided_pred; eof_pred }

let intern c configs =
  let key = Array.of_list (List.map (config_id c) configs) in
  Array.sort (fun (a : int) b -> compare a b) key;
  let known =
    match Key_tbl.find_opt c.state_ids key with
    | Some _ as sid -> sid
    | None -> (
      match c.base with
      | None -> None
      | Some b -> Key_tbl.find_opt b.state_ids key)
  in
  match known with
  | Some sid -> (c, sid)
  | None ->
    let sid = c.n_states in
    let off = sid - c.base_states in
    c.keys <- grow c.keys off no_row;
    c.infos <- grow c.infos off dummy_info;
    c.trans <- grow c.trans sid no_row;
    c.keys.(off) <- key;
    c.infos.(off) <- compute_info c.uniq configs;
    Key_tbl.add c.state_ids key sid;
    c.n_states <- sid + 1;
    Instr.record_state_intern ();
    (c, sid)

let rec info c sid =
  if sid < 0 || sid >= c.n_states then
    invalid_arg "Cache.info: unknown state id"
  else if sid < c.base_states then
    match c.base with
    | Some b -> info b sid
    | None -> assert false
  else c.infos.(sid - c.base_states)

(* The warm-path transition read: -1 when absent.  [find_trans] wraps it in
   an option for ordinary callers.  An overlay row, once created, shadows
   the whole base row for its state (copy-on-write in [add_trans]), so the
   fallthrough fires only while a state has no overlay row at all. *)
let rec trans_get c sid a =
  let row = Array.unsafe_get c.trans sid in
  if row != no_row then Array.unsafe_get row a
  else
    match c.base with
    | Some b when sid < c.base_states -> trans_get b sid a
    | _ -> -1

let find_trans c sid a =
  let s = trans_get c sid a in
  if s < 0 then None else Some s

let add_trans c sid a sid' =
  let row =
    let row = c.trans.(sid) in
    if row != no_row then row
    else begin
      let row =
        match c.base with
        | Some b when sid < c.base_states ->
          (* Copy-on-write: seed the overlay row from the (immutable) base
             row so it fully shadows it for reads. *)
          let brow = b.trans.(sid) in
          if brow == no_row then Array.make (max 1 c.n_terms) (-1)
          else Array.copy brow
        | _ -> Array.make (max 1 c.n_terms) (-1)
      in
      c.trans.(sid) <- row;
      row
    end
  in
  (* Idempotent: re-adding an existing transition (e.g. [prepare ~deep]
     overlapping a later parse of the same state) must not double-count. *)
  if row.(a) < 0 then begin
    row.(a) <- sid';
    c.n_trans <- c.n_trans + 1
  end;
  c

let find_closure c cfg =
  let id =
    match Config.Sll_tbl.find_opt c.cfg_ids cfg with
    | Some _ as id -> id
    | None -> (
      match c.base with
      | None -> None
      | Some b -> Config.Sll_tbl.find_opt b.cfg_ids cfg)
  in
  match id with
  | None -> None
  | Some id -> closure_of_id c id

let add_closure c cfg result =
  let id = config_id c cfg in
  c.closures <- grow c.closures id None;
  c.closures.(id) <- Some result;
  c

(* An independent cache seeded with this one's contents: subsequent
   additions to either copy do not affect the other.  State/config ids are
   preserved.  (Info records and key arrays are immutable once written and
   are shared; transition rows are mutable and are duplicated.  An
   overlay's base is immutable by construction and stays shared.) *)
let copy c =
  {
    c with
    cfg_ids = Config.Sll_tbl.copy c.cfg_ids;
    cfgs = Array.copy c.cfgs;
    closures = Array.copy c.closures;
    state_ids = Key_tbl.copy c.state_ids;
    keys = Array.copy c.keys;
    infos = Array.copy c.infos;
    trans =
      Array.map (fun row -> if row == no_row then row else Array.copy row) c.trans;
    inits = Array.copy c.inits;
  }

(* {2 Freezing and overlays}

   [freeze] snapshots a plain cache into a value that is never mutated
   again; under the OCaml memory model, data that is published before
   [Domain.spawn] and never written afterwards can be read from any number
   of domains without synchronization, so one frozen snapshot serves a
   whole worker pool.  Each worker consults the snapshot through its own
   [overlay] — an ordinary [t] whose misses extend a private layer — and
   the layers are merged back into a master cache with [absorb] between
   rounds, so warm-up compounds.

   [absorb] is deliberately value-level: it re-interns the source's config
   lists into the destination rather than assuming compatible state
   numbering.  Config values ([s_pred], [s_frames], [s_ctx]) are meaningful
   process-wide because every cache of one analysis shares the same
   {!Costar_grammar.Frames} interner, so this is exact, and it makes
   [absorb] idempotent and content-level order-independent. *)

type frozen = t

let freeze c =
  match c.base with
  | Some _ -> invalid_arg "Cache.freeze: cannot freeze an overlay"
  | None -> copy c

let frozen_num_states (fz : frozen) = fz.n_states
let frozen_num_transitions (fz : frozen) = num_transitions fz

let overlay (fz : frozen) =
  {
    anl = fz.anl;
    frames = fz.frames;
    n_terms = fz.n_terms;
    uniq = fz.uniq;
    base = Some fz;
    base_cfgs = fz.n_cfgs;
    base_states = fz.n_states;
    cfg_ids = Config.Sll_tbl.create 64;
    cfgs = Array.make 64 dummy_cfg;
    closures = Array.make (fz.n_cfgs + 64) None;
    n_cfgs = fz.n_cfgs;
    state_ids = Key_tbl.create 64;
    keys = Array.make 64 no_row;
    infos = Array.make 64 dummy_info;
    trans = Array.make (fz.n_states + 64) no_row;
    n_states = fz.n_states;
    n_trans = 0;
    inits = Array.make (Array.length fz.inits) (-1);
  }

let overlay_new_states c = c.n_states - c.base_states

let absorb dst src =
  if dst == src then dst
  else begin
    (* src state id -> dst state id, by re-interning config values. *)
    let map = Hashtbl.create 64 in
    let map_sid sid =
      match Hashtbl.find_opt map sid with
      | Some d -> d
      | None ->
        let _, d = intern dst (info src sid).configs in
        Hashtbl.add map sid d;
        d
    in
    (* Replay every transition materialized at src's own layer.  Rows for
       base-range states were seeded from the base row (copy-on-write), so
       some replayed entries are base facts the destination already has —
       harmless, [add_trans] is idempotent. *)
    for sid = 0 to src.n_states - 1 do
      let row = src.trans.(sid) in
      if row != no_row then
        for a = 0 to Array.length row - 1 do
          let s' = row.(a) in
          if s' >= 0 then ignore (add_trans dst (map_sid sid) a (map_sid s'))
        done
    done;
    Array.iteri
      (fun x s ->
        if s >= 0 && init_get dst x < 0 then ignore (add_init dst x (map_sid s)))
      src.inits;
    (* Closure memos recorded at src's layer.  Results are config values,
       valid verbatim in dst (shared frames interner); recomputation is
       deterministic, so overwriting an existing entry rewrites it with an
       equal value. *)
    for id = 0 to src.n_cfgs - 1 do
      if id < Array.length src.closures then
        match src.closures.(id) with
        | None -> ()
        | Some r -> ignore (add_closure dst (cfg_of_id src id) r)
    done;
    dst
  end

(* Persistence.

   The on-disk format is a plain-text header — magic line, format version,
   grammar fingerprint, suffix-table digest — followed by a marshalled
   {e decoded} dump: configurations are stored with their frames expanded
   back to symbol lists, because interner ids are a per-process artifact.
   Loading re-interns states in state-id order against the target
   analysis's own suffix table, reproducing identical ids.  The header is
   validated *before* any unmarshalling happens, so a wrong file (or a
   cache built for a different grammar or by an incompatible build) is
   rejected without ever feeding untrusted bytes to [Marshal]. *)

type portable_config = {
  p_pred : int;
  p_frames : symbol list list;
  p_ctx : Config.sctx;
}

type portable = {
  p_states : portable_config list array; (* state id -> configurations *)
  p_trans : (int * int * int) list; (* (sid, terminal, sid') *)
  p_inits : (int * int) list; (* (nonterminal, sid) *)
  p_closures :
    (portable_config * (portable_config list * bool, Types.error) result) list;
}

let magic = "costar/sll-dfa"
let format_version = 2

let decode_config c (cfg : Config.sll) =
  {
    p_pred = cfg.s_pred;
    p_frames = Frames.frames_of_spine c.frames cfg.s_frames;
    p_ctx = cfg.s_ctx;
  }

let encode_config c p =
  {
    Config.s_pred = p.p_pred;
    s_frames = Frames.spine_of_frames c.frames p.p_frames;
    s_ctx = p.p_ctx;
  }

let to_portable c =
  let p_states =
    Array.init c.n_states (fun sid ->
        List.map (decode_config c) (info c sid).configs)
  in
  let p_trans = ref [] in
  for sid = c.n_states - 1 downto 0 do
    for a = c.n_terms - 1 downto 0 do
      let s = trans_get c sid a in
      if s >= 0 then p_trans := (sid, a, s) :: !p_trans
    done
  done;
  let p_inits = ref [] in
  for x = Array.length c.inits - 1 downto 0 do
    if init_get c x >= 0 then p_inits := (x, init_get c x) :: !p_inits
  done;
  let p_closures = ref [] in
  for id = c.n_cfgs - 1 downto 0 do
    match closure_of_id c id with
    | None -> ()
    | Some r ->
      let r' =
        Result.map
          (fun (stable, forked) -> (List.map (decode_config c) stable, forked))
          r
      in
      p_closures := (decode_config c (cfg_of_id c id), r') :: !p_closures
  done;
  {
    p_states;
    p_trans = !p_trans;
    p_inits = !p_inits;
    p_closures = !p_closures;
  }

let of_portable anl p =
  let c = create anl in
  Array.iteri
    (fun expected_sid pcfgs ->
      let configs = List.map (encode_config c) pcfgs in
      let _, sid = intern c configs in
      if sid <> expected_sid then
        invalid_arg "Cache.of_portable: inconsistent state numbering")
    p.p_states;
  List.iter (fun (sid, a, sid') -> ignore (add_trans c sid a sid')) p.p_trans;
  List.iter (fun (x, sid) -> ignore (add_init c x sid)) p.p_inits;
  List.iter
    (fun (pcfg, r) ->
      let r' =
        Result.map
          (fun (stable, forked) -> (List.map (encode_config c) stable, forked))
          r
      in
      ignore (add_closure c (encode_config c pcfg) r'))
    p.p_closures;
  c

let precompile ~fingerprint c =
  Printf.sprintf "%s\n%d\n%s\n%s\n%s" magic format_version fingerprint
    (Frames.fingerprint c.frames)
    (Marshal.to_string (to_portable c) [])

let of_precompiled ~anl ~fingerprint s =
  let next_line pos =
    match String.index_from_opt s pos '\n' with
    | None -> None
    | Some i -> Some (String.sub s pos (i - pos), i + 1)
  in
  match next_line 0 with
  | Some (m, p1) when m = magic -> (
    match next_line p1 with
    | None -> Error "corrupt prediction cache (missing format version)"
    | Some (v, p2) -> (
      if v <> string_of_int format_version then
        Error
          (Printf.sprintf
             "unsupported prediction-cache format version %s (this build \
              reads version %d); regenerate it with `costar analyze \
              --emit-cache`"
             v format_version)
      else
        match next_line p2 with
        | None -> Error "corrupt prediction cache (missing fingerprint)"
        | Some (fp, p3) -> (
          if fp <> fingerprint then
            Error
              "prediction cache was built for a different grammar \
               (fingerprint mismatch); regenerate it with `costar analyze \
               --emit-cache`"
          else
            match next_line p3 with
            | None -> Error "corrupt prediction cache (missing suffix-table digest)"
            | Some (fd, p4) ->
              if fd <> Frames.fingerprint (Analysis.frames anl) then
                Error
                  "prediction cache was built against a different suffix \
                   table (incompatible build); regenerate it with `costar \
                   analyze --emit-cache`"
              else (
                match (Marshal.from_string s p4 : portable) with
                | exception _ ->
                  Error
                    "corrupt prediction cache (truncated or damaged payload)"
                | p -> (
                  (* The payload unmarshalled but may still be structurally
                     bogus (fuzzed or bit-rotted dump): rebuilding can then
                     fail anywhere inside re-interning, so no exception at
                     all may escape as anything but a typed error. *)
                  match of_portable anl p with
                  | exception Invalid_argument msg -> Error msg
                  | exception e ->
                    Error
                      (Printf.sprintf
                         "corrupt prediction cache (damaged payload: %s)"
                         (Printexc.to_string e))
                  | c -> Ok c)))))
  | _ -> Error "not a costar prediction cache (bad magic)"

let save_precompiled ~fingerprint c file =
  let oc = open_out_bin file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (precompile ~fingerprint c))

let load_precompiled ~anl ~fingerprint file =
  match open_in_bin file with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | exception _ -> Error (file ^ ": unreadable prediction cache")
        | s -> of_precompiled ~anl ~fingerprint s)
