open Costar_grammar.Symbols

type state_id = int

type verdict =
  | V_empty
  | V_all_pred of int
  | V_pending

type info = {
  configs : Config.sll list;
  verdict : verdict;
  accepting : int list;
}

module Key = struct
  type t = Config.sll list

  let rec compare l1 l2 =
    match l1, l2 with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | c1 :: r1, c2 :: r2 ->
      let c = Config.compare_sll c1 c2 in
      if c <> 0 then c else compare r1 r2
end

module Key_map = Map.Make (Key)
module Int_map' = Map.Make (Int)

module Trans_key = struct
  type t = state_id * terminal

  let compare (s1, a1) (s2, a2) =
    let c = Int.compare s1 s2 in
    if c <> 0 then c else Int.compare a1 a2
end

module Trans_map = Map.Make (Trans_key)

module Cfg_map = Map.Make (struct
  type t = Config.sll

  let compare = Config.compare_sll
end)

type t = {
  ids : state_id Key_map.t;
  infos : info Int_map'.t;
  trans : state_id Trans_map.t;
  inits : state_id Int_map'.t;
  closures : (Config.sll list * bool, Types.error) result Cfg_map.t;
  next : int;
  n_trans : int;
}

let empty =
  {
    ids = Key_map.empty;
    infos = Int_map'.empty;
    trans = Trans_map.empty;
    inits = Int_map'.empty;
    closures = Cfg_map.empty;
    next = 0;
    n_trans = 0;
  }

let num_states c = c.next
let num_transitions c = c.n_trans

let find_init c x = Int_map'.find_opt x c.inits
let add_init c x sid = { c with inits = Int_map'.add x sid c.inits }

let is_accepting (cfg : Config.sll) =
  match cfg.s_ctx, cfg.s_frames with Config.Ctx_accept, [] -> true | _ -> false

let compute_info configs =
  let verdict =
    match Config.preds_of_sll configs with
    | [] -> V_empty
    | [ p ] -> V_all_pred p
    | _ -> V_pending
  in
  let accepting =
    Config.preds_of_sll (List.filter is_accepting configs)
  in
  { configs; verdict; accepting }

let intern c configs =
  match Key_map.find_opt configs c.ids with
  | Some sid -> (c, sid)
  | None ->
    let sid = c.next in
    let info = compute_info configs in
    ( {
        c with
        ids = Key_map.add configs sid c.ids;
        infos = Int_map'.add sid info c.infos;
        next = sid + 1;
      },
      sid )

let info c sid =
  match Int_map'.find_opt sid c.infos with
  | Some i -> i
  | None -> invalid_arg "Cache.info: unknown state id"

let find_trans c sid a = Trans_map.find_opt (sid, a) c.trans

let find_closure c cfg = Cfg_map.find_opt cfg c.closures

let add_closure c cfg result =
  { c with closures = Cfg_map.add cfg result c.closures }

let add_trans c sid a sid' =
  { c with trans = Trans_map.add (sid, a) sid' c.trans; n_trans = c.n_trans + 1 }

(* Persistence.

   The on-disk format is a plain-text header — magic line, format version,
   grammar fingerprint — followed by the marshalled cache value.  The header
   is validated *before* any unmarshalling happens, so a wrong file (or a
   cache built for a different grammar or by an incompatible build) is
   rejected without ever feeding untrusted bytes to [Marshal]. *)

let magic = "costar/sll-dfa"
let format_version = 1

let precompile ~fingerprint c =
  Printf.sprintf "%s\n%d\n%s\n%s" magic format_version fingerprint
    (Marshal.to_string c [])

let of_precompiled ~fingerprint s =
  let next_line pos =
    match String.index_from_opt s pos '\n' with
    | None -> None
    | Some i -> Some (String.sub s pos (i - pos), i + 1)
  in
  match next_line 0 with
  | Some (m, p1) when m = magic -> (
    match next_line p1 with
    | None -> Error "corrupt prediction cache (missing format version)"
    | Some (v, p2) -> (
      if v <> string_of_int format_version then
        Error
          (Printf.sprintf
             "unsupported prediction-cache format version %s (this build \
              reads version %d)"
             v format_version)
      else
        match next_line p2 with
        | None -> Error "corrupt prediction cache (missing fingerprint)"
        | Some (fp, p3) ->
          if fp <> fingerprint then
            Error
              "prediction cache was built for a different grammar \
               (fingerprint mismatch); regenerate it with `costar analyze \
               --emit-cache`"
          else (
            match (Marshal.from_string s p3 : t) with
            | exception _ ->
              Error "corrupt prediction cache (truncated or damaged payload)"
            | c -> Ok c)))
  | _ -> Error "not a costar prediction cache (bad magic)"

let save_precompiled ~fingerprint c file =
  let oc = open_out_bin file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (precompile ~fingerprint c))

let load_precompiled ~fingerprint file =
  match open_in_bin file with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | exception _ -> Error (file ^ ": unreadable prediction cache")
        | s -> of_precompiled ~fingerprint s)
