open Costar_grammar
open Costar_grammar.Symbols

type state_id = int

type verdict =
  | V_empty
  | V_all_pred of int
  | V_pending

type info = {
  configs : Config.sll list;
  verdict : verdict;
  accepting : int list;
  (* Preboxed verdicts for the warm prediction fast path, so deciding a
     state allocates nothing: [decided_pred] is the prediction when
     [verdict] is [V_all_pred] (a shared [Unique_pred] box), [eof_pred] the
     prediction when input ends in this state. *)
  decided_pred : Types.prediction;
  eof_pred : Types.prediction;
}

(* State keys: the sorted array of the member configurations' dense ids,
   hashed over its full length (the generic hash would inspect only a
   prefix). *)
module Key_tbl = Hashtbl.Make (struct
  type t = int array

  let equal a b =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec eq i = i >= n || (a.(i) = b.(i) && eq (i + 1)) in
    eq 0

  let hash a =
    let h = ref (Array.length a) in
    Array.iter (fun x -> h := (!h * 31) + x + 1) a;
    !h land max_int
end)

let no_row : int array = [||]
let dummy_info =
  {
    configs = [];
    verdict = V_empty;
    accepting = [];
    decided_pred = Types.Reject_pred;
    eof_pred = Types.Reject_pred;
  }
let dummy_cfg = { Config.s_pred = -1; s_frames = Frames.nil; s_ctx = Ctx_accept }

type closure_result = (Config.sll list * bool, Types.error) result

type t = {
  (* The analysis this cache was created against.  Configurations are
     expressed in its [Frames] interner, whose spine ids depend on runtime
     interning order — so a cache must only ever be consulted through this
     exact analysis, never through another [Analysis.make] of the same
     grammar.  Consumers holding a foreign cache (the machine, the static
     analyzer) read the analysis back from here. *)
  anl : Analysis.t;
  frames : Frames.t;
  n_terms : int;
  (* One shared [Unique_pred ix] box per production, so the warm path and
     single-alternative decisions never re-allocate their verdict. *)
  uniq : Types.prediction array;
  (* dense ids for configurations; [closures] is the per-configuration
     closure memo, indexed by config id *)
  cfg_ids : int Config.Sll_tbl.t;
  mutable cfgs : Config.sll array;
  mutable closures : closure_result option array;
  mutable n_cfgs : int;
  (* DFA states: interned sorted-config-id keys, info per state, and a
     lazily allocated terminal-indexed transition row per state *)
  state_ids : state_id Key_tbl.t;
  mutable keys : int array array;
  mutable infos : info array;
  mutable trans : int array array;
  mutable n_states : int;
  mutable n_trans : int;
  inits : int array; (* nonterminal -> initial state id, or -1 *)
}

let create anl =
  let g = Analysis.grammar anl in
  {
    anl;
    frames = Analysis.frames anl;
    n_terms = Grammar.num_terminals g;
    uniq =
      Array.init
        (Array.length (Grammar.prods g))
        (fun ix -> Types.Unique_pred ix);
    cfg_ids = Config.Sll_tbl.create 256;
    cfgs = Array.make 256 dummy_cfg;
    closures = Array.make 256 None;
    n_cfgs = 0;
    state_ids = Key_tbl.create 64;
    keys = Array.make 64 no_row;
    infos = Array.make 64 dummy_info;
    trans = Array.make 64 no_row;
    n_states = 0;
    n_trans = 0;
    inits = Array.make (max 1 (Grammar.num_nonterminals g)) (-1);
  }

let frames c = c.frames
let analysis c = c.anl
let num_states c = c.n_states
let num_transitions c = c.n_trans
let num_configs c = c.n_cfgs

let grow arr count fill =
  if count < Array.length arr then arr
  else begin
    let bigger = Array.make (2 * max 1 (Array.length arr)) fill in
    Array.blit arr 0 bigger 0 (Array.length arr);
    bigger
  end

let config_id c cfg =
  match Config.Sll_tbl.find_opt c.cfg_ids cfg with
  | Some id -> id
  | None ->
    let id = c.n_cfgs in
    c.cfgs <- grow c.cfgs id dummy_cfg;
    c.closures <- grow c.closures id None;
    c.cfgs.(id) <- cfg;
    Config.Sll_tbl.add c.cfg_ids cfg id;
    c.n_cfgs <- id + 1;
    id

let find_init c x = if c.inits.(x) < 0 then None else Some c.inits.(x)

(* Raw variants for the warm prediction fast path: no option/box per call. *)
let init_get c x = c.inits.(x)
let unique_pred c ix = c.uniq.(ix)

let add_init c x sid =
  c.inits.(x) <- sid;
  c

let is_accepting (cfg : Config.sll) =
  match cfg.s_ctx with
  | Config.Ctx_accept -> Frames.spine_is_nil cfg.s_frames
  | Config.Ctx_nt _ -> false

let compute_info uniq configs =
  let verdict =
    match Config.preds_of_sll configs with
    | [] -> V_empty
    | [ p ] -> V_all_pred p
    | _ -> V_pending
  in
  let accepting = Config.preds_of_sll (List.filter is_accepting configs) in
  let decided_pred =
    match verdict with
    | V_all_pred p -> uniq.(p)
    | V_empty | V_pending -> Types.Reject_pred
  in
  let eof_pred =
    match accepting with
    | [] -> Types.Reject_pred
    | [ p ] -> uniq.(p)
    | p :: _ -> Types.Ambig_pred p
  in
  { configs; verdict; accepting; decided_pred; eof_pred }

let intern c configs =
  let key = Array.of_list (List.map (config_id c) configs) in
  Array.sort (fun (a : int) b -> compare a b) key;
  match Key_tbl.find_opt c.state_ids key with
  | Some sid -> (c, sid)
  | None ->
    let sid = c.n_states in
    c.keys <- grow c.keys sid no_row;
    c.infos <- grow c.infos sid dummy_info;
    c.trans <- grow c.trans sid no_row;
    c.keys.(sid) <- key;
    c.infos.(sid) <- compute_info c.uniq configs;
    Key_tbl.add c.state_ids key sid;
    c.n_states <- sid + 1;
    Instr.record_state_intern ();
    (c, sid)

let info c sid =
  if sid < 0 || sid >= c.n_states then
    invalid_arg "Cache.info: unknown state id"
  else c.infos.(sid)

(* The warm-path transition read: -1 when absent.  [find_trans] wraps it in
   an option for ordinary callers. *)
let trans_get c sid a =
  let row = Array.unsafe_get c.trans sid in
  if row == no_row then -1 else Array.unsafe_get row a

let find_trans c sid a =
  let s = trans_get c sid a in
  if s < 0 then None else Some s

let add_trans c sid a sid' =
  let row =
    let row = c.trans.(sid) in
    if row != no_row then row
    else begin
      let row = Array.make (max 1 c.n_terms) (-1) in
      c.trans.(sid) <- row;
      row
    end
  in
  (* Idempotent: re-adding an existing transition (e.g. [prepare ~deep]
     overlapping a later parse of the same state) must not double-count. *)
  if row.(a) < 0 then begin
    row.(a) <- sid';
    c.n_trans <- c.n_trans + 1
  end;
  c

let find_closure c cfg =
  match Config.Sll_tbl.find_opt c.cfg_ids cfg with
  | None -> None
  | Some id -> c.closures.(id)

let add_closure c cfg result =
  c.closures.(config_id c cfg) <- Some result;
  c

(* An independent cache seeded with this one's contents: subsequent
   additions to either copy do not affect the other.  State/config ids are
   preserved.  (Info records and key arrays are immutable once written and
   are shared; transition rows are mutable and are duplicated.) *)
let copy c =
  {
    c with
    cfg_ids = Config.Sll_tbl.copy c.cfg_ids;
    cfgs = Array.copy c.cfgs;
    closures = Array.copy c.closures;
    state_ids = Key_tbl.copy c.state_ids;
    keys = Array.copy c.keys;
    infos = Array.copy c.infos;
    trans =
      Array.map (fun row -> if row == no_row then row else Array.copy row) c.trans;
    inits = Array.copy c.inits;
  }

(* Persistence.

   The on-disk format is a plain-text header — magic line, format version,
   grammar fingerprint, suffix-table digest — followed by a marshalled
   {e decoded} dump: configurations are stored with their frames expanded
   back to symbol lists, because interner ids are a per-process artifact.
   Loading re-interns states in state-id order against the target
   analysis's own suffix table, reproducing identical ids.  The header is
   validated *before* any unmarshalling happens, so a wrong file (or a
   cache built for a different grammar or by an incompatible build) is
   rejected without ever feeding untrusted bytes to [Marshal]. *)

type portable_config = {
  p_pred : int;
  p_frames : symbol list list;
  p_ctx : Config.sctx;
}

type portable = {
  p_states : portable_config list array; (* state id -> configurations *)
  p_trans : (int * int * int) list; (* (sid, terminal, sid') *)
  p_inits : (int * int) list; (* (nonterminal, sid) *)
  p_closures :
    (portable_config * (portable_config list * bool, Types.error) result) list;
}

let magic = "costar/sll-dfa"
let format_version = 2

let decode_config c (cfg : Config.sll) =
  {
    p_pred = cfg.s_pred;
    p_frames = Frames.frames_of_spine c.frames cfg.s_frames;
    p_ctx = cfg.s_ctx;
  }

let encode_config c p =
  {
    Config.s_pred = p.p_pred;
    s_frames = Frames.spine_of_frames c.frames p.p_frames;
    s_ctx = p.p_ctx;
  }

let to_portable c =
  let p_states =
    Array.init c.n_states (fun sid ->
        List.map (decode_config c) c.infos.(sid).configs)
  in
  let p_trans = ref [] in
  for sid = c.n_states - 1 downto 0 do
    let row = c.trans.(sid) in
    if row != no_row then
      for a = Array.length row - 1 downto 0 do
        if row.(a) >= 0 then p_trans := (sid, a, row.(a)) :: !p_trans
      done
  done;
  let p_inits = ref [] in
  for x = Array.length c.inits - 1 downto 0 do
    if c.inits.(x) >= 0 then p_inits := (x, c.inits.(x)) :: !p_inits
  done;
  let p_closures = ref [] in
  for id = c.n_cfgs - 1 downto 0 do
    match c.closures.(id) with
    | None -> ()
    | Some r ->
      let r' =
        Result.map
          (fun (stable, forked) -> (List.map (decode_config c) stable, forked))
          r
      in
      p_closures := (decode_config c c.cfgs.(id), r') :: !p_closures
  done;
  {
    p_states;
    p_trans = !p_trans;
    p_inits = !p_inits;
    p_closures = !p_closures;
  }

let of_portable anl p =
  let c = create anl in
  Array.iteri
    (fun expected_sid pcfgs ->
      let configs = List.map (encode_config c) pcfgs in
      let _, sid = intern c configs in
      if sid <> expected_sid then
        invalid_arg "Cache.of_portable: inconsistent state numbering")
    p.p_states;
  List.iter (fun (sid, a, sid') -> ignore (add_trans c sid a sid')) p.p_trans;
  List.iter (fun (x, sid) -> ignore (add_init c x sid)) p.p_inits;
  List.iter
    (fun (pcfg, r) ->
      let r' =
        Result.map
          (fun (stable, forked) -> (List.map (encode_config c) stable, forked))
          r
      in
      ignore (add_closure c (encode_config c pcfg) r'))
    p.p_closures;
  c

let precompile ~fingerprint c =
  Printf.sprintf "%s\n%d\n%s\n%s\n%s" magic format_version fingerprint
    (Frames.fingerprint c.frames)
    (Marshal.to_string (to_portable c) [])

let of_precompiled ~anl ~fingerprint s =
  let next_line pos =
    match String.index_from_opt s pos '\n' with
    | None -> None
    | Some i -> Some (String.sub s pos (i - pos), i + 1)
  in
  match next_line 0 with
  | Some (m, p1) when m = magic -> (
    match next_line p1 with
    | None -> Error "corrupt prediction cache (missing format version)"
    | Some (v, p2) -> (
      if v <> string_of_int format_version then
        Error
          (Printf.sprintf
             "unsupported prediction-cache format version %s (this build \
              reads version %d); regenerate it with `costar analyze \
              --emit-cache`"
             v format_version)
      else
        match next_line p2 with
        | None -> Error "corrupt prediction cache (missing fingerprint)"
        | Some (fp, p3) -> (
          if fp <> fingerprint then
            Error
              "prediction cache was built for a different grammar \
               (fingerprint mismatch); regenerate it with `costar analyze \
               --emit-cache`"
          else
            match next_line p3 with
            | None -> Error "corrupt prediction cache (missing suffix-table digest)"
            | Some (fd, p4) ->
              if fd <> Frames.fingerprint (Analysis.frames anl) then
                Error
                  "prediction cache was built against a different suffix \
                   table (incompatible build); regenerate it with `costar \
                   analyze --emit-cache`"
              else (
                match (Marshal.from_string s p4 : portable) with
                | exception _ ->
                  Error
                    "corrupt prediction cache (truncated or damaged payload)"
                | p -> (
                  match of_portable anl p with
                  | exception Invalid_argument msg -> Error msg
                  | c -> Ok c)))))
  | _ -> Error "not a costar prediction cache (bad magic)"

let save_precompiled ~fingerprint c file =
  let oc = open_out_bin file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (precompile ~fingerprint c))

let load_precompiled ~anl ~fingerprint file =
  match open_in_bin file with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | exception _ -> Error (file ^ ": unreadable prediction cache")
        | s -> of_precompiled ~anl ~fingerprint s)
