open Costar_grammar
open Costar_grammar.Symbols

type state_id = int

type verdict =
  | V_empty
  | V_all_pred of int
  | V_pending

type info = {
  configs : Config.sll list;
  verdict : verdict;
  accepting : int list;
  (* Preboxed verdicts for the warm prediction fast path, so deciding a
     state allocates nothing: [decided_pred] is the prediction when
     [verdict] is [V_all_pred] (a shared [Unique_pred] box), [eof_pred] the
     prediction when input ends in this state. *)
  decided_pred : Types.prediction;
  eof_pred : Types.prediction;
}

(* State keys: the sorted array of the member configurations' dense ids,
   hashed over its full length (the generic hash would inspect only a
   prefix). *)
module Key_tbl = Hashtbl.Make (struct
  type t = int array

  let equal a b =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec eq i = i >= n || (a.(i) = b.(i) && eq (i + 1)) in
    eq 0

  let hash a =
    let h = ref (Array.length a) in
    Array.iter (fun x -> h := (!h * 31) + x + 1) a;
    !h land max_int
end)

let no_row : int array = [||]
let dummy_info =
  {
    configs = [];
    verdict = V_empty;
    accepting = [];
    decided_pred = Types.Reject_pred;
    eof_pred = Types.Reject_pred;
  }
let dummy_cfg = { Config.s_pred = -1; s_frames = Frames.nil; s_ctx = Ctx_accept }

type closure_result = (Config.sll list * bool, Types.error) result

(* A validated v3 flat cache image (DESIGN.md §13): one contiguous int32
   bigarray, typically an [Unix.map_file] view of an image file, so N
   processes share a single page-cache copy with zero deserialization.
   Offsets are absolute word indices into [i_words], admitted once by the
   structural validation walk in [validate_image]; hot reads afterwards use
   the unchecked [Flatimg.get_u].  The bigarray is never written. *)
type image = {
  i_words : Flatimg.i32;
  i_terms : int;  (** terminals per transition row *)
  i_states : int;  (** states stored in the image *)
  i_inits_at : int;  (** nonterminal -> initial state id, or -1 *)
  i_trans_at : int;  (** dense [i_states * i_terms] successor matrix *)
  i_index_at : int;  (** state -> config-block offset (relative to data) *)
  i_data_at : int;  (** per-state configuration blocks *)
}

type t = {
  (* The analysis this cache was created against.  Configurations are
     expressed in its [Frames] interner, whose spine ids depend on runtime
     interning order — so a cache must only ever be consulted through this
     exact analysis, never through another [Analysis.make] of the same
     grammar.  Consumers holding a foreign cache (the machine, the static
     analyzer) read the analysis back from here. *)
  anl : Analysis.t;
  frames : Frames.t;
  n_terms : int;
  (* One shared [Unique_pred ix] box per production, so the warm path and
     single-alternative decisions never re-allocate their verdict. *)
  uniq : Types.prediction array;
  (* Two-level layering for parallel batch parsing: an overlay cache holds a
     [base] — a frozen snapshot that is never mutated again and is therefore
     safe to consult from many domains without locks — and records only the
     entries discovered past it.  Id spaces are global: config ids below
     [base_cfgs] and state ids below [base_states] belong to the base;
     [cfgs]/[keys]/[infos] are indexed by [id - base_*], while [closures]
     and [trans] are global-indexed so an overlay can attach a closure memo
     or transition row to a base-range id it does not own.  A plain cache is
     the degenerate overlay: [base = None], both offsets 0. *)
  base : t option;
  base_cfgs : int;
  base_states : int;
  (* dense ids for configurations; [closures] is the per-configuration
     closure memo, indexed by (global) config id *)
  cfg_ids : int Config.Sll_tbl.t;
  mutable cfgs : Config.sll array;
  mutable closures : closure_result option array;
  mutable n_cfgs : int;
  (* DFA states: interned sorted-config-id keys, info per state, and a
     lazily allocated terminal-indexed transition row per state *)
  state_ids : state_id Key_tbl.t;
  mutable keys : int array array;
  mutable infos : info array;
  mutable trans : int array array;
  mutable n_states : int;
  mutable n_trans : int; (* transitions added at THIS layer *)
  inits : int array; (* nonterminal -> initial state id, or -1 *)
  (* A third read layer below [base]: an mmapped v3 image.  Reads that miss
     both the own layer and the base fall through to the image's dense
     rows; state infos are decoded from the image lazily, per state, on
     first touch.  [None] for ordinary caches. *)
  img : image option;
}

let create anl =
  let g = Analysis.grammar anl in
  {
    anl;
    frames = Analysis.frames anl;
    n_terms = Grammar.num_terminals g;
    uniq =
      Array.init
        (Array.length (Grammar.prods g))
        (fun ix -> Types.Unique_pred ix);
    base = None;
    base_cfgs = 0;
    base_states = 0;
    cfg_ids = Config.Sll_tbl.create 256;
    cfgs = Array.make 256 dummy_cfg;
    closures = Array.make 256 None;
    n_cfgs = 0;
    state_ids = Key_tbl.create 64;
    keys = Array.make 64 no_row;
    infos = Array.make 64 dummy_info;
    trans = Array.make 64 no_row;
    n_states = 0;
    n_trans = 0;
    inits = Array.make (max 1 (Grammar.num_nonterminals g)) (-1);
    img = None;
  }

let frames c = c.frames
let analysis c = c.anl
let num_states c = c.n_states

let rec num_transitions c =
  c.n_trans + match c.base with None -> 0 | Some b -> num_transitions b

let num_configs c = c.n_cfgs

let grow arr count fill =
  if count < Array.length arr then arr
  else begin
    let bigger = Array.make (2 * max 1 (Array.length arr)) fill in
    Array.blit arr 0 bigger 0 (Array.length arr);
    bigger
  end

let config_id c cfg =
  match Config.Sll_tbl.find_opt c.cfg_ids cfg with
  | Some id -> id
  | None -> (
    let in_base =
      match c.base with
      | None -> None
      | Some b -> Config.Sll_tbl.find_opt b.cfg_ids cfg
    in
    match in_base with
    | Some id -> id
    | None ->
      let id = c.n_cfgs in
      let off = id - c.base_cfgs in
      c.cfgs <- grow c.cfgs off dummy_cfg;
      c.closures <- grow c.closures id None;
      c.cfgs.(off) <- cfg;
      Config.Sll_tbl.add c.cfg_ids cfg id;
      c.n_cfgs <- id + 1;
      id)

let cfg_of_id c id =
  if id < c.base_cfgs then
    match c.base with
    | Some b -> b.cfgs.(id)
    | None -> assert false
  else c.cfgs.(id - c.base_cfgs)

(* The closure memo for a global config id, consulting the overlay layer
   first (it may shadow a base-range id the base never computed). *)
let closure_of_id c id =
  match if id < Array.length c.closures then c.closures.(id) else None with
  | Some _ as r -> r
  | None -> (
    match c.base with
    | Some b when id < c.base_cfgs -> b.closures.(id)
    | _ -> None)

(* Decode one state's configuration block out of an image.  [collect]
   makes the read order explicit (a stateful cursor must not rely on
   [List.init]'s evaluation order).  The spines go through the shared
   frames interner, which serializes internally, so concurrent lazy
   decodes from several domains are safe. *)
let collect n f =
  let rec go n acc = if n = 0 then List.rev acc else go (n - 1) (f () :: acc) in
  go n []

let image_state_configs frames (im : image) sid =
  let words = im.i_words in
  let cur = ref (im.i_data_at + Flatimg.get_u words (im.i_index_at + sid)) in
  let next () =
    let v = Flatimg.get_u words !cur in
    incr cur;
    v
  in
  let n_cfgs = next () in
  collect n_cfgs (fun () ->
      let pred = next () in
      let ctx = next () in
      let n_frames = next () in
      let frames_syms =
        collect n_frames (fun () ->
            let n_syms = next () in
            collect n_syms (fun () ->
                let kind = next () in
                let v = next () in
                if kind = 0 then T v else NT v))
      in
      {
        Config.s_pred = pred;
        s_frames = Frames.spine_of_frames frames frames_syms;
        s_ctx = (if ctx < 0 then Config.Ctx_accept else Config.Ctx_nt ctx);
      })

(* Raw variants for the warm prediction fast path: no option/box per call. *)
let rec init_get c x =
  let s = c.inits.(x) in
  if s >= 0 then s
  else
    match c.base with
    | Some b -> init_get b x
    | None -> (
      match c.img with
      | Some im -> Flatimg.get_u im.i_words (im.i_inits_at + x)
      | None -> -1)

let find_init c x =
  let s = init_get c x in
  if s < 0 then None else Some s

let unique_pred c ix = c.uniq.(ix)

let add_init c x sid =
  c.inits.(x) <- sid;
  c

let is_accepting (cfg : Config.sll) =
  match cfg.s_ctx with
  | Config.Ctx_accept -> Frames.spine_is_nil cfg.s_frames
  | Config.Ctx_nt _ -> false

let compute_info uniq configs =
  let verdict =
    match Config.preds_of_sll configs with
    | [] -> V_empty
    | [ p ] -> V_all_pred p
    | _ -> V_pending
  in
  let accepting = Config.preds_of_sll (List.filter is_accepting configs) in
  let decided_pred =
    match verdict with
    | V_all_pred p -> uniq.(p)
    | V_empty | V_pending -> Types.Reject_pred
  in
  let eof_pred =
    match accepting with
    | [] -> Types.Reject_pred
    | [ p ] -> uniq.(p)
    | p :: _ -> Types.Ambig_pred p
  in
  { configs; verdict; accepting; decided_pred; eof_pred }

let intern c configs =
  let key = Array.of_list (List.map (config_id c) configs) in
  Array.sort (fun (a : int) b -> compare a b) key;
  let known =
    match Key_tbl.find_opt c.state_ids key with
    | Some _ as sid -> sid
    | None -> (
      match c.base with
      | None -> None
      | Some b -> Key_tbl.find_opt b.state_ids key)
  in
  match known with
  | Some sid -> (c, sid)
  | None ->
    let sid = c.n_states in
    let off = sid - c.base_states in
    c.keys <- grow c.keys off no_row;
    c.infos <- grow c.infos off dummy_info;
    c.trans <- grow c.trans sid no_row;
    c.keys.(off) <- key;
    c.infos.(off) <- compute_info c.uniq configs;
    Key_tbl.add c.state_ids key sid;
    c.n_states <- sid + 1;
    Instr.record_state_intern ();
    (c, sid)

let rec info c sid =
  if sid < 0 || sid >= c.n_states then
    invalid_arg "Cache.info: unknown state id"
  else if sid < c.base_states then
    match c.base with
    | Some b -> info b sid
    | None -> assert false
  else begin
    let off = sid - c.base_states in
    let inf = c.infos.(off) in
    if inf != dummy_info then inf
    else
      match c.img with
      | Some im when sid < im.i_states ->
        (* Lazy per-state decode from the image, memoized in [infos].  Two
           domains may race here and decode the same state twice; both
           results are equal immutable records (and OCaml publishes
           initializing writes safely), so whichever pointer a reader
           observes is correct — the race costs a duplicate decode, not
           correctness. *)
        let inf = compute_info c.uniq (image_state_configs c.frames im sid) in
        c.infos.(off) <- inf;
        inf
      | _ -> inf
  end

(* The warm-path transition read: -1 when absent.  [find_trans] wraps it in
   an option for ordinary callers.  An overlay row, once created, shadows
   the whole base row for its state (copy-on-write in [add_trans]), so the
   fallthrough fires only while a state has no overlay row at all. *)
let rec trans_get c sid a =
  let row = Array.unsafe_get c.trans sid in
  if row != no_row then Array.unsafe_get row a
  else
    match c.base with
    | Some b when sid < c.base_states -> trans_get b sid a
    | _ -> (
      (* Third layer: the mmapped image's dense row — one unboxed word
         read, straight off the page cache. *)
      match c.img with
      | Some im when sid < im.i_states ->
        Flatimg.get_u im.i_words (im.i_trans_at + (sid * im.i_terms) + a)
      | _ -> -1)

let find_trans c sid a =
  let s = trans_get c sid a in
  if s < 0 then None else Some s

let add_trans c sid a sid' =
  let row =
    let row = c.trans.(sid) in
    if row != no_row then row
    else begin
      (* Copy-on-write: seed the fresh row from the layered read view
         (base row, image row, or image behind the base), so once
         installed it fully shadows the layers below for reads. *)
      let row =
        Array.init (max 1 c.n_terms) (fun t ->
            if t < c.n_terms then trans_get c sid t else -1)
      in
      c.trans.(sid) <- row;
      row
    end
  in
  (* Idempotent: re-adding an existing transition (e.g. [prepare ~deep]
     overlapping a later parse of the same state) must not double-count. *)
  if row.(a) < 0 then begin
    row.(a) <- sid';
    c.n_trans <- c.n_trans + 1
  end;
  c

let find_closure c cfg =
  let id =
    match Config.Sll_tbl.find_opt c.cfg_ids cfg with
    | Some _ as id -> id
    | None -> (
      match c.base with
      | None -> None
      | Some b -> Config.Sll_tbl.find_opt b.cfg_ids cfg)
  in
  match id with
  | None -> None
  | Some id -> closure_of_id c id

let add_closure c cfg result =
  let id = config_id c cfg in
  c.closures <- grow c.closures id None;
  c.closures.(id) <- Some result;
  c

(* An independent cache seeded with this one's contents: subsequent
   additions to either copy do not affect the other.  State/config ids are
   preserved.  (Info records and key arrays are immutable once written and
   are shared; transition rows are mutable and are duplicated.  An
   overlay's base is immutable by construction and stays shared.) *)
let copy c =
  {
    c with
    cfg_ids = Config.Sll_tbl.copy c.cfg_ids;
    cfgs = Array.copy c.cfgs;
    closures = Array.copy c.closures;
    state_ids = Key_tbl.copy c.state_ids;
    keys = Array.copy c.keys;
    infos = Array.copy c.infos;
    trans =
      Array.map (fun row -> if row == no_row then row else Array.copy row) c.trans;
    inits = Array.copy c.inits;
  }

(* {2 Freezing and overlays}

   [freeze] snapshots a plain cache into a value that is never mutated
   again; under the OCaml memory model, data that is published before
   [Domain.spawn] and never written afterwards can be read from any number
   of domains without synchronization, so one frozen snapshot serves a
   whole worker pool.  Each worker consults the snapshot through its own
   [overlay] — an ordinary [t] whose misses extend a private layer — and
   the layers are merged back into a master cache with [absorb] between
   rounds, so warm-up compounds.

   [absorb] is deliberately value-level: it re-interns the source's config
   lists into the destination rather than assuming compatible state
   numbering.  Config values ([s_pred], [s_frames], [s_ctx]) are meaningful
   process-wide because every cache of one analysis shares the same
   {!Costar_grammar.Frames} interner, so this is exact, and it makes
   [absorb] idempotent and content-level order-independent. *)

type frozen = t

let freeze c =
  match c.base with
  | Some _ -> invalid_arg "Cache.freeze: cannot freeze an overlay"
  | None -> copy c

let frozen_num_states (fz : frozen) = fz.n_states
let frozen_num_transitions (fz : frozen) = num_transitions fz

let overlay (fz : frozen) =
  {
    anl = fz.anl;
    frames = fz.frames;
    n_terms = fz.n_terms;
    uniq = fz.uniq;
    base = Some fz;
    base_cfgs = fz.n_cfgs;
    base_states = fz.n_states;
    cfg_ids = Config.Sll_tbl.create 64;
    cfgs = Array.make 64 dummy_cfg;
    closures = Array.make (fz.n_cfgs + 64) None;
    n_cfgs = fz.n_cfgs;
    state_ids = Key_tbl.create 64;
    keys = Array.make 64 no_row;
    infos = Array.make 64 dummy_info;
    trans = Array.make (fz.n_states + 64) no_row;
    n_states = fz.n_states;
    n_trans = 0;
    inits = Array.make (Array.length fz.inits) (-1);
    (* Reads that miss the overlay fall to [base], which consults its own
       image if it has one — the overlay needs no direct image pointer. *)
    img = None;
  }

let overlay_new_states c = c.n_states - c.base_states

let absorb dst src =
  if dst == src then dst
  else begin
    (* src state id -> dst state id, by re-interning config values. *)
    let map = Hashtbl.create 64 in
    let map_sid sid =
      match Hashtbl.find_opt map sid with
      | Some d -> d
      | None ->
        let _, d = intern dst (info src sid).configs in
        Hashtbl.add map sid d;
        d
    in
    (* Replay every transition materialized at src's own layer.  Rows for
       base-range states were seeded from the base row (copy-on-write), so
       some replayed entries are base facts the destination already has —
       harmless, [add_trans] is idempotent. *)
    for sid = 0 to src.n_states - 1 do
      let row = src.trans.(sid) in
      if row != no_row then
        for a = 0 to Array.length row - 1 do
          let s' = row.(a) in
          if s' >= 0 then ignore (add_trans dst (map_sid sid) a (map_sid s'))
        done
    done;
    Array.iteri
      (fun x s ->
        if s >= 0 && init_get dst x < 0 then ignore (add_init dst x (map_sid s)))
      src.inits;
    (* Closure memos recorded at src's layer.  Results are config values,
       valid verbatim in dst (shared frames interner); recomputation is
       deterministic, so overwriting an existing entry rewrites it with an
       equal value. *)
    for id = 0 to src.n_cfgs - 1 do
      if id < Array.length src.closures then
        match src.closures.(id) with
        | None -> ()
        | Some r -> ignore (add_closure dst (cfg_of_id src id) r)
    done;
    dst
  end

(* Persistence.

   The on-disk format is a plain-text header — magic line, format version,
   grammar fingerprint, suffix-table digest — followed by a marshalled
   {e decoded} dump: configurations are stored with their frames expanded
   back to symbol lists, because interner ids are a per-process artifact.
   Loading re-interns states in state-id order against the target
   analysis's own suffix table, reproducing identical ids.  The header is
   validated *before* any unmarshalling happens, so a wrong file (or a
   cache built for a different grammar or by an incompatible build) is
   rejected without ever feeding untrusted bytes to [Marshal]. *)

type portable_config = {
  p_pred : int;
  p_frames : symbol list list;
  p_ctx : Config.sctx;
}

type portable = {
  p_states : portable_config list array; (* state id -> configurations *)
  p_trans : (int * int * int) list; (* (sid, terminal, sid') *)
  p_inits : (int * int) list; (* (nonterminal, sid) *)
  p_closures :
    (portable_config * (portable_config list * bool, Types.error) result) list;
}

let magic = "costar/sll-dfa"
let format_version = 2

let decode_config c (cfg : Config.sll) =
  {
    p_pred = cfg.s_pred;
    p_frames = Frames.frames_of_spine c.frames cfg.s_frames;
    p_ctx = cfg.s_ctx;
  }

let encode_config c p =
  {
    Config.s_pred = p.p_pred;
    s_frames = Frames.spine_of_frames c.frames p.p_frames;
    s_ctx = p.p_ctx;
  }

let to_portable c =
  let p_states =
    Array.init c.n_states (fun sid ->
        List.map (decode_config c) (info c sid).configs)
  in
  let p_trans = ref [] in
  for sid = c.n_states - 1 downto 0 do
    for a = c.n_terms - 1 downto 0 do
      let s = trans_get c sid a in
      if s >= 0 then p_trans := (sid, a, s) :: !p_trans
    done
  done;
  let p_inits = ref [] in
  for x = Array.length c.inits - 1 downto 0 do
    if init_get c x >= 0 then p_inits := (x, init_get c x) :: !p_inits
  done;
  let p_closures = ref [] in
  for id = c.n_cfgs - 1 downto 0 do
    match closure_of_id c id with
    | None -> ()
    | Some r ->
      let r' =
        Result.map
          (fun (stable, forked) -> (List.map (decode_config c) stable, forked))
          r
      in
      p_closures := (decode_config c (cfg_of_id c id), r') :: !p_closures
  done;
  {
    p_states;
    p_trans = !p_trans;
    p_inits = !p_inits;
    p_closures = !p_closures;
  }

let of_portable anl p =
  let c = create anl in
  Array.iteri
    (fun expected_sid pcfgs ->
      let configs = List.map (encode_config c) pcfgs in
      let _, sid = intern c configs in
      if sid <> expected_sid then
        invalid_arg "Cache.of_portable: inconsistent state numbering")
    p.p_states;
  List.iter (fun (sid, a, sid') -> ignore (add_trans c sid a sid')) p.p_trans;
  List.iter (fun (x, sid) -> ignore (add_init c x sid)) p.p_inits;
  List.iter
    (fun (pcfg, r) ->
      let r' =
        Result.map
          (fun (stable, forked) -> (List.map (encode_config c) stable, forked))
          r
      in
      ignore (add_closure c (encode_config c pcfg) r'))
    p.p_closures;
  c

let precompile ~fingerprint c =
  Printf.sprintf "%s\n%d\n%s\n%s\n%s" magic format_version fingerprint
    (Frames.fingerprint c.frames)
    (Marshal.to_string (to_portable c) [])

let of_precompiled ~anl ~fingerprint s =
  let next_line pos =
    match String.index_from_opt s pos '\n' with
    | None -> None
    | Some i -> Some (String.sub s pos (i - pos), i + 1)
  in
  match next_line 0 with
  | Some (m, p1) when m = magic -> (
    match next_line p1 with
    | None -> Error "corrupt prediction cache (missing format version)"
    | Some (v, p2) -> (
      if v <> string_of_int format_version then
        Error
          (Printf.sprintf
             "unsupported prediction-cache format version %s (this build \
              reads version %d); regenerate it with `costar analyze \
              --emit-cache`"
             v format_version)
      else
        match next_line p2 with
        | None -> Error "corrupt prediction cache (missing fingerprint)"
        | Some (fp, p3) -> (
          if fp <> fingerprint then
            Error
              "prediction cache was built for a different grammar \
               (fingerprint mismatch); regenerate it with `costar analyze \
               --emit-cache`"
          else
            match next_line p3 with
            | None -> Error "corrupt prediction cache (missing suffix-table digest)"
            | Some (fd, p4) ->
              if fd <> Frames.fingerprint (Analysis.frames anl) then
                Error
                  "prediction cache was built against a different suffix \
                   table (incompatible build); regenerate it with `costar \
                   analyze --emit-cache`"
              else (
                match (Marshal.from_string s p4 : portable) with
                | exception _ ->
                  Error
                    "corrupt prediction cache (truncated or damaged payload)"
                | p -> (
                  (* The payload unmarshalled but may still be structurally
                     bogus (fuzzed or bit-rotted dump): rebuilding can then
                     fail anywhere inside re-interning, so no exception at
                     all may escape as anything but a typed error. *)
                  match of_portable anl p with
                  | exception Invalid_argument msg -> Error msg
                  | exception e ->
                    Error
                      (Printf.sprintf
                         "corrupt prediction cache (damaged payload: %s)"
                         (Printexc.to_string e))
                  | c -> Ok c)))))
  | _ -> Error "not a costar prediction cache (bad magic)"

let save_precompiled ~fingerprint c file =
  let oc = open_out_bin file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (precompile ~fingerprint c))

let load_precompiled ~anl ~fingerprint file =
  match open_in_bin file with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | exception _ -> Error (file ^ ": unreadable prediction cache")
        | s -> of_precompiled ~anl ~fingerprint s)

(* {2 Flat cache images (format v3)}

   One contiguous int32-LE file (word discipline shared with `costar
   tables` via {!Costar_grammar.Flatimg}), laid out so a process can
   [Unix.map_file] it read-only and serve predictions straight off the
   mapping — no unmarshalling, no per-process heap copy, N processes
   sharing one page-cache image.

     header   [magic | version=3 | endian sentinel | fp bytes | digest
               bytes | payload words | FNV-1a checksum of payload]
     strings  grammar fingerprint, then frames digest, bytes packed LE
     payload  META   n_terms n_nts n_states n_prods
              INITS  n_nts words        (initial state id or -1)
              TRANS  n_states*n_terms   (dense successor matrix, -1 absent)
              INDEX  n_states words     (config-block offset per state)
              DATA   per state: n_configs, then per config:
                       pred, ctx (-1 accept | nonterminal id), n_frames,
                       per frame: n_syms, per symbol: kind (0 T | 1 NT), id

   Closure memos are deliberately absent: they are recomputed
   deterministically on demand, and [compute_info] rebuilds verdict boxes
   from the configuration lists, so configurations + transitions + inits
   are the whole cache.  Everything is validated — bounds, ranges, block
   contiguity, checksum — before any offset is trusted; hot readers then
   use unchecked loads. *)

let image_magic = 0x52334143 (* "CA3R" in LE bytes; v2 files start "cost" *)
let image_version = 3
let endian_sentinel = 0x01020304

type image_error =
  | Img_io of string
  | Img_bad_magic
  | Img_bad_version of int
  | Img_endian_mismatch
  | Img_truncated
  | Img_checksum_mismatch
  | Img_fingerprint_mismatch
  | Img_digest_mismatch
  | Img_malformed of string

let image_error_to_string = function
  | Img_io msg -> msg
  | Img_bad_magic -> "not a costar cache image (bad magic)"
  | Img_bad_version v ->
    Printf.sprintf
      "unsupported cache-image format version %d (this build reads version \
       %d); regenerate it with `costar analyze --emit-image`"
      v image_version
  | Img_endian_mismatch ->
    "cache image byte order does not match this host (big-endian mapping \
     of a little-endian image)"
  | Img_truncated -> "corrupt cache image (truncated)"
  | Img_checksum_mismatch -> "corrupt cache image (checksum mismatch)"
  | Img_fingerprint_mismatch ->
    "cache image was built for a different grammar (fingerprint mismatch); \
     regenerate it with `costar analyze --emit-image`"
  | Img_digest_mismatch ->
    "cache image was built against a different suffix table (incompatible \
     build); regenerate it with `costar analyze --emit-image`"
  | Img_malformed what ->
    Printf.sprintf "corrupt cache image (malformed %s)" what

(* Bytes of a string packed four-per-word, little-endian within a word. *)
let pack_bytes s =
  let n = String.length s in
  Array.init ((n + 3) / 4) (fun i ->
      let byte j = if (4 * i) + j < n then Char.code s.[(4 * i) + j] else 0 in
      byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24))

let unpack_bytes words ~at ~len =
  String.init len (fun i ->
      let w = Flatimg.get words (at + (i / 4)) in
      Char.chr ((w lsr (8 * (i mod 4))) land 0xff))

let words_of_bytes n = (n + 3) / 4

let push_config c b (cfg : Config.sll) =
  Flatimg.push b cfg.Config.s_pred;
  Flatimg.push b (Config.ctx_code cfg.Config.s_ctx);
  let frames = Frames.frames_of_spine c.frames cfg.Config.s_frames in
  Flatimg.push b (List.length frames);
  List.iter
    (fun syms ->
      Flatimg.push b (List.length syms);
      List.iter
        (function
          | T a ->
            Flatimg.push b 0;
            Flatimg.push b a
          | NT x ->
            Flatimg.push b 1;
            Flatimg.push b x)
        syms)
    frames

let image_words ~fingerprint c =
  let g = Analysis.grammar c.anl in
  let n_nts = Grammar.num_nonterminals g in
  let digest = Frames.fingerprint c.frames in
  (* Per-state configuration blocks first: the index needs their sizes. *)
  let blocks =
    Array.init c.n_states (fun sid ->
        let b = ref [] in
        let inf = info c sid in
        Flatimg.push b (List.length inf.configs);
        List.iter (push_config c b) inf.configs;
        Array.of_list (List.rev !b))
  in
  let p = ref [] in
  Flatimg.push p c.n_terms;
  Flatimg.push p n_nts;
  Flatimg.push p c.n_states;
  Flatimg.push p (Array.length c.uniq);
  for x = 0 to n_nts - 1 do
    Flatimg.push p (init_get c x)
  done;
  for sid = 0 to c.n_states - 1 do
    for a = 0 to c.n_terms - 1 do
      Flatimg.push p (trans_get c sid a)
    done
  done;
  let off = ref 0 in
  Array.iter
    (fun b ->
      Flatimg.push p !off;
      off := !off + Array.length b)
    blocks;
  let payload =
    Array.concat
      (Array.of_list (List.rev !p) :: Array.to_list blocks)
  in
  let h = ref [] in
  Flatimg.push h image_magic;
  Flatimg.push h image_version;
  Flatimg.push h endian_sentinel;
  Flatimg.push h (String.length fingerprint);
  Flatimg.push h (String.length digest);
  Flatimg.push h (Array.length payload);
  Flatimg.push h (Flatimg.checksum payload);
  Array.concat
    [ Array.of_list (List.rev !h); pack_bytes fingerprint; pack_bytes digest;
      payload ]

let image_bytes ~fingerprint c =
  let words = image_words ~fingerprint c in
  let buf = Buffer.create (4 * Array.length words) in
  Flatimg.add_le_words buf words;
  Buffer.contents buf

let save_image ~fingerprint c file =
  let oc = open_out_bin file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (image_bytes ~fingerprint c))

exception Img_err of image_error

(* Validate a candidate image end to end — header, checksum, identity,
   then a full structural walk over every table and every configuration
   block — and return the admitted offsets.  Nothing from the file is
   trusted until this returns: the walk bounds-checks every read against
   the payload and every id against its range, and requires the config
   blocks to tile the payload tail exactly (no gaps, no trailing bytes).
   After admission the hot paths may use unchecked loads. *)
let validate_image ~anl ~fingerprint words =
  let fail e = raise_notrace (Img_err e) in
  let dim = Flatimg.dim words in
  try
    if dim < 7 then fail Img_truncated;
    (* A byte-swapped mapping (big-endian host over the LE file) swaps the
       magic word itself, so it must be recognized here, before any other
       field is believed. *)
    (match Flatimg.get words 0 land 0xffffffff with
    | w when w = image_magic -> ()
    | 0x43413352 (* image_magic byte-swapped *) -> fail Img_endian_mismatch
    | _ -> fail Img_bad_magic);
    if Flatimg.get words 2 land 0xffffffff <> endian_sentinel then
      fail (Img_malformed "endian sentinel");
    let version = Flatimg.get words 1 in
    if version <> image_version then fail (Img_bad_version version);
    let n_fp = Flatimg.get words 3 in
    let n_dg = Flatimg.get words 4 in
    let n_pay = Flatimg.get words 5 in
    if n_fp < 0 || n_fp > 4096 || n_dg < 0 || n_dg > 4096 || n_pay < 0 then
      fail (Img_malformed "header lengths");
    let fp_at = 7 in
    let dg_at = fp_at + words_of_bytes n_fp in
    let pay_at = dg_at + words_of_bytes n_dg in
    if pay_at + n_pay <> dim then fail Img_truncated;
    if
      Flatimg.checksum_i32 words ~pos:pay_at ~len:n_pay
      <> Flatimg.get words 6 land 0xffffffff
    then fail Img_checksum_mismatch;
    if unpack_bytes words ~at:fp_at ~len:n_fp <> fingerprint then
      fail Img_fingerprint_mismatch;
    if
      unpack_bytes words ~at:dg_at ~len:n_dg
      <> Frames.fingerprint (Analysis.frames anl)
    then fail Img_digest_mismatch;
    (* Structural walk of the payload. *)
    if n_pay < 4 then fail (Img_malformed "payload header");
    let g = Analysis.grammar anl in
    let n_terms = Flatimg.get words pay_at in
    let n_nts = Flatimg.get words (pay_at + 1) in
    let n_states = Flatimg.get words (pay_at + 2) in
    let n_prods = Flatimg.get words (pay_at + 3) in
    if
      n_terms <> Grammar.num_terminals g
      || n_nts <> Grammar.num_nonterminals g
      || n_prods <> Grammar.num_productions g
      || n_states < 0
    then fail (Img_malformed "grammar shape");
    let pay_end = pay_at + n_pay in
    let inits_at = pay_at + 4 in
    let trans_at = inits_at + n_nts in
    let index_at = trans_at + (n_states * n_terms) in
    let data_at = index_at + n_states in
    if data_at > pay_end then fail Img_truncated;
    for x = 0 to n_nts - 1 do
      let s = Flatimg.get words (inits_at + x) in
      if s < -1 || s >= n_states then fail (Img_malformed "initial state")
    done;
    for i = 0 to (n_states * n_terms) - 1 do
      let s = Flatimg.get words (trans_at + i) in
      if s < -1 || s >= n_states then fail (Img_malformed "transition")
    done;
    (* The config blocks must tile [data_at, pay_end) in state order. *)
    let cur = ref data_at in
    let next () =
      if !cur >= pay_end then fail Img_truncated;
      let v = Flatimg.get words !cur in
      incr cur;
      v
    in
    for sid = 0 to n_states - 1 do
      if Flatimg.get words (index_at + sid) <> !cur - data_at then
        fail (Img_malformed "state index");
      let n_cfgs = next () in
      if n_cfgs < 0 then fail (Img_malformed "config count");
      for _ = 1 to n_cfgs do
        let pred = next () in
        if pred < 0 || pred >= n_prods then fail (Img_malformed "prediction");
        let ctx = next () in
        if ctx < -1 || ctx >= n_nts then fail (Img_malformed "context");
        let n_frames = next () in
        if n_frames < 0 then fail (Img_malformed "frame count");
        for _ = 1 to n_frames do
          let n_syms = next () in
          if n_syms < 0 then fail (Img_malformed "symbol count");
          for _ = 1 to n_syms do
            let kind = next () in
            let v = next () in
            match kind with
            | 0 -> if v < 0 || v >= n_terms then fail (Img_malformed "terminal")
            | 1 -> if v < 0 || v >= n_nts then fail (Img_malformed "nonterminal")
            | _ -> fail (Img_malformed "symbol kind")
          done
        done
      done
    done;
    if !cur <> pay_end then fail (Img_malformed "trailing words");
    Ok
      {
        i_words = words;
        i_terms = n_terms;
        i_states = n_states;
        i_inits_at = inits_at;
        i_trans_at = trans_at;
        i_index_at = index_at;
        i_data_at = data_at;
      }
  with Img_err e -> Error e

(* An image-backed cache: arrays pre-sized so the image's state-id range
   is addressable, contents served lazily from the mapping. *)
let image_cache ~anl (im : image) =
  let g = Analysis.grammar anl in
  {
    anl;
    frames = Analysis.frames anl;
    n_terms = im.i_terms;
    uniq =
      Array.init
        (Array.length (Grammar.prods g))
        (fun ix -> Types.Unique_pred ix);
    base = None;
    base_cfgs = 0;
    base_states = 0;
    cfg_ids = Config.Sll_tbl.create 256;
    cfgs = Array.make 256 dummy_cfg;
    closures = Array.make 256 None;
    n_cfgs = 0;
    state_ids = Key_tbl.create 64;
    keys = Array.make (im.i_states + 64) no_row;
    infos = Array.make (im.i_states + 64) dummy_info;
    trans = Array.make (im.i_states + 64) no_row;
    n_states = im.i_states;
    n_trans = 0;
    inits = Array.make (max 1 (Grammar.num_nonterminals g)) (-1);
    img = Some im;
  }

let image_backed c = c.img <> None

(* Heap decode — the differential oracle for the mmap path: re-intern
   every image state in id order (reproducing identical ids, as v2's
   [of_portable] does) and replay the dense tables. *)
let of_image ~anl (im : image) =
  let c = create anl in
  for sid = 0 to im.i_states - 1 do
    let configs = image_state_configs c.frames im sid in
    let _, sid' = intern c configs in
    if sid' <> sid then
      invalid_arg "Cache.of_image: inconsistent state numbering"
  done;
  for sid = 0 to im.i_states - 1 do
    for a = 0 to im.i_terms - 1 do
      let s' = Flatimg.get im.i_words (im.i_trans_at + (sid * im.i_terms) + a) in
      if s' >= 0 then ignore (add_trans c sid a s')
    done
  done;
  for x = 0 to Array.length c.inits - 1 do
    let s = Flatimg.get im.i_words (im.i_inits_at + x) in
    if s >= 0 then ignore (add_init c x s)
  done;
  c

let validated_image_of_bytes ~anl ~fingerprint s =
  let n = String.length s in
  if n land 3 <> 0 then Error Img_truncated
  else
    let words =
      Flatimg.of_words (Flatimg.words_of_le_string s ~pos:0 ~count:(n / 4))
    in
    validate_image ~anl ~fingerprint words

(* Heap decode from bytes (endian-independent: the LE decode is explicit). *)
let of_image_bytes ~anl ~fingerprint s =
  match validated_image_of_bytes ~anl ~fingerprint s with
  | Error _ as e -> e
  | Ok im -> (
    match of_image ~anl im with
    | c -> Ok c
    | exception Invalid_argument msg -> Error (Img_malformed msg))

let read_file file =
  match open_in_bin file with
  | exception Sys_error msg -> Error (Img_io msg)
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | exception _ -> Error (Img_io (file ^ ": unreadable cache image"))
        | s -> Ok s)

let map_image_file file =
  match Unix.openfile file [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Img_io (file ^ ": " ^ Unix.error_message e))
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let len = (Unix.fstat fd).Unix.st_size in
        if len land 3 <> 0 || len < 7 * 4 then Error Img_truncated
        else
          match
            Unix.map_file fd Bigarray.int32 Bigarray.c_layout false
              [| len / 4 |]
          with
          | exception Unix.Unix_error (e, _, _) ->
            Error (Img_io (file ^ ": mmap failed: " ^ Unix.error_message e))
          | ga -> Ok (Bigarray.array1_of_genarray ga))

(* Check the leading magic before mapping, so a non-image file (e.g. a v2
   cache, whose size need not even be word-aligned) is reported as such
   rather than as a truncated image. *)
let sniff_magic file =
  match open_in_bin file with
  | exception Sys_error msg -> Error (Img_io msg)
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic 4 with
        | exception _ -> Error Img_truncated
        | s ->
          if Flatimg.le_word s 0 = image_magic then Ok ()
          else Error Img_bad_magic)

(* Map the file and serve straight off the mapping.  On a big-endian host
   the mapped words are byte-swapped (the sentinel detects this); fall
   back to the explicit-LE heap decode so the loader works everywhere —
   only the zero-copy sharing is LE-specific. *)
let load_image ~anl ~fingerprint file =
  match
    match sniff_magic file with
    | Error _ as e -> e
    | Ok () -> map_image_file file
  with
  | Error _ as e -> e
  | Ok words -> (
    match validate_image ~anl ~fingerprint words with
    | Ok im -> Ok (image_cache ~anl im)
    | Error Img_endian_mismatch -> (
      match read_file file with
      | Error _ as e -> e
      | Ok s -> of_image_bytes ~anl ~fingerprint s)
    | Error _ as e -> e)

(* Heap-decoded load (the oracle path: same validation, no mapping). *)
let load_image_heap ~anl ~fingerprint file =
  match read_file file with
  | Error _ as e -> e
  | Ok s -> of_image_bytes ~anl ~fingerprint s

(* Magic-sniffing loader for CLI `--cache` arguments: v3 images start
   "CA3R", v2 caches "cost"; anything else falls to the v2 loader for its
   diagnostics. *)
let load_any ~anl ~fingerprint file =
  match read_file file with
  | Error e -> Error (image_error_to_string e)
  | Ok s ->
    if String.length s >= 4 && Flatimg.le_word s 0 = image_magic then
      Result.map_error image_error_to_string
        (load_image ~anl ~fingerprint file)
    else of_precompiled ~anl ~fingerprint s
