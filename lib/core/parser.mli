(** The CoStar top-level API (paper, §3.1).

    [parse] applied to a grammar and an input word returns a parse tree
    labelled [Unique] or [Ambig], a [Reject] with a human-readable reason, or
    an [Error] — which, per the paper's Theorem 5.8, never occurs for
    non-left-recursive grammars (checked statically by
    {!Costar_grammar.Left_recursion.check} and dynamically by the machine). *)

open Costar_grammar

type result =
  | Unique of Tree.t  (** the sole parse tree for the input *)
  | Ambig of Tree.t
      (** a correct parse tree for an input that has at least one other *)
  | Reject of string  (** the input is not in the grammar's language *)
  | Error of Types.error

val pp_result : Grammar.t -> Format.formatter -> result -> unit

(** A prepared parser: the grammar together with its static analyses.
    Build once, run on many inputs. *)
type t

val make : Grammar.t -> t
val grammar : t -> Grammar.t
val analysis : t -> Analysis.t
val env : t -> Machine.env

(** [run p w] parses the token sequence [w].  The prediction cache starts
    from the parser's static grammar cache — the precomputed initial SLL
    DFA states of the paper's footnote 7 — and, the cache store being
    mutable, retains what [w] taught it for later runs on the same parser.
    (Cache contents never affect results, only speed; use
    [run_with_cache p (Cache.create (analysis p)) w] for a run with no
    static cache at all.) *)
val run : t -> Token.t list -> result

(** [run_word p w] is {!run} over the array cursor — the zero-copy
    pipeline's entry point.  [run p toks = run_word p (Word.of_tokens
    toks)]. *)
val run_word : t -> Word.t -> result

(** [run_buf p buf] parses a struct-of-arrays token buffer (as produced
    by the compiled scanner) without materializing a token list. *)
val run_buf : t -> Token_buf.t -> result

(** The parser's shared base cache: the static grammar cache (initial DFA
    states, and their first transitions, for every reachable decision),
    built on first use and then extended by every {!run}.  Exposed for
    cache-behaviour measurements. *)
val base_cache : t -> Cache.t

(** Install a loaded cache (a v2 precompiled cache or an image-backed v3
    cache) as the parser's base, replacing the lazily built static grammar
    cache.  Raises [Invalid_argument] if the cache was built against a
    different analysis. *)
val set_base_cache : t -> Cache.t -> unit

(** [run_cold p w] is {!run} on an independent copy of the static grammar
    cache: nothing learned from [w] leaks into later runs.  This is the
    paper tool's per-parse cache behaviour, kept for cold-cache
    measurements. *)
val run_cold : t -> Token.t list -> result

(** [run_with_cache p cache w] additionally threads an SLL cache in and out,
    allowing cache reuse across inputs (an extension over the paper's API;
    see DESIGN.md, experiment E4). *)
val run_with_cache : t -> Cache.t -> Token.t list -> result * Cache.t

(** Cursor form of {!run_with_cache}. *)
val run_with_cache_word : t -> Cache.t -> Word.t -> result * Cache.t

(** [run_inspect p ~inspect w] calls [inspect] on every intermediate machine
    state, including the initial one (used for traces and invariant
    checking). *)
val run_inspect :
  t -> inspect:(Machine.state -> unit) -> Token.t list -> result

(** Cursor form of {!run_inspect}, driving the zero-copy [run_word] path. *)
val run_inspect_word :
  t -> inspect:(Machine.state -> unit) -> Word.t -> result

(** One-shot convenience: [parse g w = run (make g) w]. *)
val parse : Grammar.t -> Token.t list -> result
