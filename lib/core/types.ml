(** Shared result types for the CoStar core (paper, Fig. 1). *)

open Costar_grammar.Symbols

(** Parser errors.  [Invalid_state] signals an inconsistent machine state
    (paper: never reached for well-formed runs); [Left_recursive x] signals
    that the dynamic left-recursion detector caught nonterminal [x] in a
    nullable cycle. *)
type error =
  | Invalid_state of string
  | Left_recursive of nonterminal

(** Result of [adaptivePredict], identifying the chosen right-hand side by
    its production index (grammar order). *)
type prediction =
  | Unique_pred of int
      (** The sole right-hand side that may lead to a successful parse. *)
  | Ambig_pred of int
      (** This right-hand side succeeds, and so does at least one other:
          the input is ambiguous.  In SLL mode this is merely "multiple
          candidates survive" and triggers failover to LL mode. *)
  | Reject_pred  (** No right-hand side leads to a successful parse. *)
  | Error_pred of error

let pp_error ppf = function
  | Invalid_state msg -> Fmt.pf ppf "invalid parser state: %s" msg
  | Left_recursive x -> Fmt.pf ppf "left-recursive nonterminal #%d" x

let error_to_string g = function
  | Invalid_state msg -> "invalid parser state: " ^ msg
  | Left_recursive x ->
    (* [x] may come from deserialized data (e.g. a memoized closure error in
       a precompiled cache), so the lookup must not trust its range. *)
    "left-recursive nonterminal "
    ^ Costar_grammar.Names.nonterminal g x
