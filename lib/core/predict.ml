open Costar_grammar

let adaptive_predict_word g anl cache x conts w i =
  match Grammar.prods_of g x with
  | [] ->
    (* A nonterminal with no productions derives nothing. *)
    (cache, Types.Reject_pred)
  | [ ix ] ->
    (* A single alternative needs no lookahead; SLL would answer
       [Unique_pred ix] before consuming any token.  The box is shared
       (preallocated per production) — this path runs on every push. *)
    (cache, Cache.unique_pred cache ix)
  | _ -> (
    Instr.record_cov_decision x;
    match Sll.predict_word g anl cache x w i with
    | (_, (Types.Unique_pred _ | Types.Reject_pred | Types.Error_pred _)) as r
      ->
      r
    | cache, Types.Ambig_pred _ ->
      (* The SLL overapproximation saw several survivors; re-predict in
         exact LL mode before committing (paper, §3.4: failover). *)
      (cache, Ll.predict_word g anl x (conts ()) w i))

let adaptive_predict g anl cache x conts tokens =
  adaptive_predict_word g anl cache x conts (Word.of_tokens tokens) 0

(* Ext form: also report the lookahead depth the verdict was reached at
   (exact on rejects — the only case recovery diagnostics consume it). *)
let adaptive_predict_word_ext g anl cache x conts w i =
  match Grammar.prods_of g x with
  | [] -> (cache, Types.Reject_pred, 0)
  | [ ix ] -> (cache, Cache.unique_pred cache ix, 0)
  | _ -> (
    Instr.record_cov_decision x;
    match Sll.predict_word_ext g anl cache x w i with
    | (_, (Types.Unique_pred _ | Types.Reject_pred | Types.Error_pred _), _)
      as r ->
      r
    | cache, Types.Ambig_pred _, _ ->
      let pred, depth = Ll.predict_word_ext g anl x (conts ()) w i in
      (cache, pred, depth))
