open Costar_grammar

type result =
  | Unique of Tree.t
  | Ambig of Tree.t
  | Reject of string
  | Error of Types.error

let pp_result g ppf = function
  | Unique v -> Fmt.pf ppf "Unique %a" (Tree.pp g) v
  | Ambig v -> Fmt.pf ppf "Ambig %a" (Tree.pp g) v
  | Reject msg -> Fmt.pf ppf "Reject (%s)" msg
  | Error e -> Fmt.pf ppf "Error (%s)" (Types.error_to_string g e)

type t = {
  menv : Machine.env;
  (* The shared prediction cache, seeded with the static grammar cache
     (paper, footnote 7): initial SLL DFA states for every decision
     nonterminal, precomputed once per grammar.  The cache is a mutable
     store, so [run] also accumulates what each input teaches across runs
     (the paper's tool discards it; ours keeps it — E4).  Cache contents
     never influence results (property-tested), only speed, so sharing it
     here is benign; [run_cold] measures without cross-run accumulation. *)
  mutable base : Cache.t option;
}

let make g = { menv = Machine.make_env g; base = None }
let grammar (p : t) = p.menv.Machine.g
let analysis (p : t) = p.menv.Machine.anl
let env (p : t) = p.menv

let base_cache p =
  match p.base with
  | Some c -> c
  | None ->
    let g = grammar p and anl = analysis p in
    let c = ref (Cache.create anl) in
    for x = 0 to Costar_grammar.Grammar.num_nonterminals g - 1 do
      if
        Analysis.reachable anl x
        && List.length (Costar_grammar.Grammar.prods_of g x) > 1
      then c := Sll.prepare ~deep:true g anl !c x
    done;
    p.base <- Some !c;
    !c

let set_base_cache p c =
  if Cache.frames c != Analysis.frames (analysis p) then
    invalid_arg "Parser.set_base_cache: cache belongs to a different analysis";
  p.base <- Some c

let multistep env ~inspect st0 =
  let rec go st =
    inspect st;
    match Machine.step env st with
    | Machine.Step_cont st' -> go st'
    | Machine.Step_accept v ->
      (* The uniqueness flag of the state that produced the final tree
         decides the label (paper, §3.2). *)
      ((if st.Machine.unique then Unique v else Ambig v), st.Machine.cache)
    | Machine.Step_reject f -> (Reject f.Machine.message, st.Machine.cache)
    | Machine.Step_error e -> (Error e, st.Machine.cache)
  in
  go st0

let run_with_cache_word p cache word =
  multistep p.menv ~inspect:ignore (Machine.init_word p.menv ~cache word)

let run_with_cache p cache tokens =
  run_with_cache_word p cache (Word.of_tokens tokens)

let run_word p word = fst (run_with_cache_word p (base_cache p) word)

let run_buf p buf = run_word p (Word.of_buf buf)

let run p tokens = fst (run_with_cache p (base_cache p) tokens)

let run_cold p tokens = fst (run_with_cache p (Cache.copy (base_cache p)) tokens)

let run_inspect p ~inspect tokens =
  fst
    (multistep p.menv ~inspect
       (Machine.init p.menv ~cache:(base_cache p) tokens))

let run_inspect_word p ~inspect word =
  fst
    (multistep p.menv ~inspect
       (Machine.init_word p.menv ~cache:(base_cache p) word))

let parse g tokens = run (make g) tokens
