(** The pre-interning structural prediction engine, kept as the
    differential-testing oracle.

    These are the original [Config]/[Cache]/[Sll]/[Ll] implementations in
    which a frame is a [symbol list], a configuration carries its frames
    directly, DFA states are keyed by canonical configuration {e lists} and
    transitions live in a balanced map.  The interned engine in the sibling
    modules must be observably equivalent — same predictions, verdicts and
    fork flags on every grammar and input — and [test/test_intern.ml] checks
    exactly that against this module.  [Costar_turbo] also builds on this
    engine so the "unverified baseline" keeps its original representation.

    Persistence is deliberately absent: the on-disk cache format belongs to
    the interned engine ({!Cache}, format v2). *)

open Costar_grammar
open Costar_grammar.Symbols

module Config = struct
  type sctx =
    | Ctx_nt of nonterminal
    | Ctx_accept

  type sll = {
    s_pred : int;
    s_frames : symbol list list;
    s_ctx : sctx;
  }

  type ll = {
    l_pred : int;
    l_frames : symbol list list;
  }

  let rec compare_frames f1 f2 =
    match f1, f2 with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | s1 :: r1, s2 :: r2 ->
      let c = compare_symbols s1 s2 in
      if c <> 0 then c else compare_frames r1 r2

  let compare_sctx c1 c2 =
    match c1, c2 with
    | Ctx_nt x, Ctx_nt y -> Int.compare x y
    | Ctx_nt _, Ctx_accept -> -1
    | Ctx_accept, Ctx_nt _ -> 1
    | Ctx_accept, Ctx_accept -> 0

  let compare_sll c1 c2 =
    let c = Int.compare c1.s_pred c2.s_pred in
    if c <> 0 then c
    else
      let c = compare_frames c1.s_frames c2.s_frames in
      if c <> 0 then c else compare_sctx c1.s_ctx c2.s_ctx

  let compare_ll c1 c2 =
    let c = Int.compare c1.l_pred c2.l_pred in
    if c <> 0 then c else compare_frames c1.l_frames c2.l_frames

  module Sll_set = Set.Make (struct
    type t = sll

    let compare = compare_sll
  end)

  module Ll_set = Set.Make (struct
    type t = ll

    let compare = compare_ll
  end)

  let preds_of_sll configs =
    List.sort_uniq Int.compare (List.map (fun c -> c.s_pred) configs)

  let preds_of_ll configs =
    List.sort_uniq Int.compare (List.map (fun c -> c.l_pred) configs)
end

module Cache = struct
  type state_id = int

  type verdict =
    | V_empty
    | V_all_pred of int
    | V_pending

  type info = {
    configs : Config.sll list;
    verdict : verdict;
    accepting : int list;
  }

  module Key = struct
    type t = Config.sll list

    let rec compare l1 l2 =
      match l1, l2 with
      | [], [] -> 0
      | [], _ :: _ -> -1
      | _ :: _, [] -> 1
      | c1 :: r1, c2 :: r2 ->
        let c = Config.compare_sll c1 c2 in
        if c <> 0 then c else compare r1 r2
  end

  module Key_map = Map.Make (Key)
  module Int_map' = Map.Make (Int)

  module Trans_key = struct
    type t = state_id * terminal

    let compare (s1, a1) (s2, a2) =
      let c = Int.compare s1 s2 in
      if c <> 0 then c else Int.compare a1 a2
  end

  module Trans_map = Map.Make (Trans_key)

  module Cfg_map = Map.Make (struct
    type t = Config.sll

    let compare = Config.compare_sll
  end)

  type t = {
    ids : state_id Key_map.t;
    infos : info Int_map'.t;
    trans : state_id Trans_map.t;
    inits : state_id Int_map'.t;
    closures : (Config.sll list * bool, Types.error) result Cfg_map.t;
    next : int;
    n_trans : int;
  }

  let empty =
    {
      ids = Key_map.empty;
      infos = Int_map'.empty;
      trans = Trans_map.empty;
      inits = Int_map'.empty;
      closures = Cfg_map.empty;
      next = 0;
      n_trans = 0;
    }

  let num_states c = c.next
  let num_transitions c = c.n_trans

  let find_init c x = Int_map'.find_opt x c.inits
  let add_init c x sid = { c with inits = Int_map'.add x sid c.inits }

  let is_accepting (cfg : Config.sll) =
    match cfg.s_ctx, cfg.s_frames with
    | Config.Ctx_accept, [] -> true
    | _ -> false

  let compute_info configs =
    let verdict =
      match Config.preds_of_sll configs with
      | [] -> V_empty
      | [ p ] -> V_all_pred p
      | _ -> V_pending
    in
    let accepting = Config.preds_of_sll (List.filter is_accepting configs) in
    { configs; verdict; accepting }

  let intern c configs =
    match Key_map.find_opt configs c.ids with
    | Some sid -> (c, sid)
    | None ->
      let sid = c.next in
      let info = compute_info configs in
      ( {
          c with
          ids = Key_map.add configs sid c.ids;
          infos = Int_map'.add sid info c.infos;
          next = sid + 1;
        },
        sid )

  let info c sid =
    match Int_map'.find_opt sid c.infos with
    | Some i -> i
    | None -> invalid_arg "Structural.Cache.info: unknown state id"

  let find_trans c sid a = Trans_map.find_opt (sid, a) c.trans

  let find_closure c cfg = Cfg_map.find_opt cfg c.closures

  let add_closure c cfg result =
    { c with closures = Cfg_map.add cfg result c.closures }

  let add_trans c sid a sid' =
    if Trans_map.mem (sid, a) c.trans then c
    else
      {
        c with
        trans = Trans_map.add (sid, a) sid' c.trans;
        n_trans = c.n_trans + 1;
      }
end

module Sll = struct
  open Config

  exception Left_rec of nonterminal

  (* Closure carries one visited-set snapshot per frame, mirroring the
     machine's visited set; see the interned [Sll.closure_ext] for the full
     commentary — the two implementations must stay step-for-step
     equivalent. *)
  let closure_ext g anl configs =
    let seen = ref Sll_set.empty in
    let stable = ref [] in
    let forked = ref false in
    let rec go cfg vises =
      if not (Sll_set.mem cfg !seen) then begin
        seen := Sll_set.add cfg !seen;
        match cfg.s_frames, vises with
        | [], _ -> (
          match cfg.s_ctx with
          | Ctx_accept -> stable := cfg :: !stable
          | Ctx_nt x ->
            forked := true;
            List.iter
              (fun (y, beta) ->
                go
                  { cfg with s_frames = [ beta ]; s_ctx = Ctx_nt y }
                  [ Int_set.empty ])
              (Analysis.callers anl x);
            if Analysis.endable anl x then
              go { cfg with s_frames = []; s_ctx = Ctx_accept } [])
        | [] :: rest, _ :: vs -> go { cfg with s_frames = rest } vs
        | (T _ :: _) :: _, _ -> stable := cfg :: !stable
        | (NT y :: suf) :: rest, vis :: vs ->
          if Int_set.mem y vis then raise (Left_rec y)
          else
            let frames_below, vises_below =
              if suf = [] then (rest, vs) else (suf :: rest, vis :: vs)
            in
            let vises = Int_set.add y vis :: vises_below in
            List.iter
              (fun rhs -> go { cfg with s_frames = rhs :: frames_below } vises)
              (Grammar.rhss_of g y)
        | _ :: _, [] -> assert false (* one snapshot per frame *)
      end
    in
    let fresh cfg = List.map (fun _ -> Int_set.empty) cfg.s_frames in
    match List.iter (fun c -> go c (fresh c)) configs with
    | () -> Ok (List.sort_uniq compare_sll !stable, !forked)
    | exception Left_rec x -> Error (Types.Left_recursive x)

  let closure g anl configs = Result.map fst (closure_ext g anl configs)

  let closure_cached_ext g anl cache configs =
    let rec go cache acc forked = function
      | [] -> (cache, Ok (List.sort_uniq compare_sll (List.concat acc), forked))
      | cfg :: rest -> (
        let cache, result =
          match Cache.find_closure cache cfg with
          | Some r -> (cache, r)
          | None ->
            let r = closure_ext g anl [ cfg ] in
            (Cache.add_closure cache cfg r, r)
        in
        match result with
        | Error e -> (cache, Error e)
        | Ok (stable, f) -> go cache (stable :: acc) (forked || f) rest)
    in
    go cache [] false configs

  let closure_cached g anl cache configs =
    let cache, result = closure_cached_ext g anl cache configs in
    (cache, Result.map fst result)

  let move configs a =
    List.filter_map
      (fun cfg ->
        match cfg.s_frames with
        | (T a' :: suf) :: rest when a' = a ->
          Some { cfg with s_frames = suf :: rest }
        | _ -> None)
      configs

  let init_configs g x =
    List.map
      (fun ix ->
        { s_pred = ix; s_frames = [ (Grammar.prod g ix).rhs ]; s_ctx = Ctx_nt x })
      (Grammar.prods_of g x)

  let rec loop g anl depth cache sid tokens =
    let info = Cache.info cache sid in
    match info.Cache.verdict with
    | Cache.V_empty -> (cache, Types.Reject_pred, depth)
    | Cache.V_all_pred p -> (cache, Types.Unique_pred p, depth)
    | Cache.V_pending -> (
      match tokens with
      | [] -> (
        match info.Cache.accepting with
        | [] -> (cache, Types.Reject_pred, depth)
        | [ p ] -> (cache, Types.Unique_pred p, depth)
        | p :: _ -> (cache, Types.Ambig_pred p, depth))
      | tok :: rest -> (
        let a = tok.Token.term in
        match Cache.find_trans cache sid a with
        | Some sid' -> loop g anl (depth + 1) cache sid' rest
        | None -> (
          match closure_cached g anl cache (move info.Cache.configs a) with
          | cache, Error e -> (cache, Types.Error_pred e, depth)
          | cache, Ok configs' ->
            let cache, sid' = Cache.intern cache configs' in
            let cache = Cache.add_trans cache sid a sid' in
            loop g anl (depth + 1) cache sid' rest)))

  let init g anl sid_cache x =
    match Cache.find_init sid_cache x with
    | Some sid -> Ok (sid_cache, sid)
    | None -> (
      match closure_cached g anl sid_cache (init_configs g x) with
      | _, Error e -> Error e
      | cache, Ok configs ->
        let cache, sid = Cache.intern cache configs in
        Ok (Cache.add_init cache x sid, sid))

  let predict g anl cache x tokens =
    match init g anl cache x with
    | Error e -> (cache, Types.Error_pred e)
    | Ok (cache, sid) ->
      let cache, result, depth = loop g anl 0 cache sid tokens in
      Instr.record_sll x depth;
      (cache, result)
end

module Ll = struct
  open Config

  exception Left_rec of nonterminal

  let closure g configs =
    let seen = ref Ll_set.empty in
    let stable = ref [] in
    let rec go cfg vises =
      if not (Ll_set.mem cfg !seen) then begin
        seen := Ll_set.add cfg !seen;
        match cfg.l_frames, vises with
        | [], _ -> stable := cfg :: !stable
        | [] :: rest, _ :: vs -> go { cfg with l_frames = rest } vs
        | (T _ :: _) :: _, _ -> stable := cfg :: !stable
        | (NT y :: suf) :: rest, vis :: vs ->
          if Int_set.mem y vis then raise (Left_rec y)
          else
            let frames_below, vises_below =
              if suf = [] then (rest, vs) else (suf :: rest, vis :: vs)
            in
            let vises = Int_set.add y vis :: vises_below in
            List.iter
              (fun rhs -> go { cfg with l_frames = rhs :: frames_below } vises)
              (Grammar.rhss_of g y)
        | _ :: _, [] -> assert false (* one snapshot per frame *)
      end
    in
    let fresh cfg = List.map (fun _ -> Int_set.empty) cfg.l_frames in
    match List.iter (fun c -> go c (fresh c)) configs with
    | () -> Ok (List.sort_uniq compare_ll !stable)
    | exception Left_rec x -> Error (Types.Left_recursive x)

  let move configs a =
    List.filter_map
      (fun cfg ->
        match cfg.l_frames with
        | (T a' :: suf) :: rest when a' = a ->
          Some { cfg with l_frames = suf :: rest }
        | _ -> None)
      configs

  let init_configs g x conts =
    List.map
      (fun ix -> { l_pred = ix; l_frames = (Grammar.prod g ix).rhs :: conts })
      (Grammar.prods_of g x)

  let is_accepting cfg = cfg.l_frames = []

  let predict g x conts tokens =
    let rec loop depth configs tokens =
      match preds_of_ll configs with
      | [] -> (Types.Reject_pred, depth)
      | [ p ] -> (Types.Unique_pred p, depth)
      | _ -> (
        match tokens with
        | [] -> (
          match preds_of_ll (List.filter is_accepting configs) with
          | [] -> (Types.Reject_pred, depth)
          | [ p ] -> (Types.Unique_pred p, depth)
          | p :: _ -> (Types.Ambig_pred p, depth))
        | tok :: rest -> (
          match closure g (move configs tok.Token.term) with
          | Error e -> (Types.Error_pred e, depth)
          | Ok configs' -> loop (depth + 1) configs' rest))
    in
    match closure g (init_configs g x conts) with
    | Error e -> Types.Error_pred e
    | Ok configs ->
      let result, depth = loop 0 configs tokens in
      Instr.record_ll x depth;
      result
end
