(** [adaptivePredict] (paper, §3.4): SLL first, failing over to LL when the
    SLL result may be unsound.

    SLL's [Unique_pred] and [Reject_pred] are trusted (SLL overapproximates
    LL); an SLL [Ambig_pred] merely means several candidates survived, so
    prediction recommences in exact LL mode, whose [Ambig_pred] genuinely
    witnesses an ambiguous input.

    Which decisions can ever take the fallback path is statically decidable:
    the offline analyzer ([lib/analysis_predict]) explores the same SLL DFA
    breadth-first and flags exactly the decisions with a reachable pending
    state whose accepting configurations disagree — everywhere else
    [adaptive_predict] provably stays in SLL mode (property-tested in
    [test/test_predict_analysis.ml]). *)

open Costar_grammar
open Costar_grammar.Symbols

(** [adaptive_predict g a cache x conts tokens] chooses a right-hand side
    for decision nonterminal [x].  [conts] produces the unprocessed
    remainder of the suffix stack below the decision; it is a thunk because
    only the (rare) LL fallback needs it, and materializing it eagerly
    would cost O(stack depth) on every push — quadratic on deeply
    right-recursive inputs. *)
val adaptive_predict :
  Grammar.t ->
  Analysis.t ->
  Cache.t ->
  nonterminal ->
  (unit -> symbol list list) ->
  Token.t list ->
  Cache.t * Types.prediction

(** Cursor form: lookahead reads [w.kinds] from position [i].  This is
    the machine's own entry point; {!adaptive_predict} wraps it. *)
val adaptive_predict_word :
  Grammar.t ->
  Analysis.t ->
  Cache.t ->
  nonterminal ->
  (unit -> symbol list list) ->
  Word.t ->
  int ->
  Cache.t * Types.prediction

(** Like {!adaptive_predict_word}, but additionally reports the lookahead
    depth at which the verdict was reached (tokens examined past position
    [i]; exact on [Reject_pred], which is what recovery diagnostics
    consume). *)
val adaptive_predict_word_ext :
  Grammar.t ->
  Analysis.t ->
  Cache.t ->
  nonterminal ->
  (unit -> symbol list list) ->
  Word.t ->
  int ->
  Cache.t * Types.prediction * int
