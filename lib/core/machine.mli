(** The CoStar stack machine (paper, §3.2–3.3).

    The machine state is exposed transparently so that the test suite can
    check the paper's invariants (stack well-formedness, Fig. 4) and the
    termination measure (§4) after every step.  Use {!Parser} for the
    ordinary parsing API.

    Following the Coq implementation, each frame pairs the prefix-stack and
    suffix-stack components at one level: the processed symbols and their
    partial parse trees (both reversed), the unprocessed symbols, and the
    label — the open nonterminal whose prediction created the frame. *)

open Costar_grammar
open Costar_grammar.Symbols

type frame = {
  label : nonterminal option;  (** [None] only for the bottom frame. *)
  syms_rev : symbol list;  (** processed symbols, most recent first *)
  trees_rev : Tree.t list;  (** partial derivation, most recent first *)
  suf : symbol list;  (** unprocessed symbols *)
}

type state = {
  top : frame;
  frames : frame list;  (** callers, innermost first *)
  cache : Cache.t;
  word : Word.t;  (** the whole input, as the array cursor *)
  pos : int;  (** current input position; remaining = [word.len - pos] *)
  visited : Int_set.t;
      (** nonterminals opened since the last consume (left-recursion guard) *)
  unique : bool;  (** false once any prediction reported ambiguity *)
}

type step_result =
  | Step_accept of Tree.t
  | Step_reject of string
  | Step_error of Types.error
  | Step_cont of state

(** Static context: the grammar and its analyses. *)
type env = {
  g : Grammar.t;
  anl : Analysis.t;
}

val make_env : Grammar.t -> env

(** Initial machine state for the grammar's start symbol (list wrapper
    over {!init_word}). *)
val init : env -> ?cache:Cache.t -> Token.t list -> state

(** Initial machine state over an array cursor: the machine consumes
    [word.kinds.(pos)] directly, and prediction's warm fast path never
    touches a token record. *)
val init_word : env -> ?cache:Cache.t -> Word.t -> state

(** One atomic machine operation: consume, push, return, or finish. *)
val step : env -> state -> step_result

(** Number of unconsumed tokens. *)
val remaining : state -> int

(** Unconsumed tokens, materialized (traces, tests). *)
val remaining_tokens : state -> Token.t list

(** Unprocessed suffix-stack symbols below the top frame, topmost first
    (the continuation passed to LL prediction). *)
val conts : state -> symbol list list

(** Stack height (number of frames). *)
val height : state -> int

(** The stack well-formedness invariant StacksWf_I (paper, Fig. 4): every
    non-bottom frame, with its caller's label, spells out a production of
    the grammar, and the bottom frame spells the start symbol. *)
val stacks_wf : env -> state -> bool
