(** The CoStar stack machine (paper, §3.2–3.3).

    The machine state is exposed transparently so that the test suite can
    check the paper's invariants (stack well-formedness, Fig. 4) and the
    termination measure (§4) after every step.  Use {!Parser} for the
    ordinary parsing API.

    Following the Coq implementation, each frame pairs the prefix-stack and
    suffix-stack components at one level: the processed symbols and their
    partial parse trees (both reversed), the unprocessed symbols, and the
    label — the open nonterminal whose prediction created the frame. *)

open Costar_grammar
open Costar_grammar.Symbols

type frame = {
  label : nonterminal option;  (** [None] only for the bottom frame. *)
  syms_rev : symbol list;  (** processed symbols, most recent first *)
  trees_rev : Tree.t list;  (** partial derivation, most recent first *)
  suf : symbol list;  (** unprocessed symbols *)
}

type state = {
  top : frame;
  frames : frame list;  (** callers, innermost first *)
  cache : Cache.t;
  word : Word.t;  (** the whole input, as the array cursor *)
  pos : int;  (** current input position; remaining = [word.len - pos] *)
  visited : Int_set.t;
      (** nonterminals opened since the last consume (left-recursion guard) *)
  unique : bool;  (** false once any prediction reported ambiguity *)
}

(** Why a step rejected — the structured arm the error-recovery layer
    ({!Costar_recover.Recover}) dispatches on.  Every constructor carries
    the input position the failure was detected at (absent for
    [Fail_eof], where it is the end of input by definition). *)
type fail_reason =
  | Fail_mismatch of { expected : terminal; pos : int }
      (** consume found a different terminal at [pos] *)
  | Fail_eof of { expected : terminal }
      (** consume ran off the end of the input *)
  | Fail_no_alt of { nt : nonterminal; pos : int; lookahead : int }
      (** prediction rejected every right-hand side of [nt]; [lookahead]
          is the number of tokens examined past [pos] before rejecting *)
  | Fail_trailing of { pos : int }
      (** the stack emptied with input remaining at [pos] *)

(** A recoverable rejection: the structured reason plus the rendered
    message (exactly the string {!Parser.Reject} historically carried). *)
type failure = {
  reason : fail_reason;
  message : string;
}

type step_result =
  | Step_accept of Tree.t
  | Step_reject of failure
  | Step_error of Types.error
  | Step_cont of state

(** Static context: the grammar and its analyses. *)
type env = {
  g : Grammar.t;
  anl : Analysis.t;
}

val make_env : Grammar.t -> env

(** Initial machine state for the grammar's start symbol (list wrapper
    over {!init_word}). *)
val init : env -> ?cache:Cache.t -> Token.t list -> state

(** Initial machine state over an array cursor: the machine consumes
    [word.kinds.(pos)] directly, and prediction's warm fast path never
    touches a token record. *)
val init_word : env -> ?cache:Cache.t -> Word.t -> state

(** One atomic machine operation: consume, push, return, or finish. *)
val step : env -> state -> step_result

(** Number of unconsumed tokens. *)
val remaining : state -> int

(** Human-readable description of the current input position ("at line L,
    column C" / "at token ..." / "at end of input") — the phrase the
    machine's own reject messages embed, exposed so the recovery layer can
    render byte-identical messages. *)
val pos_msg : state -> string

(** Unconsumed tokens, materialized (traces, tests). *)
val remaining_tokens : state -> Token.t list

(** Unprocessed suffix-stack symbols below the top frame, topmost first
    (the continuation passed to LL prediction). *)
val conts : state -> symbol list list

(** Stack height (number of frames). *)
val height : state -> int

(** The stack well-formedness invariant StacksWf_I (paper, Fig. 4): every
    non-bottom frame, with its caller's label, spells out a production of
    the grammar, and the bottom frame spells the start symbol. *)
val stacks_wf : env -> state -> bool
